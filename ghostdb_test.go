package ghostdb_test

import (
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/trace"
)

// TestPublicAPIQuickstart exercises the façade exactly as the package
// documentation advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	db, err := ghostdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	err = db.ExecScript(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France' AND Vis.DocID = Doc.DocID`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "Ellis" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Report.TotalTime <= 0 {
		t.Error("no simulated time")
	}
}

// TestPublicAPIOptionsAndDataset exercises profile options and the
// dataset generator through the façade.
func TestPublicAPIOptionsAndDataset(t *testing.T) {
	if ghostdb.PaperScale().Prescriptions != 1_000_000 {
		t.Error("paper scale must be one million prescriptions")
	}
	ds := ghostdb.GenerateDataset(ghostdb.ScaleOf(600))
	db, err := ghostdb.Open(
		ghostdb.WithProfile(ghostdb.SmartUSB2007()),
		ghostdb.WithUSB(ghostdb.USBHighSpeed()),
		ghostdb.WithCapture(ghostdb.CaptureFull),
		ghostdb.WithTargetFPR(0.02),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(ds); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no sclerosis visits at tiny scale")
	}
	leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("leak: %v", leaks[0])
	}
}

// TestPublicAPIPlans exercises plan enumeration and forced plans.
func TestPublicAPIPlans(t *testing.T) {
	db, err := ghostdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(ghostdb.GenerateDataset(ghostdb.ScaleOf(600))); err != nil {
		t.Fatal(err)
	}
	const query = `SELECT Pre.PreID FROM Prescription Pre, Visit Vis
		WHERE Vis.Date > 05-11-2006 AND Vis.Purpose = 'Sclerosis'`
	q, err := db.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	specs := db.Plans(q)
	if len(specs) < 2 {
		t.Fatalf("%d plans", len(specs))
	}
	baselineRows := -1
	for _, spec := range specs {
		res, err := db.Query(query, ghostdb.WithSpec(spec))
		if err != nil {
			t.Fatalf("%s: %v", spec.Label, err)
		}
		if baselineRows == -1 {
			baselineRows = len(res.Rows)
		} else if baselineRows != len(res.Rows) {
			t.Errorf("plan %s disagrees", spec.Label)
		}
	}
	text := db.Explain(q, specs[0])
	if !strings.Contains(text, "Prescription") {
		t.Errorf("explain = %q", text)
	}
}
