// Command ghostdb-gen generates the synthetic hospital dataset of the
// demo (Figure 3 schema, one million prescriptions at full scale) and
// prints its statistics: cardinalities, demo-constant selectivities and
// the device storage footprint after loading.
//
//	ghostdb-gen -scale 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

func main() {
	scale := flag.Int("scale", 100_000, "prescriptions (paper: 1000000)")
	seed := flag.Int64("seed", 42, "generator seed")
	load := flag.Bool("load", true, "load into a device and report flash footprints")
	flag.Parse()

	start := time.Now()
	cfg := ghostdb.ScaleOf(*scale)
	cfg.Seed = *seed
	ds := ghostdb.GenerateDataset(cfg)
	fmt.Printf("generated in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("cardinalities:")
	for _, name := range ds.TableNames() {
		fmt.Printf("  %-14s %9d rows\n", name, ds.Table(name).N)
	}

	fmt.Println("\ndemo constant selectivities:")
	frac := func(table, col, want string) float64 {
		n := 0
		colVals := ds.Table(table).Col(col)
		for _, v := range colVals {
			if v.Kind() == value.String && v.Str() == want {
				n++
			}
		}
		return float64(n) / float64(len(colVals))
	}
	fmt.Printf("  Vis.Purpose = %-12q %6.2f%% of visits (hidden)\n",
		datagen.DemoPurpose, 100*frac("Visit", "Purpose", datagen.DemoPurpose))
	fmt.Printf("  Med.Type    = %-12q %6.2f%% of medicines (visible)\n",
		datagen.DemoMedType, 100*frac("Medicine", "Type", datagen.DemoMedType))
	fmt.Printf("  Doc.Country = %-12q %6.2f%% of doctors (visible)\n",
		datagen.DemoCountry, 100*frac("Doctor", "Country", datagen.DemoCountry))

	dates := ds.Table("Visit").Col("Date")
	cut := datagen.PaperDateLiteral()
	after := 0
	for _, d := range dates {
		if d.DateDays() > cut.DateDays() {
			after++
		}
	}
	fmt.Printf("  Vis.Date > 05-11-2006:   %6.2f%% of visits (visible)\n",
		100*float64(after)/float64(len(dates)))

	if !*load {
		return
	}
	fmt.Println("\nloading into the simulated device...")
	start = time.Now()
	db, err := ghostdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadDataset(ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))
	st := db.Storage()
	fmt.Printf("\ndevice flash footprint:\n")
	fmt.Printf("  hidden base columns  %10s\n", stats.FormatBytes(st.BaseColumns))
	fmt.Printf("  subtree key tables   %10s\n", stats.FormatBytes(st.SKTs))
	fmt.Printf("  climbing indexes     %10s\n", stats.FormatBytes(st.Climbing))
	fmt.Printf("  total                %10s\n", stats.FormatBytes(st.Total))
}
