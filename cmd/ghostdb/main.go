// Command ghostdb loads the synthetic hospital database and runs ad-hoc
// queries against it, printing results, plans and execution reports.
//
//	ghostdb -scale 50000 -query "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'"
//	ghostdb -explain -query "..."       # show the chosen plan only
//	ghostdb -plans -query "..."         # run every plan (demo phase 2)
//	ghostdb -trace -query "..."         # print the spy's wire view
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/bench"
	"github.com/ghostdb/ghostdb/internal/trace"
)

func main() {
	scale := flag.Int("scale", 20_000, "prescriptions in the synthetic dataset")
	query := flag.String("query", bench.DemoQuery, "SQL to execute")
	explain := flag.Bool("explain", false, "print the chosen plan without full output")
	plans := flag.Bool("plans", false, "execute every enumerated plan and compare")
	showTrace := flag.Bool("trace", false, "print the spy-visible wire trace")
	maxRows := flag.Int("rows", 10, "result rows to print")
	flag.Parse()

	opts := []ghostdb.Option{}
	if *showTrace {
		opts = append(opts, ghostdb.WithCapture(ghostdb.CaptureFull))
	}
	db, err := ghostdb.Open(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadDataset(ghostdb.GenerateDataset(ghostdb.ScaleOf(*scale))); err != nil {
		log.Fatal(err)
	}

	if *plans {
		rows, err := bench.Fig6(db, *query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatPlanRows(rows))
		return
	}

	res, err := db.Query(*query)
	if err != nil {
		log.Fatal(err)
	}
	q, err := db.Prepare(*query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(db.Explain(q, res.Spec))
	if *explain {
		return
	}

	fmt.Printf("\n%d rows:\n", len(res.Rows))
	fmt.Println(" ", res.Columns)
	for i, row := range res.Rows {
		if i == *maxRows {
			fmt.Printf("  ... %d more\n", len(res.Rows)-*maxRows)
			break
		}
		fmt.Println(" ", row)
	}
	fmt.Println()
	fmt.Print(res.Report.String())

	if *showTrace {
		fmt.Println("\nspy-visible wire trace:")
		fmt.Print(trace.Format(db.Recorder().SpyView()))
		leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
		fmt.Printf("leak audit: %d leaks\n", len(leaks))
	}
}
