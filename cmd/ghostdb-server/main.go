// Command ghostdb-server serves a GhostDB engine over HTTP: the trusted
// terminal of the paper's architecture, answering SQL for remote
// clients that are never allowed to hold the hidden data. One process
// owns one engine (one simulated smart USB device stack, or N shards);
// remote requests multiplex onto a bounded pool of engine sessions with
// admission control — saturation answers 429 + Retry-After instead of
// queueing without bound.
//
//	ghostdb-server -addr :8080 -dsn 'ghostdb://?shards=4&usb=high'
//	ghostdb-server -addr :8080 -demo 20000       # preload the hospital dataset
//
// Endpoints:
//
//	POST /v1/query       {"sql": "SELECT ...", "args": [...]}
//	POST /v1/exec        {"sql": "CREATE TABLE ...; INSERT ...", "args": [...]}
//	POST /v1/checkpoint  {}
//	GET  /v1/schema
//	GET  /healthz
//	GET  /debug/vars     engine + server state (JSON)
//	GET  /metrics        Prometheus text exposition
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests drain (bounded by -shutdown-grace), then the
// engine closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ghostdb/ghostdb/driver"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		dsn           = flag.String("dsn", "", "engine DSN (ghostdb://?shards=4&faults=...); empty = paper hardware defaults")
		demo          = flag.Int("demo", 0, "preload the synthetic hospital dataset at this scale (prescriptions); 0 starts empty")
		maxInflight   = flag.Int("max-inflight", 64, "bound on concurrently executing requests (session pool size)")
		queueWait     = flag.Duration("queue-wait", 0, "how long a request may wait for a free session before 429")
		reqTimeout    = flag.Duration("request-timeout", 0, "per-request execution deadline (0 = none)")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		shutdownGrace = flag.Duration("shutdown-grace", 30*time.Second, "how long shutdown waits for in-flight requests to drain")
	)
	flag.Parse()
	if err := run(*addr, *dsn, *demo, server.Config{
		MaxInflight:    *maxInflight,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
	}, *shutdownGrace, nil); err != nil {
		log.Fatal(err)
	}
}

// run serves until SIGINT/SIGTERM. ready, when non-nil, receives the
// bound listen address once the server is accepting (tests use it).
func run(addr, dsn string, demo int, cfg server.Config, grace time.Duration, ready chan<- string) error {
	db, err := driver.OpenEngine(dsn)
	if err != nil {
		return err
	}
	defer db.Close()
	if demo > 0 {
		start := time.Now()
		log.Printf("loading hospital demo dataset at scale %d...", demo)
		if err := db.LoadDataset(datagen.Generate(datagen.WithScale(demo))); err != nil {
			return err
		}
		if err := db.EnsureBuilt(); err != nil {
			return err
		}
		log.Printf("loaded in %v", time.Since(start).Round(time.Millisecond))
	}

	srv, err := server.New(db, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Slowloris hardening: a client must deliver headers promptly
		// and cannot hold a response open forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("ghostdb-server listening on http://%s (max-inflight %d)", ln.Addr(), cfg.MaxInflight)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight requests (grace %v)", grace)
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	log.Printf("drained; closing engine")
	return nil
}
