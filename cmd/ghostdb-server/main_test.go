package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/server"
)

// TestServerEndToEnd boots the real run() loop — demo dataset, sharded
// engine, signal handling — hits the wire endpoints, then delivers
// SIGTERM and checks the graceful exit path returns clean.
func TestServerEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "ghostdb://?shards=2", 200, server.Config{
			MaxInflight: 8,
			RetryAfter:  time.Second,
		}, 10*time.Second, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}

	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := []byte(`{"sql": "SELECT COUNT(*) FROM Prescription Pre", "args": []}`)
	resp, err = cl.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Rows [][]json.Number `json:"rows"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("query: status %d, decode %v", resp.StatusCode, decErr)
	}
	if n, err := qr.Rows[0][0].Int64(); err != nil || n != 200 {
		t.Fatalf("prescription count = %v (%v), want 200 (the -demo scale)", qr.Rows, err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with %v after SIGTERM, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never exited after SIGTERM")
	}
}
