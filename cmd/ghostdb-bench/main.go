// Command ghostdb-bench regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). Each experiment
// prints one table; "all" runs them in order.
//
//	ghostdb-bench -scale 100000 all
//	ghostdb-bench -scale 1000000 fig6        # the paper's cardinality
//	ghostdb-bench sweep baselines storage
//
// Experiments: fig5 fig6 sweep baselines storage bus spy ram writes
// bloom game ablations aggregate dml observability shard faults backend
// loadgen.
//
// loadgen boots ghostdb-server in-process (or targets a running one via
// -server-url) and drives it with -clients concurrent HTTP clients; its
// record lands in BENCH_server.json. With -server-url, the aggregate and
// dml experiments are also re-phrased over the wire protocol, so a
// long-lived server can be profiled in place.
//
// The -backend flag (sim or file) selects the storage backend for every
// database the run builds; the value is stamped into each BENCH_*.json.
// The backend experiment compares the backends directly regardless of
// the flag, writing BENCH_backend.json.
//
// The -debug-addr flag serves the live observability endpoint
// (/debug/vars JSON and /metrics Prometheus text) for the shared
// database while experiments run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/bench"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/storage"
)

// benchRecord is the machine-readable result of one experiment, written
// as BENCH_<name>.json when -json is set so the perf trajectory can be
// tracked across commits (CI uploads these as artifacts).
type benchRecord struct {
	Name string `json:"name"`
	// Backend is the storage backend the run's databases used (-backend):
	// "sim" or "file". Perf numbers are only comparable across commits
	// within one backend.
	Backend string `json:"backend"`
	Scale   int    `json:"scale"`
	Seed    int64  `json:"seed"`
	WallNS  int64  `json:"wall_ns"` // host wall-clock for the experiment
	Allocs  uint64 `json:"allocs"`  // host heap allocations during the experiment
	// SimNS is the simulated device time the experiment advanced on the
	// shared database's clock; 0 for experiments that build private
	// databases (bus, spy, ram, writes, bloom). The first shared-DB
	// experiment includes the one-time bulk load.
	SimNS int64 `json:"sim_ns"`
	// Phases carries per-phase wall/allocs/sim numbers for experiments
	// that report them (the dml mixed workload).
	Phases []bench.DMLPhase `json:"phases,omitempty"`
	// Observability carries the metrics on/off comparison (the
	// observability experiment): the acceptance gate is overhead_pct
	// staying under 5.
	Observability *bench.ObservabilityReport `json:"observability,omitempty"`
	// ShardScaling carries the multi-device scaling curve (the shard
	// experiment): concurrent throughput, scatter-gather aggregate and
	// DML batch per shard count.
	ShardScaling []bench.ShardPoint `json:"shard_scaling,omitempty"`
	// Faults carries the durability-overhead comparison (the faults
	// experiment): the acceptance gate is overhead_pct staying under 5.
	Faults *bench.FaultsReport `json:"faults,omitempty"`
	// Server carries the HTTP loadgen result (the loadgen experiment):
	// the acceptance gate is dropped == 0.
	Server *bench.ServerReport `json:"server,omitempty"`
	// BackendCompare carries the sim vs file wall-clock comparison (the
	// backend experiment).
	BackendCompare *bench.BackendReport `json:"backend_compare,omitempty"`
}

// lastDMLPhases stashes the dml experiment's phase records for the JSON
// writer (run() only returns an error).
var lastDMLPhases []bench.DMLPhase

// lastObservability stashes the observability experiment's report.
var lastObservability *bench.ObservabilityReport

// lastShardPoints stashes the shard experiment's scaling curve.
var lastShardPoints []bench.ShardPoint

// lastFaults stashes the faults experiment's overhead report.
var lastFaults *bench.FaultsReport

// lastServer stashes the loadgen experiment's report.
var lastServer *bench.ServerReport

// lastBackend stashes the backend experiment's comparison.
var lastBackend *bench.BackendReport

// loadgen knobs, set from flags in main.
var (
	loadClients   int
	loadPerClient int
	serverURL     string
	maxInflight   int
)

func writeBenchJSON(rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+rec.Name+".json", append(data, '\n'), 0o644)
}

var experimentOrder = []string{
	"fig6", "fig5", "sweep", "baselines", "storage", "bus", "spy",
	"ram", "writes", "bloom", "game", "ablations", "aggregate", "dml",
	"observability", "shard", "faults", "backend", "loadgen",
}

func main() {
	scale := flag.Int("scale", 100_000, "prescriptions in the synthetic dataset (paper: 1000000)")
	seed := flag.Int64("seed", 42, "dataset seed")
	backendName := flag.String("backend", "sim", "storage backend for the run's databases: sim or file")
	backendPath := flag.String("backend-path", "", "with -backend file: directory for the device files (default: a temp dir, removed afterwards)")
	jsonOut := flag.Bool("json", false, "also write BENCH_<experiment>.json records (wall ns, allocs, simulated device time)")
	debugAddr := flag.String("debug-addr", "", "serve the live /debug/vars + /metrics endpoint on this address (e.g. localhost:6060) for the shared database")
	debugHold := flag.Duration("debug-hold", 0, "with -debug-addr, keep serving this long after the experiments finish (for scraping a completed run)")
	flag.IntVar(&loadClients, "clients", 1000, "loadgen: concurrent HTTP clients")
	flag.IntVar(&loadPerClient, "requests", 20, "loadgen: requests each client completes")
	flag.StringVar(&serverURL, "server-url", "", "loadgen: drive a running ghostdb-server at this base URL instead of booting one in-process")
	flag.IntVar(&maxInflight, "max-inflight", 64, "loadgen: admission bound of the in-process server")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ghostdb-bench [-scale N] [experiment ...]\nexperiments: %v or all\n", experimentOrder)
		flag.PrintDefaults()
	}
	flag.Parse()

	wanted := flag.Args()
	if len(wanted) == 0 || (len(wanted) == 1 && wanted[0] == "all") {
		wanted = experimentOrder
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed}
	switch *backendName {
	case "sim":
	case "file":
		dir := *backendPath
		if dir == "" {
			tmp, err := os.MkdirTemp("", "ghostdb-bench-")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		cfg.Backend = storage.File(dir, false)
	default:
		log.Fatalf("-backend %q: want sim or file", *backendName)
	}

	// Most experiments share one database build.
	var shared *core.DB
	sharedDB := func() *core.DB {
		if shared == nil {
			start := time.Now()
			fmt.Printf("building dataset + database at scale %d...\n", cfg.Scale)
			db, _, err := bench.BuildDB(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("loaded in %v (wall clock)\n\n", time.Since(start).Round(time.Millisecond))
			shared = db
		}
		return shared
	}

	if *debugAddr != "" {
		addr, stop, err := ghostdb.ServeDebug(*debugAddr, sharedDB())
		if err != nil {
			log.Fatalf("debug endpoint: %v", err)
		}
		defer stop()
		fmt.Printf("debug endpoint: http://%s/debug/vars and http://%s/metrics\n\n", addr, addr)
	}

	for _, name := range wanted {
		fmt.Printf("==================== %s ====================\n", name)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocs0 := ms.Mallocs
		var sim0 time.Duration
		if shared != nil {
			sim0 = shared.Clock().Now()
		}
		start := time.Now()
		if err := run(name, cfg, sharedDB); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		wall := time.Since(start)
		fmt.Printf("(%s took %v wall clock)\n\n", name, wall.Round(time.Millisecond))
		if *jsonOut {
			runtime.ReadMemStats(&ms)
			var sim time.Duration
			if shared != nil {
				sim = shared.Clock().Now() - sim0
			}
			rec := benchRecord{
				Name:    name,
				Backend: *backendName,
				Scale:   cfg.Scale,
				Seed:    cfg.Seed,
				WallNS:  wall.Nanoseconds(),
				Allocs:  ms.Mallocs - allocs0,
				SimNS:   sim.Nanoseconds(),
			}
			if name == "dml" {
				rec.Phases = lastDMLPhases
			}
			if name == "observability" {
				rec.Observability = lastObservability
			}
			if name == "shard" {
				rec.ShardScaling = lastShardPoints
			}
			if name == "faults" {
				rec.Faults = lastFaults
			}
			if name == "backend" {
				rec.BackendCompare = lastBackend
			}
			if name == "loadgen" {
				// The server acceptance artifact has its own name.
				rec.Name = "server"
				rec.Server = lastServer
			}
			if err := writeBenchJSON(rec); err != nil {
				log.Fatalf("%s: writing JSON: %v", name, err)
			}
			fmt.Printf("wrote BENCH_%s.json\n\n", rec.Name)
		}
	}

	if *debugAddr != "" && *debugHold > 0 {
		fmt.Printf("experiments done; holding the debug endpoint for %v\n", *debugHold)
		time.Sleep(*debugHold)
	}
}

func run(name string, cfg bench.Config, sharedDB func() *core.DB) error {
	switch name {
	case "fig6":
		fmt.Println("E1 / Figure 6: execution time of every plan for the demo query")
		rows, err := bench.Fig6(sharedDB(), bench.DemoQuery)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPlanRows(rows))
	case "fig5":
		fmt.Println("E2 / Figure 5: the post-filtering plan with operator popups")
		out, err := bench.Fig5(sharedDB())
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "sweep":
		fmt.Println("E3: pre vs post vs cross filtering across visible selectivity")
		points, err := bench.SelectivitySweep(sharedDB(),
			[]float64{0.001, 0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSweep(points))
	case "baselines":
		fmt.Println("E4: GhostDB vs last-resort joins and join indices (deep query)")
		rows, err := bench.Baselines(sharedDB())
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatBaselines(rows))
	case "storage":
		fmt.Println("E5: the flash storage cost of the indexing model")
		db := sharedDB()
		fmt.Print(bench.FormatStorage(bench.Storage(db), db.RowCount("Prescription")))
	case "bus":
		fmt.Println("E6: USB full speed (12 Mb/s) vs high speed (480 Mb/s)")
		rows, err := bench.BusSpeed(smaller(cfg))
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatBus(rows))
	case "spy":
		fmt.Println("E7 / demo phase 1: the spy's view and the leak audit")
		rep, err := bench.Spy(smaller(cfg))
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSpy(rep))
	case "ram":
		fmt.Println("E8: RAM budget 16KB..256KB")
		rows, err := bench.RAMSweep(smaller(cfg), []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRAM(rows))
	case "writes":
		fmt.Println("E9: flash write/read cost ratio 3x..10x")
		rows, err := bench.WriteRatio(smaller(cfg), []float64{3, 5, 8, 10})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatWrites(rows))
	case "bloom":
		fmt.Println("E10: Bloom filter false-positive rate vs the analytic bound")
		rows, err := bench.BloomFPR([]int{10_000, 100_000, 1_000_000}, []float64{4, 8, 9.6, 12})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatBloom(rows))
	case "game":
		fmt.Println("E11 / demo phase 3: estimated vs measured per plan")
		rows, pick, err := bench.Game(sharedDB())
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatGame(rows, pick))
	case "ablations":
		fmt.Println("Ablations: the design choices behind the numbers")
		rows, err := bench.Ablations(sharedDB())
		if err != nil {
			return err
		}
		devRow, err := bench.DeviceIndexAblation(smaller(cfg))
		if err != nil {
			return err
		}
		rows = append(rows, devRow)
		fmt.Print(bench.FormatAblations(rows))
	case "aggregate":
		fmt.Println("Analytics: aggregation / ordering / distinct over hidden data")
		var rows []bench.AggregateRow
		var err error
		if serverURL != "" {
			fmt.Printf("(driving %s over HTTP; wall includes the round trip, RAM is not visible remotely)\n", serverURL)
			rows, err = bench.AggregateWorkloadURL(serverURL)
		} else {
			rows, err = bench.AggregateWorkload(sharedDB())
		}
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAggregateRows(rows))
	case "dml":
		fmt.Println("Live DML: delta inserts/updates/deletes, dirty queries, CHECKPOINT merge")
		var phases []bench.DMLPhase
		var err error
		if serverURL != "" {
			fmt.Printf("(driving %s over HTTP, mutating it in place; allocs are not visible remotely)\n", serverURL)
			phases, err = bench.DMLWorkloadURL(serverURL)
		} else {
			phases, err = bench.DMLWorkload(smaller(cfg))
		}
		if err != nil {
			return err
		}
		lastDMLPhases = phases
		fmt.Print(bench.FormatDMLPhases(phases))
	case "observability":
		fmt.Println("Observability: query loop with the metrics registry on vs off")
		rep, err := bench.Observability(smaller(cfg), 200)
		if err != nil {
			return err
		}
		lastObservability = rep
		fmt.Print(bench.FormatObservability(rep))
	case "shard":
		fmt.Println("Sharding: 1/2/4/8 devices — throughput, scatter-gather aggregate, DML")
		points, err := bench.ShardScaling(smaller(cfg), []int{1, 2, 4, 8}, 16, 25)
		if err != nil {
			return err
		}
		lastShardPoints = points
		fmt.Print(bench.FormatShardPoints(points))
	case "faults":
		fmt.Println("Durability: CRC + commit-record overhead, retries under transient faults")
		rep, err := bench.Faults(smaller(cfg), 4)
		if err != nil {
			return err
		}
		lastFaults = rep
		fmt.Print(bench.FormatFaults(rep))
	case "backend":
		fmt.Println("Backends: simulated NAND vs real files (load / query / DML / reopen wall clock)")
		rep, err := bench.BackendCompare(smaller(cfg), 50)
		if err != nil {
			return err
		}
		lastBackend = rep
		fmt.Print(bench.FormatBackendReport(rep))
	case "loadgen":
		fmt.Printf("HTTP serving: %d concurrent clients x %d requests against ghostdb-server\n", loadClients, loadPerClient)
		var rep *bench.ServerReport
		var err error
		if serverURL != "" {
			rep, err = bench.LoadGenURL(serverURL, loadClients, loadPerClient)
		} else {
			rep, err = bench.LoadGenLocal(smaller(cfg), loadClients, loadPerClient, maxInflight)
		}
		if err != nil {
			return err
		}
		lastServer = rep
		fmt.Print(bench.FormatServerReport(rep))
	default:
		return fmt.Errorf("unknown experiment %q (want one of %v)", name, experimentOrder)
	}
	return nil
}

// smaller caps rebuild-heavy experiments at a friendlier scale.
func smaller(cfg bench.Config) bench.Config {
	if cfg.Scale > 100_000 {
		cfg.Scale = 100_000
	}
	return cfg
}
