// Benchmarks regenerating every table and figure of the paper's
// evaluation (experiment index in DESIGN.md). Each benchmark wraps the
// corresponding harness runner from internal/bench; the primary output is
// the deterministic simulated device time, reported as sim-ms/op next to
// the usual wall-clock numbers.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig6 -benchscale 1000000   # the paper's cardinality
package ghostdb_test

import (
	"database/sql"
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	_ "github.com/ghostdb/ghostdb/driver"
	"github.com/ghostdb/ghostdb/internal/bench"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/value"
)

var benchScale = flag.Int("benchscale", 50_000, "prescriptions for benchmark datasets (paper: 1000000)")

var shared struct {
	once sync.Once
	db   *core.DB
	err  error
}

// sharedDB builds one database per process for the read-only benchmarks.
func sharedDB(b *testing.B) *core.DB {
	b.Helper()
	shared.once.Do(func() {
		shared.db, _, shared.err = bench.BuildDB(bench.Config{Scale: *benchScale})
	})
	if shared.err != nil {
		b.Fatal(shared.err)
	}
	return shared.db
}

// simMS converts total simulated time to a per-op metric.
func simMS(b *testing.B, totalNS float64) {
	b.ReportMetric(totalNS/1e6/float64(b.N), "sim-ms/op")
}

// BenchmarkFig6PlanBars regenerates Figure 6: every plan of the demo
// query, timed on the simulated device (experiment E1).
func BenchmarkFig6PlanBars(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(db, bench.DemoQuery)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.Time)
		}
	}
	simMS(b, sim)
}

// BenchmarkFig5PostFilterPlan runs the forced post-filtering plan of
// Figure 5 with its operator report (experiment E2).
func BenchmarkFig5PostFilterPlan(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	q, err := db.Prepare(bench.DemoQuery)
	if err != nil {
		b.Fatal(err)
	}
	spec := plan.Spec{Label: "Fig5",
		Strategies: []plan.Strategy{plan.StratVisPost, plan.StratHidIndex, plan.StratVisPost}}
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			b.Fatal(err)
		}
		sim += float64(res.Report.TotalTime)
	}
	simMS(b, sim)
}

// BenchmarkSelectivitySweep measures the pre/post/cross crossover
// (experiment E3).
func BenchmarkSelectivitySweep(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	sels := []float64{0.01, 0.10, 0.40}
	var sim float64
	for i := 0; i < b.N; i++ {
		points, err := bench.SelectivitySweep(db, sels)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			sim += float64(p.Pre + p.Post + p.Cross)
		}
	}
	simMS(b, sim)
}

// BenchmarkBaselines compares SKT+climbing against join indices, block
// nested loop and Grace hash (experiment E4).
func BenchmarkBaselines(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Baselines(db)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.Time)
		}
	}
	simMS(b, sim)
}

// BenchmarkStorageFootprint reports the flash cost of the indexing model
// (experiment E5).
func BenchmarkStorageFootprint(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	var total int64
	for i := 0; i < b.N; i++ {
		rows := bench.Storage(db)
		total = rows[len(rows)-1].Bytes
	}
	b.ReportMetric(float64(total)/(1<<20), "flash-MB")
}

// BenchmarkBusSpeed times the demo plans under USB full speed and high
// speed (experiment E6). Builds fresh databases, so it is the slowest.
func BenchmarkBusSpeed(b *testing.B) {
	skipIfShort(b)
	cfg := bench.Config{Scale: smallScale()}
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.BusSpeed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.PrePlan + r.Post)
		}
	}
	simMS(b, sim)
}

// BenchmarkSpyTrace runs the wire audit of demo phase 1 (experiment E7).
func BenchmarkSpyTrace(b *testing.B) {
	skipIfShort(b)
	cfg := bench.Config{Scale: smallScale()}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Spy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Leaks != 0 {
			b.Fatalf("%d hidden values leaked", rep.Leaks)
		}
	}
}

// BenchmarkRAMBudget sweeps the device RAM budget (experiment E8).
func BenchmarkRAMBudget(b *testing.B) {
	skipIfShort(b)
	cfg := bench.Config{Scale: smallScale()}
	budgets := []int{16 << 10, 64 << 10, 256 << 10}
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RAMSweep(cfg, budgets)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.Pre + r.Post)
		}
	}
	simMS(b, sim)
}

// BenchmarkWriteRatio sweeps the flash program/read cost ratio
// (experiment E9).
func BenchmarkWriteRatio(b *testing.B) {
	skipIfShort(b)
	cfg := bench.Config{Scale: smallScale()}
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.WriteRatio(cfg, []float64{3, 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.GhostDB + r.Grace)
		}
	}
	simMS(b, sim)
}

// BenchmarkBloomFPR measures filter false-positive rates against the
// analytic bound (experiment E10).
func BenchmarkBloomFPR(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.BloomFPR([]int{10_000}, []float64{9.6})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Measured > 3*rows[0].Analytic+0.01 {
			b.Fatalf("fpr %f far above analytic %f", rows[0].Measured, rows[0].Analytic)
		}
	}
}

// BenchmarkPlanGame runs demo phase 3: estimate vs measure every plan
// (experiment E11).
func BenchmarkPlanGame(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Game(db)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.Measured)
		}
	}
	simMS(b, sim)
}

// BenchmarkAblations measures the design-choice comparisons.
func BenchmarkAblations(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablations(db)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.With)
		}
	}
	simMS(b, sim)
}

// BenchmarkLoad measures the bulk-load path (dataset generation plus
// device index construction).
func BenchmarkLoad(b *testing.B) {
	skipIfShort(b)
	cfg := datagen.WithScale(smallScale())
	for i := 0; i < b.N; i++ {
		ds := datagen.Generate(cfg)
		db, err := core.Open()
		if err != nil {
			b.Fatal(err)
		}
		if err := db.LoadDataset(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// smallScale caps the rebuild-heavy benchmarks.
func smallScale() int {
	s := *benchScale
	if s > 50_000 {
		s = 50_000
	}
	return s
}

// skipIfShort keeps `go test -short -bench` fast: the paper-regeneration
// benchmarks build multi-thousand-row databases and are skipped.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping heavy benchmark in -short mode")
	}
}

// BenchmarkConcurrentThroughput measures end-to-end queries/sec when N
// goroutines share one GhostDB instance through the session layer. The
// simulated device serializes on the device gate (one token, one USB
// command stream), so this measures the host-side win of concurrent
// parsing/binding plus the overhead of the gate itself.
func BenchmarkConcurrentThroughput(b *testing.B) {
	skipIfShort(b)
	db, _, err := bench.BuildDB(bench.Config{Scale: 2_000})
	if err != nil {
		b.Fatal(err)
	}
	benchConcurrent(b, db)
}

// BenchmarkConcurrentThroughput4Shards is the same workload on a DB
// split over four simulated devices: the dimension-rooted query
// round-robins across four independent device gates instead of
// serializing on one, so at 16 goroutines the queries/sec metric should
// scale toward 4x BenchmarkConcurrentThroughput (the sharding
// acceptance gate is 2.5x).
func BenchmarkConcurrentThroughput4Shards(b *testing.B) {
	skipIfShort(b)
	db, _, err := bench.BuildDB(bench.Config{Scale: 2_000}, core.WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	benchConcurrent(b, db)
}

// BenchmarkConcurrentThroughputMetricsOff is the same workload with the
// metrics registry disabled — the baseline for the observability
// acceptance gate (metrics-on throughput within 5% of this).
func BenchmarkConcurrentThroughputMetricsOff(b *testing.B) {
	skipIfShort(b)
	db, _, err := bench.BuildDB(bench.Config{Scale: 2_000}, core.WithMetrics(false))
	if err != nil {
		b.Fatal(err)
	}
	benchConcurrent(b, db)
}

func benchConcurrent(b *testing.B, db *core.DB) {
	const query = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			sessions := make([]*core.Session, g)
			for i := range sessions {
				s, err := db.NewSession()
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for _, s := range sessions {
				wg.Add(1)
				go func(s *core.Session) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := s.Query(query); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			for _, s := range sessions {
				_ = s.Close()
			}
		})
	}
}

// BenchmarkDriverThroughput is the same workload through database/sql:
// pooled connections over the ghostdb driver.
func BenchmarkDriverThroughput(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			db, err := sql.Open("ghostdb", "")
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			db.SetMaxOpenConns(g)
			if _, err := db.Exec(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);`); err != nil {
				b.Fatal(err)
			}
			const query = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						rows, err := db.Query(query)
						if err != nil {
							b.Error(err)
							return
						}
						for rows.Next() {
						}
						rows.Close()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// benchHospital stages the package-doc mini dataset on a fresh driver DB.
func benchHospital(b *testing.B, dsn string, conns int) *sql.DB {
	b.Helper()
	db, err := sql.Open("ghostdb", dsn)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	db.SetMaxOpenConns(conns)
	if _, err := db.Exec(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);`); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkDriverPrepared measures the compile-once / bind-many path:
// one prepared '?'-placeholder statement per worker, executed with fresh
// bindings. Compare against BenchmarkDriverUnpreparedNoCache (the
// pre-plan-cache behavior: parse, bind, enumerate and cost every call)
// to see the host-side planning cost amortized away.
func BenchmarkDriverPrepared(b *testing.B) {
	const query = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ?`
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			db := benchHospital(b, "", g)
			stmts := make([]*sql.Stmt, g)
			for i := range stmts {
				s, err := db.Prepare(query)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				stmts[i] = s
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for _, s := range stmts {
				wg.Add(1)
				go func(s *sql.Stmt) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						rows, err := s.Query("Sclerosis")
						if err != nil {
							b.Error(err)
							return
						}
						for rows.Next() {
						}
						rows.Close()
					}
				}(s)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkDriverUnpreparedNoCache runs the same workload with the plan
// cache disabled: every Query re-parses, re-binds, re-enumerates and
// re-costs — the unprepared baseline BenchmarkDriverPrepared beats.
func BenchmarkDriverUnpreparedNoCache(b *testing.B) {
	const query = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			db := benchHospital(b, "ghostdb://?plancache=0", g)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						rows, err := db.Query(query)
						if err != nil {
							b.Error(err)
							return
						}
						for rows.Next() {
						}
						rows.Close()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkConcurrentThroughputPrepared is the session-layer prepared
// variant of BenchmarkConcurrentThroughput: the shape compiles once and
// N goroutines run it with their own parameter bindings through the
// shared device gate.
func BenchmarkConcurrentThroughputPrepared(b *testing.B) {
	skipIfShort(b)
	db, _, err := bench.BuildDB(bench.Config{Scale: 2_000})
	if err != nil {
		b.Fatal(err)
	}
	const shape = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ?`
	params := []value.Value{value.NewString("Sclerosis")}
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			sessions := make([]*core.Session, g)
			cqs := make([]*core.CompiledQuery, g)
			for i := range sessions {
				s, err := db.NewSession()
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
				if cqs[i], err = s.Compile(shape); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for i, s := range sessions {
				wg.Add(1)
				go func(s *core.Session, cq *core.CompiledQuery) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := s.QueryCompiled(cq, params); err != nil {
							b.Error(err)
							return
						}
					}
				}(s, cqs[i])
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			for _, s := range sessions {
				_ = s.Close()
			}
		})
	}
}

// BenchmarkDMLWorkload runs the live-DML mixed workload (delta inserts,
// updates, deletes, dirty queries, CHECKPOINT merge, merged queries) on
// a private database. It stays enabled in -short mode at a small scale
// so the CI benchmark smoke exercises the mutation path.
func BenchmarkDMLWorkload(b *testing.B) {
	scale := *benchScale
	if testing.Short() && scale > 2000 {
		scale = 2000
	}
	cfg := bench.Config{Scale: scale}
	var sim float64
	for i := 0; i < b.N; i++ {
		phases, err := bench.DMLWorkload(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range phases {
			sim += float64(p.SimNS)
		}
	}
	simMS(b, sim)
}

// BenchmarkAggregateWorkload runs the analytics workload (GROUP BY /
// HAVING / ORDER BY / DISTINCT over hidden data): the device pays the
// underlying ID-stream pipeline, the host pays the finishing stage.
func BenchmarkAggregateWorkload(b *testing.B) {
	skipIfShort(b)
	db := sharedDB(b)
	var sim float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.AggregateWorkload(db)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sim += float64(r.SimTime)
		}
	}
	simMS(b, sim)
}
