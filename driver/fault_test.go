package driver

import (
	"context"
	"database/sql"
	"errors"
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/core"
)

func TestParseDSNFaults(t *testing.T) {
	cfg, err := ParseDSN("")
	if err != nil || cfg.Faults != "" || cfg.Degraded || !cfg.Integrity {
		t.Fatalf("defaults = %+v, %v; want no faults, degraded off, integrity on", cfg, err)
	}
	cfg, err = ParseDSN("ghostdb://?faults=seed=42,read.transient=0.001,cutop=500&degraded=on&integrity=off&shards=4")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != "seed=42,read.transient=0.001,cutop=500" || !cfg.Degraded || cfg.Integrity {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{
		"ghostdb://?faults=read.transient=2",
		"ghostdb://?faults=bogus=1",
		"ghostdb://?faults=cutop=x",
		"ghostdb://?degraded=maybe",
		"ghostdb://?integrity=maybe",
	} {
		if _, err := ParseDSN(bad); err == nil {
			t.Errorf("ParseDSN(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "ghostdb driver:") && !strings.Contains(err.Error(), "fault:") {
			t.Errorf("ParseDSN(%q) error %q lacks a typed prefix", bad, err)
		}
	}
}

// TestBadConnRetry checks the driver's fault contract with the pool: a
// one-shot permanent device fault maps to driver.ErrBadConn, so
// database/sql silently evicts the connection and retries on a fresh
// one — the query succeeds with no error surfacing to the caller.
func TestBadConnRetry(t *testing.T) {
	db := openHospital(t, "ghostdb://?faults=failop=1")
	var n int
	err := db.QueryRow(`SELECT COUNT(*) FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`).Scan(&n)
	if err != nil {
		t.Fatalf("query over a one-shot fault should be retried transparently: %v", err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	eng := engineOf(t, db)
	if eng.FatalError() != nil {
		t.Fatalf("one-shot fault latched the engine dead: %v", eng.FatalError())
	}
	snap := eng.MetricsSnapshot()
	if v, ok := snap.Get("faults_injected_total"); !ok || v.Value == 0 {
		t.Fatalf("faults_injected_total = %+v, want > 0", v)
	}
}

// TestDeadDeviceSurfacesBadConn checks the other half of the contract:
// after a power cut the device never comes back, every retry fails, and
// the caller sees the fatal cause rather than a silent hang.
func TestDeadDeviceSurfacesBadConn(t *testing.T) {
	db := openHospital(t, "ghostdb://?faults=cutop=1")
	var n int
	err := db.QueryRow(`SELECT COUNT(*) FROM Visit Vis WHERE Vis.VisID > 0`).Scan(&n)
	if err == nil {
		t.Fatal("query on a dead device succeeded")
	}
	eng := engineOf(t, db)
	if eng.FatalError() == nil {
		t.Fatal("power cut did not latch the engine's fatal error")
	}
}

// TestCanceledContextUnderFaults cancels a query mid-flight while
// transient faults are being injected and retried: the caller gets
// context.Canceled (not a fault error), the engine counts the
// cancellation, and the connection stays usable.
func TestCanceledContextUnderFaults(t *testing.T) {
	db := openHospital(t, "ghostdb://?faults=seed=3,read.transient=0.01,bus.transient=0.01")
	// Finalize the load so cancellation hits the query path.
	if _, err := db.Query(`SELECT Vis.VisID FROM Visit Vis`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The driver rejects an already-canceled context before the engine
	// runs; push one query through the raw session so the cancellation
	// lands mid-execution and the engine counts it.
	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Raw(func(dc any) error {
		_, qerr := dc.(*Conn).Session().Query(
			`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`, core.WithContext(ctx))
		if !errors.Is(qerr, context.Canceled) {
			t.Fatalf("session query err = %v, want context.Canceled", qerr)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	eng := engineOf(t, db)
	snap := eng.MetricsSnapshot()
	if v, ok := snap.Get("queries_canceled_total"); !ok || v.Value == 0 {
		t.Fatalf("queries_canceled_total = %+v, want > 0", v)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit Vis WHERE Vis.VisID > 0`).Scan(&n); err != nil || n != 3 {
		t.Fatalf("follow-up query after cancellation: n=%d err=%v", n, err)
	}
}

// TestDegradedReadsDSN drives the degraded-read knob through the DSN:
// with one of four shards dead, dimension-rooted queries keep answering
// from surviving replicas while root queries fail fast.
func TestDegradedReadsDSN(t *testing.T) {
	db := openHospital(t, "ghostdb://?shards=4&degraded=on&faults=cutop=1,shard=2")
	// The first root query scatters to every shard and trips the cut.
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit Vis WHERE Vis.VisID > 0`).Scan(&n); err == nil {
		t.Fatal("root query on a dying shard succeeded")
	}
	var name string
	if err := db.QueryRow(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'Spain'`).Scan(&name); err != nil {
		t.Fatalf("dimension query not served from survivors: %v", err)
	}
	if name != "Gall" {
		t.Fatalf("name = %q, want Gall", name)
	}
}

var _ = sql.ErrNoRows // keep database/sql imported alongside helpers
