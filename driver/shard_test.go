package driver

import (
	"database/sql"
	"fmt"
	"strings"
	"testing"
)

// TestParseDSNShards pins the shards parameter's grammar: default 1,
// positive counts accepted, everything else rejected with the driver
// error prefix.
func TestParseDSNShards(t *testing.T) {
	cfg, err := ParseDSN("")
	if err != nil || cfg.Shards != 1 {
		t.Fatalf("defaults = %+v, %v; want shards=1", cfg, err)
	}
	cfg, err = ParseDSN("ghostdb://?shards=4")
	if err != nil || cfg.Shards != 4 {
		t.Fatalf("cfg = %+v, %v; want shards=4", cfg, err)
	}
	if cfg, err = ParseDSN("ghostdb://?shards=1"); err != nil || cfg.Shards != 1 {
		t.Fatalf("shards=1 = %+v, %v", cfg, err)
	}
	for _, bad := range []string{
		"ghostdb://?shards=0",
		"ghostdb://?shards=-2",
		"ghostdb://?shards=many",
		"ghostdb://?shards=2.5",
		"ghostdb://?shards=",
	} {
		if _, err := ParseDSN(bad); err == nil {
			t.Errorf("ParseDSN(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "ghostdb driver:") {
			t.Errorf("ParseDSN(%q) error %q lacks driver prefix", bad, err)
		}
	}
}

// TestShardedDSNEndToEnd drives a sharded engine purely through
// database/sql: bulk load, queries, live DML and CHECKPOINT must agree
// with the default single-device engine; shards=1 must behave as the
// legacy path.
func TestShardedDSNEndToEnd(t *testing.T) {
	single := openHospital(t, "ghostdb://?shards=1")
	sharded := openHospital(t, "ghostdb://?shards=2")

	type step struct {
		query string
		exec  string
	}
	steps := []step{
		{query: `SELECT Vis.VisID, Vis.Date FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`},
		{query: `SELECT Doc.Name FROM Doctor Doc, Visit Vis WHERE Vis.Purpose = 'Sclerosis' AND Vis.DocID = Doc.DocID`},
		{query: `SELECT COUNT(*), MIN(Vis.VisID), MAX(Vis.VisID) FROM Visit Vis`},
		{exec: `INSERT INTO Visit VALUES (4, DATE '2007-03-05', 'Checkup', 2)`},
		{query: `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Checkup' ORDER BY Vis.VisID`},
		{exec: `UPDATE Visit SET Purpose = 'Sclerosis' WHERE VisID = 1`},
		{exec: `DELETE FROM Visit WHERE VisID = 2`},
		{query: `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis' ORDER BY Vis.VisID DESC`},
		{exec: `CHECKPOINT`},
		{query: `SELECT Vis.VisID, Vis.Date FROM Visit Vis ORDER BY Vis.VisID`},
		{query: `SELECT Doc.Country, COUNT(*) FROM Visit Vis, Doctor Doc WHERE Vis.DocID = Doc.DocID GROUP BY Doc.Country ORDER BY Doc.Country`},
	}
	for i, st := range steps {
		if st.exec != "" {
			ra, err := single.Exec(st.exec)
			rb, err2 := sharded.Exec(st.exec)
			if err != nil || err2 != nil {
				t.Fatalf("step %d %q: single %v, sharded %v", i, st.exec, err, err2)
			}
			na, _ := ra.RowsAffected()
			nb, _ := rb.RowsAffected()
			if na != nb {
				t.Fatalf("step %d %q: single affected %d, sharded %d", i, st.exec, na, nb)
			}
			continue
		}
		want := queryStrings(t, single, st.query)
		got := queryStrings(t, sharded, st.query)
		if len(want) != len(got) {
			t.Fatalf("step %d %q: single %d rows, sharded %d", i, st.query, len(want), len(got))
		}
		for r := range want {
			if want[r] != got[r] {
				t.Fatalf("step %d %q row %d: single %q, sharded %q", i, st.query, r, want[r], got[r])
			}
		}
	}
}

// queryStrings flattens a result set into one string per row, in
// result order.
func queryStrings(t *testing.T, db *sql.DB, q string) []string {
	t.Helper()
	rows, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprint(vals...))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
