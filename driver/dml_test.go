package driver

import (
	"database/sql"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/trace"
)

// engineOf digs the shared core engine out of a sql.DB (tests only).
func engineOf(t *testing.T, db *sql.DB) *core.DB {
	t.Helper()
	conn, err := db.Conn(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var eng *core.DB
	if err := conn.Raw(func(dc any) error {
		eng = dc.(*Conn).Session().DB()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestDriverLiveDML drives the full mutation lifecycle through
// database/sql: live INSERT/UPDATE/DELETE with real RowsAffected, and
// CHECKPOINT via Exec.
func TestDriverLiveDML(t *testing.T) {
	db := openHospital(t, "")

	// Finalize the load with a query, then mutate live.
	if _, err := db.Query(`SELECT VisID FROM Visit LIMIT 1`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-03', 'Sclerosis', 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("insert RowsAffected = %d", n)
	}

	res, err = db.Exec(`UPDATE Visit SET Purpose = 'Flu' WHERE Date > ?`, time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 { // visits 3 and 4
		t.Fatalf("update RowsAffected = %d", n)
	}

	res, err = db.Exec(`DELETE FROM Doctor WHERE Country = 'Spain'`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("delete RowsAffected = %d", n)
	}

	// Visits referencing the deleted doctor died with it (virtual
	// cascade): only visits 1 and 3 survive.
	var ids []int64
	rows, err := db.Query(`SELECT VisID FROM Visit`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("surviving visits = %v", ids)
	}

	// CHECKPOINT merges and renumbers densely.
	res, err = db.Exec(`CHECKPOINT`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n == 0 {
		t.Fatal("checkpoint absorbed nothing")
	}
	var count int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit`).Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("post-checkpoint visit count = %d", count)
	}
}

// TestDriverPreparedDML checks the compile-once/bind-many path for
// prepared DELETE/UPDATE statements through database/sql.
func TestDriverPreparedDML(t *testing.T) {
	db := openHospital(t, "")
	upd, err := db.Prepare(`UPDATE Visit SET Purpose = ? WHERE VisID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer upd.Close()
	for i := 1; i <= 3; i++ {
		res, err := upd.Exec(fmt.Sprintf("Purpose-%d", i), i)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("update %d RowsAffected = %d", i, n)
		}
	}
	del, err := db.Prepare(`DELETE FROM Visit WHERE Purpose = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer del.Close()
	res, err := del.Exec("Purpose-2")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("delete RowsAffected = %d", n)
	}
	var count int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit`).Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

// TestDriverScriptWithDMLParams checks that a multi-statement Exec
// script binds '?' placeholders inside DELETE/UPDATE statements too
// (ordinals run left to right across the whole script).
func TestDriverScriptWithDMLParams(t *testing.T) {
	db := openHospital(t, "")
	res, err := db.Exec(
		`UPDATE Visit SET Purpose = ? WHERE VisID = ?; DELETE FROM Visit WHERE Purpose = ?`,
		"Doomed", int64(1), "Doomed")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 { // one updated + one deleted
		t.Fatalf("RowsAffected = %d, want 2", n)
	}
	var count int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit`).Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

// TestDriverDeltaLimit checks the deltalimit DSN knob: the engine
// auto-checkpoints before the delta reaches the limit.
func TestDriverDeltaLimit(t *testing.T) {
	db := openHospital(t, "ghostdb://?deltalimit=4")
	eng := engineOf(t, db)
	for i := 0; i < 12; i++ {
		if _, err := db.Exec(`UPDATE Visit SET Purpose = ? WHERE VisID = 1`, fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range eng.DeltaStats() {
			total += d.Rows + d.Tombstones
		}
		if total >= 4 {
			t.Fatalf("delta grew to %d entries despite deltalimit=4", total)
		}
	}
}

// TestConcurrentDMLTorture interleaves prepared INSERT/DELETE/UPDATE,
// CHECKPOINT and cached SELECTs from 16 goroutines through database/sql
// (run under -race in CI), then audits the session: no hidden-value
// leak, one-way device flow, and the delta RAM grant fully released
// after the final checkpoint.
func TestConcurrentDMLTorture(t *testing.T) {
	db := openHospital(t, "ghostdb://?capture=full")
	db.SetMaxOpenConns(16)
	// Some base data beyond the 3 seed visits.
	for i := 4; i <= 40; i++ {
		stmt := fmt.Sprintf(`INSERT INTO Visit VALUES (%d, DATE '2006-%02d-%02d', 'Checkup', %d)`,
			i, 1+i%12, 1+i%28, 1+i%2)
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(`SELECT VisID FROM Visit LIMIT 0`); err != nil {
		t.Fatal(err) // finalizes the bulk load (and probes zero rows)
	}
	eng := engineOf(t, db)

	ins, err := db.Prepare(`INSERT INTO Visit VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	del, err := db.Prepare(`DELETE FROM Visit WHERE Date = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer del.Close()
	upd, err := db.Prepare(`UPDATE Visit SET Purpose = ? WHERE VisID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer upd.Close()
	sel, err := db.Prepare(`SELECT VisID, Purpose FROM Visit WHERE Date > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 977))
			date := func() time.Time {
				return time.Date(2006, time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC)
			}
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0: // live insert: race on the dense key, retry
					ok := false
					for attempt := 0; attempt < 30 && !ok; attempt++ {
						id, err := eng.NextID("Visit")
						if err != nil {
							errc <- err
							return
						}
						_, err = ins.Exec(int64(id), date(), fmt.Sprintf("Insert-%d-%d", g, i), int64(1+rng.Intn(2)))
						if err == nil {
							ok = true
						} else if !strings.Contains(err.Error(), "primary key must be dense") {
							errc <- fmt.Errorf("goroutine %d insert: %w", g, err)
							return
						}
					}
				case 1:
					if _, err := del.Exec(date()); err != nil {
						errc <- fmt.Errorf("goroutine %d delete: %w", g, err)
						return
					}
				case 2:
					if _, err := upd.Exec(fmt.Sprintf("Update-%d-%d", g, i), int64(1+rng.Intn(50))); err != nil {
						errc <- fmt.Errorf("goroutine %d update: %w", g, err)
						return
					}
				case 3:
					if g == 0 {
						if _, err := db.Exec(`CHECKPOINT`); err != nil {
							errc <- fmt.Errorf("goroutine %d checkpoint: %w", g, err)
							return
						}
						continue
					}
					fallthrough
				default: // cached SELECT
					rows, err := sel.Query(date())
					if err != nil {
						errc <- fmt.Errorf("goroutine %d select: %w", g, err)
						return
					}
					for rows.Next() {
						var id int64
						var purpose string
						if err := rows.Scan(&id, &purpose); err != nil {
							errc <- err
							rows.Close()
							return
						}
					}
					if err := rows.Err(); err != nil {
						errc <- err
						return
					}
					rows.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Final checkpoint: the session-wide RAM audit must find the delta
	// grant fully released.
	if _, err := db.Exec(`CHECKPOINT`); err != nil {
		t.Fatal(err)
	}
	for _, u := range eng.Device().RAM.Snapshot() {
		if strings.HasPrefix(u.Label, "delta:") {
			t.Fatalf("delta RAM grant leaked after checkpoint: %+v", u)
		}
	}
	// The database is still coherent and queryable.
	var count int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit`).Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count < 0 {
		t.Fatalf("count = %d", count)
	}
	// No hidden value crossed into the spy's view, and the device only
	// ever talked to the secure display.
	leaks := trace.Audit(eng.Recorder().Events(), eng.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("torture session leaked: %v", leaks[0])
	}
	for _, e := range eng.Recorder().Events() {
		if e.From == trace.Device && e.To != trace.Display {
			t.Fatalf("device sent %s to %s", e.Kind, e.To)
		}
	}
}
