package driver

import (
	sqldriver "database/sql/driver"
	"fmt"
	"io"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Rows adapts a completed GhostDB result to driver.Rows. GhostDB's
// execution model materializes the full result on the secure display
// side before anything is returned, so Rows only cursors over it.
//
// Ownership: the engine's vectorized pipeline hands rows out in batches
// that own their memory (exec.RowBatch), and the materialized result rows
// are display-side values detached from any device buffer — so the driver
// performs no defensive per-row copy. Next converts each value straight
// into dest; database/sql's own row-copy semantics apply from there.
type Rows struct {
	res *core.Result
	i   int
}

var (
	_ sqldriver.Rows                           = (*Rows)(nil)
	_ sqldriver.RowsColumnTypeDatabaseTypeName = (*Rows)(nil)
)

// Result exposes the underlying GhostDB result (plan spec, operator
// report) for callers that unwrap the driver.
func (r *Rows) Result() *core.Result { return r.res }

// Columns reports the projection labels.
func (r *Rows) Columns() []string { return r.res.Columns }

// Close releases the cursor.
func (r *Rows) Close() error {
	r.i = len(r.res.Rows)
	return nil
}

// Next copies the next row, converting GhostDB values to driver values.
func (r *Rows) Next(dest []sqldriver.Value) error {
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for j, v := range row {
		dv, err := toDriverValue(v)
		if err != nil {
			return err
		}
		dest[j] = dv
	}
	return nil
}

// ColumnTypeDatabaseTypeName reports the SQL type name of column i
// from the compiled query's output metadata — aggregate outputs carry
// their computed kind (COUNT(*) is INTEGER, AVG is FLOAT, MIN/MAX the
// argument's kind), so the name is available even for empty results.
// Out-of-range columns report "" rather than panicking: results that
// bypass the compiler (EXPLAIN renderings, raw core.Results) have only
// the first row's values to infer from.
func (r *Rows) ColumnTypeDatabaseTypeName(i int) string {
	if i < 0 || i >= len(r.res.Columns) {
		return ""
	}
	if q := r.res.Query; q != nil {
		return q.OutputKind(i).String()
	}
	if len(r.res.Rows) == 0 || i >= len(r.res.Rows[0]) {
		return ""
	}
	return r.res.Rows[0][i].Kind().String()
}

// toDriverValue converts one GhostDB scalar to a driver.Value.
func toDriverValue(v value.Value) (sqldriver.Value, error) {
	switch v.Kind() {
	case value.Int:
		return v.Int(), nil
	case value.Float:
		return v.Float(), nil
	case value.String:
		return v.Str(), nil
	case value.Bool:
		return v.Bool(), nil
	case value.Date:
		y, m, d := v.Civil()
		return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC), nil
	case value.Invalid:
		return nil, nil
	default:
		return nil, fmt.Errorf("ghostdb driver: cannot convert %s value", v.Kind())
	}
}
