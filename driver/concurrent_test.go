package driver

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentPool is the acceptance-criteria concurrency test: 16
// goroutines hammer one sql.DB (pooled connections, mixed Query /
// Prepare / QueryRow) against the single shared engine. Run with -race.
func TestConcurrentPool(t *testing.T) {
	db := openHospital(t, "")
	db.SetMaxOpenConns(16)

	queries := map[string]int{
		`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`: 2,
		`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'`:    1,
		`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
			WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France' AND Vis.DocID = Doc.DocID`: 1,
	}
	keys := make([]string, 0, len(queries))
	for q := range queries {
		keys = append(keys, q)
	}

	const goroutines = 16
	const iters = 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := keys[(g+i)%len(keys)]
				want := queries[q]
				switch (g + i) % 3 {
				case 0:
					rows, err := db.QueryContext(context.Background(), q)
					if err != nil {
						errc <- err
						return
					}
					n := 0
					for rows.Next() {
						n++
					}
					rows.Close()
					if err := rows.Err(); err != nil {
						errc <- err
						return
					}
					if n != want {
						errc <- fmt.Errorf("goroutine %d: %d rows, want %d", g, n, want)
						return
					}
				case 1:
					stmt, err := db.Prepare(q)
					if err != nil {
						errc <- err
						return
					}
					rows, err := stmt.Query()
					if err != nil {
						stmt.Close()
						errc <- err
						return
					}
					n := 0
					for rows.Next() {
						n++
					}
					rows.Close()
					stmt.Close()
					if n != want {
						errc <- fmt.Errorf("goroutine %d (prepared): %d rows, want %d", g, n, want)
						return
					}
				case 2:
					if err := db.Ping(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentFirstQuery races the build-finalizing first query across
// goroutines: exactly one wins the build, everyone sees the data.
func TestConcurrentFirstQuery(t *testing.T) {
	db := openHospital(t, "")
	db.SetMaxOpenConns(8)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var name string
			if err := db.QueryRow(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'Spain'`).Scan(&name); err != nil {
				errc <- err
				return
			}
			if name != "Gall" {
				errc <- fmt.Errorf("name = %q", name)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
