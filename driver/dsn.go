package driver

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/bus"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/trace"
)

// Config is a parsed DSN: the simulated hardware and engine options for
// one GhostDB instance.
type Config struct {
	// Profile names the device hardware profile. "smartusb2007" (the
	// default) is the paper's Figure 2 smart USB device.
	Profile string
	// USB selects the terminal-device channel: "full" (12 Mb/s, the
	// 2007 default) or "high" (480 Mb/s, the paper's envisioned future).
	USB string
	// FPR is the Bloom filters' target false-positive rate (default 0.01).
	FPR float64
	// Capture selects trace capture: "meta" (default) or "full" (payload
	// values, enabling the security audit).
	Capture string
	// DeviceIndexes lists visible columns ("Table.Column") that also get
	// a climbing index on the device (Figure 4's Doctor.Country index).
	DeviceIndexes []string
	// PlanCache bounds the engine's compiled-plan cache in entries.
	// -1 means the engine default (256); 0 disables caching.
	PlanCache int
	// Batch is the execution engine's vectorization granularity (IDs per
	// operator batch, clamped to at most 1024). -1 means the engine
	// default (1024); 1 selects the row-at-a-time reference engine,
	// which produces bit-identical simulated device times at lower host
	// throughput.
	Batch int
	// DeltaLimit auto-checkpoints the live-DML delta once it holds this
	// many entries (rows plus tombstones). -1 (the default) disables
	// auto-checkpointing: the delta grows until an explicit CHECKPOINT
	// or until the device RAM budget rejects further mutations.
	DeltaLimit int
	// SlowQuery arms the engine's built-in slow-query logger: queries
	// whose wall-clock latency reaches this threshold are logged through
	// log/slog and counted in slow_queries_total. Zero disables it.
	SlowQuery time.Duration
	// Metrics controls the engine metrics registry (default on). Off
	// makes MetricsSnapshot return nil and removes the per-query
	// counter updates.
	Metrics bool
	// Shards splits the database over N simulated devices with
	// scatter-gather query execution. 1 (the default) is the classic
	// single-device engine.
	Shards int
	// Faults is a deterministic fault plan in the internal/fault DSN
	// grammar ("seed=42,read.transient=0.001,cutop=500,..."). Empty
	// (the default) injects nothing.
	Faults string
	// Degraded keeps a sharded database answering dimension-rooted
	// queries from surviving replicas when a shard's device dies.
	Degraded bool
	// Integrity controls the per-page checksums on the simulated flash
	// (default on). Off is a benchmarking baseline, not a mode to run.
	Integrity bool
	// Backend selects the storage backend under the device: "sim" (the
	// default simulated NAND with its deterministic cost model) or "file"
	// (persistent real-file pages under Path). With "file", opening a DSN
	// whose Path already holds a database REOPENS it — schema, committed
	// data and all — instead of creating a fresh one.
	Backend string
	// Path is the file backend's device directory (required for
	// backend=file; a sharded engine puts each device in a shardN
	// subdirectory).
	Path string
	// Fsync makes the file backend flush dirty segments at every commit
	// point, extending durability from process crashes to host power
	// loss. Off by default.
	Fsync bool
}

func defaultConfig() *Config {
	return &Config{Profile: "smartusb2007", USB: "full", FPR: 0.01, Capture: "meta", PlanCache: -1, Batch: -1, DeltaLimit: -1, Metrics: true, Shards: 1, Integrity: true, Backend: "sim"}
}

// ParseDSN parses a GhostDB data source name.
//
// The general form is
//
//	ghostdb://?profile=smartusb2007&usb=high&fpr=0.01&capture=full&deviceindex=Doctor.Country
//
// The empty string is a valid DSN meaning "all defaults". Parameters:
//
//	profile      device hardware profile: "smartusb2007"
//	usb          terminal-device channel: "full" | "high"
//	fpr          Bloom target false-positive rate in (0, 0.5]
//	capture      wire trace capture: "meta" | "full"
//	deviceindex  visible column "Table.Column"; may repeat
//	plancache    compiled-plan cache entries; 0 disables (default 256)
//	batch        execution batch size in IDs; 1 = row-at-a-time (default 1024)
//	deltalimit   auto-CHECKPOINT once the live-DML delta holds N entries
//	slowquery    log queries at least this slow (Go duration, e.g. 50ms)
//	metrics      engine metrics registry: "on" (default) | "off"
//	shards       split the DB over N simulated devices (default 1)
//	faults       deterministic fault plan ("seed=42,read.transient=0.001,cutop=500")
//	degraded     serve dimension queries from surviving shards: "on" | "off" (default)
//	integrity    per-page flash checksums: "on" (default) | "off"
//	backend      storage backend: "sim" (default) | "file" (persistent real files)
//	path         file backend's device directory (required with backend=file)
//	fsync        file backend flushes at commit points: "on" | "off" (default)
func ParseDSN(dsn string) (*Config, error) {
	cfg := defaultConfig()
	if dsn == "" {
		return cfg, nil
	}
	u, err := url.Parse(dsn)
	if err != nil {
		return nil, fmt.Errorf("ghostdb driver: invalid DSN %q: %v", dsn, err)
	}
	if u.Scheme != "ghostdb" {
		return nil, fmt.Errorf("ghostdb driver: DSN scheme must be ghostdb://, got %q", dsn)
	}
	if u.Host != "" || (u.Path != "" && u.Path != "/") {
		return nil, fmt.Errorf("ghostdb driver: DSN has host/path %q; GhostDB is in-process, use ghostdb://?param=...", dsn)
	}
	params, err := url.ParseQuery(u.RawQuery)
	if err != nil {
		return nil, fmt.Errorf("ghostdb driver: invalid DSN query %q: %v", u.RawQuery, err)
	}
	// Validate in sorted key order so a DSN with several bad parameters
	// always reports the same one, instead of whichever the map
	// iteration happened to visit first.
	keys := make([]string, 0, len(params))
	for key := range params {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		vals := params[key]
		switch strings.ToLower(key) {
		case "profile":
			cfg.Profile = strings.ToLower(vals[len(vals)-1])
			if cfg.Profile != "smartusb2007" {
				return nil, fmt.Errorf("ghostdb driver: unknown profile %q (want smartusb2007)", cfg.Profile)
			}
		case "usb":
			cfg.USB = strings.ToLower(vals[len(vals)-1])
			if cfg.USB != "full" && cfg.USB != "high" {
				return nil, fmt.Errorf("ghostdb driver: unknown usb speed %q (want full or high)", cfg.USB)
			}
		case "fpr":
			f, err := strconv.ParseFloat(vals[len(vals)-1], 64)
			if err != nil || f <= 0 || f > 0.5 {
				return nil, fmt.Errorf("ghostdb driver: fpr must be a float in (0, 0.5], got %q", vals[len(vals)-1])
			}
			cfg.FPR = f
		case "capture":
			cfg.Capture = strings.ToLower(vals[len(vals)-1])
			if cfg.Capture != "meta" && cfg.Capture != "full" {
				return nil, fmt.Errorf("ghostdb driver: unknown capture level %q (want meta or full)", cfg.Capture)
			}
		case "batch":
			n, err := strconv.Atoi(vals[len(vals)-1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("ghostdb driver: batch must be a positive ID count, got %q", vals[len(vals)-1])
			}
			cfg.Batch = n
		case "plancache":
			n, err := strconv.Atoi(vals[len(vals)-1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("ghostdb driver: plancache must be a non-negative entry count, got %q", vals[len(vals)-1])
			}
			cfg.PlanCache = n
		case "deltalimit":
			n, err := strconv.Atoi(vals[len(vals)-1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("ghostdb driver: deltalimit must be a positive entry count, got %q", vals[len(vals)-1])
			}
			cfg.DeltaLimit = n
		case "slowquery":
			d, err := time.ParseDuration(vals[len(vals)-1])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("ghostdb driver: slowquery must be a positive duration, got %q", vals[len(vals)-1])
			}
			cfg.SlowQuery = d
		case "metrics":
			switch strings.ToLower(vals[len(vals)-1]) {
			case "on", "true", "1":
				cfg.Metrics = true
			case "off", "false", "0":
				cfg.Metrics = false
			default:
				return nil, fmt.Errorf("ghostdb driver: metrics must be on or off, got %q", vals[len(vals)-1])
			}
		case "shards":
			n, err := strconv.Atoi(vals[len(vals)-1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("ghostdb driver: shards must be a positive shard count, got %q", vals[len(vals)-1])
			}
			cfg.Shards = n
		case "faults":
			v := vals[len(vals)-1]
			if _, err := fault.ParsePlan(v); err != nil {
				return nil, fmt.Errorf("ghostdb driver: %v", err)
			}
			cfg.Faults = v
		case "degraded":
			switch strings.ToLower(vals[len(vals)-1]) {
			case "on", "true", "1":
				cfg.Degraded = true
			case "off", "false", "0":
				cfg.Degraded = false
			default:
				return nil, fmt.Errorf("ghostdb driver: degraded must be on or off, got %q", vals[len(vals)-1])
			}
		case "integrity":
			switch strings.ToLower(vals[len(vals)-1]) {
			case "on", "true", "1":
				cfg.Integrity = true
			case "off", "false", "0":
				cfg.Integrity = false
			default:
				return nil, fmt.Errorf("ghostdb driver: integrity must be on or off, got %q", vals[len(vals)-1])
			}
		case "backend":
			cfg.Backend = strings.ToLower(vals[len(vals)-1])
			if cfg.Backend != "sim" && cfg.Backend != "file" {
				return nil, fmt.Errorf("ghostdb driver: unknown backend %q (want sim or file)", cfg.Backend)
			}
		case "path":
			cfg.Path = vals[len(vals)-1]
		case "fsync":
			switch strings.ToLower(vals[len(vals)-1]) {
			case "on", "true", "1":
				cfg.Fsync = true
			case "off", "false", "0":
				cfg.Fsync = false
			default:
				return nil, fmt.Errorf("ghostdb driver: fsync must be on or off, got %q", vals[len(vals)-1])
			}
		case "deviceindex":
			for _, v := range vals {
				dot := strings.IndexByte(v, '.')
				if dot <= 0 || dot == len(v)-1 || strings.IndexByte(v[dot+1:], '.') >= 0 {
					return nil, fmt.Errorf("ghostdb driver: deviceindex must be Table.Column, got %q", v)
				}
				cfg.DeviceIndexes = append(cfg.DeviceIndexes, v)
			}
		default:
			return nil, fmt.Errorf("ghostdb driver: unknown DSN parameter %q", key)
		}
	}
	if cfg.Backend == "file" && cfg.Path == "" {
		return nil, fmt.Errorf("ghostdb driver: backend=file requires a path parameter")
	}
	if cfg.Backend != "file" && (cfg.Path != "" || cfg.Fsync) {
		return nil, fmt.Errorf("ghostdb driver: path and fsync require backend=file")
	}
	return cfg, nil
}

// options maps the config onto core engine options. It returns an error
// when the config cannot be honored — most importantly a Faults plan
// that does not parse: a hand-built Config asking for fault injection
// must fail loudly rather than silently running with no faults armed.
func (c *Config) options() ([]core.Option, error) {
	opts := []core.Option{
		core.WithProfile(device.SmartUSB2007()),
		core.WithTargetFPR(c.FPR),
	}
	if c.USB == "high" {
		opts = append(opts, core.WithUSB(bus.USBHighSpeed()))
	} else {
		opts = append(opts, core.WithUSB(bus.USBFullSpeed()))
	}
	if c.Capture == "full" {
		opts = append(opts, core.WithCapture(trace.CaptureFull))
	}
	for _, spec := range c.DeviceIndexes {
		dot := strings.IndexByte(spec, '.')
		opts = append(opts, core.WithDeviceIndex(spec[:dot], spec[dot+1:]))
	}
	if c.PlanCache >= 0 {
		opts = append(opts, core.WithPlanCacheSize(c.PlanCache))
	}
	if c.Batch >= 1 {
		opts = append(opts, core.WithBatchSize(c.Batch))
	}
	if c.DeltaLimit >= 1 {
		opts = append(opts, core.WithDeltaLimit(c.DeltaLimit))
	}
	if c.SlowQuery > 0 {
		opts = append(opts, core.WithSlowQuery(c.SlowQuery, nil))
	}
	if !c.Metrics {
		opts = append(opts, core.WithMetrics(false))
	}
	if c.Shards > 1 {
		opts = append(opts, core.WithShards(c.Shards))
	}
	if c.Faults != "" {
		p, err := fault.ParsePlan(c.Faults)
		if err != nil {
			return nil, fmt.Errorf("ghostdb driver: %v", err)
		}
		opts = append(opts, core.WithFaultPlan(p))
	}
	if c.Degraded {
		opts = append(opts, core.WithDegradedReads(true))
	}
	if !c.Integrity {
		opts = append(opts, core.WithIntegrity(false))
	}
	if c.Backend == "file" {
		opts = append(opts, core.WithBackend(storage.File(c.Path, c.Fsync)))
	}
	return opts, nil
}

// open builds the engine this config describes: a file-backend config
// whose path already holds a database reopens it (committed schema and
// data restored); everything else creates a fresh engine.
func (c *Config) open() (*core.DB, error) {
	opts, err := c.options()
	if err != nil {
		return nil, err
	}
	if c.Backend == "file" && core.PathHoldsDatabase(c.Path) {
		db, _, err := core.OpenPath(c.Path, opts...)
		return db, err
	}
	return core.Open(opts...)
}
