// Package driver is GhostDB's database/sql driver: it lets ordinary Go
// applications talk to a GhostDB instance — hidden columns, smart USB
// device simulator and all — through the standard library's database/sql
// interface, without touching the bespoke ghostdb API.
//
// Importing the package registers the driver under the name "ghostdb":
//
//	import (
//		"database/sql"
//
//		_ "github.com/ghostdb/ghostdb/driver"
//	)
//
//	db, err := sql.Open("ghostdb", "ghostdb://?usb=high&fpr=0.01")
//	_, err = db.Exec(`CREATE TABLE Visit (
//		VisID INTEGER PRIMARY KEY,
//		Date DATE,
//		Purpose CHAR(100) HIDDEN)`)
//
// # One engine per sql.DB
//
// Every sql.DB opened through this driver owns exactly one GhostDB
// engine (one simulated smart USB device plus one visible store); the
// connections database/sql pools are lightweight sessions into that
// shared engine. Host-side work (parsing, planning) runs concurrently
// across sessions, while device execution serializes on the engine's
// device gate — the same discipline a hardware token imposes on its USB
// command stream. Closing the sql.DB closes the engine.
//
// # Lifecycle
//
// GhostDB is bulk-loaded: DDL and INSERTs (via Exec) stage data, and the
// first query (or first DML) finalizes the load, building the hidden
// store and device indexes in a secure setting. After that the base
// column files are write-once, but the database stays live: INSERT,
// UPDATE and DELETE land in a RAM delta on the device (Exec reports real
// RowsAffected), queries merge the delta transparently, and CHECKPOINT
// (or the deltalimit DSN knob) merges it into fresh flash segments,
// renumbering identifiers densely. DDL after the load is rejected.
//
// # Prepared statements and the plan cache
//
// Statements may use '?' placeholders, bound positionally from the
// database/sql argument list — in SELECT predicates and in INSERT
// values alike. A prepared SELECT compiles once (parse, bind, plan
// enumeration, optimizer choice) and afterwards only binds fresh
// parameter values and runs; the compilation lives in a plan cache
// shared by every connection of the sql.DB, so even unprepared Query
// calls reuse it when the same statement shape repeats. The cache is
// tuned (or disabled) with the plancache DSN parameter.
//
// # DSN
//
// The data source name selects the simulated hardware and engine
// options:
//
//	ghostdb://?profile=smartusb2007&usb=high&fpr=0.01&capture=full&deviceindex=Doctor.Country
//
// See ParseDSN for the full parameter list. The empty DSN is valid and
// means "paper hardware, all defaults".
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"sync"

	"github.com/ghostdb/ghostdb/internal/core"
)

func init() {
	sql.Register("ghostdb", &Driver{})
}

// Driver implements database/sql/driver.Driver and DriverContext.
type Driver struct{}

var (
	_ sqldriver.Driver        = (*Driver)(nil)
	_ sqldriver.DriverContext = (*Driver)(nil)
)

// Open opens a new connection. database/sql prefers OpenConnector; Open
// exists for direct driver use and creates a standalone engine.
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once and returns the connector that owns
// this sql.DB's single shared GhostDB engine. The config is mapped onto
// engine options eagerly, so a DSN (or config) the engine cannot honor
// — e.g. a fault plan that does not parse — fails here instead of being
// silently dropped at first Connect.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	cfg, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	if _, err := cfg.options(); err != nil {
		return nil, err
	}
	return &Connector{drv: d, cfg: cfg}, nil
}

// OpenEngine parses dsn and opens the GhostDB engine it describes,
// bypassing database/sql: the caller owns the returned engine and its
// sessions directly. This is the entry point for front-ends such as
// cmd/ghostdb-server that multiplex many remote clients onto one
// engine's session pool.
func OpenEngine(dsn string) (*core.DB, error) {
	cfg, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return cfg.open()
}

// Connector creates sessions into one lazily-opened GhostDB engine. It
// implements driver.Connector and io.Closer (database/sql calls Close
// when the sql.DB is closed, shutting the engine down).
type Connector struct {
	drv *Driver
	cfg *Config

	mu     sync.Mutex
	opened bool
	db     *core.DB
	err    error
}

var _ sqldriver.Connector = (*Connector)(nil)

// engine opens the shared GhostDB instance on first use.
func (c *Connector) engine() (*core.DB, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.opened {
		c.opened = true
		c.db, c.err = c.cfg.open()
	}
	return c.db, c.err
}

// Connect opens one pooled connection: a session on the shared engine.
func (c *Connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db, err := c.engine()
	if err != nil {
		return nil, err
	}
	sess, err := db.NewSession()
	if err != nil {
		return nil, err
	}
	return &Conn{sess: sess}, nil
}

// Driver reports the connector's driver.
func (c *Connector) Driver() sqldriver.Driver { return c.drv }

// Close shuts the shared engine down; in-flight queries finish first.
// Closing a sql.DB that never connected is a no-op: the engine is not
// opened just to be closed.
func (c *Connector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.opened || c.db == nil {
		return nil
	}
	return c.db.Close()
}
