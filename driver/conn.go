package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/sql"
)

// ErrNoTransactions is returned by Begin: GhostDB is bulk-loaded and
// read-only after the load, so there is nothing to make transactional.
var ErrNoTransactions = errors.New("ghostdb driver: transactions are not supported")

// ErrNoArgs is returned when a statement is executed with placeholder
// arguments; GhostDB SQL has no placeholder syntax.
var ErrNoArgs = errors.New("ghostdb driver: placeholder arguments are not supported")

// Conn is one pooled database/sql connection: a session on the shared
// GhostDB engine.
type Conn struct {
	sess *core.Session
}

var (
	_ sqldriver.Conn           = (*Conn)(nil)
	_ sqldriver.ExecerContext  = (*Conn)(nil)
	_ sqldriver.QueryerContext = (*Conn)(nil)
	_ sqldriver.Pinger         = (*Conn)(nil)
)

// Session exposes the underlying core session (stats, reports).
func (c *Conn) Session() *core.Session { return c.sess }

// Prepare parses and classifies the statement eagerly (syntax errors
// surface here) and defers binding to execution time, since binding
// needs the bulk load to be finalized.
func (c *Conn) Prepare(query string) (sqldriver.Stmt, error) {
	stmts, err := sql.ParseScript(query)
	if err != nil {
		return nil, err
	}
	isSelect, err := classify(stmts)
	if err != nil {
		return nil, err
	}
	return &Stmt{conn: c, query: query, isSelect: isSelect, affected: staged(stmts)}, nil
}

// Close releases the session; the shared engine stays up.
func (c *Conn) Close() error { return c.sess.Close() }

// Begin is unsupported: GhostDB is read-only after the bulk load.
func (c *Conn) Begin() (sqldriver.Tx, error) { return nil, ErrNoTransactions }

// Ping verifies the session and engine are open.
func (c *Conn) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.sess.Ping()
}

// ExecContext stages DDL and INSERT statements. One call may carry a
// whole semicolon-separated script; the bulk load is finalized by the
// first query.
func (c *Conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(args) > 0 {
		return nil, ErrNoArgs
	}
	return c.exec(query)
}

func (c *Conn) exec(query string) (sqldriver.Result, error) {
	stmts, err := sql.ParseScript(query)
	if err != nil {
		return nil, err
	}
	isSelect, err := classify(stmts)
	if err != nil {
		return nil, err
	}
	if isSelect {
		return nil, errors.New("ghostdb driver: use Query for SELECT statements")
	}
	if err := c.sess.Stage(query); err != nil {
		return nil, err
	}
	return execResult{rows: staged(stmts)}, nil
}

// staged counts the rows a DDL/INSERT script stages (RowsAffected).
func staged(stmts []sql.Statement) int64 {
	n := int64(0)
	for _, s := range stmts {
		if ins, ok := s.(*sql.Insert); ok {
			n += int64(len(ins.Rows))
		}
	}
	return n
}

// QueryContext finalizes the bulk load if needed and executes a SELECT
// through the shared device gate.
func (c *Conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(args) > 0 {
		return nil, ErrNoArgs
	}
	return c.query(query)
}

func (c *Conn) query(query string) (sqldriver.Rows, error) {
	if err := c.sess.EnsureBuilt(); err != nil {
		return nil, err
	}
	res, err := c.sess.Query(query)
	if err != nil {
		return nil, err
	}
	return &Rows{res: res}, nil
}

// classify reports whether the script is a single SELECT (true) or a
// pure DDL/INSERT script (false); mixing the two is an error.
func classify(stmts []sql.Statement) (isSelect bool, err error) {
	for _, s := range stmts {
		if _, ok := s.(*sql.Select); ok {
			if len(stmts) != 1 {
				return false, errors.New("ghostdb driver: SELECT must be the only statement in a call")
			}
			return true, nil
		}
	}
	return false, nil
}

// Stmt is a prepared statement. GhostDB SQL has no placeholders, so
// NumInput is always zero. The parse work happens once, at Prepare.
type Stmt struct {
	conn     *Conn
	query    string
	isSelect bool
	affected int64 // rows staged per Exec (pre-counted at Prepare)
}

var _ sqldriver.Stmt = (*Stmt)(nil)

// Close releases the statement (nothing is held device-side).
func (s *Stmt) Close() error { return nil }

// NumInput reports zero: no placeholder support.
func (s *Stmt) NumInput() int { return 0 }

// Exec stages the prepared DDL/INSERT script (no re-parse: the script
// was classified and counted at Prepare).
func (s *Stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	if len(args) > 0 {
		return nil, ErrNoArgs
	}
	if s.isSelect {
		return nil, errors.New("ghostdb driver: use Query for SELECT statements")
	}
	if err := s.conn.sess.Stage(s.query); err != nil {
		return nil, err
	}
	return execResult{rows: s.affected}, nil
}

// Query executes the prepared SELECT.
func (s *Stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	if len(args) > 0 {
		return nil, ErrNoArgs
	}
	if !s.isSelect {
		return nil, fmt.Errorf("ghostdb driver: prepared statement is not a SELECT: %s", s.query)
	}
	return s.conn.query(s.query)
}

// execResult reports rows staged by an Exec call.
type execResult struct{ rows int64 }

// LastInsertId is unsupported: GhostDB primary keys are dense 1..N and
// assigned by the application.
func (execResult) LastInsertId() (int64, error) {
	return 0, errors.New("ghostdb driver: LastInsertId is not supported")
}

// RowsAffected reports the number of rows staged.
func (r execResult) RowsAffected() (int64, error) { return r.rows, nil }
