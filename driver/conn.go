package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// ErrNoTransactions is returned by Begin: GhostDB has no multi-statement
// transactions — each DML statement applies atomically on its own (the
// delta merge is the engine's unit of durability).
var ErrNoTransactions = errors.New("ghostdb driver: transactions are not supported")

// ErrStmtClosed is returned when a closed prepared statement is used.
var ErrStmtClosed = errors.New("ghostdb driver: statement is closed")

// Conn is one pooled database/sql connection: a session on the shared
// GhostDB engine.
type Conn struct {
	sess *core.Session
}

var (
	_ sqldriver.Conn           = (*Conn)(nil)
	_ sqldriver.ExecerContext  = (*Conn)(nil)
	_ sqldriver.QueryerContext = (*Conn)(nil)
	_ sqldriver.Pinger         = (*Conn)(nil)
)

// Session exposes the underlying core session (stats, reports).
func (c *Conn) Session() *core.Session { return c.sess }

// Prepare parses and classifies the statement eagerly (syntax errors
// surface here, and NumInput counts the '?' placeholders) and defers
// binding to execution time, since binding needs the bulk load to be
// finalized. A prepared SELECT compiles once — through the engine's
// shared plan cache — on its first Query and reuses the compiled plan
// for every later execution, with fresh parameter bindings each time.
func (c *Conn) Prepare(query string) (sqldriver.Stmt, error) {
	stmts, err := sql.ParseScript(query)
	if err != nil {
		return nil, err
	}
	isSelect, err := classify(stmts)
	if err != nil {
		return nil, err
	}
	s := &Stmt{
		conn:      c,
		query:     query,
		isSelect:  isSelect,
		numParams: sql.CountParams(stmts...),
	}
	if !isSelect {
		s.stmts = stmts // a SELECT compiles from its text on first Query
	}
	return s, nil
}

// Close releases the session; the shared engine stays up.
func (c *Conn) Close() error { return c.sess.Close() }

// Begin is unsupported: GhostDB is read-only after the bulk load.
func (c *Conn) Begin() (sqldriver.Tx, error) { return nil, ErrNoTransactions }

// Ping verifies the session and engine are open.
func (c *Conn) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.sess.Ping()
}

// ExecContext executes DDL and DML. Before the bulk load is finalized,
// CREATE TABLE and INSERT statements stage data; afterwards INSERT,
// DELETE, UPDATE and CHECKPOINT are live mutations against the RAM delta
// (the first DML on a staged database finalizes the load). One call may
// carry a whole semicolon-separated script; '?' placeholders bind from
// args in ordinal order. RowsAffected reports staged or mutated rows.
func (c *Conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params, err := namedToParams(args)
	if err != nil {
		return nil, err
	}
	stmts, err := sql.ParseScript(query)
	if err != nil {
		return nil, err
	}
	isSelect, err := classify(stmts)
	if err != nil {
		return nil, err
	}
	if isSelect {
		return nil, errors.New("ghostdb driver: use Query for SELECT statements")
	}
	return c.exec(stmts, params)
}

// exec binds placeholder args into the parsed script and executes it:
// staging before the bulk load, live DML after. A single parameterized
// DELETE/UPDATE goes through the compiled-DML path (shared plan cache,
// late parameter binding).
func (c *Conn) exec(stmts []sql.Statement, params []value.Value) (sqldriver.Result, error) {
	if len(stmts) == 1 && len(params) > 0 {
		switch stmts[0].(type) {
		case *sql.Delete, *sql.Update:
			n, err := c.execDML(stmts[0].String(), params)
			if err != nil {
				return nil, err
			}
			return execResult{rows: n}, nil
		}
	}
	bound, err := bindScript(stmts, params)
	if err != nil {
		return nil, err
	}
	n, err := c.sess.ExecStatements(bound)
	if err != nil {
		return nil, err
	}
	return execResult{rows: n}, nil
}

// execDML compiles (through the shared plan cache) and runs one
// parameterized DELETE/UPDATE, finalizing the bulk load if needed.
func (c *Conn) execDML(text string, params []value.Value) (int64, error) {
	if err := c.sess.EnsureBuilt(); err != nil {
		return 0, err
	}
	cd, err := c.sess.CompileDML(text)
	if err != nil {
		return 0, err
	}
	return c.sess.ExecCompiled(cd, params)
}

// bindScript substitutes placeholder arguments into a script's INSERT
// rows and DELETE/UPDATE literals (ordinals run left to right across
// the whole script). A single parameterized DELETE/UPDATE never reaches
// here — Conn.exec routes it through the compiled-DML path first.
func bindScript(stmts []sql.Statement, params []value.Value) ([]sql.Statement, error) {
	want := sql.CountParams(stmts...)
	if len(params) != want {
		return nil, fmt.Errorf("ghostdb driver: script has %d placeholders, got %d arguments", want, len(params))
	}
	if want == 0 {
		return stmts, nil
	}
	bound := make([]sql.Statement, len(stmts))
	for i, s := range stmts {
		var b sql.Statement
		var err error
		switch s := s.(type) {
		case *sql.Insert:
			b, err = s.BindParams(params)
		case *sql.Delete:
			b, err = s.BindParams(params)
		case *sql.Update:
			b, err = s.BindParams(params)
		default:
			b = s
		}
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	return bound, nil
}

// QueryContext finalizes the bulk load if needed and executes a SELECT
// through the shared device gate, binding '?' placeholders from args.
// The context is honored at execution batch boundaries: canceling it
// aborts the query and returns ctx.Err().
func (c *Conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params, err := namedToParams(args)
	if err != nil {
		return nil, err
	}
	return c.query(ctx, query, params)
}

func (c *Conn) query(ctx context.Context, query string, params []value.Value) (sqldriver.Rows, error) {
	if err := c.sess.EnsureBuilt(); err != nil {
		return nil, err
	}
	if len(params) == 0 {
		res, err := c.sess.Query(query, core.WithContext(ctx))
		if err != nil {
			return nil, badConn(err)
		}
		return &Rows{res: res}, nil
	}
	cq, err := c.sess.Compile(query)
	if err != nil {
		return nil, err
	}
	res, err := c.sess.QueryCompiled(cq, params, core.WithContext(ctx))
	if err != nil {
		return nil, badConn(err)
	}
	return &Rows{res: res}, nil
}

// badConn maps unrecoverable device faults onto driver.ErrBadConn so
// database/sql evicts the connection and retries the operation on a
// fresh one — the paper's "plug the key back in" recovery for one-shot
// hardware errors. Other errors pass through untouched.
func badConn(err error) error {
	if core.IsFaultFatal(err) {
		return fmt.Errorf("%w: %v", sqldriver.ErrBadConn, err)
	}
	return err
}

// classify reports whether the script is a single SELECT (true) or a
// DDL/DML script (false); mixing the two is an error.
func classify(stmts []sql.Statement) (isSelect bool, err error) {
	for _, s := range stmts {
		if _, ok := s.(*sql.Select); ok {
			if len(stmts) != 1 {
				return false, errors.New("ghostdb driver: SELECT must be the only statement in a call")
			}
			return true, nil
		}
	}
	return false, nil
}

// Stmt is a prepared statement. The parse work happens once, at Prepare;
// a SELECT additionally compiles once (parse, bind, plan enumeration,
// optimizer choice — shared through the engine's plan cache) on first
// execution and afterwards only binds fresh parameter values and runs.
// A prepared DELETE/UPDATE compiles the same way into a CompiledDML.
type Stmt struct {
	conn      *Conn
	query     string
	stmts     []sql.Statement // parsed at Prepare; DDL/DML scripts only
	isSelect  bool
	numParams int

	mu     sync.Mutex
	closed bool
	cq     *core.CompiledQuery // lazily compiled SELECT; nil until first Query
	cd     *core.CompiledDML   // lazily compiled DELETE/UPDATE; nil until first Exec
}

var (
	_ sqldriver.Stmt             = (*Stmt)(nil)
	_ sqldriver.StmtQueryContext = (*Stmt)(nil)
	_ sqldriver.StmtExecContext  = (*Stmt)(nil)
)

// Close releases the statement, dropping its compiled-plan and parsed-
// script references so a closed statement cannot pin plan-cache entries
// (or staged INSERT data) in memory.
func (s *Stmt) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cq = nil
	s.cd = nil
	s.stmts = nil
	return nil
}

// NumInput reports the number of '?' placeholders in the statement.
func (s *Stmt) NumInput() int { return s.numParams }

// Exec runs the prepared DDL/DML script (no re-parse: the script was
// parsed, classified and counted at Prepare), binding '?' placeholders
// from args. A single prepared DELETE/UPDATE compiles once — through the
// engine's shared plan cache — and afterwards only binds fresh
// parameters per execution, exactly like a prepared SELECT.
func (s *Stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	return s.execValues(params)
}

func (s *Stmt) execValues(params []value.Value) (sqldriver.Result, error) {
	if s.isSelect {
		return nil, errors.New("ghostdb driver: use Query for SELECT statements")
	}
	s.mu.Lock()
	closed, stmts := s.closed, s.stmts
	s.mu.Unlock()
	if closed {
		return nil, ErrStmtClosed
	}
	if len(stmts) == 1 {
		switch stmts[0].(type) {
		case *sql.Delete, *sql.Update:
			cd, err := s.compiledDML(stmts[0])
			if err != nil {
				return nil, err
			}
			n, err := s.conn.sess.ExecCompiled(cd, params)
			if err != nil {
				return nil, err
			}
			return execResult{rows: n}, nil
		}
	}
	return s.conn.exec(stmts, params)
}

// compiledDML returns the statement's compiled DML form, compiling (and
// finalizing the bulk load) on first use.
func (s *Stmt) compiledDML(stmt sql.Statement) (*core.CompiledDML, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStmtClosed
	}
	if s.cd != nil {
		return s.cd, nil
	}
	if err := s.conn.sess.EnsureBuilt(); err != nil {
		return nil, err
	}
	cd, err := s.conn.sess.CompileDML(stmt.String())
	if err != nil {
		return nil, err
	}
	s.cd = cd
	return cd, nil
}

// Query executes the prepared SELECT with args bound to its '?'
// placeholders, compiling it on first use.
func (s *Stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.queryContext(context.Background(), args)
}

// QueryContext is Query with cancellation: the context is honored at
// execution batch boundaries, and canceling it returns ctx.Err().
func (s *Stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params, err := namedToParams(args)
	if err != nil {
		return nil, err
	}
	return s.queryValues(ctx, params)
}

// ExecContext runs the prepared DDL/DML script. GhostDB mutations are
// atomic RAM-delta updates, so the context is only checked up front.
func (s *Stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params, err := namedToParams(args)
	if err != nil {
		return nil, err
	}
	return s.execValues(params)
}

func (s *Stmt) queryContext(ctx context.Context, args []sqldriver.Value) (sqldriver.Rows, error) {
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	return s.queryValues(ctx, params)
}

func (s *Stmt) queryValues(ctx context.Context, params []value.Value) (sqldriver.Rows, error) {
	if !s.isSelect {
		return nil, fmt.Errorf("ghostdb driver: prepared statement is not a SELECT: %s", s.query)
	}
	cq, err := s.compiled()
	if err != nil {
		return nil, err
	}
	res, err := s.conn.sess.QueryCompiled(cq, params, core.WithContext(ctx))
	if err != nil {
		return nil, badConn(err)
	}
	return &Rows{res: res}, nil
}

// compiled returns the statement's compiled form, compiling (and
// finalizing the bulk load) on first use.
func (s *Stmt) compiled() (*core.CompiledQuery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStmtClosed
	}
	if s.cq != nil {
		return s.cq, nil
	}
	if err := s.conn.sess.EnsureBuilt(); err != nil {
		return nil, err
	}
	cq, err := s.conn.sess.Compile(s.query)
	if err != nil {
		return nil, err
	}
	s.cq = cq
	return cq, nil
}

// toParams converts driver argument values to GhostDB values.
func toParams(args []sqldriver.Value) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		v, err := fromDriverValue(a)
		if err != nil {
			return nil, fmt.Errorf("ghostdb driver: argument %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// namedToParams converts NamedValue arguments (positional only: GhostDB
// placeholders are ordinal '?') to GhostDB values.
func namedToParams(args []sqldriver.NamedValue) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for _, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("ghostdb driver: named argument %q is not supported (use '?' placeholders)", a.Name)
		}
		if a.Ordinal < 1 || a.Ordinal > len(args) {
			return nil, fmt.Errorf("ghostdb driver: argument ordinal %d out of range", a.Ordinal)
		}
		v, err := fromDriverValue(a.Value)
		if err != nil {
			return nil, fmt.Errorf("ghostdb driver: argument %d: %w", a.Ordinal, err)
		}
		out[a.Ordinal-1] = v
	}
	return out, nil
}

// fromDriverValue converts one database/sql argument to a GhostDB value.
// time.Time arguments bind as DATE (GhostDB stores civil dates only).
func fromDriverValue(a sqldriver.Value) (value.Value, error) {
	switch a := a.(type) {
	case int64:
		return value.NewInt(a), nil
	case float64:
		return value.NewFloat(a), nil
	case bool:
		return value.NewBool(a), nil
	case string:
		return value.NewString(a), nil
	case []byte:
		return value.NewString(string(a)), nil
	case time.Time:
		return value.NewDate(a.Year(), int(a.Month()), a.Day()), nil
	case nil:
		return value.Value{}, errors.New("GhostDB has no NULLs")
	default:
		return value.Value{}, fmt.Errorf("unsupported type %T", a)
	}
}

// execResult reports rows staged by an Exec call.
type execResult struct{ rows int64 }

// LastInsertId is unsupported: GhostDB primary keys are dense 1..N and
// assigned by the application.
func (execResult) LastInsertId() (int64, error) {
	return 0, errors.New("ghostdb driver: LastInsertId is not supported")
}

// RowsAffected reports the number of rows staged.
func (r execResult) RowsAffected() (int64, error) { return r.rows, nil }
