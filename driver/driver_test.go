package driver

import (
	"database/sql"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// hospitalDDL is the package-doc Doctor/Visit example.
const hospitalDDL = `
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
`

const hospitalRows = `
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`

func openHospital(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("ghostdb", testBackendDSN(t, dsn))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(hospitalDDL); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(hospitalRows)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowsAffected(); err != nil || n != 5 {
		t.Fatalf("RowsAffected = %d, %v; want 5", n, err)
	}
	return db
}

// TestEndToEnd drives the acceptance-criteria flow: DDL with HIDDEN
// columns via ExecContext, QueryContext returning correct rows for the
// package-doc example, purely through database/sql.
func TestEndToEnd(t *testing.T) {
	db := openHospital(t, "")

	rows, err := db.Query(`SELECT Vis.VisID, Vis.Date, Doc.Name FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France' AND Vis.DocID = Doc.DocID`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || cols[2] != "Doctor.Name" {
		t.Fatalf("columns = %v", cols)
	}
	var got []string
	for rows.Next() {
		var visID int64
		var date time.Time
		var name string
		if err := rows.Scan(&visID, &date, &name); err != nil {
			t.Fatal(err)
		}
		if date.Year() != 2007 || date.Month() != time.February || date.Day() != 1 {
			t.Errorf("date = %v, want 2007-02-01", date)
		}
		got = append(got, name)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "Ellis" {
		t.Fatalf("rows = %v, want [Ellis]", got)
	}
}

// TestQueryRow exercises the single-row convenience path and hidden
// projections.
func TestQueryRow(t *testing.T) {
	db := openHospital(t, "")
	var purpose string
	err := db.QueryRow(`SELECT Vis.Purpose FROM Visit Vis WHERE Vis.VisID = 1`).Scan(&purpose)
	if err != nil {
		t.Fatal(err)
	}
	if purpose != "Checkup" {
		t.Fatalf("purpose = %q", purpose)
	}
}

// TestPreparedStatement reuses one prepared SELECT.
func TestPreparedStatement(t *testing.T) {
	db := openHospital(t, "")
	stmt, err := db.Prepare(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 3; i++ {
		rows, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		rows.Close()
		if n != 2 {
			t.Fatalf("iteration %d: %d rows, want 2", i, n)
		}
	}
}

// TestLifecycleErrors pins the driver's contract edges.
func TestLifecycleErrors(t *testing.T) {
	db := openHospital(t, "")
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}
	// Transactions are unsupported.
	if _, err := db.Begin(); err == nil {
		t.Fatal("Begin should fail")
	}
	// SELECT through Exec is rejected.
	if _, err := db.Exec(`SELECT Doc.Name FROM Doctor Doc`); err == nil {
		t.Fatal("Exec(SELECT) should fail")
	}
	// Placeholder arity is enforced: too few / too many args fail.
	if _, err := db.Query(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = ?`); err == nil {
		t.Fatal("placeholder query without args should fail")
	}
	if _, err := db.Query(`SELECT Doc.Name FROM Doctor Doc`, "stray"); err == nil {
		t.Fatal("args without placeholders should fail")
	}
	// First query finalizes the bulk load; DDL afterwards fails.
	if _, err := db.Query(`SELECT Doc.Name FROM Doctor Doc`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE Late (ID INTEGER PRIMARY KEY)`); err == nil {
		t.Fatal("Exec after build should fail")
	}
	// Syntax errors surface at Prepare.
	if _, err := db.Prepare(`SELEKT nonsense`); err == nil {
		t.Fatal("Prepare of garbage should fail")
	}
}

// TestClosedDB checks queries fail cleanly after sql.DB.Close.
func TestClosedDB(t *testing.T) {
	db := openHospital(t, "")
	if _, err := db.Query(`SELECT Doc.Name FROM Doctor Doc`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT Doc.Name FROM Doctor Doc`); err == nil {
		t.Fatal("query after Close should fail")
	}
}

// TestDSNOptions opens through a fully-loaded DSN and checks it works
// end-to-end (high-speed bus, device index, full capture).
func TestDSNOptions(t *testing.T) {
	db := openHospital(t, "ghostdb://?profile=smartusb2007&usb=high&fpr=0.02&capture=full&deviceindex=Doctor.Country")
	var n int64
	err := db.QueryRow(`SELECT Vis.VisID FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France' AND Vis.DocID = Doc.DocID`).Scan(&n)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("VisID = %d, want 3", n)
	}
}

// TestParseDSN pins the DSN grammar.
func TestParseDSN(t *testing.T) {
	cfg, err := ParseDSN("")
	if err != nil || cfg.Profile != "smartusb2007" || cfg.USB != "full" || cfg.FPR != 0.01 || cfg.Capture != "meta" {
		t.Fatalf("defaults = %+v, %v", cfg, err)
	}
	cfg, err = ParseDSN("ghostdb://?usb=high&fpr=0.05&capture=full&deviceindex=Doctor.Country&deviceindex=Visit.Date&plancache=16&batch=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.USB != "high" || cfg.FPR != 0.05 || cfg.Capture != "full" || len(cfg.DeviceIndexes) != 2 || cfg.PlanCache != 16 || cfg.Batch != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{
		"mysql://localhost",
		"ghostdb://somehost",
		"ghostdb://?bogus=1",
		"ghostdb://?usb=warp",
		"ghostdb://?fpr=2",
		"ghostdb://?fpr=abc",
		"ghostdb://?capture=everything",
		"ghostdb://?deviceindex=NoDot",
		"ghostdb://?deviceindex=Too.Many.Dots",
		"ghostdb://?profile=cray1",
		"ghostdb://?plancache=-3",
		"ghostdb://?plancache=lots",
		"ghostdb://?batch=0",
		"ghostdb://?batch=many",
	} {
		if _, err := ParseDSN(bad); err == nil {
			t.Errorf("ParseDSN(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "ghostdb driver:") {
			t.Errorf("ParseDSN(%q) error %q lacks driver prefix", bad, err)
		}
	}
}

// TestTwoEngines checks that two sql.DBs are fully isolated instances.
func TestTwoEngines(t *testing.T) {
	a := openHospital(t, "")
	b, err := sql.Open("ghostdb", "")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Exec(`CREATE TABLE Solo (ID INTEGER PRIMARY KEY, Tag CHAR(8) HIDDEN); INSERT INTO Solo VALUES (1, 'x')`); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Query(`SELECT S.Tag FROM Solo S`); err == nil {
		t.Fatal("engine a should not see engine b's table")
	}
	var tag string
	if err := b.QueryRow(`SELECT S.Tag FROM Solo S`).Scan(&tag); err != nil || tag != "x" {
		t.Fatalf("tag = %q, %v", tag, err)
	}
}

// TestPlaceholderRoundTrip is the acceptance path: a '?'-placeholder
// query round-trips correct results through database/sql with bound
// args, both directly and via a prepared sql.Stmt reused with many
// bindings.
func TestPlaceholderRoundTrip(t *testing.T) {
	db := openHospital(t, "")

	// Direct Query with args.
	var name string
	err := db.QueryRow(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = ?`, "Spain").Scan(&name)
	if err != nil {
		t.Fatal(err)
	}
	if name != "Gall" {
		t.Fatalf("name = %q, want Gall", name)
	}

	// Prepared statement: compile once, bind many.
	stmt, err := db.Prepare(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ? AND Vis.Date > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	cutoff := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	for purpose, want := range map[string][]int64{
		"Sclerosis": {2, 3},
		"Checkup":   {1},
		"Nothing":   nil,
	} {
		rows, err := stmt.Query(purpose, cutoff)
		if err != nil {
			t.Fatalf("Query(%q): %v", purpose, err)
		}
		var got []int64
		for rows.Next() {
			var id int64
			if err := rows.Scan(&id); err != nil {
				t.Fatal(err)
			}
			got = append(got, id)
		}
		rows.Close()
		if len(got) != len(want) {
			t.Fatalf("Query(%q) = %v, want %v", purpose, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Query(%q) = %v, want %v", purpose, got, want)
			}
		}
	}

	// Wrong arity is rejected by database/sql via NumInput.
	if _, err := stmt.Query("only-one"); err == nil {
		t.Fatal("one arg for a two-placeholder statement should fail")
	}
	// A closed statement refuses to run.
	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query("Checkup", cutoff); err == nil {
		t.Fatal("query on a closed statement should fail")
	}
}

// TestPlaceholderExec checks '?' placeholders in INSERT rows: the bulk
// load can be driven by one prepared statement per table.
func TestPlaceholderExec(t *testing.T) {
	db, err := sql.Open("ghostdb", "")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(hospitalDDL); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO Doctor VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range []struct {
		name, country string
	}{{"Ellis", "France"}, {"Gall", "Spain"}, {"Okafor", "Nigeria"}} {
		res, err := ins.Exec(int64(i+1), d.name, d.country)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("insert %d staged %d rows", i, n)
		}
	}
	ins.Close()
	if _, err := db.Exec(`INSERT INTO Visit VALUES (1, ?, 'Checkup', ?)`,
		time.Date(2006, 1, 10, 0, 0, 0, 0, time.UTC), int64(3)); err != nil {
		t.Fatal(err)
	}
	var name string
	if err := db.QueryRow(`SELECT Doc.Name FROM Doctor Doc, Visit Vis
		WHERE Vis.DocID = Doc.DocID AND Vis.Purpose = ?`, "Checkup").Scan(&name); err != nil {
		t.Fatal(err)
	}
	if name != "Okafor" {
		t.Fatalf("name = %q, want Okafor", name)
	}
}

// TestPreparedStatementPlanCache checks prepared statements across
// pooled connections share the engine's plan cache.
func TestPreparedStatementPlanCache(t *testing.T) {
	db := openHospital(t, "")
	stmt, err := db.Prepare(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 5; i++ {
		rows, err := stmt.Query("Sclerosis")
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		rows.Close()
	}
	// The same shape as unprepared text also hits the shared cache.
	rows, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ?`, "Checkup")
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
}

// TestAggregateQueries drives the post-operator dialect through
// database/sql: grouped aggregates over hidden columns, ordering,
// prepared aggregate statements with HAVING parameters, and column
// type metadata for aggregate outputs.
func TestAggregateQueries(t *testing.T) {
	db := openHospital(t, "")

	// Purpose is HIDDEN; grouping happens on the secure display side.
	rows, err := db.Query(`SELECT Purpose, COUNT(*) FROM Visit GROUP BY Purpose ORDER BY COUNT(*) DESC, Purpose`)
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := rows.Columns()
	if len(cols) != 2 || cols[1] != "COUNT(*)" {
		t.Fatalf("columns = %v", cols)
	}
	types, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	if types[0].DatabaseTypeName() != "CHAR" || types[1].DatabaseTypeName() != "INTEGER" {
		t.Fatalf("type names = %s, %s", types[0].DatabaseTypeName(), types[1].DatabaseTypeName())
	}
	var got []string
	for rows.Next() {
		var purpose string
		var n int64
		if err := rows.Scan(&purpose, &n); err != nil {
			t.Fatal(err)
		}
		got = append(got, purpose+":"+strconv.FormatInt(n, 10))
	}
	rows.Close()
	if want := []string{"Sclerosis:2", "Checkup:1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("grouped rows = %v, want %v", got, want)
	}

	// A prepared aggregate shape with WHERE and HAVING placeholders.
	stmt, err := db.Prepare(`SELECT Doctor.Country, COUNT(*) FROM Visit, Doctor
		WHERE Visit.Date >= ? GROUP BY Doctor.Country HAVING COUNT(*) >= ? ORDER BY Doctor.Country`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 3; i++ {
		rs, err := stmt.Query(time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC), int64(2))
		if err != nil {
			t.Fatal(err)
		}
		var country string
		var n int64
		if !rs.Next() {
			t.Fatal("expected one group")
		}
		if err := rs.Scan(&country, &n); err != nil {
			t.Fatal(err)
		}
		if country != "France" || n != 2 {
			t.Fatalf("got %s:%d, want France:2", country, n)
		}
		if rs.Next() {
			t.Fatal("expected exactly one group")
		}
		rs.Close()
	}

	// A global aggregate over an empty result: COUNT is 0, MIN is NULL.
	var n int64
	var minDate any
	err = db.QueryRow(`SELECT COUNT(*), MIN(Date) FROM Visit WHERE Purpose = 'Nothing'`).Scan(&n, &minDate)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || minDate != nil {
		t.Fatalf("empty aggregate = %d, %v; want 0, NULL", n, minDate)
	}

	// DISTINCT + ORDER BY ... DESC + LIMIT through the driver.
	var name string
	err = db.QueryRow(`SELECT DISTINCT Name FROM Doctor ORDER BY Name DESC LIMIT 1`).Scan(&name)
	if err != nil {
		t.Fatal(err)
	}
	if name != "Gall" {
		t.Fatalf("name = %q, want Gall", name)
	}
}
