package driver

import (
	"database/sql"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testBackendDSN rewrites dsn for the backend selected by the
// GHOSTDB_TEST_BACKEND environment variable, so CI can run the driver
// suite against the file backend as well as the default simulation. A
// DSN that already picks a backend is left alone.
func testBackendDSN(t *testing.T, dsn string) string {
	t.Helper()
	if strings.Contains(dsn, "backend=") {
		return dsn
	}
	switch be := os.Getenv("GHOSTDB_TEST_BACKEND"); be {
	case "", "sim":
		return dsn
	case "file":
		extra := "backend=file&path=" + url.QueryEscape(filepath.Join(t.TempDir(), "dev"))
		switch {
		case dsn == "":
			return "ghostdb://?" + extra
		case strings.Contains(dsn, "?"):
			return dsn + "&" + extra
		default:
			return dsn + "?" + extra
		}
	default:
		t.Fatalf("GHOSTDB_TEST_BACKEND=%q (want sim or file)", be)
		return dsn
	}
}

// fileDSN builds a backend=file DSN rooted at a fresh directory, and
// returns the directory too.
func fileDSN(t *testing.T, params string) (dsn, dir string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "dev")
	dsn = "ghostdb://?backend=file&path=" + url.QueryEscape(dir)
	if params != "" {
		dsn += "&" + params
	}
	return dsn, dir
}

// TestFileBackendDSNValidation pins the DSN grammar: backend=file needs
// a path, and path/fsync are meaningless without backend=file.
func TestFileBackendDSNValidation(t *testing.T) {
	for _, bad := range []string{
		"ghostdb://?backend=file",
		"ghostdb://?backend=bogus",
		"ghostdb://?path=/tmp/x",
		"ghostdb://?fsync=on",
		"ghostdb://?backend=sim&path=/tmp/x",
	} {
		if _, err := ParseDSN(bad); err == nil {
			t.Errorf("ParseDSN(%q) succeeded, want error", bad)
		}
	}
	cfg, err := ParseDSN("ghostdb://?backend=file&path=%2Ftmp%2Fx&fsync=on")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backend != "file" || cfg.Path != "/tmp/x" || !cfg.Fsync {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// TestFileBackendReopenSQL is the driver-level persistence acceptance
// test: build a file-backed database through one sql.DB, close it, open
// a second sql.DB on the same DSN and query the data back without
// re-issuing any DDL or INSERTs.
func TestFileBackendReopenSQL(t *testing.T) {
	dsn, dir := fileDSN(t, "")
	db := openHospital(t, dsn)

	// Force the build, add a checkpointed row on top of it.
	countQ := `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`
	if _, err := db.Query(countQ); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-03', 'Sclerosis', 2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CHECKPOINT`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if len(dir) == 0 {
		t.Fatal("no device directory")
	}

	// Same DSN, fresh process-equivalent: the driver must detect the
	// existing database and reopen instead of wiping.
	db2, err := sql.Open("ghostdb", dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query(countQ)
	if err != nil {
		t.Fatalf("query on reopened database: %v", err)
	}
	var ids []int64
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	rows.Close()
	if len(ids) != 3 {
		t.Fatalf("reopened VisIDs = %v, want the 2 loaded Sclerosis rows plus the checkpointed one", ids)
	}

	// The reopened engine stays fully live through database/sql.
	if _, err := db2.Exec(`INSERT INTO Visit VALUES (5, DATE '2007-04-04', 'Sclerosis', 1)`); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db2.QueryRow(`SELECT COUNT(Vis.VisID) FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count after post-reopen insert = %d, want 4", n)
	}
}

// TestFileBackendUncommittedLostSQL checks the durability boundary as
// seen from database/sql: an insert without CHECKPOINT does not survive
// close-and-reopen.
func TestFileBackendUncommittedLostSQL(t *testing.T) {
	dsn, _ := fileDSN(t, "")
	db := openHospital(t, dsn)
	if _, err := db.Query(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.DocID > 0`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-05-05', 'Volatile', 1)`); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := sql.Open("ghostdb", dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var n int64
	if err := db2.QueryRow(`SELECT COUNT(Vis.VisID) FROM Visit Vis WHERE Vis.VisID > 0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count after reopen = %d, want the 3 committed rows", n)
	}
}

// TestFileBackendFsyncDSN smoke-tests the fsync=on path end to end.
func TestFileBackendFsyncDSN(t *testing.T) {
	dsn, _ := fileDSN(t, "fsync=on")
	db := openHospital(t, dsn)
	var n int64
	if err := db.QueryRow(`SELECT COUNT(Vis.VisID) FROM Visit Vis WHERE Vis.VisID > 0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
}
