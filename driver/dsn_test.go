package driver

import (
	"strings"
	"testing"
)

// TestParseDSNDeterministicErrors pins the sorted-key validation order:
// a DSN with several bad parameters reports the alphabetically first
// one, every time, instead of whichever the map iteration visited.
func TestParseDSNDeterministicErrors(t *testing.T) {
	const dsn = "ghostdb://?fpr=9&batch=0&usb=warp"
	_, first := ParseDSN(dsn)
	if first == nil {
		t.Fatal("ParseDSN should fail")
	}
	if !strings.Contains(first.Error(), "batch") {
		t.Fatalf("error = %q, want the alphabetically first bad key (batch)", first)
	}
	for i := 0; i < 20; i++ {
		if _, err := ParseDSN(dsn); err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: error %q differs from %q", i, err, first)
		}
	}
}

// TestConfigOptionsFaultError is the regression for the silently-dropped
// fault plan: a hand-built Config (bypassing ParseDSN) with an invalid
// Faults string must fail at options() rather than running faultless.
func TestConfigOptionsFaultError(t *testing.T) {
	cfg := defaultConfig()
	cfg.Faults = "bogus=1"
	if _, err := cfg.options(); err == nil {
		t.Fatal("options() with an invalid fault plan should fail")
	} else if !strings.Contains(err.Error(), "ghostdb driver:") {
		t.Fatalf("error %q lacks the driver prefix", err)
	}

	cfg.Faults = "seed=42,read.transient=0.001"
	if _, err := cfg.options(); err != nil {
		t.Fatalf("valid fault plan rejected: %v", err)
	}
}

// TestOpenConnectorEagerValidation checks the connector surfaces config
// errors at OpenConnector time, not at first Connect.
func TestOpenConnectorEagerValidation(t *testing.T) {
	if _, err := (&Driver{}).OpenConnector("ghostdb://?faults=read.transient=2"); err == nil {
		t.Fatal("OpenConnector with a bad fault plan should fail")
	}
	c, err := (&Driver{}).OpenConnector("ghostdb://?faults=seed=1,read.transient=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if closer, ok := c.(interface{ Close() error }); ok {
		closer.Close()
	}
}

// TestOpenEngine pins the DSN-to-engine entry point used by
// cmd/ghostdb-server.
func TestOpenEngine(t *testing.T) {
	if _, err := OpenEngine("ghostdb://?usb=warp"); err == nil {
		t.Fatal("OpenEngine with a bad DSN should fail")
	}
	db, err := OpenEngine("ghostdb://?shards=2&metrics=on")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(hospitalDDL + hospitalRows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT COUNT(*) FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v, want [[2]]", res.Rows)
	}
}
