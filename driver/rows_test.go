package driver

import (
	"testing"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/value"
)

// TestColumnTypeDatabaseTypeNameBounds is the regression for the
// fallback path: a result with no compiled-query metadata (EXPLAIN
// renderings, raw core.Results) must answer "" for out-of-range
// columns instead of indexing Rows[0] past its end and panicking.
func TestColumnTypeDatabaseTypeNameBounds(t *testing.T) {
	r := &Rows{res: &core.Result{
		Columns: []string{"plan", "extra"},
		// Ragged on purpose: the first row is shorter than Columns.
		Rows: [][]value.Value{{value.NewString("scan")}},
	}}
	if got := r.ColumnTypeDatabaseTypeName(0); got != "CHAR" {
		t.Fatalf("col 0 = %q, want CHAR", got)
	}
	if got := r.ColumnTypeDatabaseTypeName(1); got != "" {
		t.Fatalf("col 1 (beyond row width) = %q, want \"\"", got)
	}
	if got := r.ColumnTypeDatabaseTypeName(-1); got != "" {
		t.Fatalf("col -1 = %q, want \"\"", got)
	}
	if got := r.ColumnTypeDatabaseTypeName(2); got != "" {
		t.Fatalf("col 2 (beyond Columns) = %q, want \"\"", got)
	}

	empty := &Rows{res: &core.Result{Columns: []string{"plan"}}}
	if got := empty.ColumnTypeDatabaseTypeName(0); got != "" {
		t.Fatalf("empty result col 0 = %q, want \"\"", got)
	}
}

// TestExplainColumnTypes drives the same path through database/sql: the
// EXPLAIN result carries no Query metadata, so the type name comes from
// row inference and out-of-range probes are safe.
func TestExplainColumnTypes(t *testing.T) {
	db := openHospital(t, "")
	rows, err := db.Query(`EXPLAIN SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	types, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0].DatabaseTypeName() != "CHAR" {
		t.Fatalf("EXPLAIN column types = %v", types)
	}
}
