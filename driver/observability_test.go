package driver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
)

func TestParseDSNObservability(t *testing.T) {
	cfg, err := ParseDSN("")
	if err != nil || cfg.SlowQuery != 0 || !cfg.Metrics {
		t.Fatalf("defaults = %+v, %v; want metrics on, no slowquery", cfg, err)
	}
	cfg, err = ParseDSN("ghostdb://?slowquery=50ms&metrics=off")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SlowQuery != 50*time.Millisecond || cfg.Metrics {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := ParseDSN("ghostdb://?metrics=on"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"ghostdb://?slowquery=fast",
		"ghostdb://?slowquery=-1s",
		"ghostdb://?slowquery=0s",
		"ghostdb://?metrics=maybe",
	} {
		if _, err := ParseDSN(bad); err == nil {
			t.Errorf("ParseDSN(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "ghostdb driver:") {
			t.Errorf("ParseDSN(%q) error %q lacks driver prefix", bad, err)
		}
	}
}

// TestQueryContextCanceled checks satellite 1 end to end: a canceled
// context aborts QueryContext with ctx.Err() and the engine counts the
// cancellation.
func TestQueryContextCanceled(t *testing.T) {
	db := openHospital(t, "")
	// Finalize the load so cancellation hits the query path, not EnsureBuilt.
	if _, err := db.Query(`SELECT Vis.VisID FROM Visit Vis`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Prepared path honors the context the same way.
	stmt, err := db.Prepare(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if _, err := stmt.QueryContext(ctx, "Sclerosis"); !errors.Is(err, context.Canceled) {
		t.Fatalf("prepared err = %v, want context.Canceled", err)
	}
	rows, err := stmt.QueryContext(context.Background(), "Sclerosis")
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
}

// TestDriverDeltaSummary checks satellite 2: delta and checkpoint state
// reachable from the driver surface, PlanCacheStats-style.
func TestDriverDeltaSummary(t *testing.T) {
	db := openHospital(t, "")
	eng := engineOf(t, db)

	// Finalize the bulk load so the INSERT below is live DML, not staging.
	if _, err := db.Query(`SELECT Vis.VisID FROM Visit Vis`); err != nil {
		t.Fatal(err)
	}
	if s := eng.DeltaSummary(); s != (core.DeltaSummary{}) {
		t.Fatalf("pristine summary = %+v", s)
	}
	if _, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-03', 'Flu', 2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE FROM Visit WHERE VisID = 1`); err != nil {
		t.Fatal(err)
	}
	s := eng.DeltaSummary()
	if s.Tables == 0 || s.Rows != 1 || s.Tombstones != 1 || s.DeviceBytes <= 0 {
		t.Fatalf("post-DML summary = %+v, want 1 row + 1 tombstone", s)
	}
	if _, err := db.Exec(`CHECKPOINT`); err != nil {
		t.Fatal(err)
	}
	s = eng.DeltaSummary()
	if s.Rows != 0 || s.Tombstones != 0 || s.Checkpoints != 1 {
		t.Fatalf("post-CHECKPOINT summary = %+v, want empty delta, 1 checkpoint", s)
	}
}

// TestDriverMetricsOff checks the metrics=off DSN knob.
func TestDriverMetricsOff(t *testing.T) {
	db := openHospital(t, "ghostdb://?metrics=off")
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM Visit Vis`).Scan(&n); err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if snap := engineOf(t, db).MetricsSnapshot(); snap != nil {
		t.Fatalf("snapshot = %v, want nil with metrics=off", snap)
	}
}
