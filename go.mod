module github.com/ghostdb/ghostdb

go 1.24
