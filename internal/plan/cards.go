package plan

// CardEstimates is the optimizer's cardinality model for one
// (query, spec) pair — the same arithmetic Estimate folds into its time
// costs, exposed on its own so EXPLAIN ANALYZE can print estimated vs
// actual tuple counts (the runtime feedback a cost-based optimizer
// consumes).
type CardEstimates struct {
	// RootRows is the base root-table cardinality (floor 1).
	RootRows int
	// PredCount is each predicate's own-level matching cardinality:
	// exact for visible predicates, climbing-index dictionary statistics
	// for indexed hidden ones, and half the table when unknown.
	PredCount []int
	// PredRootCount scales PredCount to the query-root level through
	// the uniform fan-out assumption.
	PredRootCount []int
	// Candidates estimates the root IDs surviving every pre-filtering
	// contribution — the stream reaching the SKT scan.
	Candidates int
	// Survivors estimates the candidates surviving post verification:
	// the base pipeline's output cardinality before host-side
	// post-operators (aggregation, DISTINCT, ORDER BY, LIMIT).
	Survivors int
}

// EstimateCards runs the cost model's cardinality arithmetic for a spec.
func EstimateCards(q *Query, spec Spec, in CostInputs) CardEstimates {
	rootRows := in.TableRows[q.Root.Name]
	if rootRows == 0 {
		rootRows = 1
	}
	count := func(i int) int {
		c := in.Counts[i]
		if c < 0 {
			c = in.TableRows[q.Preds[i].Col.Table] / 2
		}
		return c
	}
	rootCount := func(i int) int {
		t := q.Preds[i].Col.Table
		tr := in.TableRows[t]
		if tr == 0 {
			return count(i)
		}
		return int(float64(count(i)) * float64(rootRows) / float64(tr))
	}

	ce := CardEstimates{
		RootRows:      rootRows,
		PredCount:     make([]int, len(q.Preds)),
		PredRootCount: make([]int, len(q.Preds)),
	}
	preSelectivity := 1.0
	for i, st := range spec.Strategies {
		ce.PredCount[i] = count(i)
		ce.PredRootCount[i] = rootCount(i)
		switch st {
		case StratVisPre, StratHidIndex, StratVisDevice:
			preSelectivity *= float64(rootCount(i)) / float64(rootRows)
		}
	}

	candidates := preSelectivity * float64(rootRows)
	if candidates < 1 {
		candidates = 1
	}
	survivors := candidates
	for i, st := range spec.Strategies {
		if st == StratVisPost {
			survivors *= float64(rootCount(i)) / float64(rootRows)
		}
		if st == StratHidPost {
			survivors *= float64(count(i)) / float64(max(in.TableRows[q.Preds[i].Col.Table], 1))
		}
	}
	if survivors < 1 {
		survivors = 1
	}
	ce.Candidates = int(candidates + 0.5)
	ce.Survivors = int(survivors + 0.5)
	return ce
}
