package plan

// DML binding: DELETE and UPDATE statements resolve against one catalog
// table, with the same literal coercion, '?' placeholder handling and
// compile-once / bind-many discipline as SELECT shapes. A bound DML
// carries conjunctive predicates over its own table only — cross-table
// conditions are a query concern, not a mutation concern — and, for
// UPDATE, the SET assignments with their target column indexes resolved.

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// DMLOp distinguishes the bound mutation kinds.
type DMLOp int

// The mutation kinds.
const (
	OpDelete DMLOp = iota
	OpUpdate
)

func (o DMLOp) String() string {
	if o == OpDelete {
		return "DELETE"
	}
	return "UPDATE"
}

// SetExpr is one bound UPDATE assignment: the target column (by catalog
// index into Table.Columns) and the value, possibly a '?' placeholder
// before BindParams.
type SetExpr struct {
	Col    Col
	ColIdx int
	Val    value.Value
}

// DML is a bound DELETE or UPDATE shape. Like Query, a DML with
// NumParams > 0 must pass through BindParams before execution.
type DML struct {
	SQL       string
	Op        DMLOp
	Schema    *schema.Schema
	Table     *schema.Table
	Sets      []SetExpr // UPDATE only
	Preds     []Pred    // conjuncts over Table's columns
	NumParams int
}

// BindDML resolves a parsed DELETE or UPDATE against the schema.
func BindDML(sch *schema.Schema, stmt sql.Statement) (*DML, error) {
	var (
		tableName string
		where     []sql.Condition
		sets      []sql.SetClause
		op        DMLOp
	)
	switch s := stmt.(type) {
	case *sql.Delete:
		tableName, where, op = s.Table, s.Where, OpDelete
	case *sql.Update:
		tableName, where, sets, op = s.Table, s.Where, s.Sets, OpUpdate
	default:
		return nil, fmt.Errorf("plan: BindDML expects DELETE or UPDATE, got %T", stmt)
	}
	t, ok := sch.Table(tableName)
	if !ok {
		return nil, fmt.Errorf("plan: unknown table %s", tableName)
	}
	d := &DML{SQL: stmt.String(), Op: op, Schema: sch, Table: t}

	resolve := func(ref sql.ColRef) (Col, int, error) {
		if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, t.Name) {
			return Col{}, 0, fmt.Errorf("plan: %s may only reference %s, got %s", op, t.Name, ref)
		}
		c, ok := t.Column(ref.Column)
		if !ok {
			return Col{}, 0, fmt.Errorf("plan: no column %s.%s", t.Name, ref.Column)
		}
		return Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden}, t.ColumnIndex(c.Name), nil
	}

	for _, a := range sets {
		col, idx, err := resolve(a.Col)
		if err != nil {
			return nil, err
		}
		sc := t.Columns[idx]
		if sc.PrimaryKey {
			return nil, fmt.Errorf("plan: cannot UPDATE primary key %s (GhostDB identifiers are positional)", col)
		}
		v := a.Val
		if !v.IsParam() {
			var err error
			if v, err = value.Coerce(v, col.Kind); err != nil {
				return nil, fmt.Errorf("plan: SET %s: %w", col, err)
			}
		}
		for _, prev := range d.Sets {
			if prev.ColIdx == idx {
				return nil, fmt.Errorf("plan: column %s assigned twice", col)
			}
		}
		d.Sets = append(d.Sets, SetExpr{Col: col, ColIdx: idx, Val: v})
	}

	for _, cond := range where {
		if _, isJoin := cond.(*sql.Join); isJoin {
			return nil, fmt.Errorf("plan: %s WHERE may not contain join predicates", op)
		}
		var colRef sql.ColRef
		switch c := cond.(type) {
		case *sql.Compare:
			colRef = c.Col
		case *sql.Between:
			colRef = c.Col
		case *sql.In:
			colRef = c.Col
		default:
			return nil, fmt.Errorf("plan: unsupported condition %T", cond)
		}
		col, _, err := resolve(colRef)
		if err != nil {
			return nil, err
		}
		p, err := pred.FromCondition(cond)
		if err != nil {
			return nil, err
		}
		if p, err = coercePred(p, col.Kind); err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", col, err)
		}
		d.Preds = append(d.Preds, Pred{Col: col, P: p})
	}
	d.NumParams = sql.CountParams(stmt)
	return d, nil
}

// BindParams substitutes the shape's '?' placeholders (SET values first,
// then WHERE literals, matching text order) and coerces them to their
// column kinds, returning a fully bound DML. A shape without parameters
// is returned unchanged.
func (d *DML) BindParams(params []value.Value) (*DML, error) {
	if len(params) != d.NumParams {
		return nil, fmt.Errorf("plan: statement has %d parameters, got %d arguments", d.NumParams, len(params))
	}
	if d.NumParams == 0 {
		return d, nil
	}
	for i, v := range params {
		if v.IsParam() {
			return nil, fmt.Errorf("plan: argument %d is itself an unbound parameter", i+1)
		}
	}
	out := *d
	out.NumParams = 0
	out.Sets = make([]SetExpr, len(d.Sets))
	for i, a := range d.Sets {
		if a.Val.IsParam() {
			ord := a.Val.ParamOrdinal()
			if ord < 0 || ord >= len(params) {
				return nil, fmt.Errorf("plan: SET placeholder %d out of range", ord+1)
			}
			v, err := value.Coerce(params[ord], a.Col.Kind)
			if err != nil {
				return nil, fmt.Errorf("plan: SET %s: %w", a.Col, err)
			}
			a.Val = v
		}
		out.Sets[i] = a
	}
	out.Preds = make([]Pred, len(d.Preds))
	for i, pr := range d.Preds {
		bound, err := bindPredParams(pr.P, params)
		if err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", pr.Col, err)
		}
		if bound, err = coercePred(bound, pr.Col.Kind); err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", pr.Col, err)
		}
		out.Preds[i] = Pred{Col: pr.Col, P: bound}
	}
	return &out, nil
}
