package plan

import (
	"strings"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/bus"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// figure3 builds the paper's schema.
func figure3(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	pk := func(n string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, PrimaryKey: true}
	}
	str := func(n string, hidden bool) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.String}, Hidden: hidden}
	}
	fk := func(n, ref string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, RefTable: ref, Hidden: true}
	}
	mk := func(name string, cols ...schema.Column) {
		tb, err := schema.NewTable(name, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	mk("Doctor", pk("DocID"), str("Name", false), str("Country", false))
	mk("Patient", pk("PatID"), str("Name", true),
		schema.Column{Name: "Age", Type: schema.Type{Kind: value.Int}})
	mk("Medicine", pk("MedID"), str("Name", false), str("Type", false))
	mk("Visit", pk("VisID"),
		schema.Column{Name: "Date", Type: schema.Type{Kind: value.Date}},
		str("Purpose", true), fk("DocID", "Doctor"), fk("PatID", "Patient"))
	mk("Prescription", pk("PreID"),
		schema.Column{Name: "Quantity", Type: schema.Type{Kind: value.Int}, Hidden: true},
		fk("MedID", "Medicine"), fk("VisID", "Visit"))
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

func bind(t *testing.T, s *schema.Schema, q string) *Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := Bind(s, sel)
	if err != nil {
		t.Fatal(err)
	}
	return bq
}

func TestBindPaperQuery(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Med.Name, Pre.Quantity, Vis.Date
		FROM Medicine Med, Prescription Pre, Visit Vis
		WHERE Vis.Date > 05-11-2006 AND Vis.Purpose = 'Sclerosis'
		AND Med.Type = 'Antibiotic' AND Med.MedID = Pre.MedID AND Vis.VisID = Pre.VisID`)
	if q.Root.Name != "Prescription" {
		t.Errorf("root = %s", q.Root.Name)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("%d preds (joins must be stripped)", len(q.Preds))
	}
	if !q.Preds[1].Hidden() || q.Preds[0].Hidden() || q.Preds[2].Hidden() {
		t.Error("hidden classification wrong")
	}
	// Date literal coerced to Date kind.
	if q.Preds[0].P.Val.Kind() != value.Date {
		t.Errorf("date literal kind = %v", q.Preds[0].P.Val.Kind())
	}
	if got := q.Projs[1].String(); got != "Prescription.Quantity" {
		t.Errorf("proj[1] = %s", got)
	}
	if vis := q.VisiblePreds(); len(vis) != 2 {
		t.Errorf("visible preds = %v", vis)
	}
	if hid := q.HiddenPreds(); len(hid) != 1 || hid[0] != 1 {
		t.Errorf("hidden preds = %v", hid)
	}
	if tv := q.TablesWithVisibleProjection(); !tv["Medicine"] || !tv["Visit"] || tv["Prescription"] {
		t.Errorf("visible projection tables = %v", tv)
	}
}

func TestBindErrors(t *testing.T) {
	s := figure3(t)
	bad := []string{
		`SELECT X FROM Ghost`,
		`SELECT Nope FROM Doctor`,
		`SELECT Doc.Name FROM Doctor Doc, Doctor D2`,                                    // self join
		`SELECT Name FROM Doctor Doc, Medicine Med`,                                     // ambiguous Name + sibling set
		`SELECT Doc.Name FROM Doctor Doc, Patient Pat`,                                  // siblings, no root
		`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Name = 5`,                            // type mismatch... string vs int is incomparable
		`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Date = 'nope'`,                       // bad date literal
		`SELECT V.VisID FROM Visit V WHERE X.Y = 1`,                                     // unknown alias
		`SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Pre.PreID = Vis.VisID`, // non-FK join
	}
	for _, qs := range bad {
		sel, err := sql.ParseSelect(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		if _, err := Bind(s, sel); err == nil {
			t.Errorf("Bind(%q) succeeded", qs)
		}
	}
}

func TestBindQualifierByTableName(t *testing.T) {
	s := figure3(t)
	// Even when aliased, the catalog table name resolves.
	q := bind(t, s, `SELECT Visit.Date FROM Visit V WHERE Visit.Purpose = 'x'`)
	if q.Projs[0].Table != "Visit" {
		t.Errorf("projs = %v", q.Projs)
	}
}

func TestBindStar(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT * FROM Visit Vis, Doctor Doc`)
	// Visit has 5 columns, Doctor 3.
	if len(q.Projs) != 8 {
		t.Errorf("star expanded to %d columns", len(q.Projs))
	}
	if q.Root.Name != "Visit" {
		t.Errorf("root = %s", q.Root.Name)
	}
}

func hasIndexAll(table, column string) bool { return true }

func hasIndexNone(table, column string) bool { return false }

func TestEnumerate(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Medicine Med
		WHERE Vis.Date > 2006-01-01 AND Med.Type = 'Antibiotic' AND Vis.Purpose = 'Sclerosis'`)
	specs := Enumerate(q, hasIndexAll)
	// Two visible predicates -> 4 strategy combos; cross-filtering adds
	// variants where a non-root table has >= 2 pre-integrated preds
	// (Vis.Date pre + Vis.Purpose index).
	if len(specs) < 4 {
		t.Fatalf("%d specs", len(specs))
	}
	labels := map[string]bool{}
	withCross := 0
	for _, sp := range specs {
		if labels[sp.Label] {
			t.Errorf("duplicate label %s", sp.Label)
		}
		labels[sp.Label] = true
		if sp.CrossFilter {
			withCross++
		}
		if err := sp.Validate(q, hasIndexAll); err != nil {
			t.Errorf("spec %s invalid: %v", sp.Describe(q), err)
		}
	}
	if withCross == 0 {
		t.Error("no cross-filtering variants enumerated")
	}

	// Without any indexes, pre-filtering non-root predicates is
	// infeasible: only all-post plans survive, and the hidden predicate
	// falls back to hidden-post.
	noIx := Enumerate(q, hasIndexNone)
	if len(noIx) == 0 {
		t.Fatal("no plans without indexes")
	}
	for _, sp := range noIx {
		for i, st := range sp.Strategies {
			if st == StratVisPre && q.Preds[i].Col.Table != q.Root.Name {
				t.Errorf("pre-filter enumerated without translator: %s", sp.Describe(q))
			}
			if st == StratHidIndex {
				t.Errorf("index strategy enumerated without index")
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Pre.PreID FROM Prescription Pre, Visit Vis
		WHERE Vis.Date > 2006-01-01 AND Vis.Purpose = 'Sclerosis'`)
	ok := Spec{Label: "ok", Strategies: []Strategy{StratVisPost, StratHidIndex}}
	if err := ok.Validate(q, hasIndexAll); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Strategies: []Strategy{StratVisPost}},                 // arity
		{Strategies: []Strategy{StratHidIndex, StratHidIndex}}, // visible pred with hidden strategy
		{Strategies: []Strategy{StratVisPost, StratVisPre}},    // hidden pred with visible strategy
		{Strategies: []Strategy{StratAuto, StratHidIndex}},     // unresolved
	}
	for i, sp := range bad {
		if err := sp.Validate(q, hasIndexAll); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	noIx := Spec{Strategies: []Strategy{StratVisPre, StratHidPost}}
	if err := noIx.Validate(q, hasIndexNone); err == nil {
		t.Error("pre-filter without translator accepted")
	}
}

func TestDescribeAndStrings(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Pre.PreID FROM Prescription Pre, Visit Vis
		WHERE Vis.Date > 2006-01-01 AND Vis.Purpose = 'Sclerosis'`)
	sp := Spec{Label: "P9", Strategies: []Strategy{StratVisPre, StratHidIndex}, CrossFilter: true}
	d := sp.Describe(q)
	for _, want := range []string{"P9", "Visit.Date:pre", "Visit.Purpose:index", "cross"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe = %q missing %q", d, want)
		}
	}
	for _, st := range []Strategy{StratAuto, StratVisPre, StratVisPost, StratHidIndex, StratHidPost} {
		if st.String() == "" {
			t.Error("empty strategy name")
		}
	}
	clone := sp.Clone()
	clone.Strategies[0] = StratVisPost
	if sp.Strategies[0] != StratVisPre {
		t.Error("Clone shares strategy slice")
	}
}

func TestEstimateOrdersSelectivities(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Pre.PreID FROM Prescription Pre, Visit Vis
		WHERE Vis.Date > 2006-01-01 AND Vis.Purpose = 'Sclerosis'`)
	in := CostInputs{
		TableRows:     map[string]int{"Prescription": 1_000_000, "Visit": 100_000, "Doctor": 1000, "Patient": 10000, "Medicine": 1000},
		Profile:       device.SmartUSB2007(),
		Bus:           bus.USBFullSpeed(),
		AvgValueBytes: 12,
	}
	pre := Spec{Strategies: []Strategy{StratVisPre, StratHidIndex}}
	post := Spec{Strategies: []Strategy{StratVisPost, StratHidIndex}}

	// Highly selective visible predicate: pre-filtering should win.
	in.Counts = []int{100, 2000}
	preCost := Estimate(q, pre, in)
	postCost := Estimate(q, post, in)
	if preCost >= postCost {
		t.Errorf("selective: pre %v >= post %v", preCost, postCost)
	}

	// Very unselective visible predicate: post-filtering should win.
	in.Counts = []int{80_000, 2000}
	preCost = Estimate(q, pre, in)
	postCost = Estimate(q, post, in)
	if preCost <= postCost {
		t.Errorf("unselective: pre %v <= post %v", preCost, postCost)
	}

	// Unknown counts fall back without panicking.
	in.Counts = []int{-1, -1}
	if Estimate(q, Spec{Strategies: []Strategy{StratVisPost, StratHidPost}}, in) <= 0 {
		t.Error("estimate with unknown counts not positive")
	}
	_ = time.Duration(0)
}

func TestBindParams(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Vis.VisID FROM Visit Vis
		WHERE Vis.Date BETWEEN ? AND ? AND Vis.Purpose = ?`)
	if q.NumParams != 3 {
		t.Fatalf("NumParams = %d, want 3", q.NumParams)
	}
	// The shape renders placeholders, not values.
	if !strings.Contains(q.SQL, "BETWEEN ? AND ?") {
		t.Fatalf("shape SQL = %q", q.SQL)
	}

	bound, err := q.BindParams([]value.Value{
		value.NewString("2006-01-01"), // string date coerces at bind time
		value.NewString("2006-12-31"),
		value.NewString("Sclerosis"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if bound.NumParams != 0 {
		t.Fatalf("bound NumParams = %d", bound.NumParams)
	}
	if k := bound.Preds[0].P.Lo.Kind(); k != value.Date {
		t.Errorf("bound Lo kind = %v, want Date", k)
	}
	if got := bound.Preds[1].P.Val.Str(); got != "Sclerosis" {
		t.Errorf("bound Val = %q", got)
	}
	// The shape is untouched: bind-many means each binding is a copy.
	if !q.Preds[0].P.Lo.IsParam() || !q.Preds[1].P.Val.IsParam() {
		t.Error("BindParams mutated the shape")
	}

	// Arity errors.
	if _, err := q.BindParams(nil); err == nil {
		t.Error("BindParams(nil) on 3-param shape should fail")
	}
	if _, err := q.BindParams(make([]value.Value, 4)); err == nil {
		t.Error("BindParams with 4 args should fail")
	}
	// Binding an unbindable kind fails through coercion.
	if _, err := q.BindParams([]value.Value{
		value.NewBool(true), value.NewBool(false), value.NewString("x"),
	}); err == nil {
		t.Error("BindParams with uncoercible kinds should fail")
	}
	// A parameter value cannot itself be a placeholder.
	if _, err := q.BindParams([]value.Value{
		value.NewParam(0), value.NewString("2006-12-31"), value.NewString("x"),
	}); err == nil {
		t.Error("BindParams with a Param argument should fail")
	}

	// A parameterless query binds to itself.
	plain := bind(t, s, `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Flu'`)
	same, err := plain.BindParams(nil)
	if err != nil || same != plain {
		t.Errorf("parameterless BindParams = %v, %v", same, err)
	}
}

func TestBindAggregateShape(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT Country, COUNT(*), SUM(Quantity), AVG(Quantity)
		FROM Doctor, Visit, Prescription
		GROUP BY Country HAVING COUNT(*) > 2 ORDER BY SUM(Quantity) DESC, Country`)
	if !q.HasPostOps() || !q.Aggregated() || !q.Grouped {
		t.Fatal("aggregate shape flags not set")
	}
	// Physical projections: Country (group key) + Quantity (shared
	// argument of SUM and AVG), deduplicated.
	if len(q.Projs) != 2 {
		t.Fatalf("projs = %v", q.Projs)
	}
	if q.Projs[0].Column != "Country" || q.Projs[1].Column != "Quantity" {
		t.Fatalf("projs = %v", q.Projs)
	}
	// Accumulators: COUNT(*), SUM(Quantity), AVG(Quantity) — the HAVING
	// and ORDER BY expressions reuse the select list's.
	if len(q.Aggs) != 3 {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	if q.Aggs[2].Kind != value.Float {
		t.Errorf("AVG kind = %v, want FLOAT", q.Aggs[2].Kind)
	}
	if len(q.Outputs) != 4 || q.VisibleOuts != 4 {
		t.Fatalf("outputs = %v (visible %d)", q.Outputs, q.VisibleOuts)
	}
	labels := q.ColumnLabels()
	if labels[1] != "COUNT(*)" || labels[2] != "SUM(Prescription.Quantity)" {
		t.Fatalf("labels = %v", labels)
	}
	if q.OutputKind(1) != value.Int || q.OutputKind(3) != value.Float {
		t.Fatalf("output kinds = %v %v", q.OutputKind(1), q.OutputKind(3))
	}
	if len(q.OrderBy) != 2 || q.OrderBy[0].Out != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Out != 0 {
		t.Fatalf("order by = %v", q.OrderBy)
	}
	if len(q.Having) != 1 || q.Having[0].AggIdx != 0 {
		t.Fatalf("having = %v", q.Having)
	}
}

func TestBindHiddenOrderKey(t *testing.T) {
	s := figure3(t)
	// Ordering by an unselected column appends a hidden output.
	q := bind(t, s, `SELECT Name FROM Doctor ORDER BY Country DESC`)
	if q.VisibleOuts != 1 || len(q.Outputs) != 2 {
		t.Fatalf("outputs = %v (visible %d)", q.Outputs, q.VisibleOuts)
	}
	if q.OrderBy[0].Out != 1 || !q.OrderBy[0].Desc {
		t.Fatalf("order by = %v", q.OrderBy)
	}
	if got := q.ColumnLabels(); len(got) != 1 || got[0] != "Doctor.Name" {
		t.Fatalf("labels = %v", got)
	}
}

func TestBindHavingParams(t *testing.T) {
	s := figure3(t)
	q := bind(t, s, `SELECT COUNT(*) FROM Visit WHERE Purpose = ? HAVING COUNT(*) >= ?`)
	if q.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", q.NumParams)
	}
	bound, err := q.BindParams([]value.Value{value.NewString("Checkup"), value.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Having[0].Val.Int() != 2 {
		t.Fatalf("bound having = %v", bound.Having[0].Val)
	}
	// The shape keeps its placeholder.
	if !q.Having[0].Val.IsParam() {
		t.Fatal("BindParams mutated the shape's HAVING literal")
	}
	// A string argument cannot compare against an integer COUNT.
	if _, err := q.BindParams([]value.Value{value.NewString("x"), value.NewString("y")}); err == nil {
		t.Fatal("expected a HAVING coercion error")
	}
}

func TestBindAggregateValidation(t *testing.T) {
	s := figure3(t)
	for _, in := range []string{
		"SELECT Name FROM Doctor GROUP BY Country",          // not a grouping column
		"SELECT Name, COUNT(*) FROM Doctor",                 // plain column in a global aggregate
		"SELECT SUM(Name) FROM Doctor",                      // SUM over CHAR
		"SELECT AVG(Date) FROM Visit",                       // AVG over DATE
		"SELECT * FROM Doctor GROUP BY Country",             // star + GROUP BY
		"SELECT COUNT(*) FROM Doctor ORDER BY 2",            // ordinal past the select list
		"SELECT DISTINCT Name FROM Doctor ORDER BY Country", // hidden key under DISTINCT
		"SELECT Name FROM Doctor HAVING COUNT(*) > 1",       // HAVING without aggregated select list
	} {
		sel, err := sql.ParseSelect(in)
		if err != nil {
			t.Fatalf("%q: parse: %v", in, err)
		}
		if _, err := Bind(s, sel); err == nil {
			t.Errorf("%q: expected a bind error", in)
		}
	}
	// MIN/MAX are fine over CHAR and DATE.
	bind(t, s, "SELECT MIN(Name), MAX(Date) FROM Doctor, Visit")
}
