// Package plan binds SPJ queries against the GhostDB catalog and
// enumerates the paper's query execution strategies: for every visible
// predicate, Pre-filtering (ship the ID list, translate through climbing
// indexes, intersect before touching the SKT) or Post-filtering (ship a
// Bloom filter, probe after the hidden joins); plus Cross-filtering
// (combine selectivities level by level before climbing). A cost model
// over the device profile ranks the candidate plans — "depending on the
// selectivities, a Pre-filtering or Post-filtering strategy can be
// selected per predicate" (Section 4).
package plan

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Col is a bound column reference.
type Col struct {
	Table  string // catalog table name
	Column string // catalog column name
	Kind   value.Kind
	Hidden bool
}

// String renders Table.Column.
func (c Col) String() string { return c.Table + "." + c.Column }

// Pred is a bound selection predicate.
type Pred struct {
	Col Col
	P   pred.P
}

// Hidden reports whether the predicate touches a hidden column — such
// predicates may only be evaluated inside the device.
func (p Pred) Hidden() bool { return p.Col.Hidden }

// String renders the predicate.
func (p Pred) String() string { return p.Col.String() + " " + p.P.String() }

// Query is a bound SPJ query over the tree schema. A Query with
// NumParams > 0 is a parameter-independent shape: its predicate
// literals include unbound '?' placeholders, and it must pass through
// BindParams before it can execute or be costed.
type Query struct {
	SQL       string
	Schema    *schema.Schema
	Root      *schema.Table // query root: result granularity
	Tables    []string      // FROM tables, catalog names, no duplicates
	Projs     []Col         // projection list in SELECT order
	Preds     []Pred        // conjunctive selections
	Limit     int           // result row cap (0 = none); order is root-ID
	NumParams int           // '?' placeholders awaiting BindParams

	// predLabels and projLabels cache Preds[i].String() / Projs[i].String()
	// per shape, filled once by Bind. Executions reuse the compiled labels
	// (a parameterized shape shows its '?' placeholders) instead of
	// re-rendering the text on every run.
	predLabels []string
	projLabels []string
}

// PredLabel returns the display label of predicate i: the label rendered
// at bind time when available, a fresh rendering otherwise.
func (q *Query) PredLabel(i int) string {
	if i < len(q.predLabels) {
		return q.predLabels[i]
	}
	return q.Preds[i].String()
}

// ProjLabel returns the display label of projection i.
func (q *Query) ProjLabel(i int) string {
	if i < len(q.projLabels) {
		return q.projLabels[i]
	}
	return q.Projs[i].String()
}

// ColumnLabels returns the projection labels in SELECT order. When the
// shape carries bind-time labels the cached slice itself is returned,
// shared across executions — callers must treat it as read-only.
func (q *Query) ColumnLabels() []string {
	if len(q.projLabels) == len(q.Projs) {
		return q.projLabels
	}
	out := make([]string, len(q.Projs))
	for i := range q.Projs {
		out[i] = q.Projs[i].String()
	}
	return out
}

// BindParams substitutes the query's '?' placeholders with params (by
// ordinal) and coerces them to their column kinds, returning a new,
// fully bound Query. The shape fields (tables, projections, predicate
// columns) are shared with the receiver; only the predicate list is
// copied. A query without parameters is returned unchanged (params must
// be empty).
func (q *Query) BindParams(params []value.Value) (*Query, error) {
	if len(params) != q.NumParams {
		return nil, fmt.Errorf("plan: query has %d parameters, got %d arguments", q.NumParams, len(params))
	}
	if q.NumParams == 0 {
		return q, nil
	}
	for i, v := range params {
		if v.IsParam() {
			return nil, fmt.Errorf("plan: argument %d is itself an unbound parameter", i+1)
		}
	}
	out := *q
	out.NumParams = 0
	// The shape's cached predicate labels show '?' placeholders; drop
	// them so the bound query renders its actual values on demand.
	out.predLabels = nil
	out.Preds = make([]Pred, len(q.Preds))
	for i, pr := range q.Preds {
		bound, err := bindPredParams(pr.P, params)
		if err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", pr.Col, err)
		}
		if bound, err = coercePred(bound, pr.Col.Kind); err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", pr.Col, err)
		}
		out.Preds[i] = Pred{Col: pr.Col, P: bound}
	}
	return &out, nil
}

// bindPredParams substitutes placeholder literals inside one predicate.
func bindPredParams(p pred.P, params []value.Value) (pred.P, error) {
	sub := func(v value.Value) (value.Value, error) {
		if !v.IsParam() {
			return v, nil
		}
		ord := v.ParamOrdinal()
		if ord < 0 || ord >= len(params) {
			return value.Value{}, fmt.Errorf("placeholder %d out of range", ord+1)
		}
		return params[ord], nil
	}
	var err error
	switch p.Form {
	case pred.FormCompare:
		p.Val, err = sub(p.Val)
	case pred.FormBetween:
		if p.Lo, err = sub(p.Lo); err == nil {
			p.Hi, err = sub(p.Hi)
		}
	case pred.FormIn:
		set := make([]value.Value, len(p.Set))
		for i, v := range p.Set {
			if set[i], err = sub(v); err != nil {
				break
			}
		}
		p.Set = set
	}
	return p, err
}

// Bind resolves a parsed SELECT against the schema: FROM tables and
// aliases, the query root, projection columns, selection predicates with
// literals coerced to column kinds, and join predicates validated to lie
// on foreign-key edges of the tree.
func Bind(sch *schema.Schema, sel *sql.Select) (*Query, error) {
	q := &Query{SQL: sel.String(), Schema: sch, Limit: sel.Limit}

	// Resolve FROM: alias (or table name) -> catalog table.
	aliases := map[string]*schema.Table{}
	seen := map[string]bool{}
	for _, ref := range sel.From {
		t, ok := sch.Table(ref.Table)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %s", ref.Table)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("plan: table %s appears twice in FROM (self joins are outside GhostDB's tree-query scope)", t.Name)
		}
		seen[t.Name] = true
		q.Tables = append(q.Tables, t.Name)
		key := strings.ToLower(ref.Table)
		if ref.Alias != "" {
			key = strings.ToLower(ref.Alias)
		}
		if _, dup := aliases[key]; dup {
			return nil, fmt.Errorf("plan: duplicate alias %q", key)
		}
		aliases[key] = t
	}
	root, err := sch.QueryRoot(q.Tables)
	if err != nil {
		return nil, err
	}
	q.Root = root

	resolve := func(ref sql.ColRef) (Col, error) {
		if ref.Qualifier != "" {
			t, ok := aliases[strings.ToLower(ref.Qualifier)]
			if !ok {
				// Allow the catalog table name even when aliased.
				if ct, ok2 := sch.Table(ref.Qualifier); ok2 && seen[ct.Name] {
					t = ct
				} else {
					return Col{}, fmt.Errorf("plan: unknown table or alias %q", ref.Qualifier)
				}
			}
			c, ok := t.Column(ref.Column)
			if !ok {
				return Col{}, fmt.Errorf("plan: no column %s.%s", t.Name, ref.Column)
			}
			return Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden}, nil
		}
		var found *Col
		for _, name := range q.Tables {
			t, _ := sch.Table(name)
			if c, ok := t.Column(ref.Column); ok {
				if found != nil {
					return Col{}, fmt.Errorf("plan: column %s is ambiguous", ref.Column)
				}
				found = &Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden}
			}
		}
		if found == nil {
			return Col{}, fmt.Errorf("plan: unknown column %s", ref.Column)
		}
		return *found, nil
	}

	// Projections.
	for _, item := range sel.Items {
		if item.Star {
			for _, name := range q.Tables {
				t, _ := sch.Table(name)
				for _, c := range t.Columns {
					q.Projs = append(q.Projs, Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden})
				}
			}
			continue
		}
		c, err := resolve(item.Col)
		if err != nil {
			return nil, err
		}
		q.Projs = append(q.Projs, c)
	}
	if len(q.Projs) == 0 {
		return nil, fmt.Errorf("plan: empty projection list")
	}

	// Conditions.
	for _, cond := range sel.Where {
		if j, ok := cond.(*sql.Join); ok {
			if err := validateJoin(sch, resolve, j); err != nil {
				return nil, err
			}
			continue
		}
		var colRef sql.ColRef
		switch c := cond.(type) {
		case *sql.Compare:
			colRef = c.Col
		case *sql.Between:
			colRef = c.Col
		case *sql.In:
			colRef = c.Col
		default:
			return nil, fmt.Errorf("plan: unsupported condition %T", cond)
		}
		col, err := resolve(colRef)
		if err != nil {
			return nil, err
		}
		p, err := pred.FromCondition(cond)
		if err != nil {
			return nil, err
		}
		if p, err = coercePred(p, col.Kind); err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", col, err)
		}
		q.Preds = append(q.Preds, Pred{Col: col, P: p})
	}
	q.NumParams = sql.CountParams(sel)
	q.predLabels = make([]string, len(q.Preds))
	for i := range q.Preds {
		q.predLabels[i] = q.Preds[i].String()
	}
	q.projLabels = make([]string, len(q.Projs))
	for i := range q.Projs {
		q.projLabels[i] = q.Projs[i].String()
	}
	return q, nil
}

// coercePred coerces the predicate's literals to the column kind, so
// date strings written in the paper's formats compare correctly.
func coercePred(p pred.P, kind value.Kind) (pred.P, error) {
	var err error
	switch p.Form {
	case pred.FormCompare:
		p.Val, err = value.Coerce(p.Val, kind)
	case pred.FormBetween:
		if p.Lo, err = value.Coerce(p.Lo, kind); err == nil {
			p.Hi, err = value.Coerce(p.Hi, kind)
		}
	case pred.FormIn:
		set := make([]value.Value, len(p.Set))
		for i, v := range p.Set {
			if set[i], err = value.Coerce(v, kind); err != nil {
				break
			}
		}
		p.Set = set
	}
	return p, err
}

// validateJoin checks a join predicate lies on a foreign-key edge between
// two FROM tables (either side may be the referencing table).
func validateJoin(sch *schema.Schema, resolve func(sql.ColRef) (Col, error), j *sql.Join) error {
	l, err := resolve(j.Left)
	if err != nil {
		return err
	}
	r, err := resolve(j.Right)
	if err != nil {
		return err
	}
	if isFKEdge(sch, l, r) || isFKEdge(sch, r, l) {
		return nil
	}
	return fmt.Errorf("plan: join %s = %s does not follow a foreign-key edge of the tree schema", l, r)
}

// isFKEdge reports whether fkSide.Column is a foreign key referencing
// pkSide's primary key.
func isFKEdge(sch *schema.Schema, fkSide, pkSide Col) bool {
	t, ok := sch.Table(fkSide.Table)
	if !ok {
		return false
	}
	c, ok := t.Column(fkSide.Column)
	if !ok || !c.IsForeignKey() {
		return false
	}
	if !strings.EqualFold(c.RefTable, pkSide.Table) {
		return false
	}
	return strings.EqualFold(c.RefColumn, pkSide.Column)
}

// TablesWithVisibleProjection returns the set of tables from which the
// query projects at least one visible column.
func (q *Query) TablesWithVisibleProjection() map[string]bool {
	out := map[string]bool{}
	for _, c := range q.Projs {
		if !c.Hidden {
			out[c.Table] = true
		}
	}
	return out
}

// VisiblePreds returns the indexes into Preds of visible predicates.
func (q *Query) VisiblePreds() []int {
	var out []int
	for i, p := range q.Preds {
		if !p.Hidden() {
			out = append(out, i)
		}
	}
	return out
}

// HiddenPreds returns the indexes into Preds of hidden predicates.
func (q *Query) HiddenPreds() []int {
	var out []int
	for i, p := range q.Preds {
		if p.Hidden() {
			out = append(out, i)
		}
	}
	return out
}
