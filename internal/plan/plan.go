// Package plan binds SPJ queries against the GhostDB catalog and
// enumerates the paper's query execution strategies: for every visible
// predicate, Pre-filtering (ship the ID list, translate through climbing
// indexes, intersect before touching the SKT) or Post-filtering (ship a
// Bloom filter, probe after the hidden joins); plus Cross-filtering
// (combine selectivities level by level before climbing). A cost model
// over the device profile ranks the candidate plans — "depending on the
// selectivities, a Pre-filtering or Post-filtering strategy can be
// selected per predicate" (Section 4).
package plan

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Col is a bound column reference.
type Col struct {
	Table  string // catalog table name
	Column string // catalog column name
	Kind   value.Kind
	Hidden bool
}

// String renders Table.Column.
func (c Col) String() string { return c.Table + "." + c.Column }

// Pred is a bound selection predicate.
type Pred struct {
	Col Col
	P   pred.P
}

// Hidden reports whether the predicate touches a hidden column — such
// predicates may only be evaluated inside the device.
func (p Pred) Hidden() bool { return p.Col.Hidden }

// String renders the predicate.
func (p Pred) String() string { return p.Col.String() + " " + p.P.String() }

// AggExpr is one aggregate accumulator a query computes: the function
// and its argument column (an index into Projs; -1 for COUNT(*)).
type AggExpr struct {
	Func sql.AggFunc
	Proj int        // argument column in Projs; -1 for COUNT(*)
	Kind value.Kind // result kind
}

// Label renders the aggregate expression over its bound argument.
func (a AggExpr) Label(projs []Col) string {
	if a.Proj < 0 {
		return a.Func.String() + "(*)"
	}
	return a.Func.String() + "(" + projs[a.Proj].String() + ")"
}

// Output is one result column of a query with post-operators
// (aggregation, ordering, distinct): either an aggregate (AggIdx into
// Aggs) or a plain column (AggIdx == -1, Proj into Projs). Outputs past
// VisibleOuts are hidden ORDER BY keys, dropped before delivery.
type Output struct {
	AggIdx int // index into Aggs; -1 for a plain column
	Proj   int // index into Projs when AggIdx == -1
	Label  string
	Kind   value.Kind
}

// HavingPred is one bound HAVING conjunct: an aggregate compared
// against a literal (possibly a '?' placeholder before BindParams).
type HavingPred struct {
	AggIdx int // index into Aggs
	Op     sql.CompareOp
	Val    value.Value
}

// OrderKey sorts the output rows by Outputs[Out], descending when Desc.
type OrderKey struct {
	Out  int
	Desc bool
}

// Query is a bound query over the tree schema. A Query with
// NumParams > 0 is a parameter-independent shape: its predicate
// literals include unbound '?' placeholders, and it must pass through
// BindParams before it can execute or be costed.
//
// Projs lists the physical columns the distributed SPJ pipeline
// retrieves. For a plain select-project-join query the projections ARE
// the result columns and Outputs is nil. When the query carries
// aggregates, GROUP BY, HAVING, ORDER BY or DISTINCT, Outputs describes
// the result columns computed host-side (on the secure display, after
// the device pipeline) from the physical rows; Projs then also carries
// aggregate arguments and hidden sort keys.
type Query struct {
	SQL       string
	Schema    *schema.Schema
	Root      *schema.Table // query root: result granularity
	Tables    []string      // FROM tables, catalog names, no duplicates
	Projs     []Col         // physical projection list
	Preds     []Pred        // conjunctive selections
	Limit     int           // result row cap, meaningful when HasLimit
	HasLimit  bool          // a LIMIT clause is present (LIMIT 0 is valid)
	NumParams int           // '?' placeholders awaiting BindParams

	Outputs     []Output     // non-nil exactly when post-operators run
	VisibleOuts int          // prefix of Outputs delivered to the caller
	Aggs        []AggExpr    // unique aggregate accumulators
	GroupBy     []int        // Projs indexes of the grouping columns
	Grouped     bool         // a GROUP BY clause is present
	Having      []HavingPred // conjuncts over Aggs
	OrderBy     []OrderKey   // result ordering; empty = pipeline order
	Distinct    bool         // dedupe the visible output rows

	// predLabels and projLabels cache Preds[i].String() / Projs[i].String()
	// per shape, filled once by Bind. Executions reuse the compiled labels
	// (a parameterized shape shows its '?' placeholders) instead of
	// re-rendering the text on every run.
	predLabels []string
	projLabels []string
	outLabels  []string // visible output labels (post-op queries)
}

// HasPostOps reports whether result rows pass through the host-side
// finishing stage (aggregation / ordering / distinct) after the
// distributed pipeline.
func (q *Query) HasPostOps() bool { return q.Outputs != nil }

// Aggregated reports whether the query computes aggregates (explicitly
// grouped, or a global aggregate over the whole result).
func (q *Query) Aggregated() bool { return q.Grouped || len(q.Aggs) > 0 }

// OutputKind returns the result kind of visible column i.
func (q *Query) OutputKind(i int) value.Kind {
	if q.Outputs != nil {
		return q.Outputs[i].Kind
	}
	return q.Projs[i].Kind
}

// PredLabel returns the display label of predicate i: the label rendered
// at bind time when available, a fresh rendering otherwise.
func (q *Query) PredLabel(i int) string {
	if i < len(q.predLabels) {
		return q.predLabels[i]
	}
	return q.Preds[i].String()
}

// ProjLabel returns the display label of projection i.
func (q *Query) ProjLabel(i int) string {
	if i < len(q.projLabels) {
		return q.projLabels[i]
	}
	return q.Projs[i].String()
}

// ColumnLabels returns the result column labels in SELECT order: the
// visible output labels for post-op queries, the projection labels
// otherwise. When the shape carries bind-time labels the cached slice
// itself is returned, shared across executions — callers must treat it
// as read-only.
func (q *Query) ColumnLabels() []string {
	if q.Outputs != nil {
		if len(q.outLabels) == q.VisibleOuts {
			return q.outLabels
		}
		out := make([]string, q.VisibleOuts)
		for i := range out {
			out[i] = q.Outputs[i].Label
		}
		return out
	}
	if len(q.projLabels) == len(q.Projs) {
		return q.projLabels
	}
	out := make([]string, len(q.Projs))
	for i := range q.Projs {
		out[i] = q.Projs[i].String()
	}
	return out
}

// BindParams substitutes the query's '?' placeholders with params (by
// ordinal) and coerces them to their column kinds, returning a new,
// fully bound Query. The shape fields (tables, projections, predicate
// columns) are shared with the receiver; only the predicate list is
// copied. A query without parameters is returned unchanged (params must
// be empty).
func (q *Query) BindParams(params []value.Value) (*Query, error) {
	if len(params) != q.NumParams {
		return nil, fmt.Errorf("plan: query has %d parameters, got %d arguments", q.NumParams, len(params))
	}
	if q.NumParams == 0 {
		return q, nil
	}
	for i, v := range params {
		if v.IsParam() {
			return nil, fmt.Errorf("plan: argument %d is itself an unbound parameter", i+1)
		}
	}
	out := *q
	out.NumParams = 0
	// The shape's cached predicate labels show '?' placeholders; drop
	// them so the bound query renders its actual values on demand.
	out.predLabels = nil
	out.Preds = make([]Pred, len(q.Preds))
	for i, pr := range q.Preds {
		bound, err := bindPredParams(pr.P, params)
		if err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", pr.Col, err)
		}
		if bound, err = coercePred(bound, pr.Col.Kind); err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", pr.Col, err)
		}
		out.Preds[i] = Pred{Col: pr.Col, P: bound}
	}
	if len(q.Having) > 0 {
		out.Having = make([]HavingPred, len(q.Having))
		for i, h := range q.Having {
			if h.Val.IsParam() {
				ord := h.Val.ParamOrdinal()
				if ord < 0 || ord >= len(params) {
					return nil, fmt.Errorf("plan: HAVING placeholder %d out of range", ord+1)
				}
				v, err := coerceOrdered(params[ord], q.Aggs[h.AggIdx].Kind)
				if err != nil {
					return nil, fmt.Errorf("plan: HAVING %s: %w", q.Aggs[h.AggIdx].Label(q.Projs), err)
				}
				h.Val = v
			}
			out.Having[i] = h
		}
	}
	return &out, nil
}

// bindPredParams substitutes placeholder literals inside one predicate.
func bindPredParams(p pred.P, params []value.Value) (pred.P, error) {
	sub := func(v value.Value) (value.Value, error) {
		if !v.IsParam() {
			return v, nil
		}
		ord := v.ParamOrdinal()
		if ord < 0 || ord >= len(params) {
			return value.Value{}, fmt.Errorf("placeholder %d out of range", ord+1)
		}
		return params[ord], nil
	}
	var err error
	switch p.Form {
	case pred.FormCompare:
		p.Val, err = sub(p.Val)
	case pred.FormBetween:
		if p.Lo, err = sub(p.Lo); err == nil {
			p.Hi, err = sub(p.Hi)
		}
	case pred.FormIn:
		set := make([]value.Value, len(p.Set))
		for i, v := range p.Set {
			if set[i], err = sub(v); err != nil {
				break
			}
		}
		p.Set = set
	}
	return p, err
}

// Bind resolves a parsed SELECT against the schema: FROM tables and
// aliases, the query root, projection columns, selection predicates with
// literals coerced to column kinds, and join predicates validated to lie
// on foreign-key edges of the tree.
func Bind(sch *schema.Schema, sel *sql.Select) (*Query, error) {
	q := &Query{SQL: sel.String(), Schema: sch, Limit: sel.Limit, HasLimit: sel.HasLimit}

	// Resolve FROM: alias (or table name) -> catalog table.
	aliases := map[string]*schema.Table{}
	seen := map[string]bool{}
	for _, ref := range sel.From {
		t, ok := sch.Table(ref.Table)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %s", ref.Table)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("plan: table %s appears twice in FROM (self joins are outside GhostDB's tree-query scope)", t.Name)
		}
		seen[t.Name] = true
		q.Tables = append(q.Tables, t.Name)
		key := strings.ToLower(ref.Table)
		if ref.Alias != "" {
			key = strings.ToLower(ref.Alias)
		}
		if _, dup := aliases[key]; dup {
			return nil, fmt.Errorf("plan: duplicate alias %q", key)
		}
		aliases[key] = t
	}
	root, err := sch.QueryRoot(q.Tables)
	if err != nil {
		return nil, err
	}
	q.Root = root

	resolve := func(ref sql.ColRef) (Col, error) {
		if ref.Qualifier != "" {
			t, ok := aliases[strings.ToLower(ref.Qualifier)]
			if !ok {
				// Allow the catalog table name even when aliased.
				if ct, ok2 := sch.Table(ref.Qualifier); ok2 && seen[ct.Name] {
					t = ct
				} else {
					return Col{}, fmt.Errorf("plan: unknown table or alias %q", ref.Qualifier)
				}
			}
			c, ok := t.Column(ref.Column)
			if !ok {
				return Col{}, fmt.Errorf("plan: no column %s.%s", t.Name, ref.Column)
			}
			return Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden}, nil
		}
		var found *Col
		for _, name := range q.Tables {
			t, _ := sch.Table(name)
			if c, ok := t.Column(ref.Column); ok {
				if found != nil {
					return Col{}, fmt.Errorf("plan: column %s is ambiguous", ref.Column)
				}
				found = &Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden}
			}
		}
		if found == nil {
			return Col{}, fmt.Errorf("plan: unknown column %s", ref.Column)
		}
		return *found, nil
	}

	// Projections. A query with aggregates, GROUP BY, HAVING, ORDER BY
	// or DISTINCT binds its result columns through the post-operator
	// path; a plain SPJ query's result columns are its projections.
	shaped := sel.Distinct || len(sel.GroupBy) > 0 || len(sel.Having) > 0 || len(sel.OrderBy) > 0
	for _, item := range sel.Items {
		if item.Agg != sql.AggNone {
			shaped = true
		}
	}
	if shaped {
		if err := q.bindPostOps(sel, resolve); err != nil {
			return nil, err
		}
	} else {
		for _, item := range sel.Items {
			if item.Star {
				for _, name := range q.Tables {
					t, _ := sch.Table(name)
					for _, c := range t.Columns {
						q.Projs = append(q.Projs, Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden})
					}
				}
				continue
			}
			c, err := resolve(item.Col)
			if err != nil {
				return nil, err
			}
			q.Projs = append(q.Projs, c)
		}
		if len(q.Projs) == 0 {
			return nil, fmt.Errorf("plan: empty projection list")
		}
	}

	// Conditions.
	for _, cond := range sel.Where {
		if j, ok := cond.(*sql.Join); ok {
			if err := validateJoin(sch, resolve, j); err != nil {
				return nil, err
			}
			continue
		}
		var colRef sql.ColRef
		switch c := cond.(type) {
		case *sql.Compare:
			colRef = c.Col
		case *sql.Between:
			colRef = c.Col
		case *sql.In:
			colRef = c.Col
		default:
			return nil, fmt.Errorf("plan: unsupported condition %T", cond)
		}
		col, err := resolve(colRef)
		if err != nil {
			return nil, err
		}
		p, err := pred.FromCondition(cond)
		if err != nil {
			return nil, err
		}
		if p, err = coercePred(p, col.Kind); err != nil {
			return nil, fmt.Errorf("plan: predicate on %s: %w", col, err)
		}
		q.Preds = append(q.Preds, Pred{Col: col, P: p})
	}
	q.NumParams = sql.CountParams(sel)
	q.predLabels = make([]string, len(q.Preds))
	for i := range q.Preds {
		q.predLabels[i] = q.Preds[i].String()
	}
	q.projLabels = make([]string, len(q.Projs))
	for i := range q.Projs {
		q.projLabels[i] = q.Projs[i].String()
	}
	return q, nil
}

// bindPostOps binds the result shape of a query with aggregates,
// GROUP BY, HAVING, ORDER BY or DISTINCT: the physical projections the
// pipeline must retrieve (deduplicated), the output columns computed
// from them, the aggregate accumulators, and the ordering keys.
func (q *Query) bindPostOps(sel *sql.Select, resolve func(sql.ColRef) (Col, error)) error {
	// addProj returns the physical column's index, appending it once.
	addProj := func(c Col) int {
		for i := range q.Projs {
			if q.Projs[i] == c {
				return i
			}
		}
		q.Projs = append(q.Projs, c)
		return len(q.Projs) - 1
	}
	// addAgg returns the accumulator index for (func, arg), appending it
	// once — SELECT SUM(x), SUM(x) or HAVING over a selected aggregate
	// share one accumulator.
	addAgg := func(f sql.AggFunc, proj int, kind value.Kind) int {
		for i := range q.Aggs {
			if q.Aggs[i].Func == f && q.Aggs[i].Proj == proj {
				return i
			}
		}
		q.Aggs = append(q.Aggs, AggExpr{Func: f, Proj: proj, Kind: kind})
		return len(q.Aggs) - 1
	}
	// bindAgg resolves one aggregate call to an accumulator index.
	bindAgg := func(f sql.AggFunc, star bool, ref sql.ColRef) (int, error) {
		if star {
			return addAgg(f, -1, value.Int), nil
		}
		c, err := resolve(ref)
		if err != nil {
			return 0, err
		}
		kind, err := aggResultKind(f, c.Kind)
		if err != nil {
			return 0, fmt.Errorf("plan: %s(%s): %w", f, c, err)
		}
		return addAgg(f, addProj(c), kind), nil
	}

	q.Distinct = sel.Distinct
	q.Grouped = len(sel.GroupBy) > 0

	// Select items.
	for _, item := range sel.Items {
		switch {
		case item.Star:
			if len(sel.GroupBy) > 0 || len(sel.Having) > 0 {
				return fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY or HAVING")
			}
			for _, name := range q.Tables {
				t, _ := q.Schema.Table(name)
				for _, c := range t.Columns {
					col := Col{Table: t.Name, Column: c.Name, Kind: c.Type.Kind, Hidden: c.Hidden}
					q.Outputs = append(q.Outputs, Output{AggIdx: -1, Proj: addProj(col), Label: col.String(), Kind: col.Kind})
				}
			}
		case item.Agg != sql.AggNone:
			ai, err := bindAgg(item.Agg, item.AggStar, item.Col)
			if err != nil {
				return err
			}
			a := q.Aggs[ai]
			q.Outputs = append(q.Outputs, Output{AggIdx: ai, Proj: -1, Label: a.Label(q.Projs), Kind: a.Kind})
		default:
			c, err := resolve(item.Col)
			if err != nil {
				return err
			}
			q.Outputs = append(q.Outputs, Output{AggIdx: -1, Proj: addProj(c), Label: c.String(), Kind: c.Kind})
		}
	}
	q.VisibleOuts = len(q.Outputs)

	// GROUP BY columns (they need not be selected; duplicates collapse).
	for _, ref := range sel.GroupBy {
		c, err := resolve(ref)
		if err != nil {
			return err
		}
		pi := addProj(c)
		dup := false
		for _, g := range q.GroupBy {
			if g == pi {
				dup = true
			}
		}
		if !dup {
			q.GroupBy = append(q.GroupBy, pi)
		}
	}

	// HAVING conjuncts (their aggregates need not be selected).
	for _, h := range sel.Having {
		ai, err := bindAgg(h.Agg, h.Star, h.Col)
		if err != nil {
			return err
		}
		v := h.Val
		if !v.IsParam() {
			if v, err = coerceOrdered(v, q.Aggs[ai].Kind); err != nil {
				return fmt.Errorf("plan: HAVING %s: %w", q.Aggs[ai].Label(q.Projs), err)
			}
		}
		q.Having = append(q.Having, HavingPred{AggIdx: ai, Op: h.Op, Val: v})
	}
	if len(q.Having) > 0 && !q.Aggregated() {
		return fmt.Errorf("plan: HAVING requires GROUP BY or an aggregated select list")
	}

	// Every plain output of an aggregated query must be a grouping
	// column, and a global aggregate (no GROUP BY) admits no plain
	// columns at all.
	if q.Aggregated() {
		for _, o := range q.Outputs {
			if o.AggIdx >= 0 {
				continue
			}
			if !q.Grouped {
				return fmt.Errorf("plan: column %s must appear in an aggregate (no GROUP BY)", o.Label)
			}
			if !q.isGroupCol(o.Proj) {
				return fmt.Errorf("plan: column %s must appear in GROUP BY or an aggregate", o.Label)
			}
		}
	}

	// ORDER BY keys: output ordinals, selected expressions, or hidden
	// extra outputs appended past VisibleOuts.
	for _, o := range sel.OrderBy {
		out := -1
		switch {
		case o.Ordinal > 0:
			if o.Ordinal > q.VisibleOuts {
				return fmt.Errorf("plan: ORDER BY ordinal %d out of range 1..%d", o.Ordinal, q.VisibleOuts)
			}
			out = o.Ordinal - 1
		case o.Agg != sql.AggNone:
			if !q.Aggregated() {
				return fmt.Errorf("plan: ORDER BY %s(...) requires GROUP BY or an aggregated select list", o.Agg)
			}
			ai, err := bindAgg(o.Agg, o.Star, o.Col)
			if err != nil {
				return err
			}
			out = q.findOutput(ai, -1)
			if out < 0 {
				a := q.Aggs[ai]
				q.Outputs = append(q.Outputs, Output{AggIdx: ai, Proj: -1, Label: a.Label(q.Projs), Kind: a.Kind})
				out = len(q.Outputs) - 1
			}
		default:
			c, err := resolve(o.Col)
			if err != nil {
				return err
			}
			pi := addProj(c)
			if q.Aggregated() && !q.isGroupCol(pi) {
				return fmt.Errorf("plan: ORDER BY column %s must appear in GROUP BY or an aggregate", c)
			}
			out = q.findOutput(-1, pi)
			if out < 0 {
				q.Outputs = append(q.Outputs, Output{AggIdx: -1, Proj: pi, Label: c.String(), Kind: c.Kind})
				out = len(q.Outputs) - 1
			}
		}
		q.OrderBy = append(q.OrderBy, OrderKey{Out: out, Desc: o.Desc})
	}
	if q.Distinct {
		for _, k := range q.OrderBy {
			if k.Out >= q.VisibleOuts {
				return fmt.Errorf("plan: ORDER BY expressions must appear in the select list when DISTINCT is used")
			}
		}
	}

	if len(q.Outputs) == 0 {
		return fmt.Errorf("plan: empty projection list")
	}
	q.outLabels = make([]string, q.VisibleOuts)
	for i := range q.outLabels {
		q.outLabels[i] = q.Outputs[i].Label
	}
	return nil
}

// findOutput returns the first output matching (aggIdx, proj), -1 if none.
func (q *Query) findOutput(aggIdx, proj int) int {
	for i, o := range q.Outputs {
		if o.AggIdx == aggIdx && (aggIdx >= 0 || o.Proj == proj) {
			return i
		}
	}
	return -1
}

// isGroupCol reports whether Projs[pi] is a grouping column.
func (q *Query) isGroupCol(pi int) bool {
	for _, g := range q.GroupBy {
		if g == pi {
			return true
		}
	}
	return false
}

// aggResultKind returns the result kind of func over an argument kind.
func aggResultKind(f sql.AggFunc, arg value.Kind) (value.Kind, error) {
	switch f {
	case sql.AggCount:
		return value.Int, nil
	case sql.AggSum, sql.AggAvg:
		if arg != value.Int && arg != value.Float {
			return 0, fmt.Errorf("argument must be numeric, got %s", arg)
		}
		if f == sql.AggAvg {
			return value.Float, nil
		}
		return arg, nil
	case sql.AggMin, sql.AggMax:
		return arg, nil
	}
	return 0, fmt.Errorf("unknown aggregate %v", f)
}

// coerceOrdered prepares a literal for an ordered comparison against
// values of kind k: exact kind and widening numeric pairs pass through
// (value.Compare widens), date strings parse, anything else is an error.
func coerceOrdered(v value.Value, k value.Kind) (value.Value, error) {
	if v.Kind() == k {
		return v, nil
	}
	numeric := func(kk value.Kind) bool { return kk == value.Int || kk == value.Float }
	if numeric(v.Kind()) && numeric(k) {
		return v, nil
	}
	if v.Kind() == value.String && k == value.Date {
		return value.ParseDate(v.Str())
	}
	return value.Value{}, fmt.Errorf("cannot compare %s literal against %s", v.Kind(), k)
}

// coercePred coerces the predicate's literals to the column kind, so
// date strings written in the paper's formats compare correctly.
func coercePred(p pred.P, kind value.Kind) (pred.P, error) {
	var err error
	switch p.Form {
	case pred.FormCompare:
		p.Val, err = value.Coerce(p.Val, kind)
	case pred.FormBetween:
		if p.Lo, err = value.Coerce(p.Lo, kind); err == nil {
			p.Hi, err = value.Coerce(p.Hi, kind)
		}
	case pred.FormIn:
		set := make([]value.Value, len(p.Set))
		for i, v := range p.Set {
			if set[i], err = value.Coerce(v, kind); err != nil {
				break
			}
		}
		p.Set = set
	}
	return p, err
}

// validateJoin checks a join predicate lies on a foreign-key edge between
// two FROM tables (either side may be the referencing table).
func validateJoin(sch *schema.Schema, resolve func(sql.ColRef) (Col, error), j *sql.Join) error {
	l, err := resolve(j.Left)
	if err != nil {
		return err
	}
	r, err := resolve(j.Right)
	if err != nil {
		return err
	}
	if isFKEdge(sch, l, r) || isFKEdge(sch, r, l) {
		return nil
	}
	return fmt.Errorf("plan: join %s = %s does not follow a foreign-key edge of the tree schema", l, r)
}

// isFKEdge reports whether fkSide.Column is a foreign key referencing
// pkSide's primary key.
func isFKEdge(sch *schema.Schema, fkSide, pkSide Col) bool {
	t, ok := sch.Table(fkSide.Table)
	if !ok {
		return false
	}
	c, ok := t.Column(fkSide.Column)
	if !ok || !c.IsForeignKey() {
		return false
	}
	if !strings.EqualFold(c.RefTable, pkSide.Table) {
		return false
	}
	return strings.EqualFold(c.RefColumn, pkSide.Column)
}

// TablesWithVisibleProjection returns the set of tables from which the
// query projects at least one visible column.
func (q *Query) TablesWithVisibleProjection() map[string]bool {
	out := map[string]bool{}
	for _, c := range q.Projs {
		if !c.Hidden {
			out[c.Table] = true
		}
	}
	return out
}

// VisiblePreds returns the indexes into Preds of visible predicates.
func (q *Query) VisiblePreds() []int {
	var out []int
	for i, p := range q.Preds {
		if !p.Hidden() {
			out = append(out, i)
		}
	}
	return out
}

// HiddenPreds returns the indexes into Preds of hidden predicates.
func (q *Query) HiddenPreds() []int {
	var out []int
	for i, p := range q.Preds {
		if p.Hidden() {
			out = append(out, i)
		}
	}
	return out
}
