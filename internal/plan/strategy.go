package plan

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/bus"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/sim"
)

// Strategy selects how one predicate is evaluated.
type Strategy uint8

// Strategies. Visible predicates choose between VisPre, VisPost and —
// when the device carries a climbing index on the visible column, as
// Figure 4's Doctor.Country index illustrates — VisDevice, which
// evaluates the predicate entirely inside the device with zero bus
// traffic. Hidden predicates choose between HidIndex and HidPost (the
// latter is the late-materialization ablation: fetch the attribute per
// candidate row).
const (
	StratAuto Strategy = iota
	StratVisPre
	StratVisPost
	StratVisDevice
	StratHidIndex
	StratHidPost
)

func (s Strategy) String() string {
	switch s {
	case StratAuto:
		return "auto"
	case StratVisPre:
		return "pre-filter"
	case StratVisPost:
		return "post-filter"
	case StratVisDevice:
		return "device-index"
	case StratHidIndex:
		return "climbing-index"
	case StratHidPost:
		return "hidden-post"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// Spec is one concrete plan: a strategy per predicate (aligned with
// Query.Preds) plus the cross-filtering switch.
type Spec struct {
	Label       string
	Strategies  []Strategy
	CrossFilter bool
}

// Clone returns a deep copy.
func (s Spec) Clone() Spec {
	out := s
	out.Strategies = append([]Strategy(nil), s.Strategies...)
	return out
}

// Describe renders the spec compactly, e.g.
// "P3[Vis.Date:post Med.Type:pre Vis.Purpose:index cross]".
func (s Spec) Describe(q *Query) string {
	var parts []string
	for i, st := range s.Strategies {
		parts = append(parts, fmt.Sprintf("%s:%s", q.Preds[i].Col, short(st)))
	}
	if s.CrossFilter {
		parts = append(parts, "cross")
	}
	return fmt.Sprintf("%s[%s]", s.Label, strings.Join(parts, " "))
}

func short(s Strategy) string {
	switch s {
	case StratVisPre:
		return "pre"
	case StratVisPost:
		return "post"
	case StratVisDevice:
		return "device"
	case StratHidIndex:
		return "index"
	case StratHidPost:
		return "hpost"
	}
	return "auto"
}

// Validate checks the spec against the query: visible predicates must use
// visible strategies, hidden predicates hidden strategies.
func (s Spec) Validate(q *Query, hasIndex func(table, column string) bool) error {
	if len(s.Strategies) != len(q.Preds) {
		return fmt.Errorf("plan: %d strategies for %d predicates", len(s.Strategies), len(q.Preds))
	}
	for i, st := range s.Strategies {
		p := q.Preds[i]
		switch st {
		case StratVisPre, StratVisPost:
			if p.Hidden() {
				return fmt.Errorf("plan: %s is hidden; %s is not allowed", p.Col, st)
			}
			if st == StratVisPre && p.Col.Table != q.Root.Name && !hasIndex(p.Col.Table, pkColumn(q, p.Col.Table)) {
				return fmt.Errorf("plan: pre-filtering %s needs a climbing index on %s's key", p.Col, p.Col.Table)
			}
		case StratVisDevice:
			if p.Hidden() {
				return fmt.Errorf("plan: %s is hidden; %s is not allowed", p.Col, st)
			}
			if !hasIndex(p.Col.Table, p.Col.Column) {
				return fmt.Errorf("plan: no device climbing index on %s", p.Col)
			}
		case StratHidIndex:
			if !p.Hidden() {
				return fmt.Errorf("plan: %s is visible; %s is not allowed", p.Col, st)
			}
			if !hasIndex(p.Col.Table, p.Col.Column) {
				return fmt.Errorf("plan: no climbing index on %s", p.Col)
			}
		case StratHidPost:
			if !p.Hidden() {
				return fmt.Errorf("plan: %s is visible; %s is not allowed", p.Col, st)
			}
		default:
			return fmt.Errorf("plan: predicate %d has unresolved strategy", i)
		}
	}
	return nil
}

// pkColumn names the primary key column of a table, under which the
// engine registers the table's translator index.
func pkColumn(q *Query, table string) string {
	t, ok := q.Schema.Table(table)
	if !ok {
		return ""
	}
	return t.PrimaryKey().Name
}

// Enumerate produces every concrete plan for the query: each visible
// predicate tries pre- and post-filtering; hidden predicates use their
// climbing index when available (falling back to hidden-post), and the
// whole plan is tried with and without cross-filtering when it has any
// pre-filtered predicate on a non-root table or any hidden predicate
// below the root. Plans are labeled P1, P2, ...
func Enumerate(q *Query, hasIndex func(table, column string) bool) []Spec {
	base := make([]Strategy, len(q.Preds))
	var visible []int
	for i, p := range q.Preds {
		if p.Hidden() {
			if hasIndex(p.Col.Table, p.Col.Column) {
				base[i] = StratHidIndex
			} else {
				base[i] = StratHidPost
			}
		} else {
			visible = append(visible, i)
		}
	}
	// Per visible predicate: the feasible strategy options. Post always
	// works; pre needs the table's key translator (or the root table);
	// device-index needs a climbing index on the visible column itself.
	options := make([][]Strategy, len(visible))
	for bit, predIdx := range visible {
		p := q.Preds[predIdx]
		opts := []Strategy{StratVisPost}
		if p.Col.Table == q.Root.Name || hasIndex(p.Col.Table, pkColumn(q, p.Col.Table)) {
			opts = append(opts, StratVisPre)
		}
		if hasIndex(p.Col.Table, p.Col.Column) {
			opts = append(opts, StratVisDevice)
		}
		options[bit] = opts
	}

	var specs []Spec
	var walk func(bit int, strat []Strategy)
	walk = func(bit int, strat []Strategy) {
		if bit == len(visible) {
			crossOptions := []bool{false}
			if crossUseful(q, strat) {
				crossOptions = []bool{false, true}
			}
			for _, cross := range crossOptions {
				specs = append(specs, Spec{
					Label:       fmt.Sprintf("P%d", len(specs)+1),
					Strategies:  append([]Strategy(nil), strat...),
					CrossFilter: cross,
				})
			}
			return
		}
		for _, opt := range options[bit] {
			strat[visible[bit]] = opt
			walk(bit+1, strat)
		}
	}
	walk(0, append([]Strategy(nil), base...))
	return specs
}

// crossUseful reports whether cross-filtering can change the plan: it
// needs at least two pre-integrated contributions that can meet below the
// root — either on the same non-root table, or on two tables where one
// lies on the other's climbing path (the intersection then happens at the
// shallower table before the final translation).
func crossUseful(q *Query, strat []Strategy) bool {
	var tables []string
	for i, st := range strat {
		if st == StratVisPre || st == StratHidIndex || st == StratVisDevice {
			t := q.Preds[i].Col.Table
			if t != q.Root.Name {
				tables = append(tables, t)
			}
		}
	}
	for i, a := range tables {
		for _, b := range tables[i+1:] {
			if strings.EqualFold(a, b) || q.Schema.IsAncestor(a, b) || q.Schema.IsAncestor(b, a) {
				return true
			}
		}
	}
	return false
}

// CostInputs feeds the cost model with the statistics GhostDB actually
// has at optimization time: exact visible counts (the PC computes them
// for free), exact hidden index counts (dictionary statistics), table
// cardinalities and the hardware profile.
type CostInputs struct {
	// Per predicate (aligned with Query.Preds): matching rows in the
	// predicate's own table. Exact for visible predicates and for
	// indexed hidden predicates; -1 when unknown (hidden-post), which
	// the model treats as half the table.
	Counts []int
	// TableRows maps table name to cardinality.
	TableRows map[string]int
	// Device profile and bus profile in effect.
	Profile device.Profile
	Bus     bus.Profile
	// AvgValueBytes estimates one projected value on the wire.
	AvgValueBytes int
}

// Estimate predicts the simulated execution time of the spec. The model
// counts the dominant terms of the device cost model: bus transfers,
// climbing-index list reads, translation heap work and spill passes, SKT
// lookups, per-candidate Bloom probing (CPU-heavy on a 50 MHz core),
// sorts and verification/projection merges. It exists to rank plans, not
// to predict absolute times.
func Estimate(q *Query, spec Spec, in CostInputs) time.Duration {
	p := in.Profile
	pageRead := p.Flash.ReadFixed + time.Duration(p.Flash.PageSize)*p.Flash.ReadPerByte
	pageProg := p.Flash.ProgFixed + time.Duration(p.Flash.PageSize)*p.Flash.ProgPerByte
	cpu := func(cycles float64) time.Duration {
		return time.Duration(cycles / p.CPUHz * float64(time.Second))
	}
	busBytes := func(n int) time.Duration {
		msgs := (n + p.BusChunkBytes - 1) / p.BusChunkBytes
		if msgs < 1 {
			msgs = 1
		}
		return time.Duration(msgs)*in.Bus.MsgLatency +
			time.Duration(float64(n)/in.Bus.BytesPerSec*float64(time.Second))
	}
	rootRows := in.TableRows[q.Root.Name]
	if rootRows == 0 {
		rootRows = 1
	}

	count := func(i int) int {
		c := in.Counts[i]
		if c < 0 {
			c = in.TableRows[q.Preds[i].Col.Table] / 2
		}
		return c
	}
	rootCount := func(i int) int {
		t := q.Preds[i].Col.Table
		tr := in.TableRows[t]
		if tr == 0 {
			return count(i)
		}
		return int(float64(count(i)) * float64(rootRows) / float64(tr))
	}

	// Per-tuple cycle costs, mirroring the executor's charges.
	const (
		heapCycles  = 2 * sim.CyclesHeapOp // push+pop through a merge heap
		decodeCycle = sim.CyclesDecode
	)
	bloomK := 7.0 // SizeForFPR at 1% yields k=7

	var total time.Duration
	preSelectivity := 1.0
	postVerifyTables := map[string]bool{}
	bloomProbes := 0.0 // filters probed per candidate

	fanin := float64(p.RAMBudget) / 2 / float64(p.Flash.PageSize)
	if fanin < 2 {
		fanin = 2
	}

	for i, st := range spec.Strategies {
		pr := q.Preds[i]
		n := count(i)
		rc := rootCount(i)
		switch st {
		case StratVisPre:
			total += busBytes(4 * n) // ID list on the wire
			if pr.Col.Table != q.Root.Name {
				effIn, effOut := float64(n), float64(rc)
				if spec.CrossFilter {
					// Cross-filtering intersects at the predicate's own
					// level first; approximate the reduction with the
					// combined selectivity of same-table contributions.
					red := 1.0
					for j, st2 := range spec.Strategies {
						if j != i && st2 == StratHidIndex && q.Preds[j].Col.Table == pr.Col.Table {
							red *= float64(count(j)) / float64(max(in.TableRows[pr.Col.Table], 1))
						}
					}
					effIn *= red
					effOut *= red
				}
				// Dense dictionary probe + posting-list page fill per
				// input ID, then heap work per output ID.
				total += time.Duration(effIn) * pageRead
				total += cpu(effIn*decodeCycle + effOut*heapCycles)
				// Spill passes of the translated list.
				passes := 0.0
				for remaining := effIn; remaining > fanin; remaining /= fanin {
					passes++
				}
				perPass := float64(effOut*4)/float64(p.Flash.PageSize)*float64(pageProg+pageRead) +
					float64(cpu(effOut*heapCycles))
				total += time.Duration(passes * perPass)
			}
			preSelectivity *= float64(rc) / float64(rootRows)
		case StratVisPost:
			total += busBytes(4 * n)                           // IDs to hash into the filter
			total += cpu(float64(n) * bloomK * sim.CyclesHash) // build
			postVerifyTables[pr.Col.Table] = true
			bloomProbes++
		case StratHidIndex, StratVisDevice:
			// Stream the root-level list and push it through the merge
			// (a device-indexed visible predicate costs the same and
			// ships nothing).
			listBytes := float64(rc * 3) // delta-varint average
			total += time.Duration(listBytes/float64(p.Flash.PageSize)*float64(pageRead)) + pageRead
			total += cpu(float64(rc) * (decodeCycle + heapCycles))
			preSelectivity *= float64(rc) / float64(rootRows)
		case StratHidPost:
			// Attribute fetch per surviving candidate, costed below.
		}
	}

	// Candidates reaching the SKT scan.
	candidates := float64(preSelectivity) * float64(rootRows)
	if candidates < 1 {
		candidates = 1
	}
	memberTables := float64(len(q.Tables) - 1)
	if memberTables < 0 {
		memberTables = 0
	}
	// SKT lookups: sorted access, page-amortized per member column.
	entriesPerPage := float64(p.Flash.PageSize / 4)
	sktPages := (candidates/entriesPerPage + 1) * (memberTables + 1)
	total += time.Duration(sktPages) * pageRead
	total += cpu(candidates * memberTables * sim.CyclesCompare)

	// Per-candidate Bloom probing is the post-filter's big CPU bill.
	total += cpu(candidates * bloomProbes * bloomK * sim.CyclesHash)

	// Hidden-post attribute fetches and evaluations.
	for _, st := range spec.Strategies {
		if st == StratHidPost {
			total += time.Duration(candidates/entriesPerPage+1) * pageRead
			total += cpu(candidates * sim.CyclesPredicate)
		}
	}

	// Survivors after post probes (bloom fpr folded into verification).
	survivors := candidates
	for i, st := range spec.Strategies {
		if st == StratVisPost {
			survivors *= float64(rootCount(i)) / float64(rootRows)
		}
		if st == StratHidPost {
			survivors *= float64(count(i)) / float64(max(in.TableRows[q.Preds[i].Col.Table], 1))
		}
	}
	if survivors < 1 {
		survivors = 1
	}

	// Materialize survivors (Store operator).
	recBytes := 4 * (1 + memberTables)
	storePages := survivors*recBytes/float64(p.Flash.PageSize) + 1
	total += time.Duration(storePages) * (pageProg + pageRead)
	total += cpu(survivors * (1 + memberTables) * sim.CyclesCopyWord)

	// Verification / projection passes: sort + merge + stream per table.
	passTables := map[string]bool{}
	for t := range postVerifyTables {
		passTables[t] = true
	}
	for t := range q.TablesWithVisibleProjection() {
		if t != q.Root.Name {
			passTables[t] = true
		}
	}
	for t := range passTables {
		// External sort of the row file (read+write pass, n log n compares).
		total += time.Duration(storePages * 2 * float64(pageProg+pageRead))
		total += cpu(survivors * 20 * sim.CyclesCompare)
		// The stream from the PC: restricted to the table's visible
		// selection if one exists, else the whole table.
		streamRows := in.TableRows[t]
		for i, st := range spec.Strategies {
			if q.Preds[i].Col.Table == t && (st == StratVisPre || st == StratVisPost) {
				if c := count(i); c < streamRows {
					streamRows = c
				}
			}
		}
		total += busBytes(streamRows * (4 + in.AvgValueBytes))
		total += cpu(float64(streamRows) * sim.CyclesCompare)
	}

	// Result delivery to the secure display.
	total += busBytes(int(survivors) * (4 + in.AvgValueBytes) * max(len(q.Projs), 1) / 4)

	return total
}
