package pred

import (
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

func TestCompareOps(t *testing.T) {
	cases := []struct {
		op   sql.CompareOp
		v    int64
		want map[int64]bool
	}{
		{sql.OpEq, 5, map[int64]bool{4: false, 5: true, 6: false}},
		{sql.OpNe, 5, map[int64]bool{4: true, 5: false, 6: true}},
		{sql.OpLt, 5, map[int64]bool{4: true, 5: false, 6: false}},
		{sql.OpLe, 5, map[int64]bool{4: true, 5: true, 6: false}},
		{sql.OpGt, 5, map[int64]bool{4: false, 5: false, 6: true}},
		{sql.OpGe, 5, map[int64]bool{4: false, 5: true, 6: true}},
	}
	for _, c := range cases {
		p := Compare(c.op, value.NewInt(c.v))
		for in, want := range c.want {
			got, err := p.Eval(value.NewInt(in))
			if err != nil || got != want {
				t.Errorf("%v %d on %d = %v, %v; want %v", c.op, c.v, in, got, err, want)
			}
		}
	}
}

func TestBetween(t *testing.T) {
	p := Between(value.NewInt(10), value.NewInt(20))
	for in, want := range map[int64]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		got, err := p.Eval(value.NewInt(in))
		if err != nil || got != want {
			t.Errorf("between 10..20 on %d = %v, %v", in, got, err)
		}
	}
}

func TestIn(t *testing.T) {
	p := In([]value.Value{value.NewString("a"), value.NewString("c")})
	for in, want := range map[string]bool{"a": true, "b": false, "c": true} {
		got, err := p.Eval(value.NewString(in))
		if err != nil || got != want {
			t.Errorf("IN on %q = %v, %v", in, got, err)
		}
	}
}

func TestDateCoercionInEval(t *testing.T) {
	p := Compare(sql.OpGt, value.NewString("05-11-2006"))
	got, err := p.Eval(value.NewDate(2006, 12, 1))
	if err != nil || !got {
		t.Errorf("date > paper literal = %v, %v", got, err)
	}
	got, err = p.Eval(value.NewDate(2006, 10, 1))
	if err != nil || got {
		t.Errorf("earlier date = %v, %v", got, err)
	}
}

func TestEvalErrors(t *testing.T) {
	p := Compare(sql.OpEq, value.NewString("x"))
	if _, err := p.Eval(value.NewInt(1)); err == nil {
		t.Error("incomparable kinds accepted")
	}
	bad := P{Form: Form(99)}
	if _, err := bad.Eval(value.NewInt(1)); err == nil {
		t.Error("unknown form accepted")
	}
}

func TestIsEquality(t *testing.T) {
	if !Compare(sql.OpEq, value.NewInt(1)).IsEquality() {
		t.Error("= not equality")
	}
	if Compare(sql.OpGt, value.NewInt(1)).IsEquality() {
		t.Error("> is equality")
	}
	if Between(value.NewInt(1), value.NewInt(2)).IsEquality() {
		t.Error("between is equality")
	}
}

func TestString(t *testing.T) {
	if got := Compare(sql.OpGe, value.NewInt(7)).String(); got != ">= 7" {
		t.Errorf("compare String = %q", got)
	}
	if got := Between(value.NewInt(1), value.NewInt(2)).String(); got != "BETWEEN 1 AND 2" {
		t.Errorf("between String = %q", got)
	}
	got := In([]value.Value{value.NewString("a")}).String()
	if !strings.Contains(got, "IN ('a')") {
		t.Errorf("in String = %q", got)
	}
}

func TestFromCondition(t *testing.T) {
	sel, err := sql.ParseSelect("SELECT * FROM T WHERE a = 1 AND b BETWEEN 2 AND 3 AND c IN (4) AND d = e")
	if err != nil {
		t.Fatal(err)
	}
	forms := []Form{FormCompare, FormBetween, FormIn}
	for i, want := range forms {
		p, err := FromCondition(sel.Where[i])
		if err != nil || p.Form != want {
			t.Errorf("cond %d: form %v, err %v", i, p.Form, err)
		}
	}
	if _, err := FromCondition(sel.Where[3]); err == nil {
		t.Error("join condition accepted as selection")
	}
}
