// Package pred defines bound selection predicates — the runtime form of a
// WHERE conjunct after the engine resolves its column. The same evaluator
// runs on the untrusted PC (visible selections), inside the device (hidden
// post-filters) and in the test oracle, guaranteeing one semantics.
package pred

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Form distinguishes predicate shapes.
type Form int

// Predicate forms.
const (
	FormCompare Form = iota // column <op> literal
	FormBetween             // column BETWEEN lo AND hi
	FormIn                  // column IN (set)
)

// P is a bound predicate over a single column's value.
type P struct {
	Form Form
	Op   sql.CompareOp // FormCompare only
	Val  value.Value   // FormCompare
	Lo   value.Value   // FormBetween
	Hi   value.Value   // FormBetween
	Set  []value.Value // FormIn
}

// Compare builds a comparison predicate.
func Compare(op sql.CompareOp, v value.Value) P {
	return P{Form: FormCompare, Op: op, Val: v}
}

// Between builds an inclusive range predicate.
func Between(lo, hi value.Value) P {
	return P{Form: FormBetween, Lo: lo, Hi: hi}
}

// In builds a set-membership predicate.
func In(vals []value.Value) P {
	return P{Form: FormIn, Set: vals}
}

// Eval applies the predicate to v.
func (p P) Eval(v value.Value) (bool, error) {
	switch p.Form {
	case FormCompare:
		c, err := value.Compare(v, p.Val)
		if err != nil {
			return false, err
		}
		switch p.Op {
		case sql.OpEq:
			return c == 0, nil
		case sql.OpNe:
			return c != 0, nil
		case sql.OpLt:
			return c < 0, nil
		case sql.OpLe:
			return c <= 0, nil
		case sql.OpGt:
			return c > 0, nil
		case sql.OpGe:
			return c >= 0, nil
		default:
			return false, fmt.Errorf("pred: unknown operator %v", p.Op)
		}
	case FormBetween:
		lo, err := value.Compare(v, p.Lo)
		if err != nil {
			return false, err
		}
		if lo < 0 {
			return false, nil
		}
		hi, err := value.Compare(v, p.Hi)
		if err != nil {
			return false, err
		}
		return hi <= 0, nil
	case FormIn:
		for _, s := range p.Set {
			c, err := value.Compare(v, s)
			if err != nil {
				return false, err
			}
			if c == 0 {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("pred: unknown form %d", p.Form)
	}
}

// Selectivity kinds for the optimizer: equality predicates are usually
// sharper than ranges.
func (p P) IsEquality() bool {
	return p.Form == FormCompare && p.Op == sql.OpEq
}

// String renders the predicate without its column (the caller prefixes it).
func (p P) String() string {
	switch p.Form {
	case FormCompare:
		return fmt.Sprintf("%s %s", p.Op, p.Val.SQL())
	case FormBetween:
		return fmt.Sprintf("BETWEEN %s AND %s", p.Lo.SQL(), p.Hi.SQL())
	case FormIn:
		parts := make([]string, len(p.Set))
		for i, v := range p.Set {
			parts[i] = v.SQL()
		}
		return "IN (" + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}

// FromCondition converts a parsed condition (which must not be a join)
// into a bound predicate.
func FromCondition(c sql.Condition) (P, error) {
	switch c := c.(type) {
	case *sql.Compare:
		return Compare(c.Op, c.Val), nil
	case *sql.Between:
		return Between(c.Lo, c.Hi), nil
	case *sql.In:
		return In(c.Vals), nil
	default:
		return P{}, fmt.Errorf("pred: %T is not a selection", c)
	}
}
