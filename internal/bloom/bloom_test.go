package bloom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("zero hashes accepted")
	}
	if _, err := New(64, 33); err == nil {
		t.Error("33 hashes accepted")
	}
	f, err := New(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.FootprintBytes() != 13 {
		t.Errorf("100 bits -> %d bytes, want 13", f.FootprintBytes())
	}
	if f.K() != 3 {
		t.Errorf("K = %d", f.K())
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := New(10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1000; i++ {
		f.Add(Hash32(i))
	}
	if f.Count() != 1000 {
		t.Errorf("Count = %d", f.Count())
	}
	for i := uint32(0); i < 1000; i++ {
		if !f.Contains(Hash32(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestMeasuredFPRTracksAnalytic(t *testing.T) {
	n := 10000
	mBits, k := SizeForFPR(n, 0.01)
	f, err := New(mBits, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.Add(Hash32(uint32(i)))
	}
	probes := 100000
	fp := 0
	for i := 0; i < probes; i++ {
		if f.Contains(Hash32(uint32(n + i + 1))) {
			fp++
		}
	}
	measured := float64(fp) / float64(probes)
	if measured > 0.02 {
		t.Errorf("measured FPR %.4f, want <= 0.02 for a 1%% filter", measured)
	}
	analytic := f.EstimatedFPR()
	if analytic <= 0 || analytic > 0.02 {
		t.Errorf("analytic FPR %.4f out of range", analytic)
	}
	if ratio := measured / analytic; ratio > 3 || ratio < 0.3 {
		t.Errorf("measured %.4f vs analytic %.4f diverge", measured, analytic)
	}
}

func TestEstimatedFPRMonotoneInFill(t *testing.T) {
	f, _ := New(1024, 4)
	if f.EstimatedFPR() != 0 {
		t.Error("empty filter must report 0 FPR")
	}
	prev := 0.0
	for i := uint32(0); i < 500; i += 50 {
		for j := i; j < i+50; j++ {
			f.Add(Hash32(j))
		}
		cur := f.EstimatedFPR()
		if cur <= prev {
			t.Fatalf("FPR not increasing: %f after %f", cur, prev)
		}
		prev = cur
	}
}

func TestSizeForFPR(t *testing.T) {
	m1, k1 := SizeForFPR(10000, 0.01)
	// Theory: ~9.59 bits/key and k~7 for 1%.
	bitsPerKey := float64(m1) / 10000
	if bitsPerKey < 9 || bitsPerKey > 10.5 {
		t.Errorf("bits/key = %.2f, want ~9.6", bitsPerKey)
	}
	if k1 < 6 || k1 > 8 {
		t.Errorf("k = %d, want ~7", k1)
	}
	m2, _ := SizeForFPR(10000, 0.001)
	if m2 <= m1 {
		t.Error("lower FPR must need more bits")
	}
	// Degenerate parameters fall back to safe values.
	if m, k := SizeForFPR(0, 0.01); m <= 0 || k <= 0 {
		t.Errorf("SizeForFPR(0) = %d, %d", m, k)
	}
	if m, k := SizeForFPR(100, 0); m <= 0 || k <= 0 {
		t.Errorf("SizeForFPR(fpr=0) = %d, %d", m, k)
	}
	if m, k := SizeForFPR(100, 2); m <= 0 || k <= 0 {
		t.Errorf("SizeForFPR(fpr=2) = %d, %d", m, k)
	}
}

func TestOptimalK(t *testing.T) {
	if k := OptimalK(9600, 1000); k != 7 {
		t.Errorf("OptimalK(9.6 bits/key) = %d, want 7", k)
	}
	if k := OptimalK(100, 10000); k != 1 {
		t.Errorf("tiny filter k = %d, want 1", k)
	}
	if k := OptimalK(1<<30, 2); k != 32 {
		t.Errorf("huge filter k = %d, want clamp 32", k)
	}
	if k := OptimalK(0, 0); k != 1 {
		t.Errorf("degenerate k = %d", k)
	}
}

func TestHash32Mixes(t *testing.T) {
	if Hash32(1) == Hash32(2) {
		t.Error("adjacent keys collide")
	}
	// Low bits must differ for sequential keys (IDs are sequential!).
	low := map[uint64]int{}
	for i := uint32(0); i < 1000; i++ {
		low[Hash32(i)&0xFF]++
	}
	if len(low) < 200 {
		t.Errorf("only %d distinct low bytes across 1000 sequential keys", len(low))
	}
}

func TestQuickMembership(t *testing.T) {
	f := func(keys []uint32, probe uint32) bool {
		filt, err := New(4096, 4)
		if err != nil {
			return false
		}
		inSet := false
		for _, k := range keys {
			filt.Add(Hash32(k))
			if k == probe {
				inSet = true
			}
		}
		// Members must always be found.
		if inSet && !filt.Contains(Hash32(probe)) {
			return false
		}
		for _, k := range keys {
			if !filt.Contains(Hash32(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitHashNeverZeroStep(t *testing.T) {
	for _, h := range []uint64{0, 1, math.MaxUint64, 1 << 33} {
		_, h2 := splitHash(h)
		if h2 == 0 || h2%2 == 0 {
			t.Errorf("splitHash(%d) step = %d", h, h2)
		}
	}
}
