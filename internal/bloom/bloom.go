// Package bloom implements the Bloom filter [Bloom 1970] GhostDB's
// post-filtering strategy relies on: the untrusted side's visible
// selection result is shipped into the device as a compact bit array and
// probed after the hidden joins (paper Section 4, Figure 5). "The two
// properties of Bloom filters are compactness and a very low false
// positive rate, making them well adapted to RAM-constrained
// environments."
//
// GhostDB repairs false positives with an exact verification merge during
// the projection phase, so the filter only has to be good, not perfect —
// which lets the engine shrink a filter to fit whatever RAM remains and
// pay for the extra positives in wasted SKT work instead of wrong answers.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a classic m-bit, k-hash Bloom filter keyed by 64-bit hashes,
// using Kirsch–Mitzenmacher double hashing.
type Filter struct {
	bits []byte
	m    uint64 // number of bits
	k    int
	n    int // elements added
}

// New returns a filter with at least mBits bits (rounded up to a whole
// byte) and k hash functions.
func New(mBits int, k int) (*Filter, error) {
	if mBits <= 0 {
		return nil, fmt.Errorf("bloom: %d bits", mBits)
	}
	if k <= 0 || k > 32 {
		return nil, fmt.Errorf("bloom: %d hash functions", k)
	}
	bytes := (mBits + 7) / 8
	return &Filter{bits: make([]byte, bytes), m: uint64(bytes) * 8, k: k}, nil
}

// SizeForFPR returns the bit count and hash count that achieve the target
// false-positive rate for n elements: m = -n·ln(p)/ln(2)², k = m/n·ln(2).
func SizeForFPR(n int, fpr float64) (mBits, k int) {
	if n <= 0 {
		return 64, 1
	}
	if fpr <= 0 {
		fpr = 1e-9
	}
	if fpr >= 1 {
		fpr = 0.5
	}
	m := -float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2)
	mBits = int(math.Ceil(m))
	if mBits < 64 {
		mBits = 64
	}
	k = OptimalK(mBits, n)
	return mBits, k
}

// OptimalK returns the hash count minimizing the false-positive rate for
// the given geometry.
func OptimalK(mBits, n int) int {
	if n <= 0 || mBits <= 0 {
		return 1
	}
	k := int(math.Round(float64(mBits) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return k
}

// FootprintBytes reports the filter's RAM consumption.
func (f *Filter) FootprintBytes() int { return len(f.bits) }

// K reports the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count reports how many elements have been added.
func (f *Filter) Count() int { return f.n }

// Add inserts an element by its 64-bit hash.
func (f *Filter) Add(h uint64) {
	h1, h2 := splitHash(h)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit>>3] |= 1 << (bit & 7)
	}
	f.n++
}

// Contains reports whether the element may have been added. False
// positives occur at roughly EstimatedFPR; false negatives never.
func (f *Filter) Contains(h uint64) bool {
	h1, h2 := splitHash(h)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}

// EstimatedFPR returns the analytic false-positive rate
// (1 - e^(-kn/m))^k for the current fill.
func (f *Filter) EstimatedFPR() float64 {
	if f.n == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.n) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Hash32 mixes a 32-bit key (a row identifier) into a 64-bit hash
// suitable for Add/Contains, using the splitmix64 finalizer.
func Hash32(x uint32) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func splitHash(h uint64) (h1, h2 uint64) {
	h1 = h
	h2 = h>>33 | h<<31
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	// An even h2 would cycle through a subset of bits when m is even;
	// force it odd.
	h2 |= 1
	return h1, h2
}
