package exec

// Host-side result operators: hash group-by with pooled aggregate
// state, streaming DISTINCT, and top-K / full ordering. GhostDB's
// aggregation runs on the secure display, after the device's ID-stream
// pipeline has materialized the physical result rows — so these
// operators never touch the simulated device and charge nothing to its
// clock (the cost model is the paper's contribution; host finishing is
// free by construction on every engine, which keeps the batch and row
// engines bit-identical in simulated time on aggregate queries too).
//
// All three operators are pooled and reusable: in steady state (a warm
// group/dedup table, a full top-K heap) processing a row performs no
// heap allocation, matching the O(1)-allocs-per-batch discipline of the
// device-side batch operators.

import (
	"math"
	"sort"
	"sync"

	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// AggOp describes one aggregate accumulator: Func over input row column
// Col (-1 for COUNT(*)). ArgKind is the argument column's kind; it
// decides whether SUM/AVG accumulate integer- or float-side.
type AggOp struct {
	Func    sql.AggFunc
	Col     int
	ArgKind value.Kind
}

// aggAcc is one accumulator's state: contribution count, integer and
// float sums, and the current MIN/MAX carrier.
type aggAcc struct {
	n int64
	i int64
	f float64
	v value.Value
}

// fnvOffset/fnvPrime are the FNV-1a constants, inlined so per-row
// hashing never allocates.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashInto mixes one value into an FNV-1a style running hash.
func hashInto(h uint64, v value.Value) uint64 {
	h = (h ^ uint64(v.Kind())) * fnvPrime
	switch v.Kind() {
	case value.String:
		s := v.Str()
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime
		}
	case value.Float:
		h = (h ^ uint64(floatBits(v.Float()))) * fnvPrime
	case value.Int:
		h = (h ^ uint64(v.Int())) * fnvPrime
	case value.Date:
		h = (h ^ uint64(v.DateDays())) * fnvPrime
	case value.Bool:
		if v.Bool() {
			h = (h ^ 1) * fnvPrime
		} else {
			h = (h ^ 2) * fnvPrime
		}
	}
	return h
}

func floatBits(f float64) uint64 {
	if f != f { // NaN: one canonical pattern
		return 0
	}
	if f == 0 { // -0.0 == 0.0 under Go ==; hash them alike
		return 1
	}
	return math.Float64bits(f)
}

// AggState is one accumulator's raw state, exported for cross-shard
// partial aggregation: a shard finishes its physical rows into group
// partials, ships the accumulators host-side, and the coordinator
// merges them with Absorb. Merging raw state (not finalized values) is
// what keeps AVG and COUNT correct across shards — an average of
// per-shard averages would weight shards, not rows.
type AggState struct {
	N int64       // contribution count
	I int64       // integer-side running sum
	F float64     // float-side running sum
	V value.Value // current MIN/MAX carrier (invalid when none)
}

// Grouper is a pooled hash group-by: rows are added one batch (or one
// row) at a time; groups appear in first-seen order, which — fed in
// root-ID order — makes the unordered aggregate result deterministic.
type Grouper struct {
	keyCols []int
	aggs    []AggOp

	head  map[uint64]int32 // key hash -> first group index + 1
	next  []int32          // per-group collision chain (same full hash)
	keys  []value.Value    // flat: group * len(keyCols)
	accs  []aggAcc         // flat: group * len(aggs)
	first []int64          // per group: min seq seen (AddAt/Absorb only)
	n     int              // group count
}

var grouperPool = sync.Pool{
	New: func() any { return &Grouper{head: map[uint64]int32{}} },
}

// GetGrouper returns a pooled Grouper configured for the given key
// columns and accumulators. The slices are retained (not copied).
func GetGrouper(keyCols []int, aggs []AggOp) *Grouper {
	g := grouperPool.Get().(*Grouper)
	g.keyCols, g.aggs = keyCols, aggs
	clear(g.head)
	g.next = g.next[:0]
	g.keys = g.keys[:0]
	g.accs = g.accs[:0]
	g.first = g.first[:0]
	g.n = 0
	return g
}

// PutGrouper returns the operator (and its table memory) to the pool.
func PutGrouper(g *Grouper) {
	if g == nil {
		return
	}
	g.keyCols, g.aggs = nil, nil
	clear(g.keys) // don't pin result strings
	g.keys = g.keys[:0]
	for i := range g.accs {
		g.accs[i] = aggAcc{}
	}
	g.accs = g.accs[:0]
	g.first = g.first[:0]
	grouperPool.Put(g)
}

// Add folds one row into its group, creating the group on first sight.
func (g *Grouper) Add(row []value.Value) error {
	gi := g.findOrAdd(row)
	return g.accumulate(gi, row)
}

// AddBatch folds a batch of rows.
func (g *Grouper) AddBatch(rows [][]value.Value) error {
	for _, r := range rows {
		if err := g.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// AddAt folds one row like Add and stamps the group with seq on first
// sight. Shard pipelines pass the row's global root identifier as seq,
// so FirstSeen later recovers the order the single-device engine would
// have created the groups in.
func (g *Grouper) AddAt(row []value.Value, seq int64) error {
	gi := g.findOrAdd(row)
	if len(g.first) < g.n {
		g.first = append(g.first, seq)
	}
	return g.accumulate(gi, row)
}

// Absorb merges one exported group partial: keys is the group's key
// tuple (len(keyCols) values), accs its raw accumulator states in AggOp
// order, seq its FirstSeen stamp. The group is created on first sight;
// otherwise the states merge accumulator-wise and the stamp keeps its
// minimum. The receiver must be configured with identity key columns
// (0..len(keys)-1) so the key tuple addresses itself.
func (g *Grouper) Absorb(keys []value.Value, accs []AggState, seq int64) error {
	gi := g.findOrAdd(keys)
	if len(g.first) < g.n {
		g.first = append(g.first, seq)
	} else if seq < g.first[gi] {
		g.first[gi] = seq
	}
	base := gi * len(g.aggs)
	for a := range g.aggs {
		op := &g.aggs[a]
		acc := &g.accs[base+a]
		in := accs[a]
		acc.n += in.N
		acc.i += in.I
		acc.f += in.F
		if !in.V.IsValid() {
			continue
		}
		if !acc.v.IsValid() {
			acc.v = in.V
			continue
		}
		c, err := value.Compare(in.V, acc.v)
		if err != nil {
			return err
		}
		if (op.Func == sql.AggMin && c < 0) || (op.Func == sql.AggMax && c > 0) {
			acc.v = in.V
		}
	}
	return nil
}

// Partial exports group gi's raw state for host-side merging: the key
// tuple, the accumulator states, and the FirstSeen stamp. The returned
// slices alias the grouper's storage — absorb them before PutGrouper.
func (g *Grouper) Partial(gi int) ([]value.Value, []AggState, int64) {
	keys := g.keys[gi*len(g.keyCols) : (gi+1)*len(g.keyCols)]
	base := gi * len(g.aggs)
	accs := make([]AggState, len(g.aggs))
	for a := range g.aggs {
		acc := g.accs[base+a]
		accs[a] = AggState{N: acc.n, I: acc.i, F: acc.f, V: acc.v}
	}
	return keys, accs, g.FirstSeen(gi)
}

// FirstSeen returns group gi's seq stamp (see AddAt/Absorb);
// math.MaxInt64 when the group was created without one (plain Add or
// AddEmptyGroup), which sorts such groups last.
func (g *Grouper) FirstSeen(gi int) int64 {
	if gi < len(g.first) {
		return g.first[gi]
	}
	return math.MaxInt64
}

// findOrAdd locates the row's group, appending a new one when unseen.
func (g *Grouper) findOrAdd(row []value.Value) int {
	h := uint64(fnvOffset)
	for _, kc := range g.keyCols {
		h = hashInto(h, row[kc])
	}
	// The head map is keyed by the full 64-bit hash, so a chain only
	// links groups whose keys collide on it — compare keys directly.
	for id := g.head[h]; id != 0; id = g.next[id-1] {
		gi := int(id - 1)
		if g.sameKey(gi, row) {
			return gi
		}
	}
	gi := g.n
	g.n++
	g.next = append(g.next, g.head[h])
	g.head[h] = int32(gi + 1)
	for _, kc := range g.keyCols {
		g.keys = append(g.keys, row[kc])
	}
	for range g.aggs {
		g.accs = append(g.accs, aggAcc{})
	}
	return gi
}

func (g *Grouper) sameKey(gi int, row []value.Value) bool {
	base := gi * len(g.keyCols)
	for k, kc := range g.keyCols {
		if g.keys[base+k] != row[kc] {
			return false
		}
	}
	return true
}

// accumulate folds the row into group gi's accumulators.
func (g *Grouper) accumulate(gi int, row []value.Value) error {
	base := gi * len(g.aggs)
	for a := range g.aggs {
		op := &g.aggs[a]
		acc := &g.accs[base+a]
		acc.n++
		if op.Col < 0 {
			continue // COUNT(*): the contribution count is the state
		}
		v := row[op.Col]
		switch op.Func {
		case sql.AggCount:
			// counted above
		case sql.AggSum, sql.AggAvg:
			if v.Kind() == value.Float {
				acc.f += v.Float()
			} else {
				acc.i += v.Int()
			}
		case sql.AggMin, sql.AggMax:
			if !acc.v.IsValid() {
				acc.v = v
				continue
			}
			c, err := value.Compare(v, acc.v)
			if err != nil {
				return err
			}
			if (op.Func == sql.AggMin && c < 0) || (op.Func == sql.AggMax && c > 0) {
				acc.v = v
			}
		}
	}
	return nil
}

// Groups reports the number of distinct groups seen so far.
func (g *Grouper) Groups() int { return g.n }

// Key returns grouping key k of group gi.
func (g *Grouper) Key(gi, k int) value.Value { return g.keys[gi*len(g.keyCols)+k] }

// AggValue finalizes accumulator a of group gi. Aggregates over an
// empty group (only possible for the global group of an empty result)
// yield COUNT = 0 and NULL (the invalid value) for everything else.
func (g *Grouper) AggValue(gi, a int) value.Value {
	op := g.aggs[a]
	acc := g.accs[gi*len(g.aggs)+a]
	switch op.Func {
	case sql.AggCount:
		return value.NewInt(acc.n)
	case sql.AggSum:
		if acc.n == 0 {
			return value.Value{}
		}
		if op.ArgKind == value.Float {
			return value.NewFloat(acc.f)
		}
		return value.NewInt(acc.i)
	case sql.AggAvg:
		if acc.n == 0 {
			return value.Value{}
		}
		return value.NewFloat((float64(acc.i) + acc.f) / float64(acc.n))
	case sql.AggMin, sql.AggMax:
		return acc.v
	}
	return value.Value{}
}

// AddEmptyGroup appends one group with zero contributions (the global
// group of an aggregate query whose pipeline matched no rows). The
// grouper must be keyless.
func (g *Grouper) AddEmptyGroup() {
	g.n++
	g.next = append(g.next, 0)
	for range g.aggs {
		g.accs = append(g.accs, aggAcc{})
	}
}

// Distinct is a pooled streaming duplicate filter over value rows.
type Distinct struct {
	width int
	head  map[uint64]int32
	next  []int32
	rows  []value.Value // flat: entry * width
	n     int
}

var distinctPool = sync.Pool{
	New: func() any { return &Distinct{head: map[uint64]int32{}} },
}

// GetDistinct returns a pooled filter for rows of the given width
// (only the first width columns of each row participate).
func GetDistinct(width int) *Distinct {
	d := distinctPool.Get().(*Distinct)
	d.width = width
	clear(d.head)
	d.next = d.next[:0]
	d.rows = d.rows[:0]
	d.n = 0
	return d
}

// PutDistinct returns the filter to the pool.
func PutDistinct(d *Distinct) {
	if d == nil {
		return
	}
	clear(d.rows)
	d.rows = d.rows[:0]
	distinctPool.Put(d)
}

// Seen reports whether the row's first width columns were already
// observed, recording them when new.
func (d *Distinct) Seen(row []value.Value) bool {
	h := uint64(fnvOffset)
	for i := 0; i < d.width; i++ {
		h = hashInto(h, row[i])
	}
	for id := d.head[h]; id != 0; id = d.next[id-1] {
		if d.sameRow(int(id-1), row) {
			return true
		}
	}
	d.next = append(d.next, d.head[h])
	d.head[h] = int32(d.n + 1)
	d.rows = append(d.rows, row[:d.width]...)
	d.n++
	return false
}

func (d *Distinct) sameRow(e int, row []value.Value) bool {
	base := e * d.width
	for i := 0; i < d.width; i++ {
		if d.rows[base+i] != row[i] {
			return false
		}
	}
	return true
}

// SortKey orders rows by column Col, descending when Desc.
type SortKey struct {
	Col  int
	Desc bool
}

// OrderCmp is the total order ORDER BY uses within one column: NULL
// (the invalid value) sorts first, then value.Compare; kinds that
// cannot be compared fall back to their kind number so the order is
// still total and deterministic.
func OrderCmp(a, b value.Value) int {
	av, bv := a.IsValid(), b.IsValid()
	switch {
	case !av && !bv:
		return 0
	case !av:
		return -1
	case !bv:
		return 1
	}
	c, err := value.Compare(a, b)
	if err != nil {
		switch {
		case a.Kind() < b.Kind():
			return -1
		case a.Kind() > b.Kind():
			return 1
		default:
			return 0
		}
	}
	return c
}

// Sorter is a pooled ORDER BY operator: unbounded it collects and
// stable-sorts every row; with a positive K it keeps only the K
// first-ordered rows in a bounded heap (ORDER BY ... LIMIT K). Ties are
// broken by arrival order, so the result is deterministic and matches a
// stable sort of the input.
type Sorter struct {
	keys []SortKey
	k    int

	rows [][]value.Value // references; rows must outlive the sorter's use
	seq  []int64
	n    int64 // arrival counter
}

var sorterPool = sync.Pool{New: func() any { return &Sorter{} }}

// GetSorter returns a pooled sorter. keys is retained, not copied;
// k <= 0 sorts everything.
func GetSorter(keys []SortKey, k int) *Sorter {
	s := sorterPool.Get().(*Sorter)
	s.keys, s.k = keys, k
	clear(s.rows)
	s.rows = s.rows[:0]
	s.seq = s.seq[:0]
	s.n = 0
	return s
}

// PutSorter returns the sorter to the pool.
func PutSorter(s *Sorter) {
	if s == nil {
		return
	}
	s.keys = nil
	clear(s.rows)
	s.rows = s.rows[:0]
	sorterPool.Put(s)
}

// before reports whether row a sorts strictly before row b.
func (s *Sorter) before(a, b []value.Value, seqA, seqB int64) bool {
	for _, k := range s.keys {
		c := OrderCmp(a[k.Col], b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return seqA < seqB
}

// Push offers one row. The sorter stores the slice, not a copy.
func (s *Sorter) Push(row []value.Value) {
	seq := s.n
	s.n++
	if s.k <= 0 || len(s.rows) < s.k {
		s.rows = append(s.rows, row)
		s.seq = append(s.seq, seq)
		if s.k > 0 {
			s.siftUp(len(s.rows) - 1)
		}
		return
	}
	// Heap full: the root is the last-ordered kept row; replace it when
	// the newcomer sorts before it.
	if s.before(row, s.rows[0], seq, s.seq[0]) {
		s.rows[0], s.seq[0] = row, seq
		s.siftDown(0)
	}
}

// worse reports whether heap element i sorts after element j (max-heap
// on the sort order: the worst kept row sits at the root).
func (s *Sorter) worse(i, j int) bool {
	return s.before(s.rows[j], s.rows[i], s.seq[j], s.seq[i])
}

func (s *Sorter) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.worse(i, p) {
			return
		}
		s.rows[i], s.rows[p] = s.rows[p], s.rows[i]
		s.seq[i], s.seq[p] = s.seq[p], s.seq[i]
		i = p
	}
}

func (s *Sorter) siftDown(i int) {
	n := len(s.rows)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && s.worse(l, w) {
			w = l
		}
		if r < n && s.worse(r, w) {
			w = r
		}
		if w == i {
			return
		}
		s.rows[i], s.rows[w] = s.rows[w], s.rows[i]
		s.seq[i], s.seq[w] = s.seq[w], s.seq[i]
		i = w
	}
}

// Finish sorts and returns the kept rows. The returned slice aliases
// the sorter's storage: consume it before PutSorter.
func (s *Sorter) Finish() [][]value.Value {
	sort.Sort((*sorterFinal)(s))
	return s.rows
}

// sorterFinal adapts the sorter's final ordering to sort.Interface
// without allocating a closure-captured comparator.
type sorterFinal Sorter

func (f *sorterFinal) Len() int { return len(f.rows) }
func (f *sorterFinal) Less(i, j int) bool {
	s := (*Sorter)(f)
	return s.before(s.rows[i], s.rows[j], s.seq[i], s.seq[j])
}
func (f *sorterFinal) Swap(i, j int) {
	f.rows[i], f.rows[j] = f.rows[j], f.rows[i]
	f.seq[i], f.seq[j] = f.seq[j], f.seq[i]
}
