package exec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// sliceRowIter feeds rows from memory.
type sliceRowIter struct {
	rows [][]uint32
	seqs []uint32
	i    int
}

func (s *sliceRowIter) Next() (Row, bool, error) {
	if s.i >= len(s.rows) {
		return Row{}, false, nil
	}
	var seq uint32
	if s.seqs != nil {
		seq = s.seqs[s.i]
	}
	r := Row{Seq: seq, IDs: s.rows[s.i]}
	s.i++
	return r, true, nil
}

func (s *sliceRowIter) Close() {}

// sliceKV feeds a projection stream from memory.
type sliceKV struct {
	kvs []KV
	i   int
}

func (s *sliceKV) Next() (KV, bool, error) {
	if s.i >= len(s.kvs) {
		return KV{}, false, nil
	}
	kv := s.kvs[s.i]
	s.i++
	return kv, true, nil
}

func (s *sliceKV) Close() {}

func collectRows(t *testing.T, it RowIter) ([]uint32, [][]uint32) {
	t.Helper()
	defer it.Close()
	var seqs []uint32
	var rows [][]uint32
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return seqs, rows
		}
		seqs = append(seqs, r.Seq)
		rows = append(rows, append([]uint32(nil), r.IDs...))
	}
}

func TestMaterializeAndIterate(t *testing.T) {
	e := newEnv(t)
	in := &sliceRowIter{rows: [][]uint32{{10, 1}, {20, 2}, {30, 1}}}
	rf, err := e.MaterializeRows(in, 2, true, op())
	if err != nil {
		t.Fatal(err)
	}
	if rf.Count() != 3 || rf.Fields() != 2 {
		t.Fatalf("count=%d fields=%d", rf.Count(), rf.Fields())
	}
	it, err := rf.Iter()
	if err != nil {
		t.Fatal(err)
	}
	seqs, rows := collectRows(t, it)
	if !reflect.DeepEqual(seqs, []uint32{0, 1, 2}) {
		t.Errorf("seqs = %v", seqs)
	}
	if !reflect.DeepEqual(rows, [][]uint32{{10, 1}, {20, 2}, {30, 1}}) {
		t.Errorf("rows = %v", rows)
	}
}

func TestMaterializePreservesSeq(t *testing.T) {
	e := newEnv(t)
	in := &sliceRowIter{rows: [][]uint32{{10}, {20}}, seqs: []uint32{7, 3}}
	rf, err := e.MaterializeRows(in, 1, false, op())
	if err != nil {
		t.Fatal(err)
	}
	it, err := rf.Iter()
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collectRows(t, it)
	if !reflect.DeepEqual(seqs, []uint32{7, 3}) {
		t.Errorf("seqs = %v", seqs)
	}
}

func TestMaterializeFieldMismatch(t *testing.T) {
	e := newEnv(t)
	in := &sliceRowIter{rows: [][]uint32{{1, 2}}}
	if _, err := e.MaterializeRows(in, 3, true, op()); err == nil {
		t.Error("field mismatch accepted")
	}
}

func TestSortRowFileSmall(t *testing.T) {
	e := newEnv(t)
	in := &sliceRowIter{rows: [][]uint32{{5, 100}, {1, 300}, {3, 200}}}
	rf, err := e.MaterializeRows(in, 2, true, op())
	if err != nil {
		t.Fatal(err)
	}
	byField0, err := e.SortRowFile(rf, 0, 4096, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	it, err := byField0.Iter()
	if err != nil {
		t.Fatal(err)
	}
	seqs, rows := collectRows(t, it)
	if !reflect.DeepEqual(rows, [][]uint32{{1, 300}, {3, 200}, {5, 100}}) {
		t.Errorf("sorted rows = %v", rows)
	}
	// Seq numbers travel with their rows.
	if !reflect.DeepEqual(seqs, []uint32{1, 2, 0}) {
		t.Errorf("seqs = %v", seqs)
	}
	// Sorting by the second field reverses it.
	byField1, err := e.SortRowFile(rf, 1, 4096, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	it2, err := byField1.Iter()
	if err != nil {
		t.Fatal(err)
	}
	_, rows2 := collectRows(t, it2)
	if !reflect.DeepEqual(rows2, [][]uint32{{5, 100}, {3, 200}, {1, 300}}) {
		t.Errorf("sorted by field 1 = %v", rows2)
	}
	if _, err := e.SortRowFile(rf, 2, 4096, 8, op()); err == nil {
		t.Error("bad field accepted")
	}
}

func TestSortRowFileExternalRuns(t *testing.T) {
	e := newEnv(t)
	n := 5000
	rows := make([][]uint32, n)
	for i := range rows {
		// Pseudo-random but deterministic keys.
		rows[i] = []uint32{uint32((i*2654435761 + 1) % 100000), uint32(i)}
	}
	rf, err := e.MaterializeRows(&sliceRowIter{rows: rows}, 2, true, op())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny buffer (64 records) and fanin 3 force multiple merge passes.
	o := op()
	sortedRF, err := e.SortRowFile(rf, 0, 64*8, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	if sortedRF.Count() != n {
		t.Fatalf("lost rows: %d of %d", sortedRF.Count(), n)
	}
	it, err := sortedRF.Iter()
	if err != nil {
		t.Fatal(err)
	}
	_, got := collectRows(t, it)
	for i := 1; i < len(got); i++ {
		if got[i][0] < got[i-1][0] {
			t.Fatalf("row %d out of order: %d < %d", i, got[i][0], got[i-1][0])
		}
	}
	// All original second fields must survive.
	var seconds []int
	for _, r := range got {
		seconds = append(seconds, int(r[1]))
	}
	sort.Ints(seconds)
	for i, s := range seconds {
		if s != i {
			t.Fatalf("payload %d missing", i)
		}
	}
}

func TestSortEmptyFile(t *testing.T) {
	e := newEnv(t)
	rf, err := e.MaterializeRows(&sliceRowIter{}, 2, true, op())
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.SortRowFile(rf, 0, 4096, 4, op())
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d", s.Count())
	}
	it, err := s.Iter()
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := collectRows(t, it)
	if seqs != nil {
		t.Errorf("rows = %v", seqs)
	}
}

func TestMergeRowsWithStream(t *testing.T) {
	e := newEnv(t)
	rows := &sliceRowIter{
		rows: [][]uint32{{1, 10}, {2, 10}, {3, 20}, {4, 30}, {5, 30}},
		seqs: []uint32{0, 1, 2, 3, 4},
	}
	// Rows sorted by field 1; stream covers 10 and 30 but not 20.
	stream := &sliceKV{kvs: []KV{
		{ID: 10, Val: value.NewString("ten")},
		{ID: 15, Val: value.NewString("fifteen")},
		{ID: 30, Val: value.NewString("thirty")},
	}}
	var matched []string
	var seqs []uint32
	o := op()
	err := e.MergeRowsWithStream(rows, 1, stream, o, func(r Row, v value.Value) error {
		matched = append(matched, v.Str())
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(matched, []string{"ten", "ten", "thirty", "thirty"}) {
		t.Errorf("matched = %v", matched)
	}
	if !reflect.DeepEqual(seqs, []uint32{0, 1, 3, 4}) {
		t.Errorf("seqs = %v (row with id 20 must be dropped)", seqs)
	}
	if o.TuplesIn != 5 || o.TuplesOut != 4 {
		t.Errorf("op in=%d out=%d", o.TuplesIn, o.TuplesOut)
	}
}

func TestMergeRowsWithEmptyStream(t *testing.T) {
	e := newEnv(t)
	rows := &sliceRowIter{rows: [][]uint32{{1}, {2}}}
	count := 0
	err := e.MergeRowsWithStream(rows, 0, &sliceKV{}, op(), func(Row, value.Value) error {
		count++
		return nil
	})
	if err != nil || count != 0 {
		t.Errorf("empty stream matched %d, err %v", count, err)
	}
}

func TestFilterRows(t *testing.T) {
	e := newEnv(t)
	in := &sliceRowIter{rows: [][]uint32{{1}, {2}, {3}, {4}}}
	even := func(r Row) (bool, error) { return r.IDs[0]%2 == 0, nil }
	big := func(r Row) (bool, error) { return r.IDs[0] > 2, nil }
	o := op()
	it := FilterRows(in, []RowFilter{even, big}, o)
	_, rows := collectRows(t, it)
	if !reflect.DeepEqual(rows, [][]uint32{{4}}) {
		t.Errorf("filtered = %v", rows)
	}
	if o.TuplesIn != 4 || o.TuplesOut != 1 {
		t.Errorf("op in=%d out=%d", o.TuplesIn, o.TuplesOut)
	}
	_ = e
}

func TestQuickSortRowFile(t *testing.T) {
	e := newEnv(t)
	f := func(keys []uint32, bufSeed, faninSeed uint8) bool {
		if len(keys) > 500 {
			keys = keys[:500]
		}
		rows := make([][]uint32, len(keys))
		for i, k := range keys {
			rows[i] = []uint32{k}
		}
		rf, err := e.MaterializeRows(&sliceRowIter{rows: rows}, 1, true, op())
		if err != nil {
			return false
		}
		buf := 64 + int(bufSeed)*8
		fanin := 2 + int(faninSeed%5)
		s, err := e.SortRowFile(rf, 0, buf, fanin, op())
		if err != nil {
			return false
		}
		it, err := s.Iter()
		if err != nil {
			return false
		}
		defer it.Close()
		var got []uint32
		for {
			r, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, r.IDs[0])
		}
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if err := e.Dev.ResetScratch(); err != nil {
			return false
		}
		e.Dev.Flash.ResetStats()
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	_ = stats.FormatBytes(0)
}
