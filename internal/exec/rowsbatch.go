package exec

// Batched counterparts of the row operators in rows.go. A RowBatch owns
// its memory (pooled), so — unlike the row-at-a-time iterators, whose Row
// aliases a buffer reused on every Next — rows handed out in a batch stay
// valid until the next call on the same iterator. Downstream consumers
// therefore never need defensive per-row copies.
//
// The join+filter stage is fused into one operator: the row engine
// interleaves SKT lookups and hidden-column fetches per row, and the
// device's LRU page cache makes the simulated flash cost depend on that
// exact access order. Running "join the whole batch, then filter the
// whole batch" would reorder cache probes and change the simulated time,
// so the fused operator keeps the per-row order and only amortizes
// dispatch and clock charges.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/ghostdb/ghostdb/internal/bloom"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/skt"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// DefaultRowBatchRows is the number of rows a RowBatch holds.
const DefaultRowBatchRows = 256

// RowBatch is a batch of result tuples stored row-major. The batch owns
// its backing arrays (pooled via GetRowBatch/PutRowBatch); Row views into
// it are valid until the batch is reset or recycled.
type RowBatch struct {
	width   int
	n       int
	capRows int
	seq     []uint32
	ids     []uint32
}

// GetRowBatch returns a pooled batch sized for width ID fields per row,
// holding up to DefaultRowBatchRows rows.
func GetRowBatch(width int) *RowBatch {
	return GetRowBatchCap(width, DefaultRowBatchRows)
}

// GetRowBatchCap returns a pooled batch capped at capRows rows.
func GetRowBatchCap(width, capRows int) *RowBatch {
	if capRows < 1 {
		capRows = 1
	}
	if capRows > DefaultRowBatchRows {
		capRows = DefaultRowBatchRows
	}
	b := rowBatchPool.Get().(*RowBatch)
	b.capRows = capRows
	b.Reset(width)
	return b
}

// NewRowBatch returns a pooled batch at the environment's configured row
// granularity.
func (e *Env) NewRowBatch(width int) *RowBatch {
	return GetRowBatchCap(width, e.rowBatchCap())
}

// PutRowBatch returns a batch to the pool.
func PutRowBatch(b *RowBatch) {
	if b != nil {
		rowBatchPool.Put(b)
	}
}

var rowBatchPool = sync.Pool{
	New: func() any {
		return &RowBatch{
			capRows: DefaultRowBatchRows,
			seq:     make([]uint32, DefaultRowBatchRows),
			ids:     make([]uint32, 4*DefaultRowBatchRows),
		}
	},
}

// Reset empties the batch and sets its row width.
func (b *RowBatch) Reset(width int) {
	b.width = width
	b.n = 0
	if need := DefaultRowBatchRows * width; cap(b.ids) < need {
		b.ids = make([]uint32, need)
	}
	b.ids = b.ids[:cap(b.ids)]
}

// Len reports the number of rows in the batch.
func (b *RowBatch) Len() int { return b.n }

// Width reports the number of ID fields per row.
func (b *RowBatch) Width() int { return b.width }

// CapRows reports how many rows the batch can hold.
func (b *RowBatch) CapRows() int {
	if b.capRows == 0 {
		return DefaultRowBatchRows
	}
	return b.capRows
}

// Row returns a view of row i. The view's IDs alias the batch memory:
// valid until the batch is reset or recycled, no copy needed before that.
func (b *RowBatch) Row(i int) Row {
	return Row{Seq: b.seq[i], IDs: b.ids[i*b.width : (i+1)*b.width]}
}

// slot prepares row slot i for writing and returns its ID fields.
func (b *RowBatch) slot(i int, seq uint32) []uint32 {
	b.seq[i] = seq
	return b.ids[i*b.width : (i+1)*b.width]
}

// BatchRowIter streams row batches. Next resets b and fills it with up to
// b.CapRows() rows, returning how many were produced; 0 with a nil error
// means the stream is exhausted.
type BatchRowIter interface {
	Next(b *RowBatch) (int, error)
	Close()
}

// CostedRowFilter is a row predicate whose CPU cost is charged by the
// caller, once per batch: Cycles is the per-evaluation charge and Eval
// must not advance the simulated clock itself (flash accesses inside Eval
// still charge normally, preserving the page-cache access order).
type CostedRowFilter struct {
	Cycles int64
	Eval   func(Row) (bool, error)
}

// BloomProbeCosted filters rows by probing the member ID at field against
// a Bloom filter, with the hash cost charged per batch.
func (e *Env) BloomProbeCosted(f *bloom.Filter, field int) CostedRowFilter {
	return CostedRowFilter{
		Cycles: int64(sim.CyclesHash) * int64(f.K()),
		Eval: func(r Row) (bool, error) {
			return f.Contains(bloom.Hash32(r.IDs[field])), nil
		},
	}
}

// HiddenPredCosted evaluates a predicate against a hidden column value
// fetched from the device store, with the predicate cost charged per
// batch. The fetch itself goes through the page cache in row order.
func (e *Env) HiddenPredCosted(col store.Column, field int, p pred.P) CostedRowFilter {
	return CostedRowFilter{
		Cycles: sim.CyclesPredicate,
		Eval: func(r Row) (bool, error) {
			v, err := col.Value(int(r.IDs[field]) - 1)
			if err != nil {
				return false, err
			}
			return p.Eval(v)
		},
	}
}

// JoinFilterSpec configures the fused join+filter stage.
type JoinFilterSpec struct {
	// SKT resolves member-table IDs; nil streams bare root rows
	// (single-table queries).
	SKT *skt.SKT
	// Tables lists the member tables for IDs[1:]; IDs[0] is the root.
	Tables []string
	// Filters are applied in order with short-circuiting, exactly like
	// FilterRows.
	Filters []CostedRowFilter
	// JoinOp and FilterOp receive the AccessSKT and Filter counters.
	// FilterOp is only updated when Filters is non-empty, mirroring the
	// row pipeline (which skips the filter stage entirely).
	JoinOp   *stats.Op
	FilterOp *stats.Op
}

// JoinFilterBatch turns a sorted batch stream of query-root IDs into
// batches of filtered rows carrying the joined member-table IDs — the
// fused, vectorized form of SKTJoin + FilterRows. Per-row order of SKT
// lookups and filter fetches is preserved; counters and clock charges are
// paid once per batch. A member table outside the SKT's subtree is an
// error, exactly as in the row engine's per-row lookups.
func (e *Env) JoinFilterBatch(root BatchIter, spec JoinFilterSpec) (BatchRowIter, error) {
	j := joinFilterPool.Get().(*joinFilterBatch)
	ids, evals := j.ids, j.evals
	if ids == nil {
		ids = GetIDBatch()
	}
	if cap(evals) < len(spec.Filters) {
		evals = make([]int64, len(spec.Filters))
	}
	cols := j.cols[:0]
	*j = joinFilterBatch{
		env:   e,
		in:    root,
		spec:  spec,
		width: 1 + len(spec.Tables),
		ids:   ids,
		lim:   e.batchCap(),
		evals: evals[:len(spec.Filters)],
	}
	// Resolve member columns once; per-row lookups then skip the SKT's
	// name normalization (the simulated flash accesses are identical).
	for _, table := range spec.Tables {
		col, ok, unknown := spec.SKT.Member(table)
		if unknown {
			j.cols = cols
			joinFilterPool.Put(j)
			return nil, fmt.Errorf("exec: %s is not in the subtree of %s", table, spec.SKT.Root)
		}
		if !ok {
			col = nil // the root itself: identity mapping
		}
		cols = append(cols, col)
	}
	j.cols = cols
	return j, nil
}

// joinFilterPool recycles the fused operator's state (including its
// root-ID staging buffer) across queries.
var joinFilterPool = sync.Pool{New: func() any { return &joinFilterBatch{} }}

type joinFilterBatch struct {
	env   *Env
	in    BatchIter
	spec  JoinFilterSpec
	width int
	ids   *[]uint32         // root-ID staging buffer
	lim   int               // configured granularity cap on root pulls
	cols  []*store.IDColumn // resolved member columns (nil = root identity)
	pos   int               // consumed prefix of ids
	have  int               // valid prefix of ids
	evals []int64           // per-filter evaluation counts (scratch)
	seq   uint32
	done  bool
}

func (j *joinFilterBatch) Next(b *RowBatch) (int, error) {
	b.Reset(j.width)
	if j.done {
		return 0, nil
	}
	var joined, kept int64
	for i := range j.evals {
		j.evals[i] = 0
	}
	for b.n < b.CapRows() {
		if j.pos >= j.have {
			want := b.CapRows() - b.n
			if want > j.lim {
				want = j.lim
			}
			k, err := j.in.Next((*j.ids)[:want])
			if err != nil {
				j.flushStats(joined, kept)
				return b.n, err
			}
			if k == 0 {
				j.done = true
				break
			}
			j.pos, j.have = 0, k
		}
		id := (*j.ids)[j.pos]
		j.pos++
		joined++
		row := b.slot(b.n, j.seq)
		j.seq++
		row[0] = id
		for t, col := range j.cols {
			mid := id // root identity
			if col != nil {
				var err error
				if mid, err = j.memberID(col, id); err != nil {
					j.flushStats(joined, kept)
					return b.n, err
				}
			}
			row[t+1] = mid
		}
		keepRow := true
		for f := range j.spec.Filters {
			j.evals[f]++
			ok, err := j.spec.Filters[f].Eval(Row{Seq: b.seq[b.n], IDs: row})
			if err != nil {
				j.flushStats(joined, kept)
				return b.n, err
			}
			if !ok {
				keepRow = false
				break
			}
		}
		if keepRow {
			kept++
			b.n++
		}
	}
	j.flushStats(joined, kept)
	return b.n, nil
}

// memberID is skt.Lookup with the column pre-resolved.
func (j *joinFilterBatch) memberID(col *store.IDColumn, rootID uint32) (uint32, error) {
	if rootID == 0 || int(rootID) > j.spec.SKT.Len() {
		return 0, fmt.Errorf("exec: SKT root ID %d out of range 1..%d", rootID, j.spec.SKT.Len())
	}
	return col.Get(int(rootID - 1))
}

// flushStats pays the batch's counters and clock charges: one SKT compare
// per (row, member table), each filter's per-evaluation cycles, and the
// AccessSKT/Filter tuple counts — all bit-identical to the row engine's
// per-row updates.
func (j *joinFilterBatch) flushStats(joined, kept int64) {
	j.spec.JoinOp.AddIn(joined)
	j.spec.JoinOp.AddOut(joined)
	if len(j.spec.Tables) > 0 {
		j.env.cpuUnits(sim.CyclesCompare, joined*int64(len(j.spec.Tables)))
	}
	if len(j.spec.Filters) > 0 {
		for f, n := range j.evals {
			j.env.cpuUnits(j.spec.Filters[f].Cycles, n)
		}
		j.spec.FilterOp.AddIn(joined)
		j.spec.FilterOp.AddOut(kept)
	}
}

func (j *joinFilterBatch) Close() {
	if j.in == nil {
		return // already closed and recycled
	}
	j.in.Close()
	j.in = nil
	j.spec = JoinFilterSpec{}
	j.cols = j.cols[:0]
	joinFilterPool.Put(j)
}

// MaterializeRowsBatch drains a batch row stream into a scratch row file
// — the batched Store operator. Records are encoded and written one batch
// at a time.
func (e *Env) MaterializeRowsBatch(in BatchRowIter, nFields int, assignSeq bool, op *stats.Op) (*RowFile, error) {
	defer in.Close()
	grant, err := e.Dev.RAM.Alloc(e.pageSize(), "row-writer")
	if err != nil {
		return nil, err
	}
	defer grant.Free()
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		return nil, err
	}
	rf := &RowFile{env: e, fields: nFields}
	width := 4 * (1 + nFields)
	rb := e.NewRowBatch(nFields)
	defer PutRowBatch(rb)
	raw := getByteBatch(DefaultRowBatchRows * width)
	defer putByteBatch(raw)
	var seq uint32
	for {
		k, err := in.Next(rb)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			break
		}
		if rb.Width() != nFields {
			return nil, fmt.Errorf("exec: row batch has %d fields, want %d", rb.Width(), nFields)
		}
		op.AddIn(int64(k))
		enc := (*raw)[:k*width]
		for i := 0; i < k; i++ {
			s := rb.seq[i]
			if assignSeq {
				s = seq
			}
			rec := enc[i*width:]
			binary.LittleEndian.PutUint32(rec[0:], s)
			for f, id := range rb.ids[i*nFields : (i+1)*nFields] {
				binary.LittleEndian.PutUint32(rec[4*(f+1):], id)
			}
			seq++
		}
		if _, err := w.Write(enc); err != nil {
			return nil, err
		}
		rf.n += k
		e.cpuUnits(int64(sim.CyclesCopyWord)*int64(1+nFields), int64(k))
	}
	ext, err := w.Close()
	if err != nil {
		return nil, err
	}
	op.AddOut(int64(rf.n))
	rf.ext = ext
	return rf, nil
}

// IterBatch streams the file's rows in storage order, one batch of
// records per flash read call. Like Iter, the stream owns one page
// buffer.
func (rf *RowFile) IterBatch() (BatchRowIter, error) {
	grant, err := rf.env.Dev.RAM.Alloc(rf.env.pageSize(), "row-reader")
	if err != nil {
		return nil, err
	}
	it := rowFileBatchPool.Get().(*rowFileBatch)
	raw := it.raw
	if raw == nil {
		raw = getByteBatch(DefaultRowBatchRows * rf.recordWidth())
	}
	*it = rowFileBatch{
		rf:     rf,
		reader: flash.NewReader(rf.env.Dev.Flash, rf.ext),
		grant:  grant,
		raw:    raw,
	}
	return it, nil
}

// rowFileBatchPool recycles row-file scan state (including the record
// decode buffer) across queries.
var rowFileBatchPool = sync.Pool{New: func() any { return &rowFileBatch{} }}

type rowFileBatch struct {
	rf     *RowFile
	reader *flash.Reader
	grant  *ram.Grant
	raw    *[]byte
	read   int
}

func (it *rowFileBatch) Next(b *RowBatch) (int, error) {
	fields := it.rf.fields
	b.Reset(fields)
	k := it.rf.n - it.read
	if k <= 0 {
		return 0, nil
	}
	if k > b.CapRows() {
		k = b.CapRows()
	}
	width := it.rf.recordWidth()
	if max := len(*it.raw) / width; k > max {
		k = max
	}
	raw := (*it.raw)[:k*width]
	if _, err := fullRead(it.reader, raw); err != nil {
		return 0, fmt.Errorf("exec: row file read: %w", err)
	}
	for i := 0; i < k; i++ {
		rec := raw[i*width:]
		ids := b.slot(i, binary.LittleEndian.Uint32(rec[0:]))
		for f := range ids {
			ids[f] = binary.LittleEndian.Uint32(rec[4*(f+1):])
		}
	}
	b.n = k
	it.read += k
	it.rf.env.cpuUnits(int64(sim.CyclesCopyWord)*int64(1+fields), int64(k))
	return k, nil
}

func (it *rowFileBatch) Close() {
	if it.rf == nil {
		return // already closed and recycled
	}
	it.grant.Free()
	it.reader.Release()
	it.reader = nil
	it.rf = nil
	rowFileBatchPool.Put(it)
}

// BuildBloomBatch drains a sorted batch ID stream into a Bloom filter —
// the batched twin of BuildBloom, with hash charges paid per batch.
func (e *Env) BuildBloomBatch(ids BatchIter, expected int, targetFPR float64, maxBytes int, op *stats.Op) (*bloom.Filter, func(), error) {
	defer ids.Close()
	mBits, k := bloom.SizeForFPR(expected, targetFPR)
	if maxBytes > 0 && (mBits+7)/8 > maxBytes {
		mBits = maxBytes * 8
		k = bloom.OptimalK(mBits, expected)
	}
	f, err := bloom.New(mBits, k)
	if err != nil {
		return nil, nil, err
	}
	grant, err := e.Dev.RAM.Alloc(f.FootprintBytes(), "bloom")
	if err != nil {
		return nil, nil, err
	}
	op.NoteRAM(int64(f.FootprintBytes()))
	bb := GetIDBatch()
	defer PutIDBatch(bb)
	buf := (*bb)[:e.batchCap()]
	for {
		n, err := ids.Next(buf)
		if err != nil {
			grant.Free()
			return nil, nil, err
		}
		if n == 0 {
			break
		}
		op.AddIn(int64(n))
		e.cpuUnits(int64(sim.CyclesHash)*int64(k), int64(n))
		for _, id := range buf[:n] {
			f.Add(bloom.Hash32(id))
		}
	}
	return f, grant.Free, nil
}

// MergeRowsWithStreamBatch merges batched rows (sorted ascending by
// IDs[field]) with a visible (id, value) stream sorted by unique
// ascending ID — the batched twin of MergeRowsWithStream. The KV stream
// itself stays element-at-a-time: it is the bus-charged projection
// stream, whose chunked messages must be sent at the same points as in
// the row engine. Rows passed to onMatch are views into a pooled batch:
// valid for the duration of the callback plus the rest of the batch.
func (e *Env) MergeRowsWithStreamBatch(rows BatchRowIter, field int, stream KVIter, op *stats.Op, onMatch func(Row, value.Value) error) error {
	defer rows.Close()
	defer stream.Close()
	cur, haveKV, err := stream.Next()
	if err != nil {
		return err
	}
	rb := e.NewRowBatch(1)
	defer PutRowBatch(rb)
	for {
		k, err := rows.Next(rb)
		if err != nil {
			return err
		}
		if k == 0 {
			return nil
		}
		op.AddIn(int64(k))
		var compares, matched int64
		for i := 0; i < k; i++ {
			r := rb.Row(i)
			id := r.IDs[field]
			for haveKV && cur.ID < id {
				compares++
				cur, haveKV, err = stream.Next()
				if err != nil {
					e.cpuUnits(sim.CyclesCompare, compares)
					return err
				}
			}
			if haveKV && cur.ID == id {
				matched++
				if err := onMatch(r, cur.Val); err != nil {
					e.cpuUnits(sim.CyclesCompare, compares)
					return err
				}
			}
		}
		e.cpuUnits(sim.CyclesCompare, compares)
		op.AddOut(matched)
	}
}
