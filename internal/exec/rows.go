package exec

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/ghostdb/ghostdb/internal/bloom"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/skt"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Row is one in-flight result tuple: a dense output sequence number and
// the identifiers of the query's tables (IDs[0] is the query-root ID,
// the rest follow the plan's table layout).
//
// Ownership rule: a Row obtained from a row-at-a-time RowIter aliases a
// buffer the iterator reuses on every Next — consumers that retain such a
// row must copy it. A Row obtained from a RowBatch (the vectorized path)
// aliases the batch's pooled memory instead and stays valid until that
// batch is reset or recycled, so batch consumers never copy.
type Row struct {
	Seq uint32
	IDs []uint32
}

// RowIter streams rows. Close releases RAM grants.
type RowIter interface {
	Next() (Row, bool, error)
	Close()
}

// SKTJoin turns a sorted stream of query-root IDs into rows carrying the
// joined member-table IDs, via single-step SKT lookups (Section 4:
// "reaching any other table in the path ... in a single step"). tables
// lists the member tables for IDs[1:]; IDs[0] is the root ID itself.
func (e *Env) SKTJoin(root IDIter, s *skt.SKT, tables []string, op *stats.Op) RowIter {
	return &sktJoinIter{env: e, in: root, skt: s, tables: tables, op: op,
		buf: make([]uint32, 1+len(tables))}
}

type sktJoinIter struct {
	env    *Env
	in     IDIter
	skt    *skt.SKT
	tables []string
	op     *stats.Op
	buf    []uint32
	seq    uint32
}

func (s *sktJoinIter) Next() (Row, bool, error) {
	id, ok, err := s.in.Next()
	if err != nil || !ok {
		return Row{}, false, err
	}
	s.op.AddIn(1)
	s.buf[0] = id
	for i, t := range s.tables {
		mid, err := s.skt.Lookup(id, t)
		if err != nil {
			return Row{}, false, err
		}
		s.env.cpu(sim.CyclesCompare)
		s.buf[i+1] = mid
	}
	s.op.AddOut(1)
	row := Row{Seq: s.seq, IDs: s.buf}
	s.seq++
	return row, true, nil
}

func (s *sktJoinIter) Close() { s.in.Close() }

// RowFilter decides whether a row survives.
type RowFilter func(Row) (bool, error)

// BloomProbe filters rows by probing the member ID at field against a
// Bloom filter — the post-filtering probe of Figure 5.
func (e *Env) BloomProbe(f *bloom.Filter, field int) RowFilter {
	return func(r Row) (bool, error) {
		e.cpu(int64(sim.CyclesHash) * int64(f.K()))
		return f.Contains(bloom.Hash32(r.IDs[field])), nil
	}
}

// HiddenPredFilter evaluates a predicate against a hidden column value
// fetched from the device store for the row's member at field — the
// fallback for hidden predicates without a usable climbing index, and
// the "hidden post-filtering" ablation strategy.
func (e *Env) HiddenPredFilter(col store.Column, field int, p pred.P) RowFilter {
	return func(r Row) (bool, error) {
		v, err := col.Value(int(r.IDs[field]) - 1)
		if err != nil {
			return false, err
		}
		e.cpu(sim.CyclesPredicate)
		return p.Eval(v)
	}
}

// FilterRows applies filters in order, short-circuiting on the first miss.
func FilterRows(in RowIter, filters []RowFilter, op *stats.Op) RowIter {
	return &filterIter{in: in, filters: filters, op: op}
}

type filterIter struct {
	in      RowIter
	filters []RowFilter
	op      *stats.Op
}

func (f *filterIter) Next() (Row, bool, error) {
row:
	for {
		r, ok, err := f.in.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		f.op.AddIn(1)
		for _, filt := range f.filters {
			keep, err := filt(r)
			if err != nil {
				return Row{}, false, err
			}
			if !keep {
				continue row
			}
		}
		f.op.AddOut(1)
		return r, true, nil
	}
}

func (f *filterIter) Close() { f.in.Close() }

// BuildBloom drains a sorted ID stream into a Bloom filter sized for the
// target false-positive rate, shrinking to maxBytes if the ideal size
// does not fit — a smaller filter just raises the (repaired) fpr, which
// is the RAM/time trade-off of post-filtering. The returned grant holds
// the filter's RAM; free it when probing is done.
func (e *Env) BuildBloom(ids IDIter, expected int, targetFPR float64, maxBytes int, op *stats.Op) (*bloom.Filter, func(), error) {
	defer ids.Close()
	mBits, k := bloom.SizeForFPR(expected, targetFPR)
	if maxBytes > 0 && (mBits+7)/8 > maxBytes {
		mBits = maxBytes * 8
		k = bloom.OptimalK(mBits, expected)
	}
	f, err := bloom.New(mBits, k)
	if err != nil {
		return nil, nil, err
	}
	grant, err := e.Dev.RAM.Alloc(f.FootprintBytes(), "bloom")
	if err != nil {
		return nil, nil, err
	}
	op.NoteRAM(int64(f.FootprintBytes()))
	for {
		id, ok, err := ids.Next()
		if err != nil {
			grant.Free()
			return nil, nil, err
		}
		if !ok {
			break
		}
		op.AddIn(1)
		e.cpu(int64(sim.CyclesHash) * int64(k))
		f.Add(bloom.Hash32(id))
	}
	return f, grant.Free, nil
}

// RowFile is a materialized row set in scratch flash: fixed-width records
// of (seq, ids...) little-endian uint32s.
type RowFile struct {
	env    *Env
	ext    flash.Extent
	n      int
	fields int // ID fields per record (excluding seq)
}

// Count reports the number of rows.
func (rf *RowFile) Count() int { return rf.n }

// Fields reports the number of ID fields per row.
func (rf *RowFile) Fields() int { return rf.fields }

// recordWidth is the byte width of one record.
func (rf *RowFile) recordWidth() int { return 4 * (1 + rf.fields) }

// MaterializeRows drains in (rows with nFields IDs) into a scratch row
// file — the "Store" operator of Figure 5. When assignSeq is set, rows
// get fresh dense sequence numbers in arrival order.
func (e *Env) MaterializeRows(in RowIter, nFields int, assignSeq bool, op *stats.Op) (*RowFile, error) {
	defer in.Close()
	grant, err := e.Dev.RAM.Alloc(e.pageSize(), "row-writer")
	if err != nil {
		return nil, err
	}
	defer grant.Free()
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		return nil, err
	}
	rf := &RowFile{env: e, fields: nFields}
	rec := make([]byte, 4*(1+nFields))
	var seq uint32
	for {
		r, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(r.IDs) != nFields {
			return nil, fmt.Errorf("exec: row has %d fields, want %d", len(r.IDs), nFields)
		}
		op.AddIn(1)
		s := r.Seq
		if assignSeq {
			s = seq
		}
		binary.LittleEndian.PutUint32(rec[0:], s)
		for i, id := range r.IDs {
			binary.LittleEndian.PutUint32(rec[4*(i+1):], id)
		}
		if _, err := w.Write(rec); err != nil {
			return nil, err
		}
		seq++
		rf.n++
		e.cpu(int64(sim.CyclesCopyWord) * int64(1+nFields))
	}
	ext, err := w.Close()
	if err != nil {
		return nil, err
	}
	op.AddOut(int64(rf.n))
	rf.ext = ext
	return rf, nil
}

// RowFileWriter streams rows into a new scratch row file, holding one
// page buffer. Used when a merge pass rewrites the surviving rows.
type RowFileWriter struct {
	env    *Env
	w      *flash.Writer
	grant  *ram.Grant
	fields int
	n      int
	rec    []byte
}

// NewRowFileWriter opens a streaming writer for rows of nFields IDs.
func (e *Env) NewRowFileWriter(nFields int) (*RowFileWriter, error) {
	grant, err := e.Dev.RAM.Alloc(e.pageSize(), "row-writer")
	if err != nil {
		return nil, err
	}
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		grant.Free()
		return nil, err
	}
	return &RowFileWriter{env: e, w: w, grant: grant, fields: nFields,
		rec: make([]byte, 4*(1+nFields))}, nil
}

// Write appends one row, preserving its sequence number.
func (w *RowFileWriter) Write(r Row) error {
	if len(r.IDs) != w.fields {
		return fmt.Errorf("exec: row has %d fields, want %d", len(r.IDs), w.fields)
	}
	binary.LittleEndian.PutUint32(w.rec[0:], r.Seq)
	for i, id := range r.IDs {
		binary.LittleEndian.PutUint32(w.rec[4*(i+1):], id)
	}
	if _, err := w.w.Write(w.rec); err != nil {
		return err
	}
	w.n++
	w.env.cpu(int64(sim.CyclesCopyWord) * int64(1+w.fields))
	return nil
}

// Close finalizes the file.
func (w *RowFileWriter) Close() (*RowFile, error) {
	defer w.grant.Free()
	ext, err := w.w.Close()
	if err != nil {
		return nil, err
	}
	return &RowFile{env: w.env, ext: ext, n: w.n, fields: w.fields}, nil
}

// Abort releases resources without producing a file.
func (w *RowFileWriter) Abort() {
	_, _ = w.w.Close()
	w.grant.Free()
}

// Iter streams the file's rows in storage order.
func (rf *RowFile) Iter() (RowIter, error) {
	grant, err := rf.env.Dev.RAM.Alloc(rf.env.pageSize(), "row-reader")
	if err != nil {
		return nil, err
	}
	return &rowFileIter{
		rf:     rf,
		reader: flash.NewReader(rf.env.Dev.Flash, rf.ext),
		grant:  grant,
		rec:    make([]byte, rf.recordWidth()),
		ids:    make([]uint32, rf.fields),
	}, nil
}

type rowFileIter struct {
	rf     *RowFile
	reader *flash.Reader
	grant  *ram.Grant
	rec    []byte
	ids    []uint32
	read   int
}

func (it *rowFileIter) Next() (Row, bool, error) {
	if it.read >= it.rf.n {
		return Row{}, false, nil
	}
	if _, err := fullRead(it.reader, it.rec); err != nil {
		return Row{}, false, fmt.Errorf("exec: row file read: %w", err)
	}
	it.read++
	seq := binary.LittleEndian.Uint32(it.rec[0:])
	for i := range it.ids {
		it.ids[i] = binary.LittleEndian.Uint32(it.rec[4*(i+1):])
	}
	it.rf.env.cpu(int64(sim.CyclesCopyWord) * int64(1+len(it.ids)))
	return Row{Seq: seq, IDs: it.ids}, true, nil
}

func (it *rowFileIter) Close() { it.grant.Free() }

// SortRowFile sorts the file by the given ID field (0-based, excluding
// seq) using an external merge sort: RAM-sized runs, then k-way merges,
// spilling to scratch. bufBytes bounds the run buffer; fanin bounds the
// concurrently open run readers.
func (e *Env) SortRowFile(rf *RowFile, byField, bufBytes, fanin int, op *stats.Op) (*RowFile, error) {
	if byField < 0 || byField >= rf.fields {
		return nil, fmt.Errorf("exec: sort field %d of %d", byField, rf.fields)
	}
	width := rf.recordWidth()
	capRecords := bufBytes / width
	if capRecords < 2 {
		capRecords = 2
	}
	grant, err := e.Dev.RAM.Alloc(capRecords*width, "sort-buffer")
	if err != nil {
		return nil, err
	}
	op.NoteRAM(int64(capRecords * width))

	// Run formation.
	var runs []*RowFile
	in, err := rf.Iter()
	if err != nil {
		grant.Free()
		return nil, err
	}
	buf := make([]byte, 0, capRecords*width)
	keyAt := func(b []byte, i int) uint32 {
		return binary.LittleEndian.Uint32(b[i*width+4*(1+byField):])
	}
	flushRun := func() error {
		nRec := len(buf) / width
		if nRec == 0 {
			return nil
		}
		idx := make([]int, nRec)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			e.cpu(sim.CyclesCompare)
			return keyAt(buf, idx[a]) < keyAt(buf, idx[b])
		})
		w, err := e.Dev.Scratch.NewWriter()
		if err != nil {
			return err
		}
		for _, i := range idx {
			if _, err := w.Write(buf[i*width : (i+1)*width]); err != nil {
				return err
			}
		}
		ext, err := w.Close()
		if err != nil {
			return err
		}
		runs = append(runs, &RowFile{env: e, ext: ext, n: nRec, fields: rf.fields})
		buf = buf[:0]
		return nil
	}
	rec := make([]byte, width)
	for {
		r, ok, err := in.Next()
		if err != nil {
			in.Close()
			grant.Free()
			return nil, err
		}
		if !ok {
			break
		}
		op.AddIn(1)
		binary.LittleEndian.PutUint32(rec[0:], r.Seq)
		for i, id := range r.IDs {
			binary.LittleEndian.PutUint32(rec[4*(i+1):], id)
		}
		buf = append(buf, rec...)
		if len(buf) == capRecords*width {
			if err := flushRun(); err != nil {
				in.Close()
				grant.Free()
				return nil, err
			}
		}
	}
	in.Close()
	err = flushRun()
	grant.Free()
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return &RowFile{env: e, fields: rf.fields}, nil
	}

	// Merge passes.
	for len(runs) > 1 {
		f := e.clampFanin(fanin)
		var next []*RowFile
		for start := 0; start < len(runs); start += f {
			end := start + f
			if end > len(runs) {
				end = len(runs)
			}
			merged, err := e.mergeRowRuns(runs[start:end], byField, op)
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	op.AddOut(int64(runs[0].n))
	return runs[0], nil
}

// mergeRowRuns merges sorted runs into a new scratch run. Each run is
// read through a batch iterator whose RowBatch owns its memory, so the
// merge heads are views into the batches — the defensive per-row copy the
// reused row-iterator buffers used to force is gone. Comparison charges
// are counted and paid in one batch at the end; the totals (and the flash
// traffic) are identical to the row-at-a-time merge.
func (e *Env) mergeRowRuns(runs []*RowFile, byField int, op *stats.Op) (*RowFile, error) {
	type head struct {
		it    BatchRowIter
		batch *RowBatch
		pos   int
		row   Row
	}
	var heads []*head
	closeAll := func() {
		for _, h := range heads {
			h.it.Close()
			PutRowBatch(h.batch)
		}
	}
	// advance loads the head's next row, refilling its batch as needed;
	// ok=false means the run is exhausted.
	advance := func(h *head) (bool, error) {
		if h.pos >= h.batch.Len() {
			k, err := h.it.Next(h.batch)
			if err != nil {
				return false, err
			}
			if k == 0 {
				return false, nil
			}
			h.pos = 0
		}
		h.row = h.batch.Row(h.pos)
		h.pos++
		return true, nil
	}
	for _, r := range runs {
		it, err := r.IterBatch()
		if err != nil {
			closeAll()
			return nil, err
		}
		h := &head{it: it, batch: GetRowBatch(r.fields)}
		ok, err := advance(h)
		if err != nil {
			it.Close()
			PutRowBatch(h.batch)
			closeAll()
			return nil, err
		}
		if !ok {
			it.Close()
			PutRowBatch(h.batch)
			continue
		}
		heads = append(heads, h)
	}
	wGrant, err := e.Dev.RAM.Alloc(e.pageSize(), "merge-writer")
	if err != nil {
		closeAll()
		return nil, err
	}
	defer wGrant.Free()
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		closeAll()
		return nil, err
	}
	fields := runs[0].fields
	width := 4 * (1 + fields)
	rec := make([]byte, width)
	n := 0
	var compares int64
	for len(heads) > 0 {
		best := 0
		for i := 1; i < len(heads); i++ {
			compares++
			if heads[i].row.IDs[byField] < heads[best].row.IDs[byField] {
				best = i
			}
		}
		h := heads[best]
		binary.LittleEndian.PutUint32(rec[0:], h.row.Seq)
		for i, id := range h.row.IDs {
			binary.LittleEndian.PutUint32(rec[4*(i+1):], id)
		}
		if _, err := w.Write(rec); err != nil {
			e.cpuUnits(sim.CyclesCompare, compares)
			closeAll()
			return nil, err
		}
		n++
		ok, err := advance(h)
		if err != nil {
			e.cpuUnits(sim.CyclesCompare, compares)
			closeAll()
			return nil, err
		}
		if !ok {
			h.it.Close()
			PutRowBatch(h.batch)
			heads = append(heads[:best], heads[best+1:]...)
		}
	}
	e.cpuUnits(sim.CyclesCompare, compares)
	ext, err := w.Close()
	if err != nil {
		return nil, err
	}
	return &RowFile{env: e, ext: ext, n: n, fields: fields}, nil
}

// MergeRowsWithStream merges rows (sorted ascending by IDs[field]) with a
// visible (id, value) stream sorted by unique ascending ID. Rows whose ID
// appears in the stream survive and are passed to onMatch with the value
// (the projection attachment); rows missing from the stream are dropped —
// this is the exact verification that repairs Bloom false positives.
func (e *Env) MergeRowsWithStream(rows RowIter, field int, stream KVIter, op *stats.Op, onMatch func(Row, value.Value) error) error {
	defer rows.Close()
	defer stream.Close()
	cur, haveKV, err := stream.Next()
	if err != nil {
		return err
	}
	for {
		r, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		op.AddIn(1)
		id := r.IDs[field]
		for haveKV && cur.ID < id {
			e.cpu(sim.CyclesCompare)
			cur, haveKV, err = stream.Next()
			if err != nil {
				return err
			}
		}
		if haveKV && cur.ID == id {
			op.AddOut(1)
			if err := onMatch(r, cur.Val); err != nil {
				return err
			}
		}
	}
}
