package exec

import (
	"testing"

	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

func intRow(vals ...int64) []value.Value {
	row := make([]value.Value, len(vals))
	for i, v := range vals {
		row[i] = value.NewInt(v)
	}
	return row
}

func TestGrouperBasic(t *testing.T) {
	g := GetGrouper([]int{0}, []AggOp{
		{Func: sql.AggCount, Col: -1},
		{Func: sql.AggSum, Col: 1, ArgKind: value.Int},
		{Func: sql.AggMin, Col: 1, ArgKind: value.Int},
		{Func: sql.AggMax, Col: 1, ArgKind: value.Int},
		{Func: sql.AggAvg, Col: 1, ArgKind: value.Int},
	})
	defer PutGrouper(g)
	for _, r := range [][]int64{{1, 10}, {2, 5}, {1, 30}, {1, 20}, {2, 5}} {
		if err := g.Add(intRow(r...)); err != nil {
			t.Fatal(err)
		}
	}
	if g.Groups() != 2 {
		t.Fatalf("groups = %d, want 2", g.Groups())
	}
	// Groups in first-seen order: key 1 then key 2.
	if g.Key(0, 0).Int() != 1 || g.Key(1, 0).Int() != 2 {
		t.Fatalf("keys out of order: %v %v", g.Key(0, 0), g.Key(1, 0))
	}
	if n := g.AggValue(0, 0).Int(); n != 3 {
		t.Fatalf("COUNT(group 1) = %d, want 3", n)
	}
	if s := g.AggValue(0, 1).Int(); s != 60 {
		t.Fatalf("SUM(group 1) = %d, want 60", s)
	}
	if mn := g.AggValue(0, 2).Int(); mn != 10 {
		t.Fatalf("MIN(group 1) = %d, want 10", mn)
	}
	if mx := g.AggValue(0, 3).Int(); mx != 30 {
		t.Fatalf("MAX(group 1) = %d, want 30", mx)
	}
	if av := g.AggValue(0, 4).Float(); av != 20 {
		t.Fatalf("AVG(group 1) = %v, want 20", av)
	}
	if s := g.AggValue(1, 1).Int(); s != 10 {
		t.Fatalf("SUM(group 2) = %d, want 10", s)
	}
}

func TestGrouperEmptyGlobalGroup(t *testing.T) {
	g := GetGrouper(nil, []AggOp{
		{Func: sql.AggCount, Col: -1},
		{Func: sql.AggSum, Col: 0, ArgKind: value.Int},
		{Func: sql.AggMin, Col: 0, ArgKind: value.Int},
	})
	defer PutGrouper(g)
	g.AddEmptyGroup()
	if g.Groups() != 1 {
		t.Fatalf("groups = %d, want 1", g.Groups())
	}
	if n := g.AggValue(0, 0).Int(); n != 0 {
		t.Fatalf("COUNT() = %d, want 0", n)
	}
	if v := g.AggValue(0, 1); v.IsValid() {
		t.Fatalf("SUM over empty group = %v, want NULL", v)
	}
	if v := g.AggValue(0, 2); v.IsValid() {
		t.Fatalf("MIN over empty group = %v, want NULL", v)
	}
}

func TestDistinctBasic(t *testing.T) {
	d := GetDistinct(2)
	defer PutDistinct(d)
	if d.Seen(intRow(1, 2)) {
		t.Fatal("first row reported seen")
	}
	if !d.Seen(intRow(1, 2)) {
		t.Fatal("duplicate not detected")
	}
	if d.Seen(intRow(1, 3)) {
		t.Fatal("distinct row reported seen")
	}
	// Width-limited: a third column must not participate.
	if !d.Seen([]value.Value{value.NewInt(1), value.NewInt(3), value.NewInt(99)}) {
		t.Fatal("extra column changed the dedup key")
	}
}

func TestSorterFullSortAndTies(t *testing.T) {
	s := GetSorter([]SortKey{{Col: 0, Desc: true}}, 0)
	defer PutSorter(s)
	rows := [][]value.Value{intRow(1, 100), intRow(3, 200), intRow(1, 300), intRow(2, 400)}
	for _, r := range rows {
		s.Push(r)
	}
	got := s.Finish()
	// Descending by col 0; the two key-1 rows keep arrival order.
	want := []int64{200, 400, 100, 300}
	for i, w := range want {
		if got[i][1].Int() != w {
			t.Fatalf("row %d = %v, want second col %d", i, got[i], w)
		}
	}
}

func TestSorterTopK(t *testing.T) {
	full := GetSorter([]SortKey{{Col: 0, Desc: false}}, 0)
	topk := GetSorter([]SortKey{{Col: 0, Desc: false}}, 3)
	defer PutSorter(full)
	defer PutSorter(topk)
	// Adversarial order with duplicate keys.
	for _, v := range []int64{5, 1, 9, 1, 7, 3, 3, 8, 2} {
		row := intRow(v, v*10)
		full.Push(row)
		topk.Push(row)
	}
	want := full.Finish()[:3]
	got := topk.Finish()
	if len(got) != 3 {
		t.Fatalf("top-K kept %d rows, want 3", len(got))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("top-K row %d = %v, want %v (stable prefix of full sort)", i, got[i], want[i])
		}
	}
}

func TestOrderCmpNullsFirst(t *testing.T) {
	null := value.Value{}
	if OrderCmp(null, value.NewInt(1)) != -1 {
		t.Fatal("NULL must sort before values")
	}
	if OrderCmp(value.NewInt(1), null) != 1 {
		t.Fatal("values must sort after NULL")
	}
	if OrderCmp(null, null) != 0 {
		t.Fatal("NULL == NULL")
	}
	if OrderCmp(value.NewInt(1), value.NewFloat(1.5)) != -1 {
		t.Fatal("numeric widening must apply")
	}
}

// TestGrouperAllocsSteadyState asserts that folding batches of rows
// into a warm group table performs no allocation per batch.
func TestGrouperAllocsSteadyState(t *testing.T) {
	g := GetGrouper([]int{0}, []AggOp{
		{Func: sql.AggCount, Col: -1},
		{Func: sql.AggSum, Col: 1, ArgKind: value.Int},
		{Func: sql.AggMin, Col: 1, ArgKind: value.Int},
	})
	defer PutGrouper(g)
	batch := make([][]value.Value, 256)
	for i := range batch {
		batch[i] = intRow(int64(i%16), int64(i))
	}
	if err := g.AddBatch(batch); err != nil { // warm the 16 groups
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := g.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("group-by allocates %.1f per batch of %d rows", allocs, len(batch))
	}
}

// TestDistinctAllocsSteadyState asserts duplicate probing against a
// warm dedup table performs no allocation per batch.
func TestDistinctAllocsSteadyState(t *testing.T) {
	d := GetDistinct(2)
	defer PutDistinct(d)
	batch := make([][]value.Value, 256)
	for i := range batch {
		batch[i] = intRow(int64(i%32), int64(i%8))
	}
	for _, r := range batch { // warm the table
		d.Seen(r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range batch {
			if !d.Seen(r) {
				t.Fatal("warm row reported new")
			}
		}
	})
	if allocs > 1 {
		t.Fatalf("distinct allocates %.1f per batch of %d rows", allocs, len(batch))
	}
}

// TestSorterTopKAllocsSteadyState asserts pushing batches through a
// full top-K heap performs no allocation per batch.
func TestSorterTopKAllocsSteadyState(t *testing.T) {
	s := GetSorter([]SortKey{{Col: 0, Desc: true}}, 16)
	defer PutSorter(s)
	batch := make([][]value.Value, 256)
	for i := range batch {
		batch[i] = intRow(int64((i*37)%101), int64(i))
	}
	for _, r := range batch { // fill the heap
		s.Push(r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range batch {
			s.Push(r)
		}
	})
	if allocs > 1 {
		t.Fatalf("top-K allocates %.1f per batch of %d rows", allocs, len(batch))
	}
}

// TestGrouperStringKeysAllocs covers the string-key hash path, which
// must not allocate per probe either.
func TestGrouperStringKeysAllocs(t *testing.T) {
	g := GetGrouper([]int{0}, []AggOp{{Func: sql.AggCount, Col: -1}})
	defer PutGrouper(g)
	names := []string{"alpha", "beta", "gamma", "delta"}
	batch := make([][]value.Value, 128)
	for i := range batch {
		batch[i] = []value.Value{value.NewString(names[i%len(names)])}
	}
	if err := g.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := g.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("string group-by allocates %.1f per batch", allocs)
	}
}
