package exec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	dev, err := device.New(device.SmartUSB2007(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(dev)
}

func op() *stats.Op { return &stats.Op{Name: "test"} }

func sorted(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedup(ids []uint32) []uint32 {
	var out []uint32
	for _, id := range ids {
		if len(out) == 0 || out[len(out)-1] != id {
			out = append(out, id)
		}
	}
	return out
}

func TestEmptyIter(t *testing.T) {
	got, err := Collect(Empty())
	if err != nil || got != nil {
		t.Errorf("Empty() = %v, %v", got, err)
	}
}

func TestSliceIter(t *testing.T) {
	e := newEnv(t)
	grant, err := e.Dev.RAM.Alloc(12, "test-slice")
	if err != nil {
		t.Fatal(err)
	}
	before := e.Dev.RAM.Used()
	it := NewSliceIter([]uint32{1, 2, 3}, grant)
	got, err := Collect(it)
	if err != nil || !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Errorf("Collect = %v, %v", got, err)
	}
	if e.Dev.RAM.Used() != before-12 {
		t.Error("Close did not free the grant")
	}
	it.Close() // double close is safe
}

func TestMergeUnion(t *testing.T) {
	e := newEnv(t)
	cases := []struct {
		in   [][]uint32
		want []uint32
	}{
		{nil, nil},
		{[][]uint32{{1, 3, 5}}, []uint32{1, 3, 5}},
		{[][]uint32{{1, 3}, {2, 4}}, []uint32{1, 2, 3, 4}},
		{[][]uint32{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}, []uint32{1, 2, 3, 4, 5}},
		{[][]uint32{{}, {7}, {}}, []uint32{7}},
		{[][]uint32{{5, 5, 5}, {5}}, []uint32{5}},
	}
	for _, c := range cases {
		var its []IDIter
		for _, ids := range c.in {
			its = append(its, NewSliceIter(ids, nil))
		}
		u, err := e.MergeUnion(its)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(u)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("union(%v) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestMergeIntersect(t *testing.T) {
	e := newEnv(t)
	cases := []struct {
		in   [][]uint32
		want []uint32
	}{
		{[][]uint32{{1, 2, 3}}, []uint32{1, 2, 3}},
		{[][]uint32{{1, 2, 3}, {2, 3, 4}}, []uint32{2, 3}},
		{[][]uint32{{1, 2, 3, 9}, {2, 3, 9}, {3, 9, 11}}, []uint32{3, 9}},
		{[][]uint32{{1, 2}, {3, 4}}, nil},
		{[][]uint32{{1, 2}, {}}, nil},
	}
	for _, c := range cases {
		var its []IDIter
		for _, ids := range c.in {
			its = append(its, NewSliceIter(ids, nil))
		}
		x, err := e.MergeIntersect(its)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(x)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("intersect(%v) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if it, err := e.MergeIntersect(nil); err != nil {
		t.Fatal(err)
	} else if got, _ := Collect(it); got != nil {
		t.Errorf("empty intersect = %v", got)
	}
}

func TestSpillAndRunSource(t *testing.T) {
	e := newEnv(t)
	ids := []uint32{1, 5, 9, 1 << 30}
	run, err := e.SpillIDs(NewSliceIter(ids, nil), op())
	if err != nil {
		t.Fatal(err)
	}
	if run.Count() != len(ids) {
		t.Errorf("Count = %d", run.Count())
	}
	// Runs are re-openable.
	for i := 0; i < 2; i++ {
		it, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(it)
		if err != nil || !reflect.DeepEqual(got, ids) {
			t.Errorf("run pass %d = %v, %v", i, got, err)
		}
	}
	if e.Dev.RAM.Used() != e.Dev.RAM.Budget()-e.Dev.RAM.Available() {
		t.Error("arena accounting inconsistent")
	}
}

func TestUnionMultiPassSpills(t *testing.T) {
	e := newEnv(t)
	// 40 sources with fanin 4 forces recursive spilling.
	var sources []IDSource
	var all []uint32
	for s := 0; s < 40; s++ {
		ids := make([]uint32, 25)
		for i := range ids {
			ids[i] = uint32(s + i*40 + 1)
		}
		sources = append(sources, SliceSource{IDs: sorted(ids)})
		all = append(all, ids...)
	}
	progsBefore := e.Dev.Flash.Stats().PagesProgrammed
	it, err := e.Union(sources, 4, op())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	want := dedup(sorted(all))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-pass union: %d ids, want %d", len(got), len(want))
	}
	if e.Dev.Flash.Stats().PagesProgrammed == progsBefore {
		t.Error("multi-pass union should have spilled to flash")
	}
	if e.Dev.RAM.Used() >= e.Dev.RAM.Budget() {
		t.Error("arena exhausted after union")
	}
}

func TestUnionSinglePassAvoidsFlash(t *testing.T) {
	e := newEnv(t)
	sources := []IDSource{
		SliceSource{IDs: []uint32{1, 4}},
		SliceSource{IDs: []uint32{2, 4, 6}},
	}
	progsBefore := e.Dev.Flash.Stats().PagesProgrammed
	it, err := e.Union(sources, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Collect(it)
	if !reflect.DeepEqual(got, []uint32{1, 2, 4, 6}) {
		t.Errorf("union = %v", got)
	}
	if e.Dev.Flash.Stats().PagesProgrammed != progsBefore {
		t.Error("small union must not touch flash")
	}
}

func TestQuickUnionMatchesReference(t *testing.T) {
	e := newEnv(t)
	f := func(lists [][]uint32, faninSeed uint8) bool {
		fanin := 2 + int(faninSeed%6)
		var sources []IDSource
		seen := map[uint32]bool{}
		for _, l := range lists {
			if len(l) > 200 {
				l = l[:200]
			}
			s := sorted(l)
			sources = append(sources, SliceSource{IDs: s})
			for _, id := range s {
				seen[id] = true
			}
		}
		var want []uint32
		for id := range seen {
			want = append(want, id)
		}
		want = sorted(want)
		it, err := e.Union(sources, fanin, op())
		if err != nil {
			return false
		}
		got, err := Collect(it)
		if err != nil {
			return false
		}
		if len(want) == 0 {
			return len(got) == 0
		}
		if err := e.Dev.ResetScratch(); err != nil {
			return false
		}
		e.Dev.Main.Device() // keep linters quiet about unused receiver
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildBloomRespectsRAMCap(t *testing.T) {
	e := newEnv(t)
	ids := make([]uint32, 5000)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	o := op()
	// Ideal size for 1% fpr on 5000 keys is ~6KB; cap it to 1KB.
	f, free, err := e.BuildBloom(NewSliceIter(ids, nil), len(ids), 0.01, 1024, o)
	if err != nil {
		t.Fatal(err)
	}
	defer free()
	if f.FootprintBytes() > 1024 {
		t.Errorf("filter used %d bytes, cap 1024", f.FootprintBytes())
	}
	for _, id := range ids {
		if !f.Contains(hash32(id)) {
			t.Fatal("false negative")
		}
	}
	if f.EstimatedFPR() <= 0.01 {
		t.Error("capped filter should have a higher fpr than the target")
	}
	if o.TuplesIn != int64(len(ids)) {
		t.Errorf("op counted %d tuples", o.TuplesIn)
	}
}

func TestBuildBloomFreesOnFree(t *testing.T) {
	e := newEnv(t)
	before := e.Dev.RAM.Used()
	f, free, err := e.BuildBloom(NewSliceIter([]uint32{1, 2, 3}, nil), 3, 0.01, 0, op())
	if err != nil {
		t.Fatal(err)
	}
	if e.Dev.RAM.Used() <= before {
		t.Error("filter RAM not charged")
	}
	_ = f
	free()
	if e.Dev.RAM.Used() != before {
		t.Error("filter RAM not released")
	}
}

func TestHiddenPredFilter(t *testing.T) {
	e := newEnv(t)
	st, err := store.New(e.Dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateTable("T", 4); err != nil {
		t.Fatal(err)
	}
	col, err := st.AddColumn("T", "q", value.Int, []value.Value{
		value.NewInt(10), value.NewInt(20), value.NewInt(30), value.NewInt(40)})
	if err != nil {
		t.Fatal(err)
	}
	filt := e.HiddenPredFilter(col, 0, pred.Compare(sql.OpGt, value.NewInt(15)))
	keep, err := filt(Row{IDs: []uint32{1}})
	if err != nil || keep {
		t.Errorf("id 1 (q=10): keep=%v err=%v", keep, err)
	}
	keep, err = filt(Row{IDs: []uint32{3}})
	if err != nil || !keep {
		t.Errorf("id 3 (q=30): keep=%v err=%v", keep, err)
	}
}

func hash32(x uint32) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
