package exec

import (
	"reflect"
	"testing"

	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/skt"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// seqIDs returns [from, from+n) as a sorted ID slice.
func seqIDs(from uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = from + uint32(i)
	}
	return out
}

// TestBatchedAdapterRoundTrip checks Batched/RowAdapter preserve content.
func TestBatchedAdapterRoundTrip(t *testing.T) {
	ids := seqIDs(1, 1000)
	b := Batched(NewSliceIter(ids, nil))
	got, err := CollectBatch(b)
	if err != nil || !reflect.DeepEqual(got, ids) {
		t.Fatalf("Batched round trip: %v (err %v)", len(got), err)
	}
	row := NewRowAdapter(&sliceBatch{ids: ids})
	got, err = Collect(row)
	if err != nil || !reflect.DeepEqual(got, ids) {
		t.Fatalf("RowAdapter round trip: %v (err %v)", len(got), err)
	}
}

// TestMergeUnionBatchMatchesRow checks the batch union against the row
// union on overlapping inputs.
func TestMergeUnionBatchMatchesRow(t *testing.T) {
	e := newEnv(t)
	mk := func() []BatchIter {
		return []BatchIter{
			&sliceBatch{ids: []uint32{1, 3, 5, 7, 9, 11}},
			&sliceBatch{ids: []uint32{2, 3, 6, 7, 10, 11}},
			&sliceBatch{ids: []uint32{1, 2, 3, 20}},
		}
	}
	u, err := e.MergeUnionBatch(mk())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatch(u)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 2, 3, 5, 6, 7, 9, 10, 11, 20}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
}

// TestMergeIntersectBatchMatchesRow checks the batch intersection.
func TestMergeIntersectBatchMatchesRow(t *testing.T) {
	e := newEnv(t)
	x, err := e.MergeIntersectBatch([]BatchIter{
		&sliceBatch{ids: []uint32{1, 2, 3, 5, 8, 13}},
		&sliceBatch{ids: []uint32{2, 3, 4, 8, 21}},
		&sliceBatch{ids: []uint32{1, 2, 3, 8, 13, 21}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{2, 3, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
}

// allocsPerBatch constructs a batch stream via mk and measures the
// average allocations of one Next(dst) call in steady state.
func allocsPerBatch(t *testing.T, mk func() BatchIter) float64 {
	t.Helper()
	it := mk()
	defer it.Close()
	dst := make([]uint32, DefaultBatchSize)
	return testing.AllocsPerRun(100, func() {
		if _, err := it.Next(dst); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMergeUnionBatchAllocs asserts the k-way batch union allocates O(1)
// per batch — not per row — in steady state.
func TestMergeUnionBatchAllocs(t *testing.T) {
	e := newEnv(t)
	if n := allocsPerBatch(t, func() BatchIter {
		u, err := e.MergeUnionBatch([]BatchIter{
			&sliceBatch{ids: seqIDs(1, 300_000)},
			&sliceBatch{ids: seqIDs(150_000, 300_000)},
			&sliceBatch{ids: seqIDs(300_000, 300_000)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}); n > 1 {
		t.Fatalf("union allocates %.1f per batch of %d IDs", n, DefaultBatchSize)
	}
}

// TestMergeIntersectBatchAllocs asserts the batch intersection allocates
// O(1) per batch.
func TestMergeIntersectBatchAllocs(t *testing.T) {
	e := newEnv(t)
	if n := allocsPerBatch(t, func() BatchIter {
		x, err := e.MergeIntersectBatch([]BatchIter{
			&sliceBatch{ids: seqIDs(1, 400_000)},
			&sliceBatch{ids: seqIDs(1, 400_000)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}); n > 1 {
		t.Fatalf("intersect allocates %.1f per batch of %d IDs", n, DefaultBatchSize)
	}
}

// sktFixture builds a two-table tree (Root 1..n, Child via identity FK)
// and its SKT, for join alloc tests.
func sktFixture(t *testing.T, e *Env, n int) *skt.SKT {
	t.Helper()
	st, err := store.New(e.Dev)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.New()
	child, err := schema.NewTable("Child", []schema.Column{
		{Name: "CID", Type: schema.Type{Kind: value.Int}, PrimaryKey: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.AddTable(child); err != nil {
		t.Fatal(err)
	}
	root, err := schema.NewTable("Root", []schema.Column{
		{Name: "RID", Type: schema.Type{Kind: value.Int}, PrimaryKey: true},
		{Name: "CID", Type: schema.Type{Kind: value.Int}, RefTable: "Child"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.AddTable(root); err != nil {
		t.Fatal(err)
	}
	if err := sch.Freeze(); err != nil {
		t.Fatal(err)
	}
	fk := seqIDs(1, n)
	s, err := skt.Build(st, sch, "Root", n, func(table, col string) ([]uint32, error) {
		return fk, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestJoinFilterBatchAllocs asserts the fused SKT join stage allocates
// O(1) per row batch.
func TestJoinFilterBatchAllocs(t *testing.T) {
	e := newEnv(t)
	const n = 200_000
	s := sktFixture(t, e, n)
	jf, err := e.JoinFilterBatch(&sliceBatch{ids: seqIDs(1, n)}, JoinFilterSpec{
		SKT:    s,
		Tables: []string{"Child"},
		JoinOp: op(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	rb := GetRowBatch(2)
	defer PutRowBatch(rb)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := jf.Next(rb); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("SKT join allocates %.1f per batch of %d rows", allocs, DefaultRowBatchRows)
	}
}

// TestMergeRowsWithStreamBatchAllocs asserts projection streaming
// allocates O(1) per batch (bounded far below one alloc per row).
func TestMergeRowsWithStreamBatchAllocs(t *testing.T) {
	e := newEnv(t)
	const n = 20_000
	rows := make([][]uint32, n)
	seqs := make([]uint32, n)
	kvs := make([]KV, n)
	for i := 0; i < n; i++ {
		rows[i] = []uint32{uint32(i + 1)}
		seqs[i] = uint32(i)
		kvs[i] = KV{ID: uint32(i + 1), Val: value.NewInt(int64(i))}
	}
	rf, err := e.MaterializeRows(&sliceRowIter{rows: rows, seqs: seqs}, 1, false, op())
	if err != nil {
		t.Fatal(err)
	}
	nBatches := (n + DefaultRowBatchRows - 1) / DefaultRowBatchRows
	allocs := testing.AllocsPerRun(5, func() {
		it, err := rf.IterBatch()
		if err != nil {
			t.Fatal(err)
		}
		err = e.MergeRowsWithStreamBatch(it, 0, &sliceKV{kvs: kvs}, op(),
			func(Row, value.Value) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	})
	// One full merge pass over n rows must stay within a small constant
	// per batch (setup included), nowhere near one allocation per row.
	if allocs > float64(2*nBatches) {
		t.Fatalf("projection streaming allocates %.0f per %d-row merge (%d batches)", allocs, n, nBatches)
	}
}
