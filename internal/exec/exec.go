// Package exec implements the smart USB device's physical query operators:
// streaming ID-list iterators over climbing-index posting lists, n-way
// merge union/intersection, multi-pass unions that spill sorted runs to
// scratch flash when the merge fan-in exceeds RAM, key translation through
// dense climbing indexes (the pre-filtering strategy), Bloom filter build
// and probe (the post-filtering strategy), SKT join access, hidden
// attribute filters, external row sorts and the projection/verification
// merge against visible streams.
//
// Every operator follows the tiny-RAM discipline: each concurrently open
// flash stream owns exactly one page buffer charged to the device arena,
// and anything that cannot fit spills to the scratch space — paying the
// flash write/read cost asymmetry the paper's Section 3 describes.
package exec

import (
	"encoding/binary"
	"fmt"

	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Env bundles the device resources the operators run against.
type Env struct {
	Dev *device.Device

	// batchLen is the configured vectorization granularity for the
	// *Batch operators (IDs per batch), clamped to [1, DefaultBatchSize];
	// 0 means DefaultBatchSize. It only affects host buffer sizes — the
	// simulated device cost is granularity-invariant by construction.
	batchLen int
}

// NewEnv returns an execution environment on the device.
func NewEnv(dev *device.Device) *Env { return &Env{Dev: dev} }

// SetBatchLen configures the vectorization granularity of the batch
// operators (clamped to [1, DefaultBatchSize]).
func (e *Env) SetBatchLen(n int) {
	if n < 1 {
		n = 1
	}
	if n > DefaultBatchSize {
		n = DefaultBatchSize
	}
	e.batchLen = n
}

// batchCap is the effective ID-batch granularity.
func (e *Env) batchCap() int {
	if e.batchLen == 0 {
		return DefaultBatchSize
	}
	return e.batchLen
}

// rowBatchCap is the effective row-batch granularity.
func (e *Env) rowBatchCap() int {
	if n := e.batchCap(); n < DefaultRowBatchRows {
		return n
	}
	return DefaultRowBatchRows
}

func (e *Env) cpu(cycles int64) { e.Dev.CPU.Charge(cycles) }

// pageSize is the device flash page size, the unit of stream buffers.
func (e *Env) pageSize() int { return e.Dev.Profile.Flash.PageSize }

// Fanin computes how many streams can be open concurrently given the
// arena's free space, reserving share (0..1] of it for stream buffers.
// At least 2 (a merge needs two inputs), at most 128 (heap bookkeeping).
func (e *Env) Fanin(share float64) int {
	avail := float64(e.Dev.RAM.Available())
	f := int(avail * share / float64(e.pageSize()))
	if f < 2 {
		f = 2
	}
	if f > 128 {
		f = 128
	}
	return f
}

// clampFanin bounds a requested fan-in by what currently fits: half the
// free arena space as stream pages. Operators recompute it before every
// pass, so concurrently open pipelines self-throttle instead of
// overrunning the budget.
func (e *Env) clampFanin(requested int) int {
	f := e.Fanin(0.5)
	if requested > 0 && requested < f {
		f = requested
	}
	if f < 2 {
		f = 2
	}
	return f
}

// IDIter streams sorted row identifiers. Close releases its RAM grant;
// it is safe to call more than once.
type IDIter interface {
	Next() (id uint32, ok bool, err error)
	Close()
}

// emptyIter is an IDIter with no elements.
type emptyIter struct{}

func (emptyIter) Next() (uint32, bool, error) { return 0, false, nil }
func (emptyIter) Close()                      {}

// Empty returns an iterator over nothing.
func Empty() IDIter { return emptyIter{} }

// SliceIter iterates an in-RAM ID slice. The caller is responsible for
// having charged the slice to an arena if it lives on the device; the
// optional grant is released on Close.
type SliceIter struct {
	ids   []uint32
	i     int
	grant *ram.Grant
}

// NewSliceIter returns an iterator over ids, releasing grant on Close.
func NewSliceIter(ids []uint32, grant *ram.Grant) *SliceIter {
	return &SliceIter{ids: ids, grant: grant}
}

// Next implements IDIter.
func (s *SliceIter) Next() (uint32, bool, error) {
	if s.i >= len(s.ids) {
		return 0, false, nil
	}
	id := s.ids[s.i]
	s.i++
	return id, true, nil
}

// Close implements IDIter.
func (s *SliceIter) Close() { s.grant.Free() }

// IDSource is a re-openable sorted ID list (posting list, spilled run or
// in-RAM slice) with a known cardinality.
type IDSource interface {
	Count() int
	Open() (IDIter, error)
}

// ClimbSource adapts a climbing-index posting list.
type ClimbSource struct {
	Env *Env
	Ix  *climbing.Index
	Ref climbing.ListRef
}

// Count implements IDSource.
func (c ClimbSource) Count() int { return c.Ref.Count }

// Open implements IDSource: the stream owns one page buffer.
func (c ClimbSource) Open() (IDIter, error) {
	grant, err := c.Env.Dev.RAM.Alloc(c.Env.pageSize(), "list-stream")
	if err != nil {
		return nil, err
	}
	return &listIter{env: c.Env, dec: c.Ix.OpenList(c.Ref), grant: grant}, nil
}

type listIter struct {
	env *Env
	dec interface {
		Next() (uint32, bool, error)
	}
	grant *ram.Grant
}

func (l *listIter) Next() (uint32, bool, error) {
	l.env.cpu(sim.CyclesDecode)
	return l.dec.Next()
}

func (l *listIter) Close() { l.grant.Free() }

// SliceSource is an in-RAM ID list source (small lists only; the caller
// accounts for the memory if it lives on the device).
type SliceSource struct {
	IDs []uint32
}

// Count implements IDSource.
func (s SliceSource) Count() int { return len(s.IDs) }

// Open implements IDSource.
func (s SliceSource) Open() (IDIter, error) { return NewSliceIter(s.IDs, nil), nil }

// RunSource is a spilled sorted run of raw little-endian uint32 IDs in
// the scratch space.
type RunSource struct {
	Env *Env
	Ext flash.Extent
	N   int
}

// Count implements IDSource.
func (r RunSource) Count() int { return r.N }

// Open implements IDSource.
func (r RunSource) Open() (IDIter, error) {
	grant, err := r.Env.Dev.RAM.Alloc(r.Env.pageSize(), "run-stream")
	if err != nil {
		return nil, err
	}
	return &runIter{
		env:    r.Env,
		reader: flash.NewReader(r.Env.Dev.Flash, r.Ext),
		left:   r.N,
		grant:  grant,
	}, nil
}

type runIter struct {
	env    *Env
	reader *flash.Reader
	left   int
	grant  *ram.Grant
}

func (r *runIter) Next() (uint32, bool, error) {
	if r.left <= 0 {
		return 0, false, nil
	}
	var b [4]byte
	if _, err := fullRead(r.reader, b[:]); err != nil {
		return 0, false, fmt.Errorf("exec: run read: %w", err)
	}
	r.left--
	r.env.cpu(sim.CyclesCopyWord)
	return binary.LittleEndian.Uint32(b[:]), true, nil
}

func (r *runIter) Close() { r.grant.Free() }

func fullRead(r *flash.Reader, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SpillIDs drains it into a sorted run in scratch space and returns a
// re-openable source. The writer's page buffer is charged while active.
func (e *Env) SpillIDs(it IDIter, op *stats.Op) (RunSource, error) {
	defer it.Close()
	grant, err := e.Dev.RAM.Alloc(e.pageSize(), "spill-writer")
	if err != nil {
		return RunSource{}, err
	}
	defer grant.Free()
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		return RunSource{}, err
	}
	n := 0
	var b [4]byte
	for {
		id, ok, err := it.Next()
		if err != nil {
			return RunSource{}, err
		}
		if !ok {
			break
		}
		binary.LittleEndian.PutUint32(b[:], id)
		if _, err := w.Write(b[:]); err != nil {
			return RunSource{}, err
		}
		n++
		e.cpu(sim.CyclesCopyWord)
	}
	ext, err := w.Close()
	if err != nil {
		return RunSource{}, err
	}
	op.AddOut(int64(n))
	return RunSource{Env: e, Ext: ext, N: n}, nil
}

// Collect materializes an iterator into a host slice (tests and tiny
// lists; production paths stream).
func Collect(it IDIter) ([]uint32, error) {
	defer it.Close()
	var out []uint32
	for {
		id, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, id)
	}
}

// intValue wraps a row ID as an integer value for dense index lookups.
func intValue(id uint32) value.Value { return value.NewInt(int64(id)) }

// KV is one element of a visible projection stream.
type KV struct {
	ID  uint32
	Val value.Value
}

// KVIter streams (id, value) pairs sorted by ascending unique ID — the
// shape of the projection streams the untrusted side sends in.
type KVIter interface {
	Next() (KV, bool, error)
	Close()
}
