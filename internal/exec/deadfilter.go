package exec

// Tombstone subtraction: the live-DML operators that drop identifiers
// whose base version is dead for the pipeline (deleted, shadowed by a
// delta image, or dangling through a deleted ancestor). The climbing
// indexes, Bloom filters and SKTs answer for the immutable base segments
// only, so the engine subtracts these IDs from the root stream and
// re-evaluates them against the RAM delta separately.
//
// Both variants charge sim.CyclesTombstone per probed input ID — the
// batch operator via ChargeUnits, bit-identical to the row-at-a-time
// charges, preserving the engine-invariance contract.

import (
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/stats"
)

// FilterDead wraps a row-at-a-time ID stream, dropping IDs for which
// dead reports true.
func (e *Env) FilterDead(in IDIter, dead func(uint32) bool, op *stats.Op) IDIter {
	return &deadFilterIter{env: e, in: in, dead: dead, op: op}
}

type deadFilterIter struct {
	env  *Env
	in   IDIter
	dead func(uint32) bool
	op   *stats.Op
}

func (f *deadFilterIter) Next() (uint32, bool, error) {
	for {
		id, ok, err := f.in.Next()
		if err != nil || !ok {
			return 0, false, err
		}
		f.op.AddIn(1)
		f.env.cpu(sim.CyclesTombstone)
		if f.dead(id) {
			continue
		}
		f.op.AddOut(1)
		return id, true, nil
	}
}

func (f *deadFilterIter) Close() { f.in.Close() }

// FilterDeadBatch is the vectorized twin: it fills dst with survivors,
// pulling input in dst-sized batches and compacting in place. It never
// performs more simulated work than its input demands — every input ID
// must be probed regardless of batch shape — and charges one
// CyclesTombstone unit per probed ID.
func (e *Env) FilterDeadBatch(in BatchIter, dead func(uint32) bool, op *stats.Op) BatchIter {
	return &deadFilterBatch{env: e, in: in, dead: dead, op: op}
}

type deadFilterBatch struct {
	env  *Env
	in   BatchIter
	dead func(uint32) bool
	op   *stats.Op
}

func (f *deadFilterBatch) Next(dst []uint32) (int, error) {
	for {
		n, err := f.in.Next(dst)
		if err != nil || n == 0 {
			return 0, err
		}
		f.op.AddIn(int64(n))
		f.env.cpuUnits(sim.CyclesTombstone, int64(n))
		k := 0
		for i := 0; i < n; i++ {
			if f.dead(dst[i]) {
				continue
			}
			dst[k] = dst[i]
			k++
		}
		if k > 0 {
			f.op.AddOut(int64(k))
			return k, nil
		}
		// The whole batch was dead; pull the next one.
	}
}

func (f *deadFilterBatch) Close() { f.in.Close() }
