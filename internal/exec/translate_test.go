package exec

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// translateFixture builds a two-level schema (Child <- Parent) with a
// dense translator index on Child's key: child c is referenced by parents
// {3c-2, 3c-1, 3c} — each child maps to three parents.
func translateFixture(t *testing.T, children int) (*Env, *climbing.Index) {
	t.Helper()
	e := newEnv(t)
	st, err := store.New(e.Dev)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.New()
	child, err := schema.NewTable("Child", []schema.Column{
		{Name: "CID", Type: schema.Type{Kind: value.Int}, PrimaryKey: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.AddTable(child); err != nil {
		t.Fatal(err)
	}
	parent, err := schema.NewTable("Parent", []schema.Column{
		{Name: "PID", Type: schema.Type{Kind: value.Int}, PrimaryKey: true},
		{Name: "CID", Type: schema.Type{Kind: value.Int}, RefTable: "Child"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.AddTable(parent); err != nil {
		t.Fatal(err)
	}
	if err := sch.Freeze(); err != nil {
		t.Fatal(err)
	}
	inv := func(p, c string) ([][]uint32, error) {
		if p != "Parent" || c != "Child" {
			return nil, fmt.Errorf("unexpected edge %s<-%s", p, c)
		}
		out := make([][]uint32, children)
		for i := range out {
			base := uint32(3 * i)
			out[i] = []uint32{base + 1, base + 2, base + 3}
		}
		return out, nil
	}
	vals := make([]value.Value, children)
	for i := range vals {
		vals[i] = value.NewInt(int64(i + 1))
	}
	ix, err := climbing.Build(st, sch, "Child", "CID", value.Int, vals, true, inv)
	if err != nil {
		t.Fatal(err)
	}
	return e, ix
}

func expectedParents(childIDs []uint32) []uint32 {
	var out []uint32
	for _, c := range childIDs {
		base := (c - 1) * 3
		out = append(out, base+1, base+2, base+3)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestTranslateSmallInput(t *testing.T) {
	e, ix := translateFixture(t, 100)
	in := []uint32{2, 50, 99}
	it, err := e.Translate(NewSliceIter(in, nil), ix, 1, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, expectedParents(in)) {
		t.Errorf("translate = %v", got)
	}
}

func TestTranslateSpillsLargeInput(t *testing.T) {
	e, ix := translateFixture(t, 2000)
	in := make([]uint32, 0, 1000)
	for c := uint32(1); c <= 2000; c += 2 {
		in = append(in, c)
	}
	progsBefore := e.Dev.Flash.Stats().PagesProgrammed
	// fanin 4 forces hundreds of batch spills plus recursive merging.
	it, err := e.Translate(NewSliceIter(in, nil), ix, 1, 4, op())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, expectedParents(in)) {
		t.Fatalf("translate returned %d ids, want %d", len(got), len(expectedParents(in)))
	}
	if e.Dev.Flash.Stats().PagesProgrammed == progsBefore {
		t.Error("large translate should have spilled to scratch")
	}
	if e.Dev.RAM.Used() >= e.Dev.RAM.Budget() {
		t.Error("arena left exhausted")
	}
}

func TestTranslateMissingAndEmptyInputs(t *testing.T) {
	e, ix := translateFixture(t, 10)
	// IDs outside the dictionary are skipped, not errors.
	it, err := e.Translate(NewSliceIter([]uint32{0, 5, 11, 100}, nil), ix, 1, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint32{13, 14, 15}) {
		t.Errorf("translate = %v", got)
	}
	// Empty input yields an empty stream.
	it, err = e.Translate(Empty(), ix, 1, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Collect(it); got != nil {
		t.Errorf("empty translate = %v", got)
	}
}

func TestTranslateOwnLevelIsIdentity(t *testing.T) {
	e, ix := translateFixture(t, 20)
	in := []uint32{3, 7, 19}
	it, err := e.Translate(NewSliceIter(in, nil), ix, 0, 8, op())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(it)
	if err != nil || !reflect.DeepEqual(got, in) {
		t.Errorf("own-level translate = %v, %v", got, err)
	}
}
