package exec

// Vectorized execution: the ID-stream operators of this package move one
// uint32 per virtual Next() call, which makes interface dispatch, per-row
// stats bookkeeping and per-row clock charges the host-side hot path.
// BatchIter is the batched counterpart: operators hand over up to len(dst)
// IDs per call and charge the simulated CPU once per batch via
// sim.CPU.ChargeUnits, which is bit-identical to the row-at-a-time
// charges.
//
// The invariance contract (the cost model is the paper's contribution;
// batching must only change host CPU time) imposes two disciplines on
// every batch operator:
//
//  1. Exactness: an operator never performs more simulated device work
//     (flash reads, page-cache probes, decode/compare/heap charges) than
//     needed to produce the IDs it actually returns. Consumers that can
//     abandon a stream early — the k-way intersection is the one such
//     operator — therefore pull their inputs one element at a time, so
//     the abandoned tail is never decoded. Draining consumers (spill,
//     materialize, Bloom build, projection merges) pull full batches.
//  2. Order preservation for the shared page cache: accesses that go
//     through the device's LRU page cache (SKT lookups, hidden column
//     fetches, climbing dictionary probes) must be issued in the same
//     per-row order as the row-at-a-time engine, since the cache's
//     hit/miss pattern — and hence the flash charge — depends on it.
//     Pure CPU charges may be grouped freely: the clock only sums.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/ghostdb/ghostdb/internal/codec"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/stats"
)

// DefaultBatchSize is the number of IDs moved per BatchIter.Next call in
// batch mode. One batch of uint32s is 4KB — it amortizes dispatch without
// blowing the host caches.
const DefaultBatchSize = 1024

// BatchIter streams sorted row identifiers in batches. Next fills dst
// with up to len(dst) IDs and returns how many were produced; n == 0 with
// a nil error means the stream is exhausted. The IDs written to dst are
// owned by the caller. Implementations follow the exactness rule above:
// they never do more simulated work than len(dst) demands, so a caller
// that must not over-consume its input (an intersection) passes a
// one-element dst. Close releases RAM grants and pooled buffers; it is
// safe to call more than once.
type BatchIter interface {
	Next(dst []uint32) (int, error)
	Close()
}

// idBatchPool recycles ID batch buffers across queries.
var idBatchPool = sync.Pool{
	New: func() any {
		s := make([]uint32, DefaultBatchSize)
		return &s
	},
}

// GetIDBatch returns a pooled ID buffer of DefaultBatchSize capacity.
func GetIDBatch() *[]uint32 { return idBatchPool.Get().(*[]uint32) }

// PutIDBatch returns a buffer obtained from GetIDBatch to the pool.
func PutIDBatch(b *[]uint32) {
	if b != nil {
		idBatchPool.Put(b)
	}
}

// byteBatchPool recycles encode/decode scratch for spills and row files.
var byteBatchPool = sync.Pool{
	New: func() any {
		s := make([]byte, 4*DefaultBatchSize)
		return &s
	},
}

func getByteBatch(n int) *[]byte {
	b := byteBatchPool.Get().(*[]byte)
	if cap(*b) < n {
		*b = make([]byte, n)
	}
	*b = (*b)[:cap(*b)]
	return b
}

func putByteBatch(b *[]byte) {
	if b != nil {
		byteBatchPool.Put(b)
	}
}

// emptyBatch is a BatchIter with no elements.
type emptyBatch struct{}

func (emptyBatch) Next([]uint32) (int, error) { return 0, nil }
func (emptyBatch) Close()                     {}

// EmptyBatch returns a batch iterator over nothing.
func EmptyBatch() BatchIter { return emptyBatch{} }

// batchedIter adapts a row-at-a-time IDIter to the BatchIter interface.
// It buffers nothing and pulls exactly len(dst) elements, so the adapted
// stream keeps the row engine's simulated behaviour bit for bit.
type batchedIter struct {
	it IDIter
}

// Batched adapts a row-at-a-time iterator to the batch interface without
// prefetching: each Next(dst) performs exactly len(dst) row pulls (or
// fewer at the end of the stream).
func Batched(it IDIter) BatchIter { return &batchedIter{it: it} }

func (b *batchedIter) Next(dst []uint32) (int, error) {
	for i := range dst {
		id, ok, err := b.it.Next()
		if err != nil {
			return i, err
		}
		if !ok {
			return i, nil
		}
		dst[i] = id
	}
	return len(dst), nil
}

func (b *batchedIter) Close() { b.it.Close() }

// RowAdapter adapts a BatchIter back to the row-at-a-time IDIter shape,
// for operators and tests that have not been ported. It pulls one element
// per underlying call (no prefetch), so wrapping and unwrapping never
// changes the simulated cost, only adds host dispatch.
type RowAdapter struct {
	b    BatchIter
	one  [1]uint32
	done bool
}

// NewRowAdapter wraps a batch iterator as a row iterator.
func NewRowAdapter(b BatchIter) *RowAdapter { return &RowAdapter{b: b} }

// Next implements IDIter.
func (r *RowAdapter) Next() (uint32, bool, error) {
	if r.done {
		return 0, false, nil
	}
	n, err := r.b.Next(r.one[:])
	if err != nil {
		return 0, false, err
	}
	if n == 0 {
		r.done = true
		return 0, false, nil
	}
	return r.one[0], true, nil
}

// Close implements IDIter.
func (r *RowAdapter) Close() { r.b.Close() }

// RowIterOf recovers the most direct row-at-a-time view of b: a stream
// that was merely adapted from a row iterator is unwrapped, anything else
// gets a unit-pull RowAdapter.
func RowIterOf(b BatchIter) IDIter {
	if w, ok := b.(*batchedIter); ok {
		return w.it
	}
	return NewRowAdapter(b)
}

// CollectBatch materializes a batch iterator into a host slice (tests and
// tiny lists; production paths stream).
func CollectBatch(b BatchIter) ([]uint32, error) {
	defer b.Close()
	var out []uint32
	buf := GetIDBatch()
	defer PutIDBatch(buf)
	for {
		n, err := b.Next(*buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, (*buf)[:n]...)
	}
}

// batchOpener is implemented by IDSources with a native batch stream.
type batchOpener interface {
	OpenBatch() (BatchIter, error)
}

// OpenBatch opens a source as a batch stream, preferring the source's
// native batch iterator and falling back to adapting its row stream.
func (e *Env) OpenBatch(s IDSource) (BatchIter, error) {
	if bo, ok := s.(batchOpener); ok {
		return bo.OpenBatch()
	}
	it, err := s.Open()
	if err != nil {
		return nil, err
	}
	return Batched(it), nil
}

// OpenBatch implements batchOpener: an in-RAM slice is copied out in
// whole chunks.
func (s SliceSource) OpenBatch() (BatchIter, error) {
	return &sliceBatch{ids: s.IDs}, nil
}

type sliceBatch struct {
	ids []uint32
	i   int
}

func (s *sliceBatch) Next(dst []uint32) (int, error) {
	n := copy(dst, s.ids[s.i:])
	s.i += n
	return n, nil
}

func (s *sliceBatch) Close() {}

// OpenBatch implements batchOpener: posting-list decoding is amortized to
// one decode charge per batch. The stream owns one page buffer, exactly
// like the row iterator; the buffer is pooled and recycled on Close.
func (c ClimbSource) OpenBatch() (BatchIter, error) {
	grant, err := c.Env.Dev.RAM.Alloc(c.Env.pageSize(), "list-stream")
	if err != nil {
		return nil, err
	}
	r := flash.NewReader(c.Env.Dev.Flash, c.Ref.Ext)
	l := &listBatch{env: c.Env, reader: r, grant: grant}
	l.dec.Reset(r, c.Ref.Count)
	return l, nil
}

type listBatch struct {
	env    *Env
	dec    codec.ListDecoder
	reader *flash.Reader
	grant  *ram.Grant
	done   bool
}

func (l *listBatch) Next(dst []uint32) (int, error) {
	if l.done {
		return 0, nil
	}
	// The row iterator charges one decode per dec.Next call — including
	// the final failed probe of an exhausted list — so count calls, not
	// elements, and pay the whole batch in one charge.
	n := 0
	calls := int64(0)
	for n < len(dst) {
		calls++
		id, ok, err := l.dec.Next()
		if err != nil {
			l.env.cpuUnits(sim.CyclesDecode, calls)
			return n, err
		}
		if !ok {
			l.done = true
			break
		}
		dst[n] = id
		n++
	}
	l.env.cpuUnits(sim.CyclesDecode, calls)
	return n, nil
}

func (l *listBatch) Close() {
	l.grant.Free()
	if l.reader != nil {
		l.reader.Release()
		l.reader = nil
	}
}

// OpenBatch implements batchOpener: raw uint32 runs are read in one
// flash.Reader call per batch.
func (r RunSource) OpenBatch() (BatchIter, error) {
	grant, err := r.Env.Dev.RAM.Alloc(r.Env.pageSize(), "run-stream")
	if err != nil {
		return nil, err
	}
	return &runBatch{
		env:    r.Env,
		reader: flash.NewReader(r.Env.Dev.Flash, r.Ext),
		left:   r.N,
		grant:  grant,
		buf:    getByteBatch(4 * DefaultBatchSize),
	}, nil
}

type runBatch struct {
	env    *Env
	reader *flash.Reader
	left   int
	grant  *ram.Grant
	buf    *[]byte
}

func (r *runBatch) Next(dst []uint32) (int, error) {
	if r.left <= 0 {
		return 0, nil
	}
	n := len(dst)
	if n > r.left {
		n = r.left
	}
	if max := len(*r.buf) / 4; n > max {
		n = max
	}
	raw := (*r.buf)[:4*n]
	if _, err := fullRead(r.reader, raw); err != nil {
		return 0, fmt.Errorf("exec: run read: %w", err)
	}
	for i := 0; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	r.left -= n
	r.env.cpuUnits(sim.CyclesCopyWord, int64(n))
	return n, nil
}

func (r *runBatch) Close() {
	r.grant.Free()
	putByteBatch(r.buf)
	r.buf = nil
	if r.reader != nil {
		r.reader.Release()
		r.reader = nil
	}
}

// SpillBatch drains a batch stream into a sorted run in scratch space —
// the batched counterpart of SpillIDs, with one flash write call and one
// copy charge per batch.
func (e *Env) SpillBatch(b BatchIter, op *stats.Op) (RunSource, error) {
	defer b.Close()
	grant, err := e.Dev.RAM.Alloc(e.pageSize(), "spill-writer")
	if err != nil {
		return RunSource{}, err
	}
	defer grant.Free()
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		return RunSource{}, err
	}
	ids := GetIDBatch()
	defer PutIDBatch(ids)
	raw := getByteBatch(4 * DefaultBatchSize)
	defer putByteBatch(raw)
	buf := (*ids)[:e.batchCap()]
	n := 0
	for {
		k, err := b.Next(buf)
		if err != nil {
			return RunSource{}, err
		}
		if k == 0 {
			break
		}
		enc := (*raw)[:4*k]
		for i, id := range buf[:k] {
			binary.LittleEndian.PutUint32(enc[4*i:], id)
		}
		if _, err := w.Write(enc); err != nil {
			return RunSource{}, err
		}
		n += k
		e.cpuUnits(sim.CyclesCopyWord, int64(k))
	}
	ext, err := w.Close()
	if err != nil {
		return RunSource{}, err
	}
	op.AddOut(int64(n))
	return RunSource{Env: e, Ext: ext, N: n}, nil
}

// cpuUnits charges cycles per unit for units items in one clock advance,
// bit-identical to charging each unit separately.
func (e *Env) cpuUnits(cycles, units int64) { e.Dev.CPU.ChargeUnits(cycles, units) }
