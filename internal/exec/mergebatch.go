package exec

// Batched counterparts of the merge operators in merge.go. Algorithms and
// per-element simulated charges are identical to the row-at-a-time
// versions — heap pushes/pops and comparisons are counted during a batch
// and charged in one ChargeUnits call — so the device cost model is bit
// for bit unchanged; only host dispatch is amortized.

import (
	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/stats"
)

// batchCursor buffers one input of a batch merge. Refills request at most
// the consumer's current demand, so an abandoned merge never over-reads
// its inputs beyond one in-flight request.
type batchCursor struct {
	src BatchIter
	buf *[]uint32
	lim int // configured granularity cap on refills
	pos int
	n   int
}

func newBatchCursor(e *Env, src BatchIter) *batchCursor {
	c := &batchCursor{src: src, buf: GetIDBatch()}
	c.lim = e.batchCap()
	return c
}

// next returns the cursor's next element, refilling with a request of at
// most want elements (clamped to [1, cap]).
func (c *batchCursor) next(want int) (uint32, bool, error) {
	if c.pos >= c.n {
		if want < 1 {
			want = 1
		}
		if want > c.lim {
			want = c.lim
		}
		k, err := c.src.Next((*c.buf)[:want])
		if err != nil {
			return 0, false, err
		}
		if k == 0 {
			return 0, false, nil
		}
		c.pos, c.n = 0, k
	}
	id := (*c.buf)[c.pos]
	c.pos++
	return id, true, nil
}

func (c *batchCursor) close() {
	c.src.Close()
	PutIDBatch(c.buf)
	c.buf = nil
}

// idxHeap is a binary min-heap of (id, cursor index) pairs that counts
// its operations instead of charging them one by one.
type idxHeap struct {
	ids []uint32
	idx []int
	ops int64
}

func (h *idxHeap) push(id uint32, i int) {
	h.ops++
	h.ids = append(h.ids, id)
	h.idx = append(h.idx, i)
	j := len(h.ids) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if h.ids[parent] <= h.ids[j] {
			break
		}
		h.swap(parent, j)
		j = parent
	}
}

func (h *idxHeap) pop() (uint32, int) {
	h.ops++
	id, ci := h.ids[0], h.idx[0]
	last := len(h.ids) - 1
	h.ids[0], h.idx[0] = h.ids[last], h.idx[last]
	h.ids, h.idx = h.ids[:last], h.idx[:last]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		small := j
		if l < len(h.ids) && h.ids[l] < h.ids[small] {
			small = l
		}
		if r < len(h.ids) && h.ids[r] < h.ids[small] {
			small = r
		}
		if small == j {
			break
		}
		h.swap(small, j)
		j = small
	}
	return id, ci
}

func (h *idxHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}

func (h *idxHeap) len() int { return len(h.ids) }

// takeOps returns and resets the pending heap-operation count.
func (h *idxHeap) takeOps() int64 {
	n := h.ops
	h.ops = 0
	return n
}

// unionBatch merges k sorted batch inputs, deduplicating equal IDs.
type unionBatch struct {
	env    *Env
	h      idxHeap
	curs   []*batchCursor
	last   uint32
	primed bool
}

// MergeUnionBatch returns the sorted, deduplicated union of the batch
// iterators. Like the row version, it primes one element per input at
// construction time.
func (e *Env) MergeUnionBatch(its []BatchIter) (BatchIter, error) {
	u := &unionBatch{env: e, curs: make([]*batchCursor, len(its))}
	for i, it := range its {
		u.curs[i] = newBatchCursor(e, it)
	}
	for i, c := range u.curs {
		id, ok, err := c.next(1)
		if err != nil {
			e.cpuUnits(sim.CyclesHeapOp, u.h.takeOps())
			u.Close()
			return nil, err
		}
		if ok {
			u.h.push(id, i)
		}
	}
	e.cpuUnits(sim.CyclesHeapOp, u.h.takeOps())
	return u, nil
}

func (u *unionBatch) Next(dst []uint32) (int, error) {
	n := 0
	for n < len(dst) && u.h.len() > 0 {
		id, ci := u.h.pop()
		next, ok, err := u.curs[ci].next(len(dst))
		if err != nil {
			u.env.cpuUnits(sim.CyclesHeapOp, u.h.takeOps())
			return n, err
		}
		if ok {
			u.h.push(next, ci)
		}
		if u.primed && id == u.last {
			continue // duplicate
		}
		u.last = id
		u.primed = true
		dst[n] = id
		n++
	}
	u.env.cpuUnits(sim.CyclesHeapOp, u.h.takeOps())
	return n, nil
}

func (u *unionBatch) Close() {
	for _, c := range u.curs {
		if c != nil {
			c.close()
		}
	}
}

// unitCursor pulls one element at a time from a batch input — the
// exactness discipline for consumers that may abandon their inputs.
type unitCursor struct {
	src BatchIter
	one [1]uint32
}

func (c *unitCursor) next() (uint32, bool, error) {
	n, err := c.src.Next(c.one[:])
	if err != nil || n == 0 {
		return 0, false, err
	}
	return c.one[0], true, nil
}

// intersectBatch intersects k sorted deduplicated batch inputs. The
// intersection terminates as soon as any input is exhausted, abandoning
// the rest mid-stream; inputs are therefore pulled element by element so
// no simulated work is done for IDs the row engine would never decode.
// The output side is still batched — downstream operators consume the
// intersection in full batches.
type intersectBatch struct {
	env  *Env
	curs []unitCursor
	cur  []uint32
	done bool
}

// MergeIntersectBatch returns the sorted intersection of the iterators.
// Each input must itself be sorted; duplicates within one input are
// tolerated.
func (e *Env) MergeIntersectBatch(its []BatchIter) (BatchIter, error) {
	if len(its) == 0 {
		return EmptyBatch(), nil
	}
	if len(its) == 1 {
		return its[0], nil
	}
	x := &intersectBatch{env: e, curs: make([]unitCursor, len(its)), cur: make([]uint32, len(its))}
	for i, it := range its {
		x.curs[i].src = it
	}
	// Prime in input order, stopping at the first empty input — exactly
	// like the row version, which never touches the remaining inputs.
	for i := range x.curs {
		id, ok, err := x.curs[i].next()
		if err != nil {
			x.Close()
			return nil, err
		}
		if !ok {
			x.done = true
			break
		}
		x.cur[i] = id
	}
	return x, nil
}

func (x *intersectBatch) Next(dst []uint32) (int, error) {
	if x.done {
		return 0, nil
	}
	n := 0
	var compares int64
	for n < len(dst) {
		// Find the maximum of the current heads.
		max := x.cur[0]
		for _, id := range x.cur[1:] {
			compares++
			if id > max {
				max = id
			}
		}
		// Advance every cursor to >= max.
		equal := true
		for i := range x.curs {
			for x.cur[i] < max {
				id, ok, err := x.curs[i].next()
				if err != nil {
					x.env.cpuUnits(sim.CyclesCompare, compares)
					return n, err
				}
				if !ok {
					x.done = true
					x.env.cpuUnits(sim.CyclesCompare, compares)
					return n, nil
				}
				x.cur[i] = id
				compares++
			}
			if x.cur[i] != max {
				equal = false
			}
		}
		if !equal {
			continue
		}
		// Emit and advance all past max (uncharged, as in the row path).
		emitDone := false
		for i := range x.curs {
			id, ok, err := x.curs[i].next()
			if err != nil {
				x.env.cpuUnits(sim.CyclesCompare, compares)
				return n, err
			}
			if !ok {
				emitDone = true
				break
			}
			x.cur[i] = id
		}
		dst[n] = max
		n++
		if emitDone {
			x.done = true
			break
		}
	}
	x.env.cpuUnits(sim.CyclesCompare, compares)
	return n, nil
}

func (x *intersectBatch) Close() {
	for i := range x.curs {
		x.curs[i].src.Close()
	}
}

// UnionBatch merges any number of sources into one sorted deduplicated
// batch stream, spilling intermediate runs to scratch flash when more
// than fanin streams would need to be open at once — the batched twin of
// Union, with identical pass structure and charges.
func (e *Env) UnionBatch(sources []IDSource, fanin int, op *stats.Op) (BatchIter, error) {
	if len(sources) == 0 {
		return EmptyBatch(), nil
	}
	for len(sources) > e.clampFanin(fanin) {
		f := e.clampFanin(fanin)
		var next []IDSource
		for start := 0; start < len(sources); start += f {
			end := start + f
			if end > len(sources) {
				end = len(sources)
			}
			merged, err := e.openAndMergeBatch(sources[start:end])
			if err != nil {
				return nil, err
			}
			run, err := e.SpillBatch(merged, op)
			if err != nil {
				return nil, err
			}
			next = append(next, run)
		}
		sources = next
	}
	return e.openAndMergeBatch(sources)
}

func (e *Env) openAndMergeBatch(sources []IDSource) (BatchIter, error) {
	if len(sources) == 1 {
		return e.OpenBatch(sources[0])
	}
	its := make([]BatchIter, 0, len(sources))
	for _, s := range sources {
		it, err := e.OpenBatch(s)
		if err != nil {
			for _, o := range its {
				o.Close()
			}
			return nil, err
		}
		its = append(its, it)
	}
	if len(its) == 1 {
		return its[0], nil
	}
	return e.MergeUnionBatch(its)
}

// TranslateBatch maps a sorted batch stream of table-T identifiers to the
// sorted union of their posting lists at the given level of a dense
// climbing index — the batched twin of Translate. Dictionary probes are
// issued in input order, preserving the page-cache access pattern.
func (e *Env) TranslateBatch(input BatchIter, ix *climbing.Index, level int, fanin int, op *stats.Op) (BatchIter, error) {
	defer input.Close()
	var runs []IDSource
	batch := make([]IDSource, 0, e.clampFanin(fanin))
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		merged, err := e.openAndMergeBatch(batch)
		if err != nil {
			return err
		}
		run, err := e.SpillBatch(merged, op)
		if err != nil {
			return err
		}
		runs = append(runs, run)
		batch = batch[:0]
		return nil
	}
	sawAny := false
	bb := GetIDBatch()
	defer PutIDBatch(bb)
	buf := (*bb)[:e.batchCap()]
	for {
		k, err := input.Next(buf)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			break
		}
		op.AddIn(int64(k))
		for _, id := range buf[:k] {
			entry, found, err := ix.LookupEq(intValue(id))
			if err != nil {
				return nil, err
			}
			if !found {
				continue
			}
			ref := entry.Lists[level]
			if ref.Count == 0 {
				continue
			}
			sawAny = true
			batch = append(batch, ClimbSource{Env: e, Ix: ix, Ref: ref})
			if len(batch) >= e.clampFanin(fanin) {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if !sawAny {
		return EmptyBatch(), nil
	}
	if len(runs) == 0 {
		return e.openAndMergeBatch(batch)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return e.UnionBatch(runs, fanin, op)
}
