package exec

import (
	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/stats"
)

// mergeHeap is a binary min-heap of (id, iterator) pairs for k-way merges.
type mergeHeap struct {
	env *Env
	ids []uint32
	its []IDIter
}

func (h *mergeHeap) push(id uint32, it IDIter) {
	h.env.cpu(sim.CyclesHeapOp)
	h.ids = append(h.ids, id)
	h.its = append(h.its, it)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ids[parent] <= h.ids[i] {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *mergeHeap) pop() (uint32, IDIter) {
	h.env.cpu(sim.CyclesHeapOp)
	id, it := h.ids[0], h.its[0]
	last := len(h.ids) - 1
	h.ids[0], h.its[0] = h.ids[last], h.its[last]
	h.ids, h.its = h.ids[:last], h.its[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ids) && h.ids[l] < h.ids[small] {
			small = l
		}
		if r < len(h.ids) && h.ids[r] < h.ids[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(small, i)
		i = small
	}
	return id, it
}

func (h *mergeHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.its[i], h.its[j] = h.its[j], h.its[i]
}

func (h *mergeHeap) len() int { return len(h.ids) }

// unionIter merges k sorted iterators, deduplicating equal IDs.
type unionIter struct {
	h      *mergeHeap
	opened []IDIter // for Close
	last   uint32
	primed bool
}

// MergeUnion returns the sorted, deduplicated union of the iterators.
// The per-iterator heap slot costs a few words; the streams' page buffers
// dominate and are owned by the iterators themselves.
func (e *Env) MergeUnion(its []IDIter) (IDIter, error) {
	h := &mergeHeap{env: e}
	u := &unionIter{h: h, opened: its}
	for _, it := range its {
		id, ok, err := it.Next()
		if err != nil {
			u.Close()
			return nil, err
		}
		if ok {
			h.push(id, it)
		}
	}
	return u, nil
}

func (u *unionIter) Next() (uint32, bool, error) {
	for u.h.len() > 0 {
		id, it := u.h.pop()
		next, ok, err := it.Next()
		if err != nil {
			return 0, false, err
		}
		if ok {
			u.h.push(next, it)
		}
		if u.primed && id == u.last {
			continue // duplicate
		}
		u.last = id
		u.primed = true
		return id, true, nil
	}
	return 0, false, nil
}

func (u *unionIter) Close() {
	for _, it := range u.opened {
		it.Close()
	}
}

// intersectIter intersects k sorted deduplicated iterators.
type intersectIter struct {
	env  *Env
	its  []IDIter
	cur  []uint32
	done bool
}

// MergeIntersect returns the sorted intersection of the iterators. Each
// input must itself be sorted; duplicates within one input are tolerated.
func (e *Env) MergeIntersect(its []IDIter) (IDIter, error) {
	if len(its) == 0 {
		return Empty(), nil
	}
	if len(its) == 1 {
		return its[0], nil
	}
	x := &intersectIter{env: e, its: its, cur: make([]uint32, len(its))}
	for i, it := range its {
		id, ok, err := it.Next()
		if err != nil {
			x.Close()
			return nil, err
		}
		if !ok {
			x.done = true
			break
		}
		x.cur[i] = id
	}
	return x, nil
}

func (x *intersectIter) Next() (uint32, bool, error) {
	if x.done {
		return 0, false, nil
	}
	for {
		// Find the maximum of the current heads.
		max := x.cur[0]
		for _, id := range x.cur[1:] {
			x.env.cpu(sim.CyclesCompare)
			if id > max {
				max = id
			}
		}
		// Advance every iterator to >= max.
		equal := true
		for i, it := range x.its {
			for x.cur[i] < max {
				id, ok, err := it.Next()
				if err != nil {
					return 0, false, err
				}
				if !ok {
					x.done = true
					return 0, false, nil
				}
				x.cur[i] = id
				x.env.cpu(sim.CyclesCompare)
			}
			if x.cur[i] != max {
				equal = false
			}
		}
		if !equal {
			continue
		}
		// Emit and advance all past max.
		for i, it := range x.its {
			id, ok, err := it.Next()
			if err != nil {
				return 0, false, err
			}
			if !ok {
				x.done = true
				break
			}
			x.cur[i] = id
		}
		return max, true, nil
	}
}

func (x *intersectIter) Close() {
	for _, it := range x.its {
		it.Close()
	}
}

// Union merges any number of sources into one sorted deduplicated stream,
// spilling intermediate runs to scratch flash when more than fanin
// streams would need to be open at once — the multi-pass behaviour that
// makes low-selectivity pre-filtering expensive on the device.
func (e *Env) Union(sources []IDSource, fanin int, op *stats.Op) (IDIter, error) {
	if len(sources) == 0 {
		return Empty(), nil
	}
	for len(sources) > e.clampFanin(fanin) {
		f := e.clampFanin(fanin)
		var next []IDSource
		for start := 0; start < len(sources); start += f {
			end := start + f
			if end > len(sources) {
				end = len(sources)
			}
			merged, err := e.openAndMerge(sources[start:end])
			if err != nil {
				return nil, err
			}
			run, err := e.SpillIDs(merged, op)
			if err != nil {
				return nil, err
			}
			next = append(next, run)
		}
		sources = next
	}
	return e.openAndMerge(sources)
}

func (e *Env) openAndMerge(sources []IDSource) (IDIter, error) {
	its := make([]IDIter, 0, len(sources))
	for _, s := range sources {
		it, err := s.Open()
		if err != nil {
			for _, o := range its {
				o.Close()
			}
			return nil, err
		}
		its = append(its, it)
	}
	if len(its) == 1 {
		return its[0], nil
	}
	return e.MergeUnion(its)
}

// Translate maps a sorted stream of table-T identifiers to the sorted
// union of their posting lists at the given level of a dense climbing
// index — the paper's pre-filtering step ("transforming these lists into
// lists of PreID thanks to the climbing index on Vis.VisID"). Large
// inputs spill batches of merged lists as scratch runs.
func (e *Env) Translate(input IDIter, ix *climbing.Index, level int, fanin int, op *stats.Op) (IDIter, error) {
	defer input.Close()
	var runs []IDSource
	batch := make([]IDSource, 0, e.clampFanin(fanin))
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		merged, err := e.openAndMerge(batch)
		if err != nil {
			return err
		}
		run, err := e.SpillIDs(merged, op)
		if err != nil {
			return err
		}
		runs = append(runs, run)
		batch = batch[:0]
		return nil
	}
	sawAny := false
	for {
		id, ok, err := input.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		op.AddIn(1)
		entry, found, err := ix.LookupEq(intValue(id))
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		ref := entry.Lists[level]
		if ref.Count == 0 {
			continue
		}
		sawAny = true
		batch = append(batch, ClimbSource{Env: e, Ix: ix, Ref: ref})
		if len(batch) >= e.clampFanin(fanin) {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if !sawAny {
		return Empty(), nil
	}
	if len(runs) == 0 {
		return e.openAndMerge(batch)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return e.Union(runs, fanin, op)
}
