// Package metrics is a zero-dependency, allocation-free-on-the-hot-path
// metrics layer for the engine: atomic counters and gauges plus sharded
// power-of-two histograms, organized in named registries that snapshot
// to JSON and Prometheus text exposition.
//
// The engine keeps two time dimensions side by side — host wall-clock
// and simulated device time — so the same histogram machinery serves
// both "how long did the process spend" and "how long did the modeled
// hardware spend". Recording a sample never takes a lock and never
// touches the simulated clock, so enabling metrics cannot perturb the
// cycle-accounted results.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (may go up or down).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the current level by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc raises the current level by one (e.g. a request entering a
// bounded in-flight window).
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the current level by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxGauge tracks the high-water mark of an observed level.
type MaxGauge struct {
	v atomic.Int64
}

// Observe raises the mark if n exceeds it.
func (m *MaxGauge) Observe(n int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if n <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the high-water mark.
func (m *MaxGauge) Value() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds samples whose
// value v satisfies 2^(i-1) < v <= 2^i-ish via bits.Len64, with bucket 0
// for v <= 0 and the last bucket absorbing everything ≥ 2^62.
const histBuckets = 64

// histShards spreads concurrent writers across independent cache lines;
// a power of two so the index mask is one AND.
const histShards = 8

// histShard is one writer lane of a histogram. The pad keeps adjacent
// shards on separate cache lines so concurrent Observe calls do not
// false-share.
type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
	_       [40]byte
}

// Histogram is a bounded log₂-scale histogram of int64 samples
// (typically nanoseconds). Observe is lock-free: a round-robin pick
// spreads writers over shards, and each shard update is a pair of
// atomic adds. Snapshot merges the shards.
type Histogram struct {
	next   atomic.Uint64
	shards [histShards]histShard
}

// bucketOf maps a sample to its bucket index: 0 for v <= 0, else
// bits.Len64(v) so bucket i covers (2^(i-1), 2^i].
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..63 for positive int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	s := &h.shards[h.next.Add(1)&(histShards-1)]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the wall-clock nanoseconds elapsed since t0 —
// the common "time this request" shape of HTTP servers and load
// generators.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Nanoseconds()) }

// HistSnapshot is a merged point-in-time view of a histogram.
type HistSnapshot struct {
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Buckets [histBuckets]int64 `json:"-"`
}

// Snapshot merges all shards. Concurrent Observes may straddle the
// merge, so Count/Sum/Buckets are each individually monotone but only
// approximately mutually consistent — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
	}
	return s
}

// Mean returns the average sample, or 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1):
// the upper edge of the bucket in which the q-th sample falls.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// kind tags a registry entry for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindMaxGauge
	kindHistogram
)

type entry struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	m    *MaxGauge
	h    *Histogram
}

// Registry is a named collection of metrics. Registration (the
// Counter/Gauge/MaxGauge/Histogram methods) takes a mutex and is meant
// for setup time: callers keep the returned pointer and update it
// lock-free on the hot path. Registering the same name twice returns
// the same metric.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) lookup(name, help string, k kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %q registered twice with different kinds", name))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		e.c = new(Counter)
	case kindGauge:
		e.g = new(Gauge)
	case kindMaxGauge:
		e.m = new(MaxGauge)
	case kindHistogram:
		e.h = new(Histogram)
	}
	r.entries[name] = e
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter).c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge).g
}

// MaxGauge registers (or returns the existing) high-water gauge.
func (r *Registry) MaxGauge(name, help string) *MaxGauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindMaxGauge).m
}

// Histogram registers (or returns the existing) histogram under name.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram).h
}

// Value is one metric's snapshot inside a registry Snapshot.
type Value struct {
	Name  string        `json:"name"`
	Kind  string        `json:"kind"` // "counter" | "gauge" | "max" | "histogram"
	Help  string        `json:"help,omitempty"`
	Value int64         `json:"value,omitempty"` // counter/gauge/max
	Hist  *HistSnapshot `json:"hist,omitempty"`  // histogram only
}

// Snapshot is a point-in-time view of a whole registry, sorted by name.
type Snapshot []Value

// Snapshot captures every metric in the registry, sorted by name.
// Returns nil for a nil registry (metrics disabled).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make(Snapshot, 0, len(entries))
	for _, e := range entries {
		v := Value{Name: e.name, Help: e.help}
		switch e.kind {
		case kindCounter:
			v.Kind, v.Value = "counter", e.c.Value()
		case kindGauge:
			v.Kind, v.Value = "gauge", e.g.Value()
		case kindMaxGauge:
			v.Kind, v.Value = "max", e.m.Value()
		case kindHistogram:
			h := e.h.Snapshot()
			v.Kind, v.Hist = "histogram", &h
		}
		out = append(out, v)
	}
	return out
}

// Get returns the named value from the snapshot, or a zero Value.
func (s Snapshot) Get(name string) (Value, bool) {
	for _, v := range s {
		if v.Name == name {
			return v, true
		}
	}
	return Value{}, false
}

// MarshalJSON renders the snapshot as one flat object: scalar metrics
// map to numbers, histograms to {count, sum, mean, p50, p99}.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		nameJSON, err := json.Marshal(v.Name)
		if err != nil {
			return nil, err
		}
		b.Write(nameJSON)
		b.WriteByte(':')
		if v.Hist != nil {
			fmt.Fprintf(&b, `{"count":%d,"sum":%d,"mean":%.1f,"p50":%d,"p99":%d}`,
				v.Hist.Count, v.Hist.Sum, v.Hist.Mean(),
				v.Hist.Quantile(0.50), v.Hist.Quantile(0.99))
		} else {
			fmt.Fprintf(&b, "%d", v.Value)
		}
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// promName rewrites a metric name into the Prometheus charset
// ([a-zA-Z0-9_:]); everything else becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format 0.0.4. Every metric name is prefixed (e.g. "ghostdb_");
// histograms expose cumulative le buckets plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	for _, v := range s {
		name := prefix + promName(v.Name)
		if v.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, v.Help); err != nil {
				return err
			}
		}
		switch v.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v.Value); err != nil {
				return err
			}
		case "gauge", "max":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v.Value); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for i, n := range v.Hist.Buckets {
				if n == 0 {
					continue
				}
				cum += n
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(i), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				name, v.Hist.Count, name, v.Hist.Sum, name, v.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
