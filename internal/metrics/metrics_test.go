package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeMax(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	m := r.MaxGauge("m", "a high-water mark")
	m.Observe(5)
	m.Observe(3)
	m.Observe(9)
	if got := m.Value(); got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
	// Re-registering returns the same metric.
	if r.Counter("c", "again") != c {
		t.Fatal("re-registering a counter returned a different instance")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var r *Registry
	// A nil registry hands out nil metrics and every operation is a no-op.
	c := r.Counter("c", "")
	c.Inc()
	r.Gauge("g", "").Set(3)
	r.MaxGauge("m", "").Observe(3)
	r.Histogram("h", "").Observe(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay 0")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1024, 11}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's samples are <= its upper bound.
	for _, v := range []int64{1, 7, 100, 999_999, 1 << 40} {
		if up := BucketUpper(bucketOf(v)); v > up {
			t.Errorf("value %d above its bucket upper bound %d", v, up)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %d, want 5050", s.Sum)
	}
	if m := s.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	// The median of 1..100 is ≈ 50; the p50 upper-bound estimate must be
	// the bucket edge at or above it, and no more than 2x (log2 buckets).
	if p := s.Quantile(0.5); p < 50 || p > 128 {
		t.Fatalf("p50 = %d, want within [50,128]", p)
	}
	if p := s.Quantile(1.0); p < 100 {
		t.Fatalf("p100 = %d, want >= 100", p)
	}
	if p := s.Quantile(0); p > 2 {
		t.Fatalf("p0 = %d, want <= 2", p)
	}
}

// TestRegistryConcurrent hammers one registry from 16 goroutines and
// checks that counter totals are exact and histogram counts monotone —
// run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	const goroutines = 16
	const perG = 10_000

	r := NewRegistry()
	c := r.Counter("hits", "")
	h := r.Histogram("lat", "")

	// A reader goroutine watches the histogram count grow; it must never
	// move backwards.
	stop := make(chan struct{})
	var readerErr error
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < last {
				readerErr = &monotoneErr{prev: last, now: s.Count}
				return
			}
			last = s.Count
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix fresh lookups with held pointers: both paths must be safe.
			local := r.Counter("hits", "")
			for i := 0; i < perG; i++ {
				local.Inc()
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d (exact)", got, goroutines*perG)
	}
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d (exact)", s.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total = %d, count = %d; want equal", bucketTotal, s.Count)
	}
}

type monotoneErr struct{ prev, now int64 }

func (e *monotoneErr) Error() string {
	return "histogram count moved backwards"
}

func TestSnapshotJSONAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total", "queries run").Add(3)
	r.Gauge("delta_rows", "live delta rows").Set(7)
	r.MaxGauge("ram_high", "arena high-water").Observe(512)
	h := r.Histogram("query_wall_ns", "wall latency")
	h.Observe(1000)
	h.Observe(2000)

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d entries, want 4", len(snap))
	}
	if v, ok := snap.Get("queries_total"); !ok || v.Value != 3 {
		t.Fatalf("queries_total = %+v, want value 3", v)
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not decode: %v\n%s", err, data)
	}
	if string(decoded["queries_total"]) != "3" {
		t.Fatalf("queries_total JSON = %s, want 3", decoded["queries_total"])
	}
	var hist struct {
		Count int64 `json:"count"`
		Sum   int64 `json:"sum"`
	}
	if err := json.Unmarshal(decoded["query_wall_ns"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 2 || hist.Sum != 3000 {
		t.Fatalf("histogram JSON = %+v, want count 2 sum 3000", hist)
	}

	var b strings.Builder
	if err := snap.WritePrometheus(&b, "ghostdb_"); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE ghostdb_queries_total counter",
		"ghostdb_queries_total 3",
		"# TYPE ghostdb_delta_rows gauge",
		"ghostdb_ram_high 512",
		"# TYPE ghostdb_query_wall_ns histogram",
		`ghostdb_query_wall_ns_bucket{le="+Inf"} 2`,
		"ghostdb_query_wall_ns_sum 3000",
		"ghostdb_query_wall_ns_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}
