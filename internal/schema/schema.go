// Package schema is GhostDB's catalog: tables, typed columns, the HIDDEN
// attribute partitioning columns between the public store and the smart
// USB device, and the foreign-key tree the paper's indexing model (Subtree
// Key Tables, climbing indexes) requires.
//
// Terminology follows the paper's Figure 3: the *root* of the tree is the
// fact table (Prescription) — the table no other table references. A
// table's *children* are the tables it references through foreign keys;
// its *parent* is the unique table referencing it. "Climbing" moves from a
// table toward the root (Doctor → Visit → Prescription).
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/ghostdb/ghostdb/internal/value"
)

// Type is a column's declared type.
type Type struct {
	Kind value.Kind
	Size int // declared CHAR(n) width; 0 when unsized
}

// String renders the type as SQL.
func (t Type) String() string {
	if t.Kind == value.String && t.Size > 0 {
		return fmt.Sprintf("CHAR(%d)", t.Size)
	}
	return t.Kind.String()
}

// Column describes one column.
type Column struct {
	Name       string
	Type       Type
	Hidden     bool   // declared HIDDEN: stored only on the device
	PrimaryKey bool   // at most one per table; replicated on the device
	RefTable   string // non-empty for a foreign key
	RefColumn  string
}

// IsForeignKey reports whether the column references another table.
func (c *Column) IsForeignKey() bool { return c.RefTable != "" }

// Table is a named collection of columns with exactly one primary key.
type Table struct {
	Name    string
	Columns []Column

	pk       int
	colIndex map[string]int
}

// NewTable builds a table, validating column names and the primary key.
func NewTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, errors.New("schema: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: table %s has no columns", name)
	}
	t := &Table{Name: name, Columns: cols, pk: -1, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: table %s has an unnamed column", name)
		}
		key := strings.ToLower(c.Name)
		if _, dup := t.colIndex[key]; dup {
			return nil, fmt.Errorf("schema: table %s: duplicate column %s", name, c.Name)
		}
		t.colIndex[key] = i
		if c.PrimaryKey {
			if t.pk >= 0 {
				return nil, fmt.Errorf("schema: table %s: multiple primary keys", name)
			}
			if c.Type.Kind != value.Int {
				return nil, fmt.Errorf("schema: table %s: primary key %s must be INTEGER", name, c.Name)
			}
			if c.Hidden {
				return nil, fmt.Errorf("schema: table %s: primary key %s cannot be HIDDEN (keys are replicated on the device)", name, c.Name)
			}
			t.pk = i
		}
		if c.Type.Kind == value.Invalid {
			return nil, fmt.Errorf("schema: table %s: column %s has no type", name, c.Name)
		}
	}
	if t.pk < 0 {
		return nil, fmt.Errorf("schema: table %s has no primary key", name)
	}
	return t, nil
}

// Column returns the named column (case-insensitive).
func (t *Table) Column(name string) (*Column, bool) {
	i, ok := t.colIndex[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return &t.Columns[i], true
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	i, ok := t.colIndex[strings.ToLower(name)]
	if !ok {
		return -1
	}
	return i
}

// PrimaryKey returns the table's primary key column.
func (t *Table) PrimaryKey() *Column { return &t.Columns[t.pk] }

// PrimaryKeyIndex returns the position of the primary key column.
func (t *Table) PrimaryKeyIndex() int { return t.pk }

// ForeignKeys returns the foreign-key columns in declaration order.
func (t *Table) ForeignKeys() []*Column {
	var fks []*Column
	for i := range t.Columns {
		if t.Columns[i].IsForeignKey() {
			fks = append(fks, &t.Columns[i])
		}
	}
	return fks
}

// HiddenColumns returns the columns stored only on the device.
func (t *Table) HiddenColumns() []*Column {
	var out []*Column
	for i := range t.Columns {
		if t.Columns[i].Hidden {
			out = append(out, &t.Columns[i])
		}
	}
	return out
}

// VisibleColumns returns the columns stored on the public side.
func (t *Table) VisibleColumns() []*Column {
	var out []*Column
	for i := range t.Columns {
		if !t.Columns[i].Hidden {
			out = append(out, &t.Columns[i])
		}
	}
	return out
}

// Schema is an ordered catalog of tables. Call Freeze after the last
// AddTable to validate the tree shape and enable navigation queries.
type Schema struct {
	tables map[string]*Table
	order  []string

	frozen   bool
	rootName string
	parent   map[string]string // table -> referencing table (toward the root)
	parentFK map[string]string // table -> FK column in the parent
	children map[string][]string
	depth    map[string]int // root has the maximum depth... no: root depth 0, leaves deepest
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{tables: map[string]*Table{}}
}

// AddTable adds a table. Referenced tables must already exist (the DDL
// declares dimension tables before fact tables, as in the paper's demo).
func (s *Schema) AddTable(t *Table) error {
	if s.frozen {
		return errors.New("schema: AddTable after Freeze")
	}
	key := strings.ToLower(t.Name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("schema: duplicate table %s", t.Name)
	}
	for i := range t.Columns {
		c := &t.Columns[i]
		if !c.IsForeignKey() {
			continue
		}
		ref, ok := s.tables[strings.ToLower(c.RefTable)]
		if !ok {
			return fmt.Errorf("schema: table %s: %s references unknown table %s", t.Name, c.Name, c.RefTable)
		}
		if c.RefColumn == "" {
			c.RefColumn = ref.PrimaryKey().Name
		}
		rc, ok := ref.Column(c.RefColumn)
		if !ok {
			return fmt.Errorf("schema: table %s: %s references unknown column %s.%s", t.Name, c.Name, c.RefTable, c.RefColumn)
		}
		if !rc.PrimaryKey {
			return fmt.Errorf("schema: table %s: %s must reference the primary key of %s", t.Name, c.Name, c.RefTable)
		}
		// Normalize to catalog casing.
		c.RefTable = ref.Name
		c.RefColumn = rc.Name
	}
	s.tables[key] = t
	s.order = append(s.order, t.Name)
	return nil
}

// Table returns the named table (case-insensitive).
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables in declaration order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, len(s.order))
	for i, n := range s.order {
		out[i] = s.tables[strings.ToLower(n)]
	}
	return out
}

// Freeze validates the tree shape: every table is referenced by at most
// one other table, exactly one table is referenced by none and references
// others transitively covering the whole schema (single tree), and marks
// the schema immutable.
func (s *Schema) Freeze() error {
	if s.frozen {
		return nil
	}
	if len(s.order) == 0 {
		return errors.New("schema: empty")
	}
	parent := map[string]string{}
	parentFK := map[string]string{}
	children := map[string][]string{}
	for _, t := range s.Tables() {
		for _, fk := range t.ForeignKeys() {
			child := fk.RefTable
			if p, dup := parent[child]; dup {
				return fmt.Errorf("schema: not a tree: %s is referenced by both %s and %s", child, p, t.Name)
			}
			if strings.EqualFold(child, t.Name) {
				return fmt.Errorf("schema: self reference on %s", t.Name)
			}
			parent[child] = t.Name
			parentFK[child] = fk.Name
			children[t.Name] = append(children[t.Name], child)
		}
	}
	var roots []string
	for _, t := range s.Tables() {
		if _, hasParent := parent[t.Name]; !hasParent {
			roots = append(roots, t.Name)
		}
	}
	if len(roots) != 1 {
		sort.Strings(roots)
		return fmt.Errorf("schema: tree must have exactly one root, found %d: %v", len(roots), roots)
	}
	// Depth-first walk from the root assigns depths and detects
	// disconnected tables (impossible given single root + unique parents,
	// but kept as an invariant check).
	depth := map[string]int{}
	var walk func(name string, d int)
	walk = func(name string, d int) {
		depth[name] = d
		for _, c := range children[name] {
			walk(c, d+1)
		}
	}
	walk(roots[0], 0)
	if len(depth) != len(s.order) {
		return fmt.Errorf("schema: %d tables unreachable from root %s", len(s.order)-len(depth), roots[0])
	}
	s.rootName = roots[0]
	s.parent = parent
	s.parentFK = parentFK
	s.children = children
	s.depth = depth
	s.frozen = true
	return nil
}

// Frozen reports whether Freeze has completed.
func (s *Schema) Frozen() bool { return s.frozen }

func (s *Schema) mustFrozen() {
	if !s.frozen {
		panic("schema: navigation before Freeze")
	}
}

// Root returns the tree root (the fact table).
func (s *Schema) Root() *Table {
	s.mustFrozen()
	t, _ := s.Table(s.rootName)
	return t
}

// Parent returns the table referencing t (one step toward the root) and
// the foreign-key column in that parent pointing at t. For the root it
// returns (nil, nil).
func (s *Schema) Parent(table string) (*Table, *Column) {
	s.mustFrozen()
	t, ok := s.Table(table)
	if !ok {
		return nil, nil
	}
	pname, ok := s.parent[t.Name]
	if !ok {
		return nil, nil
	}
	p, _ := s.Table(pname)
	fk, _ := p.Column(s.parentFK[t.Name])
	return p, fk
}

// Children returns the tables t references, in FK declaration order.
func (s *Schema) Children(table string) []*Table {
	s.mustFrozen()
	t, ok := s.Table(table)
	if !ok {
		return nil
	}
	var out []*Table
	for _, c := range s.children[t.Name] {
		ct, _ := s.Table(c)
		out = append(out, ct)
	}
	return out
}

// Depth returns the table's distance from the root (root = 0), or -1 for
// unknown tables.
func (s *Schema) Depth(table string) int {
	s.mustFrozen()
	t, ok := s.Table(table)
	if !ok {
		return -1
	}
	return s.depth[t.Name]
}

// PathToRoot returns [t, parent(t), ..., root].
func (s *Schema) PathToRoot(table string) []*Table {
	s.mustFrozen()
	t, ok := s.Table(table)
	if !ok {
		return nil
	}
	path := []*Table{t}
	for {
		p, _ := s.Parent(path[len(path)-1].Name)
		if p == nil {
			return path
		}
		path = append(path, p)
	}
}

// IsAncestor reports whether anc lies strictly between table and the root
// (or is the root) on table's climbing path.
func (s *Schema) IsAncestor(anc, table string) bool {
	path := s.PathToRoot(table)
	for _, t := range path[1:] {
		if strings.EqualFold(t.Name, anc) {
			return true
		}
	}
	return false
}

// Subtree returns the table and all its descendants (the tables whose
// climbing paths pass through it), in a stable pre-order.
func (s *Schema) Subtree(table string) []*Table {
	s.mustFrozen()
	t, ok := s.Table(table)
	if !ok {
		return nil
	}
	out := []*Table{t}
	for _, c := range s.Children(t.Name) {
		out = append(out, s.Subtree(c.Name)...)
	}
	return out
}

// QueryRoot returns the unique table in the set of which every other
// table in the set is a descendant — the table whose tuples define the
// result granularity of an SPJ query over the set.
func (s *Schema) QueryRoot(tables []string) (*Table, error) {
	s.mustFrozen()
	if len(tables) == 0 {
		return nil, errors.New("schema: empty FROM set")
	}
	best := tables[0]
	for i, name := range tables {
		if _, ok := s.Table(name); !ok {
			return nil, fmt.Errorf("schema: unknown table %s", name)
		}
		if i > 0 && s.Depth(name) < s.Depth(best) {
			best = name
		}
	}
	for _, name := range tables {
		if strings.EqualFold(name, best) {
			continue
		}
		if !s.IsAncestor(best, name) {
			return nil, fmt.Errorf("schema: %s is not reachable from %s along foreign keys; GhostDB supports tree (star/snowflake) queries", name, best)
		}
	}
	t, _ := s.Table(best)
	return t, nil
}

// HiddenValueSet collects, for auditing, a predicate that recognizes the
// values stored in hidden columns. The engine populates it at load time.
type HiddenValueSet struct {
	vals map[value.Value]struct{}
}

// NewHiddenValueSet returns an empty set.
func NewHiddenValueSet() *HiddenValueSet {
	return &HiddenValueSet{vals: map[value.Value]struct{}{}}
}

// Add records a hidden value.
func (h *HiddenValueSet) Add(v value.Value) { h.vals[v] = struct{}{} }

// Contains reports whether v occurs in any hidden column.
func (h *HiddenValueSet) Contains(v value.Value) bool {
	_, ok := h.vals[v]
	return ok
}

// Len reports the number of distinct hidden values.
func (h *HiddenValueSet) Len() int { return len(h.vals) }
