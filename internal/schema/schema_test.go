package schema

import (
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/value"
)

func intCol(name string) Column {
	return Column{Name: name, Type: Type{Kind: value.Int}}
}

func pkCol(name string) Column {
	return Column{Name: name, Type: Type{Kind: value.Int}, PrimaryKey: true}
}

func fkCol(name, ref string, hidden bool) Column {
	return Column{Name: name, Type: Type{Kind: value.Int}, RefTable: ref, Hidden: hidden}
}

// figure3 builds the paper's hospital schema.
func figure3(t *testing.T) *Schema {
	t.Helper()
	s := New()
	mk := func(name string, cols ...Column) {
		tb, err := NewTable(name, cols)
		if err != nil {
			t.Fatalf("NewTable(%s): %v", name, err)
		}
		if err := s.AddTable(tb); err != nil {
			t.Fatalf("AddTable(%s): %v", name, err)
		}
	}
	mk("Doctor", pkCol("DocID"),
		Column{Name: "Name", Type: Type{Kind: value.String, Size: 40}},
		Column{Name: "Speciality", Type: Type{Kind: value.String}},
		intCol("Zip"),
		Column{Name: "Country", Type: Type{Kind: value.String}})
	mk("Patient", pkCol("PatID"),
		Column{Name: "Name", Type: Type{Kind: value.String}, Hidden: true},
		intCol("Age"),
		Column{Name: "BodyMassIndex", Type: Type{Kind: value.Int}, Hidden: true},
		Column{Name: "Country", Type: Type{Kind: value.String}})
	mk("Medicine", pkCol("MedID"),
		Column{Name: "Name", Type: Type{Kind: value.String}},
		Column{Name: "Effect", Type: Type{Kind: value.String}},
		Column{Name: "Type", Type: Type{Kind: value.String}})
	mk("Visit", pkCol("VisID"),
		Column{Name: "Date", Type: Type{Kind: value.Date}},
		Column{Name: "Purpose", Type: Type{Kind: value.String, Size: 100}, Hidden: true},
		fkCol("DocID", "Doctor", true),
		fkCol("PatID", "Patient", true))
	mk("Prescription", pkCol("PreID"),
		Column{Name: "Quantity", Type: Type{Kind: value.Int}, Hidden: true},
		intCol("Frequency"),
		Column{Name: "WhenWritten", Type: Type{Kind: value.Date}, Hidden: true},
		fkCol("MedID", "Medicine", true),
		fkCol("VisID", "Visit", true))
	if err := s.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return s
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", []Column{pkCol("ID")}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTable("T", nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewTable("T", []Column{pkCol("A"), pkCol("B")}); err == nil {
		t.Error("two primary keys accepted")
	}
	if _, err := NewTable("T", []Column{intCol("A")}); err == nil {
		t.Error("missing primary key accepted")
	}
	if _, err := NewTable("T", []Column{pkCol("A"), intCol("a")}); err == nil {
		t.Error("case-insensitive duplicate column accepted")
	}
	if _, err := NewTable("T", []Column{{Name: "A", Type: Type{Kind: value.String}, PrimaryKey: true}}); err == nil {
		t.Error("non-integer primary key accepted")
	}
	if _, err := NewTable("T", []Column{{Name: "A", Type: Type{Kind: value.Int}, PrimaryKey: true, Hidden: true}}); err == nil {
		t.Error("hidden primary key accepted")
	}
	if _, err := NewTable("T", []Column{pkCol("A"), {Name: "B"}}); err == nil {
		t.Error("untyped column accepted")
	}
}

func TestTableLookups(t *testing.T) {
	tb, err := NewTable("Visit", []Column{
		pkCol("VisID"),
		Column{Name: "Purpose", Type: Type{Kind: value.String}, Hidden: true},
		fkCol("DocID", "Doctor", true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := tb.Column("purpose"); !ok || c.Name != "Purpose" {
		t.Error("case-insensitive column lookup failed")
	}
	if _, ok := tb.Column("nope"); ok {
		t.Error("phantom column found")
	}
	if tb.ColumnIndex("DOCID") != 2 || tb.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if tb.PrimaryKey().Name != "VisID" || tb.PrimaryKeyIndex() != 0 {
		t.Error("primary key lookup wrong")
	}
	if fks := tb.ForeignKeys(); len(fks) != 1 || fks[0].Name != "DocID" {
		t.Errorf("ForeignKeys = %v", fks)
	}
	if hc := tb.HiddenColumns(); len(hc) != 2 {
		t.Errorf("HiddenColumns = %d, want 2", len(hc))
	}
	if vc := tb.VisibleColumns(); len(vc) != 1 || vc[0].Name != "VisID" {
		t.Errorf("VisibleColumns = %v", vc)
	}
}

func TestTypeString(t *testing.T) {
	if got := (Type{Kind: value.String, Size: 100}).String(); got != "CHAR(100)" {
		t.Errorf("sized char = %q", got)
	}
	if got := (Type{Kind: value.Int}).String(); got != "INTEGER" {
		t.Errorf("int = %q", got)
	}
}

func TestFigure3Tree(t *testing.T) {
	s := figure3(t)
	if got := s.Root().Name; got != "Prescription" {
		t.Errorf("root = %s", got)
	}
	p, fk := s.Parent("Doctor")
	if p == nil || p.Name != "Visit" || fk.Name != "DocID" {
		t.Errorf("Parent(Doctor) = %v, %v", p, fk)
	}
	if p, _ := s.Parent("Prescription"); p != nil {
		t.Error("root has a parent")
	}
	kids := s.Children("Visit")
	if len(kids) != 2 || kids[0].Name != "Doctor" || kids[1].Name != "Patient" {
		t.Errorf("Children(Visit) = %v", kids)
	}
	if d := s.Depth("Prescription"); d != 0 {
		t.Errorf("Depth(root) = %d", d)
	}
	if d := s.Depth("Doctor"); d != 2 {
		t.Errorf("Depth(Doctor) = %d", d)
	}
	if d := s.Depth("nope"); d != -1 {
		t.Errorf("Depth(unknown) = %d", d)
	}
	path := s.PathToRoot("doctor")
	names := []string{}
	for _, tb := range path {
		names = append(names, tb.Name)
	}
	if strings.Join(names, ",") != "Doctor,Visit,Prescription" {
		t.Errorf("PathToRoot(Doctor) = %v", names)
	}
	if !s.IsAncestor("Prescription", "Doctor") || !s.IsAncestor("Visit", "Doctor") {
		t.Error("ancestor relations missing")
	}
	if s.IsAncestor("Doctor", "Visit") || s.IsAncestor("Doctor", "Doctor") {
		t.Error("bogus ancestor relations")
	}
	sub := s.Subtree("Visit")
	if len(sub) != 3 || sub[0].Name != "Visit" {
		t.Errorf("Subtree(Visit) = %v", sub)
	}
	if all := s.Subtree("Prescription"); len(all) != 5 {
		t.Errorf("Subtree(root) = %d tables", len(all))
	}
}

func TestQueryRoot(t *testing.T) {
	s := figure3(t)
	qr, err := s.QueryRoot([]string{"Medicine", "Prescription", "Visit"})
	if err != nil || qr.Name != "Prescription" {
		t.Errorf("QueryRoot = %v, %v", qr, err)
	}
	qr, err = s.QueryRoot([]string{"Doctor", "Visit"})
	if err != nil || qr.Name != "Visit" {
		t.Errorf("QueryRoot(Doctor,Visit) = %v, %v", qr, err)
	}
	qr, err = s.QueryRoot([]string{"Patient"})
	if err != nil || qr.Name != "Patient" {
		t.Errorf("QueryRoot(Patient) = %v, %v", qr, err)
	}
	// Doctor and Patient are siblings: no query root among {Doctor, Patient}.
	if _, err := s.QueryRoot([]string{"Doctor", "Patient"}); err == nil {
		t.Error("sibling-only FROM accepted")
	}
	if _, err := s.QueryRoot(nil); err == nil {
		t.Error("empty FROM accepted")
	}
	if _, err := s.QueryRoot([]string{"Ghost"}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestAddTableValidation(t *testing.T) {
	s := New()
	doc, _ := NewTable("Doctor", []Column{pkCol("DocID")})
	if err := s.AddTable(doc); err != nil {
		t.Fatal(err)
	}
	dup, _ := NewTable("doctor", []Column{pkCol("DocID")})
	if err := s.AddTable(dup); err == nil {
		t.Error("case-insensitive duplicate table accepted")
	}
	badRef, _ := NewTable("Visit", []Column{pkCol("VisID"), fkCol("DocID", "Nurse", false)})
	if err := s.AddTable(badRef); err == nil {
		t.Error("reference to unknown table accepted")
	}
	badCol, _ := NewTable("Visit", []Column{pkCol("VisID"),
		{Name: "DocID", Type: Type{Kind: value.Int}, RefTable: "Doctor", RefColumn: "Nope"}})
	if err := s.AddTable(badCol); err == nil {
		t.Error("reference to unknown column accepted")
	}
	// Default RefColumn resolves to the primary key.
	vis, _ := NewTable("Visit", []Column{pkCol("VisID"), fkCol("DocID", "Doctor", true)})
	if err := s.AddTable(vis); err != nil {
		t.Fatal(err)
	}
	fk, _ := vis.Column("DocID")
	if fk.RefColumn != "DocID" || fk.RefTable != "Doctor" {
		t.Errorf("FK normalized to %s.%s", fk.RefTable, fk.RefColumn)
	}
}

func TestFreezeRejectsNonTrees(t *testing.T) {
	// Two tables referencing the same child.
	s := New()
	leaf, _ := NewTable("Leaf", []Column{pkCol("ID")})
	a, _ := NewTable("A", []Column{pkCol("AID"), fkCol("LeafID", "Leaf", false)})
	b, _ := NewTable("B", []Column{pkCol("BID"), fkCol("LeafID", "Leaf", false)})
	for _, tb := range []*Table{leaf, a, b} {
		if err := s.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Freeze(); err == nil {
		t.Error("DAG (shared child) accepted as tree")
	}

	// Two disconnected trees.
	s2 := New()
	x, _ := NewTable("X", []Column{pkCol("XID")})
	y, _ := NewTable("Y", []Column{pkCol("YID")})
	_ = s2.AddTable(x)
	_ = s2.AddTable(y)
	if err := s2.Freeze(); err == nil {
		t.Error("forest accepted as tree")
	}

	// Empty schema.
	if err := New().Freeze(); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestFreezeIdempotentAndGuards(t *testing.T) {
	s := figure3(t)
	if err := s.Freeze(); err != nil {
		t.Errorf("second Freeze: %v", err)
	}
	extra, _ := NewTable("Extra", []Column{pkCol("ID")})
	if err := s.AddTable(extra); err == nil {
		t.Error("AddTable after Freeze accepted")
	}
	if !s.Frozen() {
		t.Error("Frozen() = false")
	}

	unfrozen := New()
	tb, _ := NewTable("T", []Column{pkCol("ID")})
	_ = unfrozen.AddTable(tb)
	defer func() {
		if recover() == nil {
			t.Error("navigation before Freeze must panic")
		}
	}()
	unfrozen.Root()
}

func TestTablesOrder(t *testing.T) {
	s := figure3(t)
	var names []string
	for _, tb := range s.Tables() {
		names = append(names, tb.Name)
	}
	want := "Doctor,Patient,Medicine,Visit,Prescription"
	if strings.Join(names, ",") != want {
		t.Errorf("Tables order = %v", names)
	}
}

func TestHiddenValueSet(t *testing.T) {
	h := NewHiddenValueSet()
	if h.Contains(value.NewString("x")) || h.Len() != 0 {
		t.Error("empty set misbehaves")
	}
	h.Add(value.NewString("Sclerosis"))
	h.Add(value.NewString("Sclerosis")) // dedup
	h.Add(value.NewInt(7))
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
	if !h.Contains(value.NewString("Sclerosis")) || !h.Contains(value.NewInt(7)) {
		t.Error("membership failed")
	}
	if h.Contains(value.NewString("sclerosis")) {
		t.Error("values are case sensitive")
	}
}
