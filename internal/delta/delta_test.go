package delta

import (
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/value"
)

func testTable(t *testing.T) *schema.Table {
	t.Helper()
	tbl, err := schema.NewTable("T", []schema.Column{
		{Name: "ID", Type: schema.Type{Kind: value.Int}, PrimaryKey: true},
		{Name: "Vis", Type: schema.Type{Kind: value.String}},
		{Name: "Hid", Type: schema.Type{Kind: value.String}, Hidden: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func row(id int64, vis, hid string) []value.Value {
	return []value.Value{value.NewInt(id), value.NewString(vis), value.NewString(hid)}
}

func TestDeltaLifecycle(t *testing.T) {
	arena := ram.NewArena("device", 1<<20)
	s := NewStore(arena)
	tbl := testTable(t)
	d := s.Ensure(tbl, 10)

	if d.NextID() != 11 || d.Dirty() || s.Entries() != 0 {
		t.Fatalf("fresh delta: next=%d dirty=%v entries=%d", d.NextID(), d.Dirty(), s.Entries())
	}

	// Insert continues the dense sequence.
	id, err := d.Insert(row(11, "v", "h"))
	if err != nil || id != 11 || d.NextID() != 12 {
		t.Fatalf("insert: id=%d err=%v", id, err)
	}
	// Override shadows a base row.
	if err := d.Apply(3, row(3, "v2", "h2")); err != nil {
		t.Fatal(err)
	}
	if !d.Shadowed(3) || d.Shadowed(4) || d.Shadowed(11) {
		t.Fatal("shadowing wrong: base override must shadow, inserts must not")
	}
	// Delete tombstones (and drops any image).
	if err := d.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(5); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := d.Delete(11); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Row(11); ok {
		t.Fatal("deleted insert still has an image")
	}
	if d.NextID() != 12 {
		t.Fatal("identifiers must never be reused")
	}

	if got := d.ShadowedBaseIDs(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("ShadowedBaseIDs = %v", got)
	}
	if got := d.DeltaIDs(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("DeltaIDs = %v", got)
	}
	if s.Entries() != 3 { // one image + two tombstones
		t.Fatalf("entries = %d", s.Entries())
	}

	// The hidden share is charged to the arena under a delta label.
	if d.DeviceBytes() <= 0 || d.HostBytes() <= 0 {
		t.Fatalf("byte accounting: device=%d host=%d", d.DeviceBytes(), d.HostBytes())
	}
	found := false
	for _, u := range arena.Snapshot() {
		if strings.HasPrefix(u.Label, "delta:") {
			found = true
			if u.Bytes != d.DeviceBytes() {
				t.Fatalf("grant %d bytes, accounted %d", u.Bytes, d.DeviceBytes())
			}
		}
	}
	if !found {
		t.Fatal("no delta grant in the arena")
	}

	// ReleaseAll returns every byte.
	s.ReleaseAll()
	if arena.Used() != 0 {
		t.Fatalf("arena still holds %d bytes after release", arena.Used())
	}
	if s.Dirty() {
		t.Fatal("store dirty after release")
	}
}

func TestDeltaBudgetExhaustion(t *testing.T) {
	arena := ram.NewArena("device", 64) // tiny: a couple of rows at most
	s := NewStore(arena)
	d := s.Ensure(testTable(t), 2)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = d.Insert(row(int64(3+i), "visible", "hidden-value-of-some-length"))
	}
	if err == nil {
		t.Fatal("unbounded delta never hit the RAM budget")
	}
	if !strings.Contains(err.Error(), "CHECKPOINT") {
		t.Fatalf("budget error %q should point at CHECKPOINT", err)
	}
}

func TestApplyChargesGrowth(t *testing.T) {
	arena := ram.NewArena("device", 1<<20)
	s := NewStore(arena)
	d := s.Ensure(testTable(t), 4)
	if err := d.Apply(1, row(1, "v", "small")); err != nil {
		t.Fatal(err)
	}
	before := d.DeviceBytes()
	// Re-updating the resident image with a larger hidden value must
	// grow the arena charge; shrinking keeps it (no refunds until
	// CHECKPOINT).
	if err := d.Apply(1, row(1, "v", strings.Repeat("x", 300))); err != nil {
		t.Fatal(err)
	}
	grown := d.DeviceBytes()
	if grown <= before+200 {
		t.Fatalf("device bytes %d -> %d; growth not charged", before, grown)
	}
	if arena.Used() != grown {
		t.Fatalf("arena %d, accounted %d", arena.Used(), grown)
	}
	if err := d.Apply(1, row(1, "v", "tiny")); err != nil {
		t.Fatal(err)
	}
	if d.DeviceBytes() != grown {
		t.Fatalf("shrinking image refunded bytes: %d -> %d", grown, d.DeviceBytes())
	}
	// A bounded arena rejects growth it cannot hold.
	tight := NewStore(ram.NewArena("device", 48))
	dt := tight.Ensure(testTable(t), 4)
	if err := dt.Apply(1, row(1, "v", "ok")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Apply(1, row(1, "v", strings.Repeat("x", 400))); err == nil {
		t.Fatal("oversized re-update accepted")
	}
}

func TestInsertAllAtomic(t *testing.T) {
	arena := ram.NewArena("device", 80)
	s := NewStore(arena)
	d := s.Ensure(testTable(t), 0)
	rows := [][]value.Value{
		row(1, "a", "h1"),
		row(2, "b", strings.Repeat("x", 200)), // blows the budget
	}
	if _, err := d.InsertAll(rows); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if d.Rows() != 0 || d.NextID() != 1 {
		t.Fatalf("partial apply: rows=%d next=%d", d.Rows(), d.NextID())
	}
	if _, err := d.InsertAll([][]value.Value{row(1, "a", "h1")}); err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 1 || d.NextID() != 2 {
		t.Fatalf("after retry: rows=%d next=%d", d.Rows(), d.NextID())
	}
}
