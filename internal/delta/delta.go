// Package delta is GhostDB's live-mutation layer: a per-table RAM store
// of post-build inserted and updated rows plus a tombstone set of
// deleted identifiers, layered over the write-once flash column files.
//
// The flash constraint makes the base segments immutable, so all DML
// after the bulk load lands here, in the style of Bertossi & Li's
// null-based virtual updates: queries answer as if the mutations were
// applied while the base data stays physically untouched. The hidden
// part of every delta row (hidden column values, identifiers and
// tombstones) lives in the smart USB device's RAM and is charged against
// its arena — the device cannot hold an unbounded delta, which is
// exactly the pressure that forces a CHECKPOINT. Visible column values
// of delta rows stay in host memory on the untrusted side, mirroring the
// visible/hidden split of the base store.
//
// Identifiers stay dense and positional: an inserted row takes the next
// identifier after the current maximum; an updated base row keeps its
// identifier and shadows the base version; a deleted identifier is
// tombstoned and never reused. CHECKPOINT (in internal/core) merges the
// delta into fresh flash segments, renumbering survivors densely, and
// releases every grant this package holds.
package delta

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/value"
)

// tombstoneBytes is the device-RAM cost of one tombstoned identifier.
const tombstoneBytes = 4

// idBytes is the device-RAM cost of keying one delta-resident row.
const idBytes = 4

// Store holds the deltas of every table of one database, charging the
// hidden share against the device RAM arena. It is not internally
// locked: the engine serializes all access under its device gate.
type Store struct {
	arena  *ram.Arena
	tables map[string]*Table // lower-cased name -> delta
}

// NewStore returns an empty delta store charging hidden bytes to arena.
func NewStore(arena *ram.Arena) *Store {
	return &Store{arena: arena, tables: map[string]*Table{}}
}

// Ensure returns the table's delta, creating it on first mutation.
func (s *Store) Ensure(t *schema.Table, baseRows int) *Table {
	key := strings.ToLower(t.Name)
	if d, ok := s.tables[key]; ok {
		return d
	}
	d := &Table{
		sch:      t,
		arena:    s.arena,
		baseRows: baseRows,
		nextID:   uint32(baseRows) + 1,
		rows:     map[uint32][]value.Value{},
		tombs:    map[uint32]struct{}{},
	}
	s.tables[key] = d
	return d
}

// Get returns the table's delta if it has one (case-insensitive).
func (s *Store) Get(name string) (*Table, bool) {
	d, ok := s.tables[strings.ToLower(name)]
	return d, ok
}

// Dirty reports whether any table carries delta rows or tombstones.
func (s *Store) Dirty() bool {
	for _, d := range s.tables {
		if d.Dirty() {
			return true
		}
	}
	return false
}

// Entries counts delta rows plus tombstones across all tables — the
// quantity the deltalimit auto-checkpoint knob bounds.
func (s *Store) Entries() int {
	n := 0
	for _, d := range s.tables {
		n += len(d.rows) + len(d.tombs)
	}
	return n
}

// DeviceBytes reports the hidden share currently charged to the arena.
func (s *Store) DeviceBytes() int64 {
	var n int64
	for _, d := range s.tables {
		n += d.deviceBytes
	}
	return n
}

// HostBytes reports the visible share held in host memory.
func (s *Store) HostBytes() int64 {
	var n int64
	for _, d := range s.tables {
		n += d.hostBytes
	}
	return n
}

// Tables returns the per-table deltas sorted by table name.
func (s *Store) Tables() []*Table {
	out := make([]*Table, 0, len(s.tables))
	for _, d := range s.tables {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sch.Name < out[j].sch.Name })
	return out
}

// ReleaseAll frees every RAM grant and empties the store. The engine
// calls it when a CHECKPOINT has merged the delta into flash.
func (s *Store) ReleaseAll() {
	for _, d := range s.tables {
		d.grant.Free()
	}
	s.tables = map[string]*Table{}
}

// Table is one table's RAM-resident delta.
type Table struct {
	sch      *schema.Table
	arena    *ram.Arena
	baseRows int
	nextID   uint32 // next dense primary key (never reused)

	// rows holds the delta-resident row images keyed by identifier: an
	// id <= baseRows shadows (overrides) the base version, an id beyond
	// it is a post-build insert. Values are in schema column order.
	rows  map[uint32][]value.Value
	tombs map[uint32]struct{}

	deviceBytes int64 // hidden share, covered by grant
	hostBytes   int64 // visible share, host memory
	grant       *ram.Grant
}

// Schema returns the catalog table this delta shadows.
func (t *Table) Schema() *schema.Table { return t.sch }

// Name returns the table name.
func (t *Table) Name() string { return t.sch.Name }

// BaseRows reports the immutable base segment's cardinality.
func (t *Table) BaseRows() int { return t.baseRows }

// NextID returns the next dense primary key an INSERT must carry.
func (t *Table) NextID() uint32 { return t.nextID }

// MaxID returns the highest identifier ever assigned.
func (t *Table) MaxID() uint32 { return t.nextID - 1 }

// Rows reports the number of delta-resident row images.
func (t *Table) Rows() int { return len(t.rows) }

// Tombstones reports the number of tombstoned identifiers.
func (t *Table) Tombstones() int { return len(t.tombs) }

// Dirty reports whether the delta holds anything.
func (t *Table) Dirty() bool { return len(t.rows) > 0 || len(t.tombs) > 0 }

// DeviceBytes reports the hidden share charged to the device arena.
func (t *Table) DeviceBytes() int64 { return t.deviceBytes }

// HostBytes reports the visible share held in host memory.
func (t *Table) HostBytes() int64 { return t.hostBytes }

// Row returns the delta image of id, if the row is delta-resident.
func (t *Table) Row(id uint32) ([]value.Value, bool) {
	r, ok := t.rows[id]
	return r, ok
}

// Tombstoned reports whether id has been deleted.
func (t *Table) Tombstoned(id uint32) bool {
	_, ok := t.tombs[id]
	return ok
}

// Shadowed reports whether the base row id is dead for the base
// pipeline: tombstoned, or shadowed by a delta image with newer values.
// The climbing indexes, Bloom filters and SKTs answer for the base
// segments only, so every shadowed identifier must be subtracted from
// their streams and re-evaluated against the delta.
func (t *Table) Shadowed(id uint32) bool {
	if _, ok := t.tombs[id]; ok {
		return true
	}
	if int(id) > t.baseRows {
		return false // never in the base segment
	}
	_, ok := t.rows[id]
	return ok
}

// ShadowedBaseIDs returns the sorted base identifiers that are dead for
// the base pipeline (tombstoned or shadowed).
func (t *Table) ShadowedBaseIDs() []uint32 {
	var out []uint32
	for id := range t.rows {
		if int(id) <= t.baseRows {
			out = append(out, id)
		}
	}
	for id := range t.tombs {
		if int(id) <= t.baseRows {
			if _, dup := t.rows[id]; !dup {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeltaIDs returns the sorted identifiers of delta-resident rows.
func (t *Table) DeltaIDs() []uint32 {
	out := make([]uint32, 0, len(t.rows))
	for id := range t.rows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// charge grows the table's grant by the row's hidden share (plus the
// identifier key) and books the visible share. The caller has validated
// the row; a failure means the device RAM budget is exhausted and the
// mutation must be rejected until a CHECKPOINT drains the delta.
func (t *Table) charge(row []value.Value, extraDevice int64) error {
	var dev, host int64 = extraDevice, 0
	if row != nil {
		rd, rh := t.rowBytes(row)
		dev += idBytes + rd
		host += rh
	}
	return t.chargeRaw(dev, host)
}

// chargeRaw grows the grant by dev bytes and books host bytes.
func (t *Table) chargeRaw(dev, host int64) error {
	if dev > 0 {
		if t.grant == nil {
			g, err := t.arena.Alloc(int(dev), "delta:"+t.sch.Name)
			if err != nil {
				return fmt.Errorf("delta: %s: %w (CHECKPOINT to drain the delta)", t.sch.Name, err)
			}
			t.grant = g
		} else if err := t.grant.Resize(int(t.deviceBytes + dev)); err != nil {
			return fmt.Errorf("delta: %s: %w (CHECKPOINT to drain the delta)", t.sch.Name, err)
		}
		t.deviceBytes += dev
	}
	t.hostBytes += host
	return nil
}

// Insert appends a post-build row whose primary key must be the next
// dense identifier. The row is stored as given (already coerced to
// column kinds by the engine).
func (t *Table) Insert(row []value.Value) (uint32, error) {
	id := t.nextID
	if err := t.charge(row, 0); err != nil {
		return 0, err
	}
	t.rows[id] = row
	t.nextID++
	return id, nil
}

// InsertAll appends rows atomically: either every row is charged and
// stored (identifiers assigned densely from NextID, first returned) or
// none is. Multi-row INSERT statements must not half-apply when the RAM
// budget runs out mid-statement.
func (t *Table) InsertAll(rows [][]value.Value) (uint32, error) {
	first := t.nextID
	var dev, host int64
	for _, row := range rows {
		rd, rh := t.rowBytes(row)
		dev += idBytes + rd
		host += rh
	}
	if err := t.chargeRaw(dev, host); err != nil {
		return 0, err
	}
	for _, row := range rows {
		t.rows[t.nextID] = row
		t.nextID++
	}
	return first, nil
}

// Apply stores an updated image for id, shadowing the base version (or
// replacing an earlier delta image). Replacing a resident image charges
// any growth of its hidden share; freed bytes of a shrinking image are
// not returned to the arena until CHECKPOINT — RAM free lists fragment;
// the checkpoint is what compacts.
func (t *Table) Apply(id uint32, row []value.Value) error {
	if t.Tombstoned(id) {
		return fmt.Errorf("delta: %s id %d is deleted", t.sch.Name, id)
	}
	if old, resident := t.rows[id]; !resident {
		if err := t.charge(row, 0); err != nil {
			return err
		}
	} else {
		oldDev, oldHost := t.rowBytes(old)
		newDev, newHost := t.rowBytes(row)
		if err := t.chargeRaw(max(0, newDev-oldDev), max(0, newHost-oldHost)); err != nil {
			return err
		}
	}
	t.rows[id] = row
	return nil
}

// rowBytes splits one row image's footprint into its hidden (device)
// and visible (host) shares, excluding the identifier key.
func (t *Table) rowBytes(row []value.Value) (dev, host int64) {
	for i, c := range t.sch.Columns {
		if c.Hidden {
			dev += int64(row[i].EncodedSize())
		} else {
			host += int64(row[i].EncodedSize())
		}
	}
	return dev, host
}

// Delete tombstones id, dropping any delta image it had.
func (t *Table) Delete(id uint32) error {
	if t.Tombstoned(id) {
		return fmt.Errorf("delta: %s id %d is already deleted", t.sch.Name, id)
	}
	if err := t.charge(nil, tombstoneBytes); err != nil {
		return err
	}
	delete(t.rows, id)
	t.tombs[id] = struct{}{}
	return nil
}
