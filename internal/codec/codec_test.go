package codec

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestIDListRoundTrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{},
		{0},
		{1},
		{1, 2, 3},
		{5, 5, 5}, // duplicates allowed
		{0, 1 << 20, 1 << 30, 1<<32 - 1},
	}
	for _, ids := range cases {
		enc := AppendIDList(nil, ids)
		if got := IDListSize(ids); got != len(enc) {
			t.Errorf("IDListSize(%v) = %d, want %d", ids, got, len(enc))
		}
		dec, err := DecodeIDList(enc, len(ids))
		if err != nil {
			t.Fatalf("DecodeIDList(%v): %v", ids, err)
		}
		if len(dec) != len(ids) {
			t.Fatalf("decoded %d ids, want %d", len(dec), len(ids))
		}
		for i := range ids {
			if dec[i] != ids[i] {
				t.Errorf("ids[%d] = %d, want %d", i, dec[i], ids[i])
			}
		}
	}
}

func TestUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsorted input")
		}
	}()
	AppendIDList(nil, []uint32{5, 3})
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeIDList([]byte{0x80}, 1); err == nil {
		t.Error("corrupt varint must error")
	}
	if _, err := DecodeIDList(nil, 2); err == nil {
		t.Error("short buffer must error")
	}
}

func TestListDecoderStreams(t *testing.T) {
	ids := []uint32{2, 7, 7, 100, 1 << 25}
	enc := AppendIDList(nil, ids)
	d := NewListDecoder(bytes.NewReader(enc), len(ids))
	for i, want := range ids {
		if got := d.Remaining(); got != len(ids)-i {
			t.Errorf("Remaining = %d, want %d", got, len(ids)-i)
		}
		id, ok, err := d.Next()
		if err != nil || !ok {
			t.Fatalf("Next[%d]: ok=%v err=%v", i, ok, err)
		}
		if id != want {
			t.Errorf("Next[%d] = %d, want %d", i, id, want)
		}
	}
	if _, ok, err := d.Next(); ok || err != nil {
		t.Errorf("exhausted decoder: ok=%v err=%v", ok, err)
	}
}

func TestListDecoderTruncated(t *testing.T) {
	enc := AppendIDList(nil, []uint32{1, 2, 3})
	d := NewListDecoder(bytes.NewReader(enc[:1]), 3)
	if _, ok, err := d.Next(); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	if _, _, err := d.Next(); err == nil {
		t.Error("truncated stream must error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		ids := append([]uint32(nil), raw...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		enc := AppendIDList(nil, ids)
		dec, err := DecodeIDList(enc, len(ids))
		if err != nil || len(dec) != len(ids) {
			return false
		}
		for i := range ids {
			if dec[i] != ids[i] {
				return false
			}
		}
		// Streaming decoder must agree with the slice decoder.
		sd := NewListDecoder(bytes.NewReader(enc), len(ids))
		for i := 0; ; i++ {
			id, ok, err := sd.Next()
			if err != nil {
				return false
			}
			if !ok {
				return i == len(ids)
			}
			if id != ids[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
