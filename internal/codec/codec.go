// Package codec implements the compact encodings GhostDB uses for index
// payloads on flash: delta-encoded varint lists of sorted row identifiers
// (the posting lists of climbing indexes) and small framing helpers.
//
// Lists are encoded as the first ID as a uvarint followed by uvarint deltas
// to the previous ID. The element count is stored out of band (in the index
// dictionary), which keeps the stream free of headers and lets a decoder
// stop exactly at the right element.
package codec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// AppendIDList appends the delta-varint encoding of ids (which must be
// sorted ascending) to dst and returns the extended slice. Duplicate IDs
// are preserved (encoded as zero deltas).
func AppendIDList(dst []byte, ids []uint32) []byte {
	prev := uint32(0)
	for i, id := range ids {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(id))
		} else {
			if id < prev {
				panic(fmt.Sprintf("codec: unsorted ID list: %d after %d", id, prev))
			}
			dst = binary.AppendUvarint(dst, uint64(id-prev))
		}
		prev = id
	}
	return dst
}

// IDListSize reports the encoded size of ids in bytes without encoding.
func IDListSize(ids []uint32) int {
	n := 0
	prev := uint32(0)
	for i, id := range ids {
		d := uint64(id)
		if i > 0 {
			d = uint64(id - prev)
		}
		n += uvarintLen(d)
		prev = id
	}
	return n
}

// DecodeIDList decodes count IDs from src. It is the slice-based
// counterpart of ListDecoder, used by tests and bulk loading.
func DecodeIDList(src []byte, count int) ([]uint32, error) {
	out := make([]uint32, 0, count)
	prev := uint32(0)
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("codec: corrupt ID list at element %d", i)
		}
		src = src[n:]
		if i == 0 {
			prev = uint32(v)
		} else {
			prev += uint32(v)
		}
		out = append(out, prev)
	}
	return out, nil
}

// ListDecoder streams a delta-varint ID list from an io.ByteReader. The
// byte reader is typically a flash extent reader with a one-page buffer,
// so decoding a long posting list never needs more than a page of RAM.
type ListDecoder struct {
	r         io.ByteReader
	remaining int
	prev      uint32
	first     bool
}

// NewListDecoder returns a decoder that will yield count IDs from r.
func NewListDecoder(r io.ByteReader, count int) *ListDecoder {
	d := &ListDecoder{}
	d.Reset(r, count)
	return d
}

// Reset re-initializes the decoder to yield count IDs from r, so embedded
// decoder values can be set up without a separate allocation.
func (d *ListDecoder) Reset(r io.ByteReader, count int) {
	*d = ListDecoder{r: r, remaining: count, first: true}
}

// Next returns the next ID. ok is false when the list is exhausted.
func (d *ListDecoder) Next() (id uint32, ok bool, err error) {
	if d.remaining <= 0 {
		return 0, false, nil
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, false, fmt.Errorf("codec: ID list read: %w", err)
	}
	if d.first {
		d.prev = uint32(v)
		d.first = false
	} else {
		d.prev += uint32(v)
	}
	d.remaining--
	return d.prev, true, nil
}

// Remaining reports how many IDs are left to decode.
func (d *ListDecoder) Remaining() int { return d.remaining }

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
