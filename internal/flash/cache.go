package flash

import (
	"fmt"

	"github.com/ghostdb/ghostdb/internal/storage"
)

// Cache is a small LRU page cache used for random flash access (SKT
// lookups, column fetches, climbing-index dictionary probes). The device
// has only a handful of frames — their RAM is charged against the device
// arena by the store layer that owns the cache.
type Cache struct {
	d      storage.Backend
	p      Params
	frames [][]byte
	pages  []int   // page number held by each frame, -1 when empty
	stamp  []int64 // last-use tick per frame
	tick   int64

	hits   int64
	misses int64
}

// NewCache returns a cache with the given number of page frames.
func NewCache(d storage.Backend, frames int) (*Cache, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("flash: cache needs at least one frame, got %d", frames)
	}
	c := &Cache{
		d:      d,
		p:      d.Params(),
		frames: make([][]byte, frames),
		pages:  make([]int, frames),
		stamp:  make([]int64, frames),
	}
	for i := range c.frames {
		c.frames[i] = make([]byte, c.p.PageSize)
		c.pages[i] = -1
	}
	return c, nil
}

// FootprintBytes reports the RAM the cache frames occupy.
func (c *Cache) FootprintBytes() int { return len(c.frames) * c.p.PageSize }

// Hits reports cache hits since creation or the last ResetStats.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports cache misses (each miss is one flash page read).
func (c *Cache) Misses() int64 { return c.misses }

// ResetStats zeroes the hit/miss counters.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Invalidate drops all cached pages. Must be called after the scratch
// space is erased, since erased pages would otherwise read stale.
func (c *Cache) Invalidate() {
	for i := range c.pages {
		c.pages[i] = -1
	}
}

// page returns the frame holding the given page, loading it on a miss.
func (c *Cache) page(page int) ([]byte, error) {
	c.tick++
	victim := 0
	for i, p := range c.pages {
		if p == page {
			c.hits++
			c.stamp[i] = c.tick
			return c.frames[i], nil
		}
		if c.stamp[i] < c.stamp[victim] {
			victim = i
		}
	}
	c.misses++
	if err := c.d.ReadPage(page, c.frames[victim]); err != nil {
		return nil, err
	}
	c.pages[victim] = page
	c.stamp[victim] = c.tick
	return c.frames[victim], nil
}

// ReadAt fills dst from addr, serving whole pages through the cache.
func (c *Cache) ReadAt(dst []byte, addr int64) error {
	if addr < 0 || addr+int64(len(dst)) > c.p.TotalBytes() {
		return fmt.Errorf("%w: cached read [%d, %d)", ErrOutOfRange, addr, addr+int64(len(dst)))
	}
	ps := int64(c.p.PageSize)
	for len(dst) > 0 {
		page := int(addr / ps)
		off := int(addr % ps)
		frame, err := c.page(page)
		if err != nil {
			return err
		}
		n := copy(dst, frame[off:])
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}
