// Package flash simulates the smart USB device's external NAND flash store
// (Figure 2 of the GhostDB paper): a gigabyte-class array of pages grouped
// into erase blocks, where
//
//   - reads are page-granular and cheap,
//   - programs (writes) cost 3–10× a read and a page can be programmed only
//     once between erases (writes in place are precluded),
//   - erases work on whole blocks and are the most expensive operation.
//
// Every operation charges its latency to the shared simulated clock, so
// higher layers measure query cost in deterministic device time. Blocks are
// materialized lazily, so a simulated multi-gigabyte device only consumes
// host memory for the pages actually programmed.
package flash

import (
	"errors"
	"fmt"
	"time"

	"github.com/ghostdb/ghostdb/internal/sim"
)

// Errors reported by the device.
var (
	ErrNotErased  = errors.New("flash: page programmed twice without erase")
	ErrOutOfRange = errors.New("flash: address out of range")
	ErrPageTooBig = errors.New("flash: program data exceeds page size")
	ErrSpaceFull  = errors.New("flash: space exhausted")
	ErrWriterOpen = errors.New("flash: space already has an open writer")
	ErrWriterDone = errors.New("flash: writer already closed")
)

// Params describes the flash geometry and cost model.
type Params struct {
	PageSize      int // bytes per page
	PagesPerBlock int // pages per erase block
	Blocks        int // erase blocks on the device

	ReadFixed   time.Duration // fixed cost of a page access
	ReadPerByte time.Duration // per byte streamed out of the page
	ProgFixed   time.Duration // fixed cost of programming a page
	ProgPerByte time.Duration // per byte programmed
	EraseFixed  time.Duration // cost of erasing one block
}

// Validate checks the geometry for sanity.
func (p Params) Validate() error {
	if p.PageSize <= 0 || p.PagesPerBlock <= 0 || p.Blocks <= 0 {
		return fmt.Errorf("flash: invalid geometry %d/%d/%d", p.PageSize, p.PagesPerBlock, p.Blocks)
	}
	if p.ReadFixed < 0 || p.ProgFixed < 0 || p.EraseFixed < 0 {
		return errors.New("flash: negative latencies")
	}
	return nil
}

// PageCount reports the total number of pages.
func (p Params) PageCount() int { return p.PagesPerBlock * p.Blocks }

// TotalBytes reports the device capacity in bytes.
func (p Params) TotalBytes() int64 {
	return int64(p.PageSize) * int64(p.PageCount())
}

// Stats counts flash operations and the simulated time they consumed.
type Stats struct {
	PageReads       int64
	PagesProgrammed int64
	BlockErases     int64
	BytesRead       int64
	BytesProgrammed int64
	ReadTime        time.Duration
	ProgTime        time.Duration
	EraseTime       time.Duration
}

// Sub returns the difference s - o, used to attribute stats to a query.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PageReads:       s.PageReads - o.PageReads,
		PagesProgrammed: s.PagesProgrammed - o.PagesProgrammed,
		BlockErases:     s.BlockErases - o.BlockErases,
		BytesRead:       s.BytesRead - o.BytesRead,
		BytesProgrammed: s.BytesProgrammed - o.BytesProgrammed,
		ReadTime:        s.ReadTime - o.ReadTime,
		ProgTime:        s.ProgTime - o.ProgTime,
		EraseTime:       s.EraseTime - o.EraseTime,
	}
}

// Device is a simulated NAND flash chip. It is not safe for concurrent use.
type Device struct {
	p     Params
	clock *sim.Clock
	// blocks[i] == nil means block i is fully erased and unmaterialized.
	blocks []*block
	stats  Stats
}

type block struct {
	data       []byte // PagesPerBlock * PageSize
	programmed []bool // per page
}

// New returns a device with the given geometry, charging to clock.
func New(p Params, clock *sim.Clock) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, errors.New("flash: nil clock")
	}
	return &Device{p: p, clock: clock, blocks: make([]*block, p.Blocks)}, nil
}

// Params returns the device geometry and cost model.
func (d *Device) Params() Params { return d.p }

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (the flash content is untouched).
func (d *Device) ResetStats() { d.stats = Stats{} }

// ReadAt fills dst with the bytes at byte offset addr. Each distinct page
// touched charges one page access plus the per-byte streaming cost. Erased
// (never programmed) bytes read as 0xFF, matching NAND behaviour.
func (d *Device) ReadAt(dst []byte, addr int64) error {
	if addr < 0 || addr+int64(len(dst)) > d.p.TotalBytes() {
		return fmt.Errorf("%w: read [%d, %d)", ErrOutOfRange, addr, addr+int64(len(dst)))
	}
	ps := int64(d.p.PageSize)
	for len(dst) > 0 {
		page := addr / ps
		off := int(addr % ps)
		n := d.p.PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		d.chargeRead(n)
		d.copyOut(dst[:n], int(page), off)
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}

// ReadPage reads one full page into dst (which must be PageSize long).
func (d *Device) ReadPage(page int, dst []byte) error {
	if page < 0 || page >= d.p.PageCount() {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	if len(dst) != d.p.PageSize {
		return fmt.Errorf("flash: ReadPage buffer %d, want %d", len(dst), d.p.PageSize)
	}
	d.chargeRead(d.p.PageSize)
	d.copyOut(dst, page, 0)
	return nil
}

// ProgramPage writes data (at most one page) to the given page. The page
// must be in the erased state; NAND forbids reprogramming.
func (d *Device) ProgramPage(page int, data []byte) error {
	if page < 0 || page >= d.p.PageCount() {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, page)
	}
	if len(data) > d.p.PageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageTooBig, len(data), d.p.PageSize)
	}
	b := d.materialize(page / d.p.PagesPerBlock)
	slot := page % d.p.PagesPerBlock
	if b.programmed[slot] {
		return fmt.Errorf("%w: page %d", ErrNotErased, page)
	}
	b.programmed[slot] = true
	pageStart := slot * d.p.PageSize
	copy(b.data[pageStart:], data)
	// Recycled blocks may hold stale bytes past the programmed prefix;
	// pad the page tail so it reads back as erased NAND.
	for i := pageStart + len(data); i < pageStart+d.p.PageSize; i++ {
		b.data[i] = 0xFF
	}
	d.stats.PagesProgrammed++
	d.stats.BytesProgrammed += int64(len(data))
	t := d.p.ProgFixed + time.Duration(len(data))*d.p.ProgPerByte
	d.stats.ProgTime += t
	d.clock.Advance(t)
	return nil
}

// EraseBlock resets every page of the block to the erased (0xFF) state.
// A materialized block keeps its host allocation: only the per-page
// programmed flags are cleared (reads of unprogrammed pages are gated in
// copyOut), so scratch-heavy workloads recycle block buffers instead of
// reallocating and re-filling them on every query. This changes host
// memory behaviour only; the simulated erase charge is identical.
func (d *Device) EraseBlock(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= d.p.Blocks {
		return fmt.Errorf("%w: block %d", ErrOutOfRange, blockIdx)
	}
	if b := d.blocks[blockIdx]; b != nil {
		for i := range b.programmed {
			b.programmed[i] = false
		}
	}
	d.stats.BlockErases++
	d.stats.EraseTime += d.p.EraseFixed
	d.clock.Advance(d.p.EraseFixed)
	return nil
}

// PageProgrammed reports whether the page has been programmed since the
// last erase of its block.
func (d *Device) PageProgrammed(page int) bool {
	b := d.blocks[page/d.p.PagesPerBlock]
	if b == nil {
		return false
	}
	return b.programmed[page%d.p.PagesPerBlock]
}

func (d *Device) chargeRead(n int) {
	d.stats.PageReads++
	d.stats.BytesRead += int64(n)
	t := d.p.ReadFixed + time.Duration(n)*d.p.ReadPerByte
	d.stats.ReadTime += t
	d.clock.Advance(t)
}

func (d *Device) copyOut(dst []byte, page, off int) {
	b := d.blocks[page/d.p.PagesPerBlock]
	slot := page % d.p.PagesPerBlock
	if b == nil || !b.programmed[slot] {
		for i := range dst {
			dst[i] = 0xFF
		}
		return
	}
	start := slot*d.p.PageSize + off
	copy(dst, b.data[start:start+len(dst)])
}

func (d *Device) materialize(blockIdx int) *block {
	b := d.blocks[blockIdx]
	if b == nil {
		// No 0xFF fill: reads are gated on the programmed flags, and
		// ProgramPage pads the tail of each page it writes.
		b = &block{
			data:       make([]byte, d.p.PagesPerBlock*d.p.PageSize),
			programmed: make([]bool, d.p.PagesPerBlock),
		}
		d.blocks[blockIdx] = b
	}
	return b
}
