// Package flash holds the backend-agnostic flash allocation layer: the
// append-only Space/Writer machinery, the streaming Reader and the LRU
// page Cache the engine uses on top of any storage.Backend. The NAND
// device model itself lives behind that interface — storage/simflash is
// the simulated chip with the deterministic cost model, storage/filedev
// the persistent real-file device — and everything in this package works
// identically over either.
//
// The geometry/cost types and device-level errors are re-exported from
// internal/storage so the many layers above (device profiles, planner
// cost arithmetic, stats reports) keep their vocabulary.
package flash

import (
	"errors"

	"github.com/ghostdb/ghostdb/internal/storage"
)

// Params describes a backend's geometry and cost model.
type Params = storage.Params

// Stats counts backend operations and the simulated time they consumed.
type Stats = storage.Stats

// Device-level errors, shared across backends.
var (
	ErrNotErased  = storage.ErrNotErased
	ErrOutOfRange = storage.ErrOutOfRange
	ErrPageTooBig = storage.ErrPageTooBig
	// ErrCorrupt reports a page whose stored content no longer matches
	// its out-of-band CRC32 (torn write, bit rot).
	ErrCorrupt = storage.ErrCorrupt
)

// Allocator-level errors.
var (
	ErrSpaceFull  = errors.New("flash: space exhausted")
	ErrWriterOpen = errors.New("flash: space already has an open writer")
	ErrWriterDone = errors.New("flash: writer already closed")
)
