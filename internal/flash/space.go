package flash

import (
	"fmt"
	"sync"

	"github.com/ghostdb/ghostdb/internal/storage"
)

// writerPool recycles Writer structs and their page buffers across
// spills. A Writer is recycled only on successful Close; callers must
// drop it afterwards (guarded by the closed flag).
var writerPool sync.Pool

// Extent identifies a contiguous byte region on flash.
type Extent struct {
	Start int64 // absolute byte offset of the first byte
	Len   int64 // region length in bytes
}

// End returns the byte offset one past the extent.
func (e Extent) End() int64 { return e.Start + e.Len }

// Space is an append-only allocator over a contiguous range of blocks.
// GhostDB partitions the flash into a main space (database and indexes,
// written once during the secure bulk load) and a scratch space (sort runs
// and spilled intermediates, erased between uses). Regions are page
// aligned; within a region bytes are contiguous.
type Space struct {
	d          storage.Backend
	p          Params
	firstBlock int
	blocks     int
	nextPage   int // absolute page index of the next free page
	writerOpen bool
}

// NewSpace carves a space out of blocks [firstBlock, firstBlock+blocks).
func NewSpace(d storage.Backend, firstBlock, blocks int) (*Space, error) {
	p := d.Params()
	if firstBlock < 0 || blocks <= 0 || firstBlock+blocks > p.Blocks {
		return nil, fmt.Errorf("flash: space [%d,%d) outside device", firstBlock, firstBlock+blocks)
	}
	return &Space{
		d:          d,
		p:          p,
		firstBlock: firstBlock,
		blocks:     blocks,
		nextPage:   firstBlock * p.PagesPerBlock,
	}, nil
}

// Device returns the underlying storage backend.
func (s *Space) Device() storage.Backend { return s.d }

func (s *Space) limitPage() int {
	return (s.firstBlock + s.blocks) * s.p.PagesPerBlock
}

// UsedPages reports the number of pages consumed so far.
func (s *Space) UsedPages() int {
	return s.nextPage - s.firstBlock*s.p.PagesPerBlock
}

// UsedBytes reports the page-aligned footprint of the space.
func (s *Space) UsedBytes() int64 {
	return int64(s.UsedPages()) * int64(s.p.PageSize)
}

// FreeBytes reports how many bytes can still be appended.
func (s *Space) FreeBytes() int64 {
	return int64(s.limitPage()-s.nextPage) * int64(s.p.PageSize)
}

// AppendRegion writes data as a new page-aligned region and returns its
// extent. Used by the bulk loader, which builds regions in host memory
// (the initial load happens "in a secure setting" per the paper, outside
// the device RAM budget).
func (s *Space) AppendRegion(data []byte) (Extent, error) {
	w, err := s.NewWriter()
	if err != nil {
		return Extent{}, err
	}
	if _, err := w.Write(data); err != nil {
		w.abort()
		return Extent{}, err
	}
	return w.Close()
}

// ReleaseWriter force-abandons any open writer without flushing. The
// engine calls it when unwinding a failed operation: the error path
// that abandoned the writer cannot close it, and the space is about to
// be reset anyway. Pages the writer already programmed stay consumed
// until the space is reset.
func (s *Space) ReleaseWriter() { s.writerOpen = false }

// Reset erases every block the space has touched and rewinds it. Used for
// the scratch space between queries and between multi-pass phases.
func (s *Space) Reset() error {
	if s.writerOpen {
		return ErrWriterOpen
	}
	ppb := s.p.PagesPerBlock
	usedBlocks := (s.UsedPages() + ppb - 1) / ppb
	for i := 0; i < usedBlocks; i++ {
		if err := s.d.EraseBlock(s.firstBlock + i); err != nil {
			return err
		}
	}
	s.nextPage = s.firstBlock * ppb
	return nil
}

// Writer streams bytes into a new region of a space, programming full
// pages as they fill. Only one writer may be open per space at a time.
// The writer's page buffer is the caller's RAM responsibility (one page).
type Writer struct {
	s      *Space
	buf    []byte
	start  int64
	length int64
	closed bool
}

// NewWriter opens a streaming writer positioned at the next free page.
func (s *Space) NewWriter() (*Writer, error) {
	if s.writerOpen {
		return nil, ErrWriterOpen
	}
	s.writerOpen = true
	start := int64(s.nextPage) * int64(s.p.PageSize)
	if v := writerPool.Get(); v != nil {
		w := v.(*Writer)
		if cap(w.buf) >= s.p.PageSize {
			*w = Writer{s: s, buf: w.buf[:0], start: start}
			return w, nil
		}
	}
	return &Writer{
		s:     s,
		buf:   make([]byte, 0, s.p.PageSize),
		start: start,
	}, nil
}

// Write buffers p, programming pages as they fill. It returns ErrSpaceFull
// when the space has no room left.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrWriterDone
	}
	total := 0
	ps := w.s.p.PageSize
	for len(p) > 0 {
		room := ps - len(w.buf)
		take := room
		if take > len(p) {
			take = len(p)
		}
		w.buf = append(w.buf, p[:take]...)
		p = p[take:]
		total += take
		w.length += int64(take)
		if len(w.buf) == ps {
			if err := w.flushPage(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Len reports the number of bytes written so far.
func (w *Writer) Len() int64 { return w.length }

// Close flushes the final partial page and returns the region's extent.
func (w *Writer) Close() (Extent, error) {
	if w.closed {
		return Extent{}, ErrWriterDone
	}
	if len(w.buf) > 0 {
		if err := w.flushPage(); err != nil {
			w.abort()
			return Extent{}, err
		}
	}
	w.closed = true
	w.s.writerOpen = false
	ext := Extent{Start: w.start, Len: w.length}
	writerPool.Put(w)
	return ext, nil
}

func (w *Writer) flushPage() error {
	if w.s.nextPage >= w.s.limitPage() {
		return fmt.Errorf("%w: %d pages", ErrSpaceFull, w.s.UsedPages())
	}
	if err := w.s.d.ProgramPage(w.s.nextPage, w.buf); err != nil {
		return err
	}
	w.s.nextPage++
	w.buf = w.buf[:0]
	return nil
}

func (w *Writer) abort() {
	w.closed = true
	w.s.writerOpen = false
}
