package flash

import (
	"fmt"
	"io"
	"sync"

	"github.com/ghostdb/ghostdb/internal/storage"
)

// readerPool recycles Reader structs (and their page buffers) across
// streams; one query can open dozens of short-lived readers.
var readerPool sync.Pool

// Reader streams an extent sequentially through a single-page buffer,
// implementing io.Reader and io.ByteReader. It is the device-side way of
// scanning a region (posting list, sort run, spilled intermediate) with
// one page of RAM; the caller accounts that page against the device arena.
type Reader struct {
	d   storage.Backend
	p   Params
	ext Extent
	off int64 // read position within the extent

	buf      []byte // page-sized scratch
	bufAddr  int64  // absolute address of buf[0]; -1 when empty
	bufValid int    // valid bytes in buf
}

// NewReader returns a reader over ext. The reader and its page buffer
// come from a pool; callers charge PageSize bytes to their arena per
// concurrently open reader (exec does this via its stream grants) and
// should call Release when done streaming so both are recycled.
func NewReader(d storage.Backend, ext Extent) *Reader {
	p := d.Params()
	n := p.PageSize
	if v := readerPool.Get(); v != nil {
		r := v.(*Reader)
		if cap(r.buf) >= n {
			*r = Reader{d: d, p: p, ext: ext, buf: r.buf[:n], bufAddr: -1}
			return r
		}
	}
	return &Reader{d: d, p: p, ext: ext, buf: make([]byte, n), bufAddr: -1}
}

// Release returns the reader (and its page buffer) to the pool. The
// reader must not be used afterwards; Release is idempotent (the nil
// device marks a released reader).
func (r *Reader) Release() {
	if r.d == nil {
		return
	}
	r.d = nil
	readerPool.Put(r)
}

// Remaining reports the bytes left to read.
func (r *Reader) Remaining() int64 { return r.ext.Len - r.off }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.Remaining() <= 0 {
		return 0, io.EOF
	}
	total := 0
	for len(p) > 0 && r.Remaining() > 0 {
		if err := r.fill(); err != nil {
			return total, err
		}
		abs := r.ext.Start + r.off
		within := int(abs - r.bufAddr)
		n := r.bufValid - within
		if int64(n) > r.Remaining() {
			n = int(r.Remaining())
		}
		if n > len(p) {
			n = len(p)
		}
		copy(p, r.buf[within:within+n])
		p = p[n:]
		r.off += int64(n)
		total += n
	}
	return total, nil
}

// ReadByte implements io.ByteReader, the interface codec.ListDecoder needs.
func (r *Reader) ReadByte() (byte, error) {
	if r.Remaining() <= 0 {
		return 0, io.EOF
	}
	if err := r.fill(); err != nil {
		return 0, err
	}
	abs := r.ext.Start + r.off
	b := r.buf[abs-r.bufAddr]
	r.off++
	return b, nil
}

// Skip advances the read position by n bytes without touching flash for
// the skipped pages.
func (r *Reader) Skip(n int64) error {
	if n < 0 || n > r.Remaining() {
		return fmt.Errorf("flash: skip %d with %d remaining", n, r.Remaining())
	}
	r.off += n
	return nil
}

// fill ensures the buffer holds the page containing the current position.
func (r *Reader) fill() error {
	abs := r.ext.Start + r.off
	ps := int64(r.p.PageSize)
	pageStart := (abs / ps) * ps
	if r.bufAddr == pageStart && int(abs-pageStart) < r.bufValid {
		return nil
	}
	// Read the whole page: the device streams full pages; partial reads of
	// the final page of the extent still cost a page access.
	n := ps
	if pageStart+n > r.p.TotalBytes() {
		n = r.p.TotalBytes() - pageStart
	}
	if err := r.d.ReadAt(r.buf[:n], pageStart); err != nil {
		return err
	}
	r.bufAddr = pageStart
	r.bufValid = int(n)
	return nil
}
