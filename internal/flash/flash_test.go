package flash

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/storage/simflash"
)

func testParams() Params {
	return Params{
		PageSize:      128,
		PagesPerBlock: 4,
		Blocks:        16,
		ReadFixed:     10 * time.Microsecond,
		ReadPerByte:   10 * time.Nanosecond,
		ProgFixed:     50 * time.Microsecond,
		ProgPerByte:   50 * time.Nanosecond,
		EraseFixed:    500 * time.Microsecond,
	}
}

// newTestDevice backs the allocator tests with the simulated device —
// the reference storage.Backend implementation.
func newTestDevice(t *testing.T) (*simflash.Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	d, err := simflash.New(testParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	return d, clock
}

func TestSpaceAppendAndReset(t *testing.T) {
	d, _ := newTestDevice(t)
	s, err := NewSpace(d, 2, 4) // pages 8..23
	if err != nil {
		t.Fatal(err)
	}
	e1, err := s.AppendRegion([]byte("hello flash"))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Start != 8*128 || e1.Len != 11 {
		t.Errorf("extent %+v", e1)
	}
	// Regions are page aligned: the next region starts on a fresh page.
	e2, err := s.AppendRegion(bytes.Repeat([]byte{7}, 200))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Start != 9*128 {
		t.Errorf("second region starts at %d, want %d", e2.Start, 9*128)
	}
	if s.UsedPages() != 3 {
		t.Errorf("UsedPages = %d, want 3", s.UsedPages())
	}
	got := make([]byte, 11)
	if err := d.ReadAt(got, e1.Start); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello flash" {
		t.Errorf("read %q", got)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if s.UsedPages() != 0 {
		t.Errorf("UsedPages after reset = %d", s.UsedPages())
	}
	// Space is reusable after reset.
	if _, err := s.AppendRegion([]byte("again")); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
}

func TestSpaceBounds(t *testing.T) {
	d, _ := newTestDevice(t)
	if _, err := NewSpace(d, 15, 2); err == nil {
		t.Error("space past device end accepted")
	}
	if _, err := NewSpace(d, -1, 2); err == nil {
		t.Error("negative first block accepted")
	}
	s, _ := NewSpace(d, 0, 1) // 4 pages = 512 bytes
	if _, err := s.AppendRegion(make([]byte, 600)); !errors.Is(err, ErrSpaceFull) {
		t.Errorf("overflow: %v, want ErrSpaceFull", err)
	}
}

func TestSpaceSingleWriter(t *testing.T) {
	d, _ := newTestDevice(t)
	s, _ := NewSpace(d, 0, 2)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewWriter(); !errors.Is(err, ErrWriterOpen) {
		t.Errorf("second writer: %v", err)
	}
	if err := s.Reset(); !errors.Is(err, ErrWriterOpen) {
		t.Errorf("reset with open writer: %v", err)
	}
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}
	ext, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len != 3 {
		t.Errorf("extent %+v", ext)
	}
	if _, err := w.Close(); !errors.Is(err, ErrWriterDone) {
		t.Errorf("double close: %v", err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrWriterDone) {
		t.Errorf("write after close: %v", err)
	}
	if _, err := s.NewWriter(); err != nil {
		t.Errorf("writer after close: %v", err)
	}
}

func TestReaderStreams(t *testing.T) {
	d, _ := newTestDevice(t)
	s, _ := NewSpace(d, 0, 8)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	ext, err := s.AppendRegion(payload)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(d, ext)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("streamed bytes differ")
	}
	if _, err := r.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read past end: %v, want EOF", err)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		t.Errorf("ReadByte past end: %v, want EOF", err)
	}
}

func TestReaderByteAndSkip(t *testing.T) {
	d, _ := newTestDevice(t)
	s, _ := NewSpace(d, 0, 8)
	ext, err := s.AppendRegion([]byte{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(d, ext)
	b, err := r.ReadByte()
	if err != nil || b != 10 {
		t.Fatalf("ReadByte = %d, %v", b, err)
	}
	if err := r.Skip(2); err != nil {
		t.Fatal(err)
	}
	b, err = r.ReadByte()
	if err != nil || b != 40 {
		t.Fatalf("after skip ReadByte = %d, %v", b, err)
	}
	if err := r.Skip(5); err == nil {
		t.Error("skip past end accepted")
	}
	if r.Remaining() != 1 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestReaderChargesOncePerPage(t *testing.T) {
	d, _ := newTestDevice(t)
	s, _ := NewSpace(d, 0, 8)
	ext, err := s.AppendRegion(make([]byte, 300)) // 3 pages
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	r := NewReader(d, ext)
	for {
		if _, err := r.ReadByte(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().PageReads; got != 3 {
		t.Errorf("byte-wise scan cost %d page reads, want 3", got)
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	d, _ := newTestDevice(t)
	for p := 0; p < 4; p++ {
		if err := d.ProgramPage(p, bytes.Repeat([]byte{byte(p)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewCache(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FootprintBytes() != 256 {
		t.Errorf("FootprintBytes = %d", c.FootprintBytes())
	}
	buf := make([]byte, 4)
	// page 0 (miss), page 0 (hit), page 1 (miss), page 2 (miss, evicts 0), page 0 (miss)
	reads := []int64{0, 0, 128, 256, 0}
	for _, addr := range reads {
		if err := c.ReadAt(buf, addr); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(addr/128) {
			t.Errorf("addr %d read %d", addr, buf[0])
		}
	}
	if c.Hits() != 1 || c.Misses() != 4 {
		t.Errorf("hits=%d misses=%d, want 1/4", c.Hits(), c.Misses())
	}
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("ResetStats did not zero")
	}
	c.Invalidate()
	if err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 1 {
		t.Error("Invalidate did not drop pages")
	}
	if _, err := NewCache(d, 0); err == nil {
		t.Error("zero-frame cache accepted")
	}
	if err := c.ReadAt(make([]byte, 1), d.Params().TotalBytes()); err == nil {
		t.Error("cached read past end accepted")
	}
}

func TestCacheCrossPageRead(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(0, bytes.Repeat([]byte{1}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(1, bytes.Repeat([]byte{2}, 128)); err != nil {
		t.Fatal(err)
	}
	c, _ := NewCache(d, 4)
	got := make([]byte, 10)
	if err := c.ReadAt(got, 123); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 1, 1, 1, 2, 2, 2, 2, 2}
	if !bytes.Equal(got, want) {
		t.Errorf("cross-page cached read % x", got)
	}
}

func TestQuickWriterReaderRoundTrip(t *testing.T) {
	f := func(chunks [][]byte) bool {
		clock := sim.NewClock()
		p := testParams()
		p.Blocks = 64
		d, err := simflash.New(p, clock)
		if err != nil {
			return false
		}
		s, err := NewSpace(d, 0, 64)
		if err != nil {
			return false
		}
		w, err := s.NewWriter()
		if err != nil {
			return false
		}
		var want []byte
		for _, c := range chunks {
			if len(want)+len(c) > 6000 {
				break
			}
			if _, err := w.Write(c); err != nil {
				return false
			}
			want = append(want, c...)
		}
		ext, err := w.Close()
		if err != nil || ext.Len != int64(len(want)) {
			return false
		}
		got, err := io.ReadAll(NewReader(d, ext))
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
