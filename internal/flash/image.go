package flash

import "fmt"

// Image is a host-side deep copy of a flash device's persistent state —
// the page contents, programmed flags and out-of-band checksums that
// survive a power cut. The recovery path (core.Recover) reads committed
// data back out of an Image; reads are forensic and free (no simulated
// clock is charged), but every touched page is still verified against
// its OOB checksum so corruption cannot slip into a recovered database.
type Image struct {
	p      Params
	blocks []*imageBlock
}

type imageBlock struct {
	data       []byte
	programmed []bool
	crc        []uint32
	hasCRC     []bool
}

// Image snapshots the device's persistent state. Only materialized
// blocks are copied, so the host cost is proportional to the data
// actually programmed.
func (d *Device) Image() *Image {
	img := &Image{p: d.p, blocks: make([]*imageBlock, len(d.blocks))}
	for i, b := range d.blocks {
		if b == nil {
			continue
		}
		ib := &imageBlock{
			data:       append([]byte(nil), b.data...),
			programmed: append([]bool(nil), b.programmed...),
			crc:        append([]uint32(nil), b.crc...),
			hasCRC:     append([]bool(nil), b.hasCRC...),
		}
		img.blocks[i] = ib
	}
	return img
}

// Params returns the imaged device's geometry.
func (img *Image) Params() Params { return img.p }

// PageProgrammed reports whether the imaged page holds programmed data.
func (img *Image) PageProgrammed(page int) bool {
	if page < 0 || page >= img.p.PageCount() {
		return false
	}
	b := img.blocks[page/img.p.PagesPerBlock]
	return b != nil && b.programmed[page%img.p.PagesPerBlock]
}

// verify checks one programmed page against its OOB checksum.
func (img *Image) verify(page int) error {
	b := img.blocks[page/img.p.PagesPerBlock]
	if b == nil {
		return nil
	}
	slot := page % img.p.PagesPerBlock
	if !b.programmed[slot] || !b.hasCRC[slot] {
		return nil
	}
	start := slot * img.p.PageSize
	if pageCRC(b.data[start:start+img.p.PageSize], img.p.PageSize) != b.crc[slot] {
		return fmt.Errorf("%w: page %d (block %d, page %d in block)", ErrCorrupt, page, page/img.p.PagesPerBlock, slot)
	}
	return nil
}

// ReadAt fills dst from the image at byte offset addr, verifying the OOB
// checksum of every page it touches. Erased bytes read as 0xFF.
func (img *Image) ReadAt(dst []byte, addr int64) error {
	if addr < 0 || addr+int64(len(dst)) > img.p.TotalBytes() {
		return fmt.Errorf("%w: read [%d, %d) of image [0, %d)", ErrOutOfRange, addr, addr+int64(len(dst)), img.p.TotalBytes())
	}
	ps := int64(img.p.PageSize)
	for len(dst) > 0 {
		page := int(addr / ps)
		off := int(addr % ps)
		n := img.p.PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if err := img.verify(page); err != nil {
			return err
		}
		b := img.blocks[page/img.p.PagesPerBlock]
		slot := page % img.p.PagesPerBlock
		if b == nil || !b.programmed[slot] {
			for i := 0; i < n; i++ {
				dst[i] = 0xFF
			}
		} else {
			start := slot*img.p.PageSize + off
			copy(dst, b.data[start:start+n])
		}
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}

// ReadPage returns a verified copy of one full page. The second result
// reports whether the page was programmed (an unprogrammed page reads as
// all 0xFF).
func (img *Image) ReadPage(page int) ([]byte, bool, error) {
	if page < 0 || page >= img.p.PageCount() {
		return nil, false, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, img.p.PageCount())
	}
	buf := make([]byte, img.p.PageSize)
	if !img.PageProgrammed(page) {
		for i := range buf {
			buf[i] = 0xFF
		}
		return buf, false, nil
	}
	if err := img.verify(page); err != nil {
		return nil, true, err
	}
	b := img.blocks[page/img.p.PagesPerBlock]
	start := (page % img.p.PagesPerBlock) * img.p.PageSize
	copy(buf, b.data[start:start+img.p.PageSize])
	return buf, true, nil
}
