// Package visible is the untrusted side of GhostDB: a columnar store on
// the public server / terminal holding every non-HIDDEN column plus the
// primary keys ("primary keys as well as visible fields can be stored at
// any place, like a public server or a personal computer", Section 2).
//
// The device delegates visible selections here and receives only sorted
// ID lists and (id, value) projection streams in return — data the spy can
// already see. The PC is a "standard computer", orders of magnitude faster
// than the secure chip, so its work is not charged to the simulated clock;
// the bus transfers it triggers are.
package visible

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Store holds the visible tables.
type Store struct {
	tables map[string]*Table
	order  []string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}}
}

// Table is one visible table: dense 1-based row IDs, columnar values.
type Table struct {
	Name string
	n    int
	cols map[string]*Column
}

// Column is one visible column.
type Column struct {
	Name string
	Kind value.Kind
	vals []value.Value
}

// CreateTable registers a table with the given cardinality.
func (s *Store) CreateTable(name string, rows int) (*Table, error) {
	key := strings.ToLower(name)
	if _, dup := s.tables[key]; dup {
		return nil, fmt.Errorf("visible: duplicate table %s", name)
	}
	if rows < 0 {
		return nil, fmt.Errorf("visible: negative cardinality for %s", name)
	}
	t := &Table{Name: name, n: rows, cols: map[string]*Column{}}
	s.tables[key] = t
	s.order = append(s.order, name)
	return t, nil
}

// Table returns the named table (case-insensitive).
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the tables in creation order.
func (s *Store) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, n := range s.order {
		t, _ := s.Table(n)
		out = append(out, t)
	}
	return out
}

// AddColumn attaches vals (one per row, in ID order) as a column. The
// slice is retained, not copied — datasets are immutable once loaded.
func (t *Table) AddColumn(name string, kind value.Kind, vals []value.Value) error {
	if len(vals) != t.n {
		return fmt.Errorf("visible: %s.%s has %d values for %d rows", t.Name, name, len(vals), t.n)
	}
	key := strings.ToLower(name)
	if _, dup := t.cols[key]; dup {
		return fmt.Errorf("visible: duplicate column %s.%s", t.Name, name)
	}
	t.cols[key] = &Column{Name: name, Kind: kind, vals: vals}
	return nil
}

// Rows reports the table cardinality.
func (t *Table) Rows() int { return t.n }

// Column returns the named column.
func (t *Table) Column(name string) (*Column, bool) {
	c, ok := t.cols[strings.ToLower(name)]
	return c, ok
}

// Value returns the value of column col for row id (1-based).
func (t *Table) Value(col string, id uint32) (value.Value, error) {
	c, ok := t.Column(col)
	if !ok {
		return value.Value{}, fmt.Errorf("visible: no column %s.%s", t.Name, col)
	}
	if id == 0 || int(id) > t.n {
		return value.Value{}, fmt.Errorf("visible: id %d out of 1..%d", id, t.n)
	}
	return c.vals[id-1], nil
}

// Select evaluates p over the column and returns the matching IDs in
// ascending order (rows are stored in ID order, so a scan is sorted).
func (t *Table) Select(col string, p pred.P) ([]uint32, error) {
	c, ok := t.Column(col)
	if !ok {
		return nil, fmt.Errorf("visible: no column %s.%s", t.Name, col)
	}
	var out []uint32
	for i, v := range c.vals {
		match, err := p.Eval(v)
		if err != nil {
			return nil, fmt.Errorf("visible: %s.%s: %w", t.Name, col, err)
		}
		if match {
			out = append(out, uint32(i+1))
		}
	}
	return out, nil
}

// Count reports how many rows satisfy p — the cheap cardinality the
// optimizer requests before choosing pre- vs post-filtering.
func (t *Table) Count(col string, p pred.P) (int, error) {
	ids, err := t.Select(col, p)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// KV is one element of a projection stream.
type KV struct {
	ID  uint32
	Val value.Value
}

// ProjectSorted returns (id, value) pairs for the given sorted IDs, in
// ascending ID order — the stream the device merges against its result
// rows during the projection phase. A nil ids selects all rows.
func (t *Table) ProjectSorted(col string, ids []uint32) ([]KV, error) {
	c, ok := t.Column(col)
	if !ok {
		return nil, fmt.Errorf("visible: no column %s.%s", t.Name, col)
	}
	if ids == nil {
		out := make([]KV, t.n)
		for i, v := range c.vals {
			out[i] = KV{ID: uint32(i + 1), Val: v}
		}
		return out, nil
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		return nil, fmt.Errorf("visible: projection IDs must be sorted")
	}
	out := make([]KV, 0, len(ids))
	for _, id := range ids {
		if id == 0 || int(id) > t.n {
			return nil, fmt.Errorf("visible: id %d out of 1..%d", id, t.n)
		}
		out = append(out, KV{ID: id, Val: c.vals[id-1]})
	}
	return out, nil
}

// IntersectSorted intersects two ascending ID lists — the PC-side
// combination of several visible predicates on the same table.
func IntersectSorted(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
