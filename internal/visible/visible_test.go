package visible

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	s := NewStore()
	tb, err := s.CreateTable("Medicine", 5)
	if err != nil {
		t.Fatal(err)
	}
	types := []value.Value{
		value.NewString("Antibiotic"), value.NewString("Vaccine"),
		value.NewString("Antibiotic"), value.NewString("Statin"),
		value.NewString("Antibiotic"),
	}
	if err := tb.AddColumn("Type", value.String, types); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestCreateTableValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable("T", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", 3); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, err := s.CreateTable("U", -1); err == nil {
		t.Error("negative rows accepted")
	}
	if tb, ok := s.Table("T"); !ok || tb.Rows() != 3 {
		t.Error("lookup failed")
	}
	if len(s.Tables()) != 1 {
		t.Errorf("Tables() = %v", s.Tables())
	}
}

func TestAddColumnValidation(t *testing.T) {
	s := NewStore()
	tb, _ := s.CreateTable("T", 2)
	two := []value.Value{value.NewInt(1), value.NewInt(2)}
	if err := tb.AddColumn("x", value.Int, two); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn("X", value.Int, two); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := tb.AddColumn("y", value.Int, two[:1]); err == nil {
		t.Error("wrong cardinality accepted")
	}
}

func TestSelectAndCount(t *testing.T) {
	tb := newTable(t)
	ids, err := tb.Select("Type", pred.Compare(sql.OpEq, value.NewString("Antibiotic")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []uint32{1, 3, 5}) {
		t.Errorf("Select = %v", ids)
	}
	n, err := tb.Count("type", pred.Compare(sql.OpNe, value.NewString("Antibiotic")))
	if err != nil || n != 2 {
		t.Errorf("Count = %d, %v", n, err)
	}
	if _, err := tb.Select("Ghost", pred.Compare(sql.OpEq, value.NewInt(1))); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tb.Select("Type", pred.Compare(sql.OpEq, value.NewInt(1))); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestValue(t *testing.T) {
	tb := newTable(t)
	v, err := tb.Value("Type", 2)
	if err != nil || v.Str() != "Vaccine" {
		t.Errorf("Value(2) = %v, %v", v, err)
	}
	if _, err := tb.Value("Type", 0); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := tb.Value("Type", 6); err == nil {
		t.Error("id past end accepted")
	}
	if _, err := tb.Value("Nope", 1); err == nil {
		t.Error("unknown column accepted")
	}
	c, ok := tb.Column("TYPE")
	if !ok || c.Kind != value.String {
		t.Error("Column lookup failed")
	}
}

func TestProjectSorted(t *testing.T) {
	tb := newTable(t)
	kvs, err := tb.ProjectSorted("Type", []uint32{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 || kvs[0].ID != 1 || kvs[2].Val.Str() != "Antibiotic" {
		t.Errorf("ProjectSorted = %v", kvs)
	}
	all, err := tb.ProjectSorted("Type", nil)
	if err != nil || len(all) != 5 {
		t.Errorf("nil filter = %d kvs, %v", len(all), err)
	}
	if _, err := tb.ProjectSorted("Type", []uint32{3, 1}); err == nil {
		t.Error("unsorted IDs accepted")
	}
	if _, err := tb.ProjectSorted("Type", []uint32{9}); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if _, err := tb.ProjectSorted("Ghost", nil); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, []uint32{2, 3}},
		{[]uint32{1}, []uint32{2}, nil},
		{nil, []uint32{1}, nil},
		{[]uint32{5, 9}, []uint32{5, 9}, []uint32{5, 9}},
	}
	for _, c := range cases {
		if got := IntersectSorted(c.a, c.b); !reflect.DeepEqual(got, c.want) {
			t.Errorf("IntersectSorted(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestQuickSelectMatchesScan(t *testing.T) {
	f := func(vals []int16, cut int16) bool {
		s := NewStore()
		tb, err := s.CreateTable("T", len(vals))
		if err != nil {
			return false
		}
		col := make([]value.Value, len(vals))
		for i, v := range vals {
			col[i] = value.NewInt(int64(v))
		}
		if err := tb.AddColumn("x", value.Int, col); err != nil {
			return false
		}
		p := pred.Compare(sql.OpLe, value.NewInt(int64(cut)))
		ids, err := tb.Select("x", p)
		if err != nil {
			return false
		}
		// Reference scan.
		var want []uint32
		for i, v := range vals {
			if int64(v) <= int64(cut) {
				want = append(want, uint32(i+1))
			}
		}
		return reflect.DeepEqual(ids, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
