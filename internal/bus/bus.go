// Package bus models the communication channels of the GhostDB platform:
// the USB 2.0 link between the user's terminal and the smart USB device
// (12 Mb/s full speed today, 480 Mb/s high speed "envisioned for future
// platforms" — paper Section 3) and the LAN between terminal and public
// server. Each transfer charges latency to the simulated clock and is
// recorded in the wire trace.
package bus

import (
	"fmt"
	"github.com/ghostdb/ghostdb/internal/fault"
	"time"

	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Profile describes a channel's performance.
type Profile struct {
	Name        string
	BytesPerSec float64       // sustained effective throughput
	MsgLatency  time.Duration // fixed cost per message (framing, turnaround)
}

// USBFullSpeed is USB 2.0 full speed: 12 Mb/s nominal. Protocol overhead
// leaves roughly 1 MB/s of effective bulk throughput, with the 1 ms frame
// interval as per-message latency.
func USBFullSpeed() Profile {
	return Profile{Name: "usb-full-speed", BytesPerSec: 1.0e6, MsgLatency: time.Millisecond}
}

// USBHighSpeed is USB 2.0 high speed: 480 Mb/s nominal, ~40 MB/s effective,
// 125 µs microframe latency.
func USBHighSpeed() Profile {
	return Profile{Name: "usb-high-speed", BytesPerSec: 40e6, MsgLatency: 125 * time.Microsecond}
}

// LAN models the terminal↔server link: fast enough to never dominate.
func LAN() Profile {
	return Profile{Name: "lan", BytesPerSec: 100e6, MsgLatency: 200 * time.Microsecond}
}

// TransferTime reports the simulated duration of one message of n bytes.
func (p Profile) TransferTime(n int) time.Duration {
	if p.BytesPerSec <= 0 {
		return p.MsgLatency
	}
	return p.MsgLatency + time.Duration(float64(n)/p.BytesPerSec*float64(time.Second))
}

// Stats counts traffic on one channel.
type Stats struct {
	Messages int64
	Bytes    int64
	Time     time.Duration
}

// Network connects the platform's parties with profiled channels and
// records every message in the trace. It is not safe for concurrent use.
type Network struct {
	clock *sim.Clock
	rec   *trace.Recorder
	links map[[2]trace.Party]Profile
	stats map[[2]trace.Party]*Stats
	inj   *fault.Injector // consulted on transfers touching the device
}

// SetInjector installs a fault injector consulted for every transfer
// that touches the USB device link. Pass nil to remove it.
func (n *Network) SetInjector(inj *fault.Injector) { n.inj = inj }

// injectBus consults the fault plan for a device-link transfer, retrying
// transient faults with capped exponential backoff charged to the clock.
func (n *Network) injectBus() error {
	if n.inj == nil {
		return nil
	}
	err := n.inj.BeforeOp(fault.OpBus, n.clock.Now())
	for attempt := 0; fault.IsTransient(err) && attempt < maxBusRetries; attempt++ {
		backoff := busBackoffBase << attempt
		if backoff > busBackoffCap {
			backoff = busBackoffCap
		}
		n.clock.Advance(backoff)
		n.inj.NoteRetry(fault.OpBus)
		err = n.inj.BeforeOp(fault.OpBus, n.clock.Now())
	}
	if fault.IsTransient(err) {
		return fmt.Errorf("%w: %d retries exhausted: %v", fault.ErrPermanent, maxBusRetries, err)
	}
	return err
}

// Transient bus-fault retry policy (mirrors the flash layer).
const (
	maxBusRetries  = 4
	busBackoffBase = 100 * time.Microsecond
	busBackoffCap  = 800 * time.Microsecond
)

// NewNetwork returns an empty network charging to clock and recording
// into rec (which may be nil to disable tracing).
func NewNetwork(clock *sim.Clock, rec *trace.Recorder) *Network {
	return &Network{
		clock: clock,
		rec:   rec,
		links: map[[2]trace.Party]Profile{},
		stats: map[[2]trace.Party]*Stats{},
	}
}

// Connect attaches a bidirectional channel between a and b.
func (n *Network) Connect(a, b trace.Party, p Profile) {
	n.links[linkKey(a, b)] = p
	if _, ok := n.stats[linkKey(a, b)]; !ok {
		n.stats[linkKey(a, b)] = &Stats{}
	}
}

// Profile returns the channel profile between a and b.
func (n *Network) Profile(a, b trace.Party) (Profile, bool) {
	p, ok := n.links[linkKey(a, b)]
	return p, ok
}

// Stats returns the traffic counters for the a↔b channel.
func (n *Network) Stats(a, b trace.Party) Stats {
	if s, ok := n.stats[linkKey(a, b)]; ok {
		return *s
	}
	return Stats{}
}

// ResetStats zeroes all channel counters.
func (n *Network) ResetStats() {
	for k := range n.stats {
		n.stats[k] = &Stats{}
	}
}

// Send transfers one message of the given size from one party to another,
// charging the channel cost to the clock and recording the event. values
// carries the payload for the security audit (captured only when the
// recorder is at CaptureFull).
func (n *Network) Send(from, to trace.Party, kind trace.Kind, bytes int, note string, values []value.Value) error {
	p, ok := n.links[linkKey(from, to)]
	if !ok {
		return fmt.Errorf("bus: no channel between %s and %s", from, to)
	}
	if bytes < 0 {
		return fmt.Errorf("bus: negative message size %d", bytes)
	}
	if from == trace.Device || to == trace.Device {
		if err := n.injectBus(); err != nil {
			return err
		}
	}
	d := p.TransferTime(bytes)
	n.clock.Advance(d)
	s := n.stats[linkKey(from, to)]
	s.Messages++
	s.Bytes += int64(bytes)
	s.Time += d
	if n.rec != nil {
		n.rec.Record(trace.Event{
			At:     n.clock.Now(),
			From:   from,
			To:     to,
			Kind:   kind,
			Bytes:  bytes,
			Note:   note,
			Values: values,
		})
	}
	return nil
}

func linkKey(a, b trace.Party) [2]trace.Party {
	if a > b {
		a, b = b, a
	}
	return [2]trace.Party{a, b}
}
