package bus

import (
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

func TestProfileTransferTime(t *testing.T) {
	p := Profile{BytesPerSec: 1e6, MsgLatency: time.Millisecond}
	if got := p.TransferTime(0); got != time.Millisecond {
		t.Errorf("empty message = %v", got)
	}
	if got := p.TransferTime(1_000_000); got != time.Millisecond+time.Second {
		t.Errorf("1MB = %v", got)
	}
	latOnly := Profile{MsgLatency: time.Millisecond}
	if got := latOnly.TransferTime(100); got != time.Millisecond {
		t.Errorf("zero-throughput profile = %v", got)
	}
}

func TestBuiltinProfilesOrdering(t *testing.T) {
	full, high := USBFullSpeed(), USBHighSpeed()
	if full.TransferTime(1<<20) <= high.TransferTime(1<<20) {
		t.Error("full speed must be slower than high speed")
	}
	if LAN().TransferTime(1<<20) >= full.TransferTime(1<<20) {
		t.Error("LAN must beat full-speed USB")
	}
}

func TestNetworkSendChargesAndRecords(t *testing.T) {
	clock := sim.NewClock()
	rec := trace.NewRecorder(trace.CaptureFull)
	n := NewNetwork(clock, rec)
	n.Connect(trace.Terminal, trace.Device, Profile{Name: "x", BytesPerSec: 1e6, MsgLatency: time.Millisecond})

	vals := []value.Value{value.NewInt(42)}
	if err := n.Send(trace.Terminal, trace.Device, trace.KindIDList, 500_000, "ids", vals); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 500*time.Millisecond
	if clock.Now() != want {
		t.Errorf("clock = %v, want %v", clock.Now(), want)
	}
	// Reverse direction uses the same channel.
	if err := n.Send(trace.Device, trace.Terminal, trace.KindControl, 0, "", nil); err != nil {
		t.Fatalf("reverse direction: %v", err)
	}
	s := n.Stats(trace.Terminal, trace.Device)
	if s.Messages != 2 || s.Bytes != 500_000 {
		t.Errorf("stats %+v", s)
	}
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Kind != trace.KindIDList || evs[0].Bytes != 500_000 || len(evs[0].Values) != 1 {
		t.Errorf("event[0] = %+v", evs[0])
	}
	n.ResetStats()
	if got := n.Stats(trace.Terminal, trace.Device); got.Messages != 0 {
		t.Errorf("after reset %+v", got)
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork(sim.NewClock(), nil)
	if err := n.Send(trace.Terminal, trace.Server, trace.KindQuery, 1, "", nil); err == nil {
		t.Error("send on unconnected channel accepted")
	}
	n.Connect(trace.Terminal, trace.Server, LAN())
	if err := n.Send(trace.Terminal, trace.Server, trace.KindQuery, -1, "", nil); err == nil {
		t.Error("negative size accepted")
	}
	if err := n.Send(trace.Terminal, trace.Server, trace.KindQuery, 1, "", nil); err != nil {
		t.Errorf("valid send failed: %v", err)
	}
	if _, ok := n.Profile(trace.Server, trace.Terminal); !ok {
		t.Error("Profile lookup must be direction independent")
	}
	if _, ok := n.Profile(trace.Terminal, trace.Device); ok {
		t.Error("Profile reported a missing channel")
	}
}
