// Package ram enforces the smart USB device's defining constraint: a tiny
// RAM budget (tens of kilobytes, per Figure 2 of the GhostDB paper).
//
// Go's garbage-collected runtime cannot dedicate a physical 64 KB heap to
// the simulated device, so the budget is enforced logically: every operator
// buffer, Bloom filter, page-cache frame and merge heap is acquired through
// an Arena, and an allocation that would exceed the budget fails with
// ErrBudget. Query operators react exactly as the real device would — by
// spilling to flash, running multi-pass algorithms, or shrinking a Bloom
// filter (raising its false-positive rate). The arena also records the
// high-water mark, which is the "RAM consumption" metric the demo GUI
// displays per plan and per operator.
package ram

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrBudget is returned when an allocation would exceed the arena budget.
var ErrBudget = errors.New("ram: budget exceeded")

// Arena is a logical allocator with a hard byte budget. The zero value is
// unusable; create arenas with NewArena. Arena is safe for concurrent use.
type Arena struct {
	name   string
	budget int64

	mu      sync.Mutex
	used    int64
	high    int64
	byLabel map[string]int64
}

// NewArena returns an arena named name with the given budget in bytes.
// A budget <= 0 means unlimited (used for the untrusted PC side and for
// the initial secure-setting bulk load).
func NewArena(name string, budget int) *Arena {
	return &Arena{name: name, budget: int64(budget), byLabel: map[string]int64{}}
}

// Name reports the arena's name.
func (a *Arena) Name() string { return a.name }

// Budget reports the configured budget; 0 or negative means unlimited.
func (a *Arena) Budget() int64 { return a.budget }

// Used reports the bytes currently allocated.
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// High reports the high-water mark since creation or the last ResetHigh.
func (a *Arena) High() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.high
}

// Available reports how many bytes can still be allocated. For unlimited
// arenas it returns a large positive number.
func (a *Arena) Available() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget <= 0 {
		return 1 << 50
	}
	return a.budget - a.used
}

// ResetHigh sets the high-water mark to the current usage. The engine calls
// it between queries so per-plan RAM numbers don't bleed into each other.
func (a *Arena) ResetHigh() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.high = a.used
}

// Grant is a live allocation. Free it exactly once; Free on an already
// freed grant is a no-op so defer-style cleanup is safe.
type Grant struct {
	arena *Arena
	n     int64
	label string
	freed bool
}

// Alloc reserves n bytes under the given label (used in reports and error
// messages). It returns ErrBudget if the reservation would exceed the
// budget.
func (a *Arena) Alloc(n int, label string) (*Grant, error) {
	if n < 0 {
		return nil, fmt.Errorf("ram: negative allocation %d (%s)", n, label)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget > 0 && a.used+int64(n) > a.budget {
		return nil, fmt.Errorf("%w: %s needs %d bytes, %d of %d in use (arena %s)",
			ErrBudget, label, n, a.used, a.budget, a.name)
	}
	a.used += int64(n)
	a.byLabel[label] += int64(n)
	if a.used > a.high {
		a.high = a.used
	}
	return &Grant{arena: a, n: int64(n), label: label}, nil
}

// MustAlloc is Alloc for allocations that are statically known to fit
// (e.g. a handful of bytes of operator state). It panics on failure,
// which indicates a misconfigured profile rather than a runtime condition.
func (a *Arena) MustAlloc(n int, label string) *Grant {
	g, err := a.Alloc(n, label)
	if err != nil {
		panic(err)
	}
	return g
}

// Size reports the grant's current size in bytes.
func (g *Grant) Size() int64 {
	if g == nil {
		return 0
	}
	return g.n
}

// Resize grows or shrinks the grant to n bytes, subject to the budget.
// On failure the grant keeps its previous size.
func (g *Grant) Resize(n int) error {
	if n < 0 {
		return fmt.Errorf("ram: negative resize %d (%s)", n, g.label)
	}
	a := g.arena
	a.mu.Lock()
	defer a.mu.Unlock()
	if g.freed {
		return fmt.Errorf("ram: resize of freed grant %s", g.label)
	}
	delta := int64(n) - g.n
	if a.budget > 0 && a.used+delta > a.budget {
		return fmt.Errorf("%w: resize %s to %d bytes, %d of %d in use (arena %s)",
			ErrBudget, g.label, n, a.used, a.budget, a.name)
	}
	a.used += delta
	a.byLabel[g.label] += delta
	g.n = int64(n)
	if a.used > a.high {
		a.high = a.used
	}
	return nil
}

// Free releases the grant. Safe to call more than once.
func (g *Grant) Free() {
	if g == nil || g.freed {
		return
	}
	a := g.arena
	a.mu.Lock()
	defer a.mu.Unlock()
	g.freed = true
	a.used -= g.n
	a.byLabel[g.label] -= g.n
	if a.byLabel[g.label] <= 0 {
		delete(a.byLabel, g.label)
	}
}

// Usage describes one label's live allocation.
type Usage struct {
	Label string
	Bytes int64
}

// Snapshot returns the live allocations grouped by label, sorted by
// descending size then label for stable output.
func (a *Arena) Snapshot() []Usage {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Usage, 0, len(a.byLabel))
	for l, b := range a.byLabel {
		out = append(out, Usage{Label: l, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Label < out[j].Label
	})
	return out
}
