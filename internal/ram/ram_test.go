package ram

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocWithinBudget(t *testing.T) {
	a := NewArena("device", 100)
	g1, err := a.Alloc(40, "bloom")
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	g2, err := a.Alloc(60, "cache")
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a.Used() != 100 || a.Available() != 0 {
		t.Errorf("Used=%d Available=%d", a.Used(), a.Available())
	}
	if _, err := a.Alloc(1, "extra"); !errors.Is(err, ErrBudget) {
		t.Errorf("over-budget alloc: %v, want ErrBudget", err)
	}
	g1.Free()
	if a.Used() != 60 {
		t.Errorf("after free Used=%d", a.Used())
	}
	g1.Free() // double free must be a no-op
	if a.Used() != 60 {
		t.Errorf("after double free Used=%d", a.Used())
	}
	g2.Free()
	if a.Used() != 0 {
		t.Errorf("final Used=%d", a.Used())
	}
	if a.High() != 100 {
		t.Errorf("High=%d, want 100", a.High())
	}
}

func TestUnlimitedArena(t *testing.T) {
	a := NewArena("pc", 0)
	g, err := a.Alloc(1<<30, "huge")
	if err != nil {
		t.Fatalf("unlimited arena refused alloc: %v", err)
	}
	if a.Available() <= 0 {
		t.Errorf("Available=%d", a.Available())
	}
	g.Free()
}

func TestResize(t *testing.T) {
	a := NewArena("device", 100)
	g, err := a.Alloc(10, "buf")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Resize(90); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if a.Used() != 90 {
		t.Errorf("Used=%d after grow", a.Used())
	}
	if err := g.Resize(200); !errors.Is(err, ErrBudget) {
		t.Errorf("over-budget resize: %v", err)
	}
	if g.Size() != 90 {
		t.Errorf("failed resize changed size to %d", g.Size())
	}
	if err := g.Resize(5); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if a.Used() != 5 {
		t.Errorf("Used=%d after shrink", a.Used())
	}
	if err := g.Resize(-1); err == nil {
		t.Error("negative resize must fail")
	}
	g.Free()
	if err := g.Resize(10); err == nil {
		t.Error("resize after free must fail")
	}
}

func TestNegativeAlloc(t *testing.T) {
	a := NewArena("device", 100)
	if _, err := a.Alloc(-1, "bad"); err == nil {
		t.Error("negative alloc must fail")
	}
}

func TestResetHigh(t *testing.T) {
	a := NewArena("device", 1000)
	g, _ := a.Alloc(500, "x")
	g.Free()
	if a.High() != 500 {
		t.Fatalf("High=%d", a.High())
	}
	a.ResetHigh()
	if a.High() != 0 {
		t.Errorf("High after reset=%d", a.High())
	}
	g2, _ := a.Alloc(100, "y")
	defer g2.Free()
	if a.High() != 100 {
		t.Errorf("High=%d after new alloc", a.High())
	}
}

func TestSnapshot(t *testing.T) {
	a := NewArena("device", 0)
	g1, _ := a.Alloc(10, "cache")
	g2, _ := a.Alloc(30, "bloom")
	g3, _ := a.Alloc(5, "cache")
	defer g1.Free()
	defer g2.Free()
	defer g3.Free()
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot entries = %d, want 2", len(snap))
	}
	if snap[0].Label != "bloom" || snap[0].Bytes != 30 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Label != "cache" || snap[1].Bytes != 15 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
}

func TestMustAllocPanicsOverBudget(t *testing.T) {
	a := NewArena("device", 10)
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc over budget must panic")
		}
	}()
	a.MustAlloc(11, "boom")
}

func TestQuickAccountingBalances(t *testing.T) {
	// Allocate a random set of sizes, free them all, arena must return to 0
	// and the high-water mark must equal the running peak.
	f := func(sizes []uint16) bool {
		a := NewArena("q", 0)
		var grants []*Grant
		var cur, peak int64
		for _, s := range sizes {
			g, err := a.Alloc(int(s), "g")
			if err != nil {
				return false
			}
			grants = append(grants, g)
			cur += int64(s)
			if cur > peak {
				peak = cur
			}
		}
		if a.High() != peak {
			return false
		}
		for _, g := range grants {
			g.Free()
		}
		return a.Used() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
