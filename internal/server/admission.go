package server

// Admission control. The idle-session pool doubles as the in-flight
// semaphore: a request executes only while holding a pooled session, so
// capacity(pool) == MaxInflight bounds concurrent work on the engine.
// When the pool is dry the request waits at most QueueWait, then gets
// 429 with a Retry-After hint — bounded latency for everyone beats an
// unbounded queue melting down under overload.

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
)

// admitted is one request's admission lease.
type admitted struct {
	sess   *core.Session
	ctx    context.Context
	cancel context.CancelFunc
	srv    *Server
	t0     time.Time
}

// admit reserves a session for the request, answering 429 (pool
// saturated past QueueWait) or 503 (server closing) itself when it
// fails. On success the caller must call release when done.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (*admitted, bool) {
	s.m.requests.Inc()
	t0 := time.Now()
	if s.closed.Load() {
		s.reject(w, http.StatusServiceUnavailable, "server is shutting down", "shutdown")
		return nil, false
	}
	var sess *core.Session
	select {
	case sess = <-s.pool:
	default:
		if s.cfg.QueueWait <= 0 {
			s.saturated(w)
			return nil, false
		}
		wait := time.NewTimer(s.cfg.QueueWait)
		defer wait.Stop()
		select {
		case sess = <-s.pool:
		case <-wait.C:
			s.saturated(w)
			return nil, false
		case <-r.Context().Done():
			s.m.canceled.Inc()
			return nil, false
		}
	}
	s.m.inflight.Inc()
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	return &admitted{sess: sess, ctx: ctx, cancel: cancel, srv: s, t0: t0}, true
}

// release returns the session to the pool and settles the latency
// accounting.
func (a *admitted) release() {
	a.cancel()
	a.srv.m.inflight.Dec()
	a.srv.m.wallNS.ObserveSince(a.t0)
	a.srv.pool <- a.sess
}

// saturated answers 429 with the configured Retry-After hint.
func (s *Server) saturated(w http.ResponseWriter) {
	s.m.rejected.Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	writeJSON(w, http.StatusTooManyRequests, &ErrorResponse{
		Error: "server saturated: all sessions busy",
		Kind:  "saturated",
	})
}

// reject answers a non-429 refusal.
func (s *Server) reject(w http.ResponseWriter, status int, msg, kind string) {
	if status >= 500 {
		s.m.errors.Inc()
	} else {
		s.m.badReqs.Inc()
	}
	writeJSON(w, status, &ErrorResponse{Error: msg, Kind: kind})
}

// retryAfterSeconds renders a duration as the integral seconds the
// Retry-After header requires, rounding up so "500ms" never becomes 0.
func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(int(math.Ceil(d.Seconds())))
}
