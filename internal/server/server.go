// Package server is the network front-end of GhostDB: a zero-dependency
// stdlib net/http layer that multiplexes remote clients onto one shared
// engine's session pool. The paper's trust model puts the device (and
// the engine driving it) on a trusted terminal answering for clients
// that cannot hold the raw data; this package is that terminal's wire
// surface.
//
// Every request is admitted through a bounded in-flight window — the
// session pool is the admission semaphore, so saturation answers 429
// with a Retry-After hint instead of queueing unboundedly — and carries
// its http.Request context through the engine's batch-boundary
// cancellation: a client that disconnects mid-query aborts the query
// and shows up in queries_canceled_total.
package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/metrics"
)

// Config tunes one Server.
type Config struct {
	// MaxInflight bounds concurrently executing requests (and sizes the
	// session pool). Beyond it, requests wait QueueWait and then get
	// 429. Default 64.
	MaxInflight int
	// QueueWait is how long a request may wait for a free session
	// before being rejected with 429. Default 0: reject immediately.
	QueueWait time.Duration
	// RequestTimeout bounds one request's execution (propagated as a
	// context deadline to the engine). 0 means no server-side deadline;
	// the client's disconnect still cancels.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 responses. Default 1s.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// serverMetrics is the HTTP layer's own registry, exposed alongside the
// engine registries as ghostdb_server_* (/metrics) and under "server"
// (/debug/vars).
type serverMetrics struct {
	reg      *metrics.Registry
	requests *metrics.Counter
	rejected *metrics.Counter
	errors   *metrics.Counter
	badReqs  *metrics.Counter
	canceled *metrics.Counter
	inflight *metrics.Gauge
	wallNS   *metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	r := metrics.NewRegistry()
	return &serverMetrics{
		reg:      r,
		requests: r.Counter("http_requests_total", "HTTP API requests received"),
		rejected: r.Counter("http_rejected_total", "requests rejected with 429 by admission control"),
		errors:   r.Counter("http_errors_total", "requests that failed with a 5xx status"),
		badReqs:  r.Counter("http_bad_requests_total", "requests that failed with a 4xx status other than 429"),
		canceled: r.Counter("http_canceled_total", "requests abandoned by the client before completion"),
		inflight: r.Gauge("http_inflight", "requests currently holding a session"),
		wallNS:   r.Histogram("http_request_wall_ns", "end-to-end request latency"),
	}
}

// Server multiplexes HTTP clients onto one GhostDB engine.
type Server struct {
	db  *core.DB
	cfg Config
	m   *serverMetrics

	// pool holds the idle sessions; acquiring one admits a request, so
	// capacity == MaxInflight is the whole admission mechanism.
	pool     chan *core.Session
	sessions []*core.Session
	closed   atomic.Bool
}

// New builds a Server over db, opening its session pool. The caller
// keeps ownership of db (Close does not close it).
func New(db *core.DB, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		db:   db,
		cfg:  cfg,
		m:    newServerMetrics(),
		pool: make(chan *core.Session, cfg.MaxInflight),
	}
	for i := 0; i < cfg.MaxInflight; i++ {
		sess, err := db.NewSession()
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: opening session pool: %w", err)
		}
		s.sessions = append(s.sessions, sess)
		s.pool <- sess
	}
	return s, nil
}

// DB exposes the underlying engine.
func (s *Server) DB() *core.DB { return s.db }

// Close releases the session pool. Call it after the HTTP server has
// drained (http.Server.Shutdown): a session still executing a request
// must not be closed under it.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var first error
	for _, sess := range s.sessions {
		if err := sess.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MetricsSnapshot snapshots the HTTP layer's own registry.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.m.reg.Snapshot() }

// Handler builds the server's HTTP surface:
//
//	POST /v1/query       execute a SELECT (or EXPLAIN [ANALYZE])
//	POST /v1/exec        execute DDL / DML / CHECKPOINT scripts
//	POST /v1/checkpoint  merge the live-DML delta into flash
//	GET  /v1/schema      the table layout, hidden columns flagged
//	GET  /healthz        liveness (503 once the device is dead)
//	GET  /debug/vars     engine + server state, JSON
//	GET  /metrics        Prometheus text exposition
//
// Method-prefixed ServeMux patterns (Go 1.22+) reject wrong-method
// requests with 405 without any routing library.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/exec", s.handleExec)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}
