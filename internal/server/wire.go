package server

// The wire protocol: plain JSON over HTTP, zero dependencies on either
// side. Requests carry SQL text plus positional '?' arguments; responses
// carry the materialized result rows (GhostDB materializes results on
// the secure display before anything is returned, so streaming would buy
// nothing) together with the simulated device time the query consumed.
//
//	POST /v1/query      {"sql": "SELECT ...", "args": [1, "x"]}
//	POST /v1/exec       {"sql": "INSERT ...; ...", "args": [...]}
//	POST /v1/checkpoint {}
//	GET  /v1/schema
//	GET  /healthz
//
// Argument scalars map 1:1 onto GhostDB kinds: JSON integers bind as
// INTEGER, other numbers as FLOAT, strings as CHAR (coerced to DATE by
// the binder when the column is a date, so "2006-01-10" works), booleans
// as BOOLEAN. Result DATE values render as "YYYY-MM-DD" strings.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/value"
)

// maxRequestBody bounds one request's JSON document (a bulk-load script
// can be large; anything bigger than this is hostile).
const maxRequestBody = 64 << 20

// QueryRequest is the body of POST /v1/query and POST /v1/exec.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Args bind the statement's '?' placeholders in ordinal order.
	Args []any `json:"args,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	Rows    [][]any  `json:"rows"`
	// SimNS is the simulated device time the query consumed; WallNS the
	// host wall-clock spent executing it (excluding HTTP overhead).
	SimNS  int64 `json:"sim_ns"`
	WallNS int64 `json:"wall_ns"`
}

// ExecResponse is the body of a successful POST /v1/exec.
type ExecResponse struct {
	RowsAffected int64 `json:"rows_affected"`
	WallNS       int64 `json:"wall_ns"`
}

// CheckpointResponse is the body of a successful POST /v1/checkpoint.
// The simulated merge cost lands on the per-shard device clocks (see
// /debug/vars), not here: one number would be wrong for sharded engines.
type CheckpointResponse struct {
	// Absorbed is the number of delta entries the merge absorbed.
	Absorbed int64 `json:"absorbed"`
	WallNS   int64 `json:"wall_ns"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure for programmatic clients: bad_request,
	// saturated, canceled, timeout, transient, device_dead, internal.
	Kind string `json:"kind"`
}

// SchemaResponse is the body of GET /v1/schema.
type SchemaResponse struct {
	Loaded bool        `json:"loaded"`
	Tables []TableInfo `json:"tables"`
}

// TableInfo describes one table of the schema.
type TableInfo struct {
	Name    string       `json:"name"`
	Columns []ColumnInfo `json:"columns"`
}

// ColumnInfo describes one column; Hidden columns live only on the
// device.
type ColumnInfo struct {
	Name       string `json:"name"`
	Type       string `json:"type"`
	Hidden     bool   `json:"hidden,omitempty"`
	PrimaryKey bool   `json:"primary_key,omitempty"`
	Ref        string `json:"ref,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Loaded bool   `json:"loaded"`
}

// decodeRequest reads one JSON request body, preserving number fidelity
// (integers stay integers) via json.Number.
func decodeRequest(r *http.Request, into any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		if err == io.EOF {
			return fmt.Errorf("empty request body")
		}
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	return nil
}

// wireParams converts request arguments to GhostDB values.
func wireParams(args []any) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		v, err := wireParam(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %v", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func wireParam(a any) (value.Value, error) {
	switch a := a.(type) {
	case json.Number:
		s := a.String()
		if !strings.ContainsAny(s, ".eE") {
			n, err := a.Int64()
			if err == nil {
				return value.NewInt(n), nil
			}
		}
		f, err := a.Float64()
		if err != nil {
			return value.Value{}, fmt.Errorf("bad number %q", s)
		}
		return value.NewFloat(f), nil
	case string:
		return value.NewString(a), nil
	case bool:
		return value.NewBool(a), nil
	case nil:
		return value.Value{}, fmt.Errorf("GhostDB has no NULLs")
	default:
		return value.Value{}, fmt.Errorf("unsupported argument type %T", a)
	}
}

// wireValue converts one result scalar to its JSON form.
func wireValue(v value.Value) any {
	switch v.Kind() {
	case value.Int:
		return v.Int()
	case value.Float:
		return v.Float()
	case value.String:
		return v.Str()
	case value.Bool:
		return v.Bool()
	case value.Date:
		y, m, d := v.Civil()
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	default:
		return nil
	}
}

// encodeResult maps a completed core result onto the wire response.
func encodeResult(res *core.Result, wall time.Duration) *QueryResponse {
	resp := &QueryResponse{
		Columns: res.Columns,
		Types:   make([]string, len(res.Columns)),
		Rows:    make([][]any, len(res.Rows)),
		WallNS:  wall.Nanoseconds(),
	}
	for i := range res.Columns {
		switch {
		case res.Query != nil:
			resp.Types[i] = res.Query.OutputKind(i).String()
		case len(res.Rows) > 0 && i < len(res.Rows[0]):
			resp.Types[i] = res.Rows[0][i].Kind().String()
		}
	}
	for i, row := range res.Rows {
		out := make([]any, len(row))
		for j, v := range row {
			out[j] = wireValue(v)
		}
		resp.Rows[i] = out
	}
	if res.Report != nil {
		resp.SimNS = res.Report.TotalTime.Nanoseconds()
	}
	return resp
}

// encodeSchema maps the engine schema onto the wire response.
func encodeSchema(sch *schema.Schema, loaded bool) *SchemaResponse {
	resp := &SchemaResponse{Loaded: loaded}
	for _, t := range sch.Tables() {
		ti := TableInfo{Name: t.Name}
		for _, c := range t.Columns {
			ci := ColumnInfo{
				Name:       c.Name,
				Type:       c.Type.String(),
				Hidden:     c.Hidden,
				PrimaryKey: c.PrimaryKey,
			}
			if c.IsForeignKey() {
				ci.Ref = c.RefTable + "." + c.RefColumn
			}
			ti.Columns = append(ti.Columns, ci)
		}
		resp.Tables = append(resp.Tables, ti)
	}
	return resp
}

// writeJSON writes one response document.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(body)
}
