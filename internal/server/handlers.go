package server

// The endpoint handlers. Every data-path handler runs inside an
// admission lease (one pooled session held end to end) and propagates
// the request context into the engine, so client disconnects and
// request timeouts cancel device work at batch boundaries. Engine
// errors map onto transport status codes: typed transient faults are
// 503 + Retry-After (the client should plug the key back in and retry),
// a dead device is 500, cancellation is the 499 convention.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// statusClientClosedRequest is the de-facto (nginx) status for "the
// client went away before the response": nothing standard fits, and the
// code never reaches the disconnected client anyway — it exists for the
// access log and the metrics.
const statusClientClosedRequest = 499

// handleQuery executes one SELECT (or EXPLAIN [ANALYZE]) and returns
// the materialized rows.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	a, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer a.release()
	var req QueryRequest
	if err := decodeRequest(r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		s.reject(w, http.StatusBadRequest, "missing sql", "bad_request")
		return
	}
	params, err := wireParams(req.Args)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	if err := a.sess.EnsureBuilt(); err != nil {
		s.writeEngineError(w, err, "bad_request", http.StatusBadRequest)
		return
	}
	start := time.Now()
	var res *core.Result
	if len(params) == 0 {
		// Covers EXPLAIN / EXPLAIN ANALYZE too: Session.Query intercepts
		// the prefix and answers with a rendered plan result.
		res, err = a.sess.Query(req.SQL, core.WithContext(a.ctx))
		if err != nil {
			s.writeEngineError(w, err, "bad_request", http.StatusBadRequest)
			return
		}
	} else {
		cq, cerr := a.sess.Compile(req.SQL)
		if cerr != nil {
			s.reject(w, http.StatusBadRequest, cerr.Error(), "bad_request")
			return
		}
		if want := cq.NumParams(); want != len(params) {
			s.reject(w, http.StatusBadRequest,
				fmt.Sprintf("query has %d placeholders, got %d arguments", want, len(params)), "bad_request")
			return
		}
		res, err = a.sess.QueryCompiled(cq, params, core.WithContext(a.ctx))
		if err != nil {
			s.writeEngineError(w, err, "internal", http.StatusInternalServerError)
			return
		}
	}
	writeJSON(w, http.StatusOK, encodeResult(res, time.Since(start)))
}

// handleExec executes a DDL / DML / CHECKPOINT script: staging before
// the bulk load, live mutations after, '?' placeholders bound from args
// in ordinal order across the whole script.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	a, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer a.release()
	var req QueryRequest
	if err := decodeRequest(r, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	params, err := wireParams(req.Args)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	stmts, err := sql.ParseScript(req.SQL)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	for _, st := range stmts {
		if _, isSel := st.(*sql.Select); isSel {
			s.reject(w, http.StatusBadRequest, "use /v1/query for SELECT statements", "bad_request")
			return
		}
	}
	bound, err := bindScript(stmts, params)
	if err != nil {
		s.reject(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	start := time.Now()
	n, err := a.sess.ExecStatementsContext(a.ctx, bound)
	if err != nil {
		s.writeEngineError(w, err, "exec_failed", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, &ExecResponse{RowsAffected: n, WallNS: time.Since(start).Nanoseconds()})
}

// handleCheckpoint merges the live-DML delta into fresh flash segments.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	a, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer a.release()
	if err := a.sess.EnsureBuilt(); err != nil {
		s.writeEngineError(w, err, "bad_request", http.StatusBadRequest)
		return
	}
	start := time.Now()
	n, err := a.sess.CheckpointContext(a.ctx)
	if err != nil {
		s.writeEngineError(w, err, "internal", http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, &CheckpointResponse{Absorbed: n, WallNS: time.Since(start).Nanoseconds()})
}

// handleSchema renders the table layout under the engine's staging
// lock, so a concurrently staging bulk load cannot tear the view.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	var resp *SchemaResponse
	err := s.db.ViewSchema(func(sch *schema.Schema, loaded bool) {
		resp = encodeSchema(sch, loaded)
	})
	if err != nil {
		s.reject(w, http.StatusServiceUnavailable, err.Error(), "shutdown")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth answers liveness: 200 while the engine can serve, 503
// once a fatal device error latched.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if err := s.db.FatalError(); err != nil {
		s.reject(w, http.StatusServiceUnavailable, err.Error(), "device_dead")
		return
	}
	writeJSON(w, http.StatusOK, &HealthResponse{Status: "ok", Loaded: s.db.Loaded()})
}

// handleVars serves the engine's /debug/vars document with the HTTP
// layer's own registry merged in under "server".
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	doc := ghostdb.DebugVars(s.db)
	doc["server"] = s.MetricsSnapshot()
	writeJSON(w, http.StatusOK, doc)
}

// handleMetrics serves the Prometheus exposition: the engine registry
// (ghostdb_*), per-shard registries (ghostdb_shard<i>_*) and the HTTP
// layer (ghostdb_server_*).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.db.MetricsSnapshot().WritePrometheus(w, "ghostdb_")
	for i, snap := range s.db.ShardMetrics() {
		snap.WritePrometheus(w, fmt.Sprintf("ghostdb_shard%d_", i))
	}
	s.MetricsSnapshot().WritePrometheus(w, "ghostdb_server_")
}

// writeEngineError maps an engine error onto the wire: context
// cancellation and typed device faults get their transport codes,
// anything else the caller's default.
func (s *Server) writeEngineError(w http.ResponseWriter, err error, defaultKind string, defaultStatus int) {
	switch {
	case errors.Is(err, context.Canceled):
		s.m.canceled.Inc()
		writeJSON(w, statusClientClosedRequest, &ErrorResponse{Error: err.Error(), Kind: "canceled"})
	case errors.Is(err, context.DeadlineExceeded):
		s.reject(w, http.StatusGatewayTimeout, err.Error(), "timeout")
	case core.IsDeviceDead(err):
		s.reject(w, http.StatusInternalServerError, err.Error(), "device_dead")
	case fault.IsTransient(err):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		s.reject(w, http.StatusServiceUnavailable, err.Error(), "transient")
	case core.IsFaultFatal(err):
		s.reject(w, http.StatusInternalServerError, err.Error(), "fatal")
	default:
		s.reject(w, defaultStatus, err.Error(), defaultKind)
	}
}

// bindScript substitutes placeholder arguments into a script's INSERT
// rows and DELETE/UPDATE literals, ordinals running left to right
// across the whole script (the same contract as the database/sql
// driver).
func bindScript(stmts []sql.Statement, params []value.Value) ([]sql.Statement, error) {
	want := sql.CountParams(stmts...)
	if len(params) != want {
		return nil, fmt.Errorf("script has %d placeholders, got %d arguments", want, len(params))
	}
	if want == 0 {
		return stmts, nil
	}
	bound := make([]sql.Statement, len(stmts))
	for i, st := range stmts {
		var b sql.Statement
		var err error
		switch st := st.(type) {
		case *sql.Insert:
			b, err = st.BindParams(params)
		case *sql.Delete:
			b, err = st.BindParams(params)
		case *sql.Update:
			b, err = st.BindParams(params)
		default:
			b = st
		}
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	return bound, nil
}
