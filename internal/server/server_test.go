package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/fault"
)

const hospitalDDL = `
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`

// newTestServer boots an engine + Server + httptest listener. The
// caller gets the base URL and the Server for metric assertions.
func newTestServer(t *testing.T, cfg Config, opts ...core.Option) (*Server, string) {
	t.Helper()
	db, err := core.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, cfg)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return srv, ts.URL
}

func post(t *testing.T, base, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp, raw
}

func loadHospital(t *testing.T, base string) {
	t.Helper()
	resp, raw := post(t, base, "/v1/exec", QueryRequest{SQL: hospitalDDL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec DDL: status %d: %s", resp.StatusCode, raw)
	}
}

// TestQueryRoundTrip is the wire acceptance path: DDL + data over
// /v1/exec, then parameterless and parameterized SELECTs over /v1/query
// with typed rows coming back.
func TestQueryRoundTrip(t *testing.T) {
	_, base := newTestServer(t, Config{})
	loadHospital(t, base)

	resp, raw := post(t, base, "/v1/query", QueryRequest{
		SQL: `SELECT Vis.VisID, Vis.Date FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("query response is not JSON: %v\n%s", err, raw)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows = %v, want 2 sclerosis visits", qr.Rows)
	}
	if len(qr.Columns) != 2 || qr.Columns[0] != "Visit.VisID" {
		t.Fatalf("columns = %v", qr.Columns)
	}
	if len(qr.Types) != 2 || qr.Types[0] != "INTEGER" || qr.Types[1] != "DATE" {
		t.Fatalf("types = %v, want [INTEGER DATE]", qr.Types)
	}
	if qr.Rows[0][1] != "2006-11-20" {
		t.Fatalf("date rendered as %v, want 2006-11-20", qr.Rows[0][1])
	}
	if qr.SimNS <= 0 || qr.WallNS <= 0 {
		t.Fatalf("sim_ns = %d, wall_ns = %d, want both > 0", qr.SimNS, qr.WallNS)
	}

	// Placeholder args: integer and string, bound server-side.
	resp, raw = post(t, base, "/v1/query", QueryRequest{
		SQL:  `SELECT Doc.Name FROM Doctor Doc WHERE Doc.DocID = ? AND Doc.Country = ?`,
		Args: []any{2, "Spain"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parameterized query: status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != "Gall" {
		t.Fatalf("rows = %v, want [[Gall]]", qr.Rows)
	}

	// EXPLAIN rides the same endpoint.
	resp, raw = post(t, base, "/v1/query", QueryRequest{
		SQL: `EXPLAIN SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Checkup'`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("plan")) {
		t.Fatalf("explain output lacks a plan:\n%s", raw)
	}
}

// TestExecCheckpointSchema covers live DML, the checkpoint endpoint and
// the schema view.
func TestExecCheckpointSchema(t *testing.T) {
	_, base := newTestServer(t, Config{})
	loadHospital(t, base)

	// Force the bulk build first so the INSERT below is live DML (a
	// delta row the checkpoint can absorb) rather than more staging.
	if resp, raw := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.DocID FROM Doctor Doc`}); resp.StatusCode != http.StatusOK {
		t.Fatalf("build query: %d %s", resp.StatusCode, raw)
	}

	resp, raw := post(t, base, "/v1/exec", QueryRequest{
		SQL:  `INSERT INTO Doctor VALUES (?, ?, ?)`,
		Args: []any{3, "Okafor", "Nigeria"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d: %s", resp.StatusCode, raw)
	}
	var er ExecResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.RowsAffected != 1 {
		t.Fatalf("exec response = %s (%v), want rows_affected 1", raw, err)
	}

	resp, raw = post(t, base, "/v1/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d: %s", resp.StatusCode, raw)
	}
	var cr CheckpointResponse
	if err := json.Unmarshal(raw, &cr); err != nil || cr.Absorbed != 1 {
		t.Fatalf("checkpoint response = %s (%v), want absorbed 1", raw, err)
	}

	resp, err := http.Get(base + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Loaded || len(sr.Tables) != 2 {
		t.Fatalf("schema = %+v, want loaded with 2 tables", sr)
	}
	var hidden int
	for _, tb := range sr.Tables {
		for _, c := range tb.Columns {
			if c.Hidden {
				hidden++
			}
		}
	}
	if hidden != 2 {
		t.Fatalf("hidden columns = %d, want 2 (Purpose, Visit.DocID)", hidden)
	}
}

// TestWireValidation pins the 4xx surface: malformed JSON, missing SQL,
// null args, arity mismatches, SELECT on /v1/exec, wrong method.
func TestWireValidation(t *testing.T) {
	_, base := newTestServer(t, Config{})
	loadHospital(t, base)

	check := func(status int, kind string, resp *http.Response, raw []byte) {
		t.Helper()
		if resp.StatusCode != status {
			t.Fatalf("status = %d, want %d: %s", resp.StatusCode, status, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Kind != kind {
			t.Fatalf("error = %s (%v), want kind %q", raw, err, kind)
		}
	}

	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	check(http.StatusBadRequest, "bad_request", resp, raw)

	resp2, raw := post(t, base, "/v1/query", QueryRequest{SQL: "   "})
	check(http.StatusBadRequest, "bad_request", resp2, raw)

	resp2, raw = post(t, base, "/v1/query", QueryRequest{
		SQL: `SELECT Doc.Name FROM Doctor Doc WHERE Doc.DocID = ?`, Args: []any{nil},
	})
	check(http.StatusBadRequest, "bad_request", resp2, raw)

	resp2, raw = post(t, base, "/v1/query", QueryRequest{
		SQL: `SELECT Doc.Name FROM Doctor Doc WHERE Doc.DocID = ?`, Args: []any{1, 2},
	})
	check(http.StatusBadRequest, "bad_request", resp2, raw)

	resp2, raw = post(t, base, "/v1/query", QueryRequest{SQL: `SELEKT nonsense`})
	check(http.StatusBadRequest, "bad_request", resp2, raw)

	resp2, raw = post(t, base, "/v1/exec", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
	check(http.StatusBadRequest, "bad_request", resp2, raw)
	if !bytes.Contains(raw, []byte("/v1/query")) {
		t.Fatalf("SELECT-on-exec error should redirect to /v1/query: %s", raw)
	}

	// Method mismatch: the Go 1.22 mux answers 405 itself.
	resp3, err := http.Get(base + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query = %d, want 405", resp3.StatusCode)
	}
}

// TestSaturation429 fills the single admission slot with a hook-blocked
// query and checks the next request bounces with 429 + Retry-After
// instead of queueing, then that the slot's release restores service.
func TestSaturation429(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var hooked bool
	srv, base := newTestServer(t,
		Config{MaxInflight: 1, RetryAfter: 1500 * time.Millisecond},
		core.WithQueryHook(func(ev core.QueryEvent) {
			if ev.Phase == core.QueryStart && !hooked {
				hooked = true
				close(entered)
				<-release
			}
		}))
	loadHospital(t, base)

	first := make(chan int, 1)
	go func() {
		resp, _ := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
		first <- resp.StatusCode
	}()
	<-entered

	resp, raw := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429: %s", resp.StatusCode, raw)
	}
	// 1500ms must round UP to 2s: a 0s hint would mean "hammer away".
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Kind != "saturated" {
		t.Fatalf("429 body = %s (%v), want kind saturated", raw, err)
	}

	close(release)
	if st := <-first; st != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", st)
	}
	if v, ok := srv.MetricsSnapshot().Get("http_rejected_total"); !ok || v.Value != 1 {
		t.Fatalf("http_rejected_total = %+v, want 1", v)
	}

	resp2, raw := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200: %s", resp2.StatusCode, raw)
	}
}

// TestQueueWaitAdmits checks the bounded queue: with QueueWait set, a
// request arriving at saturation waits for the slot instead of bouncing.
func TestQueueWaitAdmits(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var hooked bool
	_, base := newTestServer(t,
		Config{MaxInflight: 1, QueueWait: 30 * time.Second},
		core.WithQueryHook(func(ev core.QueryEvent) {
			if ev.Phase == core.QueryStart && !hooked {
				hooked = true
				close(entered)
				<-release
			}
		}))
	loadHospital(t, base)

	first := make(chan int, 1)
	go func() {
		resp, _ := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
		first <- resp.StatusCode
	}()
	<-entered
	second := make(chan int, 1)
	go func() {
		resp, _ := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Country FROM Doctor Doc`})
		second <- resp.StatusCode
	}()
	// The second request is now parked on the pool; release the slot.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if st := <-first; st != http.StatusOK {
		t.Fatalf("first = %d, want 200", st)
	}
	if st := <-second; st != http.StatusOK {
		t.Fatalf("queued request = %d, want 200", st)
	}
}

// TestClientDisconnectCancels checks deadline propagation: the client
// goes away while its query is hook-blocked, and when the engine
// resumes it sees the canceled context and abandons the work — counted
// by both the engine and the HTTP layer.
func TestClientDisconnectCancels(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var hooked bool
	srv, base := newTestServer(t, Config{},
		core.WithMetrics(true),
		core.WithQueryHook(func(ev core.QueryEvent) {
			if ev.Phase == core.QueryStart && !hooked {
				hooked = true
				close(entered)
				<-release
			}
		}))
	loadHospital(t, base)

	ctx, cancel := context.WithCancel(context.Background())
	body := bytes.NewReader([]byte(`{"sql": "SELECT Doc.Name FROM Doctor Doc"}`))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/query", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request returned without error")
	}
	// The server's background reader needs a moment to see the FIN and
	// cancel the request context; release the hook only afterwards so
	// the engine deterministically resumes into a canceled context.
	time.Sleep(500 * time.Millisecond)
	close(release)

	// The handler finishes asynchronously after the disconnect; poll the
	// canceled counter instead of racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := srv.MetricsSnapshot().Get("http_canceled_total"); ok && v.Value >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("http_canceled_total never incremented after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, ok := srv.DB().MetricsSnapshot().Get("queries_canceled_total"); !ok || v.Value < 1 {
		t.Fatalf("engine queries_canceled_total = %+v, want >= 1", v)
	}
}

// TestRequestTimeout checks the per-request deadline: a hook-blocked
// query overruns RequestTimeout and comes back 504.
func TestRequestTimeout(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var hooked bool
	_, base := newTestServer(t,
		Config{RequestTimeout: 30 * time.Millisecond},
		core.WithQueryHook(func(ev core.QueryEvent) {
			if ev.Phase == core.QueryStart && !hooked {
				hooked = true
				close(entered)
				<-release
			}
		}))
	loadHospital(t, base)

	type result struct {
		status int
		kind   string
	}
	got := make(chan result, 1)
	go func() {
		resp, raw := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
		var er ErrorResponse
		json.Unmarshal(raw, &er)
		got <- result{resp.StatusCode, er.Kind}
	}()
	<-entered
	time.Sleep(50 * time.Millisecond) // let the deadline lapse while blocked
	close(release)
	r := <-got
	if r.status != http.StatusGatewayTimeout || r.kind != "timeout" {
		t.Fatalf("timed-out request = %+v, want 504/timeout", r)
	}
}

// TestEngineErrorMapping pins writeEngineError's full status table with
// synthetic errors.
func TestEngineErrorMapping(t *testing.T) {
	db, err := core.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(db, Config{RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		err        error
		status     int
		kind       string
		retryAfter string
	}{
		{context.Canceled, statusClientClosedRequest, "canceled", ""},
		{fmt.Errorf("run: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "timeout", ""},
		{fmt.Errorf("flash: %w", fault.ErrDeviceDead), http.StatusInternalServerError, "device_dead", ""},
		{fmt.Errorf("flash: %w", fault.ErrTransient), http.StatusServiceUnavailable, "transient", "2"},
		{fmt.Errorf("flash: %w", fault.ErrPermanent), http.StatusInternalServerError, "fatal", ""},
		{errors.New("anything else"), http.StatusBadRequest, "bad_request", ""},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		srv.writeEngineError(rec, c.err, "bad_request", http.StatusBadRequest)
		if rec.Code != c.status {
			t.Errorf("%v: status = %d, want %d", c.err, rec.Code, c.status)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Kind != c.kind {
			t.Errorf("%v: body = %s (%v), want kind %q", c.err, rec.Body.Bytes(), err, c.kind)
		}
		if ra := rec.Header().Get("Retry-After"); ra != c.retryAfter {
			t.Errorf("%v: Retry-After = %q, want %q", c.err, ra, c.retryAfter)
		}
	}
}

// TestDeadDeviceSurfaces pins the fault path end to end: a power cut on
// the first device op kills the engine; the query answers 500 with kind
// device_dead and /healthz flips to 503.
func TestDeadDeviceSurfaces(t *testing.T) {
	plan, err := fault.ParsePlan("cutop=1")
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, Config{}, core.WithFaultPlan(plan))
	loadHospital(t, base)

	resp, raw := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Vis.VisID FROM Visit Vis WHERE Vis.VisID > 0`})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("dead-device query status = %d: %s", resp.StatusCode, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Kind != "device_dead" {
		t.Fatalf("dead-device body = %s (%v), want kind device_dead", raw, err)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after power cut = %d, want 503", hr.StatusCode)
	}
}

// TestGracefulDrain is the shutdown acceptance test: Shutdown returns
// only after the hook-blocked in-flight request completes with 200 — no
// in-flight request is aborted.
func TestGracefulDrain(t *testing.T) {
	db, err := core.Open(core.WithQueryHook(queryBlocker()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(hospitalDDL); err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	first := make(chan int, 1)
	go func() {
		resp, _ := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`})
		first <- resp.StatusCode
	}()
	<-blockerEntered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(blockerRelease)
	if st := <-first; st != http.StatusOK {
		t.Fatalf("in-flight request during shutdown = %d, want 200", st)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve error = %v", err)
	}

	// After Server.Close, direct handler calls answer 503 shutdown.
	srv.Close()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"sql":"SELECT Doc.Name FROM Doctor Doc"}`))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close request = %d, want 503", rec.Code)
	}
}

// blockerEntered/blockerRelease back queryBlocker; package-scoped so the
// drain test can reach them (one use per test binary).
var (
	blockerEntered = make(chan struct{})
	blockerRelease = make(chan struct{})
)

func queryBlocker() core.QueryHook {
	var hooked bool
	return func(ev core.QueryEvent) {
		if ev.Phase == core.QueryStart && !hooked {
			hooked = true
			close(blockerEntered)
			<-blockerRelease
		}
	}
}

// TestShardedFaultyServer drives the server over a sharded engine with
// a light transient-fault plan: every request must still answer 200,
// the retries staying below the wire.
func TestShardedFaultyServer(t *testing.T) {
	plan, err := fault.ParsePlan("seed=7,read.transient=0.001")
	if err != nil {
		t.Fatal(err)
	}
	_, base := newTestServer(t, Config{MaxInflight: 4},
		core.WithShards(2), core.WithFaultPlan(plan))
	loadHospital(t, base)

	for i := 0; i < 25; i++ {
		resp, raw := post(t, base, "/v1/query", QueryRequest{
			SQL:  `SELECT Vis.VisID FROM Visit Vis WHERE Vis.VisID = ?`,
			Args: []any{i%3 + 1},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	resp, raw := post(t, base, "/v1/query", QueryRequest{
		SQL: `SELECT COUNT(*) FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scatter-gather over faults: status %d: %s", resp.StatusCode, raw)
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != float64(2) {
		t.Fatalf("sharded COUNT rows = %v, want [[2]]", qr.Rows)
	}
}

// TestMetricsSurfaces checks the merged observability endpoints: the
// server section in /debug/vars and the ghostdb_server_* exposition.
func TestMetricsSurfaces(t *testing.T) {
	_, base := newTestServer(t, Config{})
	loadHospital(t, base)
	if resp, raw := post(t, base, "/v1/query", QueryRequest{SQL: `SELECT Doc.Name FROM Doctor Doc`}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Server map[string]json.RawMessage `json:"server"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Server["http_requests_total"]; !ok {
		t.Fatalf("/debug/vars server section = %v, want http_requests_total", doc.Server)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ghostdb_server_http_requests_total",
		"ghostdb_server_http_request_wall_ns_bucket",
		"ghostdb_queries_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
