// Package datagen generates the synthetic hospital dataset of the demo
// (Section 5): the Figure 3 tree schema — Doctor, Patient, Medicine,
// Visit, Prescription — with one million prescriptions at full scale,
// deterministic under a seed, with skewed value distributions and the
// constants the demo query relies on ("Sclerosis", "Antibiotic", a date
// cutoff with controllable selectivity).
//
// The paper used proprietary-feeling health data it could not publish;
// like the authors, we substitute a synthetic generator that exercises
// the same code paths.
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/ghostdb/ghostdb/internal/value"
)

// Config controls dataset generation. Zero table cardinalities derive
// from Prescriptions at the paper's ratios (1M prescriptions -> 100K
// visits, 10K patients, 1K doctors, 1K medicines).
type Config struct {
	Prescriptions int
	Visits        int
	Patients      int
	Doctors       int
	Medicines     int
	Seed          int64
}

// Default is the paper's scale: one million prescriptions.
func Default() Config { return Config{Prescriptions: 1_000_000, Seed: 42} }

// Small is a test-friendly scale that keeps the same ratios.
func Small() Config { return Config{Prescriptions: 20_000, Seed: 42} }

// Tiny is for unit tests.
func Tiny() Config { return Config{Prescriptions: 600, Seed: 42} }

// WithScale returns a config with the given number of prescriptions and
// derived dimension cardinalities.
func WithScale(prescriptions int) Config {
	return Config{Prescriptions: prescriptions, Seed: 42}
}

func (c Config) normalized() Config {
	derive := func(explicit, div, min int) int {
		if explicit > 0 {
			return explicit
		}
		n := c.Prescriptions / div
		if n < min {
			n = min
		}
		return n
	}
	c.Visits = derive(c.Visits, 10, 4)
	c.Patients = derive(c.Patients, 100, 3)
	c.Doctors = derive(c.Doctors, 1000, 2)
	c.Medicines = derive(c.Medicines, 1000, 2)
	return c
}

// Table is a generated table in columnar form: Cols[i] holds the values
// of Columns[i] for rows 1..N in ID order.
type Table struct {
	Name    string
	Columns []string
	Kinds   []value.Kind
	Cols    [][]value.Value
	N       int
}

// Col returns the named column's values, or nil.
func (t *Table) Col(name string) []value.Value {
	for i, c := range t.Columns {
		if c == name {
			return t.Cols[i]
		}
	}
	return nil
}

// Dataset is the generated database plus its DDL.
type Dataset struct {
	Config Config
	DDL    []string
	Tables map[string]*Table
	order  []string
}

// TableNames lists the tables in DDL order.
func (d *Dataset) TableNames() []string { return d.order }

// Table returns the named table.
func (d *Dataset) Table(name string) *Table { return d.Tables[name] }

// The value pools. Hidden string pools (purposes, patient names) are
// disjoint from visible pools by construction so the trace auditor can
// recognize a leaked hidden value unambiguously.
var (
	countries = []string{
		"France", "Spain", "Italy", "Germany", "Austria", "Belgium",
		"Portugal", "Greece", "Poland", "Norway", "Sweden", "Finland",
		"Ireland", "Hungary", "Romania", "Croatia", "Denmark", "Estonia",
		"Slovenia", "Malta",
	}
	specialities = []string{
		"Cardiology", "Oncology", "Neurology", "Pediatrics", "Radiology",
		"Dermatology", "Endocrinology", "Geriatrics", "Hematology",
		"Nephrology", "Urology", "Psychiatry",
	}
	medTypes = []string{
		"Antibiotic", "Analgesic", "Antiviral", "Antihistamine",
		"Antidepressant", "Diuretic", "Sedative", "Stimulant",
		"Vaccine", "Statin", "Steroid", "Anticoagulant",
	}
	medEffects = []string{
		"Bactericidal", "PainRelief", "AntiInflammatory", "Calming",
		"Vasodilation", "ImmuneBoost", "Hydrating", "Clotting",
		"Cholesterol", "Antipyretic",
	}
	// Hidden pool: visit purposes (Vis.Purpose is HIDDEN).
	purposes = []string{
		"Sclerosis", "Diabetes-Type1", "Diabetes-Type2", "Hypertension",
		"Migraine", "Asthma", "Arthritis", "Bronchitis", "Depression",
		"Insomnia", "Obesity", "Anemia", "Epilepsy", "Glaucoma",
		"Hepatitis", "Thyroiditis", "Gastritis", "Dermatitis",
		"Tendinitis", "Sinusitis", "Cystitis", "Colitis", "Phlebitis",
		"Neuritis", "Otitis",
	}
)

// Demo constants used by the paper's query and the experiments.
const (
	DemoPurpose = "Sclerosis"
	DemoMedType = "Antibiotic"
	DemoCountry = "Spain"
)

// Visit dates span [DateLo, DateHi] uniformly, so selectivity of a date
// cutoff is proportional to its position in the range.
var (
	dateLo = value.NewDate(2004, 1, 1)
	dateHi = value.NewDate(2007, 6, 30)
)

// DateCutoff returns a literal d such that "Vis.Date > d" selects about
// the given fraction of visits (0 < sel < 1).
func DateCutoff(sel float64) value.Value {
	if sel <= 0 {
		return dateHi
	}
	if sel >= 1 {
		return value.NewDateDays(dateLo.DateDays() - 1)
	}
	span := dateHi.DateDays() - dateLo.DateDays()
	return value.NewDateDays(dateHi.DateDays() - int64(sel*float64(span)))
}

// PaperDateLiteral is the demo query's cutoff, 05-11-2006, which selects
// roughly 19% of the uniform [2004-01-01, 2007-06-30] date range.
func PaperDateLiteral() value.Value { return value.NewDate(2006, 11, 5) }

// DDL returns the schema's CREATE TABLE statements (Figure 3; hidden
// attributes carry the superscript H in the paper).
func DDL() []string {
	return []string{
		`CREATE TABLE Doctor (
			DocID INTEGER PRIMARY KEY,
			Name CHAR(40),
			Speciality CHAR(30),
			Zip INTEGER,
			Country CHAR(20))`,
		`CREATE TABLE Patient (
			PatID INTEGER PRIMARY KEY,
			Name CHAR(40) HIDDEN,
			Age INTEGER,
			BodyMassIndex INTEGER HIDDEN,
			Country CHAR(20))`,
		`CREATE TABLE Medicine (
			MedID INTEGER PRIMARY KEY,
			Name CHAR(40),
			Effect CHAR(30),
			Type CHAR(30))`,
		`CREATE TABLE Visit (
			VisID INTEGER PRIMARY KEY,
			Date DATE,
			Purpose CHAR(100) HIDDEN,
			DocID REFERENCES Doctor(DocID) HIDDEN,
			PatID REFERENCES Patient(PatID) HIDDEN)`,
		`CREATE TABLE Prescription (
			PreID INTEGER PRIMARY KEY,
			Quantity INTEGER HIDDEN,
			Frequency INTEGER,
			WhenWritten DATE HIDDEN,
			MedID REFERENCES Medicine(MedID) HIDDEN,
			VisID REFERENCES Visit(VisID) HIDDEN)`,
	}
}

// Generate builds the dataset deterministically from the config.
func Generate(cfg Config) *Dataset {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Config: cfg,
		DDL:    DDL(),
		Tables: map[string]*Table{},
		order:  []string{"Doctor", "Patient", "Medicine", "Visit", "Prescription"},
	}

	ids := func(n int) []value.Value {
		out := make([]value.Value, n)
		for i := range out {
			out[i] = value.NewInt(int64(i + 1))
		}
		return out
	}
	pick := func(pool []string) value.Value {
		return value.NewString(pool[rng.Intn(len(pool))])
	}
	// zipfPick skews toward the first pool entries, putting the demo
	// constants ("Sclerosis", "Antibiotic") at predictable frequencies.
	zipfPick := func(pool []string) value.Value {
		// Simple discrete skew: rank r with weight 1/(r+1).
		total := 0.0
		for r := range pool {
			total += 1.0 / float64(r+1)
		}
		x := rng.Float64() * total
		for r := range pool {
			x -= 1.0 / float64(r+1)
			if x <= 0 {
				return value.NewString(pool[r])
			}
		}
		return value.NewString(pool[len(pool)-1])
	}

	// Doctor.
	doc := &Table{Name: "Doctor", N: cfg.Doctors,
		Columns: []string{"DocID", "Name", "Speciality", "Zip", "Country"},
		Kinds:   []value.Kind{value.Int, value.String, value.String, value.Int, value.String}}
	docNames := make([]value.Value, cfg.Doctors)
	docSpecs := make([]value.Value, cfg.Doctors)
	docZips := make([]value.Value, cfg.Doctors)
	docCountries := make([]value.Value, cfg.Doctors)
	for i := 0; i < cfg.Doctors; i++ {
		docNames[i] = value.NewString(fmt.Sprintf("Dr-%05d", i+1))
		docSpecs[i] = pick(specialities)
		docZips[i] = value.NewInt(int64(10000 + rng.Intn(89999)))
		docCountries[i] = zipfPick(countries)
	}
	doc.Cols = [][]value.Value{ids(cfg.Doctors), docNames, docSpecs, docZips, docCountries}
	ds.Tables["Doctor"] = doc

	// Patient. Name and BodyMassIndex are hidden.
	pat := &Table{Name: "Patient", N: cfg.Patients,
		Columns: []string{"PatID", "Name", "Age", "BodyMassIndex", "Country"},
		Kinds:   []value.Kind{value.Int, value.String, value.Int, value.Int, value.String}}
	patNames := make([]value.Value, cfg.Patients)
	patAges := make([]value.Value, cfg.Patients)
	patBMIs := make([]value.Value, cfg.Patients)
	patCountries := make([]value.Value, cfg.Patients)
	for i := 0; i < cfg.Patients; i++ {
		patNames[i] = value.NewString(fmt.Sprintf("Pat-%06d", i+1))
		patAges[i] = value.NewInt(int64(1 + rng.Intn(99)))
		patBMIs[i] = value.NewInt(int64(15 + rng.Intn(31)))
		patCountries[i] = zipfPick(countries)
	}
	pat.Cols = [][]value.Value{ids(cfg.Patients), patNames, patAges, patBMIs, patCountries}
	ds.Tables["Patient"] = pat

	// Medicine.
	med := &Table{Name: "Medicine", N: cfg.Medicines,
		Columns: []string{"MedID", "Name", "Effect", "Type"},
		Kinds:   []value.Kind{value.Int, value.String, value.String, value.String}}
	medNames := make([]value.Value, cfg.Medicines)
	medEffectsCol := make([]value.Value, cfg.Medicines)
	medTypesCol := make([]value.Value, cfg.Medicines)
	for i := 0; i < cfg.Medicines; i++ {
		medNames[i] = value.NewString(fmt.Sprintf("Med-%05d", i+1))
		medEffectsCol[i] = pick(medEffects)
		medTypesCol[i] = zipfPick(medTypes)
	}
	med.Cols = [][]value.Value{ids(cfg.Medicines), medNames, medEffectsCol, medTypesCol}
	ds.Tables["Medicine"] = med

	// Visit. Purpose, DocID, PatID are hidden.
	vis := &Table{Name: "Visit", N: cfg.Visits,
		Columns: []string{"VisID", "Date", "Purpose", "DocID", "PatID"},
		Kinds:   []value.Kind{value.Int, value.Date, value.String, value.Int, value.Int}}
	span := int(dateHi.DateDays() - dateLo.DateDays())
	visDates := make([]value.Value, cfg.Visits)
	visPurposes := make([]value.Value, cfg.Visits)
	visDocs := make([]value.Value, cfg.Visits)
	visPats := make([]value.Value, cfg.Visits)
	for i := 0; i < cfg.Visits; i++ {
		visDates[i] = value.NewDateDays(dateLo.DateDays() + int64(rng.Intn(span+1)))
		visPurposes[i] = zipfPick(purposes)
		visDocs[i] = value.NewInt(int64(1 + rng.Intn(cfg.Doctors)))
		visPats[i] = value.NewInt(int64(1 + rng.Intn(cfg.Patients)))
	}
	vis.Cols = [][]value.Value{ids(cfg.Visits), visDates, visPurposes, visDocs, visPats}
	ds.Tables["Visit"] = vis

	// Prescription. Quantity, WhenWritten, MedID, VisID are hidden.
	pre := &Table{Name: "Prescription", N: cfg.Prescriptions,
		Columns: []string{"PreID", "Quantity", "Frequency", "WhenWritten", "MedID", "VisID"},
		Kinds:   []value.Kind{value.Int, value.Int, value.Int, value.Date, value.Int, value.Int}}
	preQty := make([]value.Value, cfg.Prescriptions)
	preFreq := make([]value.Value, cfg.Prescriptions)
	preWhen := make([]value.Value, cfg.Prescriptions)
	preMeds := make([]value.Value, cfg.Prescriptions)
	preVis := make([]value.Value, cfg.Prescriptions)
	for i := 0; i < cfg.Prescriptions; i++ {
		visID := 1 + rng.Intn(cfg.Visits)
		preQty[i] = value.NewInt(int64(1 + rng.Intn(100)))
		preFreq[i] = value.NewInt(int64(1 + rng.Intn(4)))
		preWhen[i] = value.NewDateDays(visDates[visID-1].DateDays() + int64(rng.Intn(4)))
		preMeds[i] = value.NewInt(int64(1 + rng.Intn(cfg.Medicines)))
		preVis[i] = value.NewInt(int64(visID))
	}
	pre.Cols = [][]value.Value{ids(cfg.Prescriptions), preQty, preFreq, preWhen, preMeds, preVis}
	ds.Tables["Prescription"] = pre

	return ds
}
