package datagen

import (
	"testing"

	"github.com/ghostdb/ghostdb/internal/value"
)

func TestCardinalityRatios(t *testing.T) {
	ds := Generate(WithScale(100_000))
	want := map[string]int{
		"Prescription": 100_000,
		"Visit":        10_000,
		"Patient":      1_000,
		"Doctor":       100,
		"Medicine":     100,
	}
	for name, n := range want {
		tb := ds.Table(name)
		if tb == nil || tb.N != n {
			t.Errorf("%s: %v rows, want %d", name, tb, n)
		}
		for i, col := range tb.Cols {
			if len(col) != n {
				t.Errorf("%s column %d has %d values", name, i, len(col))
			}
		}
	}
}

func TestDefaultIsPaperScale(t *testing.T) {
	if Default().Prescriptions != 1_000_000 {
		t.Error("default scale must be the paper's one million prescriptions")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Tiny())
	b := Generate(Tiny())
	for _, name := range a.TableNames() {
		ta, tb := a.Table(name), b.Table(name)
		for c := range ta.Cols {
			for r := range ta.Cols[c] {
				if ta.Cols[c][r] != tb.Cols[c][r] {
					t.Fatalf("%s col %d row %d differs across runs", name, c, r)
				}
			}
		}
	}
	seeded := Generate(Config{Prescriptions: 600, Seed: 99})
	diff := false
	for r, v := range seeded.Table("Visit").Col("Purpose") {
		if v != a.Table("Visit").Col("Purpose")[r] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	ds := Generate(Tiny())
	check := func(table, col, ref string) {
		n := ds.Table(ref).N
		for i, v := range ds.Table(table).Col(col) {
			id := v.Int()
			if id < 1 || id > int64(n) {
				t.Fatalf("%s.%s row %d: %d out of 1..%d", table, col, i, id, n)
			}
		}
	}
	check("Visit", "DocID", "Doctor")
	check("Visit", "PatID", "Patient")
	check("Prescription", "MedID", "Medicine")
	check("Prescription", "VisID", "Visit")
}

func TestPrimaryKeysDense(t *testing.T) {
	ds := Generate(Tiny())
	for _, name := range ds.TableNames() {
		pks := ds.Table(name).Cols[0]
		for i, v := range pks {
			if v.Int() != int64(i+1) {
				t.Fatalf("%s key %d = %v", name, i, v)
			}
		}
	}
}

func TestDemoConstantsPresent(t *testing.T) {
	ds := Generate(Small())
	countVal := func(table, col, want string) int {
		n := 0
		for _, v := range ds.Table(table).Col(col) {
			if v.Kind() == value.String && v.Str() == want {
				n++
			}
		}
		return n
	}
	purposes := countVal("Visit", "Purpose", DemoPurpose)
	if purposes == 0 {
		t.Error("no Sclerosis visits")
	}
	// Zipf skew puts the demo purpose at a healthy share.
	if frac := float64(purposes) / float64(ds.Table("Visit").N); frac < 0.05 {
		t.Errorf("Sclerosis fraction %.3f too small", frac)
	}
	if countVal("Medicine", "Type", DemoMedType) == 0 {
		t.Error("no Antibiotic medicines")
	}
	if countVal("Doctor", "Country", DemoCountry) == 0 {
		t.Error("no Spanish doctors")
	}
}

func TestDateCutoffSelectivity(t *testing.T) {
	ds := Generate(Small())
	dates := ds.Table("Visit").Col("Date")
	for _, sel := range []float64{0.01, 0.1, 0.5, 0.9} {
		cut := DateCutoff(sel)
		n := 0
		for _, d := range dates {
			if d.DateDays() > cut.DateDays() {
				n++
			}
		}
		got := float64(n) / float64(len(dates))
		if got < sel*0.7-0.01 || got > sel*1.3+0.01 {
			t.Errorf("DateCutoff(%.2f) actually selects %.3f", sel, got)
		}
	}
	// Degenerate arguments clamp.
	if DateCutoff(0).DateDays() <= DateCutoff(0.5).DateDays() {
		t.Error("sel=0 must give the max cutoff")
	}
	if DateCutoff(1.5).DateDays() >= DateCutoff(0.5).DateDays() {
		t.Error("sel>=1 must give the min cutoff")
	}
}

func TestPaperDateLiteral(t *testing.T) {
	d := PaperDateLiteral()
	y, m, day := d.Civil()
	if y != 2006 || m != 11 || day != 5 {
		t.Errorf("paper literal = %v", d)
	}
	ds := Generate(Small())
	n := 0
	for _, v := range ds.Table("Visit").Col("Date") {
		if v.DateDays() > d.DateDays() {
			n++
		}
	}
	frac := float64(n) / float64(ds.Table("Visit").N)
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("paper cutoff selects %.3f of visits, want ~0.19", frac)
	}
}

func TestHiddenPoolsDisjointFromVisible(t *testing.T) {
	vis := map[string]bool{}
	for _, pool := range [][]string{countries, specialities, medTypes, medEffects} {
		for _, v := range pool {
			vis[v] = true
		}
	}
	for _, p := range purposes {
		if vis[p] {
			t.Errorf("hidden purpose %q collides with a visible pool", p)
		}
	}
}

func TestWhenWrittenFollowsVisitDate(t *testing.T) {
	ds := Generate(Tiny())
	visDates := ds.Table("Visit").Col("Date")
	visIDs := ds.Table("Prescription").Col("VisID")
	for i, w := range ds.Table("Prescription").Col("WhenWritten") {
		vd := visDates[visIDs[i].Int()-1]
		delta := w.DateDays() - vd.DateDays()
		if delta < 0 || delta > 3 {
			t.Fatalf("prescription %d written %d days from its visit", i+1, delta)
		}
	}
}

func TestExplicitCardinalities(t *testing.T) {
	ds := Generate(Config{Prescriptions: 100, Visits: 10, Patients: 5, Doctors: 2, Medicines: 3, Seed: 1})
	if ds.Table("Visit").N != 10 || ds.Table("Doctor").N != 2 || ds.Table("Medicine").N != 3 || ds.Table("Patient").N != 5 {
		t.Error("explicit cardinalities ignored")
	}
}

func TestDDLParsesIntoTreeSchema(t *testing.T) {
	if len(DDL()) != 5 {
		t.Fatalf("%d DDL statements", len(DDL()))
	}
}
