package skt

import (
	"fmt"
	"testing"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// fixture builds the Figure 3 tree with tiny, hand-checkable data:
//
//	Doctor  (2 rows), Patient (3 rows), Medicine (2 rows)
//	Visit   (4 rows): DocID = [1,2,1,2], PatID = [1,2,3,1]
//	Prescription (6): MedID = [1,2,1,2,1,2], VisID = [1,1,2,3,4,4]
type fixture struct {
	st  *store.Store
	sch *schema.Schema
	fks map[string][]uint32
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dev, err := device.New(device.SmartUSB2007(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.New()
	mk := func(name string, cols ...schema.Column) {
		tb, err := schema.NewTable(name, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := sch.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	pk := func(n string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, PrimaryKey: true}
	}
	fk := func(n, ref string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, RefTable: ref, Hidden: true}
	}
	mk("Doctor", pk("DocID"))
	mk("Patient", pk("PatID"))
	mk("Medicine", pk("MedID"))
	mk("Visit", pk("VisID"), fk("DocID", "Doctor"), fk("PatID", "Patient"))
	mk("Prescription", pk("PreID"), fk("MedID", "Medicine"), fk("VisID", "Visit"))
	if err := sch.Freeze(); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		st:  st,
		sch: sch,
		fks: map[string][]uint32{
			"Visit.DocID":        {1, 2, 1, 2},
			"Visit.PatID":        {1, 2, 3, 1},
			"Prescription.MedID": {1, 2, 1, 2, 1, 2},
			"Prescription.VisID": {1, 1, 2, 3, 4, 4},
		},
	}
}

func (f *fixture) lookup(table, col string) ([]uint32, error) {
	ids, ok := f.fks[table+"."+col]
	if !ok {
		return nil, fmt.Errorf("no fixture fk %s.%s", table, col)
	}
	return ids, nil
}

func TestBuildPrescriptionSKT(t *testing.T) {
	f := newFixture(t)
	s, err := Build(f.st, f.sch, "Prescription", 6, f.lookup)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d", s.Len())
	}
	// Members in pre-order of Prescription's FK declarations.
	want := []string{"Medicine", "Visit", "Doctor", "Patient"}
	if len(s.Members) != len(want) {
		t.Fatalf("Members = %v", s.Members)
	}
	for i, m := range want {
		if s.Members[i] != m {
			t.Errorf("Members[%d] = %s, want %s", i, s.Members[i], m)
		}
		if !s.HasMember(m) {
			t.Errorf("HasMember(%s) = false", m)
		}
	}
	if s.HasMember("Ghost") {
		t.Error("phantom member")
	}

	// Transitive join: PreID -> DocID goes through VisID.
	// Pre 1 -> Vis 1 -> Doc 1; Pre 4 -> Vis 3 -> Doc 1; Pre 6 -> Vis 4 -> Doc 2.
	cases := []struct {
		preID uint32
		table string
		want  uint32
	}{
		{1, "Medicine", 1}, {2, "Medicine", 2},
		{1, "Visit", 1}, {3, "Visit", 2}, {6, "Visit", 4},
		{1, "Doctor", 1}, {4, "Doctor", 1}, {6, "Doctor", 2},
		{1, "Patient", 1}, {4, "Patient", 3}, {5, "Patient", 1},
		{2, "Prescription", 2}, // root lookup is the identity
	}
	for _, c := range cases {
		got, err := s.Lookup(c.preID, c.table)
		if err != nil {
			t.Errorf("Lookup(%d, %s): %v", c.preID, c.table, err)
			continue
		}
		if got != c.want {
			t.Errorf("Lookup(%d, %s) = %d, want %d", c.preID, c.table, got, c.want)
		}
	}
}

func TestBuildVisitSKT(t *testing.T) {
	f := newFixture(t)
	s, err := Build(f.st, f.sch, "Visit", 4, f.lookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Members) != 2 {
		t.Fatalf("Members = %v", s.Members)
	}
	got, err := s.Lookup(3, "Doctor")
	if err != nil || got != 1 {
		t.Errorf("Lookup(3, Doctor) = %d, %v", got, err)
	}
	got, err = s.Lookup(2, "Patient")
	if err != nil || got != 2 {
		t.Errorf("Lookup(2, Patient) = %d, %v", got, err)
	}
	// Medicine is not in Visit's subtree.
	if _, err := s.Lookup(1, "Medicine"); err == nil {
		t.Error("lookup outside subtree accepted")
	}
}

func TestLookupBounds(t *testing.T) {
	f := newFixture(t)
	s, err := Build(f.st, f.sch, "Prescription", 6, f.lookup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(0, "Visit"); err == nil {
		t.Error("root ID 0 accepted")
	}
	if _, err := s.Lookup(7, "Visit"); err == nil {
		t.Error("root ID past end accepted")
	}
}

func TestLookupMany(t *testing.T) {
	f := newFixture(t)
	s, err := Build(f.st, f.sch, "Prescription", 6, f.lookup)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, 3)
	if err := s.LookupMany(4, []string{"Medicine", "Visit", "Doctor"}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 3 || out[2] != 1 {
		t.Errorf("LookupMany = %v", out)
	}
	if err := s.LookupMany(1, []string{"Medicine", "Visit"}, make([]uint32, 1)); err == nil {
		t.Error("short output buffer accepted")
	}
	if err := s.LookupMany(1, []string{"Nope"}, out); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := Build(f.st, f.sch, "Ghost", 6, f.lookup); err == nil {
		t.Error("unknown root accepted")
	}
	// Missing FK data.
	broken := func(table, col string) ([]uint32, error) {
		return nil, fmt.Errorf("no data")
	}
	if _, err := Build(f.st, f.sch, "Prescription", 6, broken); err == nil {
		t.Error("broken FK lookup accepted")
	}
	// FK referencing a row beyond the child cardinality.
	outOfRange := func(table, col string) ([]uint32, error) {
		if table == "Prescription" && col == "VisID" {
			return []uint32{1, 1, 2, 3, 4, 4}, nil
		}
		if table == "Prescription" && col == "MedID" {
			return []uint32{1, 2, 1, 2, 1, 2}, nil
		}
		// Visit has only 4 rows but Prescription references visit IDs up
		// to 4; truncate Visit's own FK arrays to 2 rows to break it.
		return []uint32{1, 2}, nil
	}
	if _, err := Build(f.st, f.sch, "Prescription", 6, outOfRange); err == nil {
		t.Error("FK range violation accepted")
	}
}

func TestBytesFootprint(t *testing.T) {
	f := newFixture(t)
	s, err := Build(f.st, f.sch, "Prescription", 6, f.lookup)
	if err != nil {
		t.Fatal(err)
	}
	// 4 member columns x 6 rows x 4 bytes.
	if s.Bytes() != 4*6*4 {
		t.Errorf("Bytes = %d, want %d", s.Bytes(), 4*6*4)
	}
}

func TestLeafRootSKTIsEmpty(t *testing.T) {
	f := newFixture(t)
	s, err := Build(f.st, f.sch, "Doctor", 2, f.lookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Members) != 0 || s.Bytes() != 0 {
		t.Errorf("leaf SKT has members %v", s.Members)
	}
	// Identity lookup still works.
	if got, err := s.Lookup(2, "Doctor"); err != nil || got != 2 {
		t.Errorf("identity lookup = %d, %v", got, err)
	}
}
