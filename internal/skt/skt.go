// Package skt implements Subtree Key Tables, the paper's generalized join
// indices (Section 4, Figure 3): for a table R, the SKT rooted at R "joins
// all tables in the subtree to the subtree root with the IDs sorted based
// on the order of IDs in the root table".
//
// Because GhostDB assigns dense 1-based identifiers in load order, an SKT
// is a positional structure: row i (for root ID i+1) holds the ID of every
// descendant table joined through the foreign-key chain. A root-to-any-
// descendant join is therefore a single array lookup — no RAM-hungry join
// algorithm runs at query time, which is the point of the design.
package skt

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/store"
)

// SKT is a Subtree Key Table rooted at Root. Members lists the descendant
// tables in schema pre-order; each has a packed ID column of the same
// cardinality as the root table.
type SKT struct {
	Root    string
	Members []string
	n       int
	cols    map[string]*store.IDColumn
}

// FKLookup supplies the loader's foreign-key arrays: fk(table, column)
// returns, for each row of table (0-based, in ID order), the referenced
// row ID. Build uses it to compose transitive joins.
type FKLookup func(table, fkColumn string) ([]uint32, error)

// Build constructs the SKT rooted at root. The schema must be frozen; fk
// provides the foreign-key columns gathered during the bulk load.
func Build(st *store.Store, sch *schema.Schema, root string, rootRows int, fk FKLookup) (*SKT, error) {
	rootTable, ok := sch.Table(root)
	if !ok {
		return nil, fmt.Errorf("skt: unknown root %s", root)
	}
	s := &SKT{Root: rootTable.Name, n: rootRows, cols: map[string]*store.IDColumn{}}

	// ids[table] = per-root-row ID of that member table.
	ids := map[string][]uint32{}

	var descend func(from string, fromIDs []uint32) error
	descend = func(from string, fromIDs []uint32) error {
		ft, _ := sch.Table(from)
		for _, fkCol := range ft.ForeignKeys() {
			child := fkCol.RefTable
			raw, err := fk(from, fkCol.Name)
			if err != nil {
				return fmt.Errorf("skt: fk %s.%s: %w", from, fkCol.Name, err)
			}
			childIDs := make([]uint32, rootRows)
			for i, fromID := range fromIDs {
				if fromID == 0 {
					return fmt.Errorf("skt: row %d of %s has no ID", i, from)
				}
				if int(fromID) > len(raw) {
					return fmt.Errorf("skt: %s ID %d exceeds %s cardinality %d", from, fromID, from, len(raw))
				}
				childIDs[i] = raw[fromID-1]
			}
			s.Members = append(s.Members, child)
			ids[child] = childIDs
			if err := descend(child, childIDs); err != nil {
				return err
			}
		}
		return nil
	}

	// Seed with the identity mapping for the root itself.
	rootIDs := make([]uint32, rootRows)
	for i := range rootIDs {
		rootIDs[i] = uint32(i + 1)
	}
	if err := descend(rootTable.Name, rootIDs); err != nil {
		return nil, err
	}

	for _, member := range s.Members {
		col, err := st.BuildIDColumn(ids[member])
		if err != nil {
			return nil, fmt.Errorf("skt: writing %s column: %w", member, err)
		}
		s.cols[strings.ToLower(member)] = col
	}
	return s, nil
}

// Len reports the root-table cardinality.
func (s *SKT) Len() int { return s.n }

// Bytes reports the flash footprint of all member columns.
func (s *SKT) Bytes() int64 {
	var total int64
	for _, c := range s.cols {
		total += c.Bytes()
	}
	return total
}

// HasMember reports whether the SKT covers the table.
func (s *SKT) HasMember(table string) bool {
	_, ok := s.cols[strings.ToLower(table)]
	return ok
}

// Lookup returns the ID of the member table's tuple joined to the given
// root ID (1-based). Sorted rootID access patterns are page-cache
// friendly — exactly why the paper sorts SKTs by root ID.
func (s *SKT) Lookup(rootID uint32, table string) (uint32, error) {
	if strings.EqualFold(table, s.Root) {
		return rootID, nil
	}
	col, ok := s.cols[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("skt: %s is not in the subtree of %s", table, s.Root)
	}
	if rootID == 0 || int(rootID) > s.n {
		return 0, fmt.Errorf("skt: root ID %d out of range 1..%d", rootID, s.n)
	}
	return col.Get(int(rootID - 1))
}

// Member resolves a member table to its packed ID column once, for
// callers doing many lookups: col.Get(rootID-1) is Lookup without the
// per-call name normalization. ok is false for the root itself (identity
// mapping, no column) and unknown reports tables outside the subtree.
func (s *SKT) Member(table string) (col *store.IDColumn, ok, unknown bool) {
	if strings.EqualFold(table, s.Root) {
		return nil, false, false
	}
	col, found := s.cols[strings.ToLower(table)]
	if !found {
		return nil, false, true
	}
	return col, true, false
}

// LookupMany fills out[i] with the ID of tables[i] joined to rootID.
func (s *SKT) LookupMany(rootID uint32, tables []string, out []uint32) error {
	if len(out) < len(tables) {
		return fmt.Errorf("skt: output buffer %d for %d tables", len(out), len(tables))
	}
	for i, t := range tables {
		id, err := s.Lookup(rootID, t)
		if err != nil {
			return err
		}
		out[i] = id
	}
	return nil
}
