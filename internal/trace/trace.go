// Package trace records every message exchanged between the components of
// the GhostDB platform — terminal (client PC), public server, smart USB
// device and secure display — and implements the "spy view" of demo phase 1:
// what a Trojan horse snooping the wires would observe, plus an auditor
// that proves no hidden value ever crosses into the spy's view.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ghostdb/ghostdb/internal/value"
)

// Party identifies a component of the demo platform (Figure 1).
type Party string

// The four parties. Only Device and Display are trusted; the link between
// them is the secure rendering channel the paper assumes.
const (
	Terminal Party = "terminal" // user's PC running the client applet
	Server   Party = "server"   // public server hosting visible data
	Device   Party = "device"   // smart USB device (trusted)
	Display  Party = "display"  // secure display (trusted)
)

// Trusted reports whether the party is inside the trust boundary.
func (p Party) Trusted() bool { return p == Device || p == Display }

// Kind classifies a message.
type Kind string

// Message kinds crossing the wires.
const (
	KindQuery      Kind = "query"      // SQL text, terminal -> server/device
	KindDelegation Kind = "delegation" // visible selection request
	KindCount      Kind = "count"      // cardinality reply for the optimizer
	KindIDList     Kind = "id-list"    // sorted visible ID chunk -> device
	KindProjection Kind = "projection" // (id, value) chunk -> device
	KindResult     Kind = "result"     // result rows, device -> display
	KindDML        Kind = "dml"        // live mutation statement, terminal -> device
	KindControl    Kind = "control"    // protocol chatter
)

// Event is one recorded message.
type Event struct {
	Seq   int
	At    time.Duration
	From  Party
	To    Party
	Kind  Kind
	Bytes int
	Note  string
	// Values holds the payload values when the recorder captures them
	// (CaptureFull); the leak auditor inspects these.
	Values []value.Value
}

// SpyVisible reports whether a wire spy can observe the event. Everything
// is observable except traffic on the device→display secure channel.
func (e Event) SpyVisible() bool {
	return !(e.From.Trusted() && e.To.Trusted())
}

// String renders the event as one trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%9.3fms] %-8s -> %-8s %-10s %7dB", float64(e.At)/1e6, e.From, e.To, e.Kind, e.Bytes)
	if e.Note != "" {
		fmt.Fprintf(&b, "  %s", e.Note)
	}
	return b.String()
}

// CaptureLevel controls how much payload the recorder keeps.
type CaptureLevel int

// Capture levels: metadata only (sizes, kinds — cheap, for benchmarks) or
// full payload values (for the security audit and demo phase 1).
const (
	CaptureMeta CaptureLevel = iota
	CaptureFull
)

// Recorder accumulates events. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	level  CaptureLevel
	events []Event
	seq    int
}

// NewRecorder returns a recorder at the given capture level.
func NewRecorder(level CaptureLevel) *Recorder {
	return &Recorder{level: level}
}

// Level reports the capture level.
func (r *Recorder) Level() CaptureLevel {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.level
}

// SetLevel changes the capture level for subsequent events.
func (r *Recorder) SetLevel(l CaptureLevel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.level = l
}

// Record appends an event. When the capture level is CaptureMeta the
// payload values are dropped.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	if r.level != CaptureFull {
		ev.Values = nil
	}
	r.events = append(r.events, ev)
}

// Events returns a copy of all recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
	r.seq = 0
}

// SpyView returns the events a wire spy observes (demo phase 1).
func (r *Recorder) SpyView() []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.SpyVisible() {
			out = append(out, e)
		}
	}
	return out
}

// ChannelTotal aggregates traffic on one directed channel.
type ChannelTotal struct {
	From, To Party
	Kind     Kind
	Messages int
	Bytes    int64
}

// Totals aggregates events per (from, to, kind), sorted for stable output.
func Totals(events []Event) []ChannelTotal {
	type key struct {
		from, to Party
		kind     Kind
	}
	agg := map[key]*ChannelTotal{}
	for _, e := range events {
		k := key{e.From, e.To, e.Kind}
		t := agg[k]
		if t == nil {
			t = &ChannelTotal{From: e.From, To: e.To, Kind: e.Kind}
			agg[k] = t
		}
		t.Messages++
		t.Bytes += int64(e.Bytes)
	}
	out := make([]ChannelTotal, 0, len(agg))
	for _, t := range agg {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
	return out
}

// Leak describes a hidden value observed by the spy.
type Leak struct {
	Event Event
	Value value.Value
}

// Audit scans every spy-visible event for payload values the isHidden
// predicate flags. An empty result is the security property the paper
// demonstrates: the spy learns only the queries posed and the visible
// data accessed. Run it with a CaptureFull recorder.
func Audit(events []Event, isHidden func(value.Value) bool) []Leak {
	var leaks []Leak
	for _, e := range events {
		if !e.SpyVisible() {
			continue
		}
		for _, v := range e.Values {
			if isHidden(v) {
				leaks = append(leaks, Leak{Event: e, Value: v})
			}
		}
	}
	return leaks
}

// Format renders events as a multi-line trace suitable for the demo's
// "what the pirate sees" panel.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
