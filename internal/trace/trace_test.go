package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/value"
)

func TestPartyTrust(t *testing.T) {
	if Terminal.Trusted() || Server.Trusted() {
		t.Error("terminal/server must be untrusted")
	}
	if !Device.Trusted() || !Display.Trusted() {
		t.Error("device/display must be trusted")
	}
}

func TestSpyVisibility(t *testing.T) {
	secure := Event{From: Device, To: Display}
	if secure.SpyVisible() {
		t.Error("device->display must be invisible to the spy")
	}
	for _, e := range []Event{
		{From: Terminal, To: Server},
		{From: Server, To: Terminal},
		{From: Terminal, To: Device},
		{From: Device, To: Terminal},
	} {
		if !e.SpyVisible() {
			t.Errorf("%s->%s must be spy visible", e.From, e.To)
		}
	}
}

func TestRecorderCaptureLevels(t *testing.T) {
	vals := []value.Value{value.NewString("Sclerosis")}

	meta := NewRecorder(CaptureMeta)
	meta.Record(Event{From: Terminal, To: Device, Kind: KindIDList, Bytes: 8, Values: vals})
	if got := meta.Events()[0].Values; got != nil {
		t.Errorf("CaptureMeta kept values: %v", got)
	}

	full := NewRecorder(CaptureFull)
	full.Record(Event{From: Terminal, To: Device, Kind: KindIDList, Bytes: 8, Values: vals})
	if got := full.Events()[0].Values; len(got) != 1 {
		t.Errorf("CaptureFull dropped values: %v", got)
	}
	if full.Level() != CaptureFull {
		t.Error("Level() mismatch")
	}
	full.SetLevel(CaptureMeta)
	full.Record(Event{From: Terminal, To: Device, Values: vals})
	if got := full.Events()[1].Values; got != nil {
		t.Error("SetLevel did not take effect")
	}
}

func TestRecorderSeqAndReset(t *testing.T) {
	r := NewRecorder(CaptureMeta)
	for i := 0; i < 3; i++ {
		r.Record(Event{From: Terminal, To: Server})
	}
	evs := r.Events()
	if len(evs) != 3 || r.Len() != 3 {
		t.Fatalf("recorded %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear")
	}
	r.Record(Event{From: Terminal, To: Server})
	if r.Events()[0].Seq != 1 {
		t.Error("seq not rewound by Reset")
	}
}

func TestSpyView(t *testing.T) {
	r := NewRecorder(CaptureMeta)
	r.Record(Event{From: Terminal, To: Device, Kind: KindIDList})
	r.Record(Event{From: Device, To: Display, Kind: KindResult})
	r.Record(Event{From: Server, To: Terminal, Kind: KindCount})
	spy := r.SpyView()
	if len(spy) != 2 {
		t.Fatalf("spy sees %d events, want 2", len(spy))
	}
	for _, e := range spy {
		if e.Kind == KindResult {
			t.Error("spy must not see the secure result channel")
		}
	}
}

func TestTotals(t *testing.T) {
	events := []Event{
		{From: Terminal, To: Device, Kind: KindIDList, Bytes: 100},
		{From: Terminal, To: Device, Kind: KindIDList, Bytes: 50},
		{From: Terminal, To: Device, Kind: KindProjection, Bytes: 10},
		{From: Server, To: Terminal, Kind: KindCount, Bytes: 4},
	}
	totals := Totals(events)
	if len(totals) != 3 {
		t.Fatalf("%d totals, want 3", len(totals))
	}
	// Sorted by from, to, kind: server first, then terminal->device pairs.
	if totals[0].From != Server || totals[0].Bytes != 4 {
		t.Errorf("totals[0] = %+v", totals[0])
	}
	if totals[1].Kind != KindIDList || totals[1].Messages != 2 || totals[1].Bytes != 150 {
		t.Errorf("totals[1] = %+v", totals[1])
	}
}

func TestAuditFindsLeaks(t *testing.T) {
	hidden := value.NewString("Sclerosis")
	isHidden := func(v value.Value) bool { return v == hidden }

	clean := []Event{
		{From: Terminal, To: Device, Kind: KindIDList, Values: []value.Value{value.NewInt(7)}},
		// Hidden value on the secure channel is fine.
		{From: Device, To: Display, Kind: KindResult, Values: []value.Value{hidden}},
	}
	if leaks := Audit(clean, isHidden); len(leaks) != 0 {
		t.Errorf("clean trace reported leaks: %v", leaks)
	}

	dirty := append(clean, Event{
		Seq: 99, From: Device, To: Terminal, Kind: KindControl,
		Values: []value.Value{value.NewInt(1), hidden},
	})
	leaks := Audit(dirty, isHidden)
	if len(leaks) != 1 {
		t.Fatalf("%d leaks, want 1", len(leaks))
	}
	if leaks[0].Event.Seq != 99 || leaks[0].Value != hidden {
		t.Errorf("leak = %+v", leaks[0])
	}
}

func TestEventStringAndFormat(t *testing.T) {
	e := Event{
		At: 1500 * time.Microsecond, From: Terminal, To: Device,
		Kind: KindIDList, Bytes: 42, Note: "VisID chunk",
	}
	s := e.String()
	for _, want := range []string{"terminal", "device", "id-list", "42B", "VisID chunk", "1.500ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	out := Format([]Event{e, e})
	if strings.Count(out, "\n") != 2 {
		t.Errorf("Format produced %q", out)
	}
}

// TestRecorderConcurrent checks the recorder under concurrent producers
// and readers: no lost events, strictly increasing sequence numbers.
// Run with -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(CaptureMeta)
	var wg sync.WaitGroup
	const writers, events = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Record(Event{From: Terminal, To: Device, Kind: KindControl, Bytes: 1})
				_ = r.Len()
				_ = r.Level()
			}
		}()
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != writers*events {
		t.Fatalf("recorded %d events, want %d", len(evs), writers*events)
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}
