package oracle

// Naive post-operator evaluation: grouping through string-encoded key
// maps, aggregates recomputed from the collected input values, and
// ordering through sort.SliceStable. Deliberately nothing is shared
// with the engine's streaming operators (internal/exec) or with the
// baseline's sort-based finisher (internal/baseline): three independent
// implementations of the same semantics, differential-tested against
// each other.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// naiveFinish applies aggregation, HAVING, DISTINCT, ORDER BY and LIMIT
// to the physical rows.
func naiveFinish(q *plan.Query, base [][]value.Value) ([][]value.Value, error) {
	if q.HasLimit && q.Limit == 0 {
		return nil, nil // the zero-row probe
	}
	rows, err := naiveOutputs(q, base)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		seen := map[string]bool{}
		var kept [][]value.Value
		for _, r := range rows {
			k := encodeRow(r[:q.VisibleOuts])
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
		}
		rows = kept
	}
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range q.OrderBy {
				c := nullsFirstCmp(rows[i][k.Out], rows[j][k.Out])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if q.HasLimit && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	if len(q.Outputs) > q.VisibleOuts {
		for i := range rows {
			rows[i] = rows[i][:q.VisibleOuts]
		}
	}
	return rows, nil
}

// naiveOutputs computes the output rows: grouped aggregation when the
// query aggregates, a plain column remap otherwise.
func naiveOutputs(q *plan.Query, base [][]value.Value) ([][]value.Value, error) {
	if !q.Aggregated() {
		out := make([][]value.Value, len(base))
		for i, br := range base {
			row := make([]value.Value, len(q.Outputs))
			for oi, o := range q.Outputs {
				row[oi] = br[o.Proj]
			}
			out[i] = row
		}
		return out, nil
	}

	// Group by string-encoded keys; every aggregate keeps the full list
	// of its input values and is recomputed from scratch at the end.
	type group struct {
		key  []value.Value
		vals [][]value.Value // per aggregate: contributing values
		n    int             // contributing row count
	}
	groups := map[string]*group{}
	var order []string
	for _, br := range base {
		kvals := make([]value.Value, len(q.GroupBy))
		for i, pi := range q.GroupBy {
			kvals[i] = br[pi]
		}
		k := encodeRow(kvals)
		g, ok := groups[k]
		if !ok {
			g = &group{key: kvals, vals: make([][]value.Value, len(q.Aggs))}
			groups[k] = g
			order = append(order, k)
		}
		g.n++
		for ai, a := range q.Aggs {
			if a.Proj >= 0 {
				g.vals[ai] = append(g.vals[ai], br[a.Proj])
			}
		}
	}
	if !q.Grouped && len(order) == 0 {
		// Global aggregate over an empty result: one empty group.
		groups[""] = &group{vals: make([][]value.Value, len(q.Aggs))}
		order = append(order, "")
	}

	var out [][]value.Value
	for _, k := range order {
		g := groups[k]
		aggVals := make([]value.Value, len(q.Aggs))
		for ai, a := range q.Aggs {
			v, err := recompute(a, g.vals[ai], g.n)
			if err != nil {
				return nil, err
			}
			aggVals[ai] = v
		}
		keep := true
		for _, h := range q.Having {
			ok, err := naiveHaving(aggVals[h.AggIdx], h.Op, h.Val)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := make([]value.Value, len(q.Outputs))
		for oi, o := range q.Outputs {
			if o.AggIdx >= 0 {
				row[oi] = aggVals[o.AggIdx]
				continue
			}
			pos := -1
			for i, pi := range q.GroupBy {
				if pi == o.Proj {
					pos = i
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("oracle: output %s is not a grouping column", o.Label)
			}
			row[oi] = g.key[pos]
		}
		out = append(out, row)
	}
	return out, nil
}

// recompute evaluates one aggregate from its collected inputs.
func recompute(a plan.AggExpr, vals []value.Value, n int) (value.Value, error) {
	switch a.Func {
	case sql.AggCount:
		if a.Proj < 0 {
			return value.NewInt(int64(n)), nil
		}
		return value.NewInt(int64(len(vals))), nil
	case sql.AggSum, sql.AggAvg:
		if len(vals) == 0 {
			return value.Value{}, nil
		}
		var si int64
		var sf float64
		isFloat := false
		for _, v := range vals {
			if v.Kind() == value.Float {
				isFloat = true
				sf += v.Float()
			} else {
				si += v.Int()
			}
		}
		if a.Func == sql.AggAvg {
			return value.NewFloat((float64(si) + sf) / float64(len(vals))), nil
		}
		if isFloat {
			return value.NewFloat(sf), nil
		}
		return value.NewInt(si), nil
	case sql.AggMin, sql.AggMax:
		if len(vals) == 0 {
			return value.Value{}, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := value.Compare(v, best)
			if err != nil {
				return value.Value{}, err
			}
			if (a.Func == sql.AggMin && c < 0) || (a.Func == sql.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return value.Value{}, fmt.Errorf("oracle: unknown aggregate %v", a.Func)
}

// naiveHaving evaluates one HAVING comparison (NULL matches nothing).
func naiveHaving(v value.Value, op sql.CompareOp, lit value.Value) (bool, error) {
	if !v.IsValid() {
		return false, nil
	}
	c, err := value.Compare(v, lit)
	if err != nil {
		return false, err
	}
	switch op {
	case sql.OpEq:
		return c == 0, nil
	case sql.OpNe:
		return c != 0, nil
	case sql.OpLt:
		return c < 0, nil
	case sql.OpLe:
		return c <= 0, nil
	case sql.OpGt:
		return c > 0, nil
	case sql.OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("oracle: unknown operator %v", op)
}

// nullsFirstCmp is the ordering the dialect defines per ORDER BY key:
// NULL first, then value.Compare (kinds as tiebreak if incomparable).
func nullsFirstCmp(a, b value.Value) int {
	av, bv := a.IsValid(), b.IsValid()
	switch {
	case !av && !bv:
		return 0
	case !av:
		return -1
	case !bv:
		return 1
	}
	c, err := value.Compare(a, b)
	if err != nil {
		return int(a.Kind()) - int(b.Kind())
	}
	return c
}

// encodeRow builds a collision-free string key for a value row
// (length-prefixed, kind-tagged fields).
func encodeRow(vals []value.Value) string {
	var b strings.Builder
	for _, v := range vals {
		s := v.String()
		if v.Kind() == value.Float && v.Float() == 0 {
			s = "0" // canonicalize -0.0: the engine's == treats them equal
		}
		b.WriteString(strconv.Itoa(int(v.Kind())))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}
