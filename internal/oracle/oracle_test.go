package oracle

import (
	"reflect"
	"testing"

	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/value"
)

// fixture: Doctor(2) <- Visit(4) <- Prescription(6), hand-checkable.
func fixture(t *testing.T) (*schema.Schema, map[string][][]value.Value) {
	t.Helper()
	s := schema.New()
	pk := func(n string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, PrimaryKey: true}
	}
	mk := func(name string, cols ...schema.Column) {
		tb, err := schema.NewTable(name, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	mk("Doctor", pk("DocID"),
		schema.Column{Name: "Country", Type: schema.Type{Kind: value.String}})
	mk("Visit", pk("VisID"),
		schema.Column{Name: "Purpose", Type: schema.Type{Kind: value.String}, Hidden: true},
		schema.Column{Name: "DocID", Type: schema.Type{Kind: value.Int}, RefTable: "Doctor", Hidden: true})
	mk("Prescription", pk("PreID"),
		schema.Column{Name: "Quantity", Type: schema.Type{Kind: value.Int}, Hidden: true},
		schema.Column{Name: "VisID", Type: schema.Type{Kind: value.Int}, RefTable: "Visit", Hidden: true})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	ints := func(xs ...int64) []value.Value {
		out := make([]value.Value, len(xs))
		for i, x := range xs {
			out[i] = value.NewInt(x)
		}
		return out
	}
	strs := func(xs ...string) []value.Value {
		out := make([]value.Value, len(xs))
		for i, x := range xs {
			out[i] = value.NewString(x)
		}
		return out
	}
	cols := map[string][][]value.Value{
		"Doctor": {ints(1, 2), strs("France", "Spain")},
		"Visit": {ints(1, 2, 3, 4),
			strs("Checkup", "Sclerosis", "Sclerosis", "Flu"),
			ints(1, 2, 1, 2)},
		"Prescription": {ints(1, 2, 3, 4, 5, 6),
			ints(10, 20, 30, 40, 50, 60),
			ints(1, 1, 2, 3, 4, 4)},
	}
	return s, cols
}

func TestOracleSimpleSelection(t *testing.T) {
	s, cols := fixture(t)
	o, err := New(s, cols)
	if err != nil {
		t.Fatal(err)
	}
	colsOut, rows, err := o.Query(`SELECT PreID, Quantity FROM Prescription WHERE Quantity > 35`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(colsOut, []string{"Prescription.PreID", "Prescription.Quantity"}) {
		t.Errorf("cols = %v", colsOut)
	}
	want := [][]int64{{4, 40}, {5, 50}, {6, 60}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		if rows[i][0].Int() != w[0] || rows[i][1].Int() != w[1] {
			t.Errorf("row %d = %v", i, rows[i])
		}
	}
}

func TestOracleJoinsTwoLevels(t *testing.T) {
	s, cols := fixture(t)
	o, err := New(s, cols)
	if err != nil {
		t.Fatal(err)
	}
	// Spanish doctors: doc 2 -> visits 2, 4 -> prescriptions 3, 5, 6.
	_, rows, err := o.Query(`SELECT Pre.PreID, Doc.Country FROM Prescription Pre, Visit Vis, Doctor Doc
		WHERE Doc.Country = 'Spain'`)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for _, r := range rows {
		ids = append(ids, r[0].Int())
		if r[1].Str() != "Spain" {
			t.Errorf("projected country %v", r[1])
		}
	}
	if !reflect.DeepEqual(ids, []int64{3, 5, 6}) {
		t.Errorf("ids = %v", ids)
	}
}

func TestOracleQueryRootBelowSchemaRoot(t *testing.T) {
	s, cols := fixture(t)
	o, err := New(s, cols)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := o.Query(`SELECT Vis.VisID FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France'`)
	if err != nil {
		t.Fatal(err)
	}
	// Sclerosis visits: 2 (doc 2), 3 (doc 1); French: visit 3 only.
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestOracleErrors(t *testing.T) {
	s, cols := fixture(t)
	if _, err := New(schema.New(), nil); err == nil {
		t.Error("unfrozen schema accepted")
	}
	broken := map[string][][]value.Value{}
	if _, err := New(s, broken); err == nil {
		t.Error("missing columns accepted")
	}
	o, err := New(s, cols)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`SELECT X FROM Prescription`,
		`SELECT PreID FROM Ghost`,
		`garbage`,
	}
	for _, q := range bad {
		if _, _, err := o.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded", q)
		}
	}
}
