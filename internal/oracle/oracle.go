// Package oracle is the correctness reference for GhostDB's engine: a
// naive evaluator that sees the whole database in host memory (no
// hidden/visible split, no device constraints) and computes SPJ results
// with the same tree-join semantics — one result row per query-root tuple
// whose foreign-key chain satisfies every predicate, in root ID order.
// It mirrors the engine's live-DML semantics too: INSERT/UPDATE/DELETE
// mutate the in-memory columns directly (deletes tombstone, cascading
// virtually through the foreign-key chain), and CHECKPOINT renumbers the
// survivors densely exactly as the engine's flash merge does.
// Integration and property tests compare the engine against it.
package oracle

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Oracle evaluates queries over in-memory columnar data.
type Oracle struct {
	sch  *schema.Schema
	cols map[string][][]value.Value // table -> columns in schema order
	dead map[string][]bool          // tombstones, same indexing as cols

	// DML bookkeeping that mirrors the engine's delta store, so Exec and
	// Checkpoint report identical affected-row counts: identifiers with a
	// post-build row image (inserted or updated since the last
	// checkpoint) and the number of tombstones.
	touched map[string]map[uint32]bool
}

// New builds an oracle. cols maps each table to its columns in schema
// declaration order; the schema must be frozen. The column data is
// deep-copied: the oracle mutates its copy under DML while the engine's
// stores keep referencing the originals.
func New(sch *schema.Schema, cols map[string][][]value.Value) (*Oracle, error) {
	if !sch.Frozen() {
		return nil, fmt.Errorf("oracle: schema not frozen")
	}
	o := &Oracle{
		sch:     sch,
		cols:    map[string][][]value.Value{},
		dead:    map[string][]bool{},
		touched: map[string]map[uint32]bool{},
	}
	for _, t := range sch.Tables() {
		tc, ok := cols[t.Name]
		if !ok || len(tc) != len(t.Columns) {
			return nil, fmt.Errorf("oracle: missing columns for %s", t.Name)
		}
		cp := make([][]value.Value, len(tc))
		for i := range tc {
			cp[i] = append([]value.Value(nil), tc[i]...)
		}
		key := strings.ToLower(t.Name)
		o.cols[key] = cp
		n := 0
		if len(cp) > 0 {
			n = len(cp[0])
		}
		o.dead[key] = make([]bool, n)
		o.touched[key] = map[uint32]bool{}
	}
	return o, nil
}

// tableRows reports the current (base + inserted) cardinality.
func (o *Oracle) tableRows(table string) int {
	tc := o.cols[strings.ToLower(table)]
	if len(tc) == 0 {
		return 0
	}
	return len(tc[0])
}

// valueAt returns table.col for row id (1-based).
func (o *Oracle) valueAt(table, col string, id uint32) (value.Value, error) {
	t, ok := o.sch.Table(table)
	if !ok {
		return value.Value{}, fmt.Errorf("oracle: unknown table %s", table)
	}
	idx := t.ColumnIndex(col)
	if idx < 0 {
		return value.Value{}, fmt.Errorf("oracle: no column %s.%s", table, col)
	}
	tc := o.cols[strings.ToLower(t.Name)]
	if id == 0 || int(id) > len(tc[idx]) {
		return value.Value{}, fmt.Errorf("oracle: id %d out of range for %s", id, table)
	}
	return tc[idx][id-1], nil
}

// fkAt returns the foreign-key value of row id in the referencing table.
func (o *Oracle) fkAt(table string, colIdx int, id uint32) uint32 {
	tc := o.cols[strings.ToLower(table)]
	return uint32(tc[colIdx][id-1].Int())
}

// Live reports whether row id of table is live: in range, not
// tombstoned, and every row its foreign-key chain references is live
// (the virtual delete cascade).
func (o *Oracle) Live(table string, id uint32) bool {
	t, ok := o.sch.Table(table)
	if !ok {
		return false
	}
	key := strings.ToLower(t.Name)
	if id == 0 || int(id) > o.tableRows(t.Name) {
		return false
	}
	if o.dead[key][id-1] {
		return false
	}
	for _, fk := range t.ForeignKeys() {
		if !o.Live(fk.RefTable, o.fkAt(t.Name, t.ColumnIndex(fk.Name), id)) {
			return false
		}
	}
	return true
}

// NextID reports the dense primary key the next INSERT must carry.
func (o *Oracle) NextID(table string) uint32 {
	return uint32(o.tableRows(table)) + 1
}

// LiveIDs returns the live identifiers of a table in ascending order.
func (o *Oracle) LiveIDs(table string) []uint32 {
	var out []uint32
	for id := uint32(1); int(id) <= o.tableRows(table); id++ {
		if o.Live(table, id) {
			out = append(out, id)
		}
	}
	return out
}

// Query evaluates a SELECT and returns column labels plus rows — the
// same contract as the engine: root-ID order for plain SPJ queries;
// aggregation / DISTINCT / ORDER BY / LIMIT applied on top for queries
// with post-operators.
func (o *Oracle) Query(sqlText string) ([]string, [][]value.Value, error) {
	q, base, err := o.QueryBase(sqlText)
	if err != nil {
		return nil, nil, err
	}
	cols := append([]string(nil), q.ColumnLabels()...)
	if !q.HasPostOps() {
		return cols, base, nil
	}
	rows, err := naiveFinish(q, base)
	if err != nil {
		return nil, nil, err
	}
	return cols, rows, nil
}

// QueryBase binds a SELECT and returns the bound query plus its
// physical rows (Projs-wide, root-ID order, before any post-operator).
// For plain SPJ queries the LIMIT is applied during the scan — those
// rows are the final result; for post-op queries every matching row is
// returned, so independent finishers (see internal/baseline) can be
// differential-tested against the same base.
func (o *Oracle) QueryBase(sqlText string) (*plan.Query, [][]value.Value, error) {
	sel, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, nil, err
	}
	q, err := plan.Bind(o.sch, sel)
	if err != nil {
		return nil, nil, err
	}
	// Query-root granularity: since the query root may differ from the
	// schema root, enumerate the query root's own IDs directly — live
	// rows only (tombstones cascade through the foreign-key chain).
	n := o.tableRows(q.Root.Name)
	var out [][]value.Value
	for id := uint32(1); int(id) <= n; id++ {
		if !q.HasPostOps() && q.HasLimit && len(out) == q.Limit {
			break
		}
		if !o.Live(q.Root.Name, id) {
			continue
		}
		ok, err := o.matches(q, id)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue
		}
		row := make([]value.Value, len(q.Projs))
		for j, c := range q.Projs {
			mid, err := o.descendFrom(q.Root.Name, id, c.Table)
			if err != nil {
				return nil, nil, err
			}
			v, err := o.valueAt(c.Table, c.Column, mid)
			if err != nil {
				return nil, nil, err
			}
			row[j] = v
		}
		out = append(out, row)
	}
	return q, out, nil
}

// descendFrom walks from a query-root tuple down to target.
func (o *Oracle) descendFrom(from string, fromID uint32, target string) (uint32, error) {
	if strings.EqualFold(from, target) {
		return fromID, nil
	}
	// path from target up to the schema root passes through `from`.
	path := o.sch.PathToRoot(target)
	// Find `from` in the path, then walk downward.
	start := -1
	for i, t := range path {
		if strings.EqualFold(t.Name, from) {
			start = i
			break
		}
	}
	if start <= 0 {
		return 0, fmt.Errorf("oracle: %s is not an ancestor of %s", from, target)
	}
	id := fromID
	for i := start; i > 0; i-- {
		parent := path[i]
		child := path[i-1]
		_, fk := o.sch.Parent(child.Name)
		if id == 0 || int(id) > o.tableRows(parent.Name) {
			return 0, fmt.Errorf("oracle: dangling FK at %s", parent.Name)
		}
		id = o.fkAt(parent.Name, parent.ColumnIndex(fk.Name), id)
	}
	return id, nil
}

// matches evaluates every predicate against the query-root tuple.
func (o *Oracle) matches(q *plan.Query, rootID uint32) (bool, error) {
	for _, p := range q.Preds {
		mid, err := o.descendFrom(q.Root.Name, rootID, p.Col.Table)
		if err != nil {
			return false, err
		}
		v, err := o.valueAt(p.Col.Table, p.Col.Column, mid)
		if err != nil {
			return false, err
		}
		ok, err := p.P.Eval(v)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
