// Package oracle is the correctness reference for GhostDB's engine: a
// naive evaluator that sees the whole database in host memory (no
// hidden/visible split, no device constraints) and computes SPJ results
// with the same tree-join semantics — one result row per query-root tuple
// whose foreign-key chain satisfies every predicate, in root ID order.
// Integration and property tests compare the engine against it.
package oracle

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Oracle evaluates queries over in-memory columnar data.
type Oracle struct {
	sch  *schema.Schema
	cols map[string][][]value.Value // table -> columns in schema order
	rows map[string]int
	fks  map[string][]uint32 // "table.fkcol" -> per-row referenced ID
}

// New builds an oracle. cols maps each table to its columns in schema
// declaration order; the schema must be frozen.
func New(sch *schema.Schema, cols map[string][][]value.Value) (*Oracle, error) {
	if !sch.Frozen() {
		return nil, fmt.Errorf("oracle: schema not frozen")
	}
	o := &Oracle{sch: sch, cols: map[string][][]value.Value{}, rows: map[string]int{}, fks: map[string][]uint32{}}
	for _, t := range sch.Tables() {
		tc, ok := cols[t.Name]
		if !ok || len(tc) != len(t.Columns) {
			return nil, fmt.Errorf("oracle: missing columns for %s", t.Name)
		}
		o.cols[strings.ToLower(t.Name)] = tc
		n := 0
		if len(tc) > 0 {
			n = len(tc[0])
		}
		o.rows[strings.ToLower(t.Name)] = n
		for i, c := range t.Columns {
			if !c.IsForeignKey() {
				continue
			}
			ids := make([]uint32, n)
			for r, v := range tc[i] {
				ids[r] = uint32(v.Int())
			}
			o.fks[strings.ToLower(t.Name+"."+c.Name)] = ids
		}
	}
	return o, nil
}

// valueAt returns table.col for row id (1-based).
func (o *Oracle) valueAt(table, col string, id uint32) (value.Value, error) {
	t, ok := o.sch.Table(table)
	if !ok {
		return value.Value{}, fmt.Errorf("oracle: unknown table %s", table)
	}
	idx := t.ColumnIndex(col)
	if idx < 0 {
		return value.Value{}, fmt.Errorf("oracle: no column %s.%s", table, col)
	}
	tc := o.cols[strings.ToLower(t.Name)]
	if id == 0 || int(id) > len(tc[idx]) {
		return value.Value{}, fmt.Errorf("oracle: id %d out of range for %s", id, table)
	}
	return tc[idx][id-1], nil
}

// Query evaluates a SELECT and returns column labels plus rows — the
// same contract as the engine: root-ID order for plain SPJ queries;
// aggregation / DISTINCT / ORDER BY / LIMIT applied on top for queries
// with post-operators.
func (o *Oracle) Query(sqlText string) ([]string, [][]value.Value, error) {
	q, base, err := o.QueryBase(sqlText)
	if err != nil {
		return nil, nil, err
	}
	cols := append([]string(nil), q.ColumnLabels()...)
	if !q.HasPostOps() {
		return cols, base, nil
	}
	rows, err := naiveFinish(q, base)
	if err != nil {
		return nil, nil, err
	}
	return cols, rows, nil
}

// QueryBase binds a SELECT and returns the bound query plus its
// physical rows (Projs-wide, root-ID order, before any post-operator).
// For plain SPJ queries the LIMIT is applied during the scan — those
// rows are the final result; for post-op queries every matching row is
// returned, so independent finishers (see internal/baseline) can be
// differential-tested against the same base.
func (o *Oracle) QueryBase(sqlText string) (*plan.Query, [][]value.Value, error) {
	sel, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, nil, err
	}
	q, err := plan.Bind(o.sch, sel)
	if err != nil {
		return nil, nil, err
	}
	// Query-root granularity: since the query root may differ from the
	// schema root, enumerate the query root's own IDs directly.
	n := o.rows[strings.ToLower(q.Root.Name)]
	var out [][]value.Value
	for id := uint32(1); int(id) <= n; id++ {
		if !q.HasPostOps() && q.Limit > 0 && len(out) == q.Limit {
			break
		}
		ok, err := o.matches(q, id)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue
		}
		row := make([]value.Value, len(q.Projs))
		for j, c := range q.Projs {
			mid, err := o.descendFrom(q.Root.Name, id, c.Table)
			if err != nil {
				return nil, nil, err
			}
			v, err := o.valueAt(c.Table, c.Column, mid)
			if err != nil {
				return nil, nil, err
			}
			row[j] = v
		}
		out = append(out, row)
	}
	return q, out, nil
}

// descendFrom walks from a query-root tuple down to target.
func (o *Oracle) descendFrom(from string, fromID uint32, target string) (uint32, error) {
	if strings.EqualFold(from, target) {
		return fromID, nil
	}
	// path from target up to the schema root passes through `from`.
	path := o.sch.PathToRoot(target)
	// Find `from` in the path, then walk downward.
	start := -1
	for i, t := range path {
		if strings.EqualFold(t.Name, from) {
			start = i
			break
		}
	}
	if start <= 0 {
		return 0, fmt.Errorf("oracle: %s is not an ancestor of %s", from, target)
	}
	id := fromID
	for i := start; i > 0; i-- {
		parent := path[i]
		child := path[i-1]
		_, fk := o.sch.Parent(child.Name)
		ids := o.fks[strings.ToLower(parent.Name+"."+fk.Name)]
		if id == 0 || int(id) > len(ids) {
			return 0, fmt.Errorf("oracle: dangling FK at %s", parent.Name)
		}
		id = ids[id-1]
	}
	return id, nil
}

// matches evaluates every predicate against the query-root tuple.
func (o *Oracle) matches(q *plan.Query, rootID uint32) (bool, error) {
	for _, p := range q.Preds {
		mid, err := o.descendFrom(q.Root.Name, rootID, p.Col.Table)
		if err != nil {
			return false, err
		}
		v, err := o.valueAt(p.Col.Table, p.Col.Column, mid)
		if err != nil {
			return false, err
		}
		ok, err := p.P.Eval(v)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
