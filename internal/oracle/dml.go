package oracle

// Live-DML mirror: the oracle applies INSERT/UPDATE/DELETE/CHECKPOINT
// with exactly the engine's semantics — dense positional identifiers,
// updates in place, tombstoned deletes cascading virtually through the
// foreign-key chain, and a checkpoint that drops the dead rows and
// renumbers the survivors densely — so differential tests can interleave
// mutations with queries and compare both results and affected-row
// counts.

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Exec parses and applies a script of INSERT / DELETE / UPDATE /
// CHECKPOINT statements, returning the total rows affected (for
// CHECKPOINT: the number of delta entries absorbed, mirroring the
// engine).
func (o *Oracle) Exec(sqlText string) (int64, error) {
	stmts, err := sql.ParseScript(sqlText)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, s := range stmts {
		var n int64
		var err error
		switch s := s.(type) {
		case *sql.Insert:
			n, err = o.ExecInsert(s)
		case *sql.Delete, *sql.Update:
			n, err = o.ExecDML(s)
		case *sql.Checkpoint:
			n, err = o.Checkpoint()
		default:
			return affected, fmt.Errorf("oracle: cannot execute %T", s)
		}
		affected += n
		if err != nil {
			return affected, err
		}
	}
	return affected, nil
}

// deltaEntries mirrors the engine's delta.Store.Entries: row images
// (inserted or updated since the last checkpoint) plus tombstones.
func (o *Oracle) deltaEntries() int64 {
	var n int64
	for key, touched := range o.touched {
		n += int64(len(touched))
		for _, d := range o.dead[key] {
			if d {
				n++
			}
		}
	}
	return n
}

// ExecInsert appends rows: dense primary keys continuing the sequence,
// values coerced to column kinds, foreign keys referencing live rows.
func (o *Oracle) ExecInsert(ins *sql.Insert) (int64, error) {
	t, ok := o.sch.Table(ins.Table)
	if !ok {
		return 0, fmt.Errorf("oracle: unknown table %s", ins.Table)
	}
	key := strings.ToLower(t.Name)
	// Validate first: the statement applies atomically or not at all.
	rows := make([][]value.Value, len(ins.Rows))
	for ri, row := range ins.Rows {
		if len(row) != len(t.Columns) {
			return 0, fmt.Errorf("oracle: %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
		}
		out := make([]value.Value, len(row))
		for ci, v := range row {
			cv, err := value.Coerce(v, t.Columns[ci].Type.Kind)
			if err != nil {
				return 0, fmt.Errorf("oracle: %s.%s row %d: %w", t.Name, t.Columns[ci].Name, ri+1, err)
			}
			out[ci] = cv
		}
		want := int64(o.NextID(t.Name)) + int64(ri)
		pkVal := out[t.PrimaryKeyIndex()]
		if pkVal.Kind() != value.Int || pkVal.Int() != want {
			return 0, fmt.Errorf("oracle: %s primary key must be dense: row %d needs key %d, got %s",
				t.Name, ri+1, want, pkVal)
		}
		for _, fk := range t.ForeignKeys() {
			ref := out[t.ColumnIndex(fk.Name)]
			if ref.Kind() != value.Int || !o.Live(fk.RefTable, uint32(ref.Int())) {
				return 0, fmt.Errorf("oracle: %s row %d: foreign key %s = %s references no live %s row",
					t.Name, ri+1, fk.Name, ref, fk.RefTable)
			}
		}
		rows[ri] = out
	}
	for _, row := range rows {
		id := o.NextID(t.Name)
		for ci := range t.Columns {
			o.cols[key][ci] = append(o.cols[key][ci], row[ci])
		}
		o.dead[key] = append(o.dead[key], false)
		o.touched[key][id] = true
	}
	return int64(len(rows)), nil
}

// ExecDML applies a DELETE or UPDATE, returning the number of live rows
// affected.
func (o *Oracle) ExecDML(stmt sql.Statement) (int64, error) {
	d, err := plan.BindDML(o.sch, stmt)
	if err != nil {
		return 0, err
	}
	if d.NumParams > 0 {
		return 0, fmt.Errorf("oracle: DML statement carries unbound '?' placeholders")
	}
	t := d.Table
	key := strings.ToLower(t.Name)
	var ids []uint32
	for id := uint32(1); int(id) <= o.tableRows(t.Name); id++ {
		if !o.Live(t.Name, id) {
			continue
		}
		match := true
		for _, p := range d.Preds {
			v := o.cols[key][t.ColumnIndex(p.Col.Column)][id-1]
			ok, err := p.P.Eval(v)
			if err != nil {
				return 0, err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			ids = append(ids, id)
		}
	}
	switch d.Op {
	case plan.OpDelete:
		for _, id := range ids {
			o.dead[key][id-1] = true
			delete(o.touched[key], id)
		}
	case plan.OpUpdate:
		for _, id := range ids {
			for _, a := range d.Sets {
				c := t.Columns[a.ColIdx]
				if c.IsForeignKey() {
					if a.Val.Kind() != value.Int || !o.Live(c.RefTable, uint32(a.Val.Int())) {
						return 0, fmt.Errorf("oracle: UPDATE %s: foreign key %s = %s references no live %s row",
							t.Name, c.Name, a.Val, c.RefTable)
					}
				}
				o.cols[key][a.ColIdx][id-1] = a.Val
			}
			o.touched[key][id] = true
		}
	}
	return int64(len(ids)), nil
}

// Checkpoint drops every dead row (tombstoned or dangling through the
// chain), renumbers the survivors densely with foreign keys remapped,
// and resets the DML bookkeeping — exactly the engine's flash merge. It
// returns the number of delta entries absorbed.
func (o *Oracle) Checkpoint() (int64, error) {
	absorbed := o.deltaEntries()
	if absorbed == 0 {
		return 0, nil
	}
	// Pass 1: survivors and renumber maps (liveness over the old state).
	oldIDs := map[string][]uint32{}
	renumber := map[string]map[uint32]uint32{}
	for _, t := range o.sch.Tables() {
		var ids []uint32
		remap := map[uint32]uint32{}
		for id := uint32(1); int(id) <= o.tableRows(t.Name); id++ {
			if !o.Live(t.Name, id) {
				continue
			}
			ids = append(ids, id)
			remap[id] = uint32(len(ids))
		}
		oldIDs[t.Name] = ids
		renumber[t.Name] = remap
	}
	// Pass 2: rebuild the columns.
	for _, t := range o.sch.Tables() {
		key := strings.ToLower(t.Name)
		ids := oldIDs[t.Name]
		fresh := make([][]value.Value, len(t.Columns))
		for ci, c := range t.Columns {
			fresh[ci] = make([]value.Value, len(ids))
			for newIdx, oldID := range ids {
				switch {
				case c.PrimaryKey:
					fresh[ci][newIdx] = value.NewInt(int64(newIdx + 1))
				case c.IsForeignKey():
					oldChild := uint32(o.cols[key][ci][oldID-1].Int())
					fresh[ci][newIdx] = value.NewInt(int64(renumber[o.refName(c.RefTable)][oldChild]))
				default:
					fresh[ci][newIdx] = o.cols[key][ci][oldID-1]
				}
			}
		}
		o.cols[key] = fresh
		o.dead[key] = make([]bool, len(ids))
		o.touched[key] = map[uint32]bool{}
	}
	return absorbed, nil
}

// refName canonicalizes a referenced table name to its catalog spelling
// (renumber maps are keyed by catalog names).
func (o *Oracle) refName(table string) string {
	t, _ := o.sch.Table(table)
	return t.Name
}
