// Package store is the smart USB device's storage engine: column files on
// NAND flash holding the hidden part of the database (every HIDDEN column
// plus the replicated primary keys of all tables — paper Section 2), with
// a small page cache charged against the device's RAM arena.
//
// Columns are written once during the secure bulk load and never updated
// in place, matching the flash constraint. Fixed-width kinds (INTEGER,
// DATE, FLOAT, BOOLEAN) are stored as packed arrays; strings are stored
// as an offset array plus a heap of encoded values.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Store manages the device-resident column files.
type Store struct {
	dev        *device.Device
	cache      *flash.Cache
	cacheGrant *ram.Grant
	tables     map[string]*TableData
}

// New creates a store on the device, allocating the page cache out of the
// device RAM budget.
func New(dev *device.Device) (*Store, error) {
	cache, err := flash.NewCache(dev.Flash, dev.Profile.CacheFrames)
	if err != nil {
		return nil, err
	}
	grant, err := dev.RAM.Alloc(cache.FootprintBytes(), "page-cache")
	if err != nil {
		return nil, fmt.Errorf("store: cache does not fit in RAM: %w", err)
	}
	return &Store{
		dev:        dev,
		cache:      cache,
		cacheGrant: grant,
		tables:     map[string]*TableData{},
	}, nil
}

// Device returns the underlying device.
func (s *Store) Device() *device.Device { return s.dev }

// Release frees the store's page-cache RAM grant. The engine calls it
// when a CHECKPOINT replaces this store with a freshly built one — the
// old column files' extents are about to be erased, so the cache (and
// its arena charge) must go with them. The store is unusable afterwards.
func (s *Store) Release() {
	s.cache.Invalidate()
	s.cacheGrant.Free()
	s.tables = map[string]*TableData{}
}

// Cache returns the shared random-access page cache.
func (s *Store) Cache() *flash.Cache { return s.cache }

// AppendRegion writes a raw region into the main space (used by the index
// builders in the skt and climbing packages).
func (s *Store) AppendRegion(data []byte) (flash.Extent, error) {
	return s.dev.Main.AppendRegion(data)
}

// FootprintBytes reports the total main-space flash consumed so far.
func (s *Store) FootprintBytes() int64 { return s.dev.Main.UsedBytes() }

// TableData holds a table's device-resident columns.
type TableData struct {
	Name string
	rows int
	cols map[string]Column
}

// Rows reports the table cardinality.
func (t *TableData) Rows() int { return t.rows }

// Column returns the named column file (case-insensitive).
func (t *TableData) Column(name string) (Column, bool) {
	c, ok := t.cols[strings.ToLower(name)]
	return c, ok
}

// ColumnNames lists the stored columns (unordered).
func (t *TableData) ColumnNames() []string {
	out := make([]string, 0, len(t.cols))
	for n := range t.cols {
		out = append(out, n)
	}
	return out
}

// CreateTable registers a table with a fixed row count (GhostDB is bulk
// loaded; cardinalities are known at load time).
func (s *Store) CreateTable(name string, rows int) (*TableData, error) {
	key := strings.ToLower(name)
	if _, dup := s.tables[key]; dup {
		return nil, fmt.Errorf("store: duplicate table %s", name)
	}
	if rows < 0 {
		return nil, fmt.Errorf("store: negative row count for %s", name)
	}
	t := &TableData{Name: name, rows: rows, cols: map[string]Column{}}
	s.tables[key] = t
	return t, nil
}

// Table returns the named table.
func (s *Store) Table(name string) (*TableData, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// AddColumn stores vals as a column of the table, choosing the layout from
// the kind. len(vals) must equal the table's row count; row i holds the
// value of the tuple with ID i+1.
func (s *Store) AddColumn(table, col string, kind value.Kind, vals []value.Value) (Column, error) {
	t, ok := s.tables[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("store: unknown table %s", table)
	}
	if len(vals) != t.rows {
		return nil, fmt.Errorf("store: %s.%s has %d values for %d rows", table, col, len(vals), t.rows)
	}
	key := strings.ToLower(col)
	if _, dup := t.cols[key]; dup {
		return nil, fmt.Errorf("store: duplicate column %s.%s", table, col)
	}
	var c Column
	var err error
	if kind == value.String {
		c, err = s.buildVarColumn(kind, vals)
	} else {
		c, err = s.buildFixedColumn(kind, vals)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %s.%s: %w", table, col, err)
	}
	t.cols[key] = c
	return c, nil
}

// Column is a read-only column file.
type Column interface {
	// Value returns the value of row i (0-based).
	Value(i int) (value.Value, error)
	// Kind reports the column's value kind.
	Kind() value.Kind
	// Len reports the number of rows.
	Len() int
	// Bytes reports the flash footprint.
	Bytes() int64
}

// fixedWidth returns the storage width for a fixed-width kind.
func fixedWidth(kind value.Kind) (int, error) {
	switch kind {
	case value.Int:
		return 8, nil
	case value.Date:
		return 4, nil
	case value.Float:
		return 8, nil
	case value.Bool:
		return 1, nil
	default:
		return 0, fmt.Errorf("kind %s is not fixed width", kind)
	}
}

// FixedColumn stores fixed-width values as a packed array.
type FixedColumn struct {
	store *Store
	ext   flash.Extent
	kind  value.Kind
	width int
	n     int
}

func (s *Store) buildFixedColumn(kind value.Kind, vals []value.Value) (*FixedColumn, error) {
	w, err := fixedWidth(kind)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(vals)*w)
	for i, v := range vals {
		cv, err := value.Coerce(v, kind)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		buf = appendFixed(buf, cv, w)
	}
	ext, err := s.AppendRegion(buf)
	if err != nil {
		return nil, err
	}
	return &FixedColumn{store: s, ext: ext, kind: kind, width: w, n: len(vals)}, nil
}

func appendFixed(buf []byte, v value.Value, width int) []byte {
	switch v.Kind() {
	case value.Int:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case value.Date:
		return binary.LittleEndian.AppendUint32(buf, uint32(int32(v.DateDays())))
	case value.Float:
		return binary.LittleEndian.AppendUint64(buf, uint64(floatBits(v.Float())))
	case value.Bool:
		if v.Bool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	default:
		panic("store: appendFixed of " + v.Kind().String())
	}
}

// Value implements Column.
func (c *FixedColumn) Value(i int) (value.Value, error) {
	if i < 0 || i >= c.n {
		return value.Value{}, fmt.Errorf("store: row %d of %d", i, c.n)
	}
	var raw [8]byte
	if err := c.store.cache.ReadAt(raw[:c.width], c.ext.Start+int64(i)*int64(c.width)); err != nil {
		return value.Value{}, err
	}
	switch c.kind {
	case value.Int:
		return value.NewInt(int64(binary.LittleEndian.Uint64(raw[:8]))), nil
	case value.Date:
		return value.NewDateDays(int64(int32(binary.LittleEndian.Uint32(raw[:4])))), nil
	case value.Float:
		return value.NewFloat(floatFromBits(binary.LittleEndian.Uint64(raw[:8]))), nil
	case value.Bool:
		return value.NewBool(raw[0] != 0), nil
	}
	return value.Value{}, fmt.Errorf("store: bad fixed kind %s", c.kind)
}

// Kind implements Column.
func (c *FixedColumn) Kind() value.Kind { return c.kind }

// Extent exposes the column's flash location. CHECKPOINT records it in
// the commit manifest so recovery can decode the column straight from a
// flash image.
func (c *FixedColumn) Extent() flash.Extent { return c.ext }

// Len implements Column.
func (c *FixedColumn) Len() int { return c.n }

// Bytes implements Column.
func (c *FixedColumn) Bytes() int64 { return c.ext.Len }

// VarColumn stores variable-width values as an offset array plus a heap.
type VarColumn struct {
	store   *Store
	offExt  flash.Extent // (n+1) uint32 offsets into the heap
	dataExt flash.Extent
	kind    value.Kind
	n       int
}

func (s *Store) buildVarColumn(kind value.Kind, vals []value.Value) (*VarColumn, error) {
	var heap []byte
	offs := make([]byte, 0, (len(vals)+1)*4)
	for i, v := range vals {
		if v.Kind() != kind {
			return nil, fmt.Errorf("row %d: kind %s, want %s", i, v.Kind(), kind)
		}
		offs = binary.LittleEndian.AppendUint32(offs, uint32(len(heap)))
		heap = v.Append(heap)
	}
	offs = binary.LittleEndian.AppendUint32(offs, uint32(len(heap)))
	offExt, err := s.AppendRegion(offs)
	if err != nil {
		return nil, err
	}
	dataExt, err := s.AppendRegion(heap)
	if err != nil {
		return nil, err
	}
	return &VarColumn{store: s, offExt: offExt, dataExt: dataExt, kind: kind, n: len(vals)}, nil
}

// Value implements Column.
func (c *VarColumn) Value(i int) (value.Value, error) {
	if i < 0 || i >= c.n {
		return value.Value{}, fmt.Errorf("store: row %d of %d", i, c.n)
	}
	var raw [8]byte
	if err := c.store.cache.ReadAt(raw[:], c.offExt.Start+int64(i)*4); err != nil {
		return value.Value{}, err
	}
	start := binary.LittleEndian.Uint32(raw[:4])
	end := binary.LittleEndian.Uint32(raw[4:])
	if end < start || int64(end) > c.dataExt.Len {
		return value.Value{}, fmt.Errorf("store: corrupt offsets %d..%d", start, end)
	}
	buf := make([]byte, end-start)
	if err := c.store.cache.ReadAt(buf, c.dataExt.Start+int64(start)); err != nil {
		return value.Value{}, err
	}
	v, _, err := value.Decode(buf)
	return v, err
}

// Kind implements Column.
func (c *VarColumn) Kind() value.Kind { return c.kind }

// Extents exposes the column's offset-array and heap flash locations (see
// FixedColumn.Extent).
func (c *VarColumn) Extents() (off, data flash.Extent) { return c.offExt, c.dataExt }

// Len implements Column.
func (c *VarColumn) Len() int { return c.n }

// Bytes implements Column.
func (c *VarColumn) Bytes() int64 { return c.offExt.Len + c.dataExt.Len }

// IDColumn is a packed array of uint32 row identifiers — the building
// block of Subtree Key Tables. Sorted access patterns hit the page cache.
type IDColumn struct {
	store *Store
	ext   flash.Extent
	n     int
}

// BuildIDColumn writes ids as a packed uint32 array in the main space.
func (s *Store) BuildIDColumn(ids []uint32) (*IDColumn, error) {
	buf := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	ext, err := s.AppendRegion(buf)
	if err != nil {
		return nil, err
	}
	return &IDColumn{store: s, ext: ext, n: len(ids)}, nil
}

// Get returns element i (0-based).
func (c *IDColumn) Get(i int) (uint32, error) {
	if i < 0 || i >= c.n {
		return 0, fmt.Errorf("store: ID element %d of %d", i, c.n)
	}
	var raw [4]byte
	if err := c.store.cache.ReadAt(raw[:], c.ext.Start+int64(i)*4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(raw[:]), nil
}

// Len reports the element count.
func (c *IDColumn) Len() int { return c.n }

// Bytes reports the flash footprint.
func (c *IDColumn) Bytes() int64 { return c.ext.Len }

// Extent exposes the storage location (for sequential scans).
func (c *IDColumn) Extent() flash.Extent { return c.ext }

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
