package store

import (
	"testing"
	"testing/quick"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/value"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	dev, err := device.New(device.SmartUSB2007(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewChargesCacheRAM(t *testing.T) {
	dev, err := device.New(device.SmartUSB2007(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := dev.RAM.Used()
	s, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	wantCache := int64(dev.Profile.CacheFrames * dev.Profile.Flash.PageSize)
	if dev.RAM.Used()-before != wantCache {
		t.Errorf("cache charged %d bytes, want %d", dev.RAM.Used()-before, wantCache)
	}
	if s.Cache() == nil || s.Device() != dev {
		t.Error("accessors broken")
	}

	// A profile whose cache cannot fit must fail cleanly.
	p := device.SmartUSB2007()
	p.RAMBudget = p.Flash.PageSize * p.CacheFrames // validation already rejects this
	if err := p.Validate(); err == nil {
		t.Error("profile with cache-sized RAM accepted")
	}
}

func TestCreateTableValidation(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.CreateTable("Visit", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("visit", 5); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, err := s.CreateTable("Neg", -1); err == nil {
		t.Error("negative rows accepted")
	}
	td, ok := s.Table("VISIT")
	if !ok || td.Rows() != 10 {
		t.Errorf("Table lookup: %v %v", td, ok)
	}
	if _, ok := s.Table("ghost"); ok {
		t.Error("phantom table")
	}
}

func TestFixedColumnRoundTrip(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.CreateTable("T", 5); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		kind value.Kind
		vals []value.Value
	}{
		{"ints", value.Int, []value.Value{
			value.NewInt(0), value.NewInt(-5), value.NewInt(1 << 40),
			value.NewInt(42), value.NewInt(-1 << 40)}},
		{"dates", value.Date, []value.Value{
			value.NewDate(1970, 1, 1), value.NewDate(2006, 11, 5),
			value.NewDate(2007, 9, 23), value.NewDate(1969, 12, 31),
			value.NewDate(2100, 6, 15)}},
		{"floats", value.Float, []value.Value{
			value.NewFloat(0), value.NewFloat(-2.5), value.NewFloat(3.14),
			value.NewFloat(1e300), value.NewFloat(-1e-300)}},
		{"bools", value.Bool, []value.Value{
			value.NewBool(true), value.NewBool(false), value.NewBool(true),
			value.NewBool(true), value.NewBool(false)}},
	}
	for _, c := range cases {
		col, err := s.AddColumn("T", c.name, c.kind, c.vals)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if col.Kind() != c.kind || col.Len() != 5 {
			t.Errorf("%s: kind/len wrong", c.name)
		}
		if col.Bytes() <= 0 {
			t.Errorf("%s: zero footprint", c.name)
		}
		for i, want := range c.vals {
			got, err := col.Value(i)
			if err != nil {
				t.Fatalf("%s[%d]: %v", c.name, i, err)
			}
			if got != want {
				t.Errorf("%s[%d] = %v, want %v", c.name, i, got, want)
			}
		}
		if _, err := col.Value(5); err == nil {
			t.Errorf("%s: out-of-range read accepted", c.name)
		}
		if _, err := col.Value(-1); err == nil {
			t.Errorf("%s: negative read accepted", c.name)
		}
	}
}

func TestFixedColumnCoercesDatesFromStrings(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.CreateTable("T", 1); err != nil {
		t.Fatal(err)
	}
	col, err := s.AddColumn("T", "d", value.Date, []value.Value{value.NewString("05-11-2006")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := col.Value(0)
	if err != nil || got != value.NewDate(2006, 11, 5) {
		t.Errorf("coerced date = %v, %v", got, err)
	}
}

func TestVarColumnRoundTrip(t *testing.T) {
	s := newTestStore(t)
	vals := []value.Value{
		value.NewString("Sclerosis"),
		value.NewString(""),
		value.NewString("a much longer purpose string that spans bytes"),
		value.NewString("Checkup"),
	}
	if _, err := s.CreateTable("Visit", len(vals)); err != nil {
		t.Fatal(err)
	}
	col, err := s.AddColumn("Visit", "Purpose", value.String, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		got, err := col.Value(i)
		if err != nil || got != want {
			t.Errorf("[%d] = %v, %v; want %v", i, got, err, want)
		}
	}
	if _, err := col.Value(len(vals)); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestAddColumnValidation(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.CreateTable("T", 2); err != nil {
		t.Fatal(err)
	}
	vals2 := []value.Value{value.NewInt(1), value.NewInt(2)}
	if _, err := s.AddColumn("Ghost", "c", value.Int, vals2); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := s.AddColumn("T", "c", value.Int, vals2[:1]); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := s.AddColumn("T", "c", value.Int, vals2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddColumn("T", "C", value.Int, vals2); err == nil {
		t.Error("case-insensitive duplicate column accepted")
	}
	if _, err := s.AddColumn("T", "bad", value.Int,
		[]value.Value{value.NewString("x"), value.NewString("y")}); err == nil {
		t.Error("kind mismatch accepted")
	}
	td, _ := s.Table("T")
	if _, ok := td.Column("c"); !ok {
		t.Error("column lookup failed")
	}
	if len(td.ColumnNames()) != 1 {
		t.Errorf("ColumnNames = %v", td.ColumnNames())
	}
}

func TestIDColumn(t *testing.T) {
	s := newTestStore(t)
	ids := []uint32{5, 1, 7, 7, 1 << 30}
	col, err := s.BuildIDColumn(ids)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != len(ids) || col.Bytes() != int64(4*len(ids)) {
		t.Errorf("len=%d bytes=%d", col.Len(), col.Bytes())
	}
	for i, want := range ids {
		got, err := col.Get(i)
		if err != nil || got != want {
			t.Errorf("Get(%d) = %d, %v", i, got, err)
		}
	}
	if _, err := col.Get(len(ids)); err == nil {
		t.Error("out-of-range Get accepted")
	}
	if col.Extent().Len != int64(4*len(ids)) {
		t.Errorf("extent %+v", col.Extent())
	}
}

func TestSortedAccessHitsCache(t *testing.T) {
	s := newTestStore(t)
	n := 4096 // 16 KB of IDs = 8 pages
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	col, err := s.BuildIDColumn(ids)
	if err != nil {
		t.Fatal(err)
	}
	s.Cache().ResetStats()
	for i := 0; i < n; i++ {
		if _, err := col.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	// A sequential scan should miss once per page, not once per element.
	pages := int64(n*4) / int64(s.Device().Profile.Flash.PageSize)
	if misses := s.Cache().Misses(); misses != pages {
		t.Errorf("sequential scan missed %d times, want %d", misses, pages)
	}
}

func TestFootprintGrows(t *testing.T) {
	s := newTestStore(t)
	before := s.FootprintBytes()
	if _, err := s.CreateTable("T", 1000); err != nil {
		t.Fatal(err)
	}
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewInt(int64(i))
	}
	if _, err := s.AddColumn("T", "c", value.Int, vals); err != nil {
		t.Fatal(err)
	}
	if s.FootprintBytes() <= before {
		t.Error("footprint did not grow")
	}
}

func TestQuickFixedIntColumn(t *testing.T) {
	s := newTestStore(t)
	counter := 0
	f := func(raw []int64) bool {
		counter++
		vals := make([]value.Value, len(raw))
		for i, x := range raw {
			vals[i] = value.NewInt(x)
		}
		name := "t" + itoa(counter)
		if _, err := s.CreateTable(name, len(vals)); err != nil {
			return false
		}
		col, err := s.AddColumn(name, "c", value.Int, vals)
		if err != nil {
			return false
		}
		for i, want := range vals {
			got, err := col.Value(i)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
