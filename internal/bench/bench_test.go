package bench

import (
	"strings"
	"testing"
)

const testScale = 3000

func TestFig6AndFormat(t *testing.T) {
	cfg := Config{Scale: testScale}
	db, _, err := BuildDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig6(db, DemoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("%d plans", len(rows))
	}
	base := rows[0].Rows
	for _, r := range rows {
		if r.Rows != base {
			t.Errorf("plan %s row count %d != %d", r.Label, r.Rows, base)
		}
		if r.Time <= 0 {
			t.Errorf("plan %s no time", r.Label)
		}
	}
	out := FormatPlanRows(rows)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "#") {
		t.Errorf("format: %q", out)
	}
	if FormatPlanRows(nil) == "" {
		t.Error("empty format")
	}

	fig5, err := Fig5(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"post-filter", "BloomBuild", "MergeProject"} {
		if !strings.Contains(fig5, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
}

func TestSweepAndBaselines(t *testing.T) {
	cfg := Config{Scale: testScale}
	db, _, err := BuildDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SelectivitySweep(db, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Pre <= 0 || points[1].Post <= 0 {
		t.Fatalf("sweep: %+v", points)
	}
	if !strings.Contains(FormatSweep(points), "winner") {
		t.Error("sweep format")
	}

	rows, err := Baselines(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d baseline rows", len(rows))
	}
	for _, r := range rows[1:4] {
		if r.Rows != rows[0].Rows {
			t.Errorf("%s disagrees on cardinality: %d vs %d", r.Name, r.Rows, rows[0].Rows)
		}
	}
	if !strings.Contains(FormatBaselines(rows), "isolated deep") {
		t.Error("baseline format")
	}

	st := Storage(db)
	if len(st) != 4 || st[3].Bytes <= 0 {
		t.Fatalf("storage: %+v", st)
	}
	if !strings.Contains(FormatStorage(st, testScale), "climbing") {
		t.Error("storage format")
	}
}

func TestRebuildExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuild experiments skipped in -short mode")
	}
	cfg := Config{Scale: testScale}

	bus, err := BusSpeed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bus) != 2 || bus[0].Link == bus[1].Link {
		t.Fatalf("bus: %+v", bus)
	}
	_ = FormatBus(bus)

	spy, err := Spy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spy.Leaks != 0 {
		t.Fatalf("spy found %d leaks", spy.Leaks)
	}
	if spy.SpyMessages == 0 || spy.SecureHidden == 0 {
		t.Errorf("spy: %+v", spy)
	}
	if !strings.Contains(FormatSpy(spy), "leak audit") {
		t.Error("spy format")
	}

	ram, err := RAMSweep(cfg, []int{16 << 10, 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ram) != 2 {
		t.Fatalf("ram: %+v", ram)
	}
	_ = FormatRAM(ram)

	writes, err := WriteRatio(cfg, []float64{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 2 {
		t.Fatalf("writes: %+v", writes)
	}
	if writes[1].Grace <= writes[0].Grace {
		t.Errorf("higher write ratio did not slow the write-heavy baseline: %+v", writes)
	}
	_ = FormatWrites(writes)
}

func TestGameAblationsBloom(t *testing.T) {
	cfg := Config{Scale: testScale}
	db, _, err := BuildDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, pick, err := Game(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 || pick == "" {
		t.Fatalf("game: %d rows, pick %q", len(rows), pick)
	}
	if !strings.Contains(FormatGame(rows, pick), "optimizer") {
		t.Error("game format")
	}

	abl, err := Ablations(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 3 {
		t.Fatalf("%d ablations", len(abl))
	}
	dev, err := DeviceIndexAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.With <= 0 || dev.Without <= 0 {
		t.Fatalf("device ablation: %+v", dev)
	}
	_ = FormatAblations(append(abl, dev))

	bl, err := BloomFPR([]int{5000}, []float64{9.6})
	if err != nil {
		t.Fatal(err)
	}
	if bl[0].Measured > 3*bl[0].Analytic+0.01 {
		t.Errorf("bloom fpr: %+v", bl[0])
	}
	_ = FormatBloom(bl)
}
