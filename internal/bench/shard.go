package bench

// The multi-device sharding experiment: the same dataset built at 1, 2,
// 4 and 8 shards, measuring (a) concurrent query throughput — the win of
// round-robining independent device gates instead of serializing on one
// simulated USB device, (b) a scatter-gather aggregate over the
// partitioned fact table, and (c) a live-DML batch routed per shard.
// Written as BENCH_shard.json so the scaling curve is tracked across
// commits; the acceptance gate is the 4-shard concurrent throughput
// reaching 2.5x the single-device engine.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
)

// ShardPoint is one shard count's outcome.
type ShardPoint struct {
	Shards     int     `json:"shards"`
	Queries    int     `json:"queries"`     // concurrent-phase queries executed
	Goroutines int     `json:"goroutines"`  // concurrent-phase client goroutines
	QueryQPS   float64 `json:"query_qps"`   // concurrent throughput, host wall clock
	Speedup    float64 `json:"speedup"`     // QueryQPS relative to the first (1-shard) point
	AggWallNS  int64   `json:"agg_wall_ns"` // scatter-gather aggregate, host wall
	AggSimNS   int64   `json:"agg_sim_ns"`  // same aggregate, simulated time (max over shards)
	DMLWallNS  int64   `json:"dml_wall_ns"` // insert/update/delete batch + CHECKPOINT, host wall
	DMLRows    int64   `json:"dml_rows"`    // rows the DML batch touched
}

// shardThroughputQuery is dimension-rooted, so a sharded engine runs the
// whole query on one round-robin-chosen device — the case where extra
// devices turn into extra parallel capacity.
const shardThroughputQuery = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`

// shardAggregateQuery is root-rooted: it scatters over every shard's
// fact-table partition and merges aggregate partials on the host.
const shardAggregateQuery = `SELECT COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre WHERE Pre.Quantity > 2`

// ShardScaling builds the database once per shard count and runs the
// three phases. counts should start at 1; speedups are relative to the
// first point.
func ShardScaling(cfg Config, counts []int, goroutines, iters int) ([]ShardPoint, error) {
	var out []ShardPoint
	for _, n := range counts {
		var opts []core.Option
		if n > 1 {
			opts = append(opts, core.WithShards(n))
		}
		db, _, err := BuildDB(cfg, opts...)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		point := ShardPoint{Shards: n, Goroutines: goroutines, Queries: goroutines * iters}

		// Phase 1: concurrent throughput, one session per goroutine.
		sessions := make([]*core.Session, goroutines)
		for i := range sessions {
			if sessions[i], err = db.NewSession(); err != nil {
				return nil, err
			}
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		var firstErr atomic.Value
		start := time.Now()
		for _, s := range sessions {
			wg.Add(1)
			go func(s *core.Session) {
				defer wg.Done()
				for next.Add(1) <= int64(point.Queries) {
					if _, err := s.Query(shardThroughputQuery); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		point.QueryQPS = float64(point.Queries) / time.Since(start).Seconds()
		for _, s := range sessions {
			_ = s.Close()
		}
		if err, ok := firstErr.Load().(error); ok {
			return nil, fmt.Errorf("shards=%d concurrent: %w", n, err)
		}
		if len(out) == 0 {
			point.Speedup = 1
		} else {
			point.Speedup = point.QueryQPS / out[0].QueryQPS
		}

		// Phase 2: one scatter-gather aggregate over the fact table.
		start = time.Now()
		res, err := db.Query(shardAggregateQuery)
		if err != nil {
			return nil, fmt.Errorf("shards=%d aggregate: %w", n, err)
		}
		point.AggWallNS = time.Since(start).Nanoseconds()
		point.AggSimNS = res.Report.TotalTime.Nanoseconds()

		// Phase 3: a routed DML batch plus the parallel CHECKPOINT merge.
		start = time.Now()
		nextID, err := db.NextID("Prescription")
		if err != nil {
			return nil, err
		}
		medN, visN := db.RowCount("Medicine"), db.RowCount("Visit")
		for i := 0; i < 50; i++ {
			stmt := fmt.Sprintf(
				"INSERT INTO Prescription VALUES (%d, %d, %d, DATE '2007-%02d-%02d', %d, %d)",
				int(nextID)+i, 1+i%100, 1+i%4, 1+i%12, 1+i%28, 1+i%medN, 1+i%visN)
			rows, err := db.Exec(stmt)
			if err != nil {
				return nil, fmt.Errorf("shards=%d insert: %w", n, err)
			}
			point.DMLRows += rows
		}
		for _, stmt := range []string{
			"UPDATE Prescription SET Quantity = 1 WHERE Quantity > 95",
			"DELETE FROM Prescription WHERE Quantity BETWEEN 90 AND 94",
		} {
			rows, err := db.Exec(stmt)
			if err != nil {
				return nil, fmt.Errorf("shards=%d dml: %w", n, err)
			}
			point.DMLRows += rows
		}
		if _, err := db.Checkpoint(); err != nil {
			return nil, fmt.Errorf("shards=%d checkpoint: %w", n, err)
		}
		point.DMLWallNS = time.Since(start).Nanoseconds()

		out = append(out, point)
	}
	return out, nil
}

// FormatShardPoints renders the scaling experiment as one row per shard
// count.
func FormatShardPoints(points []ShardPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %10s %8s %12s %12s %12s\n",
		"shards", "qps", "speedup", "agg wall", "agg sim", "dml wall")
	for _, p := range points {
		fmt.Fprintf(&b, "%-7d %10.0f %7.2fx %12v %12v %12v\n",
			p.Shards, p.QueryQPS, p.Speedup,
			time.Duration(p.AggWallNS).Round(time.Microsecond),
			time.Duration(p.AggSimNS).Round(time.Microsecond),
			time.Duration(p.DMLWallNS).Round(time.Microsecond))
	}
	return b.String()
}
