package bench

// The metrics-overhead experiment: the observability acceptance gate is
// that a metrics-enabled engine stays within 5% of a metrics-off build
// on the hot query path. Two identical databases are built — one with
// the registry on (the default), one with WithMetrics(false) — and the
// same cached-plan query loop runs over both; the report carries both
// sides plus the relative overhead so BENCH_observability.json tracks
// the gap across commits.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
)

// ObservabilityRow is one side of the metrics on/off pair.
type ObservabilityRow struct {
	Name    string `json:"name"`      // "metrics_on" | "metrics_off"
	Queries int    `json:"queries"`   // timed query executions
	WallNS  int64  `json:"wall_ns"`   // total host wall clock for the loop
	NSPerOp int64  `json:"ns_per_op"` // wall ns per query
	Allocs  uint64 `json:"allocs"`    // host heap allocations in the loop
}

// ObservabilityReport is the full on/off comparison.
type ObservabilityReport struct {
	On          ObservabilityRow `json:"on"`
	Off         ObservabilityRow `json:"off"`
	OverheadPct float64          `json:"overhead_pct"` // (on-off)/off*100; negative = in the noise
	// MetricsObserved is the number of registry entries carrying data
	// after the loop — a sanity check that the instrumented side really
	// did feed the registry it is being billed for.
	MetricsObserved int `json:"metrics_observed"`
}

// observabilityQuery is the same selective single-table probe the
// concurrent-throughput benchmark uses: short enough that per-query
// bookkeeping would show, real enough to cross the device.
const observabilityQuery = `SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`

// Observability builds the metrics-on and metrics-off databases and
// times the same query loop over each. The loops run as interleaved
// rounds (off/on/off/on/...) so process-level drift — page-cache and
// allocator warmup, CPU frequency — cancels instead of landing on
// whichever side happens to run first.
func Observability(cfg Config, queries int) (*ObservabilityReport, error) {
	if queries <= 0 {
		queries = 200
	}
	type side struct {
		row  ObservabilityRow
		db   *core.DB
		run  func(n int) error
		wall time.Duration
	}
	open := func(name string, opts ...core.Option) (*side, error) {
		db, _, err := BuildDB(cfg, opts...)
		if err != nil {
			return nil, err
		}
		sess, err := db.NewSession()
		if err != nil {
			return nil, err
		}
		cq, err := sess.Compile(observabilityQuery)
		if err != nil {
			return nil, err
		}
		s := &side{row: ObservabilityRow{Name: name}, db: db}
		s.run = func(n int) error {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			allocs0 := ms.Mallocs
			start := time.Now()
			for i := 0; i < n; i++ {
				if _, err := sess.QueryCompiled(cq, nil); err != nil {
					return err
				}
			}
			s.wall += time.Since(start)
			runtime.ReadMemStats(&ms)
			s.row.Queries += n
			s.row.Allocs += ms.Mallocs - allocs0
			return nil
		}
		// Warm the plan cache, column mounts and allocator pools.
		for i := 0; i < 8; i++ {
			if _, err := sess.QueryCompiled(cq, nil); err != nil {
				return nil, err
			}
		}
		return s, nil
	}

	off, err := open("metrics_off", core.WithMetrics(false))
	if err != nil {
		return nil, err
	}
	defer off.db.Close()
	on, err := open("metrics_on")
	if err != nil {
		return nil, err
	}
	defer on.db.Close()

	const rounds = 8
	chunk := (queries + rounds - 1) / rounds
	for r := 0; r < rounds; r++ {
		if err := off.run(chunk); err != nil {
			return nil, err
		}
		if err := on.run(chunk); err != nil {
			return nil, err
		}
	}
	for _, s := range []*side{off, on} {
		s.row.WallNS = s.wall.Nanoseconds()
		s.row.NSPerOp = s.wall.Nanoseconds() / int64(s.row.Queries)
	}
	onDB := on.db

	rep := &ObservabilityReport{On: on.row, Off: off.row}
	if rep.Off.WallNS > 0 {
		rep.OverheadPct = 100 * float64(rep.On.WallNS-rep.Off.WallNS) / float64(rep.Off.WallNS)
	}
	for _, v := range onDB.MetricsSnapshot() {
		nonZero := v.Value != 0 || (v.Hist != nil && v.Hist.Count > 0)
		if nonZero {
			rep.MetricsObserved++
		}
	}
	return rep, nil
}

// FormatObservability renders the comparison table.
func FormatObservability(r *ObservabilityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %12s %12s %12s\n", "metrics", "queries", "wall", "ns/op", "allocs")
	for _, row := range []ObservabilityRow{r.Off, r.On} {
		fmt.Fprintf(&b, "%-12s %9d %12s %12d %12d\n",
			row.Name, row.Queries, time.Duration(row.WallNS).Round(time.Microsecond),
			row.NSPerOp, row.Allocs)
	}
	fmt.Fprintf(&b, "overhead: %+.2f%% wall with metrics on (%d registry entries fed)\n",
		r.OverheadPct, r.MetricsObserved)
	return b.String()
}
