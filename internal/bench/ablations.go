package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/bloom"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// AblationRow is one design-choice comparison.
type AblationRow struct {
	Name    string
	With    time.Duration
	Without time.Duration
	Note    string
}

// Ablations measures the design choices DESIGN.md calls out:
//
//  1. climbing indexes' transitive ancestor lists vs per-edge join
//     indices (one hop + materialization per edge);
//  2. hidden predicates through the climbing index vs hidden
//     post-filtering (fetch the attribute per candidate row);
//  3. cross-filtering on vs off for the demo query's pre-filtered plan.
func Ablations(db *core.DB) ([]AblationRow, error) {
	var out []AblationRow

	// 1. Transitive lists vs per-edge hops on a deep hidden predicate,
	// both under the bare-root-IDs contract.
	bq := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Patient", Column: "BodyMassIndex", P: pred.Compare(sql.OpGt, value.NewInt(40)), Hidden: true},
	}}
	_, climbRep, err := db.BaselineEngine().Run(bq, baseline.Climbing)
	if err != nil {
		return nil, err
	}
	_, hopRep, err := db.BaselineEngine().Run(bq, baseline.JoinIndex)
	if err != nil {
		return nil, err
	}
	out = append(out, AblationRow{
		Name:    "climbing transitive lists",
		With:    climbRep.TotalTime,
		Without: hopRep.TotalTime,
		Note:    "deep hidden predicate; without = per-edge join indices (one materialized hop per level)",
	})

	// 2. Hidden predicate via index vs attribute fetch after the SKT.
	q, err := db.Prepare(DemoQuery)
	if err != nil {
		return nil, err
	}
	withIx, err := db.QueryWithPlan(q, plan.Spec{
		Label:      "hid-ix",
		Strategies: []plan.Strategy{plan.StratVisPre, plan.StratHidIndex, plan.StratVisPre},
	})
	if err != nil {
		return nil, err
	}
	withoutIx, err := db.QueryWithPlan(q, plan.Spec{
		Label:      "hid-post",
		Strategies: []plan.Strategy{plan.StratVisPre, plan.StratHidPost, plan.StratVisPre},
	})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationRow{
		Name:    "hidden pred via climbing index",
		With:    withIx.Report.TotalTime,
		Without: withoutIx.Report.TotalTime,
		Note:    "without = fetch Vis.Purpose per candidate after the SKT",
	})

	// 3. Cross-filtering on the all-pre plan.
	crossOn, err := db.QueryWithPlan(q, demoSpec("cross-on", plan.StratVisPre, plan.StratVisPre, true))
	if err != nil {
		return nil, err
	}
	crossOff, err := db.QueryWithPlan(q, demoSpec("cross-off", plan.StratVisPre, plan.StratVisPre, false))
	if err != nil {
		return nil, err
	}
	out = append(out, AblationRow{
		Name:    "cross-filtering",
		With:    crossOn.Report.TotalTime,
		Without: crossOff.Report.TotalTime,
		Note:    "pre-filtered demo plan, intersecting at the Visit level first",
	})
	return out, nil
}

// DeviceIndexAblation builds a second database with a device climbing
// index on the visible Doctor.Country column (Figure 4) and compares the
// device-index strategy against delegating the same predicate.
func DeviceIndexAblation(cfg Config) (AblationRow, error) {
	db, _, err := BuildDB(cfg, core.WithDeviceIndex("Doctor", "Country"))
	if err != nil {
		return AblationRow{}, err
	}
	q, err := db.Prepare(DeepQuery)
	if err != nil {
		return AblationRow{}, err
	}
	// Predicate order in DeepQuery: Doc.Country (visible), Vis.Purpose
	// (hidden).
	device, err := db.QueryWithPlan(q, plan.Spec{Label: "device",
		Strategies: []plan.Strategy{plan.StratVisDevice, plan.StratHidIndex}})
	if err != nil {
		return AblationRow{}, err
	}
	delegated, err := db.QueryWithPlan(q, plan.Spec{Label: "pre",
		Strategies: []plan.Strategy{plan.StratVisPre, plan.StratHidIndex}, CrossFilter: true})
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:    "device index on visible column",
		With:    device.Report.TotalTime,
		Without: delegated.Report.TotalTime,
		Note: fmt.Sprintf("Doctor.Country evaluated on-device (bus %s) vs delegated (bus %s)",
			stats.FormatBytes(device.Report.BusBytes), stats.FormatBytes(delegated.Report.BusBytes)),
	}, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %12s %12s %8s\n", "design choice", "with", "without", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %12s %12s %7.1fx\n", r.Name,
			stats.FormatDuration(r.With), stats.FormatDuration(r.Without),
			float64(r.Without)/float64(r.With))
		fmt.Fprintf(&b, "    %s\n", r.Note)
	}
	return b.String()
}

// BloomRow is one row of the E10 micro-benchmark.
type BloomRow struct {
	Keys       int
	BitsPerKey float64
	K          int
	Analytic   float64
	Measured   float64
}

// BloomFPR measures Bloom filter false-positive rates against the
// analytic bound — the compactness/low-fpr property of [Bloom 1970] the
// paper relies on.
func BloomFPR(keyCounts []int, bitsPerKey []float64) ([]BloomRow, error) {
	var out []BloomRow
	for _, n := range keyCounts {
		for _, bpk := range bitsPerKey {
			mBits := int(float64(n) * bpk)
			k := bloom.OptimalK(mBits, n)
			f, err := bloom.New(mBits, k)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				f.Add(bloom.Hash32(uint32(i + 1)))
			}
			probes := 200000
			fp := 0
			for i := 0; i < probes; i++ {
				if f.Contains(bloom.Hash32(uint32(n + i + 1))) {
					fp++
				}
			}
			out = append(out, BloomRow{
				Keys:       n,
				BitsPerKey: bpk,
				K:          k,
				Analytic:   f.EstimatedFPR(),
				Measured:   float64(fp) / float64(probes),
			})
		}
	}
	return out, nil
}

// FormatBloom renders E10.
func FormatBloom(rows []BloomRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s %4s %12s %12s\n", "keys", "bits/key", "k", "analytic", "measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10.1f %4d %12.5f %12.5f\n",
			r.Keys, r.BitsPerKey, r.K, r.Analytic, r.Measured)
	}
	return b.String()
}
