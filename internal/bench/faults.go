package bench

// The fault-tolerance overhead experiment: the durability acceptance
// gate is that page CRCs plus A/B commit records cost under 5% of
// simulated device time on a live DML + CHECKPOINT + query workload.
// Three identical databases run the same workload: integrity off (the
// baseline), integrity on (the default), and integrity on under a
// low-rate transient fault plan — the last shows what the
// retry-with-backoff path charges when the flash actually misbehaves.
// Sim time is deterministic, so the on/off comparison is exact rather
// than statistical; wall time is reported only as context.

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/fault"
)

// FaultsRow is one side of the integrity comparison.
type FaultsRow struct {
	Name        string `json:"name"` // "integrity_off" | "integrity_on" | "faulted"
	Statements  int    `json:"statements"`
	Queries     int    `json:"queries"`
	Checkpoints int    `json:"checkpoints"`
	SimNS       int64  `json:"sim_ns"`  // simulated device time the workload advanced
	WallNS      int64  `json:"wall_ns"` // host wall clock, context only
	// RecordSimNS is the slice of SimNS spent erasing and programming
	// A/B commit-record slots (commit_record_sim_ns_total delta).
	RecordSimNS int64 `json:"record_sim_ns"`
}

// FaultsReport is the full durability-overhead comparison.
type FaultsReport struct {
	Off     FaultsRow `json:"off"`
	On      FaultsRow `json:"on"`
	Faulted FaultsRow `json:"faulted"`
	// OverheadPct is the simulated-time cost of integrity (CRC-verified
	// reads + commit records) over the baseline: (on-off)/off*100.
	// The acceptance gate is < 5.
	OverheadPct float64 `json:"overhead_pct"`
	// RecordPct is the commit-record share of the integrity-on workload.
	RecordPct float64 `json:"record_pct"`
	// FaultedPct is the extra simulated time the transient-fault run paid
	// for retries and backoff over the clean integrity-on run.
	FaultedPct     float64 `json:"faulted_pct"`
	FaultsInjected int64   `json:"faults_injected"`
	FaultsRetried  int64   `json:"faults_retried"`
}

// faultsPlan keeps the rates low enough that retry-with-backoff absorbs
// every fault (the chance of exhausting the retry budget is p^5).
const faultsPlan = "seed=9,read.transient=0.002,bus.transient=0.002"

// counterValue reads one engine counter; 0 when absent or metrics off.
func counterValue(db *core.DB, name string) int64 {
	if v, ok := db.MetricsSnapshot().Get(name); ok {
		return v.Value
	}
	return 0
}

// Faults builds the three databases and runs the identical workload
// over each: rounds of (insert batch, update, selective + aggregate
// queries, CHECKPOINT), so every durability surface — CRC-verified
// scans, delta merges, record-slot erase/program — is on the bill.
func Faults(cfg Config, rounds int) (*FaultsReport, error) {
	if rounds <= 0 {
		rounds = 4
	}
	queries := []string{
		`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`,
		`SELECT COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre WHERE Pre.Quantity > 2`,
	}
	var injected, retried int64 // deposited by the faulted run
	run := func(name string, opts ...core.Option) (FaultsRow, error) {
		row := FaultsRow{Name: name}
		db, _, err := BuildDB(cfg, opts...)
		if err != nil {
			return row, err
		}
		defer db.Close()
		medN := db.RowCount("Medicine")
		visN := db.RowCount("Visit")
		next, err := db.NextID("Prescription")
		if err != nil {
			return row, err
		}
		rec0 := counterValue(db, "commit_record_sim_ns_total")
		sim0 := db.Clock().Now()
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i := 0; i < 25; i++ {
				stmt := fmt.Sprintf(
					"INSERT INTO Prescription VALUES (%d, %d, %d, DATE '2007-%02d-%02d', %d, %d)",
					int(next), 1+i%100, 1+i%4, 1+r%12, 1+i%28, 1+i%medN, 1+i%visN)
				next++
				if _, err := db.Exec(stmt); err != nil {
					return row, fmt.Errorf("%s: %w", name, err)
				}
				row.Statements++
			}
			upd := fmt.Sprintf("UPDATE Prescription SET Quantity = %d WHERE Quantity > 97", 1+r)
			if _, err := db.Exec(upd); err != nil {
				return row, fmt.Errorf("%s: %w", name, err)
			}
			row.Statements++
			for _, q := range queries {
				if _, err := db.Query(q); err != nil {
					return row, fmt.Errorf("%s: %w", name, err)
				}
				row.Queries++
			}
			if _, err := db.Checkpoint(); err != nil {
				return row, fmt.Errorf("%s: %w", name, err)
			}
			row.Checkpoints++
		}
		row.SimNS = (db.Clock().Now() - sim0).Nanoseconds()
		row.WallNS = time.Since(start).Nanoseconds()
		row.RecordSimNS = counterValue(db, "commit_record_sim_ns_total") - rec0
		if name == "faulted" {
			injected = counterValue(db, "faults_injected_total")
			retried = counterValue(db, "faults_retried_total")
			if err := db.FatalError(); err != nil {
				return row, fmt.Errorf("faulted run latched a fatal error: %w", err)
			}
		}
		return row, nil
	}

	rep := &FaultsReport{}
	var err error
	if rep.Off, err = run("integrity_off", core.WithIntegrity(false)); err != nil {
		return nil, err
	}
	if rep.On, err = run("integrity_on"); err != nil {
		return nil, err
	}
	plan, err := fault.ParsePlan(faultsPlan)
	if err != nil {
		return nil, err
	}
	if rep.Faulted, err = run("faulted", core.WithFaultPlan(plan)); err != nil {
		return nil, err
	}
	rep.FaultsInjected, rep.FaultsRetried = injected, retried
	if rep.Off.SimNS > 0 {
		rep.OverheadPct = 100 * float64(rep.On.SimNS-rep.Off.SimNS) / float64(rep.Off.SimNS)
	}
	if rep.On.SimNS > 0 {
		rep.RecordPct = 100 * float64(rep.On.RecordSimNS) / float64(rep.On.SimNS)
		rep.FaultedPct = 100 * float64(rep.Faulted.SimNS-rep.On.SimNS) / float64(rep.On.SimNS)
	}
	return rep, nil
}

// FormatFaults renders the comparison table.
func FormatFaults(r *FaultsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %8s %6s %14s %14s\n",
		"integrity", "stmts", "queries", "ckpts", "sim", "record sim")
	for _, row := range []FaultsRow{r.Off, r.On, r.Faulted} {
		fmt.Fprintf(&b, "%-14s %6d %8d %6d %14v %14v\n",
			row.Name, row.Statements, row.Queries, row.Checkpoints,
			time.Duration(row.SimNS).Round(time.Microsecond),
			time.Duration(row.RecordSimNS).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "integrity overhead: %+.2f%% sim time (gate < 5%%); commit records: %.2f%% of the workload\n",
		r.OverheadPct, r.RecordPct)
	fmt.Fprintf(&b, "under faults (%s): %+.2f%% sim time, %d injected, %d retried, none fatal\n",
		faultsPlan, r.FaultedPct, r.FaultsInjected, r.FaultsRetried)
	return b.String()
}
