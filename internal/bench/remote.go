package bench

// Remote experiment runners: the aggregate and DML workloads re-phrased
// over ghostdb-server's wire protocol, so a long-lived server can be
// profiled in place with the same tables the in-process experiments
// print. Wall times include the HTTP round trip (that is the point);
// simulated device time comes back in the query responses, and host
// allocation counts are meaningless across a process boundary, so they
// stay zero.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/server"
)

// remote is a minimal wire-protocol client for the experiment runners.
// Like the loadgen client it honors 429 Retry-After throttling.
type remote struct {
	base string
	hc   *http.Client
}

func newRemote(base string) *remote {
	return &remote{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 5 * time.Minute},
	}
}

// post sends one JSON request, retrying while the server throttles, and
// decodes the response into out.
func (r *remote) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	for {
		resp, err := r.hc.Post(r.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			backoff := retryAfterOf(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(backoff)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var werr server.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&werr)
			resp.Body.Close()
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, werr.Error)
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return err
	}
}

func (r *remote) query(sql string) (*server.QueryResponse, error) {
	var resp server.QueryResponse
	if err := r.post("/v1/query", server.QueryRequest{SQL: sql}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (r *remote) exec(sql string) (int64, error) {
	var resp server.ExecResponse
	if err := r.post("/v1/exec", server.QueryRequest{SQL: sql}, &resp); err != nil {
		return 0, err
	}
	return resp.RowsAffected, nil
}

func (r *remote) checkpoint() (int64, error) {
	var resp server.CheckpointResponse
	if err := r.post("/v1/checkpoint", struct{}{}, &resp); err != nil {
		return 0, err
	}
	return resp.Absorbed, nil
}

// scalarInt runs a single-row single-column query (COUNT/MAX) remotely.
func (r *remote) scalarInt(sql string) (int64, error) {
	resp, err := r.query(sql)
	if err != nil {
		return 0, err
	}
	if len(resp.Rows) != 1 || len(resp.Rows[0]) != 1 {
		return 0, fmt.Errorf("%q: unexpected scalar shape %v", sql, resp.Rows)
	}
	switch v := resp.Rows[0][0].(type) {
	case float64:
		return int64(v), nil
	case json.Number:
		return v.Int64()
	default:
		return 0, fmt.Errorf("%q: non-numeric scalar %T", sql, v)
	}
}

// AggregateWorkloadURL runs the analytics workload against a running
// ghostdb-server: same queries, wall clock measured across the wire,
// simulated device time from the responses. RAM high-water marks are
// not exposed over the wire and stay zero.
func AggregateWorkloadURL(base string) ([]AggregateRow, error) {
	r := newRemote(base)
	var out []AggregateRow
	for _, aq := range AggregateQueries {
		start := time.Now()
		resp, err := r.query(aq.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", aq.Name, err)
		}
		out = append(out, AggregateRow{
			Name:    aq.Name,
			SimTime: time.Duration(resp.SimNS),
			Wall:    time.Since(start),
			Rows:    len(resp.Rows),
		})
	}
	return out, nil
}

// DMLWorkloadURL runs the mixed live-DML workload against a running
// ghostdb-server, mutating it in place: inserts sized from the server's
// own Prescription cardinality, updates, deletes with cascade, dirty
// queries, CHECKPOINT over the wire, merged queries. Host allocations
// and per-exec simulated time are not visible across the wire and stay
// zero; query phases report the device time the responses carry.
func DMLWorkloadURL(base string) ([]DMLPhase, error) {
	r := newRemote(base)
	var phases []DMLPhase
	measure := func(name string, f func() (ops int, rows int64, sim int64, err error)) error {
		start := time.Now()
		ops, rows, sim, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		phases = append(phases, DMLPhase{
			Name:   name,
			Ops:    ops,
			Rows:   rows,
			WallNS: time.Since(start).Nanoseconds(),
			SimNS:  sim,
		})
		return nil
	}

	scale, err := r.scalarInt("SELECT COUNT(*) FROM Prescription Pre")
	if err != nil {
		return nil, err
	}
	medN, err := r.scalarInt("SELECT COUNT(*) FROM Medicine Med")
	if err != nil {
		return nil, err
	}
	visN, err := r.scalarInt("SELECT COUNT(*) FROM Visit Vis")
	if err != nil {
		return nil, err
	}
	next, err := r.scalarInt("SELECT MAX(Pre.PreID) FROM Prescription Pre")
	if err != nil {
		return nil, err
	}
	next++
	inserts := int(scale / 100)
	if inserts < 100 {
		inserts = 100
	}

	if err := measure("insert", func() (int, int64, int64, error) {
		var total int64
		for i := 0; i < inserts; i++ {
			id := int(next) + i
			stmt := fmt.Sprintf(
				"INSERT INTO Prescription VALUES (%d, %d, %d, DATE '2007-%02d-%02d', %d, %d)",
				id, 1+i%100, 1+i%4, 1+i%12, 1+i%28, 1+int64(i)%medN, 1+int64(i)%visN)
			n, err := r.exec(stmt)
			if err != nil {
				return 0, 0, 0, err
			}
			total += n
		}
		return inserts, total, 0, nil
	}); err != nil {
		return nil, err
	}

	if err := measure("update", func() (int, int64, int64, error) {
		var total int64
		stmts := []string{
			"UPDATE Prescription SET Quantity = 1 WHERE Quantity > 95",
			"UPDATE Visit SET Purpose = 'Checkup' WHERE Date > 2007-06-01",
		}
		for _, s := range stmts {
			n, err := r.exec(s)
			if err != nil {
				return 0, 0, 0, err
			}
			total += n
		}
		return len(stmts), total, 0, nil
	}); err != nil {
		return nil, err
	}

	if err := measure("delete", func() (int, int64, int64, error) {
		var total int64
		stmts := []string{
			"DELETE FROM Prescription WHERE Quantity BETWEEN 90 AND 94",
			"DELETE FROM Medicine WHERE Type = 'Vaccine'",
		}
		for _, s := range stmts {
			n, err := r.exec(s)
			if err != nil {
				return 0, 0, 0, err
			}
			total += n
		}
		return len(stmts), total, 0, nil
	}); err != nil {
		return nil, err
	}

	queries := func() (int, int64, int64, error) {
		qs := []string{
			DemoQuery,
			"SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity < 10",
			"SELECT COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre WHERE Pre.Quantity > 2",
		}
		var sim int64
		for _, q := range qs {
			resp, err := r.query(q)
			if err != nil {
				return 0, 0, 0, err
			}
			sim += resp.SimNS
		}
		return len(qs), 0, sim, nil
	}
	if err := measure("query-dirty", queries); err != nil {
		return nil, err
	}

	if err := measure("checkpoint", func() (int, int64, int64, error) {
		n, err := r.checkpoint()
		return 1, n, 0, err
	}); err != nil {
		return nil, err
	}

	if err := measure("query-merged", queries); err != nil {
		return nil, err
	}
	return phases, nil
}
