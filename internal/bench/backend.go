package bench

// The backend experiment: the same load + query + DML + checkpoint
// workload on the simulated NAND and on the real-file backend (with and
// without fsync), all measured in host wall clock. The simulated backend
// pays for its cost model and in-memory bookkeeping; the file backend
// pays the host filesystem. The reopen row is file-only: wall time to
// come back from the on-disk image, which the simulation cannot do at
// all.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/storage"
)

// BackendPoint is one backend's wall-clock profile.
type BackendPoint struct {
	Backend  string  `json:"backend"`             // sim, file, file+fsync
	LoadNS   int64   `json:"load_ns"`             // dataset load + hidden-store build
	QueryNS  int64   `json:"query_ns"`            // queryIters demo queries
	QueryQPS float64 `json:"query_qps"`           // demo queries per wall second
	DMLNS    int64   `json:"dml_ns"`              // insert batch + CHECKPOINT merge
	ReopenNS int64   `json:"reopen_ns,omitempty"` // OpenPath from disk (file backends only)
	Rows     int     `json:"rows"`                // demo query result rows (must agree across backends)
	Stored   int     `json:"stored"`              // Prescription rows after DML+checkpoint (must agree, never zero)
}

// BackendReport is the machine-readable result of the backend
// experiment, embedded in BENCH_backend.json.
type BackendReport struct {
	QueryIters int            `json:"query_iters"`
	Inserts    int            `json:"inserts"`
	Points     []BackendPoint `json:"points"`
}

// BackendCompare profiles the storage backends under one workload. The
// file-backed databases live in throwaway temp directories.
func BackendCompare(cfg Config, queryIters int) (*BackendReport, error) {
	inserts := cfg.Scale / 100
	if inserts < 100 {
		inserts = 100
	}
	rep := &BackendReport{QueryIters: queryIters, Inserts: inserts}

	backends := []struct {
		name  string
		fsync bool
	}{
		{"sim", false},
		{"file", false},
		{"file+fsync", true},
	}
	for _, be := range backends {
		var opts []core.Option
		var dir string
		if be.name != "sim" {
			var err error
			dir, err = os.MkdirTemp("", "ghostdb-bench-backend-")
			if err != nil {
				return nil, err
			}
			dir = filepath.Join(dir, "dev")
			opts = append(opts, core.WithBackend(storage.File(dir, be.fsync)))
		} else {
			opts = append(opts, core.WithBackend(storage.Sim()))
		}
		pt, err := backendPoint(cfg, be.name, dir, queryIters, inserts, opts)
		if dir != "" {
			os.RemoveAll(filepath.Dir(dir))
		}
		if err != nil {
			return nil, fmt.Errorf("%s backend: %w", be.name, err)
		}
		rep.Points = append(rep.Points, *pt)
	}

	// Differential gate: a backend must never change query results. The
	// demo query can legitimately match nothing at small scales, so the
	// post-DML Prescription cardinality (never zero) is compared too.
	for _, pt := range rep.Points[1:] {
		if pt.Rows != rep.Points[0].Rows || pt.Stored != rep.Points[0].Stored {
			return rep, fmt.Errorf("backend %s returned %d demo rows / %d stored, sim returned %d / %d",
				pt.Backend, pt.Rows, pt.Stored, rep.Points[0].Rows, rep.Points[0].Stored)
		}
	}
	return rep, nil
}

func backendPoint(cfg Config, name, dir string, queryIters, inserts int, opts []core.Option) (*BackendPoint, error) {
	pt := &BackendPoint{Backend: name}

	start := time.Now()
	db, _, err := BuildDB(cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.EnsureBuilt(); err != nil {
		return nil, err
	}
	pt.LoadNS = time.Since(start).Nanoseconds()

	start = time.Now()
	for i := 0; i < queryIters; i++ {
		res, err := db.Query(DemoQuery)
		if err != nil {
			return nil, err
		}
		pt.Rows = len(res.Rows)
	}
	qwall := time.Since(start)
	pt.QueryNS = qwall.Nanoseconds()
	pt.QueryQPS = float64(queryIters) / qwall.Seconds()

	start = time.Now()
	next, err := db.NextID("Prescription")
	if err != nil {
		return nil, err
	}
	medN := db.RowCount("Medicine")
	visN := db.RowCount("Visit")
	for i := 0; i < inserts; i++ {
		stmt := fmt.Sprintf(
			"INSERT INTO Prescription VALUES (%d, %d, %d, DATE '2007-%02d-%02d', %d, %d)",
			int(next)+i, 1+i%100, 1+i%4, 1+i%12, 1+i%28, 1+i%medN, 1+i%visN)
		if _, err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		return nil, err
	}
	pt.DMLNS = time.Since(start).Nanoseconds()
	pt.Stored = db.RowCount("Prescription")

	if dir != "" {
		// The checkpointed inserts may match the demo predicates, so the
		// reopened database is compared against the post-DML answer.
		post, err := db.Query(DemoQuery)
		if err != nil {
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		start = time.Now()
		ndb, _, err := core.OpenPath(dir)
		if err != nil {
			return nil, fmt.Errorf("reopen: %w", err)
		}
		pt.ReopenNS = time.Since(start).Nanoseconds()
		res, err := ndb.Query(DemoQuery)
		if err != nil {
			ndb.Close()
			return nil, fmt.Errorf("reopened query: %w", err)
		}
		if len(res.Rows) != len(post.Rows) {
			ndb.Close()
			return nil, fmt.Errorf("reopened database returned %d demo rows, want %d", len(res.Rows), len(post.Rows))
		}
		if n := ndb.RowCount("Prescription"); n != pt.Stored {
			ndb.Close()
			return nil, fmt.Errorf("reopened database holds %d Prescription rows, want %d", n, pt.Stored)
		}
		ndb.Close()
	}
	return pt, nil
}

// FormatBackendReport renders the backend comparison.
func FormatBackendReport(r *BackendReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %12s %12s\n", "backend", "load", "query", "qps", "dml+ckpt", "reopen")
	for _, p := range r.Points {
		reopen := "-"
		if p.ReopenNS > 0 {
			reopen = time.Duration(p.ReopenNS).Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-12s %12v %12v %12.0f %12v %12s\n",
			p.Backend,
			time.Duration(p.LoadNS).Round(time.Millisecond),
			time.Duration(p.QueryNS).Round(time.Millisecond),
			p.QueryQPS,
			time.Duration(p.DMLNS).Round(time.Millisecond),
			reopen)
	}
	fmt.Fprintf(&b, "(%d demo queries, %d inserts; identical result rows enforced across backends)\n",
		r.QueryIters, r.Inserts)
	return b.String()
}
