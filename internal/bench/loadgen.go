package bench

// The loadgen experiment: drive ghostdb-server's wire protocol with
// thousands of concurrent HTTP clients and measure what the admission
// layer does under pressure. Each client loops point lookups against
// the hospital dataset, honoring 429 Retry-After hints; the report
// separates throttling (expected under saturation) from drops (never
// acceptable) and quantile latencies come from the same log-scale
// histogram the engine metrics use.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghostdb/ghostdb/internal/metrics"
	"github.com/ghostdb/ghostdb/internal/server"
)

// ServerReport is the machine-readable result of one loadgen run,
// embedded in BENCH_server.json.
type ServerReport struct {
	Clients     int     `json:"clients"`    // concurrent client goroutines
	PerClient   int     `json:"per_client"` // requests each client completes
	Requests    int64   `json:"requests"`   // successful requests (2xx)
	Rejected    int64   `json:"rejected"`   // 429 responses (retried until success)
	Dropped     int64   `json:"dropped"`    // non-2xx, non-429 outcomes — must be 0
	RowsTotal   int64   `json:"rows_total"` // result rows delivered
	WallNS      int64   `json:"wall_ns"`    // whole-run wall clock
	P50NS       int64   `json:"p50_ns"`     // successful-request latency quantiles
	P95NS       int64   `json:"p95_ns"`
	P99NS       int64   `json:"p99_ns"`
	MaxNS       int64   `json:"max_ns"`
	QPS         float64 `json:"qps"`          // successful requests per wall second
	MaxInflight int     `json:"max_inflight"` // server admission bound (0 = external server, unknown)
}

// LoadGenURL drives an already-running ghostdb-server at base (e.g.
// "http://127.0.0.1:8080") that hosts the hospital dataset: clients
// goroutines each complete perClient point queries, retrying on 429.
func LoadGenURL(base string, clients, perClient int) (*ServerReport, error) {
	base = strings.TrimRight(base, "/")
	tr := &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
		IdleConnTimeout:     time.Minute,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: time.Minute}

	// Learn the Doctor cardinality so lookups spread over real keys.
	docs, err := probeDoctorCount(client, base)
	if err != nil {
		return nil, err
	}

	var (
		ok, rejected, dropped, rows atomic.Int64
		hist                        metrics.Histogram
		maxNS                       atomic.Int64
		wg                          sync.WaitGroup

		errMu    sync.Mutex
		firstErr error
	)
	noteErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := int64((c*perClient+i)%docs) + 1
				body, _ := json.Marshal(map[string]any{
					"sql":  "SELECT Doc.Name FROM Doctor Doc WHERE Doc.DocID = ?",
					"args": []any{id},
				})
				for {
					t0 := time.Now()
					resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
					if err != nil {
						dropped.Add(1)
						noteErr(fmt.Errorf("query: %w", err))
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						rejected.Add(1)
						backoff := retryAfterOf(resp)
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						time.Sleep(backoff)
						continue
					}
					var qr struct {
						Rows [][]any `json:"rows"`
					}
					decErr := json.NewDecoder(resp.Body).Decode(&qr)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || decErr != nil {
						dropped.Add(1)
						noteErr(fmt.Errorf("query: status %d (decode: %v)", resp.StatusCode, decErr))
						break
					}
					ns := time.Since(t0).Nanoseconds()
					hist.Observe(ns)
					for {
						cur := maxNS.Load()
						if ns <= cur || maxNS.CompareAndSwap(cur, ns) {
							break
						}
					}
					ok.Add(1)
					rows.Add(int64(len(qr.Rows)))
					break
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := hist.Snapshot()
	rep := &ServerReport{
		Clients:   clients,
		PerClient: perClient,
		Requests:  ok.Load(),
		Rejected:  rejected.Load(),
		Dropped:   dropped.Load(),
		RowsTotal: rows.Load(),
		WallNS:    wall.Nanoseconds(),
		P50NS:     snap.Quantile(0.50),
		P95NS:     snap.Quantile(0.95),
		P99NS:     snap.Quantile(0.99),
		MaxNS:     maxNS.Load(),
		QPS:       float64(ok.Load()) / wall.Seconds(),
	}
	if rep.Dropped > 0 {
		errMu.Lock()
		err := firstErr
		errMu.Unlock()
		return rep, fmt.Errorf("loadgen dropped %d requests (first: %v)", rep.Dropped, err)
	}
	return rep, nil
}

// LoadGenLocal builds the hospital database at cfg's scale, serves it
// in-process over a real TCP listener, runs LoadGenURL against it and
// shuts the server down gracefully.
func LoadGenLocal(cfg Config, clients, perClient, maxInflight int) (*ServerReport, error) {
	db, _, err := BuildDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.EnsureBuilt(); err != nil {
		return nil, err
	}
	srv, err := server.New(db, server.Config{MaxInflight: maxInflight})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	rep, lerr := LoadGenURL("http://"+ln.Addr().String(), clients, perClient)

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return rep, fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return rep, fmt.Errorf("serve: %w", err)
	}
	if rep != nil {
		rep.MaxInflight = maxInflight
	}
	return rep, lerr
}

// probeDoctorCount asks the server how many doctors the dataset holds.
func probeDoctorCount(client *http.Client, base string) (int, error) {
	body := []byte(`{"sql": "SELECT COUNT(*) FROM Doctor Doc"}`)
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("probe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("probe: status %d: %s", resp.StatusCode, msg)
	}
	var qr struct {
		Rows [][]json.Number `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return 0, fmt.Errorf("probe: %v", err)
	}
	if len(qr.Rows) != 1 || len(qr.Rows[0]) != 1 {
		return 0, fmt.Errorf("probe: unexpected COUNT shape %v", qr.Rows)
	}
	n, err := qr.Rows[0][0].Int64()
	if err != nil || n < 1 {
		return 0, fmt.Errorf("probe: bad doctor count %v", qr.Rows[0][0])
	}
	return int(n), nil
}

// retryAfterOf parses a 429's Retry-After hint, capped for load-test
// pacing (the server's hint is sized for polite clients, not a
// benchmark trying to saturate it).
func retryAfterOf(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
			d := time.Duration(sec) * time.Second
			if d > 50*time.Millisecond {
				d = 50 * time.Millisecond
			}
			return d
		}
	}
	return 5 * time.Millisecond
}

// FormatServerReport renders the loadgen table.
func FormatServerReport(r *ServerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %s\n", "concurrent clients", fmtInt(int64(r.Clients)))
	fmt.Fprintf(&b, "%-28s %s\n", "requests completed", fmtInt(r.Requests))
	fmt.Fprintf(&b, "%-28s %s\n", "throttled (429, retried)", fmtInt(r.Rejected))
	fmt.Fprintf(&b, "%-28s %s\n", "dropped (non-429 failures)", fmtInt(r.Dropped))
	fmt.Fprintf(&b, "%-28s %s\n", "result rows", fmtInt(r.RowsTotal))
	fmt.Fprintf(&b, "%-28s %.0f req/s\n", "throughput", r.QPS)
	fmt.Fprintf(&b, "%-28s p50 %v   p95 %v   p99 %v   max %v\n", "latency",
		time.Duration(r.P50NS).Round(time.Microsecond),
		time.Duration(r.P95NS).Round(time.Microsecond),
		time.Duration(r.P99NS).Round(time.Microsecond),
		time.Duration(r.MaxNS).Round(time.Microsecond))
	fmt.Fprintf(&b, "%-28s %v\n", "wall clock", time.Duration(r.WallNS).Round(time.Millisecond))
	return b.String()
}

func fmtInt(n int64) string {
	s := strconv.FormatInt(n, 10)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}
