package bench

// Experiment: the analytics workload opened by the aggregation layer.
// Each query runs the full distributed SPJ pipeline on the simulated
// device plus the host-side finishing stage (group-by / order / top-K),
// so the table shows what analytics over hidden data costs: simulated
// device time is dictated by the underlying ID-stream pipeline, the
// aggregation itself is host work on the secure display.

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/stats"
)

// AggregateQueries is the analytics workload: grouped counts and sums
// over hidden and visible columns, HAVING restriction, top-K ordering
// and DISTINCT — all phrased over the Figure 3 hospital schema.
var AggregateQueries = []struct{ Name, Query string }{
	{"count", "SELECT COUNT(*) FROM Prescription"},
	{"group-hidden", "SELECT Vis.Purpose, COUNT(*) FROM Visit Vis GROUP BY Vis.Purpose"},
	{"sum-by-type", "SELECT Med.Type, SUM(Pre.Quantity) FROM Medicine Med, Prescription Pre GROUP BY Med.Type ORDER BY SUM(Pre.Quantity) DESC"},
	{"having-topk", "SELECT Doc.Country, COUNT(*) FROM Doctor Doc, Visit Vis, Prescription Pre WHERE Pre.Quantity >= 2 GROUP BY Doc.Country HAVING COUNT(*) > 10 ORDER BY COUNT(*) DESC LIMIT 5"},
	{"stats", "SELECT MIN(Pre.Quantity), MAX(Pre.Quantity), AVG(Pre.Quantity) FROM Prescription Pre WHERE Pre.Frequency >= 2"},
	{"distinct", "SELECT DISTINCT Doc.Speciality FROM Doctor Doc ORDER BY Doc.Speciality"},
}

// AggregateRow is one analytics query's outcome.
type AggregateRow struct {
	Name    string
	SimTime time.Duration // simulated device time
	Wall    time.Duration // host wall clock, finishing stage included
	RAM     int64
	Rows    int // result rows (groups)
}

// AggregateWorkload executes the analytics workload under the
// optimizer's plan choice.
func AggregateWorkload(db *core.DB) ([]AggregateRow, error) {
	var out []AggregateRow
	for _, aq := range AggregateQueries {
		start := time.Now()
		res, err := db.Query(aq.Query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", aq.Name, err)
		}
		out = append(out, AggregateRow{
			Name:    aq.Name,
			SimTime: res.Report.TotalTime,
			Wall:    time.Since(start),
			RAM:     res.Report.RAMHigh,
			Rows:    len(res.Rows),
		})
	}
	return out, nil
}

// FormatAggregateRows renders the workload outcomes as a table.
func FormatAggregateRows(rows []AggregateRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %10s %8s\n", "query", "sim time", "wall", "ram", "groups")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12s %12s %10s %8d\n",
			r.Name, stats.FormatDuration(r.SimTime), r.Wall.Round(time.Microsecond),
			stats.FormatBytes(r.RAM), r.Rows)
	}
	return b.String()
}
