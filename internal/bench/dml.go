package bench

// The DML mixed-workload experiment: live mutations against a loaded
// database — post-build inserts, deletes with virtual cascade, updates,
// queries over the dirty delta, then a CHECKPOINT merge and queries over
// the compacted state. Each phase reports host wall time, host
// allocations and the simulated device time it advanced, so the cost of
// the delta merge and of the checkpoint's erase/program bill are tracked
// across commits (BENCH_dml.json).

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// DMLPhase is one phase of the mixed workload.
type DMLPhase struct {
	Name   string `json:"name"`
	Ops    int    `json:"ops"`     // statements (or queries) executed
	Rows   int64  `json:"rows"`    // rows affected (0 for query phases)
	WallNS int64  `json:"wall_ns"` // host wall clock
	Allocs uint64 `json:"allocs"`  // host heap allocations
	SimNS  int64  `json:"sim_ns"`  // simulated device time advanced
}

// DMLWorkload builds a private database at the config's scale and runs
// the mixed live-DML workload over it.
func DMLWorkload(cfg Config) ([]DMLPhase, error) {
	db, _, err := BuildDB(cfg)
	if err != nil {
		return nil, err
	}
	var phases []DMLPhase
	measure := func(name string, f func() (ops int, rows int64, err error)) error {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocs0 := ms.Mallocs
		sim0 := db.Clock().Now()
		start := time.Now()
		ops, rows, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		phases = append(phases, DMLPhase{
			Name:   name,
			Ops:    ops,
			Rows:   rows,
			WallNS: wall.Nanoseconds(),
			Allocs: ms.Mallocs - allocs0,
			SimNS:  (db.Clock().Now() - sim0).Nanoseconds(),
		})
		return nil
	}

	medN := db.RowCount("Medicine")
	visN := db.RowCount("Visit")
	inserts := cfg.Scale / 100
	if inserts < 100 {
		inserts = 100
	}

	if err := measure("insert", func() (int, int64, error) {
		var total int64
		next, err := db.NextID("Prescription")
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < inserts; i++ {
			id := int(next) + i
			stmt := fmt.Sprintf(
				"INSERT INTO Prescription VALUES (%d, %d, %d, DATE '2007-%02d-%02d', %d, %d)",
				id, 1+i%100, 1+i%4, 1+i%12, 1+i%28, 1+i%medN, 1+i%visN)
			n, err := db.Exec(stmt)
			if err != nil {
				return 0, 0, err
			}
			total += n
		}
		return inserts, total, nil
	}); err != nil {
		return nil, err
	}

	if err := measure("update", func() (int, int64, error) {
		var total int64
		stmts := []string{
			"UPDATE Prescription SET Quantity = 1 WHERE Quantity > 95",
			"UPDATE Visit SET Purpose = 'Checkup' WHERE Date > 2007-06-01",
		}
		for _, s := range stmts {
			n, err := db.Exec(s)
			if err != nil {
				return 0, 0, err
			}
			total += n
		}
		return len(stmts), total, nil
	}); err != nil {
		return nil, err
	}

	if err := measure("delete", func() (int, int64, error) {
		var total int64
		stmts := []string{
			"DELETE FROM Prescription WHERE Quantity BETWEEN 90 AND 94",
			"DELETE FROM Medicine WHERE Type = 'Vaccine'", // cascades into prescriptions
		}
		for _, s := range stmts {
			n, err := db.Exec(s)
			if err != nil {
				return 0, 0, err
			}
			total += n
		}
		return len(stmts), total, nil
	}); err != nil {
		return nil, err
	}

	queries := func() (int, int64, error) {
		qs := []string{
			DemoQuery,
			"SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity < 10",
			"SELECT COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre WHERE Pre.Quantity > 2",
		}
		for _, q := range qs {
			if _, err := db.Query(q); err != nil {
				return 0, 0, err
			}
		}
		return len(qs), 0, nil
	}
	if err := measure("query-dirty", queries); err != nil {
		return nil, err
	}

	if err := measure("checkpoint", func() (int, int64, error) {
		n, err := db.Checkpoint()
		return 1, n, err
	}); err != nil {
		return nil, err
	}

	if err := measure("query-merged", queries); err != nil {
		return nil, err
	}
	return phases, nil
}

// FormatDMLPhases renders the workload as a phase table.
func FormatDMLPhases(phases []DMLPhase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %10s %14s %12s %14s\n", "phase", "ops", "rows", "wall", "allocs", "sim")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-14s %6d %10d %14v %12d %14v\n",
			p.Name, p.Ops, p.Rows,
			time.Duration(p.WallNS).Round(time.Microsecond),
			p.Allocs,
			time.Duration(p.SimNS).Round(time.Microsecond))
	}
	return b.String()
}
