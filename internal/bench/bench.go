// Package bench implements the experiment harness: one runner per table
// and figure of the paper's evaluation (see DESIGN.md's experiment index
// E1-E11). cmd/ghostdb-bench prints their outputs; the repository-root
// benchmarks wrap them in testing.B.
package bench

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/bus"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

// DemoQuery is the paper's Section 4 example, the workload of most
// experiments.
const DemoQuery = `SELECT Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE Vis.Date > 05-11-2006 /*VISIBLE*/
AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
AND Med.Type = "Antibiotic"  /*VISIBLE*/
AND Med.MedID = Pre.MedID
AND Vis.VisID = Pre.VisID`

// DeepQuery reaches two foreign-key hops below the root — where the
// climbing indexes' transitive lists matter most.
const DeepQuery = `SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Doctor Doc
WHERE Doc.Country = 'Spain' AND Vis.Purpose = 'Sclerosis'`

// Config parameterizes a harness run.
type Config struct {
	Scale int   // prescriptions; the paper uses 1,000,000
	Seed  int64 // dataset seed
	// Backend selects the storage backend for every database the run
	// builds (the zero value is the simulated NAND). File-backed runs
	// give each database its own subdirectory of Backend.Path, since a
	// device directory holds exactly one database.
	Backend storage.Config
}

// buildSeq numbers BuildDB calls so concurrent or repeated file-backed
// builds never share a device directory.
var buildSeq atomic.Int64

// BuildDB generates the dataset and loads a GhostDB with the given
// options. The config's backend applies first, so experiment-specific
// options (including another WithBackend) override it.
func BuildDB(cfg Config, opts ...core.Option) (*core.DB, *datagen.Dataset, error) {
	c := datagen.WithScale(cfg.Scale)
	if cfg.Seed != 0 {
		c.Seed = cfg.Seed
	}
	ds := datagen.Generate(c)
	if cfg.Backend.IsFile() {
		bc := cfg.Backend
		bc.Path = filepath.Join(bc.Path, fmt.Sprintf("db%03d", buildSeq.Add(1)))
		opts = append([]core.Option{core.WithBackend(bc)}, opts...)
	}
	db, err := core.Open(opts...)
	if err != nil {
		return nil, nil, err
	}
	if err := db.LoadDataset(ds); err != nil {
		return nil, nil, err
	}
	return db, ds, nil
}

// demoSpec builds a forced plan for the demo query: the strategy of the
// date predicate, the medicine predicate, and the cross switch. The demo
// query's predicates bind in WHERE order: Vis.Date, Vis.Purpose, Med.Type.
func demoSpec(label string, date, med plan.Strategy, cross bool) plan.Spec {
	return plan.Spec{
		Label:       label,
		Strategies:  []plan.Strategy{date, plan.StratHidIndex, med},
		CrossFilter: cross,
	}
}

// PlanRow is one plan's outcome — a bar of Figure 6.
type PlanRow struct {
	Label string
	Desc  string
	Time  time.Duration
	RAM   int64
	Rows  int
	Bus   int64
}

// Fig6 executes every enumerated plan for the query — the plan-time bars
// of Figure 6 plus the RAM comparison of demo phase 2.
func Fig6(db *core.DB, query string) ([]PlanRow, error) {
	q, err := db.Prepare(query)
	if err != nil {
		return nil, err
	}
	var rows []PlanRow
	for _, spec := range db.Plans(q) {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Label, err)
		}
		rows = append(rows, PlanRow{
			Label: spec.Label,
			Desc:  spec.Describe(q),
			Time:  res.Report.TotalTime,
			RAM:   res.Report.RAMHigh,
			Rows:  len(res.Rows),
			Bus:   res.Report.BusBytes,
		})
	}
	return rows, nil
}

// FormatPlanRows renders plan rows as a bar table.
func FormatPlanRows(rows []PlanRow) string {
	if len(rows) == 0 {
		return "(no plans)\n"
	}
	var worst time.Duration
	for _, r := range rows {
		if r.Time > worst {
			worst = r.Time
		}
	}
	sorted := append([]PlanRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %12s %10s %10s %8s\n", "plan", "time", "ram", "bus", "rows")
	for _, r := range sorted {
		n := int(float64(r.Time) / float64(worst) * 38)
		fmt.Fprintf(&b, "%-4s %12s %10s %10s %8d  %s\n",
			r.Label, stats.FormatDuration(r.Time), stats.FormatBytes(r.RAM),
			stats.FormatBytes(r.Bus), r.Rows, strings.Repeat("#", n+1))
		fmt.Fprintf(&b, "     %s\n", r.Desc)
	}
	return b.String()
}

// Fig5 forces the all-post plan of Figure 5 on the demo query and returns
// its operator report and explanation.
func Fig5(db *core.DB) (string, error) {
	q, err := db.Prepare(DemoQuery)
	if err != nil {
		return "", err
	}
	spec := demoSpec("Fig5", plan.StratVisPost, plan.StratVisPost, false)
	res, err := db.QueryWithPlan(q, spec)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(db.Explain(q, spec))
	b.WriteString(res.Report.String())
	return b.String(), nil
}

// SweepPoint is one selectivity of experiment E3.
type SweepPoint struct {
	Selectivity float64
	VisibleIDs  int
	Pre         time.Duration
	Post        time.Duration
	Cross       time.Duration
}

// SelectivitySweep varies the visible date predicate's selectivity and
// times the three strategies — the crossover experiment E3.
func SelectivitySweep(db *core.DB, sels []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, sel := range sels {
		cutoff := datagen.DateCutoff(sel)
		query := fmt.Sprintf(`SELECT Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE Vis.Date > '%s' AND Vis.Purpose = 'Sclerosis' AND Med.Type = 'Antibiotic'
AND Med.MedID = Pre.MedID AND Vis.VisID = Pre.VisID`, cutoff)
		q, err := db.Prepare(query)
		if err != nil {
			return nil, err
		}
		point := SweepPoint{Selectivity: sel}
		runs := []struct {
			dst  *time.Duration
			spec plan.Spec
		}{
			{&point.Pre, demoSpec("pre", plan.StratVisPre, plan.StratVisPre, false)},
			{&point.Post, demoSpec("post", plan.StratVisPost, plan.StratVisPost, false)},
			{&point.Cross, demoSpec("cross", plan.StratVisPre, plan.StratVisPre, true)},
		}
		for _, r := range runs {
			res, err := db.QueryWithPlan(q, r.spec)
			if err != nil {
				return nil, fmt.Errorf("sel %.2f %s: %w", sel, r.spec.Label, err)
			}
			*r.dst = res.Report.TotalTime
			point.VisibleIDs = visibleDateCount(res)
		}
		out = append(out, point)
	}
	return out, nil
}

func visibleDateCount(res *core.Result) int {
	// The size of the shipped Visit date list (pre) or Bloom input (post).
	for _, op := range res.Report.Ops {
		if (op.Name == "ShipIDList" || op.Name == "BloomBuild") &&
			strings.HasPrefix(op.Detail, "Visit") {
			return int(op.TuplesIn)
		}
	}
	return res.Report.ResultRows
}

// FormatSweep renders the sweep as a series table and marks crossovers.
func FormatSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %12s %12s %12s %s\n", "sel", "|IDs|", "pre", "post", "cross", "winner")
	for _, p := range points {
		winner := "pre"
		best := p.Pre
		if p.Post < best {
			winner, best = "post", p.Post
		}
		if p.Cross < best {
			winner = "cross"
		}
		fmt.Fprintf(&b, "%5.0f%% %10d %12s %12s %12s %s\n",
			p.Selectivity*100, p.VisibleIDs,
			stats.FormatDuration(p.Pre), stats.FormatDuration(p.Post),
			stats.FormatDuration(p.Cross), winner)
	}
	return b.String()
}

// BaselineRow is one algorithm's outcome in experiment E4.
type BaselineRow struct {
	Workload string
	Name     string
	Time     time.Duration
	RAM      int64
	Rows     int
}

// Baselines compares GhostDB's index structures against the paper's
// rejected alternatives. All algorithms run under the same bare-root-IDs
// contract on the same device, so the comparison isolates the index
// structures. Two workloads:
//
//   - "mixed depth-2": visible Doctor predicate + hidden Visit predicate.
//     Every level is occupied, so per-level intersection dominates and
//     join indices tie the climbing index; the scan-based joins die.
//   - "isolated deep": one hidden Patient predicate two hops below the
//     root — the precomputed transitive lists' home turf.
func Baselines(db *core.DB) ([]BaselineRow, error) {
	workloads := []struct {
		name string
		q    baseline.Query
	}{
		{"mixed depth-2", baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
			{Table: "Doctor", Column: "Country", P: pred.Compare(sql.OpEq, value.NewString(datagen.DemoCountry))},
			{Table: "Visit", Column: "Purpose", P: pred.Compare(sql.OpEq, value.NewString(datagen.DemoPurpose)), Hidden: true},
		}}},
		{"isolated deep", baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
			{Table: "Patient", Column: "BodyMassIndex", P: pred.Compare(sql.OpGt, value.NewInt(40)), Hidden: true},
		}}},
	}
	be := db.BaselineEngine()
	var rows []BaselineRow
	for _, w := range workloads {
		for _, alg := range []baseline.Algorithm{baseline.Climbing, baseline.JoinIndex, baseline.BNL, baseline.GraceHash} {
			ids, rep, err := be.Run(w.q, alg)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", w.name, alg, err)
			}
			rows = append(rows, BaselineRow{Workload: w.name, Name: alg.String(),
				Time: rep.TotalTime, RAM: rep.RAMHigh, Rows: len(ids)})
		}
	}
	return rows, nil
}

// FormatBaselines renders E4 with slowdown factors per workload.
func FormatBaselines(rows []BaselineRow) string {
	var b strings.Builder
	var base time.Duration
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			fmt.Fprintf(&b, "workload: %s\n", r.Workload)
			fmt.Fprintf(&b, "  %-24s %12s %10s %8s %10s\n", "algorithm", "time", "ram", "rows", "vs climbing")
			base = r.Time
			last = r.Workload
		}
		fmt.Fprintf(&b, "  %-24s %12s %10s %8d %9.1fx\n",
			r.Name, stats.FormatDuration(r.Time), stats.FormatBytes(r.RAM), r.Rows,
			float64(r.Time)/float64(base))
	}
	return b.String()
}

// StorageRow is one structure's flash footprint (E5).
type StorageRow struct {
	Name  string
	Bytes int64
}

// Storage reports the device flash breakdown.
func Storage(db *core.DB) []StorageRow {
	st := db.Storage()
	return []StorageRow{
		{"hidden base columns", st.BaseColumns},
		{"subtree key tables", st.SKTs},
		{"climbing indexes", st.Climbing},
		{"total (page aligned)", st.Total},
	}
}

// FormatStorage renders E5.
func FormatStorage(rows []StorageRow, rootRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "flash footprint at %d prescriptions:\n", rootRows)
	total := rows[len(rows)-1].Bytes
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %10s (%4.1f%%)\n", r.Name, stats.FormatBytes(r.Bytes),
			100*float64(r.Bytes)/float64(total))
	}
	return b.String()
}

// BusRow compares link speeds (E6).
type BusRow struct {
	Link    string
	PrePlan time.Duration
	Post    time.Duration
}

// BusSpeed builds the database under both USB profiles and times the
// all-pre and all-post plans: post-filtering ships more bytes, so the
// 12 Mb/s link hurts it more.
func BusSpeed(cfg Config) ([]BusRow, error) {
	var out []BusRow
	for _, prof := range []bus.Profile{bus.USBFullSpeed(), bus.USBHighSpeed()} {
		db, _, err := BuildDB(cfg, core.WithUSB(prof))
		if err != nil {
			return nil, err
		}
		q, err := db.Prepare(DemoQuery)
		if err != nil {
			return nil, err
		}
		row := BusRow{Link: prof.Name}
		res, err := db.QueryWithPlan(q, demoSpec("pre", plan.StratVisPre, plan.StratVisPre, true))
		if err != nil {
			return nil, err
		}
		row.PrePlan = res.Report.TotalTime
		res, err = db.QueryWithPlan(q, demoSpec("post", plan.StratVisPost, plan.StratVisPost, false))
		if err != nil {
			return nil, err
		}
		row.Post = res.Report.TotalTime
		out = append(out, row)
	}
	return out, nil
}

// FormatBus renders E6.
func FormatBus(rows []BusRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s\n", "link", "pre+cross", "post")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %14s %14s\n", r.Link,
			stats.FormatDuration(r.PrePlan), stats.FormatDuration(r.Post))
	}
	return b.String()
}

// SpyReport is experiment E7: the wire audit.
type SpyReport struct {
	SpyMessages   int
	SpyBytes      int64
	SecureHidden  int
	HiddenValues  int
	Leaks         int
	ChannelTotals []trace.ChannelTotal
}

// Spy runs a query mix under full capture and audits the trace.
func Spy(cfg Config) (*SpyReport, error) {
	db, _, err := BuildDB(cfg, core.WithCapture(trace.CaptureFull))
	if err != nil {
		return nil, err
	}
	queries := []string{
		DemoQuery,
		DeepQuery,
		`SELECT Pat.Name, Pat.Age FROM Patient Pat WHERE Pat.BodyMassIndex > 35`,
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			return nil, err
		}
	}
	events := db.Recorder().Events()
	rep := &SpyReport{HiddenValues: db.HiddenValues().Len()}
	var spyEvents []trace.Event
	for _, e := range events {
		if e.SpyVisible() {
			spyEvents = append(spyEvents, e)
			rep.SpyMessages++
			rep.SpyBytes += int64(e.Bytes)
		} else {
			rep.SecureHidden++
		}
	}
	rep.ChannelTotals = trace.Totals(spyEvents)
	rep.Leaks = len(trace.Audit(events, db.HiddenValues().Contains))
	return rep, nil
}

// FormatSpy renders E7.
func FormatSpy(r *SpyReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "spy observed %d messages (%s); %d secure messages hidden\n",
		r.SpyMessages, stats.FormatBytes(r.SpyBytes), r.SecureHidden)
	for _, t := range r.ChannelTotals {
		fmt.Fprintf(&b, "  %-8s -> %-8s %-11s %6d msgs %12d bytes\n",
			t.From, t.To, t.Kind, t.Messages, t.Bytes)
	}
	fmt.Fprintf(&b, "leak audit over %d hidden values: %d leaks\n", r.HiddenValues, r.Leaks)
	return b.String()
}

// RAMRow is one budget of experiment E8.
type RAMRow struct {
	Budget int
	Pre    time.Duration
	Post   time.Duration
}

// RAMSweep rebuilds the database under shrinking RAM budgets.
func RAMSweep(cfg Config, budgets []int) ([]RAMRow, error) {
	var out []RAMRow
	for _, budget := range budgets {
		prof := device.SmartUSB2007().WithRAM(budget)
		// Keep the page cache within a quarter of the budget.
		frames := budget / prof.Flash.PageSize / 4
		if frames < 1 {
			frames = 1
		}
		if frames > 8 {
			frames = 8
		}
		prof.CacheFrames = frames
		db, _, err := BuildDB(cfg, core.WithProfile(prof))
		if err != nil {
			return nil, fmt.Errorf("budget %d: %w", budget, err)
		}
		q, err := db.Prepare(DemoQuery)
		if err != nil {
			return nil, err
		}
		row := RAMRow{Budget: budget}
		res, err := db.QueryWithPlan(q, demoSpec("pre", plan.StratVisPre, plan.StratVisPre, true))
		if err != nil {
			return nil, fmt.Errorf("budget %d pre: %w", budget, err)
		}
		row.Pre = res.Report.TotalTime
		res, err = db.QueryWithPlan(q, demoSpec("post", plan.StratVisPost, plan.StratVisPost, false))
		if err != nil {
			return nil, fmt.Errorf("budget %d post: %w", budget, err)
		}
		row.Post = res.Report.TotalTime
		out = append(out, row)
	}
	return out, nil
}

// FormatRAM renders E8.
func FormatRAM(rows []RAMRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "budget", "pre+cross", "post")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14s %14s\n", stats.FormatBytes(int64(r.Budget)),
			stats.FormatDuration(r.Pre), stats.FormatDuration(r.Post))
	}
	return b.String()
}

// WriteRow is one flash write/read cost ratio of experiment E9.
type WriteRow struct {
	Ratio   float64
	GhostDB time.Duration
	Grace   time.Duration
}

// WriteRatio sweeps the program/read cost ratio: GhostDB's read-only
// query path barely moves while the write-heavy Grace hash join degrades.
func WriteRatio(cfg Config, ratios []float64) ([]WriteRow, error) {
	var out []WriteRow
	for _, ratio := range ratios {
		prof := device.SmartUSB2007().WithWriteRatio(ratio)
		db, _, err := BuildDB(cfg, core.WithProfile(prof))
		if err != nil {
			return nil, err
		}
		res, err := db.Query(DeepQuery)
		if err != nil {
			return nil, err
		}
		bq := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
			{Table: "Doctor", Column: "Country", P: pred.Compare(sql.OpEq, value.NewString(datagen.DemoCountry))},
			{Table: "Visit", Column: "Purpose", P: pred.Compare(sql.OpEq, value.NewString(datagen.DemoPurpose)), Hidden: true},
		}}
		_, rep, err := db.BaselineEngine().Run(bq, baseline.GraceHash)
		if err != nil {
			return nil, err
		}
		out = append(out, WriteRow{Ratio: ratio, GhostDB: res.Report.TotalTime, Grace: rep.TotalTime})
	}
	return out, nil
}

// FormatWrites renders E9.
func FormatWrites(rows []WriteRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %10s\n", "ratio", "ghostdb", "grace-hash", "gap")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.1fx %14s %14s %9.1fx\n", r.Ratio,
			stats.FormatDuration(r.GhostDB), stats.FormatDuration(r.Grace),
			float64(r.Grace)/float64(r.GhostDB))
	}
	return b.String()
}

// GameRow pairs the optimizer's estimate with measured reality (E11).
type GameRow struct {
	Label     string
	Estimated time.Duration
	Measured  time.Duration
}

// Game runs demo phase 3: every plan estimated and measured; the "prize"
// goes to whoever ranks them right.
func Game(db *core.DB) ([]GameRow, string, error) {
	q, err := db.Prepare(DemoQuery)
	if err != nil {
		return nil, "", err
	}
	var rows []GameRow
	for _, spec := range db.Plans(q) {
		est, err := db.Estimate(q, spec)
		if err != nil {
			return nil, "", err
		}
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, GameRow{Label: spec.Label, Estimated: est, Measured: res.Report.TotalTime})
	}
	auto, err := db.Query(DemoQuery)
	if err != nil {
		return nil, "", err
	}
	return rows, auto.Spec.Label, nil
}

// FormatGame renders E11.
func FormatGame(rows []GameRow, pick string) string {
	var b strings.Builder
	best := rows[0]
	for _, r := range rows[1:] {
		if r.Measured < best.Measured {
			best = r
		}
	}
	fmt.Fprintf(&b, "%-6s %14s %14s\n", "plan", "estimated", "measured")
	for _, r := range rows {
		marker := ""
		if r.Label == pick {
			marker += "  <- optimizer"
		}
		if r.Label == best.Label {
			marker += "  <- fastest"
		}
		fmt.Fprintf(&b, "%-6s %14s %14s%s\n", r.Label,
			stats.FormatDuration(r.Estimated), stats.FormatDuration(r.Measured), marker)
	}
	return b.String()
}
