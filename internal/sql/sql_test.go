package sql

import (
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/value"
)

// The paper's DDL example (Section 2).
const paperDDL = `CREATE TABLE Visit (
	VisID INTEGER PRIMARY KEY,
	Date DATE,
	Purpose CHAR(100) HIDDEN,
	DocID REFERENCES Doctor(DocID) HIDDEN,
	PatID REFERENCES Patient(PatID) HIDDEN);`

// The paper's demo query (Section 4), verbatim including the /*VISIBLE*/
// and /*HIDDEN*/ annotations and the bare DD-MM-YYYY date.
const paperQuery = `SELECT
	Med.Name, Pre.Quantity, Vis.Date
	FROM Medicine Med, Prescription Pre, Visit Vis
	WHERE
	Vis.Date > 05-11-2006 /*VISIBLE*/
	AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
	AND Med.Type = "Antibiotic"  /*VISIBLE*/
	AND Med.MedID = Pre.MedID
	AND Vis.VisID = Pre.VisID;`

func TestParsePaperDDL(t *testing.T) {
	stmt, err := Parse(paperDDL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Table != "Visit" || len(ct.Columns) != 5 {
		t.Fatalf("table %s with %d columns", ct.Table, len(ct.Columns))
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type.Kind != value.Int {
		t.Errorf("VisID = %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type.Kind != value.Date || ct.Columns[1].Hidden {
		t.Errorf("Date = %+v", ct.Columns[1])
	}
	if !ct.Columns[2].Hidden || ct.Columns[2].Type.Size != 100 {
		t.Errorf("Purpose = %+v", ct.Columns[2])
	}
	// FK without explicit type defaults to INTEGER.
	if ct.Columns[3].RefTable != "Doctor" || ct.Columns[3].RefColumn != "DocID" ||
		!ct.Columns[3].Hidden || ct.Columns[3].Type.Kind != value.Int {
		t.Errorf("DocID = %+v", ct.Columns[3])
	}
}

func TestParsePaperQuery(t *testing.T) {
	stmt, err := Parse(paperQuery)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sel := stmt.(*Select)
	if len(sel.Items) != 3 {
		t.Fatalf("%d projection items", len(sel.Items))
	}
	if sel.Items[0].Col != (ColRef{Qualifier: "Med", Column: "Name"}) {
		t.Errorf("item[0] = %v", sel.Items[0])
	}
	if len(sel.From) != 3 || sel.From[1] != (TableRef{Table: "Prescription", Alias: "Pre"}) {
		t.Errorf("FROM = %v", sel.From)
	}
	if len(sel.Where) != 5 {
		t.Fatalf("%d conditions", len(sel.Where))
	}
	date, ok := sel.Where[0].(*Compare)
	if !ok || date.Op != OpGt {
		t.Fatalf("cond[0] = %v", sel.Where[0])
	}
	if date.Val != value.NewDate(2006, 11, 5) {
		t.Errorf("bare date literal parsed as %v", date.Val)
	}
	purpose := sel.Where[1].(*Compare)
	if purpose.Val != value.NewString("Sclerosis") || purpose.Op != OpEq {
		t.Errorf("cond[1] = %v", sel.Where[1])
	}
	j, ok := sel.Where[3].(*Join)
	if !ok || j.Left.String() != "Med.MedID" || j.Right.String() != "Pre.MedID" {
		t.Errorf("cond[3] = %v", sel.Where[3])
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO Doctor VALUES (1, 'Ellis', 'Cardiology', 75012, 'France'), (2, 'Gall', 'Oncology', 69002, 'Spain')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.Table != "Doctor" || len(ins.Rows) != 2 {
		t.Fatalf("%s with %d rows", ins.Table, len(ins.Rows))
	}
	if ins.Rows[0][0] != value.NewInt(1) || ins.Rows[1][4] != value.NewString("Spain") {
		t.Errorf("rows = %v", ins.Rows)
	}
}

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		expr string
		want value.Value
	}{
		{"x = 42", value.NewInt(42)},
		{"x = -42", value.NewInt(-42)},
		{"x = +7", value.NewInt(7)},
		{"x = 2.5", value.NewFloat(2.5)},
		{"x = -0.5", value.NewFloat(-0.5)},
		{"x = 'it''s'", value.NewString("it's")},
		{`x = "dq"`, value.NewString("dq")},
		{"x = TRUE", value.NewBool(true)},
		{"x = false", value.NewBool(false)},
		{"x = DATE '2006-11-05'", value.NewDate(2006, 11, 5)},
		{"x = 05-11-2006", value.NewDate(2006, 11, 5)},
	}
	for _, c := range cases {
		sel, err := ParseSelect("SELECT * FROM T WHERE " + c.expr)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		cmp, ok := sel.Where[0].(*Compare)
		if !ok {
			t.Errorf("%s: got %T", c.expr, sel.Where[0])
			continue
		}
		if cmp.Val != c.want {
			t.Errorf("%s: literal %v, want %v", c.expr, cmp.Val, c.want)
		}
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	sel, err := ParseSelect(`SELECT * FROM Pat WHERE Age BETWEEN 30 AND 40 AND Country IN ('France', 'Spain')`)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := sel.Where[0].(*Between)
	if !ok || b.Lo != value.NewInt(30) || b.Hi != value.NewInt(40) {
		t.Errorf("between = %v", sel.Where[0])
	}
	in, ok := sel.Where[1].(*In)
	if !ok || len(in.Vals) != 2 || in.Vals[1] != value.NewString("Spain") {
		t.Errorf("in = %v", sel.Where[1])
	}
}

func TestParseNotPushdown(t *testing.T) {
	sel, err := ParseSelect(`SELECT * FROM T WHERE NOT Age > 30`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := sel.Where[0].(*Compare)
	if cmp.Op != OpLe {
		t.Errorf("NOT > rewrote to %v", cmp.Op)
	}
}

func TestOperatorSynonyms(t *testing.T) {
	for _, expr := range []string{"x <> 1", "x != 1"} {
		sel, err := ParseSelect("SELECT * FROM T WHERE " + expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if sel.Where[0].(*Compare).Op != OpNe {
			t.Errorf("%s parsed as %v", expr, sel.Where[0])
		}
	}
}

func TestCompareOpNegateAndString(t *testing.T) {
	ops := []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negate of %v", op)
		}
		if op.String() == "?" {
			t.Errorf("missing String for %v", int(op))
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(paperDDL + "\n" + "INSERT INTO Visit VALUES (1, DATE '2006-01-01', 'Checkup', 1, 1);" + paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("%d statements", len(stmts))
	}
	if _, ok := stmts[0].(*CreateTable); !ok {
		t.Errorf("stmt[0] = %T", stmts[0])
	}
	if _, ok := stmts[1].(*Insert); !ok {
		t.Errorf("stmt[1] = %T", stmts[1])
	}
	if _, ok := stmts[2].(*Select); !ok {
		t.Errorf("stmt[2] = %T", stmts[2])
	}
	empty, err := ParseScript("  ;; -- nothing\n")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty script: %v, %v", empty, err)
	}
}

func TestLineComments(t *testing.T) {
	sel, err := ParseSelect("SELECT * -- projection\nFROM T -- tables\nWHERE x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Where) != 1 {
		t.Error("comment handling broke the query")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T WHERE x",
		"SELECT * FROM T WHERE x ==",
		"SELECT * FROM T WHERE x = ",
		"SELECT * FROM T WHERE x BETWEEN 1",
		"SELECT * FROM T WHERE x IN ()",
		"SELECT * FROM T WHERE x IN (1",
		"SELECT * FROM T WHERE NOT x BETWEEN 1 AND 2",
		"SELECT * FROM T WHERE NOT x IN (1)",
		"SELECT * FROM T WHERE x < y", // non-equi join
		"CREATE TABLE",
		"CREATE TABLE t",
		"CREATE TABLE t (",
		"CREATE TABLE t (a WIBBLE)",
		"CREATE TABLE t (a CHAR(0))",
		"CREATE TABLE t (a CHAR(x))",
		"CREATE TABLE t (a INTEGER PRIMARY)",
		"INSERT Doctor VALUES (1)",
		"INSERT INTO Doctor VALUES 1",
		"SELECT * FROM T WHERE x = DATE 5",
		"SELECT * FROM T; garbage",
		"SELECT * FROM T WHERE x = 'unterminated",
		"SELECT * FROM T /* unterminated",
		"SELECT * FROM T WHERE x ! 1",
		"SELECT * FROM T WHERE x = @",
		"SELECT * FROM T WHERE x = -",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseSelectRejectsOthers(t *testing.T) {
	if _, err := ParseSelect("INSERT INTO T VALUES (1)"); err == nil {
		t.Error("ParseSelect accepted an INSERT")
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equivalent statement.
	inputs := []string{
		paperDDL,
		paperQuery,
		"INSERT INTO T VALUES (1, 'x', DATE '2006-11-05')",
		"SELECT a, T.b FROM T WHERE a BETWEEN 1 AND 2 AND b IN (1, 2, 3) AND c >= 'x'",
		"SELECT * FROM A x, B y WHERE x.id = y.id",
	}
	for _, in := range inputs {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestConditionStrings(t *testing.T) {
	sel, err := ParseSelect(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	rendered := sel.String()
	for _, want := range []string{
		"Vis.Date > '2006-11-05'",
		"Vis.Purpose = 'Sclerosis'",
		"Med.MedID = Pre.MedID",
		"FROM Medicine Med",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("String() = %q missing %q", rendered, want)
		}
	}
}

func TestParseLimit(t *testing.T) {
	sel, err := ParseSelect(`SELECT a FROM T WHERE a > 1 LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Limit != 10 || !sel.Limited() {
		t.Errorf("Limit = %d", sel.Limit)
	}
	if !strings.Contains(sel.String(), "LIMIT 10") {
		t.Errorf("String() = %q", sel.String())
	}
	// Round trip.
	again, err := ParseSelect(sel.String())
	if err != nil || again.Limit != 10 {
		t.Errorf("round trip: %v, %v", again, err)
	}
	// No limit.
	plain, err := ParseSelect(`SELECT a FROM T`)
	if err != nil || plain.Limited() {
		t.Errorf("plain query limited: %v", plain)
	}
	// LIMIT 0 is the standard zero-row probe: valid, Limited, and its
	// String() round-trips.
	zero, err := ParseSelect(`SELECT a FROM T LIMIT 0`)
	if err != nil {
		t.Fatalf("LIMIT 0: %v", err)
	}
	if zero.Limit != 0 || !zero.Limited() {
		t.Errorf("LIMIT 0: Limit=%d Limited=%v", zero.Limit, zero.Limited())
	}
	if !strings.Contains(zero.String(), "LIMIT 0") {
		t.Errorf("String() = %q", zero.String())
	}
	zeroAgain, err := ParseSelect(zero.String())
	if err != nil || !zeroAgain.Limited() || zeroAgain.Limit != 0 {
		t.Errorf("LIMIT 0 round trip: %v, %v", zeroAgain, err)
	}
	for _, bad := range []string{
		`SELECT a FROM T LIMIT`,
		`SELECT a FROM T LIMIT x`,
		`SELECT a FROM T LIMIT -3`,
	} {
		if _, err := ParseSelect(bad); err == nil {
			t.Errorf("ParseSelect(%q) succeeded", bad)
		}
	}
}

func TestParseDML(t *testing.T) {
	// DELETE with and without WHERE.
	stmt, err := Parse(`DELETE FROM Visit WHERE Date > 05-11-2006 AND Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	del, ok := stmt.(*Delete)
	if !ok || del.Table != "Visit" || len(del.Where) != 2 {
		t.Fatalf("delete = %#v", stmt)
	}
	if got := del.String(); !strings.Contains(got, "DELETE FROM Visit WHERE") {
		t.Errorf("String() = %q", got)
	}
	if again, err := Parse(del.String()); err != nil || again.String() != del.String() {
		t.Errorf("round trip: %v, %v", again, err)
	}
	bare, err := Parse(`DELETE FROM Visit`)
	if err != nil || len(bare.(*Delete).Where) != 0 {
		t.Fatalf("bare delete: %v, %v", bare, err)
	}

	// UPDATE with multiple assignments and placeholders; SET literals
	// take the ordinals before WHERE literals.
	stmt, err = Parse(`UPDATE Prescription SET Quantity = ?, Frequency = 3 WHERE Quantity BETWEEN ? AND ?`)
	if err != nil {
		t.Fatal(err)
	}
	upd, ok := stmt.(*Update)
	if !ok || upd.Table != "Prescription" || len(upd.Sets) != 2 || len(upd.Where) != 1 {
		t.Fatalf("update = %#v", stmt)
	}
	if !upd.Sets[0].Val.IsParam() || upd.Sets[0].Val.ParamOrdinal() != 0 {
		t.Errorf("SET placeholder ordinal = %v", upd.Sets[0].Val)
	}
	if n := CountParams(upd); n != 3 {
		t.Errorf("CountParams = %d", n)
	}
	if again, err := Parse(upd.String()); err != nil || again.String() != upd.String() {
		t.Errorf("round trip: %v, %v", again, err)
	}

	// CHECKPOINT.
	stmt, err = Parse(`CHECKPOINT`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*Checkpoint); !ok || stmt.String() != "CHECKPOINT" {
		t.Fatalf("checkpoint = %#v", stmt)
	}

	// Scripts mix DML with the rest.
	stmts, err := ParseScript(`DELETE FROM a WHERE x = 1; UPDATE b SET y = 2; CHECKPOINT`)
	if err != nil || len(stmts) != 3 {
		t.Fatalf("script: %v, %v", stmts, err)
	}

	// Malformed statements fail.
	for _, bad := range []string{
		`DELETE Visit`,
		`DELETE FROM`,
		`UPDATE Visit WHERE x = 1`,
		`UPDATE Visit SET`,
		`UPDATE Visit SET x`,
		`UPDATE SET x = 1`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParsePlaceholders(t *testing.T) {
	sel, err := ParseSelect(`SELECT a FROM T WHERE a = ? AND b BETWEEN ? AND ? AND c IN (?, 5, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountParams(sel); n != 5 {
		t.Fatalf("CountParams = %d, want 5", n)
	}
	// Ordinals are assigned left to right.
	cmp := sel.Where[0].(*Compare)
	if !cmp.Val.IsParam() || cmp.Val.ParamOrdinal() != 0 {
		t.Fatalf("first placeholder ordinal = %v", cmp.Val)
	}
	btw := sel.Where[1].(*Between)
	if btw.Lo.ParamOrdinal() != 1 || btw.Hi.ParamOrdinal() != 2 {
		t.Fatalf("between ordinals = %v, %v", btw.Lo, btw.Hi)
	}
	in := sel.Where[2].(*In)
	if in.Vals[0].ParamOrdinal() != 3 || in.Vals[2].ParamOrdinal() != 4 {
		t.Fatalf("in ordinals = %v", in.Vals)
	}
	if in.Vals[1].IsParam() {
		t.Fatal("literal 5 parsed as placeholder")
	}
	// Placeholders render back as '?': the canonical parameter shape.
	rendered := sel.String()
	if !strings.Contains(rendered, "a = ?") || !strings.Contains(rendered, "BETWEEN ? AND ?") {
		t.Fatalf("String() = %q", rendered)
	}
	// The rendered shape re-parses to the same parameter count.
	again, err := ParseSelect(rendered)
	if err != nil || CountParams(again) != 5 {
		t.Fatalf("round trip: %v, %d params", err, CountParams(again))
	}
}

func TestParsePlaceholderInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO T VALUES (1, ?, ?), (2, 'lit', ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if n := CountParams(ins); n != 3 {
		t.Fatalf("CountParams = %d, want 3", n)
	}
	bound, err := ins.BindParams([]value.Value{
		value.NewString("x"), value.NewInt(7), value.NewBool(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := bound.Rows[0][1].Str(); got != "x" {
		t.Fatalf("row 0 col 1 = %q", got)
	}
	if got := bound.Rows[1][2]; !got.Bool() {
		t.Fatalf("row 1 col 2 = %v", got)
	}
	// The original AST keeps its placeholders (BindParams copies).
	if !ins.Rows[0][1].IsParam() {
		t.Fatal("BindParams mutated the prepared AST")
	}
	// Missing arguments fail.
	if _, err := ins.BindParams([]value.Value{value.NewInt(1)}); err == nil {
		t.Fatal("BindParams with too few args should fail")
	}
}

func TestParseAggregates(t *testing.T) {
	stmt, err := Parse(`SELECT Country, COUNT(*), SUM(Quantity), MIN(d.Age), MAX(Age), AVG(Age)
		FROM Doctor GROUP BY Country`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if len(sel.Items) != 6 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	wantAggs := []AggFunc{AggNone, AggCount, AggSum, AggMin, AggMax, AggAvg}
	for i, want := range wantAggs {
		if sel.Items[i].Agg != want {
			t.Errorf("item %d agg = %v, want %v", i, sel.Items[i].Agg, want)
		}
	}
	if !sel.Items[1].AggStar {
		t.Error("COUNT(*) not marked as star")
	}
	if sel.Items[3].Col.Qualifier != "d" || sel.Items[3].Col.Column != "Age" {
		t.Errorf("MIN arg = %v", sel.Items[3].Col)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Column != "Country" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
}

func TestParseHavingOrderDistinct(t *testing.T) {
	stmt, err := Parse(`SELECT DISTINCT Country, COUNT(*) FROM Doctor GROUP BY Country
		HAVING COUNT(*) > 3 AND SUM(Age) <= ?
		ORDER BY 2 DESC, COUNT(*), Country ASC LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if !sel.Distinct {
		t.Error("DISTINCT not set")
	}
	if len(sel.Having) != 2 {
		t.Fatalf("having = %v", sel.Having)
	}
	if sel.Having[0].Agg != AggCount || !sel.Having[0].Star || sel.Having[0].Op != OpGt {
		t.Errorf("having[0] = %+v", sel.Having[0])
	}
	if !sel.Having[1].Val.IsParam() {
		t.Error("HAVING placeholder not parsed as a parameter")
	}
	if n := CountParams(sel); n != 1 {
		t.Errorf("CountParams = %d, want 1", n)
	}
	if len(sel.OrderBy) != 3 {
		t.Fatalf("order by = %v", sel.OrderBy)
	}
	if sel.OrderBy[0].Ordinal != 2 || !sel.OrderBy[0].Desc {
		t.Errorf("order[0] = %+v", sel.OrderBy[0])
	}
	if sel.OrderBy[1].Agg != AggCount || sel.OrderBy[1].Desc {
		t.Errorf("order[1] = %+v", sel.OrderBy[1])
	}
	if sel.OrderBy[2].Col.Column != "Country" || sel.OrderBy[2].Desc {
		t.Errorf("order[2] = %+v", sel.OrderBy[2])
	}
	if sel.Limit != 7 {
		t.Errorf("limit = %d", sel.Limit)
	}
	// Canonical rendering re-parses to the same text (ASC folds away).
	text := sel.String()
	again, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	if again.String() != text {
		t.Fatalf("not canonical:\n%s\n%s", text, again.String())
	}
}

func TestParseAggregateErrors(t *testing.T) {
	for _, in := range []string{
		"SELECT SUM(*) FROM t",                   // only COUNT takes *
		"SELECT COUNT( FROM t",                   // malformed call
		"SELECT a FROM t HAVING a > 1",           // HAVING needs an aggregate
		"SELECT a FROM t GROUP BY",               // missing columns
		"SELECT a FROM t ORDER BY 0",             // invalid ordinal
		"SELECT a FROM t ORDER BY -1",            // invalid ordinal
		"SELECT a FROM t HAVING COUNT(*) IN (1)", // HAVING takes comparisons only
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("%q: expected a parse error", in)
		}
	}
	// A bare column named like a function is still a column.
	stmt, err := Parse("SELECT count FROM t WHERE min = 3")
	if err != nil {
		t.Fatal(err)
	}
	if sel := stmt.(*Select); sel.Items[0].Agg != AggNone || sel.Items[0].Col.Column != "count" {
		t.Errorf("items = %+v", sel.Items)
	}
}
