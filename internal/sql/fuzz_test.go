package sql

import (
	"testing"
)

// fuzzSeeds is the seed corpus: every statement family the dialect
// supports, drawn from the existing tests and the paper's demo queries.
var fuzzSeeds = []string{
	"CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(20) HIDDEN, Speciality CHAR(12), Country CHAR(12))",
	"CREATE TABLE Prescription (PreID INTEGER PRIMARY KEY, VisID REFERENCES Visit(VisID), MedID REFERENCES Medicine, Quantity INTEGER, WhenWritten DATE NOT NULL)",
	"INSERT INTO Doctor VALUES (1, 'Who', 'Cardiology', 'France'), (2, 'Jekyll', 'GP', 'UK')",
	"INSERT INTO Visit VALUES (?, ?, ?, 05-11-2006, 'checkup')",
	"SELECT * FROM Doctor",
	"SELECT Name FROM Doctor WHERE Speciality = 'Cardiology' AND Country <> 'France'",
	"SELECT d.Name, v.Date FROM Doctor d, Visit v WHERE d.DocID = v.DocID AND v.Date BETWEEN '2006-01-01' AND '2006-12-31' LIMIT 10",
	"SELECT Age FROM Patient WHERE Age IN (30, 40, 50) AND BodyMassIndex >= ?",
	"SELECT COUNT(*) FROM Prescription",
	"SELECT Country, COUNT(*), SUM(Quantity) FROM Doctor, Visit, Prescription GROUP BY Country HAVING COUNT(*) > 3 ORDER BY COUNT(*) DESC, Country LIMIT 5",
	"SELECT DISTINCT Speciality, Country FROM Doctor ORDER BY 2 DESC, Speciality ASC",
	"SELECT MIN(Date), MAX(Date), AVG(Quantity) FROM Visit, Prescription WHERE Quantity >= ? HAVING MIN(Quantity) <= ?",
	"SELECT Name FROM Doctor ORDER BY Country DESC, Name",
	"SELECT /*VISIBLE*/ Name FROM Doctor -- trailing comment",
	"SELECT a FROM b WHERE c = -1.5 AND d = +2 AND e = TRUE AND f = DATE '2006-11-05';",
	"SELECT x FROM y WHERE s = 'it''s quoted'",
	"SELECT a FROM b LIMIT 0",
	"SELECT Country, COUNT(*) FROM Doctor GROUP BY Country ORDER BY COUNT(*) DESC LIMIT 0",
	"DELETE FROM Visit",
	"DELETE FROM Visit WHERE Date > 05-11-2006 AND Purpose = 'Sclerosis'",
	"UPDATE Doctor SET Country = 'France' WHERE DocID = 2",
	"UPDATE Prescription SET Quantity = ?, WhenWritten = DATE '2007-01-01' WHERE Quantity BETWEEN ? AND ?",
	"CHECKPOINT",
	"CHECKPOINT;",
}

// FuzzParse fuzzes the lexer and parser together. The property: Parse
// must never panic, and for any input it accepts, the statement's
// canonical rendering must itself parse, with String() a fixpoint from
// the second parse on (the first rendering may canonicalize, e.g. fold
// "-0" to an integer; after that the text must be stable).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		text1 := stmt.String()
		stmt2, err := Parse(text1)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, text1, err)
		}
		text2 := stmt2.String()
		stmt3, err := Parse(text2)
		if err != nil {
			t.Fatalf("rendering %q does not re-parse: %v", text2, err)
		}
		if text3 := stmt3.String(); text3 != text2 {
			t.Fatalf("String() is not a fixpoint: %q -> %q -> %q", text1, text2, text3)
		}
	})
}

// FuzzParseScript fuzzes the multi-statement entry point (used by the
// loader), which must never panic either.
func FuzzParseScript(f *testing.F) {
	f.Add("CREATE TABLE t (a INTEGER PRIMARY KEY); INSERT INTO t VALUES (1); SELECT a FROM t;")
	f.Add("; ;; SELECT x FROM y")
	for _, s := range fuzzSeeds {
		f.Add(s + "; " + s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseScript(input)
		if err != nil {
			return
		}
		for _, s := range stmts {
			if _, err := Parse(s.String()); err != nil {
				t.Fatalf("script statement rendering %q does not re-parse: %v", s.String(), err)
			}
		}
	})
}
