package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/ghostdb/ghostdb/internal/value"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed). Supported statements: CREATE TABLE, INSERT INTO ... VALUES,
// and SELECT ... FROM ... [WHERE ...].
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().isSymbol(";") {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting with %s", p.peek())
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(input string) (*Select, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement, got %T", stmt)
	}
	return sel, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.peek().isSymbol(";") {
			p.next()
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if !p.peek().isSymbol(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' between statements, got %s", p.peek())
		}
	}
}

type parser struct {
	toks   []token
	i      int
	params int // '?' placeholders seen so far; ordinals assigned in lex order
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format+" (offset %d)", append(args, p.peek().pos)...)
}

func (p *parser) expectSymbol(s string) error {
	if !p.peek().isSymbol(s) {
		return p.errorf("expected %q, got %s", s, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peek().isKeyword(kw) {
		return p.errorf("expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	p.next()
	return nil
}

func (p *parser) ident(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected %s, got %s", what, t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.isKeyword("create"):
		return p.parseCreateTable()
	case t.isKeyword("insert"):
		return p.parseInsert()
	case t.isKeyword("select"):
		return p.parseSelect()
	case t.isKeyword("delete"):
		return p.parseDelete()
	case t.isKeyword("update"):
		return p.parseUpdate()
	case t.isKeyword("checkpoint"):
		p.next()
		return &Checkpoint{}, nil
	case t.isKeyword("explain"):
		return p.parseExplain()
	default:
		return nil, p.errorf("expected CREATE, INSERT, SELECT, DELETE, UPDATE, CHECKPOINT or EXPLAIN, got %s", t)
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <select>.
func (p *parser) parseExplain() (Statement, error) {
	p.next() // EXPLAIN
	analyze := false
	if p.peek().isKeyword("analyze") {
		p.next()
		analyze = true
	}
	if !p.peek().isKeyword("select") {
		return nil, p.errorf("EXPLAIN supports SELECT statements only, got %s", p.peek())
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &Explain{Analyze: analyze, Stmt: stmt}, nil
}

// parseWhere parses an optional conjunctive WHERE clause.
func (p *parser) parseWhere() ([]Condition, error) {
	if !p.peek().isKeyword("where") {
		return nil, nil
	}
	p.next()
	var conds []Condition
	for {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		conds = append(conds, cond)
		if p.peek().isKeyword("and") {
			p.next()
			continue
		}
		return conds, nil
	}
}

func (p *parser) parseDelete() (*Delete, error) {
	p.next() // DELETE
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &Delete{Table: name, Where: where}, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	p.next() // UPDATE
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	upd := &Update{Table: name}
	for {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		upd.Sets = append(upd.Sets, SetClause{Col: col, Val: v})
		if p.peek().isSymbol(",") {
			p.next()
			continue
		}
		break
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	upd.Where = where
	return upd, nil
}

func (p *parser) parseCreateTable() (*CreateTable, error) {
	p.next() // CREATE
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.peek().isSymbol(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Table: name, Columns: cols}, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.ident("column name")
	if err != nil {
		return col, err
	}
	col.Name = name
	// The paper's DDL allows a bare "DocID REFERENCES Doctor(DocID)"
	// without an explicit type; a foreign key is implicitly INTEGER.
	if !p.peek().isKeyword("references") {
		tn, err := p.parseTypeName()
		if err != nil {
			return col, err
		}
		col.Type = tn
	} else {
		col.Type = TypeName{Kind: value.Int}
	}
	for {
		switch t := p.peek(); {
		case t.isKeyword("primary"):
			p.next()
			if err := p.expectKeyword("key"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
		case t.isKeyword("hidden"):
			p.next()
			col.Hidden = true
		case t.isKeyword("references"):
			p.next()
			ref, err := p.ident("referenced table")
			if err != nil {
				return col, err
			}
			col.RefTable = ref
			if p.peek().isSymbol("(") {
				p.next()
				rc, err := p.ident("referenced column")
				if err != nil {
					return col, err
				}
				col.RefColumn = rc
				if err := p.expectSymbol(")"); err != nil {
					return col, err
				}
			}
		case t.isKeyword("not"):
			p.next()
			if err := p.expectKeyword("null"); err != nil {
				return col, err
			}
			// All GhostDB columns are NOT NULL; accepted and ignored.
		default:
			return col, nil
		}
	}
}

func (p *parser) parseTypeName() (TypeName, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return TypeName{}, p.errorf("expected a type name, got %s", t)
	}
	p.next()
	switch strings.ToUpper(t.text) {
	case "INTEGER", "INT", "BIGINT", "SMALLINT":
		return TypeName{Kind: value.Int}, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return TypeName{Kind: value.Float}, nil
	case "DATE":
		return TypeName{Kind: value.Date}, nil
	case "BOOLEAN", "BOOL":
		return TypeName{Kind: value.Bool}, nil
	case "CHAR", "VARCHAR", "TEXT":
		tn := TypeName{Kind: value.String}
		if p.peek().isSymbol("(") {
			p.next()
			sz := p.peek()
			if sz.kind != tokNumber {
				return tn, p.errorf("expected a size, got %s", sz)
			}
			p.next()
			n, err := strconv.Atoi(sz.text)
			if err != nil || n <= 0 {
				return tn, p.errorf("invalid CHAR size %q", sz.text)
			}
			tn.Size = n
			if err := p.expectSymbol(")"); err != nil {
				return tn, err
			}
		}
		return tn, nil
	default:
		return TypeName{}, p.errorf("unknown type %q", t.text)
	}
}

func (p *parser) parseInsert() (*Insert, error) {
	p.next() // INSERT
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek().isSymbol(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.peek().isSymbol(",") {
			p.next()
			continue
		}
		return ins, nil
	}
}

func (p *parser) parseSelect() (*Select, error) {
	p.next() // SELECT
	sel := &Select{}
	if p.peek().isKeyword("distinct") {
		p.next()
		sel.Distinct = true
	} else if p.peek().isKeyword("all") {
		p.next() // ALL is the default; accepted and ignored
	}
	if p.peek().isSymbol("*") {
		p.next()
		sel.Items = []SelectItem{{Star: true}}
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if p.peek().isSymbol(",") {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: name}
		if t := p.peek(); t.kind == tokIdent && !isReserved(t.text) {
			ref.Alias = t.text
			p.next()
		}
		sel.From = append(sel.From, ref)
		if p.peek().isSymbol(",") {
			p.next()
			continue
		}
		break
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	sel.Where = where
	if p.peek().isKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if p.peek().isSymbol(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().isKeyword("having") {
		p.next()
		for {
			cond, err := p.parseHavingCond()
			if err != nil {
				return nil, err
			}
			sel.Having = append(sel.Having, cond)
			if p.peek().isKeyword("and") {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().isKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.peek().isSymbol(",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().isKeyword("limit") {
		p.next()
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected a row count after LIMIT, got %s", t)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		sel.Limit = n
		sel.HasLimit = true
	}
	return sel, nil
}

// parseSelectItem parses one projection item: a column reference or an
// aggregate call AGG(column) / COUNT(*).
func (p *parser) parseSelectItem() (SelectItem, error) {
	if agg, star, col, ok, err := p.parseAggCall(); err != nil {
		return SelectItem{}, err
	} else if ok {
		return SelectItem{Agg: agg, AggStar: star, Col: col}, nil
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

// parseAggCall consumes an aggregate call if the next tokens form one
// (an aggregate function name immediately followed by '('); ok reports
// whether a call was consumed. A bare identifier that happens to be
// named like a function is left untouched.
func (p *parser) parseAggCall() (agg AggFunc, star bool, col ColRef, ok bool, err error) {
	t := p.peek()
	if t.kind != tokIdent {
		return AggNone, false, ColRef{}, false, nil
	}
	fn, isAgg := aggFuncOf(t.text)
	if !isAgg || !p.toks[p.i+1].isSymbol("(") {
		return AggNone, false, ColRef{}, false, nil
	}
	p.next() // function name
	p.next() // (
	if p.peek().isSymbol("*") {
		p.next()
		if fn != AggCount {
			return AggNone, false, ColRef{}, false, p.errorf("%s(*) is not valid; only COUNT(*)", fn)
		}
		if err := p.expectSymbol(")"); err != nil {
			return AggNone, false, ColRef{}, false, err
		}
		return fn, true, ColRef{}, true, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return AggNone, false, ColRef{}, false, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return AggNone, false, ColRef{}, false, err
	}
	return fn, false, c, true, nil
}

// parseHavingCond parses one HAVING conjunct: AGG(col) <op> literal.
func (p *parser) parseHavingCond() (HavingCond, error) {
	agg, star, col, ok, err := p.parseAggCall()
	if err != nil {
		return HavingCond{}, err
	}
	if !ok {
		return HavingCond{}, p.errorf("expected an aggregate (COUNT/SUM/MIN/MAX/AVG) in HAVING, got %s", p.peek())
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return HavingCond{}, p.errorf("expected a comparison operator in HAVING, got %s", t)
	}
	op, opOK := compareOp(t.text)
	if !opOK {
		return HavingCond{}, p.errorf("expected a comparison operator in HAVING, got %s", t)
	}
	p.next()
	v, err := p.parseLiteral()
	if err != nil {
		return HavingCond{}, err
	}
	return HavingCond{Agg: agg, Star: star, Col: col, Op: op, Val: v}, nil
}

// parseOrderItem parses one ORDER BY key: an ordinal, an aggregate call
// or a column reference, with an optional ASC/DESC suffix.
func (p *parser) parseOrderItem() (OrderItem, error) {
	var item OrderItem
	if t := p.peek(); t.kind == tokNumber {
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return OrderItem{}, p.errorf("invalid ORDER BY ordinal %q", t.text)
		}
		item.Ordinal = n
	} else if agg, star, col, ok, err := p.parseAggCall(); err != nil {
		return OrderItem{}, err
	} else if ok {
		item.Agg, item.Star, item.Col = agg, star, col
	} else {
		col, err := p.parseColRef()
		if err != nil {
			return OrderItem{}, err
		}
		item.Col = col
	}
	switch {
	case p.peek().isKeyword("desc"):
		p.next()
		item.Desc = true
	case p.peek().isKeyword("asc"):
		p.next()
	}
	return item, nil
}

// isReserved lists keywords that terminate an implicit alias position.
func isReserved(word string) bool {
	switch strings.ToUpper(word) {
	case "WHERE", "AND", "FROM", "SELECT", "ORDER", "GROUP", "HAVING",
		"LIMIT", "JOIN", "ON", "INNER", "LEFT", "RIGHT", "UNION":
		return true
	}
	return false
}

// Limited reports whether the query carries a LIMIT clause (including
// LIMIT 0, the standard zero-row probe).
func (s *Select) Limited() bool { return s.HasLimit }

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.ident("column reference")
	if err != nil {
		return ColRef{}, err
	}
	if p.peek().isSymbol(".") {
		p.next()
		second, err := p.ident("column name")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) parseCondition() (Condition, error) {
	negated := false
	if p.peek().isKeyword("not") {
		p.next()
		negated = true
	}
	col, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.isKeyword("between"):
		p.next()
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if negated {
			return nil, p.errorf("NOT BETWEEN is not supported")
		}
		return &Between{Col: col, Lo: lo, Hi: hi}, nil
	case t.isKeyword("in"):
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []value.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.peek().isSymbol(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if negated {
			return nil, p.errorf("NOT IN is not supported")
		}
		return &In{Col: col, Vals: vals}, nil
	case t.kind == tokSymbol:
		op, ok := compareOp(t.text)
		if !ok {
			return nil, p.errorf("expected a comparison operator, got %s", t)
		}
		p.next()
		if negated {
			op = op.Negate()
		}
		// Either a literal or a second column reference (join predicate).
		if rt := p.peek(); rt.kind == tokIdent && !isLiteralKeyword(rt.text) {
			right, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			if op != OpEq {
				return nil, p.errorf("join predicates must use '=', got %s", op)
			}
			return &Join{Left: col, Right: right}, nil
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Compare{Col: col, Op: op, Val: v}, nil
	default:
		return nil, p.errorf("expected a predicate after %s, got %s", col, t)
	}
}

func compareOp(sym string) (CompareOp, bool) {
	switch sym {
	case "=":
		return OpEq, true
	case "<>":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	}
	return 0, false
}

func isLiteralKeyword(word string) bool {
	switch strings.ToUpper(word) {
	case "TRUE", "FALSE", "DATE":
		return true
	}
	return false
}

// parseLiteral parses a literal: numbers (with optional sign), quoted
// strings, TRUE/FALSE, DATE 'YYYY-MM-DD', the paper's bare DD-MM-YYYY
// date syntax (lexed as NUMBER '-' NUMBER '-' NUMBER), and the '?'
// placeholder, which parses to an unbound parameter value whose ordinal
// counts placeholders left to right across the statement.
func (p *parser) parseLiteral() (value.Value, error) {
	t := p.peek()
	switch {
	case t.isSymbol("?"):
		p.next()
		v := value.NewParam(p.params)
		p.params++
		return v, nil
	case t.kind == tokString:
		p.next()
		return value.NewString(t.text), nil
	case t.kind == tokNumber:
		p.next()
		// Bare date literal: 05-11-2006 (the demo query's format).
		if p.peek().isSymbol("-") && p.toks[p.i+1].kind == tokNumber {
			save := p.i
			p.next()
			mid := p.next()
			if p.peek().isSymbol("-") && p.toks[p.i+1].kind == tokNumber {
				p.next()
				last := p.next()
				d, err := value.ParseDate(t.text + "-" + mid.text + "-" + last.text)
				if err == nil {
					return d, nil
				}
			}
			p.i = save
		}
		return parseNumber(t.text, false)
	case t.isSymbol("-") || t.isSymbol("+"):
		neg := t.text == "-"
		p.next()
		num := p.peek()
		if num.kind != tokNumber {
			return value.Value{}, p.errorf("expected a number after %q", t.text)
		}
		p.next()
		return parseNumber(num.text, neg)
	case t.isKeyword("true"):
		p.next()
		return value.NewBool(true), nil
	case t.isKeyword("false"):
		p.next()
		return value.NewBool(false), nil
	case t.isKeyword("date"):
		p.next()
		s := p.peek()
		if s.kind != tokString {
			return value.Value{}, p.errorf("expected a date string after DATE")
		}
		p.next()
		return value.ParseDate(s.text)
	default:
		return value.Value{}, p.errorf("expected a literal, got %s", t)
	}
}

func parseNumber(text string, negate bool) (value.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("sql: invalid number %q: %v", text, err)
		}
		if negate {
			f = -f
		}
		return value.NewFloat(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Value{}, fmt.Errorf("sql: invalid number %q: %v", text, err)
	}
	if negate {
		i = -i
	}
	return value.NewInt(i), nil
}
