package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , . ; = <> < <= > >= * ?
)

type token struct {
	kind tokenKind
	text string // identifiers keep original case; symbols literal; strings unquoted
	pos  int    // byte offset for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// isKeyword reports whether the token is the given keyword (identifiers
// are matched case-insensitively).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (t token) isSymbol(s string) bool {
	return t.kind == tokSymbol && t.text == s
}

// lex tokenizes the input, skipping whitespace, -- line comments and
// /* block */ comments (including the paper's /*VISIBLE*/ annotations).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at offset %d", i)
			}
			i += 2 + end + 2
		case c == '\'' || c == '"':
			text, next, err := lexString(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: text, pos: i})
			i = next
		case c >= '0' && c <= '9':
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				// Accept != as a synonym for <>.
				toks = append(toks, token{kind: tokSymbol, text: "<>", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			}
		case strings.ContainsRune("(),.;=*-+?", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// lexString scans a quoted string starting at input[start]. Single quotes
// may be escaped by doubling (SQL style); double-quoted strings are
// accepted for convenience.
func lexString(input string, start int) (text string, next int, err error) {
	quote := input[start]
	var b strings.Builder
	i := start + 1
	for i < len(input) {
		c := input[i]
		if c == quote {
			if quote == '\'' && i+1 < len(input) && input[i+1] == '\'' {
				b.WriteByte('\'')
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("sql: unterminated string starting at offset %d", start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
