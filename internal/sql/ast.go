// Package sql is GhostDB's SQL front end: a lexer and recursive-descent
// parser for the dialect the paper uses — CREATE TABLE with the extra
// HIDDEN keyword on sensitive columns, INSERT for loading, and
// select-project-join queries with conjunctive predicates. The paper's
// /*VISIBLE*/ and /*HIDDEN*/ annotations are accepted as comments and
// ignored: visibility is a property of the schema, not the query text
// ("no changes to the SQL query text", Section 1).
package sql

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/value"
)

// Statement is a parsed SQL statement: *CreateTable, *Insert, *Select,
// *Delete, *Update, *Checkpoint or *Explain.
type Statement interface {
	stmt()
	String() string
}

// TypeName is a column type as written in DDL.
type TypeName struct {
	Kind value.Kind
	Size int // CHAR(n) width, 0 if unsized
}

func (t TypeName) String() string {
	if t.Kind == value.String && t.Size > 0 {
		return fmt.Sprintf("CHAR(%d)", t.Size)
	}
	return t.Kind.String()
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       TypeName
	Hidden     bool
	PrimaryKey bool
	RefTable   string
	RefColumn  string
}

func (c ColumnDef) String() string {
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteByte(' ')
	b.WriteString(c.Type.String())
	if c.PrimaryKey {
		b.WriteString(" PRIMARY KEY")
	}
	if c.RefTable != "" {
		fmt.Fprintf(&b, " REFERENCES %s", c.RefTable)
		if c.RefColumn != "" {
			fmt.Fprintf(&b, "(%s)", c.RefColumn)
		}
	}
	if c.Hidden {
		b.WriteString(" HIDDEN")
	}
	return b.String()
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = col.String()
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", c.Table, strings.Join(cols, ", "))
}

// Insert is an INSERT INTO ... VALUES statement (possibly multi-row).
type Insert struct {
	Table string
	Rows  [][]value.Value
}

func (*Insert) stmt() {}

func (i *Insert) String() string {
	var rows []string
	for _, r := range i.Rows {
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.SQL()
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return fmt.Sprintf("INSERT INTO %s VALUES %s", i.Table, strings.Join(rows, ", "))
}

// BindParams returns a copy of the INSERT with every '?' placeholder
// replaced by the corresponding argument (by ordinal). Rows without
// placeholders are shared, not copied.
func (i *Insert) BindParams(args []value.Value) (*Insert, error) {
	out := &Insert{Table: i.Table, Rows: make([][]value.Value, len(i.Rows))}
	for r, row := range i.Rows {
		bound := row
		for c, v := range row {
			if !v.IsParam() {
				continue
			}
			ord := v.ParamOrdinal()
			if ord >= len(args) {
				return nil, fmt.Errorf("sql: placeholder %d has no argument (%d supplied)", ord+1, len(args))
			}
			if &bound[0] == &row[0] {
				bound = append([]value.Value(nil), row...)
			}
			bound[c] = args[ord]
		}
		out.Rows[r] = bound
	}
	return out, nil
}

// CountParams reports the number of '?' placeholders across the
// statements. Placeholder ordinals are assigned left to right by the
// parser, so the count is also one past the highest ordinal.
func CountParams(stmts ...Statement) int {
	n := 0
	count := func(v value.Value) {
		if v.IsParam() {
			n++
		}
	}
	countConds := func(conds []Condition) {
		for _, c := range conds {
			switch c := c.(type) {
			case *Compare:
				count(c.Val)
			case *Between:
				count(c.Lo)
				count(c.Hi)
			case *In:
				for _, v := range c.Vals {
					count(v)
				}
			}
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *Insert:
			for _, row := range s.Rows {
				for _, v := range row {
					count(v)
				}
			}
		case *Select:
			countConds(s.Where)
			// HAVING literals follow WHERE in text order, so their
			// ordinals continue the sequence.
			for _, h := range s.Having {
				count(h.Val)
			}
		case *Delete:
			countConds(s.Where)
		case *Update:
			// SET literals precede WHERE in text order.
			for _, a := range s.Sets {
				count(a.Val)
			}
			countConds(s.Where)
		}
	}
	return n
}

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// TableRef is one FROM-list entry with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" when none
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Table
	}
	return t.Table + " " + t.Alias
}

// AggFunc is an aggregate function applied to a projection item.
type AggFunc int

// The aggregate functions. AggNone marks a plain column item.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return fmt.Sprintf("AGG(%d)", int(a))
}

// aggFuncOf maps a function name to its AggFunc.
func aggFuncOf(name string) (AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	case "AVG":
		return AggAvg, true
	}
	return AggNone, false
}

// SelectItem is a projection item: a column reference, *, or an
// aggregate call COUNT(*) / AGG(column).
type SelectItem struct {
	Star    bool
	Col     ColRef
	Agg     AggFunc // AggNone for a plain column
	AggStar bool    // COUNT(*)
}

func (s SelectItem) String() string {
	if s.Agg != AggNone {
		if s.AggStar {
			return s.Agg.String() + "(*)"
		}
		return s.Agg.String() + "(" + s.Col.String() + ")"
	}
	if s.Star {
		return "*"
	}
	return s.Col.String()
}

// HavingCond is one conjunct of a HAVING clause: an aggregate compared
// against a literal (or a '?' placeholder).
type HavingCond struct {
	Agg  AggFunc
	Star bool   // COUNT(*)
	Col  ColRef // aggregate argument when !Star
	Op   CompareOp
	Val  value.Value
}

func (h HavingCond) String() string {
	arg := "*"
	if !h.Star {
		arg = h.Col.String()
	}
	return fmt.Sprintf("%s(%s) %s %s", h.Agg, arg, h.Op, h.Val.SQL())
}

// OrderItem is one ORDER BY key: an output ordinal (1-based), a column
// reference, or an aggregate expression; ASC by default.
type OrderItem struct {
	Ordinal int     // 1-based select-list position; 0 when Col/Agg is used
	Agg     AggFunc // AggNone for a plain column or ordinal
	Star    bool    // COUNT(*)
	Col     ColRef
	Desc    bool
}

func (o OrderItem) String() string {
	var b strings.Builder
	switch {
	case o.Ordinal > 0:
		fmt.Fprintf(&b, "%d", o.Ordinal)
	case o.Agg != AggNone:
		if o.Star {
			b.WriteString(o.Agg.String() + "(*)")
		} else {
			b.WriteString(o.Agg.String() + "(" + o.Col.String() + ")")
		}
	default:
		b.WriteString(o.Col.String())
	}
	if o.Desc {
		b.WriteString(" DESC")
	}
	return b.String()
}

// CompareOp is a comparison operator.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CompareOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Negate returns the complementary operator (used by NOT pushdown).
func (o CompareOp) Negate() CompareOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// Condition is one conjunct of a WHERE clause: *Compare, *Between, *In or
// *Join.
type Condition interface {
	cond()
	String() string
}

// Compare is column <op> literal.
type Compare struct {
	Col ColRef
	Op  CompareOp
	Val value.Value
}

func (*Compare) cond() {}

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Val.SQL())
}

// Between is column BETWEEN lo AND hi (inclusive).
type Between struct {
	Col    ColRef
	Lo, Hi value.Value
}

func (*Between) cond() {}

func (b *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", b.Col, b.Lo.SQL(), b.Hi.SQL())
}

// In is column IN (v1, v2, ...).
type In struct {
	Col  ColRef
	Vals []value.Value
}

func (*In) cond() {}

func (i *In) String() string {
	vals := make([]string, len(i.Vals))
	for j, v := range i.Vals {
		vals[j] = v.SQL()
	}
	return fmt.Sprintf("%s IN (%s)", i.Col, strings.Join(vals, ", "))
}

// Join is an equijoin predicate between two columns.
type Join struct {
	Left, Right ColRef
}

func (*Join) cond() {}

func (j *Join) String() string {
	return fmt.Sprintf("%s = %s", j.Left, j.Right)
}

// Select is a query: projection list (plain columns and aggregates),
// FROM tables, conjunctive WHERE, optional GROUP BY / HAVING / ORDER BY
// / DISTINCT, and an optional LIMIT (present when HasLimit; LIMIT 0 is
// the standard zero-row probe). Without ORDER BY, results are ordered by
// the query root's identifier (aggregate results by first group
// appearance in that order), so LIMIT is deterministic.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    []Condition
	GroupBy  []ColRef
	Having   []HavingCond
	OrderBy  []OrderItem
	Limit    int
	HasLimit bool
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM ")
	froms := make([]string, len(s.From))
	for i, f := range s.From {
		froms[i] = f.String()
	}
	b.WriteString(strings.Join(froms, ", "))
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		conds := make([]string, len(s.Where))
		for i, c := range s.Where {
			conds[i] = c.String()
		}
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		cols := make([]string, len(s.GroupBy))
		for i, c := range s.GroupBy {
			cols[i] = c.String()
		}
		b.WriteString(strings.Join(cols, ", "))
	}
	if len(s.Having) > 0 {
		b.WriteString(" HAVING ")
		conds := make([]string, len(s.Having))
		for i, h := range s.Having {
			conds[i] = h.String()
		}
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		keys := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.String()
		}
		b.WriteString(strings.Join(keys, ", "))
	}
	if s.HasLimit {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// whereString renders a conjunctive WHERE clause (shared by the DML
// statements), or "" when there are no conditions.
func whereString(conds []Condition) string {
	if len(conds) == 0 {
		return ""
	}
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return " WHERE " + strings.Join(parts, " AND ")
}

// bindArg resolves one literal against the argument list: placeholders
// substitute by ordinal, plain literals pass through.
func bindArg(v value.Value, args []value.Value) (value.Value, error) {
	if !v.IsParam() {
		return v, nil
	}
	ord := v.ParamOrdinal()
	if ord < 0 || ord >= len(args) {
		return value.Value{}, fmt.Errorf("sql: placeholder %d has no argument (%d supplied)", ord+1, len(args))
	}
	return args[ord], nil
}

// bindCondParams returns the conditions with every '?' placeholder
// replaced by the corresponding argument. Conditions without
// placeholders are shared, not copied.
func bindCondParams(conds []Condition, args []value.Value) ([]Condition, error) {
	out := make([]Condition, len(conds))
	for i, c := range conds {
		switch c := c.(type) {
		case *Compare:
			v, err := bindArg(c.Val, args)
			if err != nil {
				return nil, err
			}
			if v != c.Val {
				out[i] = &Compare{Col: c.Col, Op: c.Op, Val: v}
			} else {
				out[i] = c
			}
		case *Between:
			lo, err := bindArg(c.Lo, args)
			if err != nil {
				return nil, err
			}
			hi, err := bindArg(c.Hi, args)
			if err != nil {
				return nil, err
			}
			if lo != c.Lo || hi != c.Hi {
				out[i] = &Between{Col: c.Col, Lo: lo, Hi: hi}
			} else {
				out[i] = c
			}
		case *In:
			changed := false
			vals := make([]value.Value, len(c.Vals))
			for j, v := range c.Vals {
				b, err := bindArg(v, args)
				if err != nil {
					return nil, err
				}
				vals[j] = b
				changed = changed || b != v
			}
			if changed {
				out[i] = &In{Col: c.Col, Vals: vals}
			} else {
				out[i] = c
			}
		default:
			out[i] = c
		}
	}
	return out, nil
}

// Delete is a DELETE FROM ... [WHERE ...] statement over one table.
// Deletion is virtual until the next CHECKPOINT: the engine tombstones
// the matching identifiers, and rows whose foreign-key chain passes
// through a tombstoned row disappear with them (a cascade over the tree
// schema).
type Delete struct {
	Table string
	Where []Condition
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	return "DELETE FROM " + d.Table + whereString(d.Where)
}

// BindParams returns a copy of the DELETE with every '?' placeholder
// replaced by the corresponding argument (by ordinal).
func (d *Delete) BindParams(args []value.Value) (*Delete, error) {
	where, err := bindCondParams(d.Where, args)
	if err != nil {
		return nil, err
	}
	return &Delete{Table: d.Table, Where: where}, nil
}

// SetClause is one column assignment of an UPDATE.
type SetClause struct {
	Col ColRef
	Val value.Value // literal or '?' placeholder
}

func (a SetClause) String() string { return a.Col.String() + " = " + a.Val.SQL() }

// Update is an UPDATE ... SET ... [WHERE ...] statement over one table.
// The updated image lives in the RAM delta until the next CHECKPOINT;
// the base column files stay physically untouched (Bertossi & Li's
// virtual updates).
type Update struct {
	Table string
	Sets  []SetClause
	Where []Condition
}

func (*Update) stmt() {}

func (u *Update) String() string {
	sets := make([]string, len(u.Sets))
	for i, a := range u.Sets {
		sets[i] = a.String()
	}
	return "UPDATE " + u.Table + " SET " + strings.Join(sets, ", ") + whereString(u.Where)
}

// BindParams returns a copy of the UPDATE with every '?' placeholder —
// SET values and WHERE literals alike — replaced by the corresponding
// argument (by ordinal).
func (u *Update) BindParams(args []value.Value) (*Update, error) {
	sets := make([]SetClause, len(u.Sets))
	for i, a := range u.Sets {
		v, err := bindArg(a.Val, args)
		if err != nil {
			return nil, err
		}
		sets[i] = SetClause{Col: a.Col, Val: v}
	}
	where, err := bindCondParams(u.Where, args)
	if err != nil {
		return nil, err
	}
	return &Update{Table: u.Table, Sets: sets, Where: where}, nil
}

// Checkpoint is the CHECKPOINT statement: merge the RAM delta and the
// tombstone sets into fresh flash column segments, rebuild the device
// index structures, and release the delta's RAM grant.
type Checkpoint struct{}

func (*Checkpoint) stmt() {}

func (*Checkpoint) String() string { return "CHECKPOINT" }

// Explain is the EXPLAIN [ANALYZE] <select> statement: render the
// optimizer's plan for the query, and — with ANALYZE — execute it and
// report per-operator estimated vs actual cardinalities and timings.
type Explain struct {
	Analyze bool
	Stmt    *Select
}

func (*Explain) stmt() {}

func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}
