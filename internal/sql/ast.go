// Package sql is GhostDB's SQL front end: a lexer and recursive-descent
// parser for the dialect the paper uses — CREATE TABLE with the extra
// HIDDEN keyword on sensitive columns, INSERT for loading, and
// select-project-join queries with conjunctive predicates. The paper's
// /*VISIBLE*/ and /*HIDDEN*/ annotations are accepted as comments and
// ignored: visibility is a property of the schema, not the query text
// ("no changes to the SQL query text", Section 1).
package sql

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/value"
)

// Statement is a parsed SQL statement: *CreateTable, *Insert or *Select.
type Statement interface {
	stmt()
	String() string
}

// TypeName is a column type as written in DDL.
type TypeName struct {
	Kind value.Kind
	Size int // CHAR(n) width, 0 if unsized
}

func (t TypeName) String() string {
	if t.Kind == value.String && t.Size > 0 {
		return fmt.Sprintf("CHAR(%d)", t.Size)
	}
	return t.Kind.String()
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       TypeName
	Hidden     bool
	PrimaryKey bool
	RefTable   string
	RefColumn  string
}

func (c ColumnDef) String() string {
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteByte(' ')
	b.WriteString(c.Type.String())
	if c.PrimaryKey {
		b.WriteString(" PRIMARY KEY")
	}
	if c.RefTable != "" {
		fmt.Fprintf(&b, " REFERENCES %s", c.RefTable)
		if c.RefColumn != "" {
			fmt.Fprintf(&b, "(%s)", c.RefColumn)
		}
	}
	if c.Hidden {
		b.WriteString(" HIDDEN")
	}
	return b.String()
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = col.String()
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", c.Table, strings.Join(cols, ", "))
}

// Insert is an INSERT INTO ... VALUES statement (possibly multi-row).
type Insert struct {
	Table string
	Rows  [][]value.Value
}

func (*Insert) stmt() {}

func (i *Insert) String() string {
	var rows []string
	for _, r := range i.Rows {
		vals := make([]string, len(r))
		for j, v := range r {
			vals[j] = v.SQL()
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return fmt.Sprintf("INSERT INTO %s VALUES %s", i.Table, strings.Join(rows, ", "))
}

// BindParams returns a copy of the INSERT with every '?' placeholder
// replaced by the corresponding argument (by ordinal). Rows without
// placeholders are shared, not copied.
func (i *Insert) BindParams(args []value.Value) (*Insert, error) {
	out := &Insert{Table: i.Table, Rows: make([][]value.Value, len(i.Rows))}
	for r, row := range i.Rows {
		bound := row
		for c, v := range row {
			if !v.IsParam() {
				continue
			}
			ord := v.ParamOrdinal()
			if ord >= len(args) {
				return nil, fmt.Errorf("sql: placeholder %d has no argument (%d supplied)", ord+1, len(args))
			}
			if &bound[0] == &row[0] {
				bound = append([]value.Value(nil), row...)
			}
			bound[c] = args[ord]
		}
		out.Rows[r] = bound
	}
	return out, nil
}

// CountParams reports the number of '?' placeholders across the
// statements. Placeholder ordinals are assigned left to right by the
// parser, so the count is also one past the highest ordinal.
func CountParams(stmts ...Statement) int {
	n := 0
	count := func(v value.Value) {
		if v.IsParam() {
			n++
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *Insert:
			for _, row := range s.Rows {
				for _, v := range row {
					count(v)
				}
			}
		case *Select:
			for _, c := range s.Where {
				switch c := c.(type) {
				case *Compare:
					count(c.Val)
				case *Between:
					count(c.Lo)
					count(c.Hi)
				case *In:
					for _, v := range c.Vals {
						count(v)
					}
				}
			}
		}
	}
	return n
}

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// TableRef is one FROM-list entry with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" when none
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Table
	}
	return t.Table + " " + t.Alias
}

// SelectItem is a projection item: a column reference or *.
type SelectItem struct {
	Star bool
	Col  ColRef
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	return s.Col.String()
}

// CompareOp is a comparison operator.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CompareOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Negate returns the complementary operator (used by NOT pushdown).
func (o CompareOp) Negate() CompareOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return o
}

// Condition is one conjunct of a WHERE clause: *Compare, *Between, *In or
// *Join.
type Condition interface {
	cond()
	String() string
}

// Compare is column <op> literal.
type Compare struct {
	Col ColRef
	Op  CompareOp
	Val value.Value
}

func (*Compare) cond() {}

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Val.SQL())
}

// Between is column BETWEEN lo AND hi (inclusive).
type Between struct {
	Col    ColRef
	Lo, Hi value.Value
}

func (*Between) cond() {}

func (b *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", b.Col, b.Lo.SQL(), b.Hi.SQL())
}

// In is column IN (v1, v2, ...).
type In struct {
	Col  ColRef
	Vals []value.Value
}

func (*In) cond() {}

func (i *In) String() string {
	vals := make([]string, len(i.Vals))
	for j, v := range i.Vals {
		vals[j] = v.SQL()
	}
	return fmt.Sprintf("%s IN (%s)", i.Col, strings.Join(vals, ", "))
}

// Join is an equijoin predicate between two columns.
type Join struct {
	Left, Right ColRef
}

func (*Join) cond() {}

func (j *Join) String() string {
	return fmt.Sprintf("%s = %s", j.Left, j.Right)
}

// Select is an SPJ query: projection list, FROM tables, conjunctive
// WHERE, and an optional LIMIT (0 = none). Results are ordered by the
// query root's identifier, so LIMIT is deterministic.
type Select struct {
	Items []SelectItem
	From  []TableRef
	Where []Condition
	Limit int
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM ")
	froms := make([]string, len(s.From))
	for i, f := range s.From {
		froms[i] = f.String()
	}
	b.WriteString(strings.Join(froms, ", "))
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		conds := make([]string, len(s.Where))
		for i, c := range s.Where {
			conds[i] = c.String()
		}
		b.WriteString(strings.Join(conds, " AND "))
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
