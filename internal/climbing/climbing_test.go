package climbing

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// fixture: the Figure 3 tree with the same tiny data as the skt tests.
//
//	Visit (4): DocID=[1,2,1,2] PatID=[1,2,3,1]  Purpose=[Checkup,Sclerosis,Sclerosis,Flu]
//	Prescription (6): VisID=[1,1,2,3,4,4]
//
// Inverted edges:
//
//	Visit->Doctor:  doc1 -> vis{1,3}, doc2 -> vis{2,4}
//	Pre->Visit:     vis1 -> pre{1,2}, vis2 -> pre{3}, vis3 -> pre{4}, vis4 -> pre{5,6}
type fixture struct {
	st  *store.Store
	sch *schema.Schema
	inv map[string][][]uint32
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dev, err := device.New(device.SmartUSB2007(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.New()
	pk := func(n string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, PrimaryKey: true}
	}
	fk := func(n, ref string) schema.Column {
		return schema.Column{Name: n, Type: schema.Type{Kind: value.Int}, RefTable: ref}
	}
	mk := func(name string, cols ...schema.Column) {
		tb, err := schema.NewTable(name, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := sch.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	mk("Doctor", pk("DocID"), schema.Column{Name: "Country", Type: schema.Type{Kind: value.String}})
	mk("Patient", pk("PatID"))
	mk("Medicine", pk("MedID"))
	mk("Visit", pk("VisID"), fk("DocID", "Doctor"), fk("PatID", "Patient"),
		schema.Column{Name: "Purpose", Type: schema.Type{Kind: value.String}, Hidden: true})
	mk("Prescription", pk("PreID"), fk("MedID", "Medicine"), fk("VisID", "Visit"))
	if err := sch.Freeze(); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		st:  st,
		sch: sch,
		inv: map[string][][]uint32{
			"Visit->Doctor":          {{1, 3}, {2, 4}},
			"Visit->Patient":         {{1, 4}, {2}, {3}},
			"Prescription->Visit":    {{1, 2}, {3}, {4}, {5, 6}},
			"Prescription->Medicine": {{1, 3, 5}, {2, 4, 6}},
		},
	}
}

func (f *fixture) inverted(parent, child string) ([][]uint32, error) {
	iv, ok := f.inv[parent+"->"+child]
	if !ok {
		return nil, fmt.Errorf("no inverted edge %s->%s", parent, child)
	}
	return iv, nil
}

func strv(s string) value.Value { return value.NewString(s) }

func TestBuildAndLookupEqOnVisitPurpose(t *testing.T) {
	f := newFixture(t)
	vals := []value.Value{strv("Checkup"), strv("Sclerosis"), strv("Sclerosis"), strv("Flu")}
	ix, err := Build(f.st, f.sch, "Visit", "Purpose", value.String, vals, false, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Levels; !reflect.DeepEqual(got, []string{"Visit", "Prescription"}) {
		t.Fatalf("Levels = %v", got)
	}
	if ix.DistinctValues() != 3 {
		t.Errorf("DistinctValues = %d", ix.DistinctValues())
	}
	if ix.LevelOf("prescription") != 1 || ix.LevelOf("Doctor") != -1 {
		t.Error("LevelOf wrong")
	}
	if ix.Bytes() <= 0 || ix.Kind() != value.String || ix.Dense() {
		t.Error("metadata wrong")
	}

	e, ok, err := ix.LookupEq(strv("Sclerosis"))
	if err != nil || !ok {
		t.Fatalf("LookupEq: %v %v", ok, err)
	}
	visIDs, err := ix.ReadList(e.Lists[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(visIDs, []uint32{2, 3}) {
		t.Errorf("VisID list = %v", visIDs)
	}
	// Climb: vis2 -> pre{3}, vis3 -> pre{4}.
	preIDs, err := ix.ReadList(e.Lists[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(preIDs, []uint32{3, 4}) {
		t.Errorf("PreID list = %v", preIDs)
	}
	if e.Lists[0].Count != 2 || e.Lists[1].Count != 2 {
		t.Errorf("counts = %v", e.Lists)
	}

	if _, ok, err := ix.LookupEq(strv("Oncology")); err != nil || ok {
		t.Errorf("missing value: ok=%v err=%v", ok, err)
	}
}

func TestLookupOnLeafClimbsTwoLevels(t *testing.T) {
	f := newFixture(t)
	vals := []value.Value{strv("France"), strv("Spain")}
	ix, err := Build(f.st, f.sch, "Doctor", "Country", value.String, vals, false, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ix.Levels, []string{"Doctor", "Visit", "Prescription"}) {
		t.Fatalf("Levels = %v", ix.Levels)
	}
	e, ok, err := ix.LookupEq(strv("Spain"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Spain -> doc{2} -> vis{2,4} -> pre{3,5,6}.
	for lvl, want := range [][]uint32{{2}, {2, 4}, {3, 5, 6}} {
		got, err := ix.ReadList(e.Lists[lvl])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("level %d = %v, want %v", lvl, got, want)
		}
	}
}

func TestDenseTranslatorIndex(t *testing.T) {
	f := newFixture(t)
	// Climbing index on Visit.VisID: the key translator used by
	// pre-filtering ("transforming these lists into lists of PreID
	// thanks to the climbing index on Vis.VisID").
	vals := []value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3), value.NewInt(4)}
	ix, err := Build(f.st, f.sch, "Visit", "VisID", value.Int, vals, true, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Dense() {
		t.Fatal("not dense")
	}
	e, ok, err := ix.LookupEq(value.NewInt(4))
	if err != nil || !ok {
		t.Fatal(err)
	}
	pre, err := ix.ReadList(e.Lists[1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pre, []uint32{5, 6}) {
		t.Errorf("vis4 -> pre %v", pre)
	}
	// Out of range IDs simply miss.
	if _, ok, _ := ix.LookupEq(value.NewInt(0)); ok {
		t.Error("ID 0 found")
	}
	if _, ok, _ := ix.LookupEq(value.NewInt(5)); ok {
		t.Error("ID 5 found")
	}
	// Dense build over non-dense values must fail.
	if _, err := Build(f.st, f.sch, "Visit", "DocID", value.Int,
		[]value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(1), value.NewInt(2)}, true, f.inverted); err == nil {
		t.Error("dense build over duplicate values accepted")
	}
}

func TestRangeQueries(t *testing.T) {
	f := newFixture(t)
	// Index over Prescription.Quantity values (root table: single level).
	vals := []value.Value{
		value.NewInt(10), value.NewInt(20), value.NewInt(30),
		value.NewInt(20), value.NewInt(40), value.NewInt(10),
	}
	ix, err := Build(f.st, f.sch, "Prescription", "Quantity", value.Int, vals, false, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ix.Levels, []string{"Prescription"}) {
		t.Fatalf("root index levels = %v", ix.Levels)
	}

	collect := func(lo, hi *Bound) []int64 {
		t.Helper()
		it, err := ix.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for {
			e, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, e.Value.Int())
		}
	}

	if got := collect(nil, nil); !reflect.DeepEqual(got, []int64{10, 20, 30, 40}) {
		t.Errorf("full scan = %v", got)
	}
	if got := collect(&Bound{V: value.NewInt(20), Inclusive: true}, nil); !reflect.DeepEqual(got, []int64{20, 30, 40}) {
		t.Errorf(">=20 = %v", got)
	}
	if got := collect(&Bound{V: value.NewInt(20), Inclusive: false}, nil); !reflect.DeepEqual(got, []int64{30, 40}) {
		t.Errorf(">20 = %v", got)
	}
	if got := collect(nil, &Bound{V: value.NewInt(30), Inclusive: true}); !reflect.DeepEqual(got, []int64{10, 20, 30}) {
		t.Errorf("<=30 = %v", got)
	}
	if got := collect(nil, &Bound{V: value.NewInt(30), Inclusive: false}); !reflect.DeepEqual(got, []int64{10, 20}) {
		t.Errorf("<30 = %v", got)
	}
	if got := collect(&Bound{V: value.NewInt(15), Inclusive: true}, &Bound{V: value.NewInt(35), Inclusive: true}); !reflect.DeepEqual(got, []int64{20, 30}) {
		t.Errorf("between = %v", got)
	}
	if got := collect(&Bound{V: value.NewInt(50), Inclusive: true}, nil); got != nil {
		t.Errorf("empty range = %v", got)
	}

	n, err := ix.CountRange(&Bound{V: value.NewInt(10), Inclusive: true}, &Bound{V: value.NewInt(20), Inclusive: true}, 0)
	if err != nil || n != 4 {
		t.Errorf("CountRange = %d, %v; want 4", n, err)
	}
	if _, err := ix.CountRange(nil, nil, 5); err == nil {
		t.Error("bad level accepted")
	}
}

func TestDateColumnWithStringLiterals(t *testing.T) {
	f := newFixture(t)
	vals := []value.Value{
		value.NewDate(2006, 1, 10), value.NewDate(2006, 11, 20),
		value.NewDate(2007, 2, 1), value.NewDate(2006, 11, 20),
	}
	ix, err := Build(f.st, f.sch, "Visit", "Date", value.Date, vals, false, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	// Query literal arrives as a string; Coerce handles it.
	e, ok, err := ix.LookupEq(value.NewString("2006-11-20"))
	if err != nil || !ok {
		t.Fatalf("string literal lookup: %v %v", ok, err)
	}
	ids, _ := ix.ReadList(e.Lists[0])
	if !reflect.DeepEqual(ids, []uint32{2, 4}) {
		t.Errorf("ids = %v", ids)
	}
	it, err := ix.Range(&Bound{V: value.NewString("05-11-2006"), Inclusive: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 2 { // 2006-11-20 and 2007-02-01
		t.Errorf("Date > 05-11-2006 matched %d distinct dates, want 2", count)
	}
}

func TestBuildErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := Build(f.st, f.sch, "Ghost", "X", value.Int, nil, false, f.inverted); err == nil {
		t.Error("unknown table accepted")
	}
	badInv := func(parent, child string) ([][]uint32, error) { return nil, fmt.Errorf("boom") }
	if _, err := Build(f.st, f.sch, "Visit", "Purpose", value.String,
		[]value.Value{strv("a"), strv("b"), strv("c"), strv("d")}, false, badInv); err == nil {
		t.Error("broken inverted lookup accepted")
	}
	// Value that cannot coerce to the declared kind.
	if _, err := Build(f.st, f.sch, "Visit", "Date", value.Date,
		[]value.Value{strv("notadate"), strv("x"), strv("y"), strv("z")}, false, f.inverted); err == nil {
		t.Error("uncoercible values accepted")
	}
}

func TestLookupKindMismatch(t *testing.T) {
	f := newFixture(t)
	ix, err := Build(f.st, f.sch, "Prescription", "Quantity", value.Int,
		[]value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3),
			value.NewInt(4), value.NewInt(5), value.NewInt(6)}, false, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.LookupEq(strv("nope")); err == nil {
		t.Error("string lookup on INTEGER index accepted")
	}
	if _, err := ix.Range(&Bound{V: strv("x"), Inclusive: true}, nil); err == nil {
		t.Error("string range on INTEGER index accepted")
	}
}

func TestEntryBounds(t *testing.T) {
	f := newFixture(t)
	ix, err := Build(f.st, f.sch, "Prescription", "Quantity", value.Int,
		[]value.Value{value.NewInt(1), value.NewInt(1), value.NewInt(1),
			value.NewInt(1), value.NewInt(1), value.NewInt(1)}, false, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.entry(-1); err == nil {
		t.Error("negative entry accepted")
	}
	if _, err := ix.entry(1); err == nil {
		t.Error("entry past end accepted")
	}
	e, err := ix.entry(0)
	if err != nil || e.Lists[0].Count != 6 {
		t.Errorf("entry(0) = %+v, %v", e, err)
	}
}

func TestSingletonListsStream(t *testing.T) {
	f := newFixture(t)
	ix, err := Build(f.st, f.sch, "Visit", "VisID", value.Int,
		[]value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3), value.NewInt(4)},
		true, f.inverted)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(1); id <= 4; id++ {
		e, ok, err := ix.LookupEq(value.NewInt(int64(id)))
		if err != nil || !ok {
			t.Fatal(err)
		}
		own, err := ix.ReadList(e.Lists[0])
		if err != nil || len(own) != 1 || own[0] != id {
			t.Errorf("own list of %d = %v, %v", id, own, err)
		}
		d := ix.OpenList(e.Lists[1])
		prev := uint32(0)
		for {
			got, ok, err := d.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if got <= prev {
				t.Errorf("list not strictly sorted: %d after %d", got, prev)
			}
			prev = got
		}
	}
}
