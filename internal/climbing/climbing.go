// Package climbing implements the paper's climbing indexes (Section 4,
// Figure 4): a value index on column T.c that maps each value not only to
// the matching T identifiers "as usual", but also to precomputed lists of
// identifiers for every ancestor of T on the path to the tree root. The
// entry for "Spain" in the Doctor.Country index carries Doctor IDs, Visit
// IDs and Prescription IDs, so a selection deep in the tree reaches the
// root table in a single step.
//
// On flash an index is three regions:
//
//	entries — fixed-width records sorted by value:
//	          valueOff u32, then per level {listOff u32, count u32}
//	values  — concatenated self-delimiting value encodings
//	lists   — concatenated delta-varint ID lists (see codec)
//
// Lookups binary-search the entries region through the page cache;
// posting lists stream through one-page flash readers, so a lookup never
// needs more than a few hundred bytes of device RAM.
package climbing

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"github.com/ghostdb/ghostdb/internal/codec"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// Index is a climbing index on Table.Column.
type Index struct {
	Table  string
	Column string
	// Levels[0] is Table itself; subsequent entries climb parent by
	// parent to the tree root.
	Levels []string

	kind    value.Kind
	dense   bool // values are exactly the dense IDs 1..n (primary keys)
	n       int  // distinct values
	entSize int

	// vals memoizes the decoded dictionary values host-side (they are
	// immutable after Build). Lookups still stream the encoded bytes
	// through the page cache — the simulated flash cost and the cache's
	// LRU state are untouched — but skip the per-probe re-decode and its
	// allocations.
	vals []value.Value

	st         *store.Store
	entriesExt flash.Extent
	valuesExt  flash.Extent
	listsExt   flash.Extent
}

// ListRef locates one posting list on flash.
type ListRef struct {
	Count int
	Ext   flash.Extent
}

// Entry is one dictionary entry: a value and its per-level posting lists,
// aligned with Index.Levels.
type Entry struct {
	Idx   int
	Value value.Value
	Lists []ListRef
}

// Inverted supplies, for a (parent, child) edge of the schema tree, the
// inverted foreign key: result[childID-1] is the sorted list of parent IDs
// referencing that child row. The engine computes each edge once at load.
type Inverted func(parent, child string) ([][]uint32, error)

// Build constructs a climbing index over vals (the column values of Table
// in row order, so row i has ID i+1). dense marks primary-key columns
// whose value i+1 sits at entry i, enabling O(1) lookups. The index climbs
// from table to the schema root using inv.
func Build(st *store.Store, sch *schema.Schema, table, column string, kind value.Kind, vals []value.Value, dense bool, inv Inverted) (*Index, error) {
	tb, ok := sch.Table(table)
	if !ok {
		return nil, fmt.Errorf("climbing: unknown table %s", table)
	}
	var levels []string
	for _, t := range sch.PathToRoot(tb.Name) {
		levels = append(levels, t.Name)
	}
	ix := &Index{
		Table:   tb.Name,
		Column:  column,
		Levels:  levels,
		kind:    kind,
		dense:   dense,
		st:      st,
		entSize: 4 + 8*len(levels),
	}

	// Group row IDs by value; appending in row order keeps lists sorted.
	groups := map[value.Value][]uint32{}
	for i, v := range vals {
		cv, err := value.Coerce(v, kind)
		if err != nil {
			return nil, fmt.Errorf("climbing: %s.%s row %d: %w", table, column, i, err)
		}
		groups[cv] = append(groups[cv], uint32(i+1))
	}
	distinct := make([]value.Value, 0, len(groups))
	for v := range groups {
		distinct = append(distinct, v)
	}
	var sortErr error
	sort.Slice(distinct, func(i, j int) bool {
		c, err := value.Compare(distinct[i], distinct[j])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, fmt.Errorf("climbing: %s.%s: %w", table, column, sortErr)
	}
	ix.n = len(distinct)
	ix.vals = distinct
	if dense {
		if len(distinct) != len(vals) {
			return nil, fmt.Errorf("climbing: %s.%s: dense index requires unique values (%d distinct of %d rows)",
				table, column, len(distinct), len(vals))
		}
		if err := checkDense(distinct); err != nil {
			return nil, fmt.Errorf("climbing: %s.%s: %w", table, column, err)
		}
	}

	// Fetch the inverted edges once per level.
	invs := make([][][]uint32, len(levels)-1)
	for l := 1; l < len(levels); l++ {
		iv, err := inv(levels[l], levels[l-1])
		if err != nil {
			return nil, fmt.Errorf("climbing: inverted %s->%s: %w", levels[l], levels[l-1], err)
		}
		invs[l-1] = iv
	}

	var valuesBuf, listsBuf, entriesBuf []byte
	for _, v := range distinct {
		entriesBuf = binary.LittleEndian.AppendUint32(entriesBuf, uint32(len(valuesBuf)))
		valuesBuf = v.Append(valuesBuf)

		lists := make([][]uint32, len(levels))
		lists[0] = groups[v]
		for l := 1; l < len(levels); l++ {
			lists[l] = climbOnce(lists[l-1], invs[l-1])
		}
		for _, list := range lists {
			entriesBuf = binary.LittleEndian.AppendUint32(entriesBuf, uint32(len(listsBuf)))
			entriesBuf = binary.LittleEndian.AppendUint32(entriesBuf, uint32(len(list)))
			listsBuf = codec.AppendIDList(listsBuf, list)
		}
	}

	var err error
	if ix.entriesExt, err = st.AppendRegion(entriesBuf); err != nil {
		return nil, err
	}
	if ix.valuesExt, err = st.AppendRegion(valuesBuf); err != nil {
		return nil, err
	}
	if ix.listsExt, err = st.AppendRegion(listsBuf); err != nil {
		return nil, err
	}
	return ix, nil
}

// climbOnce unions the parent lists of every ID in list. The per-child
// parent lists are disjoint (each parent row references one child), so
// the union is a merge of disjoint sorted lists.
func climbOnce(list []uint32, inv [][]uint32) []uint32 {
	var out []uint32
	for _, id := range list {
		if int(id) <= len(inv) {
			out = append(out, inv[id-1]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkDense(distinct []value.Value) error {
	for i, v := range distinct {
		if v.Kind() != value.Int || v.Int() != int64(i+1) {
			return fmt.Errorf("dense index requires values 1..n, entry %d is %v", i, v)
		}
	}
	return nil
}

// Kind reports the indexed column's value kind.
func (ix *Index) Kind() value.Kind { return ix.kind }

// Dense reports whether the index is a dense primary-key translator.
func (ix *Index) Dense() bool { return ix.dense }

// DistinctValues reports the dictionary size.
func (ix *Index) DistinctValues() int { return ix.n }

// Bytes reports the index's flash footprint.
func (ix *Index) Bytes() int64 {
	return ix.entriesExt.Len + ix.valuesExt.Len + ix.listsExt.Len
}

// LevelOf returns the position of table in Levels, or -1.
func (ix *Index) LevelOf(table string) int {
	for i, l := range ix.Levels {
		if strings.EqualFold(l, table) {
			return i
		}
	}
	return -1
}

// entryRecord reads dictionary record i through the page cache into the
// caller's scratch array (heap fallback for oversized records), so the
// two read paths — full entries and value-only probes — share one
// layout-aware reader.
func (ix *Index) entryRecord(i int, scratch *[64]byte) ([]byte, error) {
	raw := scratch[:]
	if ix.entSize > len(raw) {
		raw = make([]byte, ix.entSize)
	}
	raw = raw[:ix.entSize]
	if err := ix.st.Cache().ReadAt(raw, ix.entriesExt.Start+int64(i)*int64(ix.entSize)); err != nil {
		return nil, err
	}
	return raw, nil
}

// entry reads dictionary entry i.
func (ix *Index) entry(i int) (Entry, error) {
	if i < 0 || i >= ix.n {
		return Entry{}, fmt.Errorf("climbing: entry %d of %d", i, ix.n)
	}
	var scratch [64]byte
	raw, err := ix.entryRecord(i, &scratch)
	if err != nil {
		return Entry{}, err
	}
	valOff := binary.LittleEndian.Uint32(raw[0:4])
	v, err := ix.readValue(i, int64(valOff))
	if err != nil {
		return Entry{}, err
	}
	e := Entry{Idx: i, Value: v, Lists: make([]ListRef, len(ix.Levels))}
	for l := range ix.Levels {
		off := binary.LittleEndian.Uint32(raw[4+8*l:])
		cnt := binary.LittleEndian.Uint32(raw[8+8*l:])
		var ext flash.Extent
		ext.Start = ix.listsExt.Start + int64(off)
		// The list's byte length is bounded by the next list's offset;
		// the decoder stops after cnt elements, so the extent may safely
		// extend to the end of the lists region.
		ext.Len = ix.listsExt.End() - ext.Start
		e.Lists[l] = ListRef{Count: int(cnt), Ext: ext}
	}
	return e, nil
}

// probeValue reads only the value of entry i — the binary-search path,
// which does not need the posting-list refs. The flash traffic is
// identical to entry's (the full record and the value bytes stream
// through the page cache); only the host-side Entry construction is
// skipped.
func (ix *Index) probeValue(i int) (value.Value, error) {
	if i < 0 || i >= ix.n {
		return value.Value{}, fmt.Errorf("climbing: entry %d of %d", i, ix.n)
	}
	var scratch [64]byte
	raw, err := ix.entryRecord(i, &scratch)
	if err != nil {
		return value.Value{}, err
	}
	return ix.readValue(i, int64(binary.LittleEndian.Uint32(raw[0:4])))
}

// readValue returns the value of entry i starting at valOff within the
// values region. The encoded bytes always stream through the page cache
// (that is the simulated device cost); the decode itself is served from
// the host-side memo when available.
func (ix *Index) readValue(i int, valOff int64) (value.Value, error) {
	// The value's length is bounded by the next entry's value offset.
	end := ix.valuesExt.Len
	if i+1 < ix.n {
		var raw [4]byte
		if err := ix.st.Cache().ReadAt(raw[:], ix.entriesExt.Start+int64(i+1)*int64(ix.entSize)); err != nil {
			return value.Value{}, err
		}
		end = int64(binary.LittleEndian.Uint32(raw[:]))
	}
	var bufArr [128]byte
	buf := bufArr[:]
	if n := int(end - valOff); n <= len(buf) {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	if err := ix.st.Cache().ReadAt(buf, ix.valuesExt.Start+valOff); err != nil {
		return value.Value{}, err
	}
	if ix.vals != nil {
		return ix.vals[i], nil
	}
	v, _, err := value.Decode(buf)
	return v, err
}

// LookupEq returns the entry for v, if present. Query literals should be
// coerced to the column kind first; string literals against DATE columns
// are handled via value.Compare's coercion.
func (ix *Index) LookupEq(v value.Value) (Entry, bool, error) {
	cv, err := value.Coerce(v, ix.kind)
	if err != nil {
		return Entry{}, false, err
	}
	if ix.dense {
		id := cv.Int()
		if id < 1 || id > int64(ix.n) {
			return Entry{}, false, nil
		}
		e, err := ix.entry(int(id - 1))
		return e, err == nil, err
	}
	lo, err := ix.lowerBound(cv)
	if err != nil {
		return Entry{}, false, err
	}
	if lo >= ix.n {
		return Entry{}, false, nil
	}
	e, err := ix.entry(lo)
	if err != nil {
		return Entry{}, false, err
	}
	c, err := value.Compare(e.Value, cv)
	if err != nil {
		return Entry{}, false, err
	}
	if c != 0 {
		return Entry{}, false, nil
	}
	return e, true, nil
}

// lowerBound returns the first entry index whose value is >= v.
func (ix *Index) lowerBound(v value.Value) (int, error) {
	lo, hi := 0, ix.n
	for lo < hi {
		mid := (lo + hi) / 2
		mv, err := ix.probeValue(mid)
		if err != nil {
			return 0, err
		}
		c, err := value.Compare(mv, v)
		if err != nil {
			return 0, err
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Bound is a range endpoint; nil means unbounded.
type Bound struct {
	V         value.Value
	Inclusive bool
}

// Range returns an iterator over entries with lo <= value <= hi (subject
// to inclusivity). Either bound may be nil.
func (ix *Index) Range(lo, hi *Bound) (*EntryIter, error) {
	start := 0
	if lo != nil {
		cv, err := value.Coerce(lo.V, ix.kind)
		if err != nil {
			return nil, err
		}
		start, err = ix.lowerBound(cv)
		if err != nil {
			return nil, err
		}
		if !lo.Inclusive {
			// Skip entries equal to the bound.
			for start < ix.n {
				sv, err := ix.probeValue(start)
				if err != nil {
					return nil, err
				}
				c, err := value.Compare(sv, cv)
				if err != nil {
					return nil, err
				}
				if c > 0 {
					break
				}
				start++
			}
		}
	}
	it := &EntryIter{ix: ix, next: start}
	if hi != nil {
		cv, err := value.Coerce(hi.V, ix.kind)
		if err != nil {
			return nil, err
		}
		it.hi = &Bound{V: cv, Inclusive: hi.Inclusive}
	}
	return it, nil
}

// EntryIter streams dictionary entries in value order.
type EntryIter struct {
	ix   *Index
	next int
	hi   *Bound
}

// Next returns the next entry; ok is false when the range is exhausted.
func (it *EntryIter) Next() (Entry, bool, error) {
	if it.next >= it.ix.n {
		return Entry{}, false, nil
	}
	e, err := it.ix.entry(it.next)
	if err != nil {
		return Entry{}, false, err
	}
	if it.hi != nil {
		c, err := value.Compare(e.Value, it.hi.V)
		if err != nil {
			return Entry{}, false, err
		}
		if c > 0 || (c == 0 && !it.hi.Inclusive) {
			it.next = it.ix.n
			return Entry{}, false, nil
		}
	}
	it.next++
	return e, true, nil
}

// OpenList returns a streaming decoder over a posting list. The decoder
// holds one flash page buffer; callers charge that against the device
// arena per concurrently open list.
func (ix *Index) OpenList(ref ListRef) *codec.ListDecoder {
	r := flash.NewReader(ix.st.Device().Flash, ref.Ext)
	return codec.NewListDecoder(r, ref.Count)
}

// ReadList materializes a posting list (test and small-list helper).
func (ix *Index) ReadList(ref ListRef) ([]uint32, error) {
	d := ix.OpenList(ref)
	out := make([]uint32, 0, ref.Count)
	for {
		id, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, id)
	}
}

// CountRange sums the per-level counts of all entries in the range —
// the optimizer's exact selectivity statistic (it pays the device cost
// of the dictionary scan, as the real device would).
func (ix *Index) CountRange(lo, hi *Bound, level int) (int, error) {
	if level < 0 || level >= len(ix.Levels) {
		return 0, fmt.Errorf("climbing: level %d of %d", level, len(ix.Levels))
	}
	it, err := ix.Range(lo, hi)
	if err != nil {
		return 0, err
	}
	total := 0
	for {
		e, ok, err := it.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return total, nil
		}
		total += e.Lists[level].Count
	}
}
