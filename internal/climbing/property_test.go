package climbing

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/ghostdb/ghostdb/internal/value"
)

// naiveIndex is the reference: a map from value to sorted own-level IDs
// plus the climbed parent IDs.
type naiveIndex struct {
	own    map[int64][]uint32
	parent map[int64][]uint32
}

func buildNaive(vals []int64, inv [][]uint32) *naiveIndex {
	n := &naiveIndex{own: map[int64][]uint32{}, parent: map[int64][]uint32{}}
	for i, v := range vals {
		n.own[v] = append(n.own[v], uint32(i+1))
	}
	for v, ids := range n.own {
		var parents []uint32
		for _, id := range ids {
			parents = append(parents, inv[id-1]...)
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		n.parent[v] = parents
	}
	return n
}

// TestPropertyIndexMatchesNaive builds random single-edge datasets and
// checks every lookup and range against the reference.
func TestPropertyIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 25; round++ {
		f := newFixture(t)
		nChild := 5 + rng.Intn(60)
		domain := int64(1 + rng.Intn(12))
		// Random child values; random inverted edge child -> parents.
		vals := make([]value.Value, nChild)
		raw := make([]int64, nChild)
		for i := range vals {
			raw[i] = int64(rng.Intn(int(domain)))
			vals[i] = value.NewInt(raw[i])
		}
		inv := make([][]uint32, nChild)
		next := uint32(1)
		for i := range inv {
			k := rng.Intn(4)
			for j := 0; j < k; j++ {
				inv[i] = append(inv[i], next)
				next++
			}
		}
		f.inv["Prescription->Visit"] = inv

		ix, err := Build(f.st, f.sch, "Visit", "Quantity", value.Int, vals, false, f.inverted)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		naive := buildNaive(raw, inv)

		if ix.DistinctValues() != len(naive.own) {
			t.Fatalf("round %d: %d distinct, want %d", round, ix.DistinctValues(), len(naive.own))
		}

		// Equality probes over the whole domain (hits and misses).
		for v := int64(-1); v <= domain; v++ {
			e, ok, err := ix.LookupEq(value.NewInt(v))
			if err != nil {
				t.Fatal(err)
			}
			want, exists := naive.own[v]
			if ok != exists {
				t.Fatalf("round %d: LookupEq(%d) ok=%v want %v", round, v, ok, exists)
			}
			if !ok {
				continue
			}
			got, err := ix.ReadList(e.Lists[0])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: own list of %d = %v, want %v", round, v, got, want)
			}
			gotP, err := ix.ReadList(e.Lists[1])
			if err != nil {
				t.Fatal(err)
			}
			wantP := naive.parent[v]
			if len(gotP) != len(wantP) {
				t.Fatalf("round %d: parent list of %d = %v, want %v", round, v, gotP, wantP)
			}
			for i := range gotP {
				if gotP[i] != wantP[i] {
					t.Fatalf("round %d: parent list of %d = %v, want %v", round, v, gotP, wantP)
				}
			}
		}

		// Random range probes, verified against a scan of the reference.
		for probe := 0; probe < 10; probe++ {
			lo := int64(rng.Intn(int(domain)+2)) - 1
			hi := lo + int64(rng.Intn(int(domain)))
			it, err := ix.Range(
				&Bound{V: value.NewInt(lo), Inclusive: true},
				&Bound{V: value.NewInt(hi), Inclusive: false})
			if err != nil {
				t.Fatal(err)
			}
			var got []int64
			for {
				e, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				got = append(got, e.Value.Int())
			}
			var want []int64
			for v := range naive.own {
				if v >= lo && v < hi {
					want = append(want, v)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: range [%d,%d) = %v, want %v", round, lo, hi, got, want)
			}
			// CountRange agrees with summing own lists.
			n, err := ix.CountRange(
				&Bound{V: value.NewInt(lo), Inclusive: true},
				&Bound{V: value.NewInt(hi), Inclusive: false}, 0)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, v := range want {
				total += len(naive.own[v])
			}
			if n != total {
				t.Fatalf("round %d: CountRange = %d, want %d", round, n, total)
			}
		}
	}
}
