package device

import (
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/sim"
)

func TestSmartUSB2007Profile(t *testing.T) {
	p := SmartUSB2007()
	if err := p.Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	if p.RAMBudget != 64<<10 {
		t.Errorf("RAM budget = %d, want 64KB", p.RAMBudget)
	}
	// The paper requires a 3-10x write/read cost asymmetry.
	readCost := p.Flash.ReadFixed + time.Duration(p.Flash.PageSize)*p.Flash.ReadPerByte
	progCost := p.Flash.ProgFixed + time.Duration(p.Flash.PageSize)*p.Flash.ProgPerByte
	ratio := float64(progCost) / float64(readCost)
	if ratio < 3 || ratio > 10 {
		t.Errorf("write/read ratio = %.1f, want within [3, 10]", ratio)
	}
}

func TestProfileVariants(t *testing.T) {
	p := SmartUSB2007().WithRAM(16 << 10)
	if p.RAMBudget != 16<<10 {
		t.Errorf("WithRAM = %d", p.RAMBudget)
	}
	p8 := SmartUSB2007().WithWriteRatio(8)
	if got := float64(p8.Flash.ProgFixed) / float64(p8.Flash.ReadFixed); got < 7.9 || got > 8.1 {
		t.Errorf("WithWriteRatio fixed = %.2f", got)
	}
	if got := float64(p8.Flash.ProgPerByte) / float64(p8.Flash.ReadPerByte); got < 7.9 || got > 8.1 {
		t.Errorf("WithWriteRatio per-byte = %.2f", got)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.RAMBudget = 0 },
		func(p *Profile) { p.CPUHz = 0 },
		func(p *Profile) { p.ScratchBlocks = 0 },
		func(p *Profile) { p.ScratchBlocks = p.Flash.Blocks },
		func(p *Profile) { p.CacheFrames = 0 },
		func(p *Profile) { p.BusChunkBytes = 0 },
		func(p *Profile) { p.RAMBudget = p.CacheFrames * p.Flash.PageSize }, // cache eats all RAM
		func(p *Profile) { p.Flash.PageSize = 0 },
	}
	for i, mutate := range cases {
		p := SmartUSB2007()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestNewDeviceLayout(t *testing.T) {
	p := SmartUSB2007()
	d, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Clock == nil || d.CPU == nil || d.RAM == nil || d.Flash == nil {
		t.Fatal("device components missing")
	}
	if d.RAM.Budget() != int64(p.RAMBudget) {
		t.Errorf("arena budget = %d", d.RAM.Budget())
	}
	scratchBytes := d.Scratch.FreeBytes()
	wantScratch := int64(p.ScratchBlocks) * int64(p.Flash.PagesPerBlock) * int64(p.Flash.PageSize)
	if scratchBytes != wantScratch {
		t.Errorf("scratch = %d bytes, want %d", scratchBytes, wantScratch)
	}
	// Layout: 2 commit-record blocks + two equal main halves + scratch
	// (one block may be lost to rounding when the main area is odd).
	if d.Main != d.Halves[0] || d.ActiveHalf() != 0 {
		t.Error("Main should alias the active half A")
	}
	if a, b := d.Halves[0].FreeBytes(), d.Halves[1].FreeBytes(); a != b {
		t.Errorf("halves differ: %d vs %d", a, b)
	}
	blockBytes := int64(p.Flash.PagesPerBlock) * int64(p.Flash.PageSize)
	accounted := int64(RecordBlocks)*blockBytes + 2*d.Main.FreeBytes() + scratchBytes
	if slack := p.Flash.TotalBytes() - accounted; slack < 0 || slack >= blockBytes {
		t.Errorf("layout accounts for %d of %d bytes (slack %d)", accounted, p.Flash.TotalBytes(), slack)
	}
}

func TestSwapHalf(t *testing.T) {
	d, err := New(SmartUSB2007(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Main.AppendRegion([]byte("version zero")); err != nil {
		t.Fatal(err)
	}
	if err := d.SwapHalf(); err != nil {
		t.Fatal(err)
	}
	if d.ActiveHalf() != 1 || d.Main != d.Halves[1] {
		t.Fatal("swap did not activate half B")
	}
	if d.Main.UsedPages() != 0 {
		t.Fatal("fresh half not empty")
	}
	// The retired half keeps its data until the next swap erases it.
	if d.Halves[0].UsedPages() == 0 {
		t.Fatal("retired half was erased prematurely")
	}
	if err := d.SwapHalf(); err != nil {
		t.Fatal(err)
	}
	if d.ActiveHalf() != 0 || d.Halves[0].UsedPages() != 0 {
		t.Fatal("second swap should erase and re-activate half A")
	}
}

func TestScratchResetIsIndependent(t *testing.T) {
	d, err := New(SmartUSB2007(), sim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	mainExt, err := d.Main.AppendRegion([]byte("persistent"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Scratch.AppendRegion([]byte("temporary")); err != nil {
		t.Fatal(err)
	}
	if err := d.ResetScratch(); err != nil {
		t.Fatal(err)
	}
	if d.Scratch.UsedPages() != 0 {
		t.Error("scratch not rewound")
	}
	got := make([]byte, 10)
	if err := d.Flash.ReadAt(got, mainExt.Start); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persistent" {
		t.Errorf("main space corrupted by scratch reset: %q", got)
	}
}

func TestNewRejectsInvalidProfile(t *testing.T) {
	p := SmartUSB2007()
	p.RAMBudget = -1
	if _, err := New(p, nil); err == nil {
		t.Error("invalid profile accepted")
	}
}
