// Package device assembles the simulated smart USB device of Figure 2:
// a secure chip (32-bit RISC CPU, tens of KB of RAM) driving a large
// external NAND flash, attached to the terminal over USB. Profiles bundle
// the hardware parameters; the default profile matches the 2007-era
// Gemalto platform the paper targets.
package device

import (
	"fmt"
	"time"

	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/ram"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/storage/simflash"
)

// Profile bundles every hardware parameter of a simulated device.
type Profile struct {
	Name string

	// Secure chip.
	RAMBudget int     // bytes of usable static RAM (paper: "tens of KB")
	CPUHz     float64 // RISC core frequency

	// External NAND flash.
	Flash flash.Params

	// Fraction of flash blocks reserved as query-time scratch space for
	// sort runs and spilled intermediates.
	ScratchBlocks int

	// Page frames of the random-access cache (charged to RAM).
	CacheFrames int

	// Payload bytes per streamed bus message. ID lists and projection
	// streams are chunked at this size; each chunk pays the per-message
	// bus latency.
	BusChunkBytes int
}

// SmartUSB2007 is the default profile: 64 KB RAM, 50 MHz CPU, 2 KB flash
// pages with a 5× program/read cost ratio (paper: 3–10×), and a 2 GB
// flash array.
func SmartUSB2007() Profile {
	return Profile{
		Name:      "smart-usb-2007",
		RAMBudget: 64 << 10,
		CPUHz:     50e6,
		Flash: flash.Params{
			PageSize:      2048,
			PagesPerBlock: 64,
			Blocks:        16384, // 2 GB
			ReadFixed:     25 * time.Microsecond,
			ReadPerByte:   25 * time.Nanosecond,
			ProgFixed:     200 * time.Microsecond,
			ProgPerByte:   50 * time.Nanosecond,
			EraseFixed:    1500 * time.Microsecond,
		},
		ScratchBlocks: 4096,
		CacheFrames:   8,
		BusChunkBytes: 2048,
	}
}

// WithRAM returns a copy of the profile with a different RAM budget
// (experiment E8 sweeps this).
func (p Profile) WithRAM(budget int) Profile {
	p.RAMBudget = budget
	return p
}

// WithWriteRatio returns a copy whose flash program costs are ratio× the
// read costs (experiment E9 sweeps 3×–10×).
func (p Profile) WithWriteRatio(ratio float64) Profile {
	p.Flash.ProgFixed = time.Duration(float64(p.Flash.ReadFixed) * ratio)
	p.Flash.ProgPerByte = time.Duration(float64(p.Flash.ReadPerByte) * ratio)
	return p
}

// Validate checks the profile for consistency.
func (p Profile) Validate() error {
	if err := p.Flash.Validate(); err != nil {
		return err
	}
	if p.RAMBudget <= 0 {
		return fmt.Errorf("device: RAM budget %d", p.RAMBudget)
	}
	if p.CPUHz <= 0 {
		return fmt.Errorf("device: CPU frequency %f", p.CPUHz)
	}
	if p.ScratchBlocks <= 0 || p.ScratchBlocks >= p.Flash.Blocks {
		return fmt.Errorf("device: scratch blocks %d of %d", p.ScratchBlocks, p.Flash.Blocks)
	}
	if p.CacheFrames <= 0 {
		return fmt.Errorf("device: cache frames %d", p.CacheFrames)
	}
	if p.BusChunkBytes <= 0 {
		return fmt.Errorf("device: bus chunk %d", p.BusChunkBytes)
	}
	cacheBytes := p.CacheFrames * p.Flash.PageSize
	if cacheBytes >= p.RAMBudget {
		return fmt.Errorf("device: cache (%d B) would consume the whole RAM budget (%d B)", cacheBytes, p.RAMBudget)
	}
	return nil
}

// RecordBlocks is the number of flash blocks reserved at the head of the
// device for the A/B commit-record superblock slots: block 0 holds
// even-numbered commit versions, block 1 odd-numbered ones, so flipping a
// version never overwrites the previous record.
const RecordBlocks = 2

// Device is a live smart USB device: the secure chip simulation (clock,
// CPU, RAM arena) over a pluggable storage backend. The default backend
// is the simulated NAND chip; NewWithBackend accepts any
// storage.Backend with the profile's geometry (e.g. a filedev device).
type Device struct {
	Profile Profile
	Clock   *sim.Clock
	CPU     *sim.CPU
	RAM     *ram.Arena
	Flash   storage.Backend

	// Main holds the database and its indexes, written once at load time.
	// It aliases the active element of Halves: the flash area after the
	// commit-record blocks is split into two halves so a CHECKPOINT can
	// build the next version into the inactive half and commit it
	// atomically, leaving the previous version intact for recovery.
	Main *flash.Space
	// Halves are the two A/B main spaces; Main == Halves[ActiveHalf()].
	Halves [2]*flash.Space
	// Scratch holds query-time spills; reset between uses.
	Scratch *flash.Space

	active int
}

// New builds a device from the profile with the default simulated-NAND
// backend, sharing the given clock (the whole platform — device, buses —
// advances one clock).
func New(p Profile, clock *sim.Clock) (*Device, error) {
	if clock == nil {
		clock = sim.NewClock()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fd, err := simflash.New(p.Flash, clock)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(p, clock, fd)
}

// NewWithBackend builds a device over an already-constructed storage
// backend, whose geometry must match the profile's flash parameters.
func NewWithBackend(p Profile, clock *sim.Clock, fd storage.Backend) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = sim.NewClock()
	}
	if bp := fd.Params(); bp.PageSize != p.Flash.PageSize || bp.PagesPerBlock != p.Flash.PagesPerBlock || bp.Blocks != p.Flash.Blocks {
		return nil, fmt.Errorf("device: backend geometry %d/%d/%d does not match profile %d/%d/%d",
			bp.PageSize, bp.PagesPerBlock, bp.Blocks, p.Flash.PageSize, p.Flash.PagesPerBlock, p.Flash.Blocks)
	}
	mainBlocks := p.Flash.Blocks - p.ScratchBlocks
	if mainBlocks < RecordBlocks+2 {
		return nil, fmt.Errorf("device: %d main blocks cannot hold the commit records and two halves", mainBlocks)
	}
	halfBlocks := (mainBlocks - RecordBlocks) / 2
	halfA, err := flash.NewSpace(fd, RecordBlocks, halfBlocks)
	if err != nil {
		return nil, err
	}
	halfB, err := flash.NewSpace(fd, RecordBlocks+halfBlocks, halfBlocks)
	if err != nil {
		return nil, err
	}
	scratch, err := flash.NewSpace(fd, mainBlocks, p.ScratchBlocks)
	if err != nil {
		return nil, err
	}
	return &Device{
		Profile: p,
		Clock:   clock,
		CPU:     sim.NewCPU(clock, p.CPUHz),
		RAM:     ram.NewArena("device", p.RAMBudget),
		Flash:   fd,
		Main:    halfA,
		Halves:  [2]*flash.Space{halfA, halfB},
		Scratch: scratch,
	}, nil
}

// ActiveHalf reports which main half currently holds the database.
func (d *Device) ActiveHalf() int { return d.active }

// RecordBlock returns the flash block holding the commit record for the
// given version (A/B alternation on version parity).
func RecordBlock(version uint64) int { return int(version % RecordBlocks) }

// SwapHalf erases the inactive half (destroying the version before last
// — the last committed version's half stays intact for one-version
// rollback) and makes it the Main space for the next build. The caller
// then writes the new state and commits it with a fresh record.
func (d *Device) SwapHalf() error {
	next := 1 - d.active
	if err := d.Halves[next].Reset(); err != nil {
		return err
	}
	d.active = next
	d.Main = d.Halves[next]
	return nil
}

// ResetScratch erases the scratch space. The engine calls it after every
// query (and between multi-pass phases when the space runs low). A query
// that died mid-spill may have abandoned an open scratch writer; the
// reset reclaims it along with the pages it consumed.
func (d *Device) ResetScratch() error {
	d.Scratch.ReleaseWriter()
	return d.Scratch.Reset()
}
