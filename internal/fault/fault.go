// Package fault is the engine's deterministic fault-injection plan: a
// seedable description of flash, bus and power failures that the
// simulated device stack consults on every operation. GhostDB's premise
// is a pocket USB key that users yank at will, so the device layers
// (internal/flash, internal/bus) ask an Injector before each read,
// program, erase and bus transfer whether this operation fails — with a
// transient error (retried with capped backoff, charged to the simulated
// clock), a permanent error (surfaced as a typed error through the
// session and driver), a silent corruption (torn page write, bit flip —
// caught later by the per-page checksums), or a power cut that freezes
// the device mid-operation.
//
// Plans are deterministic: the same seed and the same operation sequence
// produce the same faults, so every torture run is replayable.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies the device operation class a fault targets.
type Op int

// Operation classes consulted against the plan.
const (
	OpRead Op = iota
	OpProgram
	OpErase
	OpBus
)

// String names the operation class.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	case OpBus:
		return "bus"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Typed fault errors. Fatal errors (see IsFatal) mean the operation — and
// with a power cut or disconnect, the whole device — cannot proceed;
// transient errors are retried by the device layers.
var (
	// ErrTransient is a recoverable hardware hiccup; the device layers
	// retry it with capped exponential backoff.
	ErrTransient = errors.New("fault: transient device error")
	// ErrPermanent is an unrecoverable hardware error on one operation
	// (a bad page, a failed program). The device stays up.
	ErrPermanent = errors.New("fault: permanent device error")
	// ErrPowerCut reports that the simulated power was cut: the device
	// froze mid-operation and every later operation fails.
	ErrPowerCut = errors.New("fault: power cut")
	// ErrDisconnect reports that the bus link dropped permanently.
	ErrDisconnect = errors.New("fault: bus disconnected")
	// ErrDeviceDead is returned by every operation after a power cut or
	// permanent disconnect.
	ErrDeviceDead = errors.New("fault: device dead")
)

// IsTransient reports whether err is a retryable transient fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsFatal reports whether err is a non-retryable device fault: a
// permanent hardware error, a power cut, a dropped bus, or an operation
// against an already-dead device. Connection pools should evict
// connections that see one (the driver maps these to driver.ErrBadConn).
func IsFatal(err error) bool {
	return errors.Is(err, ErrPermanent) || errors.Is(err, ErrPowerCut) ||
		errors.Is(err, ErrDisconnect) || errors.Is(err, ErrDeviceDead)
}

// IsDeviceDead reports whether err means the whole device is gone (power
// cut or disconnect), as opposed to a single failed operation. A sharded
// coordinator marks the shard dead on these.
func IsDeviceDead(err error) bool {
	return errors.Is(err, ErrPowerCut) || errors.Is(err, ErrDisconnect) ||
		errors.Is(err, ErrDeviceDead)
}

// Plan is a deterministic, seedable fault plan. Zero value injects
// nothing. Rates are per-operation probabilities in [0, 1].
type Plan struct {
	Seed int64 // RNG seed; shard i derives seed Seed+i

	ReadTransient  float64 // transient flash read error rate
	ProgTransient  float64 // transient flash program error rate
	EraseTransient float64 // transient flash erase error rate
	ReadPermanent  float64 // permanent flash read error rate
	ProgPermanent  float64 // permanent flash program error rate
	ErasePermanent float64 // permanent flash erase error rate

	TornWrite float64 // rate of torn page programs (a prefix is stored, checksum exposes it)
	BitFlip   float64 // rate, per page read, of a persistent stored bit flip

	BusTransient  float64 // transient bus transfer error rate
	BusDisconnect float64 // rate of a permanent bus drop (kills the device)

	CutAtOp   int64         // power cut when the device op counter reaches this (1-based; 0 = off)
	CutAtTime time.Duration // power cut at simulated time >= this (0 = off)
	FailAtOp  int64         // one-shot permanent error at exactly this op (0 = off)

	Shard int // restrict the plan to one shard (-1 or 0-default-off = all shards); set via "shard="
	// shardSet records whether Shard was set explicitly, so Shard: 0
	// can target shard 0.
	shardSet bool
}

// TargetsShard reports whether the plan applies to the given shard index.
func (p *Plan) TargetsShard(shard int) bool {
	if p == nil {
		return false
	}
	if !p.shardSet || p.Shard < 0 {
		return true
	}
	return p.Shard == shard
}

// SetShard restricts the plan to one shard index (negative = all).
func (p *Plan) SetShard(shard int) {
	p.Shard = shard
	p.shardSet = true
}

// planKeys maps DSN keys to Plan fields for parsing and printing.
// Grammar (the value of the DSN's faults= parameter): comma-separated
// key=value pairs, e.g.
//
//	faults=seed=42,read.transient=0.001,torn=0.01,cutop=1234
func parseKey(p *Plan, key, val string) error {
	rate := func(dst *float64) error {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("fault: %s=%q is not a rate in [0,1]", key, val)
		}
		*dst = f
		return nil
	}
	i64 := func(dst *int64) error {
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: %s=%q is not an integer", key, val)
		}
		*dst = n
		return nil
	}
	switch key {
	case "seed":
		return i64(&p.Seed)
	case "read.transient", "read":
		return rate(&p.ReadTransient)
	case "prog.transient", "prog":
		return rate(&p.ProgTransient)
	case "erase.transient", "erase":
		return rate(&p.EraseTransient)
	case "read.permanent":
		return rate(&p.ReadPermanent)
	case "prog.permanent":
		return rate(&p.ProgPermanent)
	case "erase.permanent":
		return rate(&p.ErasePermanent)
	case "torn":
		return rate(&p.TornWrite)
	case "flip":
		return rate(&p.BitFlip)
	case "bus.transient", "bus":
		return rate(&p.BusTransient)
	case "bus.disconnect":
		return rate(&p.BusDisconnect)
	case "cutop":
		return i64(&p.CutAtOp)
	case "cuttime":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("fault: cuttime=%q is not a duration", val)
		}
		p.CutAtTime = d
		return nil
	case "failop":
		return i64(&p.FailAtOp)
	case "shard":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("fault: shard=%q is not an integer", val)
		}
		p.SetShard(n)
		return nil
	}
	return fmt.Errorf("fault: unknown plan key %q", key)
}

// ParsePlan parses the DSN fault grammar ("seed=42,read.transient=0.001,
// cutop=100,..."). An empty string yields an empty plan.
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: plan entry %q is not key=value", part)
		}
		if err := parseKey(p, strings.ToLower(strings.TrimSpace(key)), strings.TrimSpace(val)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// String renders the plan in the DSN grammar (only non-zero fields).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	add("read.transient", p.ReadTransient)
	add("prog.transient", p.ProgTransient)
	add("erase.transient", p.EraseTransient)
	add("read.permanent", p.ReadPermanent)
	add("prog.permanent", p.ProgPermanent)
	add("erase.permanent", p.ErasePermanent)
	add("torn", p.TornWrite)
	add("flip", p.BitFlip)
	add("bus.transient", p.BusTransient)
	add("bus.disconnect", p.BusDisconnect)
	if p.CutAtOp != 0 {
		parts = append(parts, "cutop="+strconv.FormatInt(p.CutAtOp, 10))
	}
	if p.CutAtTime != 0 {
		parts = append(parts, "cuttime="+p.CutAtTime.String())
	}
	if p.FailAtOp != 0 {
		parts = append(parts, "failop="+strconv.FormatInt(p.FailAtOp, 10))
	}
	if p.shardSet {
		parts = append(parts, "shard="+strconv.Itoa(p.Shard))
	}
	sort.Strings(parts[boolToInt(p.Seed != 0):]) // keep seed first, rest sorted
	return strings.Join(parts, ",")
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Sink receives fault events, for wiring into a metrics registry. All
// methods may be called from the goroutine holding the device gate.
type Sink interface {
	FaultInjected(op string, transient bool)
	FaultRetried(op string)
	ChecksumFailure()
}

// Injector evaluates one device's fault plan. A nil *Injector is a valid
// no-op injector (every method is nil-safe), so fault-free devices pay a
// single pointer test per operation.
type Injector struct {
	plan Plan
	sink Sink // set once at wiring time, before any device op

	mu        sync.Mutex
	rng       *rand.Rand
	ops       int64
	deadCause error

	dead     atomic.Bool
	injected atomic.Int64
	retried  atomic.Int64

	// armed gates injection. The engine disarms the injector for the
	// secure-setting bulk load (the device is provisioned at the
	// publisher, presumed fault-free) and arms it when the database goes
	// live, so op-counter triggers (cutop, failop) count operational
	// device ops only. Injectors start armed, letting the device layers
	// be exercised directly in tests.
	disarmed atomic.Bool
}

// New builds an injector for the plan as seen by shard (0 for a
// single-device DB). Returns nil — the no-op injector — when the plan is
// nil, or when the plan targets a different shard.
func New(plan *Plan, shard int) *Injector {
	if plan == nil || !plan.TargetsShard(shard) {
		return nil
	}
	cp := *plan
	return &Injector{
		plan: cp,
		rng:  rand.New(rand.NewSource(cp.Seed + int64(shard)*7919)),
	}
}

// Disarm suspends injection: every consultation passes and consumes no
// op number. The engine disarms the injector across the secure-setting
// bulk load.
func (inj *Injector) Disarm() {
	if inj != nil {
		inj.disarmed.Store(true)
	}
}

// Arm (re-)enables injection. The engine arms the injector when the
// database goes live, immediately after the bulk load's rewind.
func (inj *Injector) Arm() {
	if inj != nil {
		inj.disarmed.Store(false)
	}
}

// SetSink wires fault events to a metrics sink. Call before device use.
func (inj *Injector) SetSink(s Sink) {
	if inj != nil {
		inj.sink = s
	}
}

// Stats reports (faults injected, transient retries performed).
func (inj *Injector) Stats() (injected, retried int64) {
	if inj == nil {
		return 0, 0
	}
	return inj.injected.Load(), inj.retried.Load()
}

// Ops reports how many armed operations have consulted the plan — the
// op counter cutop/failop key off. Torture tests probe a fault-free run
// with an empty plan to learn the op budget, then sweep cut points
// across it.
func (inj *Injector) Ops() int64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.ops
}

// Dead reports whether the device has been killed (power cut or
// permanent disconnect).
func (inj *Injector) Dead() bool { return inj != nil && inj.dead.Load() }

// DeadCause returns the error that killed the device, or nil.
func (inj *Injector) DeadCause() error {
	if inj == nil || !inj.dead.Load() {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.deadCause
}

// Kill marks the device dead with the given cause (used by the bus layer
// on disconnect, and by tests).
func (inj *Injector) Kill(cause error) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	if inj.deadCause == nil {
		inj.deadCause = cause
	}
	inj.mu.Unlock()
	inj.dead.Store(true)
}

func (inj *Injector) note(op Op, transient bool) {
	inj.injected.Add(1)
	if inj.sink != nil {
		inj.sink.FaultInjected(op.String(), transient)
	}
}

// NoteRetry records one transient-fault retry attempt (the device layers
// call it as they back off).
func (inj *Injector) NoteRetry(op Op) {
	if inj == nil {
		return
	}
	inj.retried.Add(1)
	if inj.sink != nil {
		inj.sink.FaultRetried(op.String())
	}
}

// NoteChecksum records a page-checksum verification failure.
func (inj *Injector) NoteChecksum() {
	if inj == nil {
		return
	}
	if inj.sink != nil {
		inj.sink.ChecksumFailure()
	}
}

// BeforeOp consults the plan for the next device operation of class op at
// simulated time now. It returns nil (the operation proceeds), a
// transient error (the caller retries with backoff), or a fatal error.
// Each call consumes one op number; the power-cut and one-shot triggers
// key off that counter, so runs are deterministic.
func (inj *Injector) BeforeOp(op Op, now time.Duration) error {
	if inj == nil || inj.disarmed.Load() {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.dead.Load() {
		return fmt.Errorf("%w (%v)", ErrDeviceDead, inj.deadCause)
	}
	inj.ops++
	if inj.plan.CutAtOp > 0 && inj.ops >= inj.plan.CutAtOp {
		return inj.killLocked(op, fmt.Errorf("%w: at device op %d (%s)", ErrPowerCut, inj.ops, op))
	}
	if inj.plan.CutAtTime > 0 && now >= inj.plan.CutAtTime {
		return inj.killLocked(op, fmt.Errorf("%w: at simulated time %v (%s)", ErrPowerCut, now, op))
	}
	if inj.plan.FailAtOp > 0 && inj.ops == inj.plan.FailAtOp {
		inj.note(op, false)
		return fmt.Errorf("%w: injected at device op %d (%s)", ErrPermanent, inj.ops, op)
	}
	var permRate, transRate float64
	switch op {
	case OpRead:
		permRate, transRate = inj.plan.ReadPermanent, inj.plan.ReadTransient
	case OpProgram:
		permRate, transRate = inj.plan.ProgPermanent, inj.plan.ProgTransient
	case OpErase:
		permRate, transRate = inj.plan.ErasePermanent, inj.plan.EraseTransient
	case OpBus:
		permRate, transRate = 0, inj.plan.BusTransient
		if inj.plan.BusDisconnect > 0 && inj.rng.Float64() < inj.plan.BusDisconnect {
			return inj.killLocked(op, fmt.Errorf("%w: injected at device op %d", ErrDisconnect, inj.ops))
		}
	}
	if permRate > 0 && inj.rng.Float64() < permRate {
		inj.note(op, false)
		return fmt.Errorf("%w: injected %s error at device op %d", ErrPermanent, op, inj.ops)
	}
	if transRate > 0 && inj.rng.Float64() < transRate {
		inj.note(op, true)
		return fmt.Errorf("%w: injected %s error at device op %d", ErrTransient, op, inj.ops)
	}
	return nil
}

func (inj *Injector) killLocked(op Op, err error) error {
	if inj.deadCause == nil {
		inj.deadCause = err
	}
	inj.dead.Store(true)
	inj.note(op, false)
	return err
}

// TornBytes decides whether a program of n bytes is torn. It returns the
// number of bytes actually stored (in [0, n)) for a torn write, or -1
// for a clean one. A torn write "succeeds" silently — the per-page
// checksum written with the intended content exposes it on read.
func (inj *Injector) TornBytes(n int) int {
	if inj == nil || inj.disarmed.Load() || inj.plan.TornWrite <= 0 || n == 0 {
		return -1
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.dead.Load() || inj.rng.Float64() >= inj.plan.TornWrite {
		return -1
	}
	inj.note(OpProgram, false)
	return inj.rng.Intn(n)
}

// FlipBit decides whether this page read suffers a (persistent) stored
// bit flip in a page of n bytes. It returns the byte offset and a
// single-bit mask, or (0, 0) when no flip occurs.
func (inj *Injector) FlipBit(n int) (off int, mask byte) {
	if inj == nil || inj.disarmed.Load() || inj.plan.BitFlip <= 0 || n == 0 {
		return 0, 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.dead.Load() || inj.rng.Float64() >= inj.plan.BitFlip {
		return 0, 0
	}
	inj.note(OpRead, false)
	return inj.rng.Intn(n), 1 << inj.rng.Intn(8)
}
