package fault

import (
	"errors"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	in := "seed=42,cutop=1234,flip=0.001,read.transient=0.01,torn=0.5"
	p, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.CutAtOp != 1234 || p.BitFlip != 0.001 || p.ReadTransient != 0.01 || p.TornWrite != 0.5 {
		t.Fatalf("parsed %+v", p)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if *p2 != *p {
		t.Fatalf("round trip %q: %+v != %+v", p.String(), p2, p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"read.transient=2", // rate out of range
		"read.transient=x", // not a number
		"cutop=abc",        // not an integer
		"cuttime=banana",   // not a duration
		"nosuchkey=1",      // unknown key
		"seed",             // not key=value
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q): want error", bad)
		}
	}
	if p, err := ParsePlan("  "); err != nil || *p != (Plan{}) {
		t.Errorf("empty plan: %+v, %v", p, err)
	}
}

func TestPlanShardTargeting(t *testing.T) {
	p, err := ParsePlan("seed=1,shard=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.TargetsShard(0) || !p.TargetsShard(2) {
		t.Fatalf("shard=2 plan targets: 0=%v 2=%v", p.TargetsShard(0), p.TargetsShard(2))
	}
	if New(p, 0) != nil {
		t.Fatal("injector for untargeted shard should be nil")
	}
	if New(p, 2) == nil {
		t.Fatal("injector for targeted shard should exist")
	}
	all := &Plan{}
	if !all.TargetsShard(0) || !all.TargetsShard(3) {
		t.Fatal("default plan should target every shard")
	}
	zero := &Plan{}
	zero.SetShard(0)
	if !zero.TargetsShard(0) || zero.TargetsShard(1) {
		t.Fatal("shard=0 plan should target only shard 0")
	}
}

func TestCutAtOpKillsDevice(t *testing.T) {
	inj := New(&Plan{CutAtOp: 3}, 0)
	for i := 0; i < 2; i++ {
		if err := inj.BeforeOp(OpRead, 0); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	err := inj.BeforeOp(OpProgram, 0)
	if !errors.Is(err, ErrPowerCut) {
		t.Fatalf("op 3: want power cut, got %v", err)
	}
	if !inj.Dead() || !IsDeviceDead(err) || !IsFatal(err) {
		t.Fatalf("after cut: dead=%v err=%v", inj.Dead(), err)
	}
	err = inj.BeforeOp(OpRead, 0)
	if !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("post-cut op: want device dead, got %v", err)
	}
	if cause := inj.DeadCause(); !errors.Is(cause, ErrPowerCut) {
		t.Fatalf("dead cause: %v", cause)
	}
}

func TestCutAtTime(t *testing.T) {
	inj := New(&Plan{CutAtTime: time.Second}, 0)
	if err := inj.BeforeOp(OpRead, 999*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := inj.BeforeOp(OpRead, time.Second); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("want power cut at T, got %v", err)
	}
}

func TestFailAtOpIsOneShot(t *testing.T) {
	inj := New(&Plan{FailAtOp: 2}, 0)
	if err := inj.BeforeOp(OpRead, 0); err != nil {
		t.Fatal(err)
	}
	err := inj.BeforeOp(OpRead, 0)
	if !errors.Is(err, ErrPermanent) || !IsFatal(err) {
		t.Fatalf("op 2: want permanent, got %v", err)
	}
	if IsDeviceDead(err) || inj.Dead() {
		t.Fatal("one-shot permanent fault must not kill the device")
	}
	for i := 0; i < 10; i++ {
		if err := inj.BeforeOp(OpRead, 0); err != nil {
			t.Fatalf("post-fault op %d: %v", i, err)
		}
	}
	if inj, _ := inj.Stats(); inj != 1 {
		t.Fatalf("injected = %d, want 1", inj)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []bool {
		inj := New(&Plan{Seed: 7, ReadTransient: 0.3, TornWrite: 0.2, BitFlip: 0.1}, 1)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, inj.BeforeOp(OpRead, 0) != nil)
			out = append(out, inj.TornBytes(100) >= 0)
			_, m := inj.FlipBit(2048)
			out = append(out, m != 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.BeforeOp(OpRead, 0); err != nil {
		t.Fatal(err)
	}
	if inj.TornBytes(10) != -1 {
		t.Fatal("nil TornBytes")
	}
	if _, m := inj.FlipBit(10); m != 0 {
		t.Fatal("nil FlipBit")
	}
	if inj.Dead() || inj.DeadCause() != nil {
		t.Fatal("nil Dead")
	}
	inj.NoteRetry(OpRead)
	inj.NoteChecksum()
	inj.Kill(ErrPowerCut)
	inj.SetSink(nil)
	if i, r := inj.Stats(); i != 0 || r != 0 {
		t.Fatal("nil Stats")
	}
}

type recordSink struct{ injected, retried, checksum int }

func (s *recordSink) FaultInjected(string, bool) { s.injected++ }
func (s *recordSink) FaultRetried(string)        { s.retried++ }
func (s *recordSink) ChecksumFailure()           { s.checksum++ }

func TestSinkWiring(t *testing.T) {
	inj := New(&Plan{FailAtOp: 1}, 0)
	sink := &recordSink{}
	inj.SetSink(sink)
	inj.BeforeOp(OpRead, 0)
	inj.NoteRetry(OpRead)
	inj.NoteChecksum()
	if sink.injected != 1 || sink.retried != 1 || sink.checksum != 1 {
		t.Fatalf("sink %+v", sink)
	}
}
