package storage

import "fmt"

// MemImage is the host-memory Image implementation shared by the
// backends: simflash deep-copies its materialized blocks into one, and
// filedev reads its segment files into one so recovery never touches
// the live file handles. Only blocks holding programmed pages consume
// host memory.
type MemImage struct {
	p      Params
	blocks []*memBlock
}

type memBlock struct {
	data       []byte
	programmed []bool
	crc        []uint32
	hasCRC     []bool
}

// NewMemImage returns an empty (fully erased) image with the given
// geometry. Backends populate it block by block with SetBlock.
func NewMemImage(p Params) *MemImage {
	return &MemImage{p: p, blocks: make([]*memBlock, p.Blocks)}
}

// SetBlock installs one block's state. The slices are retained (callers
// hand over ownership); data must be PagesPerBlock*PageSize long and the
// flag slices PagesPerBlock long.
func (img *MemImage) SetBlock(i int, data []byte, programmed []bool, crc []uint32, hasCRC []bool) {
	img.blocks[i] = &memBlock{data: data, programmed: programmed, crc: crc, hasCRC: hasCRC}
}

// Params returns the imaged device's geometry.
func (img *MemImage) Params() Params { return img.p }

// PageProgrammed reports whether the imaged page holds programmed data.
func (img *MemImage) PageProgrammed(page int) bool {
	if page < 0 || page >= img.p.PageCount() {
		return false
	}
	b := img.blocks[page/img.p.PagesPerBlock]
	return b != nil && b.programmed[page%img.p.PagesPerBlock]
}

// verify checks one programmed page against its OOB checksum.
func (img *MemImage) verify(page int) error {
	b := img.blocks[page/img.p.PagesPerBlock]
	if b == nil {
		return nil
	}
	slot := page % img.p.PagesPerBlock
	if !b.programmed[slot] || !b.hasCRC[slot] {
		return nil
	}
	start := slot * img.p.PageSize
	if PageCRC(b.data[start:start+img.p.PageSize], img.p.PageSize) != b.crc[slot] {
		return fmt.Errorf("%w: page %d (block %d, page %d in block)", ErrCorrupt, page, page/img.p.PagesPerBlock, slot)
	}
	return nil
}

// ReadAt fills dst from the image at byte offset addr, verifying the OOB
// checksum of every page it touches. Erased bytes read as 0xFF.
func (img *MemImage) ReadAt(dst []byte, addr int64) error {
	if addr < 0 || addr+int64(len(dst)) > img.p.TotalBytes() {
		return fmt.Errorf("%w: read [%d, %d) of image [0, %d)", ErrOutOfRange, addr, addr+int64(len(dst)), img.p.TotalBytes())
	}
	ps := int64(img.p.PageSize)
	for len(dst) > 0 {
		page := int(addr / ps)
		off := int(addr % ps)
		n := img.p.PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if err := img.verify(page); err != nil {
			return err
		}
		b := img.blocks[page/img.p.PagesPerBlock]
		slot := page % img.p.PagesPerBlock
		if b == nil || !b.programmed[slot] {
			for i := 0; i < n; i++ {
				dst[i] = 0xFF
			}
		} else {
			start := slot*img.p.PageSize + off
			copy(dst, b.data[start:start+n])
		}
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}

// ReadPage returns a verified copy of one full page. The second result
// reports whether the page was programmed (an unprogrammed page reads as
// all 0xFF).
func (img *MemImage) ReadPage(page int) ([]byte, bool, error) {
	if page < 0 || page >= img.p.PageCount() {
		return nil, false, fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, img.p.PageCount())
	}
	buf := make([]byte, img.p.PageSize)
	if !img.PageProgrammed(page) {
		for i := range buf {
			buf[i] = 0xFF
		}
		return buf, false, nil
	}
	if err := img.verify(page); err != nil {
		return nil, true, err
	}
	b := img.blocks[page/img.p.PagesPerBlock]
	start := (page % img.p.PagesPerBlock) * img.p.PageSize
	copy(buf, b.data[start:start+img.p.PageSize])
	return buf, true, nil
}
