// Package storage defines the pluggable storage-backend seam of the
// engine: the page/block device contract that the flash allocator,
// store, checkpoint and recovery layers program against. GhostDB's
// premise is that one query engine can hide data behind radically
// different substrates — a simulated NAND chip with a deterministic
// cost model (storage/simflash), a real on-disk file device
// (storage/filedev), and later steganographic media — so everything
// above this interface is backend-agnostic.
//
// The contract is NAND-shaped because the engine's cost model and
// crash-consistency story are: reads are page-granular, a page is
// programmed at most once between erases, erases work on whole blocks,
// and erased bytes read back as 0xFF. Every backend carries the per-page
// out-of-band CRC32 integrity scheme (see PageCRC) so torn writes and
// bit rot surface as ErrCorrupt regardless of the medium, and every
// backend accepts a fault.Injector so the torn-write/power-cut torture
// suites run against real files exactly as they do against the
// simulation.
package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/ghostdb/ghostdb/internal/fault"
)

// Errors reported by storage backends.
var (
	ErrNotErased  = errors.New("storage: page programmed twice without erase")
	ErrOutOfRange = errors.New("storage: address out of range")
	ErrPageTooBig = errors.New("storage: program data exceeds page size")
	// ErrCorrupt reports a page whose stored content no longer matches
	// its out-of-band CRC32 (torn write, bit rot).
	ErrCorrupt = errors.New("storage: page checksum mismatch")
)

// Params describes a backend's geometry and (simulated) cost model. The
// latency fields drive the simulated clock of the simflash backend and
// size the planner's cost estimates; a real-file backend ignores them
// at run time but keeps them so plans stay comparable across backends.
type Params struct {
	PageSize      int // bytes per page
	PagesPerBlock int // pages per erase block
	Blocks        int // erase blocks on the device

	ReadFixed   time.Duration // fixed cost of a page access
	ReadPerByte time.Duration // per byte streamed out of the page
	ProgFixed   time.Duration // fixed cost of programming a page
	ProgPerByte time.Duration // per byte programmed
	EraseFixed  time.Duration // cost of erasing one block
}

// Validate checks the geometry for sanity.
func (p Params) Validate() error {
	if p.PageSize <= 0 || p.PagesPerBlock <= 0 || p.Blocks <= 0 {
		return fmt.Errorf("storage: invalid geometry %d/%d/%d", p.PageSize, p.PagesPerBlock, p.Blocks)
	}
	if p.ReadFixed < 0 || p.ProgFixed < 0 || p.EraseFixed < 0 {
		return errors.New("storage: negative latencies")
	}
	return nil
}

// PageCount reports the total number of pages.
func (p Params) PageCount() int { return p.PagesPerBlock * p.Blocks }

// TotalBytes reports the device capacity in bytes.
func (p Params) TotalBytes() int64 {
	return int64(p.PageSize) * int64(p.PageCount())
}

// Stats counts backend operations and the simulated time they consumed
// (zero for backends without a simulated cost model).
type Stats struct {
	PageReads       int64
	PagesProgrammed int64
	BlockErases     int64
	BytesRead       int64
	BytesProgrammed int64
	ReadTime        time.Duration
	ProgTime        time.Duration
	EraseTime       time.Duration
}

// Sub returns the difference s - o, used to attribute stats to a query.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PageReads:       s.PageReads - o.PageReads,
		PagesProgrammed: s.PagesProgrammed - o.PagesProgrammed,
		BlockErases:     s.BlockErases - o.BlockErases,
		BytesRead:       s.BytesRead - o.BytesRead,
		BytesProgrammed: s.BytesProgrammed - o.BytesProgrammed,
		ReadTime:        s.ReadTime - o.ReadTime,
		ProgTime:        s.ProgTime - o.ProgTime,
		EraseTime:       s.EraseTime - o.EraseTime,
	}
}

// Backend is the page/block device contract every storage substrate
// implements. Backends are not safe for concurrent use — the engine's
// device gate serializes access, matching a single-threaded secure chip.
//
// Semantics every implementation must honour:
//
//   - ReadAt/ReadPage return erased (never programmed) bytes as 0xFF.
//   - ProgramPage rejects a second program without an intervening
//     EraseBlock (ErrNotErased).
//   - With integrity on, each programmed page carries an out-of-band
//     CRC32 of the intended full-page content (PageCRC); a verified read
//     of a page whose stored bytes diverge returns ErrCorrupt.
//   - The injector, when set, is consulted before every read, program
//     and erase, and its torn-write/bit-flip effects are applied so
//     fault-torture suites behave identically across backends.
type Backend interface {
	// Params returns the geometry and cost model.
	Params() Params
	// Stats returns a snapshot of the operation counters.
	Stats() Stats
	// ResetStats zeroes the counters (the stored content is untouched).
	ResetStats()

	// ReadAt fills dst with the bytes at byte offset addr.
	ReadAt(dst []byte, addr int64) error
	// ReadPage reads one full page into dst (which must be PageSize long).
	ReadPage(page int, dst []byte) error
	// ProgramPage writes data (at most one page) to an erased page.
	ProgramPage(page int, data []byte) error
	// EraseBlock resets every page of the block to the erased state.
	EraseBlock(block int) error
	// PageProgrammed reports whether the page has been programmed since
	// the last erase of its block.
	PageProgrammed(page int) bool

	// SetInjector installs a fault injector consulted before every read,
	// program and erase. Pass nil to remove it.
	SetInjector(inj *fault.Injector)
	// Injector returns the installed fault injector (possibly nil).
	Injector() *fault.Injector
	// SetIntegrity switches the per-page OOB checksums on or off. Pages
	// programmed while integrity is off carry no checksum and are never
	// verified.
	SetIntegrity(on bool)

	// Image snapshots the persistent state — what survives a power cut —
	// for the recovery path. Image reads are forensic: free of simulated
	// cost and not subject to the injector.
	Image() (Image, error)

	// Sync makes everything programmed so far durable against a host
	// crash. The engine calls it at commit points; backends without a
	// durability boundary (the simulation) treat it as a no-op.
	Sync() error
	// Close releases backend resources (file handles). The backend must
	// not be used afterwards.
	Close() error
}

// Image is a read-only view of a backend's persistent state — the page
// contents, programmed flags and out-of-band checksums that survive a
// power cut. The recovery path (core.Recover) reads committed data back
// out of an Image; reads are forensic and free, but every touched page
// is still verified against its OOB checksum so corruption cannot slip
// into a recovered database.
type Image interface {
	// Params returns the imaged device's geometry.
	Params() Params
	// PageProgrammed reports whether the imaged page holds programmed data.
	PageProgrammed(page int) bool
	// ReadAt fills dst from the image at byte offset addr, verifying the
	// OOB checksum of every page it touches. Erased bytes read as 0xFF.
	ReadAt(dst []byte, addr int64) error
	// ReadPage returns a verified copy of one full page. The second
	// result reports whether the page was programmed (an unprogrammed
	// page reads as all 0xFF).
	ReadPage(page int) ([]byte, bool, error)
}

// ffPad is a shared 0xFF run for hashing the erased tail of short pages.
var ffPad = func() []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = 0xFF
	}
	return b
}()

// PageCRC hashes data extended with 0xFF to pageSize bytes — the page
// content a clean program stores. It is the shared out-of-band checksum
// every backend writes at program time and verifies at read time.
func PageCRC(data []byte, pageSize int) uint32 {
	c := crc32.ChecksumIEEE(data)
	for pad := pageSize - len(data); pad > 0; {
		n := pad
		if n > len(ffPad) {
			n = len(ffPad)
		}
		c = crc32.Update(c, crc32.IEEETable, ffPad[:n])
		pad -= n
	}
	return c
}

// Kind names a backend implementation selectable through the engine's
// options and DSN (backend=sim|file).
type Kind string

// Backend kinds.
const (
	// KindSim is the simulated NAND device with a deterministic cost
	// model (the default; storage/simflash).
	KindSim Kind = "sim"
	// KindFile is the persistent real-file backend (storage/filedev).
	KindFile Kind = "file"
)

// Config selects and parameterizes a backend implementation. The zero
// value means the simulated default.
type Config struct {
	// Kind selects the implementation ("" or KindSim = simulation).
	Kind Kind
	// Path is the on-disk directory of a file backend (one device per
	// directory; a sharded engine appends shardN per shard).
	Path string
	// Fsync, for the file backend, fsyncs dirty segments at every commit
	// point so committed versions survive a host power loss — not just a
	// process crash. Off by default: the torture suites exercise process
	// crash-consistency, where the page-ordering discipline alone
	// suffices.
	Fsync bool
}

// Sim returns the simulated-backend config (the default).
func Sim() Config { return Config{Kind: KindSim} }

// File returns a file-backend config rooted at dir.
func File(dir string, fsync bool) Config {
	return Config{Kind: KindFile, Path: dir, Fsync: fsync}
}

// IsFile reports whether the config selects the file backend.
func (c Config) IsFile() bool { return c.Kind == KindFile }

// Validate checks the config.
func (c Config) Validate() error {
	switch c.Kind {
	case "", KindSim:
		if c.Path != "" {
			return fmt.Errorf("storage: backend %q does not take a path", KindSim)
		}
		if c.Fsync {
			return fmt.Errorf("storage: backend %q does not take fsync", KindSim)
		}
		return nil
	case KindFile:
		if c.Path == "" {
			return fmt.Errorf("storage: backend %q requires a path", KindFile)
		}
		return nil
	}
	return fmt.Errorf("storage: unknown backend kind %q", c.Kind)
}
