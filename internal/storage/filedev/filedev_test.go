package filedev

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/storage"
)

func testParams() storage.Params {
	return storage.Params{
		PageSize:      128,
		PagesPerBlock: 4,
		Blocks:        16,
		ReadFixed:     10 * time.Microsecond,
		ReadPerByte:   10 * time.Nanosecond,
		ProgFixed:     50 * time.Microsecond,
		ProgPerByte:   50 * time.Nanosecond,
		EraseFixed:    500 * time.Microsecond,
	}
}

func newTestDevice(t *testing.T) (*Device, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "dev")
	d, err := Open(dir, testParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, dir
}

// reopen closes d and opens the same directory again.
func reopen(t *testing.T, d *Device, dir string) *Device {
	t.Helper()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	nd, err := Open(dir, testParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

func TestNANDContract(t *testing.T) {
	d, _ := newTestDevice(t)
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := d.ProgramPage(3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := d.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read back mismatch")
	}
	if !d.PageProgrammed(3) || d.PageProgrammed(4) {
		t.Error("programmed flags wrong")
	}
	// Erased bytes read 0xFF without a backing file.
	if err := d.ReadAt(got[:10], 1000); err != nil {
		t.Fatal(err)
	}
	for _, b := range got[:10] {
		if b != 0xFF {
			t.Fatalf("erased byte = %#x, want 0xFF", b)
		}
	}
	// Partial program: the tail reads erased.
	if err := d.ProgramPage(1, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(got[:5], 128); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte{1, 2, 3, 0xFF, 0xFF}) {
		t.Errorf("partial program read % x", got[:5])
	}
	// Program-once until erase.
	if err := d.ProgramPage(3, data); !errors.Is(err, storage.ErrNotErased) {
		t.Errorf("reprogram: %v, want ErrNotErased", err)
	}
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(3, []byte("fresh")); err != nil {
		t.Errorf("program after erase: %v", err)
	}
	// Bounds and sizes.
	if err := d.ProgramPage(64, nil); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("page past end: %v", err)
	}
	if err := d.ProgramPage(2, make([]byte, 129)); !errors.Is(err, storage.ErrPageTooBig) {
		t.Errorf("oversized program: %v", err)
	}
	if err := d.EraseBlock(16); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("block past end: %v", err)
	}
	if err := d.ReadAt(make([]byte, 1), d.Params().TotalBytes()); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := d.ReadPage(0, make([]byte, 5)); err == nil {
		t.Error("short ReadPage buffer accepted")
	}
}

// TestReopenPersistence is the point of the backend: programmed pages,
// their contents and their erased/partial structure all survive a close
// and reopen of the directory.
func TestReopenPersistence(t *testing.T) {
	d, dir := newTestDevice(t)
	data := bytes.Repeat([]byte{0x5A}, 128)
	if err := d.ProgramPage(0, data); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(9, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(4, data); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(1); err != nil { // pages 4..7 back to erased
		t.Fatal(err)
	}

	d = reopen(t, d, dir)
	got := make([]byte, 128)
	if err := d.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("page 0 lost across reopen")
	}
	if err := d.ReadPage(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:7], []byte("partial")) || got[7] != 0xFF {
		t.Errorf("page 9 = % x", got[:8])
	}
	if d.PageProgrammed(4) {
		t.Error("erase of block 1 lost across reopen")
	}
	if err := d.ReadPage(4, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xFF {
		t.Errorf("erased page reads %#x after reopen", got[0])
	}
	// A page erased before close accepts a fresh program after reopen.
	if err := d.ProgramPage(4, []byte("again")); err != nil {
		t.Errorf("program erased page after reopen: %v", err)
	}
	// And the program-once rule survives too.
	if err := d.ProgramPage(0, data); !errors.Is(err, storage.ErrNotErased) {
		t.Errorf("reprogram after reopen: %v", err)
	}
}

// TestReopenReverifiesChecksums: the verified memo is volatile, so a
// byte corrupted behind the device's back while it was closed is caught
// by the stored OOB checksum on the first read after reopen.
func TestReopenReverifiesChecksums(t *testing.T) {
	d, dir := newTestDevice(t)
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0x33}, 128)); err != nil {
		t.Fatal(err)
	}
	// Clean read memoizes verification.
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one stored data byte directly in the segment file.
	seg := filepath.Join(dir, "seg-0000.dat")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0's first data byte sits right after the padded OOB table.
	pagesPerSeg := segBlocks * testParams().PagesPerBlock
	oobBytes := ((pagesPerSeg*oobEntry + oobAlign - 1) / oobAlign) * oobAlign
	raw[oobBytes] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	nd, err := Open(dir, testParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.ReadPage(0, make([]byte, 128)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("silent corruption not caught after reopen: %v", err)
	}
}

// TestTornProgramReadsErasedAfterReopen mirrors the crash-ordering
// guarantee: page data is written before the OOB programmed flag, so a
// crash between the two leaves a page that reads as erased. Simulate the
// crash by clearing the OOB entry the way an interrupted writeOOB would.
func TestTornProgramReadsErasedAfterReopen(t *testing.T) {
	d, dir := newTestDevice(t)
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0x77}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-0000.dat")
	f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, oobEntry), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	nd, err := Open(dir, testParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if nd.PageProgrammed(0) {
		t.Fatal("page with no OOB flag counts as programmed")
	}
	buf := make([]byte, 128)
	if err := nd.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xFF {
		t.Fatalf("torn page reads %#x, want erased 0xFF", buf[0])
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	d, dir := newTestDevice(t)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Blocks = 32
	if _, err := Open(dir, p, false); err == nil {
		t.Fatal("reopen with a different geometry succeeded")
	}
	// Latency-model changes are fine: only the geometry is pinned.
	p = testParams()
	p.ReadFixed = 123 * time.Microsecond
	nd, err := Open(dir, p, false)
	if err != nil {
		t.Fatalf("reopen with a different cost model: %v", err)
	}
	nd.Close()
}

func TestExistsAndWipe(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dev")
	if Exists(dir) {
		t.Fatal("Exists on a missing directory")
	}
	d, err := Open(dir, testParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if !Exists(dir) {
		t.Fatal("Exists after create")
	}
	if err := Wipe(dir); err != nil {
		t.Fatal(err)
	}
	if Exists(dir) {
		t.Fatal("Exists after Wipe")
	}
	if err := Wipe(dir); err != nil {
		t.Fatal("Wipe of a missing directory must be a no-op")
	}
	if err := Wipe(""); err == nil {
		t.Fatal("Wipe of an empty path accepted")
	}
}

func TestTornWriteCaughtByChecksum(t *testing.T) {
	d, dir := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{Seed: 3, TornWrite: 1}, 0))
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0xAB}, 128)); err != nil {
		t.Fatalf("torn program should succeed silently: %v", err)
	}
	if err := d.ReadPage(0, make([]byte, 128)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after torn write, got %v", err)
	}
	// The tear is persistent: a reopen (without the injector) still sees it.
	d = reopen(t, d, dir)
	if err := d.ReadPage(0, make([]byte, 128)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("torn write healed by reopen: %v", err)
	}
	// Erasing the block clears it.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatalf("after erase: %v", err)
	}
}

func TestBitFlipRotsTheFile(t *testing.T) {
	d, dir := newTestDevice(t)
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0x55}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	d.SetInjector(fault.New(&fault.Plan{Seed: 9, BitFlip: 1}, 0))
	if err := d.ReadPage(0, make([]byte, 128)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after bit flip, got %v", err)
	}
	// The rot was written through to the file: it survives a reopen.
	d = reopen(t, d, dir)
	if err := d.ReadPage(0, make([]byte, 128)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("bit rot healed by reopen: %v", err)
	}
}

func TestPowerCutFreezesDevice(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{CutAtOp: 2}, 0))
	if err := d.ProgramPage(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(1, []byte("b")); !errors.Is(err, fault.ErrPowerCut) {
		t.Fatalf("want power cut, got %v", err)
	}
	if d.PageProgrammed(1) {
		t.Fatal("page 1 must not be programmed after the cut")
	}
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, fault.ErrDeviceDead) {
		t.Fatalf("post-cut read: %v", err)
	}
	if err := d.EraseBlock(0); !errors.Is(err, fault.ErrDeviceDead) {
		t.Fatalf("post-cut erase: %v", err)
	}
}

func TestTransientEscalatesToPermanent(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{Seed: 1, ReadTransient: 1}, 0))
	if err := d.ReadAt(make([]byte, 8), 0); !errors.Is(err, fault.ErrPermanent) {
		t.Fatalf("want escalation to permanent, got %v", err)
	}
}

func TestImageRoundTrip(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(0, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(6, bytes.Repeat([]byte{7}, 128)); err != nil {
		t.Fatal(err)
	}
	img, err := d.Image()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the device after the snapshot must not affect the image.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := img.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha" {
		t.Fatalf("image read %q", got)
	}
	if !img.PageProgrammed(6) || img.PageProgrammed(1) {
		t.Fatal("programmed flags wrong in image")
	}
	page, prog, err := img.ReadPage(6)
	if err != nil || !prog || page[0] != 7 {
		t.Fatalf("ReadPage(6) = %v %v %v", page[0], prog, err)
	}
}

func TestStatsAndSync(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dev")
	d, err := Open(dir, testParams(), true) // fsync on
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ProgramPage(0, bytes.Repeat([]byte{1}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := d.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.PageReads != 1 || st.PagesProgrammed != 1 || st.BlockErases != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.BytesRead != 128 || st.BytesProgrammed != 128 {
		t.Errorf("byte stats %+v", st)
	}
	if st.ReadTime != 0 || st.ProgTime != 0 || st.EraseTime != 0 {
		t.Errorf("a real file has no simulated time, got %+v", st)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if d.Stats() != (storage.Stats{}) {
		t.Error("ResetStats did not zero")
	}
	// Close is idempotent.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
