// Package filedev is the persistent real-file storage backend: the same
// NAND-shaped contract as the simulated device, laid out over
// page-aligned os.File segments, with no simulated clock — operations
// run at whatever speed the host disk allows, so benchmarks against this
// backend measure true hardware throughput and a database survives
// process exit.
//
// Layout: one device per directory.
//
//	geometry.json   device geometry, written at creation, validated on reopen
//	seg-NNNN.dat    fixed runs of erase blocks; each segment starts with an
//	                out-of-band table (5 bytes per page: a flag byte plus the
//	                page's CRC32), padded to a 4 KiB boundary, followed by
//	                the page data, page-aligned within the file
//
// Crash consistency mirrors NAND program semantics: ProgramPage writes
// the page data first and its out-of-band entry (programmed flag + CRC
// of the intended content) second, so a host crash between the two
// leaves the page reading as erased — exactly the torn-record state the
// engine's A/B commit protocol already recovers from. EraseBlock only
// zeroes the block's out-of-band region; page data is left in place and
// reads are gated on the programmed flags, as on the simulated device.
// The optional fsync knob makes Sync (called by the engine at commit
// points) flush dirty segments, extending the guarantee from process
// crashes to host power loss.
//
// The fault.Injector contract is honoured in full — torn writes store a
// prefix of the page under the intended checksum, bit flips rot the
// stored bytes on disk, power cuts freeze the device — so the engine's
// fault-torture suites exercise real files with the same plans they run
// against the simulation.
package filedev

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/storage"
)

const (
	// geometryFile pins the device geometry; its presence marks a directory
	// as holding a filedev device.
	geometryFile = "geometry.json"
	// segBlocks is the number of erase blocks per segment file. With the
	// default 2 KiB × 64-page blocks this makes ~32 MiB (sparse) segments.
	segBlocks = 256
	// oobEntry is the out-of-band bytes per page: one flag byte and the
	// little-endian CRC32 of the intended page content.
	oobEntry = 5
	// oobAlign pads the out-of-band table to this boundary so page data
	// starts block-aligned for the host filesystem.
	oobAlign = 4096

	flagProgrammed = 1 << 0
	flagHasCRC     = 1 << 1

	// Transient-fault retry policy: same attempt budget as the simulated
	// device, without the simulated-clock backoff (there is no clock).
	maxFaultRetries = 4
)

// geometry is the JSON document pinned in geometryFile.
type geometry struct {
	Version       int   `json:"version"`
	PageSize      int   `json:"page_size"`
	PagesPerBlock int   `json:"pages_per_block"`
	Blocks        int   `json:"blocks"`
	SegmentBlocks int   `json:"segment_blocks"`
	ReadFixed     int64 `json:"read_fixed_ns"`
	ReadPerByte   int64 `json:"read_per_byte_ns"`
	ProgFixed     int64 `json:"prog_fixed_ns"`
	ProgPerByte   int64 `json:"prog_per_byte_ns"`
	EraseFixed    int64 `json:"erase_fixed_ns"`
}

// Device is a file-backed storage.Backend. It is not safe for concurrent
// use (the engine's device gate serializes access).
type Device struct {
	dir   string
	p     storage.Params
	fsync bool

	segs        []*os.File // lazily opened segment files
	segDirty    []bool     // segments written since the last Sync
	pagesPerSeg int
	oobBytes    int // padded out-of-band table size per segment

	// Authoritative in-memory out-of-band state, write-through to the
	// segment files. verified is volatile (reset on open), so the first
	// read of every page after a reopen re-checks its stored checksum.
	programmed []bool
	hasCRC     []bool
	crc        []uint32
	verified   []bool

	scratch []byte // one page, for verified partial reads
	stats   storage.Stats

	inj       *fault.Injector
	integrity bool
	closed    bool
}

// Exists reports whether dir holds a filedev device (its geometry file).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, geometryFile))
	return err == nil
}

// Wipe removes a device directory and everything in it, so the next Open
// starts from a fully erased device. Missing directories are fine.
func Wipe(dir string) error {
	if dir == "" {
		return errors.New("filedev: empty path")
	}
	return os.RemoveAll(dir)
}

// Open opens the device in dir, creating it (and the directory) when the
// geometry file is absent. An existing device must match p's geometry
// exactly. fsync controls whether Sync flushes dirty segments to stable
// storage.
func Open(dir string, p storage.Params, fsync bool) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, errors.New("filedev: empty path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := geometry{
		Version:       1,
		PageSize:      p.PageSize,
		PagesPerBlock: p.PagesPerBlock,
		Blocks:        p.Blocks,
		SegmentBlocks: segBlocks,
		ReadFixed:     int64(p.ReadFixed),
		ReadPerByte:   int64(p.ReadPerByte),
		ProgFixed:     int64(p.ProgFixed),
		ProgPerByte:   int64(p.ProgPerByte),
		EraseFixed:    int64(p.EraseFixed),
	}
	gpath := filepath.Join(dir, geometryFile)
	raw, err := os.ReadFile(gpath)
	switch {
	case err == nil:
		var have geometry
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("filedev: corrupt %s: %w", gpath, err)
		}
		if have.PageSize != want.PageSize || have.PagesPerBlock != want.PagesPerBlock ||
			have.Blocks != want.Blocks || have.SegmentBlocks != want.SegmentBlocks {
			return nil, fmt.Errorf("filedev: %s geometry %d/%d/%d×%d does not match requested %d/%d/%d×%d",
				dir, have.PageSize, have.PagesPerBlock, have.Blocks, have.SegmentBlocks,
				want.PageSize, want.PagesPerBlock, want.Blocks, want.SegmentBlocks)
		}
	case errors.Is(err, os.ErrNotExist):
		blob, merr := json.MarshalIndent(want, "", "  ")
		if merr != nil {
			return nil, merr
		}
		if err := writeFileSync(gpath, blob, fsync); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	pagesPerSeg := segBlocks * p.PagesPerBlock
	d := &Device{
		dir:         dir,
		p:           p,
		fsync:       fsync,
		segs:        make([]*os.File, (p.Blocks+segBlocks-1)/segBlocks),
		segDirty:    make([]bool, (p.Blocks+segBlocks-1)/segBlocks),
		pagesPerSeg: pagesPerSeg,
		oobBytes:    ((pagesPerSeg*oobEntry + oobAlign - 1) / oobAlign) * oobAlign,
		programmed:  make([]bool, p.PageCount()),
		hasCRC:      make([]bool, p.PageCount()),
		crc:         make([]uint32, p.PageCount()),
		verified:    make([]bool, p.PageCount()),
		scratch:     make([]byte, p.PageSize),
		integrity:   true,
	}
	if err := d.loadOOB(); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// writeFileSync writes path atomically-enough for a fresh file, fsyncing
// when durable is set.
func writeFileSync(path string, blob []byte, durable bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if durable {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// loadOOB reads every existing segment's out-of-band table into the
// in-memory flag arrays. Missing segment files are fully erased.
func (d *Device) loadOOB() error {
	buf := make([]byte, d.oobBytes)
	for seg := range d.segs {
		path := d.segPath(seg)
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return err
		}
		d.segs[seg] = f
		n, err := f.ReadAt(buf, 0)
		if err != nil && n < d.segPages(seg)*oobEntry {
			// A shorter-than-OOB segment can only happen if creation was
			// interrupted before any page was programmed: treat the
			// missing tail as erased.
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
		}
		base := seg * d.pagesPerSeg
		for i := 0; i < d.segPages(seg); i++ {
			e := buf[i*oobEntry : i*oobEntry+oobEntry]
			if e[0]&flagProgrammed != 0 {
				d.programmed[base+i] = true
			}
			if e[0]&flagHasCRC != 0 {
				d.hasCRC[base+i] = true
				d.crc[base+i] = binary.LittleEndian.Uint32(e[1:])
			}
		}
	}
	return nil
}

func (d *Device) segPath(seg int) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%04d.dat", seg))
}

// segPages reports how many pages segment seg covers (the last segment
// may be partial).
func (d *Device) segPages(seg int) int {
	first := seg * d.pagesPerSeg
	n := d.p.PageCount() - first
	if n > d.pagesPerSeg {
		n = d.pagesPerSeg
	}
	return n
}

// segFile returns the (lazily created) file for segment seg.
func (d *Device) segFile(seg int) (*os.File, error) {
	if f := d.segs[seg]; f != nil {
		return f, nil
	}
	f, err := os.OpenFile(d.segPath(seg), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	d.segs[seg] = f
	return f, nil
}

// pageOffset returns the segment index and byte offset of a page's data.
func (d *Device) pageOffset(page int) (seg int, off int64) {
	seg = page / d.pagesPerSeg
	within := page % d.pagesPerSeg
	return seg, int64(d.oobBytes) + int64(within)*int64(d.p.PageSize)
}

// oobOffset returns the byte offset of a page's out-of-band entry within
// its segment file.
func (d *Device) oobOffset(page int) int64 {
	return int64(page%d.pagesPerSeg) * oobEntry
}

// writeOOB write-throughs one page's out-of-band entry.
func (d *Device) writeOOB(page int) error {
	seg := page / d.pagesPerSeg
	f, err := d.segFile(seg)
	if err != nil {
		return err
	}
	var e [oobEntry]byte
	if d.programmed[page] {
		e[0] |= flagProgrammed
	}
	if d.hasCRC[page] {
		e[0] |= flagHasCRC
		binary.LittleEndian.PutUint32(e[1:], d.crc[page])
	}
	if _, err := f.WriteAt(e[:], d.oobOffset(page)); err != nil {
		return err
	}
	d.segDirty[seg] = true
	return nil
}

// Params returns the device geometry and cost model.
func (d *Device) Params() storage.Params { return d.p }

// Stats returns a snapshot of the operation counters. The time fields
// stay zero: a real file has no simulated cost model.
func (d *Device) Stats() storage.Stats { return d.stats }

// ResetStats zeroes the counters (the stored content is untouched).
func (d *Device) ResetStats() { d.stats = storage.Stats{} }

// SetInjector installs a fault injector consulted before every read,
// program and erase. Pass nil to remove it.
func (d *Device) SetInjector(inj *fault.Injector) { d.inj = inj }

// Injector returns the installed fault injector (possibly nil).
func (d *Device) Injector() *fault.Injector { return d.inj }

// SetIntegrity switches the per-page OOB checksums on or off.
func (d *Device) SetIntegrity(on bool) { d.integrity = on }

// injectOp consults the fault plan for one device operation, retrying
// transient faults up to the shared attempt budget. Unlike the simulated
// device there is no clock to charge backoff to; retries are immediate.
func (d *Device) injectOp(op fault.Op) error {
	if d.inj == nil {
		return nil
	}
	err := d.inj.BeforeOp(op, 0)
	for attempt := 0; fault.IsTransient(err) && attempt < maxFaultRetries; attempt++ {
		d.inj.NoteRetry(op)
		err = d.inj.BeforeOp(op, 0)
	}
	if fault.IsTransient(err) {
		return fmt.Errorf("%w: %d retries exhausted: %v", fault.ErrPermanent, maxFaultRetries, err)
	}
	return err
}

// ReadAt fills dst with the bytes at byte offset addr. Each distinct
// page touched is read and verified whole, like the NAND it models.
func (d *Device) ReadAt(dst []byte, addr int64) error {
	if addr < 0 || addr+int64(len(dst)) > d.p.TotalBytes() {
		return fmt.Errorf("%w: read [%d, %d) of device [0, %d)", storage.ErrOutOfRange, addr, addr+int64(len(dst)), d.p.TotalBytes())
	}
	ps := int64(d.p.PageSize)
	for len(dst) > 0 {
		page := int(addr / ps)
		off := int(addr % ps)
		n := d.p.PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if err := d.injectOp(fault.OpRead); err != nil {
			return err
		}
		d.stats.PageReads++
		d.stats.BytesRead += int64(n)
		if err := d.loadVerified(page, d.scratch); err != nil {
			return err
		}
		copy(dst[:n], d.scratch[off:off+n])
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}

// ReadPage reads one full page into dst (which must be PageSize long).
func (d *Device) ReadPage(page int, dst []byte) error {
	if page < 0 || page >= d.p.PageCount() {
		return fmt.Errorf("%w: page %d of %d (block %d of %d)", storage.ErrOutOfRange, page, d.p.PageCount(), page/d.p.PagesPerBlock, d.p.Blocks)
	}
	if len(dst) != d.p.PageSize {
		return fmt.Errorf("filedev: ReadPage buffer %d, want %d", len(dst), d.p.PageSize)
	}
	if err := d.injectOp(fault.OpRead); err != nil {
		return err
	}
	d.stats.PageReads++
	d.stats.BytesRead += int64(d.p.PageSize)
	return d.loadVerified(page, dst)
}

// loadVerified reads one page's stored bytes into buf (PageSize long),
// applying the injector's bit-rot effect and the lazy checksum check.
// Unprogrammed pages fill buf with 0xFF without touching the file.
func (d *Device) loadVerified(page int, buf []byte) error {
	if !d.programmed[page] {
		for i := range buf {
			buf[i] = 0xFF
		}
		return nil
	}
	seg, off := d.pageOffset(page)
	f, err := d.segFile(seg)
	if err != nil {
		return err
	}
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("filedev: page %d: %w", page, err)
	}
	if fo, mask := d.inj.FlipBit(d.p.PageSize); mask != 0 {
		// Persistent stored-bit rot: flip the byte on disk so the damage
		// survives cache drops and reopens, and force re-verification.
		buf[fo] ^= mask
		if _, err := f.WriteAt(buf[fo:fo+1], off+int64(fo)); err != nil {
			return fmt.Errorf("filedev: page %d: %w", page, err)
		}
		d.segDirty[seg] = true
		d.verified[page] = false
	}
	if !d.integrity || !d.hasCRC[page] || d.verified[page] {
		return nil
	}
	if crc32.ChecksumIEEE(buf) != d.crc[page] {
		d.inj.NoteChecksum()
		return fmt.Errorf("%w: page %d (block %d, page %d in block)", storage.ErrCorrupt, page, page/d.p.PagesPerBlock, page%d.p.PagesPerBlock)
	}
	d.verified[page] = true
	return nil
}

// ProgramPage writes data (at most one page) to the given page. The page
// data lands in the file before the out-of-band programmed flag, so a
// host crash between the two writes leaves the page erased — the
// torn-record state the commit protocol recovers from.
func (d *Device) ProgramPage(page int, data []byte) error {
	if page < 0 || page >= d.p.PageCount() {
		return fmt.Errorf("%w: page %d of %d (block %d of %d)", storage.ErrOutOfRange, page, d.p.PageCount(), page/d.p.PagesPerBlock, d.p.Blocks)
	}
	if len(data) > d.p.PageSize {
		return fmt.Errorf("%w: %d > %d at page %d (block %d)", storage.ErrPageTooBig, len(data), d.p.PageSize, page, page/d.p.PagesPerBlock)
	}
	if err := d.injectOp(fault.OpProgram); err != nil {
		return err
	}
	if d.programmed[page] {
		return fmt.Errorf("%w: page %d (block %d, page %d in block)", storage.ErrNotErased, page, page/d.p.PagesPerBlock, page%d.p.PagesPerBlock)
	}
	stored := data
	torn := false
	if n := d.inj.TornBytes(len(data)); n >= 0 {
		stored = data[:n]
		torn = true
	}
	// Stage the full page (stored prefix + erased 0xFF tail) and write it
	// in one call; recycled pages may hold stale bytes from before the
	// last block erase.
	copy(d.scratch, stored)
	for i := len(stored); i < d.p.PageSize; i++ {
		d.scratch[i] = 0xFF
	}
	seg, off := d.pageOffset(page)
	f, err := d.segFile(seg)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(d.scratch, off); err != nil {
		return fmt.Errorf("filedev: program page %d: %w", page, err)
	}
	d.segDirty[seg] = true
	d.programmed[page] = true
	if d.integrity {
		// OOB checksum of the page as it was *meant* to be stored.
		d.crc[page] = storage.PageCRC(data, d.p.PageSize)
		d.hasCRC[page] = true
		d.verified[page] = !torn
	} else {
		d.hasCRC[page] = false
		d.verified[page] = false
	}
	if err := d.writeOOB(page); err != nil {
		return err
	}
	d.stats.PagesProgrammed++
	d.stats.BytesProgrammed += int64(len(data))
	return nil
}

// EraseBlock resets every page of the block to the erased state by
// zeroing the block's out-of-band entries; the page data stays in place
// (reads are gated on the programmed flags), matching the simulated
// device's buffer-recycling erase.
func (d *Device) EraseBlock(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= d.p.Blocks {
		return fmt.Errorf("%w: block %d of %d", storage.ErrOutOfRange, blockIdx, d.p.Blocks)
	}
	if err := d.injectOp(fault.OpErase); err != nil {
		return err
	}
	first := blockIdx * d.p.PagesPerBlock
	dirty := false
	for page := first; page < first+d.p.PagesPerBlock; page++ {
		if d.programmed[page] || d.hasCRC[page] {
			dirty = true
		}
		d.programmed[page] = false
		d.hasCRC[page] = false
		d.verified[page] = false
	}
	if dirty {
		// One contiguous zero run over the block's OOB entries (a block
		// never spans segments: segments are whole numbers of blocks).
		seg := first / d.pagesPerSeg
		f, err := d.segFile(seg)
		if err != nil {
			return err
		}
		zero := make([]byte, d.p.PagesPerBlock*oobEntry)
		if _, err := f.WriteAt(zero, d.oobOffset(first)); err != nil {
			return fmt.Errorf("filedev: erase block %d: %w", blockIdx, err)
		}
		d.segDirty[seg] = true
	}
	d.stats.BlockErases++
	return nil
}

// PageProgrammed reports whether the page has been programmed since the
// last erase of its block.
func (d *Device) PageProgrammed(page int) bool {
	if page < 0 || page >= d.p.PageCount() {
		return false
	}
	return d.programmed[page]
}

// Image snapshots the device's persistent state into host memory.
// Forensic reads bypass the injector and the stats — this is the
// recovery path looking at what the files hold.
func (d *Device) Image() (storage.Image, error) {
	img := storage.NewMemImage(d.p)
	ppb := d.p.PagesPerBlock
	for blk := 0; blk < d.p.Blocks; blk++ {
		first := blk * ppb
		any := false
		for page := first; page < first+ppb; page++ {
			if d.programmed[page] {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		data := make([]byte, ppb*d.p.PageSize)
		programmed := make([]bool, ppb)
		crc := make([]uint32, ppb)
		hasCRC := make([]bool, ppb)
		for i := 0; i < ppb; i++ {
			page := first + i
			programmed[i] = d.programmed[page]
			crc[i] = d.crc[page]
			hasCRC[i] = d.hasCRC[page]
			if !d.programmed[page] {
				continue
			}
			seg, off := d.pageOffset(page)
			f, err := d.segFile(seg)
			if err != nil {
				return nil, err
			}
			if _, err := f.ReadAt(data[i*d.p.PageSize:(i+1)*d.p.PageSize], off); err != nil {
				return nil, fmt.Errorf("filedev: image page %d: %w", page, err)
			}
		}
		img.SetBlock(blk, data, programmed, crc, hasCRC)
	}
	return img, nil
}

// Sync flushes dirty segments to stable storage when the device was
// opened with fsync on; otherwise it is a no-op and durability covers
// process crashes only.
func (d *Device) Sync() error {
	if !d.fsync {
		return nil
	}
	for seg, dirty := range d.segDirty {
		if !dirty || d.segs[seg] == nil {
			continue
		}
		if err := d.segs[seg].Sync(); err != nil {
			return err
		}
		d.segDirty[seg] = false
	}
	return nil
}

// Close releases the segment file handles. The device must not be used
// afterwards.
func (d *Device) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	for i, f := range d.segs {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		d.segs[i] = nil
	}
	return first
}
