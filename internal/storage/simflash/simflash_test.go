package simflash

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/storage"
)

func testParams() storage.Params {
	return storage.Params{
		PageSize:      128,
		PagesPerBlock: 4,
		Blocks:        16,
		ReadFixed:     10 * time.Microsecond,
		ReadPerByte:   10 * time.Nanosecond,
		ProgFixed:     50 * time.Microsecond,
		ProgPerByte:   50 * time.Nanosecond,
		EraseFixed:    500 * time.Microsecond,
	}
}

func newTestDevice(t *testing.T) (*Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	d, err := New(testParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	return d, clock
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := testParams()
	bad.PageSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero page size accepted")
	}
	neg := testParams()
	neg.EraseFixed = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(storage.Params{}, sim.NewClock()); err == nil {
		t.Error("New with invalid params must fail")
	}
	if _, err := New(testParams(), nil); err == nil {
		t.Error("New with nil clock must fail")
	}
	p := testParams()
	if p.PageCount() != 64 {
		t.Errorf("PageCount = %d", p.PageCount())
	}
	if p.TotalBytes() != 64*128 {
		t.Errorf("TotalBytes = %d", p.TotalBytes())
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d, _ := newTestDevice(t)
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := d.ProgramPage(3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := d.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read back mismatch")
	}
	if !d.PageProgrammed(3) || d.PageProgrammed(4) {
		t.Error("programmed flags wrong")
	}
}

func TestErasedReadsFF(t *testing.T) {
	d, _ := newTestDevice(t)
	got := make([]byte, 10)
	if err := d.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatalf("erased byte = %#x, want 0xFF", b)
		}
	}
}

func TestNoReprogramWithoutErase(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(0, []byte{2}); !errors.Is(err, storage.ErrNotErased) {
		t.Errorf("reprogram: %v, want ErrNotErased", err)
	}
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(0, []byte{2}); err != nil {
		t.Errorf("program after erase: %v", err)
	}
}

func TestPartialPageProgram(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(1, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := d.ReadAt(got, 128); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 0xFF, 0xFF}
	if !bytes.Equal(got, want) {
		t.Errorf("partial program read % x, want % x", got, want)
	}
	if err := d.ProgramPage(1, bytes.Repeat([]byte{0}, 200)); !errors.Is(err, storage.ErrPageTooBig) {
		t.Errorf("oversized program: %v", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ReadAt(make([]byte, 1), d.Params().TotalBytes()); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := d.ReadAt(make([]byte, 1), -1); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("negative read: %v", err)
	}
	if err := d.ProgramPage(-1, nil); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("negative page: %v", err)
	}
	if err := d.ProgramPage(64, nil); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("page past end: %v", err)
	}
	if err := d.EraseBlock(16); !errors.Is(err, storage.ErrOutOfRange) {
		t.Errorf("block past end: %v", err)
	}
	if err := d.ReadPage(0, make([]byte, 5)); err == nil {
		t.Error("short ReadPage buffer accepted")
	}
}

func TestCostAccounting(t *testing.T) {
	d, clock := newTestDevice(t)
	p := d.Params()

	start := clock.Now()
	if err := d.ProgramPage(0, bytes.Repeat([]byte{1}, 128)); err != nil {
		t.Fatal(err)
	}
	progCost := p.ProgFixed + 128*p.ProgPerByte
	if got := clock.Span(start); got != progCost {
		t.Errorf("program cost %v, want %v", got, progCost)
	}

	start = clock.Now()
	buf := make([]byte, 128)
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	readCost := p.ReadFixed + 128*p.ReadPerByte
	if got := clock.Span(start); got != readCost {
		t.Errorf("read cost %v, want %v", got, readCost)
	}
	if progCost <= readCost {
		t.Error("profile must make writes more expensive than reads")
	}

	start = clock.Now()
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if got := clock.Span(start); got != p.EraseFixed {
		t.Errorf("erase cost %v, want %v", got, p.EraseFixed)
	}

	st := d.Stats()
	if st.PageReads != 1 || st.PagesProgrammed != 1 || st.BlockErases != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.BytesRead != 128 || st.BytesProgrammed != 128 {
		t.Errorf("byte stats %+v", st)
	}
	d.ResetStats()
	if d.Stats() != (storage.Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestStatsSub(t *testing.T) {
	a := storage.Stats{PageReads: 10, BytesRead: 100, ReadTime: time.Second}
	b := storage.Stats{PageReads: 4, BytesRead: 40, ReadTime: 300 * time.Millisecond}
	got := a.Sub(b)
	if got.PageReads != 6 || got.BytesRead != 60 || got.ReadTime != 700*time.Millisecond {
		t.Errorf("Sub = %+v", got)
	}
}

func TestReadAtSpansPages(t *testing.T) {
	d, _ := newTestDevice(t)
	page0 := bytes.Repeat([]byte{0x11}, 128)
	page1 := bytes.Repeat([]byte{0x22}, 128)
	if err := d.ProgramPage(0, page0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(1, page1); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	got := make([]byte, 20)
	if err := d.ReadAt(got, 120); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{0x11}, 8), bytes.Repeat([]byte{0x22}, 12)...)
	if !bytes.Equal(got, want) {
		t.Errorf("cross-page read mismatch")
	}
	if d.Stats().PageReads != 2 {
		t.Errorf("cross-page read charged %d page accesses, want 2", d.Stats().PageReads)
	}
}
