// Package simflash simulates the smart USB device's external NAND flash
// store (Figure 2 of the GhostDB paper): a gigabyte-class array of pages
// grouped into erase blocks, where
//
//   - reads are page-granular and cheap,
//   - programs (writes) cost 3–10× a read and a page can be programmed only
//     once between erases (writes in place are precluded),
//   - erases work on whole blocks and are the most expensive operation.
//
// Every operation charges its latency to the shared simulated clock, so
// higher layers measure query cost in deterministic device time. Blocks are
// materialized lazily, so a simulated multi-gigabyte device only consumes
// host memory for the pages actually programmed.
//
// The device also models NAND integrity: each programmed page carries a
// CRC32 checksum in its out-of-band area, computed over the intended page
// content at program time and verified (once, lazily) when the page is
// read back. Torn writes and bit flips injected through a fault.Injector
// surface as storage.ErrCorrupt with the failing page address. The Image
// is a free host-side deep copy of the persistent state — what survives a
// power cut — used by the recovery path.
//
// Device is the storage.Backend the engine uses by default; it is the
// reference implementation of the backend contract.
package simflash

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/storage"
)

// Transient-fault retry policy: capped exponential backoff, charged to
// the simulated clock (the device firmware re-issues the operation).
const (
	maxFaultRetries  = 4
	retryBackoffBase = 100 * time.Microsecond
	retryBackoffCap  = 800 * time.Microsecond
)

// Device is a simulated NAND flash chip. It is not safe for concurrent use.
type Device struct {
	p     storage.Params
	clock *sim.Clock
	// blocks[i] == nil means block i is fully erased and unmaterialized.
	blocks []*block
	stats  storage.Stats

	inj       *fault.Injector // nil = fault-free
	integrity bool            // per-page OOB checksums (on by default)
}

type block struct {
	data       []byte // PagesPerBlock * PageSize
	programmed []bool // per page
	// Out-of-band area: CRC32 of the full intended page content, set at
	// program time when integrity is on. verified marks pages whose
	// stored bytes have already been checked against the OOB checksum,
	// so steady-state reads skip the host-side hash.
	crc      []uint32
	hasCRC   []bool
	verified []bool
}

// New returns a device with the given geometry, charging to clock.
func New(p storage.Params, clock *sim.Clock) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, errors.New("simflash: nil clock")
	}
	return &Device{p: p, clock: clock, blocks: make([]*block, p.Blocks), integrity: true}, nil
}

// Params returns the device geometry and cost model.
func (d *Device) Params() storage.Params { return d.p }

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() storage.Stats { return d.stats }

// ResetStats zeroes the counters (the flash content is untouched).
func (d *Device) ResetStats() { d.stats = storage.Stats{} }

// SetInjector installs a fault injector consulted before every read,
// program and erase. Pass nil to remove it.
func (d *Device) SetInjector(inj *fault.Injector) { d.inj = inj }

// Injector returns the installed fault injector (possibly nil).
func (d *Device) Injector() *fault.Injector { return d.inj }

// SetIntegrity switches the per-page OOB checksums on or off. Pages
// programmed while integrity is off carry no checksum and are never
// verified.
func (d *Device) SetIntegrity(on bool) { d.integrity = on }

// Sync is a no-op: the simulation has no host-durability boundary.
func (d *Device) Sync() error { return nil }

// Close is a no-op: the simulation holds no external resources.
func (d *Device) Close() error { return nil }

// injectOp consults the fault plan for one device operation, retrying
// transient faults with capped exponential backoff charged to the
// simulated clock. Transient faults that survive every retry escalate to
// a permanent error.
func (d *Device) injectOp(op fault.Op) error {
	if d.inj == nil {
		return nil
	}
	err := d.inj.BeforeOp(op, d.clock.Now())
	for attempt := 0; fault.IsTransient(err) && attempt < maxFaultRetries; attempt++ {
		backoff := retryBackoffBase << attempt
		if backoff > retryBackoffCap {
			backoff = retryBackoffCap
		}
		d.clock.Advance(backoff)
		d.inj.NoteRetry(op)
		err = d.inj.BeforeOp(op, d.clock.Now())
	}
	if fault.IsTransient(err) {
		return fmt.Errorf("%w: %d retries exhausted: %v", fault.ErrPermanent, maxFaultRetries, err)
	}
	return err
}

// ReadAt fills dst with the bytes at byte offset addr. Each distinct page
// touched charges one page access plus the per-byte streaming cost. Erased
// (never programmed) bytes read as 0xFF, matching NAND behaviour.
func (d *Device) ReadAt(dst []byte, addr int64) error {
	if addr < 0 || addr+int64(len(dst)) > d.p.TotalBytes() {
		return fmt.Errorf("%w: read [%d, %d) of device [0, %d)", storage.ErrOutOfRange, addr, addr+int64(len(dst)), d.p.TotalBytes())
	}
	ps := int64(d.p.PageSize)
	for len(dst) > 0 {
		page := addr / ps
		off := int(addr % ps)
		n := d.p.PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if err := d.injectOp(fault.OpRead); err != nil {
			return err
		}
		d.chargeRead(n)
		if err := d.verifyPage(int(page)); err != nil {
			return err
		}
		d.copyOut(dst[:n], int(page), off)
		dst = dst[n:]
		addr += int64(n)
	}
	return nil
}

// ReadPage reads one full page into dst (which must be PageSize long).
func (d *Device) ReadPage(page int, dst []byte) error {
	if page < 0 || page >= d.p.PageCount() {
		return fmt.Errorf("%w: page %d of %d (block %d of %d)", storage.ErrOutOfRange, page, d.p.PageCount(), page/d.p.PagesPerBlock, d.p.Blocks)
	}
	if len(dst) != d.p.PageSize {
		return fmt.Errorf("simflash: ReadPage buffer %d, want %d", len(dst), d.p.PageSize)
	}
	if err := d.injectOp(fault.OpRead); err != nil {
		return err
	}
	d.chargeRead(d.p.PageSize)
	if err := d.verifyPage(page); err != nil {
		return err
	}
	d.copyOut(dst, page, 0)
	return nil
}

// ProgramPage writes data (at most one page) to the given page. The page
// must be in the erased state; NAND forbids reprogramming. The OOB CRC is
// computed over the full intended page content (data plus the 0xFF tail),
// so a torn write — the injector truncating the stored prefix — is caught
// by the next verified read.
func (d *Device) ProgramPage(page int, data []byte) error {
	if page < 0 || page >= d.p.PageCount() {
		return fmt.Errorf("%w: page %d of %d (block %d of %d)", storage.ErrOutOfRange, page, d.p.PageCount(), page/d.p.PagesPerBlock, d.p.Blocks)
	}
	if len(data) > d.p.PageSize {
		return fmt.Errorf("%w: %d > %d at page %d (block %d)", storage.ErrPageTooBig, len(data), d.p.PageSize, page, page/d.p.PagesPerBlock)
	}
	if err := d.injectOp(fault.OpProgram); err != nil {
		return err
	}
	b := d.materialize(page / d.p.PagesPerBlock)
	slot := page % d.p.PagesPerBlock
	if b.programmed[slot] {
		return fmt.Errorf("%w: page %d (block %d, page %d in block)", storage.ErrNotErased, page, page/d.p.PagesPerBlock, slot)
	}
	b.programmed[slot] = true
	stored := data
	torn := false
	if n := d.inj.TornBytes(len(data)); n >= 0 {
		stored = data[:n]
		torn = true
	}
	pageStart := slot * d.p.PageSize
	copy(b.data[pageStart:], stored)
	// Recycled blocks may hold stale bytes past the programmed prefix;
	// pad the page tail so it reads back as erased NAND. A torn write
	// leaves the tail beyond the stored prefix erased too.
	for i := pageStart + len(stored); i < pageStart+d.p.PageSize; i++ {
		b.data[i] = 0xFF
	}
	if d.integrity {
		// OOB checksum of the page as it was *meant* to be stored.
		b.crc[slot] = storage.PageCRC(data, d.p.PageSize)
		b.hasCRC[slot] = true
		// A clean program is trivially verified; a torn one is not.
		b.verified[slot] = !torn
	}
	d.stats.PagesProgrammed++
	d.stats.BytesProgrammed += int64(len(data))
	t := d.p.ProgFixed + time.Duration(len(data))*d.p.ProgPerByte
	d.stats.ProgTime += t
	d.clock.Advance(t)
	return nil
}

// EraseBlock resets every page of the block to the erased (0xFF) state.
// A materialized block keeps its host allocation: only the per-page
// programmed flags are cleared (reads of unprogrammed pages are gated in
// copyOut), so scratch-heavy workloads recycle block buffers instead of
// reallocating and re-filling them on every query. This changes host
// memory behaviour only; the simulated erase charge is identical.
func (d *Device) EraseBlock(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= d.p.Blocks {
		return fmt.Errorf("%w: block %d of %d", storage.ErrOutOfRange, blockIdx, d.p.Blocks)
	}
	if err := d.injectOp(fault.OpErase); err != nil {
		return err
	}
	if b := d.blocks[blockIdx]; b != nil {
		for i := range b.programmed {
			b.programmed[i] = false
			b.hasCRC[i] = false
			b.verified[i] = false
		}
	}
	d.stats.BlockErases++
	d.stats.EraseTime += d.p.EraseFixed
	d.clock.Advance(d.p.EraseFixed)
	return nil
}

// PageProgrammed reports whether the page has been programmed since the
// last erase of its block.
func (d *Device) PageProgrammed(page int) bool {
	b := d.blocks[page/d.p.PagesPerBlock]
	if b == nil {
		return false
	}
	return b.programmed[page%d.p.PagesPerBlock]
}

// Image snapshots the device's persistent state. Only materialized
// blocks are copied, so the host cost is proportional to the data
// actually programmed.
func (d *Device) Image() (storage.Image, error) {
	img := storage.NewMemImage(d.p)
	for i, b := range d.blocks {
		if b == nil {
			continue
		}
		img.SetBlock(i,
			append([]byte(nil), b.data...),
			append([]bool(nil), b.programmed...),
			append([]uint32(nil), b.crc...),
			append([]bool(nil), b.hasCRC...),
		)
	}
	return img, nil
}

func (d *Device) chargeRead(n int) {
	d.stats.PageReads++
	d.stats.BytesRead += int64(n)
	t := d.p.ReadFixed + time.Duration(n)*d.p.ReadPerByte
	d.stats.ReadTime += t
	d.clock.Advance(t)
}

// verifyPage applies the injector's bit-rot effect and then checks the
// page's stored content against its OOB checksum. Verification is lazy —
// once a page passes it is not re-hashed until something mutates it — so
// the steady-state read path pays one pointer test per page access.
func (d *Device) verifyPage(page int) error {
	b := d.blocks[page/d.p.PagesPerBlock]
	if b == nil {
		return nil
	}
	slot := page % d.p.PagesPerBlock
	if !b.programmed[slot] {
		return nil
	}
	start := slot * d.p.PageSize
	if off, mask := d.inj.FlipBit(d.p.PageSize); mask != 0 {
		// Persistent stored-bit rot: the flip stays until the block is
		// erased, and forces the page through verification again.
		b.data[start+off] ^= mask
		b.verified[slot] = false
	}
	if !d.integrity || !b.hasCRC[slot] || b.verified[slot] {
		return nil
	}
	if crc32.ChecksumIEEE(b.data[start:start+d.p.PageSize]) != b.crc[slot] {
		d.inj.NoteChecksum()
		return fmt.Errorf("%w: page %d (block %d, page %d in block)", storage.ErrCorrupt, page, page/d.p.PagesPerBlock, slot)
	}
	b.verified[slot] = true
	return nil
}

func (d *Device) copyOut(dst []byte, page, off int) {
	b := d.blocks[page/d.p.PagesPerBlock]
	slot := page % d.p.PagesPerBlock
	if b == nil || !b.programmed[slot] {
		for i := range dst {
			dst[i] = 0xFF
		}
		return
	}
	start := slot*d.p.PageSize + off
	copy(dst, b.data[start:start+len(dst)])
}

func (d *Device) materialize(blockIdx int) *block {
	b := d.blocks[blockIdx]
	if b == nil {
		// No 0xFF fill: reads are gated on the programmed flags, and
		// ProgramPage pads the tail of each page it writes.
		b = &block{
			data:       make([]byte, d.p.PagesPerBlock*d.p.PageSize),
			programmed: make([]bool, d.p.PagesPerBlock),
			crc:        make([]uint32, d.p.PagesPerBlock),
			hasCRC:     make([]bool, d.p.PagesPerBlock),
			verified:   make([]bool, d.p.PagesPerBlock),
		}
		d.blocks[blockIdx] = b
	}
	return b
}
