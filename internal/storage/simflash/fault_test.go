package simflash

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/storage"
)

// Satellite: the raw sentinel errors carry page/block addresses.

func TestSentinelErrorsCarryAddresses(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	err := d.ProgramPage(5, []byte("y"))
	if !errors.Is(err, storage.ErrNotErased) {
		t.Fatalf("want ErrNotErased, got %v", err)
	}
	if !strings.Contains(err.Error(), "page 5") || !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("ErrNotErased lacks addresses: %v", err)
	}

	err = d.ProgramPage(2, make([]byte, 129))
	if !errors.Is(err, storage.ErrPageTooBig) {
		t.Fatalf("want ErrPageTooBig, got %v", err)
	}
	if !strings.Contains(err.Error(), "page 2") || !strings.Contains(err.Error(), "block 0") {
		t.Fatalf("ErrPageTooBig lacks addresses: %v", err)
	}

	err = d.ProgramPage(999, []byte("x"))
	if !errors.Is(err, storage.ErrOutOfRange) || !strings.Contains(err.Error(), "page 999") {
		t.Fatalf("program OOB: %v", err)
	}
	err = d.ReadPage(-1, make([]byte, 128))
	if !errors.Is(err, storage.ErrOutOfRange) || !strings.Contains(err.Error(), "page -1") {
		t.Fatalf("read OOB: %v", err)
	}
	err = d.ReadAt(make([]byte, 16), d.Params().TotalBytes())
	if !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("ReadAt OOB: %v", err)
	}
	err = d.EraseBlock(16)
	if !errors.Is(err, storage.ErrOutOfRange) || !strings.Contains(err.Error(), "block 16") {
		t.Fatalf("erase OOB: %v", err)
	}
}

func TestTornWriteCaughtByChecksum(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{Seed: 3, TornWrite: 1}, 0))
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := d.ProgramPage(0, data); err != nil {
		t.Fatalf("torn program should succeed silently: %v", err)
	}
	err := d.ReadPage(0, make([]byte, 128))
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after torn write, got %v", err)
	}
	if !strings.Contains(err.Error(), "page 0") {
		t.Fatalf("ErrCorrupt lacks page address: %v", err)
	}
	// The corruption is persistent: a later read fails the same way.
	if err := d.ReadAt(make([]byte, 8), 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("second read: %v", err)
	}
	// Erasing the block clears it.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatalf("after erase: %v", err)
	}
}

func TestBitFlipCaughtByChecksum(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0x55}, 128)); err != nil {
		t.Fatal(err)
	}
	// Clean read first: verification passes and is memoized.
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	d.SetInjector(fault.New(&fault.Plan{Seed: 9, BitFlip: 1}, 0))
	err := d.ReadPage(0, make([]byte, 128))
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after bit flip, got %v", err)
	}
}

func TestVerificationIsLazy(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Reach into the block and corrupt a stored byte directly, without
	// clearing the verified flag: the clean program already verified the
	// page, so reads keep succeeding (verification is lazy, not per-read).
	d.blocks[0].data[0] ^= 0x01
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatalf("memoized verification should skip the hash: %v", err)
	}
	// Forcing re-verification exposes it.
	d.blocks[0].verified[0] = false
	if err := d.ReadPage(0, make([]byte, 128)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt after invalidation, got %v", err)
	}
}

func TestIntegrityOffSkipsChecksums(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetIntegrity(false)
	d.SetInjector(fault.New(&fault.Plan{Seed: 3, TornWrite: 1}, 0))
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0xAB}, 128)); err != nil {
		t.Fatal(err)
	}
	// No OOB checksum was stored, so the torn write goes undetected.
	if err := d.ReadPage(0, make([]byte, 128)); err != nil {
		t.Fatalf("integrity off: %v", err)
	}
}

func TestTransientFaultsRetryWithBackoff(t *testing.T) {
	d, clock := newTestDevice(t)
	inj := fault.New(&fault.Plan{Seed: 1, ReadTransient: 0.15}, 0)
	d.SetInjector(inj)
	if err := d.ProgramPage(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	var sawRetry bool
	for i := 0; i < 200; i++ {
		if err := d.ReadPage(0, make([]byte, 128)); err != nil {
			t.Fatalf("read %d: transient faults should be retried: %v", i, err)
		}
		if _, r := inj.Stats(); r > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no retries recorded at a 15% transient rate")
	}
	_, retries := inj.Stats()
	// Each retry charges at least the base backoff to the simulated clock.
	minBackoff := time.Duration(retries) * retryBackoffBase
	elapsed := clock.Now() - before
	pureReads := 200 * (d.Params().ReadFixed + 128*d.Params().ReadPerByte)
	if elapsed < pureReads+minBackoff {
		t.Fatalf("backoff not charged: elapsed %v < reads %v + backoff %v", elapsed, pureReads, minBackoff)
	}
}

func TestTransientEscalatesToPermanent(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{Seed: 1, ReadTransient: 1}, 0))
	err := d.ReadAt(make([]byte, 8), 0)
	if !errors.Is(err, fault.ErrPermanent) {
		t.Fatalf("want escalation to permanent, got %v", err)
	}
}

func TestPowerCutFreezesDevice(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{CutAtOp: 2}, 0))
	if err := d.ProgramPage(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	err := d.ProgramPage(1, []byte("b"))
	if !errors.Is(err, fault.ErrPowerCut) {
		t.Fatalf("want power cut, got %v", err)
	}
	if d.PageProgrammed(1) {
		t.Fatal("page 1 must not be programmed after the cut")
	}
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, fault.ErrDeviceDead) {
		t.Fatalf("post-cut read: %v", err)
	}
	if err := d.EraseBlock(0); !errors.Is(err, fault.ErrDeviceDead) {
		t.Fatalf("post-cut erase: %v", err)
	}
}

func TestImageRoundTrip(t *testing.T) {
	d, _ := newTestDevice(t)
	if err := d.ProgramPage(0, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramPage(6, bytes.Repeat([]byte{7}, 128)); err != nil {
		t.Fatal(err)
	}
	img, err := d.Image()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the device after the snapshot must not affect the image.
	if err := d.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := img.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha" {
		t.Fatalf("image read %q", got)
	}
	if !img.PageProgrammed(6) || img.PageProgrammed(1) {
		t.Fatal("programmed flags wrong in image")
	}
	page, prog, err := img.ReadPage(6)
	if err != nil || !prog || page[0] != 7 {
		t.Fatalf("ReadPage(6) = %v %v %v", page[0], prog, err)
	}
	// Erased pages read as 0xFF.
	if err := img.ReadAt(got, int64(2*128)); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xFF {
		t.Fatalf("erased image byte %x", got[0])
	}
	if err := img.ReadAt(got, img.Params().TotalBytes()); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("image OOB: %v", err)
	}
}

func TestImageVerifiesChecksums(t *testing.T) {
	d, _ := newTestDevice(t)
	d.SetInjector(fault.New(&fault.Plan{Seed: 3, TornWrite: 1}, 0))
	if err := d.ProgramPage(0, bytes.Repeat([]byte{0xAB}, 128)); err != nil {
		t.Fatal(err)
	}
	img, err := d.Image()
	if err != nil {
		t.Fatal(err)
	}
	if err := img.ReadAt(make([]byte, 8), 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("image of a torn page must fail verification, got %v", err)
	}
	if _, _, err := img.ReadPage(0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("ReadPage of torn page: %v", err)
	}
}
