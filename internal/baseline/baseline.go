// Package baseline implements the comparison points the paper dismisses
// in Section 4: executing SPJ queries on the smart USB device with "last
// resort join algorithms (like hash joins) as well as ... known indexing
// techniques like join indices" instead of Subtree Key Tables and
// climbing indexes. Running them on the same simulated device makes the
// paper's claim measurable: under tiny RAM and asymmetric flash costs
// they are one to two orders of magnitude slower.
//
// Three algorithms are provided:
//
//   - BNL — block nested loop: no indexes at all; hidden selections scan
//     whole columns; each join membership test re-scans the selection run
//     once per RAM-sized chunk of the outer.
//   - GraceHash — Grace hash join: partitions both sides to scratch flash
//     so each partition's selection set fits RAM; pays the 3-10x write
//     penalty for every partition pass.
//   - JoinIndex — binary join indices: selections use plain value indexes
//     (a climbing index restricted to its own level), but traversal moves
//     one foreign-key edge at a time with a materialized intermediate
//     after every hop — no precomputed transitive lists.
//
// Each returns the matching query-root IDs, which tests compare against
// the real engine.
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/visible"
)

// Pred is one selection of a baseline query.
type Pred struct {
	Table  string
	Column string
	P      pred.P
	Hidden bool
}

// Query is the baseline workload shape: the query root plus per-table
// selections; joins follow the schema tree implicitly.
type Query struct {
	Root  string
	Preds []Pred
}

// Engine runs baseline algorithms against the same device substrate the
// real engine uses.
type Engine struct {
	Dev  *device.Device
	Env  *exec.Env
	Sch  *schema.Schema
	Hid  *store.Store
	Vis  *visible.Store
	Rows map[string]int
	// Translator returns the dense per-edge join index for a table (the
	// climbing index on its primary key, used one level at a time).
	Translator func(table string) (*climbing.Index, error)
	// ValueIndex returns the plain value index for a hidden column (the
	// climbing index used only at its own level), for JoinIndex runs.
	ValueIndex func(table, column string) (*climbing.Index, bool)
}

// Algorithm selects a baseline join strategy.
type Algorithm int

// The baseline algorithms. Climbing is GhostDB's own structure run under
// the same bare-root-IDs contract, so the other algorithms compare against
// it without result-delivery noise.
const (
	BNL Algorithm = iota
	GraceHash
	JoinIndex
	Climbing
)

func (a Algorithm) String() string {
	switch a {
	case BNL:
		return "block-nested-loop"
	case GraceHash:
		return "grace-hash"
	case JoinIndex:
		return "join-index"
	case Climbing:
		return "skt+climbing"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Run executes the query under the given algorithm, returning the sorted
// matching root IDs and an execution report.
func (e *Engine) Run(q Query, alg Algorithm) ([]uint32, *stats.Report, error) {
	rep := &stats.Report{Query: fmt.Sprintf("baseline %s root=%s", alg, q.Root), PlanLabel: alg.String()}
	e.Dev.RAM.ResetHigh()
	flashStart := e.Dev.Flash.Stats()
	clockStart := e.Dev.Clock.Now()

	ids, err := e.run(q, alg, rep)

	rep.TotalTime = e.Dev.Clock.Span(clockStart)
	rep.RAMHigh = e.Dev.RAM.High()
	rep.Flash = e.Dev.Flash.Stats().Sub(flashStart)
	if ids != nil {
		rep.ResultRows = len(ids)
	}
	if cerr := e.Dev.ResetScratch(); cerr != nil && err == nil {
		err = cerr
	}
	e.Hid.Cache().Invalidate()
	return ids, rep, err
}

func (e *Engine) run(q Query, alg Algorithm, rep *stats.Report) ([]uint32, error) {
	root, ok := e.Sch.Table(q.Root)
	if !ok {
		return nil, fmt.Errorf("baseline: unknown root %s", q.Root)
	}
	if alg == Climbing {
		return e.climbingRun(root.Name, q, rep)
	}
	// Per-table selection runs (sorted ID lists in scratch).
	sel := map[string]*selRun{}
	for _, p := range q.Preds {
		t, ok := e.Sch.Table(p.Table)
		if !ok {
			return nil, fmt.Errorf("baseline: unknown table %s", p.Table)
		}
		if !strings.EqualFold(t.Name, root.Name) && !e.Sch.IsAncestor(root.Name, t.Name) {
			return nil, fmt.Errorf("baseline: %s is not in the subtree of %s", t.Name, root.Name)
		}
		run, err := e.selection(t.Name, p, alg, rep)
		if err != nil {
			return nil, err
		}
		if prev, ok := sel[t.Name]; ok {
			merged, err := e.intersectRuns(prev, run, rep)
			if err != nil {
				return nil, err
			}
			sel[t.Name] = merged
		} else {
			sel[t.Name] = run
		}
	}

	switch alg {
	case JoinIndex:
		return e.joinIndexTraversal(root.Name, sel, rep)
	case BNL, GraceHash:
		return e.topDownJoin(root.Name, sel, alg, rep)
	}
	return nil, fmt.Errorf("baseline: unknown algorithm %v", alg)
}

// selRun is a sorted ID list: either a scratch run or a small host slice
// (visible lists arrive over the bus and are spilled like the engine's).
type selRun struct {
	src exec.IDSource
	n   int
}

// selection materializes one predicate's matching IDs.
func (e *Engine) selection(table string, p Pred, alg Algorithm, rep *stats.Report) (*selRun, error) {
	if !p.Hidden {
		// Delegated to the PC exactly like the engine; the shipped list
		// is spilled to scratch.
		vt, ok := e.Vis.Table(table)
		if !ok {
			return nil, fmt.Errorf("baseline: no visible table %s", table)
		}
		ids, err := vt.Select(p.Column, p.P)
		if err != nil {
			return nil, err
		}
		op := rep.NewOp("ShipIDList", table)
		run, err := e.Env.SpillIDs(exec.NewSliceIter(ids, nil), op)
		if err != nil {
			return nil, err
		}
		return &selRun{src: run, n: run.Count()}, nil
	}
	if alg == JoinIndex && e.ValueIndex != nil {
		// Join-index runs get plain value indexes for selections.
		if ix, ok := e.ValueIndex(table, p.Column); ok {
			return e.indexSelection(ix, p, rep)
		}
	}
	// Last-resort: scan the whole hidden column.
	td, ok := e.Hid.Table(table)
	if !ok {
		return nil, fmt.Errorf("baseline: no hidden table %s", table)
	}
	col, ok := td.Column(p.Column)
	if !ok {
		return nil, fmt.Errorf("baseline: no hidden column %s.%s", table, p.Column)
	}
	op := rep.NewOp("ColumnScan", fmt.Sprintf("%s.%s", table, p.Column))
	grant, err := e.Dev.RAM.Alloc(e.Dev.Profile.Flash.PageSize, "scan-writer")
	if err != nil {
		return nil, err
	}
	defer grant.Free()
	w, err := e.Dev.Scratch.NewWriter()
	if err != nil {
		return nil, err
	}
	n := 0
	var buf [4]byte
	for i := 0; i < col.Len(); i++ {
		v, err := col.Value(i)
		if err != nil {
			return nil, err
		}
		op.AddIn(1)
		match, err := p.P.Eval(v)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		putU32(buf[:], uint32(i+1))
		if _, err := w.Write(buf[:]); err != nil {
			return nil, err
		}
		n++
	}
	ext, err := w.Close()
	if err != nil {
		return nil, err
	}
	op.AddOut(int64(n))
	return &selRun{src: exec.RunSource{Env: e.Env, Ext: ext, N: n}, n: n}, nil
}

// indexSelection uses a plain value index (own-level lists only).
func (e *Engine) indexSelection(ix *climbing.Index, p Pred, rep *stats.Report) (*selRun, error) {
	op := rep.NewOp("ValueIndex", fmt.Sprintf("%s.%s", p.Table, p.Column))
	var sources []exec.IDSource
	err := forEntries(ix, p.P, func(ref climbing.ListRef) {
		if ref.Count > 0 {
			sources = append(sources, exec.ClimbSource{Env: e.Env, Ix: ix, Ref: ref})
		}
	})
	if err != nil {
		return nil, err
	}
	it, err := e.Env.Union(sources, e.Env.Fanin(0.5), op)
	if err != nil {
		return nil, err
	}
	run, err := e.Env.SpillIDs(it, op)
	if err != nil {
		return nil, err
	}
	return &selRun{src: run, n: run.Count()}, nil
}

// intersectRuns merges two sorted runs into one.
func (e *Engine) intersectRuns(a, b *selRun, rep *stats.Report) (*selRun, error) {
	ia, err := a.src.Open()
	if err != nil {
		return nil, err
	}
	ib, err := b.src.Open()
	if err != nil {
		ia.Close()
		return nil, err
	}
	x, err := e.Env.MergeIntersect([]exec.IDIter{ia, ib})
	if err != nil {
		return nil, err
	}
	op := rep.NewOp("Intersect", "")
	run, err := e.Env.SpillIDs(x, op)
	if err != nil {
		return nil, err
	}
	return &selRun{src: run, n: run.Count()}, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// sortUint32 sorts in place (host-side helper for RAM-resident chunks;
// the CPU cost is charged by callers per comparison).
func sortUint32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
