package baseline_test

import (
	"reflect"
	"testing"

	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

func loadTiny(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(datagen.Generate(datagen.Tiny())); err != nil {
		t.Fatal(err)
	}
	return db
}

// demoQuery is the paper's query as a baseline workload.
func demoQuery() baseline.Query {
	return baseline.Query{
		Root: "Prescription",
		Preds: []baseline.Pred{
			{Table: "Visit", Column: "Date", P: pred.Compare(sql.OpGt, value.NewDate(2006, 11, 5))},
			{Table: "Visit", Column: "Purpose", P: pred.Compare(sql.OpEq, value.NewString("Sclerosis")), Hidden: true},
			{Table: "Medicine", Column: "Type", P: pred.Compare(sql.OpEq, value.NewString("Antibiotic"))},
		},
	}
}

// engineRootIDs runs the equivalent SQL on the real engine and returns
// the matching root IDs.
func engineRootIDs(t *testing.T, db *core.DB) []uint32 {
	t.Helper()
	res, err := db.Query(`SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Medicine Med
		WHERE Vis.Date > 05-11-2006 AND Vis.Purpose = 'Sclerosis' AND Med.Type = 'Antibiotic'`)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = uint32(r[0].Int())
	}
	return out
}

func TestBaselinesMatchEngine(t *testing.T) {
	db := loadTiny(t)
	want := engineRootIDs(t, db)
	if len(want) == 0 {
		t.Fatal("demo query empty at tiny scale")
	}
	be := db.BaselineEngine()
	for _, alg := range []baseline.Algorithm{baseline.BNL, baseline.GraceHash, baseline.JoinIndex} {
		got, rep, err := be.Run(demoQuery(), alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: %d ids, engine %d", alg, len(got), len(want))
		}
		if rep.TotalTime <= 0 {
			t.Errorf("%v: no simulated time", alg)
		}
		if rep.RAMHigh > db.Device().RAM.Budget() {
			t.Errorf("%v: RAM %d over budget", alg, rep.RAMHigh)
		}
	}
}

func TestBaselinesSlowerThanEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("scale comparison skipped in -short mode")
	}
	db, err := core.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(datagen.Generate(datagen.WithScale(100_000))); err != nil {
		t.Fatal(err)
	}
	be := db.BaselineEngine()

	// Deep query (Doctor is two hops from the root): the FK-chasing
	// baselines pay random flash reads per candidate row and re-scan
	// or re-partition per chunk — the paper's "unacceptable
	// performance with last resort join algorithms".
	res, err := db.Query(`SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Doctor Doc
		WHERE Doc.Country = 'Spain' AND Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	engineTime := res.Report.TotalTime
	deep := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Doctor", Column: "Country", P: pred.Compare(sql.OpEq, value.NewString("Spain"))},
		{Table: "Visit", Column: "Purpose", P: pred.Compare(sql.OpEq, value.NewString("Sclerosis")), Hidden: true},
	}}
	for _, alg := range []baseline.Algorithm{baseline.BNL, baseline.GraceHash} {
		ids, rep, err := be.Run(deep, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(ids) != len(res.Rows) {
			t.Fatalf("%v disagrees: %d vs %d", alg, len(ids), len(res.Rows))
		}
		if rep.TotalTime < 2*engineTime {
			t.Errorf("%v took %v, engine %v: expected a clear gap",
				alg, rep.TotalTime, engineTime)
		}
		t.Logf("%v: %v vs engine %v (%.1fx)", alg, rep.TotalTime, engineTime,
			float64(rep.TotalTime)/float64(engineTime))
	}

	// Join indices vs climbing indexes: a single deep hidden predicate
	// is where the precomputed transitive lists shine — the climbing
	// index reaches the root in one step while join indices pay one
	// translation (with a materialized run) per edge.
	res2, err := db.Query(`SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Patient Pat
		WHERE Pat.BodyMassIndex > 40`)
	if err != nil {
		t.Fatal(err)
	}
	bmi := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Patient", Column: "BodyMassIndex", P: pred.Compare(sql.OpGt, value.NewInt(40)), Hidden: true},
	}}
	ids, rep, err := be.Run(bmi, baseline.JoinIndex)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(res2.Rows) {
		t.Fatalf("join-index disagrees: %d vs %d", len(ids), len(res2.Rows))
	}
	t.Logf("join-index: %v vs engine %v (%.1fx)", rep.TotalTime, res2.Report.TotalTime,
		float64(rep.TotalTime)/float64(res2.Report.TotalTime))
	if rep.TotalTime <= res2.Report.TotalTime {
		t.Errorf("join-index %v beat the climbing index %v", rep.TotalTime, res2.Report.TotalTime)
	}
}

func TestBaselineErrors(t *testing.T) {
	db := loadTiny(t)
	be := db.BaselineEngine()
	if _, _, err := be.Run(baseline.Query{Root: "Ghost"}, baseline.BNL); err == nil {
		t.Error("unknown root accepted")
	}
	badTable := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Ghost", Column: "X", P: pred.Compare(sql.OpEq, value.NewInt(1))}}}
	if _, _, err := be.Run(badTable, baseline.BNL); err == nil {
		t.Error("unknown pred table accepted")
	}
	badCol := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Visit", Column: "Nope", P: pred.Compare(sql.OpEq, value.NewInt(1)), Hidden: true}}}
	if _, _, err := be.Run(badCol, baseline.BNL); err == nil {
		t.Error("unknown hidden column accepted")
	}
	// A predicate on a table outside the root's subtree.
	outside := baseline.Query{Root: "Visit", Preds: []baseline.Pred{
		{Table: "Medicine", Column: "Type", P: pred.Compare(sql.OpEq, value.NewString("x"))}}}
	if _, _, err := be.Run(outside, baseline.BNL); err == nil {
		t.Error("out-of-subtree predicate accepted")
	}
}

func TestBaselineRootOnlyQuery(t *testing.T) {
	db := loadTiny(t)
	be := db.BaselineEngine()
	q := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Prescription", Column: "Quantity", P: pred.Compare(sql.OpLe, value.NewInt(10)), Hidden: true}}}
	res, err := db.Query(`SELECT PreID FROM Prescription WHERE Quantity <= 10`)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []baseline.Algorithm{baseline.BNL, baseline.GraceHash, baseline.JoinIndex} {
		got, _, err := be.Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(got) != len(res.Rows) {
			t.Errorf("%v: %d ids, engine %d", alg, len(got), len(res.Rows))
		}
	}
}

func TestBaselineMultiplePredsPerTable(t *testing.T) {
	db := loadTiny(t)
	be := db.BaselineEngine()
	q := baseline.Query{Root: "Prescription", Preds: []baseline.Pred{
		{Table: "Visit", Column: "Date", P: pred.Compare(sql.OpGt, value.NewDate(2005, 1, 1))},
		{Table: "Visit", Column: "Purpose", P: pred.Compare(sql.OpNe, value.NewString("Sclerosis")), Hidden: true},
	}}
	res, err := db.Query(`SELECT Pre.PreID FROM Prescription Pre, Visit Vis
		WHERE Vis.Date > 2005-01-01 AND Vis.Purpose <> 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []baseline.Algorithm{baseline.BNL, baseline.JoinIndex} {
		got, _, err := be.Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(got) != len(res.Rows) {
			t.Errorf("%v: %d ids, engine %d", alg, len(got), len(res.Rows))
		}
	}
}
