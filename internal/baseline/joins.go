package baseline

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/store"
)

// rootCandidates opens the root-level selection, or a full scan.
func (e *Engine) rootCandidates(root string, sel map[string]*selRun) (exec.IDIter, error) {
	if run, ok := sel[root]; ok {
		return run.src.Open()
	}
	return &seqIter{max: uint32(e.Rows[root])}, nil
}

type seqIter struct{ next, max uint32 }

func (s *seqIter) Next() (uint32, bool, error) {
	if s.next >= s.max {
		return 0, false, nil
	}
	s.next++
	return s.next, true, nil
}

func (s *seqIter) Close() {}

// fkColumn fetches the hidden FK column object for parent->child.
func (e *Engine) fkColumn(parent, child string) (store.Column, error) {
	pt, ok := e.Sch.Table(parent)
	if !ok {
		return nil, fmt.Errorf("baseline: unknown table %s", parent)
	}
	for _, fk := range pt.ForeignKeys() {
		if strings.EqualFold(fk.RefTable, child) {
			td, ok := e.Hid.Table(parent)
			if !ok {
				return nil, fmt.Errorf("baseline: no hidden table %s", parent)
			}
			col, ok := td.Column(fk.Name)
			if !ok {
				return nil, fmt.Errorf("baseline: FK %s.%s is not on the device; baselines need hidden foreign keys", parent, fk.Name)
			}
			return col, nil
		}
	}
	return nil, fmt.Errorf("baseline: no FK %s->%s", parent, child)
}

// pathDown returns the tables from `from` down to `to` (inclusive).
func (e *Engine) pathDown(from, to string) ([]string, error) {
	up := e.Sch.PathToRoot(to) // [to, ..., from, ...]
	var rev []string
	for _, t := range up {
		rev = append(rev, t.Name)
		if strings.EqualFold(t.Name, from) {
			// Reverse.
			out := make([]string, len(rev))
			for i, n := range rev {
				out[len(rev)-1-i] = n
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("baseline: %s is not an ancestor of %s", from, to)
}

// topDownJoin is the no-index strategy: for each selected dimension,
// materialize (rootID, dimID) pairs by chasing foreign keys row by row,
// then filter against the selection run with block nested loop or Grace
// hash partitioning.
func (e *Engine) topDownJoin(root string, sel map[string]*selRun, alg Algorithm, rep *stats.Report) ([]uint32, error) {
	cur, err := e.rootCandidates(root, sel)
	if err != nil {
		return nil, err
	}
	// Deterministic target order: by depth then name.
	var targets []string
	for t := range sel {
		if !strings.EqualFold(t, root) {
			targets = append(targets, t)
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		di, dj := e.Sch.Depth(targets[i]), e.Sch.Depth(targets[j])
		if di != dj {
			return di < dj
		}
		return targets[i] < targets[j]
	})

	for _, target := range targets {
		path, err := e.pathDown(root, target)
		if err != nil {
			cur.Close()
			return nil, err
		}
		// Chase FK chains: (rootID, curID) pairs in a scratch row file.
		mapOp := rep.NewOp("FKChase", fmt.Sprintf("%s->%s", root, target))
		phase := e.Dev.Clock.Now()
		cols := make([]store.Column, len(path)-1)
		for i := 0; i+1 < len(path); i++ {
			cols[i], err = e.fkColumn(path[i], path[i+1])
			if err != nil {
				cur.Close()
				return nil, err
			}
		}
		pairs := &fkChaseIter{in: cur, cols: cols, op: mapOp}
		pairFile, err := e.Env.MaterializeRows(pairs, 2, true, mapOp)
		if err != nil {
			return nil, err
		}
		mapOp.AddTime(e.Dev.Clock.Span(phase))

		// Filter the pairs against the selection run.
		var kept *exec.RowFile
		switch alg {
		case BNL:
			kept, err = e.bnlFilter(pairFile, sel[target], rep)
		case GraceHash:
			kept, err = e.graceFilter(pairFile, sel[target], rep)
		default:
			err = fmt.Errorf("baseline: %v is not a top-down algorithm", alg)
		}
		if err != nil {
			return nil, err
		}
		// Reduce to the surviving root IDs (field 0), sorted.
		sorted, err := e.Env.SortRowFile(kept, 0, int(e.Dev.RAM.Available())/2, e.Env.Fanin(0.25), rep.NewOp("Sort", "by root"))
		if err != nil {
			return nil, err
		}
		it, err := sorted.Iter()
		if err != nil {
			return nil, err
		}
		cur = &rowFieldIter{in: it, field: 0}
	}
	return exec.Collect(cur)
}

// fkChaseIter maps root IDs to (rootID, targetID) rows by fetching the
// FK column at every hop — random flash reads once the chain leaves the
// root's clustered order.
type fkChaseIter struct {
	in   exec.IDIter
	cols []store.Column
	op   *stats.Op
	buf  [2]uint32
}

func (f *fkChaseIter) Next() (exec.Row, bool, error) {
	id, ok, err := f.in.Next()
	if err != nil || !ok {
		return exec.Row{}, false, err
	}
	cur := id
	for _, col := range f.cols {
		v, err := col.Value(int(cur) - 1)
		if err != nil {
			return exec.Row{}, false, err
		}
		cur = uint32(v.Int())
	}
	f.buf[0], f.buf[1] = id, cur
	return exec.Row{IDs: f.buf[:]}, true, nil
}

func (f *fkChaseIter) Close() { f.in.Close() }

// rowFieldIter projects one field of a row stream as an ID stream.
type rowFieldIter struct {
	in    exec.RowIter
	field int
}

func (r *rowFieldIter) Next() (uint32, bool, error) {
	row, ok, err := r.in.Next()
	if err != nil || !ok {
		return 0, false, err
	}
	return row.IDs[r.field], true, nil
}

func (r *rowFieldIter) Close() { r.in.Close() }

// bnlFilter keeps pairs whose second field appears in the selection run,
// re-scanning the run once per RAM-sized chunk of pairs.
func (e *Engine) bnlFilter(pairs *exec.RowFile, sel *selRun, rep *stats.Report) (*exec.RowFile, error) {
	op := rep.NewOp("BNLFilter", fmt.Sprintf("|sel|=%d", sel.n))
	phase := e.Dev.Clock.Now()
	defer func() { op.AddTime(e.Dev.Clock.Span(phase)) }()

	// Chunk capacity: half the free RAM for the pair buffer, half for
	// the membership map approximation.
	chunkBytes := int(e.Dev.RAM.Available()) / 2
	capPairs := chunkBytes / 16
	if capPairs < 8 {
		capPairs = 8
	}
	grant, err := e.Dev.RAM.Alloc(capPairs*16, "bnl-chunk")
	if err != nil {
		return nil, err
	}
	defer grant.Free()
	op.NoteRAM(int64(capPairs * 16))

	out, err := e.Env.NewRowFileWriter(2)
	if err != nil {
		return nil, err
	}
	in, err := pairs.Iter()
	if err != nil {
		out.Abort()
		return nil, err
	}
	defer in.Close()

	type pair struct {
		seq      uint32
		root, id uint32
	}
	chunk := make([]pair, 0, capPairs)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		// Membership: index chunk by target ID.
		byID := map[uint32][]int{}
		for i, p := range chunk {
			byID[p.id] = append(byID[p.id], i)
		}
		keep := make([]bool, len(chunk))
		it, err := sel.src.Open()
		if err != nil {
			return err
		}
		for {
			selID, ok, err := it.Next()
			if err != nil {
				it.Close()
				return err
			}
			if !ok {
				break
			}
			for _, i := range byID[selID] {
				keep[i] = true
			}
		}
		it.Close()
		for i, p := range chunk {
			if keep[i] {
				op.AddOut(1)
				if err := out.Write(exec.Row{Seq: p.seq, IDs: []uint32{p.root, p.id}}); err != nil {
					return err
				}
			}
		}
		chunk = chunk[:0]
		return nil
	}
	for {
		r, ok, err := in.Next()
		if err != nil {
			out.Abort()
			return nil, err
		}
		if !ok {
			break
		}
		op.AddIn(1)
		chunk = append(chunk, pair{seq: r.Seq, root: r.IDs[0], id: r.IDs[1]})
		if len(chunk) == capPairs {
			if err := flush(); err != nil {
				out.Abort()
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		out.Abort()
		return nil, err
	}
	return out.Close()
}

// graceFilter partitions pairs and the selection by hash so each
// partition's selection IDs fit in RAM, then filters partition-wise.
func (e *Engine) graceFilter(pairs *exec.RowFile, sel *selRun, rep *stats.Report) (*exec.RowFile, error) {
	op := rep.NewOp("GraceFilter", fmt.Sprintf("|sel|=%d", sel.n))
	phase := e.Dev.Clock.Now()
	defer func() { op.AddTime(e.Dev.Clock.Span(phase)) }()

	ramHalf := int(e.Dev.RAM.Available()) / 2
	parts := sel.n*8/maxInt(ramHalf, 1) + 1
	if parts < 1 {
		parts = 1
	}
	if parts > 64 {
		parts = 64
	}

	// Partition the pair file (writes!).
	pairParts := make([]*exec.RowFile, parts)
	for p := 0; p < parts; p++ {
		w, err := e.Env.NewRowFileWriter(2)
		if err != nil {
			return nil, err
		}
		in, err := pairs.Iter()
		if err != nil {
			w.Abort()
			return nil, err
		}
		for {
			r, ok, err := in.Next()
			if err != nil {
				in.Close()
				w.Abort()
				return nil, err
			}
			if !ok {
				break
			}
			if int(hashID(r.IDs[1]))%parts == p {
				if err := w.Write(r); err != nil {
					in.Close()
					w.Abort()
					return nil, err
				}
			}
		}
		in.Close()
		pf, err := w.Close()
		if err != nil {
			return nil, err
		}
		pairParts[p] = pf
	}

	out, err := e.Env.NewRowFileWriter(2)
	if err != nil {
		return nil, err
	}
	// Per partition: load the selection subset into RAM, scan the pairs.
	for p := 0; p < parts; p++ {
		set := map[uint32]bool{}
		it, err := sel.src.Open()
		if err != nil {
			out.Abort()
			return nil, err
		}
		loaded := 0
		for {
			id, ok, err := it.Next()
			if err != nil {
				it.Close()
				out.Abort()
				return nil, err
			}
			if !ok {
				break
			}
			if int(hashID(id))%parts == p {
				set[id] = true
				loaded++
			}
		}
		it.Close()
		grant, err := e.Dev.RAM.Alloc(loaded*8, "grace-set")
		if err != nil {
			out.Abort()
			return nil, fmt.Errorf("baseline: grace partition overflow: %w", err)
		}
		op.NoteRAM(int64(loaded * 8))
		in, err := pairParts[p].Iter()
		if err != nil {
			grant.Free()
			out.Abort()
			return nil, err
		}
		for {
			r, ok, err := in.Next()
			if err != nil {
				in.Close()
				grant.Free()
				out.Abort()
				return nil, err
			}
			if !ok {
				break
			}
			op.AddIn(1)
			if set[r.IDs[1]] {
				op.AddOut(1)
				if err := out.Write(r); err != nil {
					in.Close()
					grant.Free()
					out.Abort()
					return nil, err
				}
			}
		}
		in.Close()
		grant.Free()
	}
	return out.Close()
}

func hashID(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// joinIndexTraversal climbs one foreign-key edge at a time with a
// materialized run after every hop — binary join indices without the
// climbing index's transitive lists.
func (e *Engine) joinIndexTraversal(root string, sel map[string]*selRun, rep *stats.Report) ([]uint32, error) {
	rootRuns, err := e.traverse(root, sel, rep, false)
	if err != nil {
		return nil, err
	}
	if r, ok := sel[root]; ok {
		rootRuns = append(rootRuns, r)
	}
	if len(rootRuns) == 0 {
		it, err := e.rootCandidates(root, sel)
		if err != nil {
			return nil, err
		}
		return exec.Collect(it)
	}
	var iters []exec.IDIter
	for _, r := range rootRuns {
		it, err := r.src.Open()
		if err != nil {
			for _, o := range iters {
				o.Close()
			}
			return nil, err
		}
		iters = append(iters, it)
	}
	x, err := e.Env.MergeIntersect(iters)
	if err != nil {
		return nil, err
	}
	return exec.Collect(x)
}

// traverse climbs the non-root selections toward the root, intersecting
// at each table and materializing a run after every translation. With
// multiHop false each translation crosses exactly one foreign-key edge
// (binary join indices); with multiHop true the climbing index translates
// directly to the nearest table that has its own selection — skipping
// unoccupied levels. It returns the runs that arrived at the root.
func (e *Engine) traverse(root string, sel map[string]*selRun, rep *stats.Report, multiHop bool) ([]*selRun, error) {
	if e.Translator == nil {
		return nil, fmt.Errorf("baseline: traversal needs translator indexes")
	}
	arrived := map[string][]*selRun{}
	occupied := map[string]bool{}
	var tables []string
	for t := range sel {
		if !strings.EqualFold(t, root) {
			tables = append(tables, t)
			occupied[t] = true
		}
	}
	sort.Slice(tables, func(i, j int) bool {
		di, dj := e.Sch.Depth(tables[i]), e.Sch.Depth(tables[j])
		if di != dj {
			return di > dj // deepest first
		}
		return tables[i] < tables[j]
	})
	processed := map[string]bool{}
	queue := tables
	var rootRuns []*selRun
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if processed[t] {
			continue
		}
		processed[t] = true
		var runs []*selRun
		if r, ok := sel[t]; ok {
			runs = append(runs, r)
		}
		runs = append(runs, arrived[t]...)
		if len(runs) == 0 {
			continue
		}
		combined := runs[0]
		var err error
		for _, r := range runs[1:] {
			combined, err = e.intersectRuns(combined, r, rep)
			if err != nil {
				return nil, err
			}
		}
		// Choose the translation target.
		target := ""
		if multiHop {
			target = root
			for _, anc := range e.Sch.PathToRoot(t)[1:] {
				if strings.EqualFold(anc.Name, root) {
					break
				}
				if occupied[anc.Name] || len(arrived[anc.Name]) > 0 {
					target = anc.Name
					break
				}
			}
		} else {
			parent, _ := e.Sch.Parent(t)
			if parent == nil {
				return nil, fmt.Errorf("baseline: %s has no parent toward %s", t, root)
			}
			target = parent.Name
		}
		tr, err := e.Translator(t)
		if err != nil {
			return nil, err
		}
		level := tr.LevelOf(target)
		if level < 0 {
			return nil, fmt.Errorf("baseline: translator on %s lacks level %s", t, target)
		}
		in, err := combined.src.Open()
		if err != nil {
			return nil, err
		}
		opName := "JoinIndexHop"
		if multiHop {
			opName = "ClimbTranslate"
		}
		op := rep.NewOp(opName, fmt.Sprintf("%s->%s", t, target))
		phase := e.Dev.Clock.Now()
		translated, err := e.Env.Translate(in, tr, level, e.Env.Fanin(0.5), op)
		if err != nil {
			return nil, err
		}
		// Materialize after every hop.
		run, err := e.Env.SpillIDs(translated, op)
		if err != nil {
			return nil, err
		}
		op.AddTime(e.Dev.Clock.Span(phase))
		hopRun := &selRun{src: run, n: run.Count()}
		if strings.EqualFold(target, root) {
			rootRuns = append(rootRuns, hopRun)
		} else {
			arrived[target] = append(arrived[target], hopRun)
			queue = append(queue, target)
		}
	}
	return rootRuns, nil
}

// climbingRun executes the query with GhostDB's own structures under the
// bare-root-IDs contract, using the engine's full repertoire: an isolated
// deep hidden predicate reads its precomputed root-level list in one step
// (the climbing index's defining advantage); predicates with
// contributions below them intersect per level, cross-filtering style,
// and the climbing index translates the intersection directly to the
// next occupied level — skipping intermediate tables, which per-edge join
// indices cannot do.
func (e *Engine) climbingRun(root string, q Query, rep *stats.Report) ([]uint32, error) {
	if e.ValueIndex == nil {
		return nil, fmt.Errorf("baseline: climbing runs need value indexes")
	}
	// Tables contributing a selection.
	occupied := map[string]bool{}
	for _, p := range q.Preds {
		if !strings.EqualFold(p.Table, root) {
			occupied[p.Table] = true
		}
	}
	hasDescendant := func(table string) bool {
		for t := range occupied {
			if !strings.EqualFold(t, table) && e.Sch.IsAncestor(table, t) {
				return true
			}
		}
		return false
	}

	var rootIters []exec.IDIter
	sel := map[string]*selRun{}
	addSel := func(table string, run *selRun) error {
		if prev, ok := sel[table]; ok {
			merged, err := e.intersectRuns(prev, run, rep)
			if err != nil {
				return err
			}
			sel[table] = merged
			return nil
		}
		sel[table] = run
		return nil
	}

	for _, p := range q.Preds {
		atRoot := strings.EqualFold(p.Table, root)
		if p.Hidden && !atRoot && !hasDescendant(p.Table) {
			// Isolated deep predicate: the transitive root list wins.
			ix, ok := e.ValueIndex(p.Table, p.Column)
			if !ok {
				return nil, fmt.Errorf("baseline: no climbing index on %s.%s", p.Table, p.Column)
			}
			level := ix.LevelOf(root)
			if level < 0 {
				return nil, fmt.Errorf("baseline: index on %s does not climb to %s", p.Table, root)
			}
			op := rep.NewOp("ClimbingIndex", fmt.Sprintf("%s.%s@%s", p.Table, p.Column, root))
			var sources []exec.IDSource
			err := forEntriesAt(ix, p.P, level, func(ref climbing.ListRef) {
				if ref.Count > 0 {
					sources = append(sources, exec.ClimbSource{Env: e.Env, Ix: ix, Ref: ref})
				}
			})
			if err != nil {
				return nil, err
			}
			it, err := e.Env.Union(sources, e.Env.Fanin(0.5), op)
			if err != nil {
				return nil, err
			}
			rootIters = append(rootIters, it)
			continue
		}
		// Everything else participates in the per-level climb: hidden
		// predicates via their own-level index lists, visible ones via
		// the shipped list.
		var run *selRun
		var err error
		if p.Hidden {
			ix, ok := e.ValueIndex(p.Table, p.Column)
			if !ok {
				return nil, fmt.Errorf("baseline: no climbing index on %s.%s", p.Table, p.Column)
			}
			run, err = e.indexSelection(ix, Pred{Table: p.Table, Column: p.Column, P: p.P, Hidden: true}, rep)
		} else {
			run, err = e.selection(p.Table, p, Climbing, rep)
		}
		if err != nil {
			return nil, err
		}
		if err := addSel(p.Table, run); err != nil {
			return nil, err
		}
	}

	rootRuns, err := e.traverse(root, sel, rep, true)
	if err != nil {
		return nil, err
	}
	if r, ok := sel[root]; ok {
		rootRuns = append(rootRuns, r)
	}
	for _, r := range rootRuns {
		it, err := r.src.Open()
		if err != nil {
			return nil, err
		}
		rootIters = append(rootIters, it)
	}
	if len(rootIters) == 0 {
		it, err := e.rootCandidates(root, sel)
		if err != nil {
			return nil, err
		}
		return exec.Collect(it)
	}
	x, err := e.Env.MergeIntersect(rootIters)
	if err != nil {
		return nil, err
	}
	return exec.Collect(x)
}

// forEntriesAt visits the list refs at the given level of entries
// matching p.
func forEntriesAt(ix *climbing.Index, p pred.P, level int, fn func(climbing.ListRef)) error {
	return forEachMatch(ix, p, func(e climbing.Entry) error {
		fn(e.Lists[level])
		return nil
	})
}

// forEntries visits the own-level list refs of entries matching p.
func forEntries(ix *climbing.Index, p pred.P, fn func(climbing.ListRef)) error {
	return forEntriesAt(ix, p, 0, fn)
}

// forEachMatch visits the index entries matching p.
func forEachMatch(ix *climbing.Index, p pred.P, emit func(climbing.Entry) error) error {
	visitRange := func(lo, hi *climbing.Bound) error {
		it, err := ix.Range(lo, hi)
		if err != nil {
			return err
		}
		for {
			e, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := emit(e); err != nil {
				return err
			}
		}
	}
	switch p.Form {
	case pred.FormCompare:
		switch p.Op {
		case sql.OpEq:
			e, ok, err := ix.LookupEq(p.Val)
			if err != nil || !ok {
				return err
			}
			return emit(e)
		case sql.OpNe:
			if err := visitRange(nil, &climbing.Bound{V: p.Val}); err != nil {
				return err
			}
			return visitRange(&climbing.Bound{V: p.Val}, nil)
		case sql.OpLt:
			return visitRange(nil, &climbing.Bound{V: p.Val})
		case sql.OpLe:
			return visitRange(nil, &climbing.Bound{V: p.Val, Inclusive: true})
		case sql.OpGt:
			return visitRange(&climbing.Bound{V: p.Val}, nil)
		case sql.OpGe:
			return visitRange(&climbing.Bound{V: p.Val, Inclusive: true}, nil)
		}
	case pred.FormBetween:
		return visitRange(&climbing.Bound{V: p.Lo, Inclusive: true}, &climbing.Bound{V: p.Hi, Inclusive: true})
	case pred.FormIn:
		for _, v := range p.Set {
			e, ok, err := ix.LookupEq(v)
			if err != nil {
				return err
			}
			if ok {
				if err := emit(e); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("baseline: unsupported predicate form %d", p.Form)
}
