package baseline

// FinishNaive is the third, sort-based implementation of GhostDB's
// host-side post-operators (the engine streams through hash tables in
// internal/exec; the oracle recomputes through string-keyed maps in
// internal/oracle). Grouping sorts the physical rows by their grouping
// key and folds runs of equal keys; DISTINCT sorts and collapses;
// ordering is one stable sort. Property tests differential-check all
// three against each other on randomized aggregate corpora.

import (
	"fmt"
	"sort"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// FinishNaive applies aggregation, HAVING, DISTINCT, ORDER BY and LIMIT
// to the physical rows of a bound post-op query. base is not mutated.
func FinishNaive(q *plan.Query, base [][]value.Value) ([][]value.Value, error) {
	if !q.HasPostOps() {
		return nil, fmt.Errorf("baseline: query has no post-operators")
	}
	if q.HasLimit && q.Limit == 0 {
		return nil, nil // the zero-row probe
	}
	rows, err := sortGroup(q, base)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		rows = sortDistinct(rows, q.VisibleOuts)
	}
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range q.OrderBy {
				c := cmpNullsFirst(rows[i][k.Out], rows[j][k.Out])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if q.HasLimit && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	if len(q.Outputs) > q.VisibleOuts {
		for i := range rows {
			rows[i] = rows[i][:q.VisibleOuts]
		}
	}
	return rows, nil
}

// sortGroup computes the output rows by sorting on the grouping key and
// folding runs (plain remap when the query does not aggregate).
func sortGroup(q *plan.Query, base [][]value.Value) ([][]value.Value, error) {
	if !q.Aggregated() {
		out := make([][]value.Value, len(base))
		for i, br := range base {
			row := make([]value.Value, len(q.Outputs))
			for oi, o := range q.Outputs {
				row[oi] = br[o.Proj]
			}
			out[i] = row
		}
		return out, nil
	}

	// Sort row indexes by grouping key (stable on original position, so
	// the first row of each run carries the group's first appearance).
	idx := make([]int, len(base))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, pi := range q.GroupBy {
			c := cmpNullsFirst(base[idx[a]][pi], base[idx[b]][pi])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})

	type folded struct {
		first int // original index of the group's first row
		row   []value.Value
	}
	var groups []folded
	for lo := 0; lo < len(idx); {
		hi := lo + 1
		for hi < len(idx) && sameGroupKey(q, base[idx[lo]], base[idx[hi]]) {
			hi++
		}
		first := idx[lo]
		for _, i := range idx[lo+1 : hi] {
			if i < first {
				first = i
			}
		}
		row, keep, err := foldRun(q, base, idx[lo:hi])
		if err != nil {
			return nil, err
		}
		if keep {
			groups = append(groups, folded{first: first, row: row})
		}
		lo = hi
	}
	if !q.Grouped && len(idx) == 0 {
		row, keep, err := foldRun(q, base, nil)
		if err != nil {
			return nil, err
		}
		if keep {
			groups = append(groups, folded{row: row})
		}
	}
	// Restore first-appearance order — the engine's unordered contract.
	sort.Slice(groups, func(a, b int) bool { return groups[a].first < groups[b].first })
	out := make([][]value.Value, len(groups))
	for i, g := range groups {
		out[i] = g.row
	}
	return out, nil
}

func sameGroupKey(q *plan.Query, a, b []value.Value) bool {
	for _, pi := range q.GroupBy {
		if cmpNullsFirst(a[pi], b[pi]) != 0 {
			return false
		}
	}
	return true
}

// foldRun folds one run of rows (all sharing a grouping key) into one
// output row, applying HAVING; keep reports whether the group survives.
func foldRun(q *plan.Query, base [][]value.Value, run []int) ([]value.Value, bool, error) {
	aggVals := make([]value.Value, len(q.Aggs))
	for ai, a := range q.Aggs {
		v, err := foldAgg(a, base, run)
		if err != nil {
			return nil, false, err
		}
		aggVals[ai] = v
	}
	for _, h := range q.Having {
		v := aggVals[h.AggIdx]
		if !v.IsValid() {
			return nil, false, nil
		}
		c, err := value.Compare(v, h.Val)
		if err != nil {
			return nil, false, err
		}
		var ok bool
		switch h.Op {
		case sql.OpEq:
			ok = c == 0
		case sql.OpNe:
			ok = c != 0
		case sql.OpLt:
			ok = c < 0
		case sql.OpLe:
			ok = c <= 0
		case sql.OpGt:
			ok = c > 0
		case sql.OpGe:
			ok = c >= 0
		}
		if !ok {
			return nil, false, nil
		}
	}
	row := make([]value.Value, len(q.Outputs))
	for oi, o := range q.Outputs {
		if o.AggIdx >= 0 {
			row[oi] = aggVals[o.AggIdx]
			continue
		}
		if len(run) == 0 {
			return nil, false, fmt.Errorf("baseline: plain output %s in an empty global group", o.Label)
		}
		row[oi] = base[run[0]][o.Proj]
	}
	return row, true, nil
}

// foldAgg evaluates one aggregate over a run of rows.
func foldAgg(a plan.AggExpr, base [][]value.Value, run []int) (value.Value, error) {
	switch a.Func {
	case sql.AggCount:
		return value.NewInt(int64(len(run))), nil
	case sql.AggSum, sql.AggAvg:
		if len(run) == 0 {
			return value.Value{}, nil
		}
		var si int64
		var sf float64
		isFloat := false
		for _, i := range run {
			v := base[i][a.Proj]
			if v.Kind() == value.Float {
				isFloat = true
				sf += v.Float()
			} else {
				si += v.Int()
			}
		}
		if a.Func == sql.AggAvg {
			return value.NewFloat((float64(si) + sf) / float64(len(run))), nil
		}
		if isFloat {
			return value.NewFloat(sf), nil
		}
		return value.NewInt(si), nil
	case sql.AggMin, sql.AggMax:
		if len(run) == 0 {
			return value.Value{}, nil
		}
		best := base[run[0]][a.Proj]
		for _, i := range run[1:] {
			v := base[i][a.Proj]
			c, err := value.Compare(v, best)
			if err != nil {
				return value.Value{}, err
			}
			if (a.Func == sql.AggMin && c < 0) || (a.Func == sql.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return value.Value{}, fmt.Errorf("baseline: unknown aggregate %v", a.Func)
}

// sortDistinct collapses duplicate visible rows, keeping first
// appearances in their original relative order.
func sortDistinct(rows [][]value.Value, width int) [][]value.Value {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := rows[idx[a]], rows[idx[b]]
		for k := 0; k < width; k++ {
			if c := cmpNullsFirst(ra[k], rb[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	var keepIdx []int
	for i, id := range idx {
		if i > 0 && equalPrefix(rows[idx[i-1]], rows[id], width) {
			continue
		}
		keepIdx = append(keepIdx, id)
	}
	sort.Ints(keepIdx)
	out := make([][]value.Value, len(keepIdx))
	for i, id := range keepIdx {
		out[i] = rows[id]
	}
	return out
}

func equalPrefix(a, b []value.Value, width int) bool {
	for k := 0; k < width; k++ {
		if cmpNullsFirst(a[k], b[k]) != 0 {
			return false
		}
	}
	return true
}

// cmpNullsFirst is the dialect's per-column total order: NULL first,
// then value.Compare, kind number as the incomparable fallback.
func cmpNullsFirst(a, b value.Value) int {
	av, bv := a.IsValid(), b.IsValid()
	switch {
	case !av && !bv:
		return 0
	case !av:
		return -1
	case !bv:
		return 1
	}
	c, err := value.Compare(a, b)
	if err != nil {
		return int(a.Kind()) - int(b.Kind())
	}
	return c
}
