package value

import (
	"fmt"
	"strconv"
	"strings"
)

// daysFromCivil converts a proleptic Gregorian civil date to days since
// 1970-01-01 (Howard Hinnant's algorithm).
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return int64(era)*146097 + int64(doe) - 719468
}

// civilFromDays converts days since 1970-01-01 back to a civil date.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400                                    //
	doy := doe - (365*yoe + yoe/4 - yoe/100)               // [0, 365]
	mp := (5*doy + 2) / 153                                // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)                        // [1, 31]
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// ParseDate parses a date literal. Two layouts are accepted:
//
//   - ISO:    "2006-11-05"  (YYYY-MM-DD)
//   - paper:  "05-11-2006"  (DD-MM-YYYY — the format used in the GhostDB
//     demo query "Vis.Date > 05-11-2006")
//
// Separators may be '-' or '/'.
func ParseDate(s string) (Value, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == '-' || r == '/' })
	if len(fields) != 3 {
		return Value{}, fmt.Errorf("value: invalid date literal %q", s)
	}
	nums := make([]int, 3)
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return Value{}, fmt.Errorf("value: invalid date literal %q: %v", s, err)
		}
		nums[i] = n
	}
	var y, m, d int
	if len(fields[0]) == 4 { // ISO YYYY-MM-DD
		y, m, d = nums[0], nums[1], nums[2]
	} else { // DD-MM-YYYY
		d, m, y = nums[0], nums[1], nums[2]
	}
	if m < 1 || m > 12 || d < 1 || d > 31 || y < 1 || y > 9999 {
		return Value{}, fmt.Errorf("value: date out of range %q", s)
	}
	return NewDate(y, m, d), nil
}

// Civil reports the year, month and day of a Date value. It panics if the
// kind is not Date.
func (v Value) Civil() (year, month, day int) {
	return civilFromDays(v.DateDays())
}
