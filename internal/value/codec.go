package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Append serializes v onto dst in the canonical wire/flash encoding and
// returns the extended slice. The encoding is a kind byte followed by:
//
//	Int, Date, Bool: zig-zag varint payload
//	Float:           8-byte little-endian IEEE bits
//	String:          uvarint length + raw bytes
func (v Value) Append(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case Int, Date, Bool:
		dst = binary.AppendVarint(dst, v.i)
	case Float:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.f))
		dst = append(dst, b[:]...)
	case String:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case Invalid:
		// kind byte alone
	default:
		panic(fmt.Sprintf("value: Append of unknown kind %d", v.kind))
	}
	return dst
}

// EncodedSize reports the number of bytes Append would produce for v.
func (v Value) EncodedSize() int {
	switch v.kind {
	case Int, Date, Bool:
		return 1 + varintLen(v.i)
	case Float:
		return 9
	case String:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	default:
		return 1
	}
}

// Decode parses one encoded value from src, returning the value and the
// number of bytes consumed.
func Decode(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("value: decode of empty buffer")
	}
	k := Kind(src[0])
	switch k {
	case Int, Date, Bool:
		i, n := binary.Varint(src[1:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: corrupt varint payload")
		}
		return Value{kind: k, i: i}, 1 + n, nil
	case Float:
		if len(src) < 9 {
			return Value{}, 0, fmt.Errorf("value: short float payload")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(src[1:9]))
		return Value{kind: k, f: f}, 9, nil
	case String:
		l, n := binary.Uvarint(src[1:])
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: corrupt string length")
		}
		start := 1 + n
		end := start + int(l)
		if end > len(src) {
			return Value{}, 0, fmt.Errorf("value: short string payload")
		}
		return Value{kind: k, s: string(src[start:end])}, end, nil
	case Invalid:
		return Value{}, 1, nil
	default:
		return Value{}, 0, fmt.Errorf("value: unknown kind byte %d", src[0])
	}
}

func varintLen(v int64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutVarint(buf[:], v)
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
