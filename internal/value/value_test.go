package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Invalid: "INVALID", Int: "INTEGER", Float: "FLOAT",
		String: "CHAR", Date: "DATE", Bool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "KIND(99)" {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(-42); v.Kind() != Int || v.Int() != -42 {
		t.Errorf("NewInt round trip failed: %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != Float || v.Float() != 2.5 {
		t.Errorf("NewFloat round trip failed: %v", v)
	}
	if v := NewString("x"); v.Kind() != String || v.Str() != "x" {
		t.Errorf("NewString round trip failed: %v", v)
	}
	if v := NewBool(true); v.Kind() != Bool || !v.Bool() {
		t.Errorf("NewBool round trip failed: %v", v)
	}
	if v := NewDate(2006, 11, 5); v.Kind() != Date {
		t.Errorf("NewDate kind = %v", v.Kind())
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value must be invalid")
	}
	if !NewInt(0).IsValid() {
		t.Error("NewInt(0) must be valid")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewString("a").Int() },
		func() { NewInt(1).Str() },
		func() { NewInt(1).Float() },
		func() { NewInt(1).Bool() },
		func() { NewInt(1).DateDays() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDateRoundTrip(t *testing.T) {
	dates := [][3]int{
		{1970, 1, 1}, {2006, 11, 5}, {2007, 9, 23}, {2000, 2, 29},
		{1999, 12, 31}, {2024, 2, 29}, {1900, 3, 1}, {2100, 1, 1},
	}
	for _, d := range dates {
		v := NewDate(d[0], d[1], d[2])
		y, m, dd := v.Civil()
		if y != d[0] || m != d[1] || dd != d[2] {
			t.Errorf("round trip %v -> (%d,%d,%d)", d, y, m, dd)
		}
	}
	if NewDate(1970, 1, 1).DateDays() != 0 {
		t.Error("epoch must be day 0")
	}
	if NewDate(1970, 1, 2).DateDays() != 1 {
		t.Error("1970-01-02 must be day 1")
	}
	if NewDate(1969, 12, 31).DateDays() != -1 {
		t.Error("1969-12-31 must be day -1")
	}
}

func TestDateOrderingIsDense(t *testing.T) {
	// Walking a calendar month by day increments the day count by one.
	prev := NewDate(2006, 12, 31).DateDays()
	for d := 1; d <= 31; d++ {
		cur := NewDate(2007, 1, d).DateDays()
		if cur != prev+1 {
			t.Fatalf("2007-01-%02d: days %d, want %d", d, cur, prev+1)
		}
		prev = cur
	}
}

func TestParseDate(t *testing.T) {
	iso, err := ParseDate("2006-11-05")
	if err != nil {
		t.Fatalf("ParseDate ISO: %v", err)
	}
	paper, err := ParseDate("05-11-2006")
	if err != nil {
		t.Fatalf("ParseDate paper format: %v", err)
	}
	if iso != paper {
		t.Errorf("ISO %v != paper %v", iso, paper)
	}
	if iso.String() != "2006-11-05" {
		t.Errorf("String() = %q", iso.String())
	}
	slash, err := ParseDate("2006/11/05")
	if err != nil || slash != iso {
		t.Errorf("slash separators: %v, %v", slash, err)
	}
	for _, bad := range []string{"", "2006-11", "a-b-c", "2006-13-05", "2006-00-05", "05-11-0"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewDate(2006, 11, 5), NewDate(2007, 1, 1), -1},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestCompareCoercions(t *testing.T) {
	if got, err := Compare(NewInt(2), NewFloat(2.5)); err != nil || got != -1 {
		t.Errorf("Int vs Float: %d, %v", got, err)
	}
	if got, err := Compare(NewFloat(3.0), NewInt(2)); err != nil || got != 1 {
		t.Errorf("Float vs Int: %d, %v", got, err)
	}
	if got, err := Compare(NewString("2006-11-05"), NewDate(2006, 11, 6)); err != nil || got != -1 {
		t.Errorf("String vs Date: %d, %v", got, err)
	}
	if got, err := Compare(NewDate(2006, 11, 7), NewString("05-11-2006")); err != nil || got != 1 {
		t.Errorf("Date vs String(paper): %d, %v", got, err)
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("Int vs String must be incomparable")
	}
	if _, err := Compare(NewString("notadate"), NewDate(2000, 1, 1)); err == nil {
		t.Error("bad date literal must error")
	}
}

func TestCoerce(t *testing.T) {
	d, err := Coerce(NewString("2006-11-05"), Date)
	if err != nil || d != NewDate(2006, 11, 5) {
		t.Errorf("Coerce string->date: %v, %v", d, err)
	}
	f, err := Coerce(NewInt(3), Float)
	if err != nil || f.Float() != 3.0 {
		t.Errorf("Coerce int->float: %v, %v", f, err)
	}
	same, err := Coerce(NewInt(3), Int)
	if err != nil || same != NewInt(3) {
		t.Errorf("Coerce identity: %v, %v", same, err)
	}
	if _, err := Coerce(NewString("x"), Int); err == nil {
		t.Error("string->int coercion must fail")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{}, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(0.5), "0.5"},
		{NewString("hi"), "hi"},
		{NewDate(2007, 9, 23), "2007-09-23"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
	if got := NewString("hi").SQL(); got != "'hi'" {
		t.Errorf("SQL string literal = %q", got)
	}
	if got := NewDate(2006, 11, 5).SQL(); got != "'2006-11-05'" {
		t.Errorf("SQL date literal = %q", got)
	}
	if got := NewInt(5).SQL(); got != "5" {
		t.Errorf("SQL int literal = %q", got)
	}
}

func TestHash64Distinguishes(t *testing.T) {
	vals := []Value{
		NewInt(1), NewInt(2), NewString("1"), NewString("2"),
		NewDate(1970, 1, 2), NewBool(true), NewFloat(1.0),
	}
	seen := map[uint64]Value{}
	for _, v := range vals {
		h := v.Hash64()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %v and %v", prev, v)
		}
		seen[h] = v
	}
	if NewInt(7).Hash64() != NewInt(7).Hash64() {
		t.Error("hash must be deterministic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		{}, NewInt(0), NewInt(-1), NewInt(1 << 40), NewFloat(3.14159),
		NewFloat(math.Inf(1)), NewString(""), NewString("hello world"),
		NewDate(2006, 11, 5), NewBool(true), NewBool(false),
	}
	var buf []byte
	for _, v := range vals {
		if got := v.EncodedSize(); got != len(v.Append(nil)) {
			t.Errorf("EncodedSize(%v) = %d, want %d", v, got, len(v.Append(nil)))
		}
		buf = v.Append(buf)
	}
	for _, want := range vals {
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got != want {
			t.Errorf("decoded %v, want %v", got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes after decode", len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(Float), 1, 2},     // short float
		{byte(String), 200},     // corrupt length varint (non-terminated)
		{byte(String), 10, 'a'}, // short string payload
		{77},                    // unknown kind
		{byte(Int)},             // missing varint payload
	}
	for i, b := range bad {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode(% x) should fail", i, b)
		}
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := NewInt(i)
		got, n, err := Decode(v.Append(nil))
		return err == nil && got == v && n == v.EncodedSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v := NewString(s)
		got, n, err := Decode(v.Append(nil))
		return err == nil && got == v && n == v.EncodedSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDateRoundTrip(t *testing.T) {
	f := func(days int32) bool {
		v := NewDateDays(int64(days))
		y, m, d := v.Civil()
		return NewDate(y, m, d) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, _ := Compare(x, y)
		c2, _ := Compare(y, x)
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSQLRendersRelexableLiterals(t *testing.T) {
	// Quotes double, so the canonical text re-lexes.
	if got := NewString("it's").SQL(); got != "'it''s'" {
		t.Errorf("SQL(it's) = %s", got)
	}
	// Floats render in plain decimal (no exponent) and keep a '.', so
	// they re-parse as FLOAT, not INTEGER.
	if got := NewFloat(1e6).SQL(); got != "1000000.0" {
		t.Errorf("SQL(1e6) = %s", got)
	}
	if got := NewFloat(1.5).SQL(); got != "1.5" {
		t.Errorf("SQL(1.5) = %s", got)
	}
}
