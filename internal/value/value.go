// Package value defines the typed scalar values GhostDB stores and compares:
// integers, strings, dates and floats. Values are small immutable structs,
// comparable with ==, usable as map keys, and carry their own binary codec
// for flash storage and wire transfer.
package value

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported kinds. Invalid is the zero Kind; a zero Value is Invalid.
const (
	Invalid Kind = iota
	Int          // 64-bit signed integer
	Float        // 64-bit IEEE float
	String       // UTF-8 string (CHAR/VARCHAR)
	Date         // calendar date, stored as days since 1970-01-01
	Bool         // boolean
	Param        // unbound query parameter ('?' placeholder), payload is its ordinal
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Invalid:
		return "INVALID"
	case Int:
		return "INTEGER"
	case Float:
		return "FLOAT"
	case String:
		return "CHAR"
	case Date:
		return "DATE"
	case Bool:
		return "BOOLEAN"
	case Param:
		return "PARAM"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Value is a typed scalar. The zero Value has Kind Invalid. Values are
// comparable with == (no reference fields), so they can key maps; use
// Compare for SQL ordering semantics.
type Value struct {
	kind Kind
	i    int64 // Int payload, Date days, Bool 0/1
	f    float64
	s    string
}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: Int, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: Float, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: String, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// NewDateDays returns a date value from a days-since-epoch count.
func NewDateDays(days int64) Value { return Value{kind: Date, i: days} }

// NewParam returns an unbound parameter placeholder with the given
// 0-based ordinal. Parameters never reach storage or comparison: they
// are substituted by real values when a compiled query is bound.
func NewParam(ordinal int) Value { return Value{kind: Param, i: int64(ordinal)} }

// IsParam reports whether the value is an unbound parameter.
func (v Value) IsParam() bool { return v.kind == Param }

// ParamOrdinal returns the placeholder's 0-based ordinal. It panics if
// the kind is not Param.
func (v Value) ParamOrdinal() int {
	if v.kind != Param {
		panic("value: ParamOrdinal() on " + v.kind.String())
	}
	return int(v.i)
}

// NewDate returns a date value for the given civil year, month and day.
func NewDate(year, month, day int) Value {
	return Value{kind: Date, i: daysFromCivil(year, month, day)}
}

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value carries a kind.
func (v Value) IsValid() bool { return v.kind != Invalid }

// Int returns the integer payload. It panics if the kind is not Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload. It panics if the kind is not Float.
func (v Value) Float() float64 {
	if v.kind != Float {
		panic("value: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the string payload. It panics if the kind is not String.
func (v Value) Str() string {
	if v.kind != String {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the kind is not Bool.
func (v Value) Bool() bool {
	if v.kind != Bool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// DateDays returns the days-since-epoch payload. It panics if the kind is
// not Date.
func (v Value) DateDays() int64 {
	if v.kind != Date {
		panic("value: DateDays() on " + v.kind.String())
	}
	return v.i
}

// String renders the value for display: dates as YYYY-MM-DD, strings
// unquoted, numbers in decimal.
func (v Value) String() string {
	switch v.kind {
	case Invalid:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return v.s
	case Date:
		y, m, d := civilFromDays(v.i)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case Param:
		return "?"
	}
	return "?"
}

// SQL renders the value as a SQL literal (strings quoted with internal
// quotes doubled, dates quoted ISO, floats in plain decimal so the text
// re-lexes, parameters as their bare placeholder — which makes a
// statement's canonical text a parameter-independent shape).
func (v Value) SQL() string {
	switch v.kind {
	case String:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case Date:
		return "'" + v.String() + "'"
	case Float:
		s := strconv.FormatFloat(v.f, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0" // keep the literal a FLOAT on re-parse
		}
		return s
	default:
		return v.String()
	}
}

// ErrIncomparable is returned by Compare when two kinds cannot be ordered
// against each other even after coercion.
var ErrIncomparable = errors.New("value: incomparable kinds")

// Compare orders a against b: -1, 0 or +1. Numeric kinds compare after
// widening; a String compares against a Date by parsing the string as a
// date (how the SQL front end passes date literals). Other cross-kind
// comparisons return ErrIncomparable.
func Compare(a, b Value) (int, error) {
	if a.kind == b.kind {
		switch a.kind {
		case Int, Date, Bool:
			return cmpI64(a.i, b.i), nil
		case Float:
			return cmpF64(a.f, b.f), nil
		case String:
			switch {
			case a.s < b.s:
				return -1, nil
			case a.s > b.s:
				return 1, nil
			default:
				return 0, nil
			}
		default:
			return 0, ErrIncomparable
		}
	}
	// Coercions.
	switch {
	case a.kind == Int && b.kind == Float:
		return cmpF64(float64(a.i), b.f), nil
	case a.kind == Float && b.kind == Int:
		return cmpF64(a.f, float64(b.i)), nil
	case a.kind == String && b.kind == Date:
		ad, err := ParseDate(a.s)
		if err != nil {
			return 0, err
		}
		return cmpI64(ad.i, b.i), nil
	case a.kind == Date && b.kind == String:
		bd, err := ParseDate(b.s)
		if err != nil {
			return 0, err
		}
		return cmpI64(a.i, bd.i), nil
	}
	return 0, fmt.Errorf("%w: %s vs %s", ErrIncomparable, a.kind, b.kind)
}

// Coerce converts v to kind k when a lossless conversion exists, e.g. a
// string date literal to a Date. It returns the value unchanged when
// already of kind k. Unbound parameters pass through untouched: they are
// coerced once real values are bound.
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == k || v.kind == Param {
		return v, nil
	}
	switch {
	case v.kind == String && k == Date:
		return ParseDate(v.s)
	case v.kind == Int && k == Float:
		return NewFloat(float64(v.i)), nil
	case v.kind == Int && k == Date:
		return NewDateDays(v.i), nil
	}
	return Value{}, fmt.Errorf("value: cannot coerce %s to %s", v.kind, k)
}

// Hash64 returns a 64-bit FNV-1a hash of the value's canonical encoding,
// used by Bloom filters and the baseline hash join.
func (v Value) Hash64() uint64 {
	h := fnv.New64a()
	var buf [10]byte
	buf[0] = byte(v.kind)
	switch v.kind {
	case String:
		h.Write(buf[:1])
		h.Write([]byte(v.s))
	case Float:
		// Normalize via the integer payload pattern.
		bits := uint64(0)
		if v.f == v.f { // not NaN
			bits = math.Float64bits(v.f)
		}
		putU64(buf[1:9], bits)
		h.Write(buf[:9])
	default:
		putU64(buf[1:9], uint64(v.i))
		h.Write(buf[:9])
	}
	return h.Sum64()
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
