package sim

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", c.Now())
	}
	mark := c.Now()
	c.Advance(time.Millisecond)
	if c.Span(mark) != time.Millisecond {
		t.Errorf("Span = %v, want 1ms", c.Span(mark))
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset Now() = %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative advance")
		}
	}()
	NewClock().Advance(-1)
}

func TestCPUCharge(t *testing.T) {
	c := NewClock()
	cpu := NewCPU(c, 50e6) // 50 MHz, 20ns per cycle
	cpu.Charge(50)
	if got := c.Now(); got != time.Microsecond {
		t.Errorf("50 cycles at 50MHz = %v, want 1µs", got)
	}
	cpu.Charge(0)
	cpu.Charge(-5)
	if got := c.Now(); got != time.Microsecond {
		t.Errorf("zero/negative charges must be free, got %v", got)
	}
	if cpu.Hz() != 50e6 {
		t.Errorf("Hz() = %v", cpu.Hz())
	}
}

func TestCPUInvalidFrequencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero frequency")
		}
	}()
	NewCPU(NewClock(), 0)
}

// TestClockConcurrentReads checks that monitoring goroutines may read the
// clock while the device-gate holder advances it. Run with -race.
func TestClockConcurrentReads(t *testing.T) {
	c := NewClock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Advance(time.Microsecond)
		}
	}()
	last := time.Duration(0)
	for {
		now := c.Now()
		if now < last {
			t.Fatalf("clock went backwards: %v after %v", now, last)
		}
		last = now
		select {
		case <-done:
			if got := c.Now(); got != 1000*time.Microsecond {
				t.Fatalf("final time = %v", got)
			}
			return
		default:
		}
	}
}
