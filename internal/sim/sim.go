// Package sim provides the deterministic simulated clock and CPU cost model
// that every hardware component of the GhostDB smart USB device charges
// against.
//
// The paper's evaluation ran on "a software simulator of the USB device"
// (GhostDB demo, Section 5); this package is the equivalent substrate. All
// latencies — flash page reads and programs, block erases, USB transfers,
// per-tuple CPU work — advance a single Clock, so experiment results are
// deterministic and independent of the host machine.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing simulated clock. The zero value is a
// clock at time zero, ready to use.
//
// The device is a single-core 32-bit RISC chip, so all charging (Advance)
// happens from the one goroutine that currently holds the engine's device
// gate. Reads, however, may come from any goroutine — sessions reporting
// progress, benchmarks sampling throughput — so the clock value is stored
// atomically and every method is safe for concurrent use.
type Clock struct {
	now atomic.Int64 // time.Duration
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves simulated time forward by d. Negative d panics: time is
// monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now.Add(int64(d))
}

// Reset rewinds the clock to zero. Benchmarks use it between plan runs.
func (c *Clock) Reset() { c.now.Store(0) }

// Span measures the simulated time elapsed since a mark obtained from Now.
func (c *Clock) Span(since time.Duration) time.Duration { return c.Now() - since }

// CPU models the secure chip's processor as a cycle-accounted cost source.
// Operators charge a number of cycles per unit of work; the CPU converts
// cycles to simulated time at its clock rate.
type CPU struct {
	clock *Clock
	hz    float64
}

// NewCPU returns a CPU running at hz cycles per second charging to clock.
func NewCPU(clock *Clock, hz float64) *CPU {
	if hz <= 0 {
		panic("sim: CPU frequency must be positive")
	}
	return &CPU{clock: clock, hz: hz}
}

// Hz reports the CPU frequency in cycles per second.
func (c *CPU) Hz() float64 { return c.hz }

// Charge advances the clock by the duration of n cycles.
func (c *CPU) Charge(n int64) {
	if n <= 0 {
		return
	}
	c.clock.Advance(time.Duration(float64(n) / c.hz * float64(time.Second)))
}

// ChargeUnits advances the clock for units work items of cycles each. It
// is bit-identical to calling Charge(cycles) units times — the per-unit
// duration is computed (and truncated) once and then multiplied — so the
// vectorized engine can charge a whole batch in one call without
// perturbing the simulated time the row-at-a-time engine would produce.
func (c *CPU) ChargeUnits(cycles, units int64) {
	if cycles <= 0 || units <= 0 {
		return
	}
	per := time.Duration(float64(cycles) / c.hz * float64(time.Second))
	c.clock.Advance(per * time.Duration(units))
}

// Typical per-tuple cycle costs used by the execution engine. They are
// deliberately coarse: the experiments depend on the ratio between flash,
// bus and CPU costs, not on instruction-level accuracy.
const (
	CyclesCompare   = 20  // compare two IDs or fixed-width values
	CyclesHash      = 60  // hash a key for a Bloom filter probe
	CyclesCopyWord  = 4   // copy 4 bytes
	CyclesHeapOp    = 80  // push/pop on a merge heap
	CyclesPredicate = 120 // evaluate one predicate on a decoded value
	CyclesDecode    = 40  // decode one varint / value header
	CyclesTombstone = 24  // probe the delta's tombstone/shadow set for one ID
	CyclesDeltaRow  = 200 // locate + decode one delta-resident row image in RAM
)
