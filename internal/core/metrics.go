package core

import (
	"github.com/ghostdb/ghostdb/internal/metrics"
)

// engineMetrics holds pre-registered pointers into one metrics.Registry
// so the hot path pays a few atomic adds and zero map lookups per query.
// Every field is nil-safe: a nil *engineMetrics (metrics disabled via
// WithMetrics(false)) makes every feed a no-op.
//
// Time histograms come in pairs: *_wall_ns is host wall-clock,
// *_sim_ns is simulated device time. Feeding metrics never charges the
// simulated clock, so enabling them cannot change any reported result.
type engineMetrics struct {
	reg *metrics.Registry

	queries         *metrics.Counter
	queryErrors     *metrics.Counter
	queriesCanceled *metrics.Counter
	rowsReturned    *metrics.Counter
	batchesPulled   *metrics.Counter
	slowQueries     *metrics.Counter

	planCacheHits   *metrics.Counter
	planCacheMisses *metrics.Counter

	dmlStatements   *metrics.Counter
	rowsAffected    *metrics.Counter
	checkpoints     *metrics.Counter
	tombstoneProbes *metrics.Counter

	flashPageReads *metrics.Counter
	busBytes       *metrics.Counter

	faultsInjected   *metrics.Counter
	faultsRetried    *metrics.Counter
	checksumFailures *metrics.Counter
	recoveries       *metrics.Counter
	recordSim        *metrics.Counter

	ramHighWater *metrics.MaxGauge

	deltaRows       *metrics.Gauge
	deltaTombstones *metrics.Gauge
	deltaBytes      *metrics.Gauge

	queryWall      *metrics.Histogram
	querySim       *metrics.Histogram
	checkpointWall *metrics.Histogram
	checkpointSim  *metrics.Histogram
	recoveryWall   *metrics.Histogram
}

// newEngineMetrics builds a registry with the engine's full metric set.
func newEngineMetrics() *engineMetrics {
	r := metrics.NewRegistry()
	return &engineMetrics{
		reg: r,

		queries:         r.Counter("queries_total", "queries executed"),
		queryErrors:     r.Counter("query_errors_total", "queries that returned an error"),
		queriesCanceled: r.Counter("queries_canceled_total", "queries stopped by context cancellation"),
		rowsReturned:    r.Counter("rows_returned_total", "result rows delivered to clients"),
		batchesPulled:   r.Counter("batches_pulled_total", "vectorized batches pulled through the root stream"),
		slowQueries:     r.Counter("slow_queries_total", "queries over the slow-query threshold"),

		planCacheHits:   r.Counter("plan_cache_hits_total", "compilations served from the plan cache"),
		planCacheMisses: r.Counter("plan_cache_misses_total", "compilations that parsed and planned from scratch"),

		dmlStatements:   r.Counter("dml_statements_total", "INSERT/UPDATE/DELETE statements executed"),
		rowsAffected:    r.Counter("rows_affected_total", "rows touched by DML"),
		checkpoints:     r.Counter("checkpoints_total", "CHECKPOINT merges that absorbed delta entries"),
		tombstoneProbes: r.Counter("tombstone_probes_total", "device liveness probes against the tombstone set"),

		flashPageReads: r.Counter("flash_page_reads_total", "simulated flash page reads charged to queries"),
		busBytes:       r.Counter("bus_bytes_total", "bytes that crossed the terminal-device wire"),

		faultsInjected:   r.Counter("faults_injected_total", "faults injected into the device stack by the fault plan"),
		faultsRetried:    r.Counter("faults_retried_total", "transient faults absorbed by the retry-with-backoff path"),
		checksumFailures: r.Counter("checksum_failures_total", "flash page reads that failed OOB checksum verification"),
		recoveries:       r.Counter("recoveries_total", "databases rebuilt from a flash snapshot via Recover"),
		recordSim:        r.Counter("commit_record_sim_ns_total", "simulated device time spent writing checkpoint commit records"),

		ramHighWater: r.MaxGauge("ram_high_water_bytes", "device RAM arena high-water mark"),

		deltaRows:       r.Gauge("delta_rows", "live rows resident in the RAM delta store"),
		deltaTombstones: r.Gauge("delta_tombstones", "tombstones resident in the RAM delta store"),
		deltaBytes:      r.Gauge("delta_device_bytes", "device RAM held by the delta store"),

		queryWall:      r.Histogram("query_wall_ns", "query latency, host wall-clock"),
		querySim:       r.Histogram("query_sim_ns", "query latency, simulated device time"),
		checkpointWall: r.Histogram("checkpoint_wall_ns", "CHECKPOINT duration, host wall-clock"),
		checkpointSim:  r.Histogram("checkpoint_sim_ns", "CHECKPOINT duration, simulated device time"),
		recoveryWall:   r.Histogram("recovery_wall_ns", "Recover duration, host wall-clock"),
	}
}

// faultSink adapts the engine metrics registry to the fault injector's
// Sink interface. All methods are nil-safe against disabled metrics.
type faultSink struct{ m *engineMetrics }

func (s faultSink) FaultInjected(string, bool) {
	if s.m != nil {
		s.m.faultsInjected.Inc()
	}
}

func (s faultSink) FaultRetried(string) {
	if s.m != nil {
		s.m.faultsRetried.Inc()
	}
}

func (s faultSink) ChecksumFailure() {
	if s.m != nil {
		s.m.checksumFailures.Inc()
	}
}

// snapshot returns the registry snapshot; nil when metrics are off.
func (m *engineMetrics) snapshot() metrics.Snapshot {
	if m == nil {
		return nil
	}
	return m.reg.Snapshot()
}

// noteDelta refreshes the delta-store gauges from the store's current
// footprint. Callers hold db.mu (the delta store is device state). On a
// sharded DB the gauges carry the logical delta aggregated over the
// shard set (child locks only, so this is safe under db.mu or ss.mu).
func (m *engineMetrics) noteDelta(db *DB) {
	if m == nil {
		return
	}
	var rows, tombs int
	var deviceBytes int64
	if db.shards != nil {
		if !db.loaded {
			return // staged load: no delta, and the schema isn't frozen yet
		}
		for _, d := range db.shards.deltaStats(db) {
			rows += d.Rows
			tombs += d.Tombstones
			deviceBytes += d.DeviceB
		}
	} else {
		for _, dt := range db.delta.Tables() {
			if !dt.Dirty() {
				continue
			}
			rows += dt.Rows()
			tombs += dt.Tombstones()
			deviceBytes += dt.DeviceBytes()
		}
	}
	m.deltaRows.Set(int64(rows))
	m.deltaTombstones.Set(int64(tombs))
	m.deltaBytes.Set(deviceBytes)
}

// MetricsSnapshot returns a point-in-time snapshot of the engine-wide
// metrics registry (counters, gauges, histograms), sorted by name.
// Returns nil when metrics are disabled (WithMetrics(false)).
func (db *DB) MetricsSnapshot() metrics.Snapshot {
	return db.metrics.snapshot()
}

// MetricsSnapshot returns this session's private metrics (queries,
// latency histograms, rows) — the same names as the DB registry but
// scoped to the session's own traffic. Nil when metrics are disabled.
func (s *Session) MetricsSnapshot() metrics.Snapshot {
	return s.metrics.snapshot()
}

// CheckpointsRun reports how many CHECKPOINT merges have absorbed delta
// entries over the DB's lifetime (manual and automatic).
func (db *DB) CheckpointsRun() int64 {
	return db.checkpointsRun.Load()
}

// ShardMetrics returns one registry snapshot per device shard, indexed
// by shard number. Children feed their own registries from their local
// executions (flash, bus, RAM, batches); coordinator-level counters
// such as queries_total stay on the DB's own registry. Nil on a
// single-device DB or when metrics are disabled.
func (db *DB) ShardMetrics() []metrics.Snapshot {
	if db.shards == nil || db.metrics == nil {
		return nil
	}
	out := make([]metrics.Snapshot, len(db.shards.children))
	for i, c := range db.shards.children {
		out[i] = c.MetricsSnapshot()
	}
	return out
}
