package core

import (
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
)

// TestMediumScaleAllPlans runs the paper's demo query under every
// enumerated plan at a 100K-prescription scale and checks that all plans
// agree, stay inside the RAM budget, and produce distinct cost profiles.
// Skipped under -short.
func TestMediumScaleAllPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale test skipped in -short mode")
	}
	ds := datagen.Generate(datagen.WithScale(100_000))
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(ds); err != nil {
		t.Fatal(err)
	}
	q, err := db.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	specs := db.Plans(q)
	if len(specs) < 4 {
		t.Fatalf("only %d plans", len(specs))
	}
	rows := -1
	for _, spec := range specs {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Describe(q), err)
		}
		if rows == -1 {
			rows = len(res.Rows)
		} else if rows != len(res.Rows) {
			t.Fatalf("%s returned %d rows, others %d", spec.Label, len(res.Rows), rows)
		}
		if res.Report.RAMHigh > db.Device().RAM.Budget() {
			t.Errorf("%s: RAM %d over budget", spec.Label, res.Report.RAMHigh)
		}
		if res.Report.TotalTime <= 0 {
			t.Errorf("%s: no simulated time", spec.Label)
		}
		t.Logf("%s: sim=%v ram=%d rows=%d", spec.Describe(q), res.Report.TotalTime, res.Report.RAMHigh, len(res.Rows))
	}
	if rows <= 0 {
		t.Error("demo query selected nothing at medium scale")
	}
}
