package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/oracle"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

// paperQuery is the demo query from Section 4, verbatim.
const paperQuery = `SELECT
	Med.Name, Pre.Quantity, Vis.Date
	FROM Medicine Med, Prescription Pre, Visit Vis
	WHERE
	Vis.Date > 05-11-2006 /*VISIBLE*/
	AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
	AND Med.Type = "Antibiotic"  /*VISIBLE*/
	AND Med.MedID = Pre.MedID
	AND Vis.VisID = Pre.VisID;`

// loadTiny opens a DB with the tiny synthetic dataset and a matching
// oracle.
func loadTiny(t *testing.T, opts ...Option) (*DB, *oracle.Oracle, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Generate(datagen.Tiny())
	db, err := Open(append(testBackendOptions(t), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(ds); err != nil {
		t.Fatal(err)
	}
	cols := map[string][][]value.Value{}
	for _, name := range ds.TableNames() {
		cols[name] = ds.Table(name).Cols
	}
	orc, err := oracle.New(db.Schema(), cols)
	if err != nil {
		t.Fatal(err)
	}
	return db, orc, ds
}

func sameRows(a, b [][]value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func checkAgainstOracle(t *testing.T, db *DB, orc *oracle.Oracle, sqlText string) *Result {
	t.Helper()
	wantCols, wantRows, err := orc.Query(sqlText)
	if err != nil {
		t.Fatalf("oracle(%s): %v", sqlText, err)
	}
	res, err := db.Query(sqlText)
	if err != nil {
		t.Fatalf("engine(%s): %v", sqlText, err)
	}
	if !reflect.DeepEqual(res.Columns, wantCols) {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	if !sameRows(res.Rows, wantRows) {
		t.Fatalf("query %s:\nplan %s\n got %d rows\nwant %d rows\nfirst got: %v\nfirst want: %v",
			sqlText, res.Spec.Label, len(res.Rows), len(wantRows), head(res.Rows), head(wantRows))
	}
	return res
}

func head(rows [][]value.Value) []value.Value {
	if len(rows) == 0 {
		return nil
	}
	return rows[0]
}

func TestPaperQueryAgainstOracle(t *testing.T) {
	db, orc, _ := loadTiny(t)
	res := checkAgainstOracle(t, db, orc, paperQuery)
	if len(res.Rows) == 0 {
		t.Fatal("paper query returned no rows on the tiny dataset; selectivities are miscalibrated")
	}
	if res.Report.TotalTime <= 0 {
		t.Error("no simulated time charged")
	}
	if res.Report.RAMHigh > db.Device().RAM.Budget() {
		t.Errorf("RAM high %d exceeds budget %d", res.Report.RAMHigh, db.Device().RAM.Budget())
	}
}

func TestPaperQueryAllPlans(t *testing.T) {
	db, orc, _ := loadTiny(t)
	q, err := db.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantCols, wantRows, err := orc.Query(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	specs := db.Plans(q)
	if len(specs) < 4 {
		t.Fatalf("only %d plans enumerated", len(specs))
	}
	for _, spec := range specs {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			t.Fatalf("plan %s: %v", spec.Describe(q), err)
		}
		if !reflect.DeepEqual(res.Columns, wantCols) {
			t.Fatalf("plan %s: columns %v", spec.Label, res.Columns)
		}
		if !sameRows(res.Rows, wantRows) {
			t.Errorf("plan %s (%s): %d rows, oracle %d",
				spec.Label, spec.Describe(q), len(res.Rows), len(wantRows))
		}
		if res.Report.RAMHigh > db.Device().RAM.Budget() {
			t.Errorf("plan %s: RAM %d over budget", spec.Label, res.Report.RAMHigh)
		}
	}
}

func TestQueryShapes(t *testing.T) {
	db, orc, _ := loadTiny(t)
	queries := []string{
		// Single table, hidden equality.
		`SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity = 7`,
		// Single table, visible range.
		`SELECT Vis.VisID, Vis.Date FROM Visit Vis WHERE Vis.Date > 2006-06-01`,
		// Hidden range on the root.
		`SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity BETWEEN 10 AND 20`,
		// Join without selections restricted by a hidden FK predicate.
		`SELECT Pre.PreID, Med.Name FROM Prescription Pre, Medicine Med WHERE Med.MedID = Pre.MedID AND Med.Type = 'Antibiotic'`,
		// Deep climb: doctor country up to prescriptions.
		`SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Doctor Doc WHERE Doc.Country = 'Spain' AND Vis.Purpose = 'Sclerosis'`,
		// Query root below the schema root.
		`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc WHERE Vis.DocID = Doc.DocID AND Doc.Speciality = 'Cardiology' AND Vis.Purpose = 'Migraine'`,
		// IN and hidden int predicates.
		`SELECT Pat.PatID, Pat.Age FROM Patient Pat WHERE Pat.Country IN ('France', 'Spain') AND Pat.BodyMassIndex > 30`,
		// Not-equal on a hidden column.
		`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose <> 'Sclerosis' AND Vis.Date > 2007-01-01`,
		// Projection of hidden FK values.
		`SELECT Vis.VisID, Vis.DocID FROM Visit Vis WHERE Vis.Date > 2007-03-01`,
		// Star.
		`SELECT * FROM Doctor WHERE Country = 'Spain'`,
		// No predicates at all (full scan of a small table).
		`SELECT Med.Name FROM Medicine Med`,
		// Unqualified column names.
		`SELECT Name FROM Doctor WHERE Speciality = 'Oncology'`,
	}
	for _, sqlText := range queries {
		checkAgainstOracle(t, db, orc, sqlText)
	}
}

func TestAllPlansAgreeOnJoins(t *testing.T) {
	db, orc, _ := loadTiny(t)
	queries := []string{
		`SELECT Pre.PreID, Vis.Date FROM Prescription Pre, Visit Vis WHERE Vis.Date > 2006-06-01 AND Pre.Quantity < 50`,
		`SELECT Pre.PreID FROM Prescription Pre, Medicine Med, Visit Vis WHERE Med.Type = 'Vaccine' AND Vis.Purpose = 'Asthma'`,
		`SELECT Vis.VisID, Pat.Age FROM Visit Vis, Patient Pat WHERE Pat.Age > 40 AND Vis.Purpose = 'Diabetes-Type1'`,
	}
	for _, sqlText := range queries {
		q, err := db.Prepare(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		_, wantRows, err := orc.Query(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range db.Plans(q) {
			res, err := db.QueryWithPlan(q, spec)
			if err != nil {
				t.Fatalf("%s / %s: %v", sqlText, spec.Describe(q), err)
			}
			if !sameRows(res.Rows, wantRows) {
				t.Errorf("%s / %s: %d rows, oracle %d", sqlText, spec.Describe(q), len(res.Rows), len(wantRows))
			}
		}
	}
}

func TestOneWayFlowInvariant(t *testing.T) {
	db, _, _ := loadTiny(t, WithCapture(trace.CaptureFull))
	if _, err := db.Query(paperQuery); err != nil {
		t.Fatal(err)
	}
	for _, e := range db.Recorder().Events() {
		if e.From == trace.Device && e.To != trace.Display {
			t.Fatalf("device sent %s to %s: one-way flow violated", e.Kind, e.To)
		}
	}
}

func TestSecurityAuditNoLeaks(t *testing.T) {
	db, _, _ := loadTiny(t, WithCapture(trace.CaptureFull))
	queries := []string{
		paperQuery,
		`SELECT Pat.Name FROM Patient Pat WHERE Pat.Age > 30`,
		`SELECT Vis.Purpose, Vis.Date FROM Visit Vis WHERE Vis.Date > 2006-01-01 AND Vis.Purpose = 'Migraine'`,
	}
	for _, sqlText := range queries {
		if _, err := db.Query(sqlText); err != nil {
			t.Fatalf("%s: %v", sqlText, err)
		}
	}
	leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("hidden values leaked: %v", leaks[0])
	}
	// Sanity: the hidden set is non-trivial and the trace is non-trivial.
	if db.HiddenValues().Len() == 0 {
		t.Error("hidden value set empty")
	}
	if db.Recorder().Len() == 0 {
		t.Error("no trace recorded")
	}
}

func TestSpySeesOnlyQueriesAndVisibleData(t *testing.T) {
	db, _, _ := loadTiny(t, WithCapture(trace.CaptureFull))
	if _, err := db.Query(paperQuery); err != nil {
		t.Fatal(err)
	}
	spy := db.Recorder().SpyView()
	if len(spy) == 0 {
		t.Fatal("spy view empty")
	}
	for _, e := range spy {
		if e.Kind == trace.KindResult {
			t.Errorf("result traffic visible to spy: %v", e)
		}
	}
}

func TestPlanReportsDiffer(t *testing.T) {
	db, _, _ := loadTiny(t)
	q, err := db.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	specs := db.Plans(q)
	times := map[string]bool{}
	for _, spec := range specs {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			t.Fatal(err)
		}
		times[fmt.Sprint(res.Report.TotalTime)] = true
		if len(res.Report.Ops) == 0 {
			t.Errorf("plan %s has no operator stats", spec.Label)
		}
	}
	if len(times) < 2 {
		t.Error("all plans took identical simulated time; cost model degenerate")
	}
}

func TestOptimizerPicksReasonablePlan(t *testing.T) {
	db, _, _ := loadTiny(t)
	q, err := db.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := db.Query(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer's choice should be within 3x of the best plan found
	// by exhaustive execution.
	best := auto.Report.TotalTime
	for _, spec := range db.Plans(q) {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.TotalTime < best {
			best = res.Report.TotalTime
		}
	}
	if auto.Report.TotalTime > 3*best {
		t.Errorf("optimizer chose %v, best plan %v", auto.Report.TotalTime, best)
	}
}

func TestExecScriptSmallData(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	script := `
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1),
  (4, DATE '2006-12-24', 'Flu', 2);
`
	if err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'Spain' AND Vis.DocID = Doc.DocID`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != value.NewInt(2) || res.Rows[0][1] != value.NewString("Gall") {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInsertValidation(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecDDL(`CREATE TABLE T (ID INTEGER PRIMARY KEY, X INTEGER)`); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`INSERT INTO T VALUES (2, 10)`,    // non-dense key
		`INSERT INTO T VALUES (1)`,        // arity
		`INSERT INTO Ghost VALUES (1, 2)`, // unknown table
		`INSERT INTO T VALUES ('x', 1)`,   // key type
	}
	for _, s := range bad {
		stmt, err := sql.Parse(s)
		if err != nil {
			t.Fatalf("parse %s: %v", s, err)
		}
		if err := db.Insert(stmt.(*sql.Insert)); err == nil {
			t.Errorf("Insert(%s) accepted", s)
		}
	}
}

func TestStorageBreakdown(t *testing.T) {
	db, _, _ := loadTiny(t)
	st := db.Storage()
	if st.BaseColumns <= 0 || st.SKTs <= 0 || st.Climbing <= 0 {
		t.Errorf("storage breakdown %+v", st)
	}
	if st.Total < st.SKTs+st.Climbing {
		t.Errorf("total %d < parts", st.Total)
	}
	// The indexing model trades flash for speed: indexes should be a
	// noticeable multiple of nothing but not dwarf the data by 100x.
	if st.Climbing > 100*st.BaseColumns {
		t.Errorf("climbing indexes absurdly large: %+v", st)
	}
}

func TestQueryErrors(t *testing.T) {
	db, _, _ := loadTiny(t)
	bad := []string{
		`SELECT Nope FROM Prescription`,
		`SELECT PreID FROM Ghost`,
		`SELECT Doc.Name FROM Doctor Doc, Patient Pat`,           // sibling FROM set
		`SELECT PreID FROM Prescription WHERE Quantity = 'high'`, // type mismatch
	}
	for _, s := range bad {
		if _, err := db.Query(s); err == nil {
			t.Errorf("Query(%s) succeeded", s)
		}
	}
	unbuilt, _ := Open()
	if _, err := unbuilt.Query(`SELECT 1 FROM X`); err == nil {
		t.Error("query before Build accepted")
	}
}

func TestExplain(t *testing.T) {
	db, _, _ := loadTiny(t)
	q, err := db.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	specs := db.Plans(q)
	text := db.Explain(q, specs[0])
	for _, want := range []string{"Visit.Purpose", "Access SKT", "query root: Prescription"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
}
