package core

// Crash-consistent commit records. The device reserves its first two
// flash blocks (device.RecordBlocks) as A/B superblock slots: the record
// for version v lives in block v%2, so programming a new record never
// touches the previous one. A CHECKPOINT builds the next database state
// into the inactive main half first and only then writes the record —
// the last device operation of the merge — making the record the single
// commit point. Recovery (core.Recover) decodes both slots from a flash
// image and lands on the newest record that verifies end to end: header
// magic, per-page OOB checksums, payload CRC, JSON decode.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/value"
)

// recordMagic opens every commit record page 0.
const recordMagic = "GDB1"

// recordHeaderLen is magic + payload length + payload CRC32.
const recordHeaderLen = 4 + 4 + 4

// recordExtent is a JSON-friendly flash extent.
type recordExtent struct {
	Start int64 `json:"s"`
	Len   int64 `json:"l"`
}

func toRecordExtent(e flash.Extent) recordExtent { return recordExtent{Start: e.Start, Len: e.Len} }

func (e recordExtent) extent() flash.Extent { return flash.Extent{Start: e.Start, Len: e.Len} }

// recordCol locates one hidden column's flash storage. Fixed-width
// columns use Off alone; variable-width (string) columns pair the offset
// array (Off) with the value heap (Data).
type recordCol struct {
	Name string        `json:"n"`
	Var  bool          `json:"v,omitempty"`
	Off  recordExtent  `json:"o"`
	Data *recordExtent `json:"d,omitempty"`
}

// recordTable is one table's committed cardinality and hidden columns.
type recordTable struct {
	Name string      `json:"n"`
	Rows int         `json:"r"`
	Cols []recordCol `json:"c,omitempty"`
}

// commitRecord is the versioned manifest of one committed database
// state: which main half holds it, where every hidden column lives, and
// — on a shard — the packed local→global root mapping this version was
// committed under.
type commitRecord struct {
	Version    uint64        `json:"v"`
	ActiveHalf int           `json:"h"`
	Tables     []recordTable `json:"t"`
	// RootGlobals points at a packed little-endian uint32 region in the
	// active half mapping shard-local root identifiers (index l-1) to
	// global ones. Zero-length on a single-device database.
	RootGlobals recordExtent `json:"g,omitempty"`
	RootCount   int          `json:"gc,omitempty"`
}

// buildCommitRecord snapshots the current hidden-store layout into a
// manifest for the given version. Caller holds the device gate and has a
// fully built hid store.
func (db *DB) buildCommitRecord(version uint64, rootGlobals flash.Extent, rootCount int) (*commitRecord, error) {
	rec := &commitRecord{
		Version:     version,
		ActiveHalf:  db.dev.ActiveHalf(),
		RootGlobals: toRecordExtent(rootGlobals),
		RootCount:   rootCount,
	}
	for _, t := range db.sch.Tables() {
		td, ok := db.hid.Table(t.Name)
		if !ok {
			return nil, fmt.Errorf("core: commit record: no hidden table %s", t.Name)
		}
		rt := recordTable{Name: t.Name, Rows: td.Rows()}
		for _, c := range t.Columns {
			if !c.Hidden {
				continue
			}
			col, ok := td.Column(c.Name)
			if !ok {
				return nil, fmt.Errorf("core: commit record: no hidden column %s.%s", t.Name, c.Name)
			}
			switch col := col.(type) {
			case *store.FixedColumn:
				rt.Cols = append(rt.Cols, recordCol{Name: c.Name, Off: toRecordExtent(col.Extent())})
			case *store.VarColumn:
				off, data := col.Extents()
				de := toRecordExtent(data)
				rt.Cols = append(rt.Cols, recordCol{Name: c.Name, Var: true, Off: toRecordExtent(off), Data: &de})
			default:
				return nil, fmt.Errorf("core: commit record: %s.%s has unrecordable column type %T", t.Name, c.Name, col)
			}
		}
		rec.Tables = append(rec.Tables, rt)
	}
	return rec, nil
}

// writeCommitRecord commits the current device state as db.version: it
// erases the version's record slot and programs the manifest into it.
// The last page programmed is the commit point — a power cut anywhere
// before it leaves the previous version's record (the other slot)
// untouched and fully valid. The erase and program costs are charged to
// the simulated clock; they are the durability overhead a CHECKPOINT
// pays on top of the merge itself.
func (db *DB) writeCommitRecord() error {
	simStart := db.clock.Now()
	defer func() {
		if m := db.metrics; m != nil {
			m.recordSim.Add(int64(db.clock.Now() - simStart))
		}
	}()
	var rgExt flash.Extent
	rgCount := 0
	if len(db.rootGlobals) > 0 {
		buf := make([]byte, 0, len(db.rootGlobals)*4)
		for _, g := range db.rootGlobals {
			buf = binary.LittleEndian.AppendUint32(buf, g)
		}
		ext, err := db.dev.Main.AppendRegion(buf)
		if err != nil {
			return fmt.Errorf("core: commit record: root mapping region: %w", err)
		}
		rgExt, rgCount = ext, len(db.rootGlobals)
	}
	rec, err := db.buildCommitRecord(db.version, rgExt, rgCount)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	p := db.dev.Profile.Flash
	blockBytes := p.PageSize * p.PagesPerBlock
	if recordHeaderLen+len(payload) > blockBytes {
		return fmt.Errorf("core: commit record: manifest %d B exceeds the %d B record block", len(payload), blockBytes)
	}
	buf := make([]byte, 0, recordHeaderLen+len(payload))
	buf = append(buf, recordMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)

	slot := device.RecordBlock(rec.Version)
	if err := db.dev.Flash.EraseBlock(slot); err != nil {
		return fmt.Errorf("core: commit record: erase slot %d: %w", slot, err)
	}
	page := slot * p.PagesPerBlock
	for off := 0; off < len(buf); off += p.PageSize {
		end := off + p.PageSize
		if end > len(buf) {
			end = len(buf)
		}
		if err := db.dev.Flash.ProgramPage(page, buf[off:end]); err != nil {
			return fmt.Errorf("core: commit record: program page %d: %w", page, err)
		}
		page++
	}
	// The record is the commit point: flush it (and the state it points
	// at) through whatever durability boundary the backend has, then
	// refresh the host-side sidecar a file-backed database reopens from.
	if err := db.dev.Flash.Sync(); err != nil {
		return fmt.Errorf("core: commit record: sync: %w", err)
	}
	if err := db.persistSidecar(); err != nil {
		return fmt.Errorf("core: commit record: %w", err)
	}
	return nil
}

// decodeCommitRecord reads and validates one record slot from a flash
// image. It returns (nil, nil) for a never-programmed slot, and an error
// for a slot that holds data but fails any validation step — a torn or
// corrupted record.
func decodeCommitRecord(img storage.Image, slot int) (*commitRecord, error) {
	p := img.Params()
	first := slot * p.PagesPerBlock
	if !img.PageProgrammed(first) {
		return nil, nil
	}
	head, _, err := img.ReadPage(first)
	if err != nil {
		return nil, fmt.Errorf("core: record slot %d: %w", slot, err)
	}
	if string(head[:4]) != recordMagic {
		return nil, fmt.Errorf("core: record slot %d: bad magic %q", slot, head[:4])
	}
	payloadLen := int(binary.LittleEndian.Uint32(head[4:8]))
	wantCRC := binary.LittleEndian.Uint32(head[8:12])
	blockBytes := p.PageSize * p.PagesPerBlock
	if payloadLen < 0 || recordHeaderLen+payloadLen > blockBytes {
		return nil, fmt.Errorf("core: record slot %d: payload length %d out of range", slot, payloadLen)
	}
	payload := make([]byte, 0, payloadLen)
	take := payloadLen
	if n := p.PageSize - recordHeaderLen; take > n {
		take = n
	}
	payload = append(payload, head[recordHeaderLen:recordHeaderLen+take]...)
	for page := first + 1; len(payload) < payloadLen; page++ {
		data, prog, err := img.ReadPage(page)
		if err != nil {
			return nil, fmt.Errorf("core: record slot %d: %w", slot, err)
		}
		if !prog {
			return nil, fmt.Errorf("core: record slot %d: truncated at page %d (torn record write)", slot, page)
		}
		take := payloadLen - len(payload)
		if take > p.PageSize {
			take = p.PageSize
		}
		payload = append(payload, data[:take]...)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("core: record slot %d: payload checksum mismatch", slot)
	}
	var rec commitRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("core: record slot %d: %w", slot, err)
	}
	if device.RecordBlock(rec.Version) != slot {
		return nil, fmt.Errorf("core: record slot %d holds version %d (wrong slot parity)", slot, rec.Version)
	}
	return &rec, nil
}

// fixedKindWidth mirrors the store's fixed-column storage widths for the
// image-based recovery decoder.
func fixedKindWidth(kind value.Kind) (int, error) {
	switch kind {
	case value.Int:
		return 8, nil
	case value.Date:
		return 4, nil
	case value.Float:
		return 8, nil
	case value.Bool:
		return 1, nil
	default:
		return 0, fmt.Errorf("core: kind %s is not fixed width", kind)
	}
}

// decodeFixedColumn reads a packed fixed-width column out of a flash
// image, verifying every touched page's OOB checksum.
func decodeFixedColumn(img storage.Image, ext flash.Extent, kind value.Kind, n int) ([]value.Value, error) {
	w, err := fixedKindWidth(kind)
	if err != nil {
		return nil, err
	}
	if int64(n)*int64(w) > ext.Len {
		return nil, fmt.Errorf("core: fixed column extent %d B short of %d rows", ext.Len, n)
	}
	buf := make([]byte, n*w)
	if err := img.ReadAt(buf, ext.Start); err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		raw := buf[i*w : (i+1)*w]
		switch kind {
		case value.Int:
			out[i] = value.NewInt(int64(binary.LittleEndian.Uint64(raw)))
		case value.Date:
			out[i] = value.NewDateDays(int64(int32(binary.LittleEndian.Uint32(raw))))
		case value.Float:
			out[i] = value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		case value.Bool:
			out[i] = value.NewBool(raw[0] != 0)
		}
	}
	return out, nil
}

// decodeVarColumn reads an offset-array-plus-heap column out of a flash
// image, verifying every touched page's OOB checksum.
func decodeVarColumn(img storage.Image, offExt, dataExt flash.Extent, n int) ([]value.Value, error) {
	if int64(n+1)*4 > offExt.Len {
		return nil, fmt.Errorf("core: var column offset extent %d B short of %d rows", offExt.Len, n)
	}
	offs := make([]byte, (n+1)*4)
	if err := img.ReadAt(offs, offExt.Start); err != nil {
		return nil, err
	}
	heap := make([]byte, dataExt.Len)
	if err := img.ReadAt(heap, dataExt.Start); err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		start := binary.LittleEndian.Uint32(offs[i*4:])
		end := binary.LittleEndian.Uint32(offs[(i+1)*4:])
		if end < start || int64(end) > dataExt.Len {
			return nil, fmt.Errorf("core: var column row %d: corrupt offsets %d..%d", i, start, end)
		}
		v, _, err := value.Decode(heap[start:end])
		if err != nil {
			return nil, fmt.Errorf("core: var column row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// decodeRootGlobals reads the packed local→global root mapping region.
func decodeRootGlobals(img storage.Image, ext flash.Extent, count int) ([]uint32, error) {
	if int64(count)*4 > ext.Len {
		return nil, fmt.Errorf("core: root mapping extent %d B short of %d entries", ext.Len, count)
	}
	buf := make([]byte, count*4)
	if err := img.ReadAt(buf, ext.Start); err != nil {
		return nil, err
	}
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return out, nil
}
